package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// callTarget identifies a function or method by the trailing segment of its
// package path, its receiver type name (empty for package functions) and
// its name. Matching on the path suffix keeps the tables independent of the
// module name.
type callTarget struct {
	pkg  string // e.g. "internal/mpi"
	recv string // e.g. "Comm", "" for package-level functions
	name string
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function or method of a call expression,
// including explicitly instantiated generic functions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(f.X)
	case *ast.IndexListExpr:
		fun = unparen(f.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// targetOf classifies a resolved function as a callTarget.
func targetOf(fn *types.Func) callTarget {
	t := callTarget{name: fn.Name()}
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if i := strings.Index(p, "internal/"); i >= 0 {
			p = p[i:]
		}
		t.pkg = p
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			t.recv = n.Obj().Name()
		}
	}
	return t
}

// namedOf returns the named type behind pointers and aliases, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeIs reports whether t (behind pointers) is the named type name defined
// in a package whose path ends in pkgSuffix.
func typeIs(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgSuffix || strings.HasSuffix(obj.Pkg().Path(), "/"+pkgSuffix)
}

// receiverExpr returns the receiver expression of a method call (c in
// c.Barrier(...)), or nil for package-function calls.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// rootIdent returns the leftmost identifier of an expression chain
// (a.b.c[i] -> a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// collectiveSig describes one blocking MPI collective entry point: where
// its tag and communicator arguments live. commArg -1 means the
// communicator is the method receiver.
type collectiveSig struct {
	tagArg  int
	commArg int
}

// mpiCollectives are the collective entry points of internal/mpi. Every
// member of the communicator must call them; they carry a matching tag.
var mpiCollectives = map[callTarget]collectiveSig{
	{"internal/mpi", "", "Bcast"}:              {2, 1},
	{"internal/mpi", "", "Allgatherv"}:         {2, 1},
	{"internal/mpi", "", "Gatherv"}:            {2, 1},
	{"internal/mpi", "", "Scatterv"}:           {2, 1},
	{"internal/mpi", "", "Alltoall"}:           {2, 1},
	{"internal/mpi", "", "Alltoallv"}:          {2, 1},
	{"internal/mpi", "", "IAlltoallv"}:         {2, 1},
	{"internal/mpi", "", "ICollectiveCost"}:    {3, 1},
	{"internal/mpi", "Comm", "Barrier"}:        {1, -1},
	{"internal/mpi", "Comm", "Reduce"}:         {1, -1},
	{"internal/mpi", "Comm", "Allreduce"}:      {1, -1},
	{"internal/mpi", "Comm", "ReduceScatter"}:  {1, -1},
	{"internal/mpi", "Comm", "Scan"}:           {1, -1},
	{"internal/mpi", "Comm", "Split"}:          {1, -1},
	{"internal/mpi", "Comm", "CollectiveCost"}: {2, -1},
}

// isAsyncCollective marks the non-blocking collective posts: they
// participate in tag matching but never block the caller.
func isAsyncCollective(t callTarget) bool {
	return t.name == "IAlltoallv" || t.name == "ICollectiveCost"
}

// blockingCall describes a call that blocks the simulated process until
// another process acts. waiterArg is the argument index of the blocked
// context/process; -1 means the method receiver is the blocked process.
type blockingCall struct {
	waiterArg int
}

// blockingCalls is the table of blocking mpi/vtime/ompss entry points the
// blockintask rule polices. ompss.Group.Wait is deliberately absent: it is
// the lane-aware waiting entry point (the waiting worker executes ready
// group tasks inline).
var blockingCalls = map[callTarget]blockingCall{
	{"internal/mpi", "", "Send"}:               {0},
	{"internal/mpi", "", "Recv"}:               {0},
	{"internal/vtime", "Proc", "Block"}:        {-1},
	{"internal/vtime", "Proc", "BlockOn"}:      {-1},
	{"internal/vtime", "WaitQueue", "Wait"}:    {0},
	{"internal/vtime", "Semaphore", "Acquire"}: {0},
	{"internal/vtime", "Queue", "Pop"}:         {0},
	{"internal/vtime", "Barrier", "Await"}:     {0},
	{"internal/ompss", "Runtime", "Taskwait"}:  {0},
	{"internal/ompss", "Future", "Wait"}:       {0},
}

// taskSubmitters are the ompss entry points whose final argument is a task
// body executed later on a worker thread.
var taskSubmitters = map[callTarget]bool{
	{"internal/ompss", "Runtime", "Submit"}:          true,
	{"internal/ompss", "Runtime", "SubmitInGroup"}:   true,
	{"internal/ompss", "Runtime", "TaskLoop"}:        true,
	{"internal/ompss", "Runtime", "TaskLoopInGroup"}: true,
	{"internal/ompss", "Runtime", "SubmitAfter"}:     true,
}

// continuationRegistrars are the ompss entry points whose final argument is
// a continuation closure: it runs inline on whichever simulated process
// resolves the future or completes the task, inside the runtime's
// bookkeeping path. Continuations release work (complete futures, submit
// tasks, count arrivals); they must never block, post collectives or charge
// compute time, no matter where their captured state comes from.
var continuationRegistrars = map[callTarget]bool{
	{"internal/ompss", "Future", "Then"}:        true,
	{"internal/ompss", "Runtime", "OnComplete"}: true,
}

// continuationClosures collects the function literals registered as
// future/task continuations anywhere under root.
func continuationClosures(info *types.Info, root ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !continuationRegistrars[targetOf(fn)] {
			return true
		}
		if lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// taskBodies collects the function literals passed as task bodies anywhere
// under root.
func taskBodies(info *types.Info, root ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !taskSubmitters[targetOf(fn)] {
			return true
		}
		if lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// within reports whether pos lies inside node's source range.
func within(pos ast.Node, outer ast.Node) bool {
	return pos.Pos() >= outer.Pos() && pos.End() <= outer.End()
}
