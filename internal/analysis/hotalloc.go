package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocRule codifies the zero-alloc steady-state contract of the fft
// package: after warm-up, a plan's transform methods must not heap-allocate
// — scratch comes from the plan's sync.Pool, twiddles and permutations are
// precomputed. The AllocsPerRun tests pin this dynamically for the shapes
// they run; this rule pins it statically for every path, including helpers
// an AllocsPerRun test never reaches.
//
// Hot roots are (a) Transform*/transform* methods on Plan* types — any
// package's, so the contract follows the type shape, not a hard-coded
// list; the lowercase form catches the internal layout kernels
// (transformRowsSoA, transformColsSoA, ...) that the batch drivers fan
// out to — (b) package-level Pack*/Unpack* functions whose signature
// mentions an SoA-named type (the planar layout boundary shims, called
// once per batch on the serving path), and (c) the
// graph.Stage model closures Instr, Bytes, Count and Part, which engines
// call once per stage execution or per task-loop partition. Stage Body
// closures are deliberately NOT roots: a Body builds the band's State
// buffers (PrepSticks, ScatterSplit, ...), which is an allocation by
// design, amortized by the engine's per-band reuse.
//
// Exemptions mirror the effect summaries (summary.go): panic arguments are
// the failure path; calls into math, math/bits, math/cmplx, sync,
// sync/atomic and runtime are trusted; everything else outside the module
// is assumed to allocate.
var HotAllocRule = Rule{
	Name: "hotalloc",
	Doc:  "transform hot paths (Plan.Transform*/transform*, SoA Pack*/Unpack* shims, graph.Stage model closures) must not allocate",
	Run:  runHotAlloc,
}

// hotStageFields are the Stage closures policed as hot roots (Body is
// excluded: it builds the per-band State by design).
var hotStageFields = map[string]bool{
	"Instr": true,
	"Bytes": true,
	"Count": true,
	"Part":  true,
}

func runHotAlloc(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	seen := map[ast.Node]bool{}

	// scanRoot reports every steady-state allocation under a hot root body:
	// direct sites, calls to module helpers whose summary allocates, and
	// assumed-allocating stdlib calls. Unlike the summaries, nested function
	// literals are all included — a closure created inside a transform (a
	// ParallelFor body, say) executes on the hot path.
	scanRoot := func(body ast.Node, where string) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		exempt := panicRanges(info, body)
		flag := func(n ast.Node, desc string) {
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(n.Pos()),
				Rule: "hotalloc",
				Message: fmt.Sprintf("%s in %s; the transform hot path is allocation-free in steady state — use the plan's scratch pool or preallocated state",
					desc, where),
			})
		}
		ast.Inspect(body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND && !inRanges(exempt, x.Pos()) {
					if cl, ok := unparen(x.X).(*ast.CompositeLit); ok {
						flag(x, "&"+compositeDesc(info, cl)+"{...} allocates")
					}
				}
			case *ast.CompositeLit:
				if !inRanges(exempt, x.Pos()) && allocatingLitType(info, x) {
					flag(x, compositeDesc(info, x)+"{...} allocates")
				}
			case *ast.CallExpr:
				if id, ok := unparen(x.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "make", "new", "append":
							if !inRanges(exempt, x.Pos()) {
								flag(x, builtinAllocDesc(b.Name(), x)+" allocates")
							}
						}
						return true
					}
				}
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				if _, _, intrinsic := intrinsicEffects(targetOf(fn)); intrinsic {
					return true // runtime calls are stagepure/parbody territory
				}
				if p.Prog != nil && p.Prog.isModuleFunc(fn) {
					if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffAllocates) {
						flag(x, fmt.Sprintf("call to %s allocates (%s)",
							s.Key.Display(), callPath(p.Prog, s.Key, EffAllocates)))
					}
					return true
				}
				if pkg := fn.Pkg(); pkg != nil && !nonAllocStd[pkg.Path()] && !inRanges(exempt, x.Pos()) {
					flag(x, targetOf(fn).display()+" (assumed to allocate)")
				}
			}
			return true
		})
	}

	decls := packageFuncDecls(info, p.Pkg.Files)
	for _, f := range p.Pkg.Files {
		// (a) Transform*/transform* methods on Plan* receivers and
		// (b) SoA Pack*/Unpack* boundary shims.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				if (strings.HasPrefix(fd.Name.Name, "Pack") || strings.HasPrefix(fd.Name.Name, "Unpack")) &&
					sigMentionsSoA(sig) {
					scanRoot(fd.Body, fd.Name.Name)
				}
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "Transform") && !strings.HasPrefix(fd.Name.Name, "transform") {
				continue
			}
			if sig.Recv() == nil {
				continue
			}
			named := namedOf(sig.Recv().Type())
			if named == nil || !strings.HasPrefix(named.Obj().Name(), "Plan") {
				continue
			}
			scanRoot(fd.Body, fmt.Sprintf("%s.%s", named.Obj().Name(), fd.Name.Name))
		}

		// (c) graph.Stage model closures.
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isStageLit(info, lit) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !hotStageFields[key.Name] {
					continue
				}
				where := fmt.Sprintf("a graph.Stage %s closure", key.Name)
				switch v := unparen(kv.Value).(type) {
				case *ast.FuncLit:
					scanRoot(v.Body, where)
				case *ast.Ident:
					if fn, ok := info.Uses[v].(*types.Func); ok {
						checkStageRef(p, decls, scanRoot, fn, v, where, &diags)
					}
				case *ast.SelectorExpr:
					if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
						checkStageRef(p, decls, scanRoot, fn, v, where, &diags)
					}
				}
			}
			return true
		})
	}
	return diags
}

// checkStageRef handles a stage closure wired in as a function reference:
// same-package declarations are scanned like inline literals, cross-package
// references are judged by their allocation summary at the reference site.
func checkStageRef(p *Pass, decls map[*types.Func]*ast.FuncDecl, scanRoot func(ast.Node, string), fn *types.Func, pos ast.Node, where string, diags *[]Diagnostic) {
	if fd := decls[fn]; fd != nil {
		scanRoot(fd.Body, where)
		return
	}
	if p.Prog == nil {
		return
	}
	if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffAllocates) {
		*diags = append(*diags, Diagnostic{
			Pos:  p.Fset.Position(pos.Pos()),
			Rule: "hotalloc",
			Message: fmt.Sprintf("closure %s allocates (%s) in %s; the transform hot path is allocation-free in steady state — use the plan's scratch pool or preallocated state",
				s.Key.Display(), callPath(p.Prog, s.Key, EffAllocates), where),
		})
	}
}

// sigMentionsSoA reports whether any parameter or result of sig names a
// type whose name contains "SoA" — the shape that marks a function as a
// planar-layout boundary shim (fft.PackSoA, fft.UnpackSoA, and whatever
// future layouts follow the convention).
func sigMentionsSoA(sig *types.Signature) bool {
	mention := func(t *types.Tuple) bool {
		for i := 0; i < t.Len(); i++ {
			if named := namedOf(t.At(i).Type()); named != nil && strings.Contains(named.Obj().Name(), "SoA") {
				return true
			}
		}
		return false
	}
	return mention(sig.Params()) || mention(sig.Results())
}
