package analysis

import (
	"fmt"
	"go/ast"
)

// DivergenceRule flags MPI collective calls that are only reachable under a
// rank-dependent branch. Collectives are matched across every member of the
// communicator, so a collective that only some ranks reach leaves the
// arriving ranks blocked forever. Point-to-point Send/Recv under a rank
// branch is the normal root/leaf pattern and is not flagged.
var DivergenceRule = Rule{
	Name: "divergence",
	Doc:  "MPI collectives must not be guarded by rank-dependent conditions",
	Run:  runDivergence,
}

func runDivergence(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			rd := newRankDep(p.Prog, info, fd.Body)

			// flag records every collective call under e when dep is true,
			// and recurses into nested function literals preserving dep.
			var checkStmt func(s ast.Stmt, dep bool)
			var scan func(n ast.Node, dep bool)
			scan = func(n ast.Node, dep bool) {
				if n == nil {
					return
				}
				ast.Inspect(n, func(m ast.Node) bool {
					switch x := m.(type) {
					case *ast.FuncLit:
						checkStmt(x.Body, dep)
						return false
					case *ast.CallExpr:
						if !dep {
							return true
						}
						fn := calleeFunc(info, x)
						if fn == nil {
							return true
						}
						t := targetOf(fn)
						if _, isColl := mpiCollectives[t]; isColl {
							diags = append(diags, Diagnostic{
								Pos:  p.Fset.Position(x.Pos()),
								Rule: "divergence",
								Message: fmt.Sprintf("collective %s is only reached under a rank-dependent condition; every rank of the communicator must call it",
									t.name),
							})
						} else if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffCollective) {
							// Interprocedural: a helper that posts a
							// collective somewhere down its chain.
							diags = append(diags, Diagnostic{
								Pos:  p.Fset.Position(x.Pos()),
								Rule: "divergence",
								Message: fmt.Sprintf("call to %s reaches an MPI collective under a rank-dependent condition (%s); every rank of the communicator must call it",
									s.Key.Display(), callPath(p.Prog, s.Key, EffCollective)),
							})
						}
					}
					return true
				})
			}
			checkStmt = func(s ast.Stmt, dep bool) {
				switch st := s.(type) {
				case nil:
				case *ast.BlockStmt:
					for _, s2 := range st.List {
						checkStmt(s2, dep)
					}
				case *ast.IfStmt:
					checkStmt(st.Init, dep)
					scan(st.Cond, dep)
					d := dep || rd.dependent(st.Cond)
					checkStmt(st.Body, d)
					checkStmt(st.Else, d)
				case *ast.ForStmt:
					checkStmt(st.Init, dep)
					scan(st.Cond, dep)
					d := dep || rd.dependent(st.Cond)
					checkStmt(st.Post, d)
					checkStmt(st.Body, d)
				case *ast.RangeStmt:
					scan(st.X, dep)
					checkStmt(st.Body, dep || rd.dependent(st.X))
				case *ast.SwitchStmt:
					checkStmt(st.Init, dep)
					scan(st.Tag, dep)
					d := dep || (st.Tag != nil && rd.dependent(st.Tag))
					for _, c := range st.Body.List {
						cc := c.(*ast.CaseClause)
						dd := d
						for _, e := range cc.List {
							scan(e, dep)
							if rd.dependent(e) {
								dd = true
							}
						}
						for _, s2 := range cc.Body {
							checkStmt(s2, dd)
						}
					}
				case *ast.TypeSwitchStmt:
					checkStmt(st.Init, dep)
					checkStmt(st.Assign, dep)
					for _, c := range st.Body.List {
						for _, s2 := range c.(*ast.CaseClause).Body {
							checkStmt(s2, dep)
						}
					}
				case *ast.SelectStmt:
					for _, c := range st.Body.List {
						cc := c.(*ast.CommClause)
						checkStmt(cc.Comm, dep)
						for _, s2 := range cc.Body {
							checkStmt(s2, dep)
						}
					}
				case *ast.LabeledStmt:
					checkStmt(st.Stmt, dep)
				default:
					scan(s, dep)
				}
			}
			checkStmt(fd.Body, false)
		}
	}
	return diags
}
