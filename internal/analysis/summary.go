package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Per-function effect summaries. Each declared function gets a monotone bit
// set of behaviours, seeded from what its body does directly (intrinsic
// runtime calls, allocation sites) and closed under "calls a function that
// has the effect" by fixpoint over the call graph. The lattice is the
// powerset of the effects below ordered by inclusion; every transfer
// function only adds bits, so the fixpoint exists and is reached in at most
// numEffects × |nodes| rounds (in practice two or three).

// Effect is one tracked behaviour.
type Effect int

const (
	// EffCollective: the function (transitively) posts an MPI collective.
	EffCollective Effect = iota
	// EffBlocks: blocks the simulated runtime (a blocking mpi/vtime/ompss
	// entry point, including the blocking collectives).
	EffBlocks
	// EffSubmits: submits an ompss task.
	EffSubmits
	// EffCharges: charges simulated compute time.
	EffCharges
	// EffAllocates: may heap-allocate on the steady-state (non-panic) path.
	EffAllocates
	// EffRankReturn: the return value derives from the calling rank's
	// identity (mpi.Ctx.Rank / mpi.Comm.RankIn), so branching on it makes
	// the branch rank-dependent. Unlike the other effects this one flows
	// through return values, not call edges — taint.go computes it.
	EffRankReturn
	// EffRuntime: touches internal/mpi, internal/vtime or internal/ompss in
	// any way (a superset of the collective/block/submit/charge effects;
	// also set by non-table runtime entry points like constructors).
	EffRuntime

	numEffects
)

// EffectSet is a bit set of Effects.
type EffectSet uint16

// Has reports whether e is in the set.
func (s EffectSet) Has(e Effect) bool { return s&(1<<uint(e)) != 0 }

// with returns the set with e added.
func (s EffectSet) with(e Effect) EffectSet { return s | 1<<uint(e) }

// origin records, for one effect of one function, the first site that
// introduces it: either a terminal (an intrinsic runtime call or an
// allocation site, callee zero) or a call to a module function that already
// has the effect (callee set). Chasing callee links rebuilds the helper
// chain a diagnostic prints.
type origin struct {
	pos    token.Pos
	desc   string  // e.g. "mpi.Alltoallv", "make([]complex128)", "fmt.Sprintf"
	callee FuncKey // non-zero when the effect arrives through a module call
}

// Summary is the effect set of one declared function.
type Summary struct {
	Key     FuncKey
	Set     EffectSet
	origins [numEffects]origin
}

// add records e with its origin, first site wins.
func (s *Summary) add(e Effect, o origin) bool {
	if s.Set.Has(e) {
		return false
	}
	s.Set = s.Set.with(e)
	s.origins[e] = o
	return true
}

// EffectPath returns the helper chain by which the function keyed k
// exhibits effect e, excluding k itself: callee display names down to the
// terminal site (e.g. ["shuffle", "mpi.Alltoallv"] for distribute →
// shuffle → mpi.Alltoallv).
func (p *Program) EffectPath(k FuncKey, e Effect) []string {
	var path []string
	seen := map[FuncKey]bool{}
	for !k.IsZero() && !seen[k] {
		seen[k] = true
		s := p.sums[k]
		if s == nil || !s.Set.Has(e) {
			break
		}
		o := s.origins[e]
		path = append(path, o.desc)
		k = o.callee
	}
	return path
}

// callPath renders the full chain "fn → helper → mpi.X" for a diagnostic
// about a call to the function keyed k.
func callPath(prog *Program, k FuncKey, e Effect) string {
	parts := append([]string{k.Display()}, prog.EffectPath(k, e)...)
	return strings.Join(parts, " → ")
}

// firstBannedEffect returns the highest-priority host-context-banned effect
// of set with its verb phrase — the order matches the parbody rule's direct
// checks so interprocedural findings read the same.
func firstBannedEffect(set EffectSet) (Effect, string, bool) {
	switch {
	case set.Has(EffCollective):
		return EffCollective, "posts an MPI collective", true
	case set.Has(EffBlocks):
		return EffBlocks, "blocks the simulated runtime", true
	case set.Has(EffSubmits):
		return EffSubmits, "submits an ompss task", true
	case set.Has(EffCharges):
		return EffCharges, "charges simulated compute time", true
	}
	return 0, "", false
}

// nonAllocStd are the standard-library packages whose calls are trusted not
// to allocate on the steady-state path. Everything else outside the module
// is assumed to allocate: the analysis cannot see export-data bodies, and
// for a hot-path rule a false positive ("don't call fmt here") is a better
// failure mode than a silent miss. sync is on the list for the scratch-pool
// pattern (a pool hit is allocation-free; the pool's New misses are the
// cold path).
var nonAllocStd = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"math/cmplx":  true,
	"sync":        true,
	"sync/atomic": true,
	"runtime":     true,
}

// intrinsicEffects returns the modeled effect set of a call into the
// simulated-runtime packages. ok is false for calls outside those packages.
func intrinsicEffects(t callTarget) (set EffectSet, desc string, ok bool) {
	if !simulatedRuntimePkgs[t.pkg] {
		return 0, "", false
	}
	if _, isColl := mpiCollectives[t]; isColl {
		set = set.with(EffCollective)
		if !isAsyncCollective(t) {
			set = set.with(EffBlocks)
		}
	}
	if _, isBlocking := blockingCalls[t]; isBlocking {
		set = set.with(EffBlocks)
	}
	if taskSubmitters[t] {
		set = set.with(EffSubmits)
	}
	if computeCharges[t] {
		set = set.with(EffCharges)
	}
	if t.pkg == "internal/mpi" && t.recv == "Comm" && t.name == "RankIn" {
		set = set.with(EffRankReturn)
	}
	return set.with(EffRuntime), t.display(), true
}

// computeSummaries seeds every node's direct effects and call edges, then
// propagates effects over the edges to fixpoint. EffRankReturn does not
// propagate here: calling a rank-returning helper only matters when the
// result flows into the caller's own return value, which taint.go tracks.
func (p *Program) computeSummaries() {
	for _, k := range p.keys {
		n := p.nodes[k]
		sum := &Summary{Key: k}
		p.sums[k] = sum
		p.edges[k] = p.scanDirect(n, sum)
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.keys {
			sum := p.sums[k]
			for _, ce := range p.edges[k] {
				callee := p.sums[ce.to]
				if callee == nil {
					continue
				}
				for e := Effect(0); e < numEffects; e++ {
					if e == EffRankReturn {
						continue
					}
					if callee.Set.Has(e) && sum.add(e, origin{pos: ce.pos, desc: ce.to.Display(), callee: ce.to}) {
						changed = true
					}
				}
			}
		}
	}
}

// scanDirect walks one declared body, seeding sum with the effects the body
// exhibits directly and returning the call edges to module functions.
// Non-invoked function literals are skipped (see invokedLits); allocation
// inside panic arguments is exempt (failure path). Allocation sites counted:
// make, new, append, slice/map composite literals, &T{...}, and calls to
// non-whitelisted standard-library functions. Not counted (documented
// scope): go statements, channel sends, string concatenation, closure
// creation — none appear on the module's hot paths.
func (p *Program) scanDirect(n *funcNode, sum *Summary) []callEdge {
	info := n.pkg.Info
	body := n.decl.Body
	invoked := invokedLits(body)
	exempt := panicRanges(info, body)
	var edges []callEdge
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			if !invoked[x] {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && !inRanges(exempt, x.Pos()) {
				if cl, ok := unparen(x.X).(*ast.CompositeLit); ok {
					sum.add(EffAllocates, origin{pos: x.Pos(), desc: "&" + compositeDesc(info, cl) + "{...}"})
				}
			}
		case *ast.CompositeLit:
			if !inRanges(exempt, x.Pos()) && allocatingLitType(info, x) {
				sum.add(EffAllocates, origin{pos: x.Pos(), desc: compositeDesc(info, x) + "{...}"})
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						if !inRanges(exempt, x.Pos()) {
							sum.add(EffAllocates, origin{pos: x.Pos(), desc: builtinAllocDesc(b.Name(), x)})
						}
					}
					return true
				}
			}
			fn := calleeFunc(info, x)
			if fn == nil {
				return true
			}
			if set, desc, ok := intrinsicEffects(targetOf(fn)); ok {
				for e := Effect(0); e < numEffects; e++ {
					if set.Has(e) {
						sum.add(e, origin{pos: x.Pos(), desc: desc})
					}
				}
				return true
			}
			if p.isModuleFunc(fn) {
				edges = append(edges, callEdge{pos: x.Pos(), to: keyOf(fn)})
				return true
			}
			if pkg := fn.Pkg(); pkg != nil && !nonAllocStd[pkg.Path()] && !inRanges(exempt, x.Pos()) {
				sum.add(EffAllocates, origin{pos: x.Pos(), desc: targetOf(fn).display() + " (assumed to allocate)"})
			}
		}
		return true
	})
	return edges
}

// allocatingLitType reports whether the composite literal allocates backing
// store by itself: slice and map literals do, array and struct values do
// not (struct pointers are caught at the &T{...} site).
func allocatingLitType(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// compositeDesc names a composite literal's type for diagnostics.
func compositeDesc(info *types.Info, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type)
	}
	if tv, ok := info.Types[lit]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "composite"
}

// builtinAllocDesc names a make/new/append site for diagnostics.
func builtinAllocDesc(name string, call *ast.CallExpr) string {
	if len(call.Args) > 0 && (name == "make" || name == "new") {
		return name + "(" + types.ExprString(call.Args[0]) + ")"
	}
	return name
}
