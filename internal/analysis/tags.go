package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// TagsRule enforces collective tag discipline:
//
//   - a rank-dependent tag argument can never match across ranks — the
//     collective hangs or cross-pairs;
//   - reusing one constant tag for the same collective on the same
//     communicator at several sites of one function, at least one of which
//     runs inside a task body, risks concurrent same-tag collectives whose
//     generations cross-match (the runtime's strict mode catches the
//     surviving cases dynamically).
var TagsRule = Rule{
	Name: "tags",
	Doc:  "collective tags must be rank-invariant and unique among concurrent collectives",
	Run:  runTags,
}

// tagSite is one collective call with a constant tag.
type tagSite struct {
	call   *ast.CallExpr
	op     string
	inTask bool
}

// tagKey groups constant-tag call sites that would rendezvous together.
type tagKey struct {
	op   string
	comm string
	tag  string
}

func runTags(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			rd := newRankDep(p.Prog, info, fd.Body)
			bodies := taskBodies(info, fd.Body)
			inTask := func(n ast.Node) bool {
				for _, b := range bodies {
					if within(n, b) {
						return true
					}
				}
				return false
			}
			sites := map[tagKey][]tagSite{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				t := targetOf(fn)
				sig, isColl := mpiCollectives[t]
				if !isColl || sig.tagArg >= len(call.Args) {
					return true
				}
				tagExpr := call.Args[sig.tagArg]
				if rd.dependent(tagExpr) {
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(tagExpr.Pos()),
						Rule: "tags",
						Message: fmt.Sprintf("rank-dependent tag on collective %s; tags must be identical on every rank for the calls to match",
							t.name),
					})
					return true
				}
				tv := info.Types[tagExpr]
				if tv.Value == nil {
					return true
				}
				var commExpr ast.Expr
				if sig.commArg >= 0 && sig.commArg < len(call.Args) {
					commExpr = call.Args[sig.commArg]
				} else {
					commExpr = receiverExpr(call)
				}
				commText := ""
				if commExpr != nil {
					commText = types.ExprString(commExpr)
				}
				key := tagKey{op: t.name, comm: commText, tag: tv.Value.ExactString()}
				sites[key] = append(sites[key], tagSite{call: call, op: t.name, inTask: inTask(call)})
				return true
			})
			for key, ss := range sites {
				if len(ss) < 2 {
					continue
				}
				anyTask := false
				for _, s := range ss {
					if s.inTask {
						anyTask = true
					}
				}
				if !anyTask {
					// Purely sequential reuse of a tag is well-defined:
					// calls match in per-rank call order.
					continue
				}
				for _, s := range ss {
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(s.call.Pos()),
						Rule: "tags",
						Message: fmt.Sprintf("tag %s reused for %s on %q at %d sites of this function, at least one inside a task body; concurrent collectives need distinct tags",
							key.tag, key.op, key.comm, len(ss)),
					})
				}
			}
		}
	}
	return diags
}
