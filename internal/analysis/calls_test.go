package analysis

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// TestCalleeResolution pins calleeFunc/keyOf behaviour on the resolution
// edge cases the call graph depends on: embedded-field promotion, type
// aliases, instantiated generics (explicit and inferred), and the two
// dynamic shapes (method values, method-expression values) that must
// resolve to nothing rather than to a wrong edge.
func TestCalleeResolution(t *testing.T) {
	ldr := newTestLoader(t)
	pkg, err := ldr.Load(filepath.Join("testdata", "callees"))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("testdata/callees does not type-check: %v", terr)
	}

	var body *ast.BlockStmt
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "useAll" {
				body = fd.Body
			}
		}
	}
	if body == nil {
		t.Fatal("useAll not found")
	}

	// Expected resolution per call expression of useAll, in source order.
	// Empty key = the call must NOT resolve (dynamic call through a
	// function-typed variable).
	want := []FuncKey{
		{Pkg: pkg.Path, Recv: "Inner", Name: "Ping"}, // o.Ping()
		{Pkg: pkg.Path, Recv: "Inner", Name: "Ping"}, // a.Ping() via alias
		{Pkg: pkg.Path, Name: "Generic"},             // Generic[int](1)
		{Pkg: pkg.Path, Name: "Generic"},             // Generic("s")
		{},                                           // f() method value
		{},                                           // g(Inner{}) method-expression value
		{Pkg: pkg.Path, Recv: "Inner", Name: "Ping"}, // Inner.Ping(Inner{})
	}

	var got []FuncKey
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			got = append(got, keyOf(fn))
		} else {
			got = append(got, FuncKey{})
		}
		return true
	})

	if len(got) != len(want) {
		t.Fatalf("found %d call expressions, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("call %d resolved to %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSummaryPath pins the effect-summary fixpoint and path rendering on
// the parbody testdata's two-level helper chain (helperChainInBody ->
// distribute -> shuffle -> mpi.Alltoallv).
func TestSummaryPath(t *testing.T) {
	ldr := newTestLoader(t)
	pkg, err := ldr.Load(filepath.Join("testdata", "parbody"))
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(ldr, []*Package{pkg})

	shuffle := FuncKey{Pkg: pkg.Path, Name: "shuffle"}
	distribute := FuncKey{Pkg: pkg.Path, Name: "distribute"}

	s := prog.SummaryByKey(distribute)
	if s == nil {
		t.Fatal("no summary for distribute")
	}
	for _, e := range []Effect{EffCollective, EffBlocks, EffRuntime} {
		if !s.Set.Has(e) {
			t.Errorf("distribute summary missing effect %d", e)
		}
	}
	if s.Set.Has(EffCharges) || s.Set.Has(EffSubmits) {
		t.Errorf("distribute summary has spurious effects: %016b", s.Set)
	}

	if got := callPath(prog, distribute, EffCollective); got != "parbody.distribute → parbody.shuffle → mpi.Alltoallv" {
		t.Errorf("callPath(distribute) = %q", got)
	}
	if got := callPath(prog, shuffle, EffCollective); got != "parbody.shuffle → mpi.Alltoallv" {
		t.Errorf("callPath(shuffle) = %q", got)
	}

	pure := prog.SummaryByKey(FuncKey{Pkg: pkg.Path, Name: "pureHelper"})
	if pure == nil {
		t.Fatal("no summary for pureHelper")
	}
	if pure.Set != 0 {
		t.Errorf("pureHelper summary should be empty, got %016b", pure.Set)
	}
}

// TestRankTaint pins the interprocedural rank-taint fixpoint on the
// divergence testdata (myRank -> rankPlusOne, two levels).
func TestRankTaint(t *testing.T) {
	ldr := newTestLoader(t)
	pkg, err := ldr.Load(filepath.Join("testdata", "divergence"))
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(ldr, []*Package{pkg})

	for _, name := range []string{"myRank", "rankPlusOne"} {
		s := prog.SummaryByKey(FuncKey{Pkg: pkg.Path, Name: name})
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		if !s.Set.Has(EffRankReturn) {
			t.Errorf("%s should be rank-tainted", name)
		}
	}
	s := prog.SummaryByKey(FuncKey{Pkg: pkg.Path, Name: "syncAll"})
	if s == nil {
		t.Fatal("no summary for syncAll")
	}
	if s.Set.Has(EffRankReturn) {
		t.Error("syncAll returns nothing and must not be rank-tainted")
	}
}
