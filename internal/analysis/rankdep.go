package analysis

import (
	"go/ast"
	"go/types"
)

// rankDep computes which expressions of a function depend on the calling
// rank's identity: direct reads of mpi.Ctx.Rank, calls to mpi.Comm.RankIn,
// calls to module functions whose summaries carry EffRankReturn, and local
// variables (transitively) assigned from such expressions. The divergence
// and tags rules and the rank-taint fixpoint (taint.go) share it.
type rankDep struct {
	prog *Program // nil degrades to the intraprocedural facts
	info *types.Info
	vars map[types.Object]bool
}

// newRankDep builds the rank-dependence facts for one function body by
// fixpoint over its assignments (nested function literals included: a
// captured rank-dependent variable stays rank-dependent).
func newRankDep(prog *Program, info *types.Info, body ast.Node) *rankDep {
	rd := &rankDep{prog: prog, info: info, vars: map[types.Object]bool{}}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						changed = rd.markAssign(lhs, s.Rhs[i]) || changed
					}
				} else {
					// Multi-value assignment: taint every target if any
					// source is rank-dependent.
					for _, rhs := range s.Rhs {
						if rd.dependent(rhs) {
							for _, lhs := range s.Lhs {
								changed = rd.markVar(lhs) || changed
							}
							break
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && rd.dependent(s.Values[i]) {
						if obj := rd.info.Defs[name]; obj != nil && !rd.vars[obj] {
							rd.vars[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return rd
}

func (rd *rankDep) markAssign(lhs, rhs ast.Expr) bool {
	if !rd.dependent(rhs) {
		return false
	}
	return rd.markVar(lhs)
}

func (rd *rankDep) markVar(lhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := rd.info.Defs[id]
	if obj == nil {
		obj = rd.info.Uses[id]
	}
	if obj == nil || rd.vars[obj] {
		return false
	}
	rd.vars[obj] = true
	return true
}

// dependent reports whether evaluating e reads the calling rank's identity.
func (rd *rankDep) dependent(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Rank" {
				if tv, ok := rd.info.Types[x.X]; ok && typeIs(tv.Type, "internal/mpi", "Ctx") {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(rd.info, x); fn != nil {
				t := targetOf(fn)
				if t.pkg == "internal/mpi" && t.recv == "Comm" && t.name == "RankIn" {
					found = true
					return false
				}
				if s := rd.prog.SummaryFor(fn); s != nil && s.Set.Has(EffRankReturn) {
					found = true
					return false
				}
			}
		case *ast.Ident:
			obj := rd.info.Uses[x]
			if obj == nil {
				obj = rd.info.Defs[x]
			}
			if obj != nil && rd.vars[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
