package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ParBodyRule flags simulated-runtime calls inside par.ParallelFor bodies.
// A ParallelFor body runs on bare host goroutines outside the virtual-time
// engine: it has no lane, no simulated process and no place in the
// discrete-event schedule. Blocking mpi/vtime entry points deadlock there
// (nobody advances virtual time on a host worker — the same class of bug as
// blockintask), collective posts and task submissions corrupt the engine's
// deterministic ordering, and Compute charges instructions from a thread
// the cost model does not know. Host-parallel bodies must be pure numeric
// kernels over their own index range; all simulated-time accounting belongs
// in the enclosing phase.
var ParBodyRule = Rule{
	Name: "parbody",
	Doc:  "par.ParallelFor bodies must not touch mpi/vtime/ompss state",
	Run:  runParBody,
}

// computeCharges are the simulated instruction-accounting entry points; they
// may only run on a simulated lane, never on a host worker.
var computeCharges = map[callTarget]bool{
	{"internal/mpi", "Ctx", "Compute"}:      true,
	{"internal/vtime", "Proc", "Compute"}:   true,
	{"internal/ompss", "Worker", "Compute"}: true,
}

// parallelForBodies collects the function literals passed to
// par.ParallelFor — and to the work-stealing Pool.ParallelFor, whose bodies
// run on the same bare host goroutines (stolen chunks execute on whichever
// pool worker claims them) — anywhere under root.
func parallelForBodies(info *types.Info, root ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		t := targetOf(fn)
		if t.pkg != "internal/par" || t.name != "ParallelFor" || (t.recv != "" && t.recv != "Pool") {
			return true
		}
		if lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

func runParBody(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		bodies := parallelForBodies(info, f)
		for _, lit := range bodies {
			isNestedBody := func(n *ast.FuncLit) bool {
				for _, b := range bodies {
					if b == n && b != lit {
						return true
					}
				}
				return false
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && isNestedBody(fl) {
					return false // the nested body is its own unit
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				t := targetOf(fn)
				var what string
				if _, isColl := mpiCollectives[t]; isColl {
					what = "posts an MPI collective"
				} else if _, isBlocking := blockingCalls[t]; isBlocking {
					what = "blocks the simulated runtime"
				} else if taskSubmitters[t] {
					what = "submits an ompss task"
				} else if computeCharges[t] {
					what = "charges simulated compute time"
				} else {
					// Interprocedural: a module helper whose effect summary
					// carries one of the banned behaviours.
					if s := p.Prog.SummaryFor(fn); s != nil {
						if e, verb, banned := firstBannedEffect(s.Set); banned {
							diags = append(diags, Diagnostic{
								Pos:  p.Fset.Position(call.Pos()),
								Rule: "parbody",
								Message: fmt.Sprintf("call to %s %s (%s) inside a par.ParallelFor body, which runs on host goroutines outside the virtual-time engine; keep host-parallel bodies pure numeric and do all mpi/vtime/ompss work in the enclosing phase",
									s.Key.Display(), verb, callPath(p.Prog, s.Key, e)),
							})
						}
					}
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "parbody",
					Message: fmt.Sprintf("%s %s inside a par.ParallelFor body, which runs on host goroutines outside the virtual-time engine; keep host-parallel bodies pure numeric and do all mpi/vtime/ompss work in the enclosing phase",
						t.name, what),
				})
				return true
			})
		}
	}
	return diags
}
