package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Interprocedural rank taint. A function whose return value derives from
// the calling rank's identity (mpi.Ctx.Rank, mpi.Comm.RankIn, or a call to
// another rank-returning function) gets EffRankReturn; the summary-aware
// rankDep (rankdep.go) then treats calls to such functions as rank reads,
// so the divergence and tags rules see through helpers like
//
//	func myRank(ctx *mpi.Ctx, c *mpi.Comm) int { return c.RankIn(ctx) }
//
// Unlike the other effects, EffRankReturn does not propagate along plain
// call edges — calling a rank-returning helper and discarding the result
// does not make the caller rank-dependent; only explicit return-value flow
// does. That needs its own fixpoint: each round rebuilds the per-function
// taint facts with the summaries of the previous round until no function
// changes.

// computeRankTaint runs after computeSummaries (it consults the finished
// effect sets while adding EffRankReturn bits).
func (p *Program) computeRankTaint() {
	for changed := true; changed; {
		changed = false
		for _, k := range p.keys {
			sum := p.sums[k]
			if sum.Set.Has(EffRankReturn) {
				continue
			}
			n := p.nodes[k]
			if n.decl.Type.Results == nil || len(n.decl.Type.Results.List) == 0 {
				continue
			}
			if o, tainted := p.rankReturn(n); tainted {
				sum.add(EffRankReturn, o)
				changed = true
			}
		}
	}
}

// rankReturn reports whether any return statement of the node's own body
// returns a rank-dependent value, with the origin of the first one found.
func (p *Program) rankReturn(n *funcNode) (origin, bool) {
	info := n.pkg.Info
	rd := newRankDep(p, info, n.decl.Body)
	named := namedResults(info, n.decl)
	var o origin
	found := false
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		// A literal's return statements belong to the literal, not to this
		// function.
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, obj := range named {
				if rd.vars[obj] {
					o = origin{pos: ret.Pos(), desc: "rank-dependent named result"}
					found = true
					break
				}
			}
			return true
		}
		for _, e := range ret.Results {
			if rd.dependent(e) {
				o = p.returnOrigin(info, e, ret.Pos())
				found = true
				break
			}
		}
		return true
	})
	return o, found
}

// namedResults collects the objects of a declaration's named results.
func namedResults(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if fd.Type.Results == nil {
		return nil
	}
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// returnOrigin pins the rank source inside a returned expression: a call to
// a rank-returning module function (chainable), a direct RankIn call, or a
// Ctx.Rank read.
func (p *Program) returnOrigin(info *types.Info, e ast.Expr, fallback token.Pos) origin {
	o := origin{pos: fallback, desc: "mpi.Ctx.Rank read"}
	done := false
	ast.Inspect(e, func(n ast.Node) bool {
		if done {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		t := targetOf(fn)
		if t.pkg == "internal/mpi" && t.recv == "Comm" && t.name == "RankIn" {
			o = origin{pos: call.Pos(), desc: "mpi.Comm.RankIn"}
			done = true
			return false
		}
		if s := p.SummaryFor(fn); s != nil && s.Set.Has(EffRankReturn) {
			o = origin{pos: call.Pos(), desc: keyOf(fn).Display(), callee: keyOf(fn)}
			done = true
			return false
		}
		return true
	})
	return o
}
