package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HandlerBodyRule flags simulated-runtime calls inside HTTP handler bodies.
// A handler — any function with the net/http signature
// (http.ResponseWriter, *http.Request) — runs on a net/http service
// goroutine: like a par.ParallelFor body it has no lane, no simulated
// process and no place in the discrete-event schedule, and unlike a
// ParallelFor body it also holds a client connection open for as long as it
// runs. Touching internal/mpi, internal/vtime or internal/ompss from there
// either deadlocks (nobody advances virtual time on a service goroutine) or
// corrupts the engine's deterministic ordering. Handlers must stay thin:
// decode, admit to the bounded queue, wait on the task outcome; all
// simulated work runs on the worker pool (internal/serve's exec layer) or
// behind cost-mode entry points like fftx.Run, which the workers call.
//
// The rule also roots at handler-rooted helpers — functions whose first two
// parameters are (http.ResponseWriter, *http.Request) but that take extra
// arguments or return values, the shape of the cluster router's proxy and
// membership helpers. A handler hands them the live exchange, so their
// bodies run on the same service goroutine as the handler itself.
var HandlerBodyRule = Rule{
	Name: "handlerbody",
	Doc:  "HTTP handler bodies must not touch mpi/vtime/ompss state",
	Run:  runHandlerBody,
}

// simulatedRuntimePkgs are the packages a handler body may not call into.
var simulatedRuntimePkgs = map[string]bool{
	"internal/mpi":   true,
	"internal/vtime": true,
	"internal/ompss": true,
}

// isHandlerRooted reports whether sig leads with the handler parameter
// pair (http.ResponseWriter, *http.Request). That covers the exact
// net/http handler shape and the helpers a handler passes its exchange to
// — proxy relays, membership decoders and the like, which take extra
// arguments or return values but still run synchronously on the service
// goroutine. Calls reached from either are on a net/http goroutine, so
// the rule roots at both.
func isHandlerRooted(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() < 2 {
		return false
	}
	return typeIs(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		typeIs(sig.Params().At(1).Type(), "net/http", "Request")
}

// handlerBodies collects the bodies of handler-rooted functions in f: both
// declared methods/functions and function literals (as registered with
// mux.HandleFunc).
func handlerBodies(info *types.Info, f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return true
			}
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
				if sig, ok := obj.Type().(*types.Signature); ok && isHandlerRooted(sig) {
					bodies = append(bodies, fn.Body)
				}
			}
		case *ast.FuncLit:
			if sig, ok := info.Types[fn].Type.(*types.Signature); ok && isHandlerRooted(sig) {
				bodies = append(bodies, fn.Body)
			}
		}
		return true
	})
	return bodies
}

func runHandlerBody(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, body := range handlerBodies(info, f) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				t := targetOf(fn)
				if !simulatedRuntimePkgs[t.pkg] {
					// Interprocedural: a module helper that reaches the
					// simulated runtime anywhere down its call chain.
					if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffRuntime) {
						diags = append(diags, Diagnostic{
							Pos:  p.Fset.Position(call.Pos()),
							Rule: "handlerbody",
							Message: fmt.Sprintf("call to %s reaches the simulated runtime (%s) inside an HTTP handler, which runs on a net/http goroutine outside the virtual-time engine; keep handlers thin (decode, admit, await) and do all simulated-runtime work on the worker pool",
								s.Key.Display(), callPath(p.Prog, s.Key, EffRuntime)),
						})
					}
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "handlerbody",
					Message: fmt.Sprintf("%s calls %s inside an HTTP handler, which runs on a net/http goroutine outside the virtual-time engine; keep handlers thin (decode, admit, await) and do all simulated-runtime work on the worker pool",
						t.name, t.pkg),
				})
				return true
			})
		}
	}
	return diags
}
