package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CopyValueRule flags by-value copies of the runtime handle types. These
// types carry identity and mutable internal state (wait queues, rendezvous
// maps, dependency graphs); a copy silently forks that state, so two
// apparently identical handles stop observing each other. Creating a fresh
// value with a composite literal or receiving one from a constructor is
// fine — only copies of an existing value are flagged (the go vet
// copylocks convention).
var CopyValueRule = Rule{
	Name: "copyvalue",
	Doc:  "runtime handle types must be passed by pointer, never copied",
	Run:  runCopyValue,
}

// handleTypes lists the types whose values must not be copied, as
// (package-path suffix, type name) pairs.
var handleTypes = [][2]string{
	{"internal/vtime", "Engine"},
	{"internal/vtime", "Proc"},
	{"internal/vtime", "Semaphore"},
	{"internal/vtime", "WaitQueue"},
	{"internal/vtime", "Queue"},
	{"internal/vtime", "Barrier"},
	{"internal/mpi", "World"},
	{"internal/mpi", "Ctx"},
	{"internal/mpi", "Comm"},
	{"internal/ompss", "Runtime"},
	{"internal/ompss", "Group"},
	{"internal/ompss", "Task"},
	{"internal/ompss", "Promise"},
}

// handleType returns a display name like "mpi.Ctx" when t is a
// non-pointer handle type, or "" otherwise.
func handleType(t types.Type) string {
	if t == nil {
		return ""
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	for _, h := range handleTypes {
		if typeIs(t, h[0], h[1]) {
			n := namedOf(t)
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
	}
	return ""
}

// copiesValue reports whether the expression reads an existing value (as
// opposed to creating a fresh one via composite literal or call).
func copiesValue(e ast.Expr) bool {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func runCopyValue(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     p.Fset.Position(n.Pos()),
			Rule:    "copyvalue",
			Message: fmt.Sprintf(format, args...),
		})
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if name := handleType(tv.Type); name != "" {
				report(field.Type, "%s passes %s by value; use *%s", what, name, name)
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(x.Recv, "receiver")
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if len(x.Lhs) == len(x.Rhs) {
						// Discarding into the blank identifier copies
						// nothing observable.
						if id, ok := unparen(x.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if !copiesValue(rhs) {
						continue
					}
					tv, ok := info.Types[rhs]
					if !ok {
						continue
					}
					if name := handleType(tv.Type); name != "" {
						report(rhs, "assignment copies %s by value; use a pointer", name)
					}
				}
			case *ast.ValueSpec:
				for _, rhs := range x.Values {
					if !copiesValue(rhs) {
						continue
					}
					tv, ok := info.Types[rhs]
					if !ok {
						continue
					}
					if name := handleType(tv.Type); name != "" {
						report(rhs, "declaration copies %s by value; use a pointer", name)
					}
				}
			case *ast.RangeStmt:
				// The value ident of a := range clause is a definition, so
				// its type lives in Defs rather than Types; TypeOf checks both.
				if x.Value != nil {
					if name := handleType(info.TypeOf(x.Value)); name != "" {
						report(x.Value, "range clause copies %s by value per iteration; range over pointers", name)
					}
				}
			}
			return true
		})
	}
	return diags
}
