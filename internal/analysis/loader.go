package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (or a synthesized one for testdata dirs)
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors are the soft type-check errors (the AST and most of Info
	// stay usable); rules still run, but callers should report them.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module offline, with only
// the standard library's go/* packages: module-internal imports are
// type-checked from source recursively, standard-library imports come from
// the toolchain's export data.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at modRoot (the
// directory containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", modRoot, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.Default(),
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// ModRoot returns the loader's module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// ModPath returns the loader's module import path.
func (l *Loader) ModPath() string { return l.modPath }

// Import implements types.Importer: module-internal packages are
// type-checked from source, everything else resolves through the compiler's
// export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p := l.cache[path]; p != nil {
		return p, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.load(path, dir, false)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg.Pkg
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir with full type
// information, ready for rule runs. Test files are excluded.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPath(abs)
	return l.load(path, abs, true)
}

// importPath derives the import path of a directory inside the module.
func (l *Loader) importPath(dir string) string {
	if rel, err := filepath.Rel(l.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(dir)
}

func (l *Loader) load(path, dir string, wantInfo bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	if wantInfo {
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, err := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Pkg = tp
	if err != nil && tp == nil {
		return nil, err
	}
	return pkg, nil
}

// Discover expands target patterns into package directories. Supported
// forms: "./..." (every package under the module root), "dir/..." (every
// package under dir) and plain directory paths. Directories named testdata,
// vendor, or starting with "." or "_" are skipped by the recursive forms,
// matching the go tool's convention.
func (l *Loader) Discover(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if pat == "..." {
			root, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root, recursive = rest, true
			if root == "" {
				root = "."
			}
		}
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != abs && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// FindModRoot walks up from dir to the nearest directory containing go.mod.
func FindModRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
