package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the expected-diagnostic convention used in testdata:
// a trailing comment of the form `// want "substring"` on the offending
// line. Each diagnostic must match exactly one want on its line, and every
// want must be claimed by a diagnostic.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	ldr, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return ldr
}

type wantDiag struct {
	file    string
	line    int
	substr  string
	matched bool
}

// runRuleTest loads testdata/<dir>, runs one rule, and checks the produced
// diagnostics against the want comments in both directions.
func runRuleTest(t *testing.T, dir string, rule Rule) {
	t.Helper()
	ldr := newTestLoader(t)
	pkg, err := ldr.Load(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("load testdata/%s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata/%s does not type-check: %v", dir, terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	var wants []*wantDiag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := ldr.Fset.Position(c.Pos())
				wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, substr: m[1]})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata/%s has no want comments", dir)
	}

	prog := NewProgram(ldr, []*Package{pkg})
	for _, d := range RunRules(prog, pkg, []Rule{rule}) {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestDivergenceRule(t *testing.T)  { runRuleTest(t, "divergence", DivergenceRule) }
func TestTagsRule(t *testing.T)        { runRuleTest(t, "tags", TagsRule) }
func TestBlockInTaskRule(t *testing.T) { runRuleTest(t, "blockintask", BlockInTaskRule) }
func TestCopyValueRule(t *testing.T)   { runRuleTest(t, "copyvalue", CopyValueRule) }
func TestParBodyRule(t *testing.T)     { runRuleTest(t, "parbody", ParBodyRule) }
func TestHandlerBodyRule(t *testing.T) { runRuleTest(t, "handlerbody", HandlerBodyRule) }
func TestStagePureRule(t *testing.T)   { runRuleTest(t, "stagepure", StagePureRule) }
func TestHotAllocRule(t *testing.T)    { runRuleTest(t, "hotalloc", HotAllocRule) }
func TestWaitLeakRule(t *testing.T)    { runRuleTest(t, "waitleak", WaitLeakRule) }
func TestSpanBalanceRule(t *testing.T) { runRuleTest(t, "spanbalance", SpanBalanceRule) }

// TestUnusedIgnores checks the //fftxvet:ignore bookkeeping: a comment that
// suppresses a real finding is consumed silently, a stale one is reported.
func TestUnusedIgnores(t *testing.T) {
	ldr := newTestLoader(t)
	pkg, err := ldr.Load(filepath.Join("testdata", "ignores"))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("testdata/ignores does not type-check: %v", terr)
	}
	prog := NewProgram(ldr, []*Package{pkg})
	diags, unused := RunRulesWithIgnores(prog, pkg, AllRules())
	for _, d := range diags {
		t.Errorf("finding not suppressed: %s", d)
	}
	if len(unused) != 1 {
		t.Fatalf("got %d unused-ignore reports, want 1: %v", len(unused), unused)
	}
	if unused[0].Rule != "unused-ignore" || !strings.Contains(unused[0].Message, "stale") {
		t.Errorf("unexpected unused-ignore report: %s", unused[0])
	}
}

// TestModuleClean is the dogfooding gate: every package in the module must
// pass every rule with zero findings (modulo in-tree suppressions).
func TestModuleClean(t *testing.T) {
	ldr := newTestLoader(t)
	dirs, err := ldr.Discover([]string{ldr.ModRoot() + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no packages discovered")
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := ldr.Load(dir)
		if err != nil {
			t.Errorf("load %s: %v", dir, err)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", dir, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	if t.Failed() {
		t.FailNow()
	}
	prog := NewProgram(ldr, pkgs)
	for _, pkg := range pkgs {
		diags, unused := RunRulesWithIgnores(prog, pkg, AllRules())
		for _, d := range diags {
			t.Errorf("finding in clean tree: %s", d)
		}
		for _, d := range unused {
			t.Errorf("stale suppression in clean tree: %s", d)
		}
	}
}

func TestRuleByName(t *testing.T) {
	for _, r := range AllRules() {
		got, ok := RuleByName(r.Name)
		if !ok || got.Name != r.Name {
			t.Errorf("RuleByName(%q) = %v, %v", r.Name, got.Name, ok)
		}
	}
	if _, ok := RuleByName("nosuchrule"); ok {
		t.Error("RuleByName accepted an unknown rule")
	}
}
