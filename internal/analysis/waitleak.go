package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// WaitLeakRule enforces the admission discipline of internal/serve: every
// send on a Server's admission queue must be dominated by a drain guard
// (reading the draining flag or calling Draining()) AND a deadline check
// (calling task.expired or reading the deadline field) so that requests are
// rejected with 503 + Retry-After instead of queueing unboundedly into a
// server that will never serve them. The canonical shape is Server.admit in
// internal/serve/batch.go: RLock, draining check, expired check, then a
// non-blocking select send.
//
// The domination check is lexical within the enclosing function declaration
// — each guard must appear before the send — which matches how admission
// code is actually written and keeps the rule dependency-free; a guard
// hidden behind a helper call does not count, by design: admission re-checks
// must be visibly local to the enqueue.
var WaitLeakRule = Rule{
	Name: "waitleak",
	Doc:  "admission-queue sends must be dominated by drain and deadline guards",
	Run:  runWaitLeak,
}

func runWaitLeak(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				send, ok := n.(*ast.SendStmt)
				if !ok {
					return true
				}
				sel, ok := unparen(send.Chan).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "queue" {
					return true
				}
				tv, ok := info.Types[sel.X]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil || named.Obj().Name() != "Server" {
					return true
				}
				drain, deadline := guardsBefore(fd.Body, send.Pos())
				var missing []string
				if !drain {
					missing = append(missing, "a drain guard (draining / Draining())")
				}
				if !deadline {
					missing = append(missing, "a deadline check (expired / deadline)")
				}
				if len(missing) == 0 {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(send.Pos()),
					Rule: "waitleak",
					Message: fmt.Sprintf("send on %s.queue is not dominated by %s; admission must re-check draining and the request deadline, rejecting with 503 + Retry-After instead of queueing unboundedly",
						named.Obj().Name(), strings.Join(missing, " or ")),
				})
				return true
			})
		}
	}
	return diags
}

// guardsBefore scans the function body for drain and deadline guards that
// appear lexically before pos: a read of a draining field or a Draining()
// call, and an expired(...) call or a deadline field read.
func guardsBefore(body *ast.BlockStmt, pos token.Pos) (drain, deadline bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() >= pos {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			switch x.Sel.Name {
			case "draining":
				drain = true
			case "deadline":
				deadline = true
			}
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Draining":
					drain = true
				case "expired":
					deadline = true
				}
			}
		}
		return true
	})
	return drain, deadline
}
