package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// StagePureRule flags simulated-runtime calls inside graph.Stage closures.
// The stage-graph IR (internal/fftx/graph) describes the FFT pipeline as
// data: each Stage carries pure model closures (Instr, Bytes, Count) and
// pure numeric transforms (Body, Part) that every engine executes under its
// own scheduling policy. Synchronization, communication and compute-time
// accounting are the scheduler's job — a stage body that reaches into
// internal/mpi, internal/vtime or internal/ompss would run collectives or
// charge simulated time once per engine policy instead of once per the
// graph's contract, silently breaking cross-engine equivalence. The same
// ban applies to the whole graph package: it is deliberately runtime-free.
var StagePureRule = Rule{
	Name: "stagepure",
	Doc:  "graph.Stage closures (and the graph package) must not touch mpi/vtime/ompss",
	Run:  runStagePure,
}

// stageClosureFields are the graph.Stage fields that hold the pure model
// and numeric closures the rule polices.
var stageClosureFields = map[string]bool{
	"Instr": true, // instruction model
	"Bytes": true, // communication-volume model
	"Count": true, // task-loop partition domain
	"Body":  true, // whole-stage numeric transform
	"Part":  true, // sub-range numeric transform
}

// graphPkgSuffix identifies the stage-graph package itself, which must stay
// runtime-free end to end (helpers included, not just literal closures).
const graphPkgSuffix = "/fftx/graph"

// isStageLit reports whether lit builds a value of the graph package's
// Stage type.
func isStageLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	return ok && typeIs(tv.Type, "fftx/graph", "Stage")
}

// packageFuncDecls maps the package's declared functions and methods to
// their bodies, so closures spelled as function references (Body: helper)
// are checked like inline literals.
func packageFuncDecls(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func runStagePure(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic

	seen := map[ast.Node]bool{}
	checkBody := func(body ast.Node, where string) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			t := targetOf(fn)
			if !simulatedRuntimePkgs[t.pkg] {
				// Interprocedural: a module helper that reaches the
				// simulated runtime anywhere down its call chain.
				if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffRuntime) {
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "stagepure",
						Message: fmt.Sprintf("call to %s reaches the simulated runtime (%s) %s; stage closures are pure model/numeric code — synchronization, communication and compute accounting belong to the scheduler that walks the graph",
							s.Key.Display(), callPath(p.Prog, s.Key, EffRuntime), where),
					})
				}
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "stagepure",
				Message: fmt.Sprintf("%s calls %s %s; stage closures are pure model/numeric code — synchronization, communication and compute accounting belong to the scheduler that walks the graph",
					t.name, t.pkg, where),
			})
			return true
		})
	}

	// checkRef polices a closure wired in as a function reference: same-
	// package declarations are scanned like inline literals, anything else
	// is judged by its effect summary at the reference site.
	decls := packageFuncDecls(info, p.Pkg.Files)
	checkRef := func(fn *types.Func, pos ast.Node, where string) {
		if fd := decls[fn]; fd != nil {
			checkBody(fd.Body, where)
			return
		}
		if s := p.Prog.SummaryFor(fn); s != nil && s.Set.Has(EffRuntime) {
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(pos.Pos()),
				Rule: "stagepure",
				Message: fmt.Sprintf("closure %s reaches the simulated runtime (%s) %s; stage closures are pure model/numeric code — synchronization, communication and compute accounting belong to the scheduler that walks the graph",
					s.Key.Display(), callPath(p.Prog, s.Key, EffRuntime), where),
			})
		}
	}

	// The graph package itself is runtime-free wholesale: any mpi/vtime/ompss
	// call there is a violation, helper functions included.
	if strings.HasSuffix(p.Pkg.Path, graphPkgSuffix) {
		for _, f := range p.Pkg.Files {
			checkBody(f, "in the runtime-free stage-graph package")
		}
		return diags
	}

	// Everywhere else, police the closures wired into graph.Stage literals:
	// inline function literals and function references.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isStageLit(info, lit) {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !stageClosureFields[key.Name] {
					continue
				}
				where := fmt.Sprintf("in a graph.Stage %s closure", key.Name)
				switch v := unparen(kv.Value).(type) {
				case *ast.FuncLit:
					checkBody(v.Body, where)
				case *ast.Ident:
					if fn, ok := info.Uses[v].(*types.Func); ok {
						checkRef(fn, v, where)
					}
				case *ast.SelectorExpr:
					if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
						checkRef(fn, v, where)
					}
				}
			}
			return true
		})
	}
	return diags
}
