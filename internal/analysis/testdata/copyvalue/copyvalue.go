// Package copyvalue seeds violations of the copyvalue rule: by-value
// copies of the runtime handle types.
package copyvalue

import (
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

func byValueParam(w mpi.World) int { // want "passes mpi.World by value"
	return w.Size
}

func derefCopy(ctx *mpi.Ctx) mpi.Ctx { // want "passes mpi.Ctx by value"
	c := *ctx // want "copies mpi.Ctx"
	return c
}

func varCopy(e vtime.Engine) { // want "passes vtime.Engine by value"
	e2 := e // want "copies vtime.Engine"
	use(&e2)
}

func rangeCopy(cs []mpi.Comm) {
	for _, c := range cs { // want "range clause copies mpi.Comm"
		use(&c)
	}
}

func groupParam(g ompss.Group) { // want "passes ompss.Group by value"
	use(&g)
}

// freshValue is allowed: a composite literal creates a new value rather
// than forking an existing handle's state, and pointers never copy.
func freshValue(w *mpi.World) *mpi.Ctx {
	ctx := mpi.Ctx{W: w}
	return &ctx
}

func use(any) {}
