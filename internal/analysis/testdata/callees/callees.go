// Package callees exercises the callee-resolution edge cases of
// calleeFunc/keyOf: embedded-field promotion, type aliases, instantiated
// generics, method values and method expressions. calls_test.go walks
// useAll's call expressions in source order and checks what resolves.
package callees

type Inner struct{}

func (Inner) Ping() int { return 1 }

type Outer struct{ Inner }

// AliasOuter aliases Outer: method calls through it resolve identically.
type AliasOuter = Outer

func Generic[T any](v T) T { return v }

func useAll(o Outer, a AliasOuter) {
	_ = o.Ping()            // promoted through the embedded field -> Inner.Ping
	_ = a.Ping()            // through the alias -> Inner.Ping
	_ = Generic[int](1)     // explicit instantiation -> origin Generic
	_ = Generic("s")        // inferred instantiation -> origin Generic
	f := o.Ping             // method value: the later f() is dynamic
	_ = f()                 // unresolvable (function-typed variable)
	g := Inner.Ping         // method expression as a value
	_ = g(Inner{})          // unresolvable (function-typed variable)
	_ = Inner.Ping(Inner{}) // direct method expression call -> Inner.Ping
}
