// Package ignores exercises //fftxvet:ignore bookkeeping: one comment that
// suppresses a real finding, and one stale comment on a clean line that the
// unused-ignore audit must report.
package ignores

import "repro/internal/mpi"

func guarded(ctx *mpi.Ctx, c *mpi.Comm) {
	if ctx.Rank == 0 {
		c.Barrier(ctx, 1) //fftxvet:ignore divergence — every rank satisfies the guard here
	}
}

func clean(out []float64) {
	//fftxvet:ignore parbody — stale: the ParallelFor below was inlined away
	for i := range out {
		out[i] = 0
	}
}
