package blockintask

// Dataflow-era cases: SubmitAfter task bodies obey the same captured-context
// discipline as every other submitter, Future.Wait never belongs in a task
// body, and continuation closures (Future.Then, Runtime.OnComplete) run
// inline in the runtime's completion path — they must never block, post
// collectives or charge compute time, wherever their state comes from.

import (
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

func capturedCtxInSubmitAfter(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm, f *ompss.Future) {
	rt.SubmitAfter(p, "band", []*ompss.Future{f}, 0, func(w *ompss.Worker) {
		c.Barrier(ctx, 1) // want "captured from outside"
	})
}

func futureWaitInTask(p *vtime.Proc, rt *ompss.Runtime, f *ompss.Future) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		f.Wait(w.Proc) // want "Future.Wait inside a task body"
	})
}

func blockingThen(p *vtime.Proc, f *ompss.Future, q *vtime.Queue[int]) {
	f.Then(p, func(hp *vtime.Proc) {
		_, _ = q.Pop(hp) // want "inside a continuation closure"
	})
}

func collectiveOnComplete(rt *ompss.Runtime, t *ompss.Task, ctx *mpi.Ctx, c *mpi.Comm) {
	rt.OnComplete(t, func(hp *vtime.Proc) {
		c.Barrier(ctx, 1) // want "inside a continuation closure"
	})
}

func chargeOnComplete(rt *ompss.Runtime, t *ompss.Task, ctx *mpi.Ctx) {
	rt.OnComplete(t, func(hp *vtime.Proc) {
		ctx.Compute("fft-z", knl.ClassStream, 10) // want "charges simulated compute time"
	})
}

// The interprocedural case reuses the settle → waitOn chain of interproc.go:
// a continuation blocking through helpers is flagged with the full path,
// regardless of where the context was captured.
func blockingThroughHelperInThen(p *vtime.Proc, f *ompss.Future, ctx *mpi.Ctx, c *mpi.Comm) {
	f.Then(p, func(hp *vtime.Proc) {
		_ = settle(ctx, c) // want "blockintask.settle → blockintask.waitOn → mpi.Recv"
	})
}

// releasingContinuation is the sanctioned shape: completing futures and
// submitting follow-up work is exactly what continuations are for.
func releasingContinuation(rt *ompss.Runtime, t *ompss.Task, next *ompss.Future) {
	rt.OnComplete(t, func(hp *vtime.Proc) {
		next.Complete(hp)
		rt.SubmitAfter(hp, "follow", nil, 0, func(w *ompss.Worker) {})
	})
}
