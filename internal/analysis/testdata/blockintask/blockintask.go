// Package blockintask seeds violations of the blockintask rule: blocking
// mpi/vtime calls inside ompss task bodies through captured outer contexts.
package blockintask

import (
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

func capturedCtx(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		c.Barrier(ctx, 1) // want "captured from outside"
	})
}

func capturedProc(p *vtime.Proc, rt *ompss.Runtime, q *vtime.Queue[int]) {
	rt.TaskLoop(p, "loop", 4, 1, func(w *ompss.Worker, lo, hi int) {
		_, _ = q.Pop(p) // want "captured from outside"
	})
}

func capturedSend(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm) {
	g := rt.NewGroup()
	rt.SubmitInGroup(p, g, "send", nil, 0, func(w *ompss.Worker) {
		mpi.Send(ctx, c, 1, 3, []float64{1}, 8) // want "captured from outside"
	})
}

func taskwaitInTask(p *vtime.Proc, rt *ompss.Runtime) {
	rt.Submit(p, "parent", nil, 0, func(w *ompss.Worker) {
		rt.Taskwait(w.Proc) // want "Taskwait inside a task body"
	})
}

// workerCtx is the sanctioned pattern: the MPI context is built from the
// worker's own process and lane inside the task body.
func workerCtx(p *vtime.Proc, rt *ompss.Runtime, world *mpi.World, c *mpi.Comm) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		ctx := &mpi.Ctx{W: world, Proc: w.Proc, Rank: 0, Lane: w.Lane}
		c.Barrier(ctx, 1)
	})
}

// groupWait is the lane-aware waiting entry point and stays exempt even
// though the group is captured from outside.
func groupWait(p *vtime.Proc, rt *ompss.Runtime) {
	g := rt.NewGroup()
	rt.SubmitInGroup(p, g, "parent", nil, 0, func(w *ompss.Worker) {
		g.Wait(w)
	})
}
