package blockintask

// Interprocedural cases: the task body blocks through a helper chain that
// carries a context captured from outside the task.

import (
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// waitOn blocks on a point-to-point receive at the bottom of the chain.
func waitOn(ctx *mpi.Ctx, c *mpi.Comm) []float64 {
	return mpi.Recv[float64](ctx, c, 1, 3)
}

// settle is the middle hop: it only forwards to waitOn.
func settle(ctx *mpi.Ctx, c *mpi.Comm) []float64 {
	return waitOn(ctx, c)
}

func capturedThroughHelpers(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		_ = settle(ctx, c) // want "blockintask.settle → blockintask.waitOn → mpi.Recv"
	})
}

// workerCtxThroughHelpers is the sanctioned counterpart: the same helper
// chain is safe when the waiting context is built from the worker's own
// process and lane inside the task body.
func workerCtxThroughHelpers(p *vtime.Proc, rt *ompss.Runtime, world *mpi.World, c *mpi.Comm) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		ctx := &mpi.Ctx{W: world, Proc: w.Proc, Rank: 0, Lane: w.Lane}
		_ = settle(ctx, c)
	})
}

// pureTransform keeps helper calls in task bodies legal when the helper
// never blocks.
func pureTransform(xs []float64) {
	for i := range xs {
		xs[i] *= 2
	}
}

func pureHelperInTask(p *vtime.Proc, rt *ompss.Runtime, xs []float64) {
	rt.Submit(p, "scale", nil, 0, func(w *ompss.Worker) {
		pureTransform(xs)
	})
}
