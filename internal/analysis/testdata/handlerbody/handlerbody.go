// Package handlerbody seeds violations of the handlerbody rule:
// simulated-runtime calls inside HTTP handler bodies, which run on net/http
// service goroutines outside the virtual-time engine.
package handlerbody

import (
	"net/http"

	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/par"
	"repro/internal/vtime"
)

type server struct {
	ctx *mpi.Ctx
	c   *mpi.Comm
	rt  *ompss.Runtime
	p   *vtime.Proc
	q   *vtime.Queue[int]
}

// handler methods are detected by signature, however they are registered.
func (s *server) handleBarrier(w http.ResponseWriter, r *http.Request) {
	s.c.Barrier(s.ctx, 1) // want "calls internal/mpi inside an HTTP handler"
}

func (s *server) handleCompute(w http.ResponseWriter, r *http.Request) {
	s.ctx.Compute("fft-z", knl.ClassStream, 100) // want "calls internal/mpi inside an HTTP handler"
	_, _ = s.q.Pop(s.p)                          // want "calls internal/vtime inside an HTTP handler"
}

// handler-shaped function literals (mux.HandleFunc style) count too.
func register(mux *http.ServeMux, s *server) {
	mux.HandleFunc("/task", func(w http.ResponseWriter, r *http.Request) {
		s.rt.Submit(s.p, "band", nil, 0, func(worker *ompss.Worker) {}) // want "calls internal/ompss inside an HTTP handler"
	})
}

// thinHandler is the sanctioned shape: decode, hand off to plain-host
// machinery, reply. Host-parallel numeric fan-out is fine — it never enters
// the simulated runtime.
func thinHandler(w http.ResponseWriter, r *http.Request) {
	out := make([]float64, 64)
	par.ParallelFor(len(out), 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
	})
	w.WriteHeader(http.StatusOK)
}

// notAHandler has a different signature; simulated-runtime calls here are
// the enclosing program's business, not this rule's.
func notAHandler(s *server) {
	s.c.Barrier(s.ctx, 1)
}
