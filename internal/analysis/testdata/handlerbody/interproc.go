package handlerbody

// Interprocedural cases: the handler stays syntactically thin but reaches
// the simulated runtime through a helper-method chain; the rule reports the
// helper call with the full path.

import "net/http"

// drainOne blocks on the virtual-time queue at the bottom of the chain.
func (s *server) drainOne() int {
	v, _ := s.q.Pop(s.p)
	return v
}

// refill is the middle hop: it only forwards to drainOne.
func (s *server) refill() int {
	return s.drainOne()
}

func (s *server) handleRefill(w http.ResponseWriter, r *http.Request) {
	_ = s.refill() // want "handlerbody.server.refill → handlerbody.server.drainOne → vtime.Queue.Pop"
	w.WriteHeader(http.StatusOK)
}

// stats is a pure helper: calling it from a handler is fine.
func (s *server) stats() int {
	n := 0
	if s.ctx != nil {
		n++
	}
	return n
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.stats() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
}
