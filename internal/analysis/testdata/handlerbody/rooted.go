package handlerbody

// Handler-rooted helpers: functions that lead with the handler parameter
// pair (http.ResponseWriter, *http.Request) but carry extra arguments or
// return values — the shape of a cluster router's proxy and membership
// helpers. A handler hands them the live exchange, so their bodies run on
// the same net/http service goroutine and get the same scrutiny, including
// interprocedurally.

import "net/http"

// readPeer is membership-decoder shaped: extra result. Direct
// simulated-runtime calls in it are flagged.
func (s *server) readPeer(w http.ResponseWriter, r *http.Request) string {
	s.c.Barrier(s.ctx, 1) // want "calls internal/mpi inside an HTTP handler"
	return r.RemoteAddr
}

// relayTo is proxy-relay shaped: extra arguments. It reaches the simulated
// runtime through a helper chain, so the interprocedural pass reports the
// helper call with its path.
func (s *server) relayTo(w http.ResponseWriter, r *http.Request, addr string, attempt int) {
	_ = s.refill() // want "handlerbody.server.refill → handlerbody.server.drainOne → vtime.Queue.Pop"
	w.WriteHeader(http.StatusBadGateway)
}

// thinRelay is the sanctioned helper shape: pure exchange plumbing.
func thinRelay(w http.ResponseWriter, r *http.Request, code int) {
	w.WriteHeader(code)
}

// swapped does not lead with the handler pair; it is not handler-rooted
// and simulated-runtime calls in it are some other caller's business.
func (s *server) swapped(r *http.Request, w http.ResponseWriter) {
	s.c.Barrier(s.ctx, 1)
}
