// Package spanbalance seeds violations of the spanbalance rule: span
// handles from Begin/BeginAt that are not closed by a deferred or
// all-paths End. The SpanSet/SpanRef types mirror internal/trace's
// request-span API by name, which is what the rule matches on.
package spanbalance

import "time"

type SpanSet struct{ n int }

type SpanRef struct{ set *SpanSet }

func (ss *SpanSet) Begin(name string) SpanRef                  { return SpanRef{set: ss} }
func (ss *SpanSet) BeginAt(name string, t time.Time) SpanRef   { return SpanRef{set: ss} }
func (r SpanRef) Begin(name string) SpanRef                    { return SpanRef{set: r.set} }
func (r SpanRef) BeginAt(name string, start time.Time) SpanRef { return SpanRef{set: r.set} }
func (r SpanRef) End()                                         {}
func (r SpanRef) EndAt(end time.Time)                          {}
func (r SpanRef) SetAttr(k, v string)                          {}

type task struct {
	root      SpanRef
	queueSpan SpanRef
}

// --- clean shapes ---

// sequential is the canonical balanced form: End in the span's own block.
func sequential(ss *SpanSet) {
	s := ss.Begin("decode")
	s.SetAttr("k", "v")
	s.End()
}

// deferred covers the whole function, early returns included.
func deferred(ss *SpanSet, fail bool) {
	s := ss.Begin("request")
	defer s.End()
	if fail {
		return
	}
	s.SetAttr("status", "200")
}

// deferredClosure ends the span inside a deferred func literal — the
// handler's root-span shape.
func deferredClosure(ss *SpanSet) {
	root := ss.BeginAt("request", time.Now())
	defer func() {
		root.SetAttr("status", "200")
		root.End()
	}()
	child := root.Begin("exec")
	child.End()
}

// endBeforeEveryReturn ends on both the early-return path and the
// fall-through path.
func endBeforeEveryReturn(ss *SpanSet, binary bool) {
	s := ss.Begin("encode")
	if binary {
		s.End()
		return
	}
	s.EndAt(time.Now())
}

// fieldStore transfers ownership to the task (another goroutine ends it).
func fieldStore(ss *SpanSet, t *task) {
	t.queueSpan = ss.Begin("queue")
}

// returned transfers ownership to the caller.
func returned(ss *SpanSet) SpanRef {
	return ss.Begin("handed-off")
}

func finish(r SpanRef) { r.End() }

// finishVia ends its parameter through a helper chain — the fixpoint must
// credit it as an ender too.
func finishVia(r SpanRef) { finish(r) }

// helperEnded passes the handle to an interprocedurally-known ender.
func helperEnded(ss *SpanSet) {
	s := ss.Begin("plan")
	finish(s)
}

// deferHelperEnded is `defer finish(span)`: a deferred End through the
// summary machinery.
func deferHelperEnded(ss *SpanSet, fail bool) {
	s := ss.Begin("exec")
	defer finishVia(s)
	if fail {
		return
	}
}

func consume(r SpanRef) {}

// passedOn hands the span to a callee that does not end it: ownership
// moves, the callee (or whoever it stores it for) is now responsible.
func passedOn(ss *SpanSet) {
	s := ss.Begin("given-away")
	consume(s)
}

// --- violations ---

// discarded drops the handle on the floor: nothing can ever end it.
func discarded(ss *SpanSet) {
	ss.Begin("dropped") // want "is discarded"
}

// neverEnded keeps the handle but never closes it.
func neverEnded(ss *SpanSet) {
	s := ss.Begin("leak") // want "not ended on every path"
	s.SetAttr("k", "v")
}

// conditionalEnd only ends the span on one branch — the other path leaks.
func conditionalEnd(ss *SpanSet, ok bool) {
	s := ss.Begin("maybe") // want "not ended on every path"
	if ok {
		s.End()
	}
}

// earlyReturn escapes between the Begin and the same-block End.
func earlyReturn(ss *SpanSet, fail bool) {
	s := ss.Begin("escape") // want "escapes through the return at line"
	if fail {
		return
	}
	s.End()
}
