// Package divergence seeds violations of the divergence rule: collectives
// that only some ranks reach. The expectations are encoded in the trailing
// want comments, checked by the analysis test harness.
package divergence

import "repro/internal/mpi"

func guardedBarrier(ctx *mpi.Ctx, c *mpi.Comm) {
	if ctx.Rank == 0 {
		c.Barrier(ctx, 1) // want "rank-dependent"
	}
}

func guardedViaLocal(ctx *mpi.Ctx, c *mpi.Comm) {
	isRoot := c.RankIn(ctx) == 0
	if isRoot {
		mpi.Alltoallv(ctx, c, 3, make([][]complex128, c.Size()), 16) // want "rank-dependent"
	}
}

func elseBranch(ctx *mpi.Ctx, c *mpi.Comm) []float64 {
	if ctx.Rank%2 == 0 {
		return nil
	} else {
		return c.Allreduce(ctx, 4, []float64{1}, mpi.Sum) // want "rank-dependent"
	}
}

func switchRank(ctx *mpi.Ctx, c *mpi.Comm) {
	switch ctx.Rank {
	case 0:
		c.Barrier(ctx, 6) // want "rank-dependent"
	}
}

func loopBound(ctx *mpi.Ctx, c *mpi.Comm) {
	for i := 0; i < ctx.Rank; i++ {
		c.Barrier(ctx, 8) // want "rank-dependent"
	}
}

// allRanks is the clean pattern: collectives on every rank, point-to-point
// traffic under rank branches (the normal root/leaf pattern).
func allRanks(ctx *mpi.Ctx, c *mpi.Comm) {
	c.Barrier(ctx, 1)
	if ctx.Rank == 0 {
		mpi.Send(ctx, c, 1, 9, []float64{1}, 8)
	} else if ctx.Rank == 1 {
		_ = mpi.Recv[float64](ctx, c, 0, 9)
	}
}

// suppressed demonstrates the //fftxvet:ignore escape hatch.
func suppressed(ctx *mpi.Ctx, c *mpi.Comm) {
	if ctx.Rank < c.Size() {
		//fftxvet:ignore divergence — every rank satisfies the guard, the branch is not divergent
		c.Barrier(ctx, 5)
	}
}
