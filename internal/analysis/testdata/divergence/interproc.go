package divergence

// Interprocedural cases: rank-tainted helper returns make callers' branch
// conditions rank-dependent, and helpers that reach collectives are flagged
// under rank-dependent branches with their call path.

import "repro/internal/mpi"

// myRank returns a rank-derived value: branching on it diverges.
func myRank(ctx *mpi.Ctx, c *mpi.Comm) int {
	return c.RankIn(ctx)
}

func guardedByHelperRank(ctx *mpi.Ctx, c *mpi.Comm) {
	if myRank(ctx, c) == 0 {
		c.Barrier(ctx, 11) // want "rank-dependent"
	}
}

// rankPlusOne launders the rank through a second helper level.
func rankPlusOne(ctx *mpi.Ctx, c *mpi.Comm) int {
	return myRank(ctx, c) + 1
}

func guardedByTwoLevelRank(ctx *mpi.Ctx, c *mpi.Comm) {
	if rankPlusOne(ctx, c) > 1 {
		c.Barrier(ctx, 12) // want "rank-dependent"
	}
}

// syncAll posts the collective at the bottom of a helper chain.
func syncAll(ctx *mpi.Ctx, c *mpi.Comm) {
	c.Barrier(ctx, 13)
}

func syncViaHelper(ctx *mpi.Ctx, c *mpi.Comm) {
	syncAll(ctx, c)
}

func guardedHelperChain(ctx *mpi.Ctx, c *mpi.Comm) {
	if ctx.Rank == 0 {
		syncViaHelper(ctx, c) // want "divergence.syncViaHelper → divergence.syncAll → mpi.Comm.Barrier"
	}
}

// helperRankEverywhere is the clean counterpart: the helper-derived rank
// only guards point-to-point traffic and the collective runs on every rank.
func helperRankEverywhere(ctx *mpi.Ctx, c *mpi.Comm) {
	syncViaHelper(ctx, c)
	if myRank(ctx, c) == 0 {
		mpi.Send(ctx, c, 1, 14, []float64{1}, 8)
	}
}
