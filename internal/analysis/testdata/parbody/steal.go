package parbody

// Work-stealing cases: Pool.ParallelFor bodies run on the same bare host
// goroutines as the package-level entry point — a stolen chunk executes on
// whichever pool worker claims it, still outside the virtual-time engine.

import (
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/par"
	"repro/internal/vtime"
)

func collectiveInPoolBody(pool *par.Pool, ctx *mpi.Ctx, c *mpi.Comm, send [][]complex128) {
	pool.ParallelFor(4, 1, func(lo, hi int) {
		mpi.Alltoallv(ctx, c, 1, send, mpi.BytesComplex128) // want "posts an MPI collective"
	})
}

func submitAfterInPoolBody(p *vtime.Proc, rt *ompss.Runtime, pool *par.Pool) {
	pool.ParallelFor(4, 1, func(lo, hi int) {
		rt.SubmitAfter(p, "band", nil, 0, func(w *ompss.Worker) {}) // want "submits an ompss task"
	})
}

func futureWaitInPoolBody(p *vtime.Proc, f *ompss.Future, pool *par.Pool) {
	pool.ParallelFor(4, 1, func(lo, hi int) {
		f.Wait(p) // want "blocks the simulated runtime"
	})
}

func chargeInPoolBody(pool *par.Pool, w *ompss.Worker) {
	pool.ParallelFor(4, 1, func(lo, hi int) {
		w.Compute("fft-z", knl.ClassStream, 100) // want "charges simulated compute time"
	})
}

// pureNumericPool is the sanctioned shape: stolen chunks only touch plain
// data in their own index range.
func pureNumericPool(pool *par.Pool, out []float64) {
	pool.ParallelFor(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] *= 2
		}
	})
}
