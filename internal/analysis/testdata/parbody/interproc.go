package parbody

// Interprocedural cases: the violation hides behind a two-level helper
// chain; the rule reports it at the call inside the body with the full
// path.

import (
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/par"
)

// shuffle posts the collective at the bottom of the helper chain.
func shuffle(ctx *mpi.Ctx, c *mpi.Comm, send [][]complex128) {
	mpi.Alltoallv(ctx, c, 2, send, mpi.BytesComplex128)
}

// distribute is the middle hop: it only forwards to shuffle.
func distribute(ctx *mpi.Ctx, c *mpi.Comm, send [][]complex128) {
	shuffle(ctx, c, send)
}

func helperChainInBody(ctx *mpi.Ctx, c *mpi.Comm, send [][]complex128) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		distribute(ctx, c, send) // want "parbody.distribute → parbody.shuffle → mpi.Alltoallv"
	})
}

// chargeHelper charges simulated compute one level down.
func chargeHelper(ctx *mpi.Ctx) {
	ctx.Compute("fft-z", knl.ClassStream, 10)
}

func chargeViaHelper(ctx *mpi.Ctx) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		chargeHelper(ctx) // want "charges simulated compute time"
	})
}

// pureHelper keeps a helper call in a body clean: no runtime effects.
func pureHelper(out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] *= 2
	}
}

func pureHelperInBody(out []float64) {
	par.ParallelFor(len(out), 16, func(lo, hi int) {
		pureHelper(out, lo, hi)
	})
}
