// Package parbody seeds violations of the parbody rule: simulated-runtime
// calls inside par.ParallelFor bodies, which run on bare host goroutines
// outside the virtual-time engine.
package parbody

import (
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/par"
	"repro/internal/vtime"
)

func collectiveInBody(ctx *mpi.Ctx, c *mpi.Comm, send [][]complex128) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		mpi.Alltoallv(ctx, c, 1, send, mpi.BytesComplex128) // want "posts an MPI collective"
	})
}

func blockingInBody(ctx *mpi.Ctx, c *mpi.Comm, q *vtime.Queue[int]) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		mpi.Send(ctx, c, 1, 3, []float64{1}, 8) // want "blocks the simulated runtime"
		_, _ = q.Pop(ctx.Proc)                  // want "blocks the simulated runtime"
	})
}

func submitInBody(p *vtime.Proc, rt *ompss.Runtime) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {}) // want "submits an ompss task"
	})
}

func computeInBody(ctx *mpi.Ctx, w *ompss.Worker) {
	par.ParallelFor(4, 1, func(lo, hi int) {
		ctx.Compute("fft-z", knl.ClassStream, 100) // want "charges simulated compute time"
		w.Compute("fft-z", knl.ClassStream, 100)   // want "charges simulated compute time"
	})
}

// pureNumeric is the sanctioned shape: the body only touches plain data in
// its own index range.
func pureNumeric(out []float64) {
	par.ParallelFor(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) * 1.5
		}
	})
}

// nested bodies are their own units: the offending call is reported in the
// inner body, not twice.
func nestedBodies(ctx *mpi.Ctx, c *mpi.Comm) {
	par.ParallelFor(2, 1, func(lo, hi int) {
		par.ParallelFor(2, 1, func(lo2, hi2 int) {
			c.Barrier(ctx, 1) // want "posts an MPI collective"
		})
	})
}

// phaseWrapped mirrors the real kernels: the Compute charge happens in the
// enclosing phase, outside the ParallelFor body.
func phaseWrapped(ctx *mpi.Ctx, out []float64) {
	ctx.Compute("vofr", knl.ClassVector, 100)
	par.ParallelFor(len(out), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] *= 2
		}
	})
}
