// Package waitleak seeds violations of the waitleak rule: sends on a
// Server's admission queue that are not dominated by the drain and deadline
// re-checks.
package waitleak

import "time"

type task struct {
	deadline time.Time
	done     chan struct{}
}

func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

type Server struct {
	queue    chan *task
	draining bool
}

func (s *Server) Draining() bool { return s.draining }

// admit is the canonical clean shape: re-check draining and the deadline,
// then a non-blocking send.
func admit(s *Server, t *task) bool {
	if s.draining {
		return false
	}
	if t.expired(time.Now()) {
		return false
	}
	select {
	case s.queue <- t:
		return true
	default:
		return false
	}
}

// fieldGuards shows the field-read spellings of both guards.
func fieldGuards(s *Server, t *task, now time.Time) bool {
	if s.draining || now.After(t.deadline) {
		return false
	}
	s.queue <- t
	return true
}

func enqueueRaw(s *Server, t *task) {
	s.queue <- t // want "not dominated by a drain guard"
}

func enqueueHalf(s *Server, t *task) {
	if s.Draining() {
		return
	}
	s.queue <- t // want "a deadline check"
}

// otherChannel shows the scoping: sends on channels that are not a Server
// admission queue are out of scope.
func otherChannel(t *task) {
	t.done <- struct{}{}
}
