// Package tags seeds violations of the tag-discipline rule: rank-dependent
// collective tags and constant tags shared by concurrent collectives.
package tags

import (
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

func rankTag(ctx *mpi.Ctx, c *mpi.Comm) {
	c.Barrier(ctx, ctx.Rank) // want "rank-dependent tag"
}

func rankTagViaLocal(ctx *mpi.Ctx, c *mpi.Comm) {
	tag := 100 + c.RankIn(ctx)
	c.Allreduce(ctx, tag, []float64{1}, mpi.Sum) // want "rank-dependent tag"
}

func constantCollision(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm) {
	rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
		c.Barrier(ctx, 7) // want "tag 7 reused"
	})
	c.Barrier(ctx, 7) // want "tag 7 reused"
}

// sequentialReuse is well-defined: calls with one tag match across ranks in
// per-rank call order, so reuse outside task bodies is clean.
func sequentialReuse(ctx *mpi.Ctx, c *mpi.Comm) {
	c.Barrier(ctx, 9)
	c.Barrier(ctx, 9)
}

// distinctTags is the sanctioned concurrent pattern: per-instance tags.
func distinctTags(p *vtime.Proc, rt *ompss.Runtime, ctx *mpi.Ctx, c *mpi.Comm) {
	for b := 0; b < 4; b++ {
		b := b
		rt.Submit(p, "band", nil, 0, func(w *ompss.Worker) {
			c.Barrier(ctx, 2*b)
		})
	}
}
