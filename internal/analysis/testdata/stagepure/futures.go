package stagepure

// Dataflow-era cases: the futures API is runtime state like any other ompss
// entry point — a stage closure that resolves or waits on a future would
// fire the release once per scheduler policy instead of once per the
// graph's contract.

import (
	"repro/internal/fftx/graph"
	"repro/internal/knl"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// futureRelease resolves a dataflow future at the bottom of the chain.
func futureRelease(p *vtime.Proc, f *ompss.Future) {
	f.Complete(p)
}

// releaseHelper is the middle hop: it only forwards to futureRelease.
func releaseHelper(p *vtime.Proc, f *ompss.Future) {
	futureRelease(p, f)
}

func futureChainInBody(p *vtime.Proc, f *ompss.Future) graph.Stage {
	return graph.Stage{
		Name: "release", Step: "fft-z-fw", Class: knl.ClassMem,
		Body: func(s *graph.State, pp int) {
			releaseHelper(p, f) // want "stagepure.releaseHelper → stagepure.futureRelease → ompss.Future.Complete"
		},
	}
}

func futureWaitInInstr(p *vtime.Proc, f *ompss.Future) graph.Stage {
	return graph.Stage{
		Name: "wait", Step: "fft-z-fw", Class: knl.ClassMem,
		Instr: func(pp int) float64 {
			f.Wait(p) // want "Wait calls internal/ompss in a graph.Stage Instr closure"
			return 1
		},
	}
}
