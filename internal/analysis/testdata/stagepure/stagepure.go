// Package stagepure seeds violations of the stagepure rule: mpi/vtime/ompss
// calls inside graph.Stage closures, which must stay pure model/numeric code
// so every scheduler executes the same pipeline.
package stagepure

import (
	"repro/internal/fftx/graph"
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// collectiveInBody wires a collective into a stage body: the scatter would
// run once per scheduler policy instead of once per graph contract.
func collectiveInBody(ctx *mpi.Ctx, c *mpi.Comm) graph.Stage {
	return graph.Stage{
		Name: "z-split", Step: "fft-z-fw", Class: knl.ClassMem,
		Body: func(s *graph.State, p int) {
			mpi.Alltoallv(ctx, c, 1, s.Chunks, mpi.BytesComplex128) // want "Alltoallv calls internal/mpi in a graph.Stage Body closure"
		},
	}
}

// blockingInPart blocks the simulated runtime from a task-loop sub-range.
func blockingInPart(ctx *mpi.Ctx, c *mpi.Comm, q *vtime.Queue[int]) graph.Stage {
	return graph.Stage{
		Name: "fft-z", Step: "fft-z-fw", Class: knl.ClassStream,
		Split: graph.SplitSticks, LoopName: "cft_1z",
		Count: func(p int) int { return 4 },
		Part: func(s *graph.State, p, lo, hi int) {
			mpi.Send(ctx, c, 1, 3, []float64{1}, 8) // want "Send calls internal/mpi in a graph.Stage Part closure"
			_, _ = q.Pop(ctx.Proc)                  // want "Pop calls internal/vtime in a graph.Stage Part closure"
		},
	}
}

// computeInInstr charges simulated compute time from an instruction model,
// which every engine evaluates under its own policy.
func computeInInstr(ctx *mpi.Ctx) graph.Stage {
	return graph.Stage{
		Name: "vofr", Step: "vofr", Class: knl.ClassVector,
		Instr: func(p int) float64 {
			ctx.Compute("vofr", knl.ClassVector, 100) // want "Compute calls internal/mpi in a graph.Stage Instr closure"
			return 100
		},
	}
}

// submitInBytes submits a task from a communication-volume model.
func submitInBytes(proc *vtime.Proc, rt *ompss.Runtime) graph.Stage {
	return graph.Stage{
		Name: "scatter", Step: "scatter-fw", Kind: graph.Scatter,
		Bytes: func(p int) float64 {
			rt.Submit(proc, "band", nil, 0, func(w *ompss.Worker) {}) // want "Submit calls internal/ompss in a graph.Stage Bytes closure"
			return 0
		},
	}
}

// impureHelper is wired into a stage by reference below; the rule follows
// same-package function references, not just inline literals.
func impureHelper(s *graph.State, p int) {
	theCtx.Compute("prep", knl.ClassMem, 10) // want "Compute calls internal/mpi in a graph.Stage Body closure"
}

var theCtx *mpi.Ctx

func helperByReference() graph.Stage {
	return graph.Stage{
		Name: "prep", Step: "fft-z-fw", Class: knl.ClassMem,
		Body: impureHelper,
	}
}

// pureStage is the sanctioned shape: closures only touch plain data and the
// geometry models; the scheduler owns every runtime interaction.
func pureStage() graph.Stage {
	return graph.Stage{
		Name: "xy-fill", Step: "fft-xy-fw", Class: knl.ClassMem,
		Instr: func(p int) float64 { return 1e4 },
		Body: func(s *graph.State, p int) {
			for i := range s.Planes {
				s.Planes[i] *= 2
			}
		},
	}
}

// notAStage shows the rule is scoped: the same calls in an unrelated
// composite literal's closure are someone else's business.
type notAStage struct {
	body func(p int)
}

func unrelatedLiteral(ctx *mpi.Ctx) notAStage {
	return notAStage{
		body: func(p int) { ctx.Compute("x", knl.ClassMem, 1) },
	}
}
