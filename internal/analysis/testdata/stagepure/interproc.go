package stagepure

// Interprocedural cases: stage closures that reach the simulated runtime
// through helper chains; the rule reports the helper call with its path.

import (
	"repro/internal/fftx/graph"
	"repro/internal/knl"
)

// chargePrep charges simulated compute at the bottom of the chain.
func chargePrep() {
	theCtx.Compute("prep", knl.ClassMem, 10)
}

// prepHelper is the middle hop: it only forwards to chargePrep.
func prepHelper() {
	chargePrep()
}

func helperChainInInstr() graph.Stage {
	return graph.Stage{
		Name: "prep2", Step: "fft-z-fw", Class: knl.ClassMem,
		Instr: func(p int) float64 {
			prepHelper() // want "stagepure.prepHelper → stagepure.chargePrep → mpi.Ctx.Compute"
			return 1
		},
	}
}

// partByReference wires a helper in by reference whose body reaches the
// runtime only through another helper: the referenced body is scanned and
// the inner call reported with its path.
func impurePart(s *graph.State, p, lo, hi int) {
	prepHelper() // want "stagepure.prepHelper → stagepure.chargePrep → mpi.Ctx.Compute"
}

func partByReference() graph.Stage {
	return graph.Stage{
		Name: "part-ref", Step: "fft-z-fw", Class: knl.ClassStream,
		Split: graph.SplitSticks, LoopName: "cft_1z",
		Count: func(p int) int { return 2 },
		Part:  impurePart,
	}
}

// scaleHelper is pure model arithmetic: helpers without runtime effects
// stay legal inside stage closures.
func scaleHelper(p int) float64 {
	return float64(p) * 1.5
}

func pureHelperInInstr() graph.Stage {
	return graph.Stage{
		Name: "pure2", Step: "fft-xy-fw", Class: knl.ClassVector,
		Instr: func(p int) float64 { return scaleHelper(p) },
	}
}
