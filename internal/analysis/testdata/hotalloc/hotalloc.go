// Package hotalloc seeds violations of the hotalloc rule: heap allocation
// on the zero-alloc transform hot paths — Transform* methods of Plan* types
// and the graph.Stage model closures (Instr/Bytes/Count/Part).
package hotalloc

import (
	"fmt"
	"sync"

	"repro/internal/fftx/graph"
	"repro/internal/knl"
)

// PlanLocal stands in for the fft plan types: the rule keys on the
// Plan*/Transform* shape, not a hard-coded list.
type PlanLocal struct {
	buf  []complex128
	pool sync.Pool
}

func (p *PlanLocal) TransformDirect(n int) {
	p.buf = make([]complex128, n) // want "make([]complex128) allocates in PlanLocal.TransformDirect"
}

// grow allocates at the bottom of a helper chain.
func grow(n int) []complex128 {
	return make([]complex128, n)
}

// scratch is the middle hop: it only forwards to grow.
func scratch(n int) []complex128 {
	return grow(n)
}

func (p *PlanLocal) TransformChained(n int) {
	p.buf = scratch(n) // want "hotalloc.scratch → hotalloc.grow → make"
}

func (p *PlanLocal) TransformFmt(n int) {
	fmt.Println(n) // want "fmt.Println (assumed to allocate) in PlanLocal.TransformFmt"
}

// TransformChecked shows the two sanctioned shapes: allocation inside a
// panic argument is the failure path, and a sync.Pool hit is the scratch
// protocol the contract asks for.
func (p *PlanLocal) TransformChecked(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hotalloc: negative size %d", n))
	}
	s := p.pool.Get()
	defer p.pool.Put(s)
	for i := range p.buf {
		p.buf[i] *= 2
	}
}

// partAlloc is wired into a stage by reference below; its body is scanned
// like an inline literal.
func partAlloc(s *graph.State, p, lo, hi int) {
	s.ZBuf = append(s.ZBuf, 0) // want "append allocates in a graph.Stage Part closure"
}

func stageClosures() graph.Stage {
	return graph.Stage{
		Name: "z-model", Step: "fft-z-fw", Class: knl.ClassStream,
		Split: graph.SplitSticks, LoopName: "cft_1z",
		Instr: func(p int) float64 {
			w := make([]float64, 4) // want "make([]float64) allocates in a graph.Stage Instr closure"
			return w[0]
		},
		Count: func(p int) int { return 4 },
		Part:  partAlloc,
		// Body builds the band's State buffers: allocation by design.
		Body: func(s *graph.State, p int) {
			s.ZBuf = make([]complex128, 64)
		},
	}
}

// notHot shows the scoping: Transform methods on non-Plan receivers and
// plain functions are not hot roots.
type worker struct{ buf []float64 }

func (w *worker) TransformScratch(n int) {
	w.buf = make([]float64, n)
}

func TransformFree(n int) []float64 {
	return make([]float64, n)
}
