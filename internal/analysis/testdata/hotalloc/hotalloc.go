// Package hotalloc seeds violations of the hotalloc rule: heap allocation
// on the zero-alloc transform hot paths — Transform* methods of Plan* types
// and the graph.Stage model closures (Instr/Bytes/Count/Part).
package hotalloc

import (
	"fmt"
	"sync"

	"repro/internal/fftx/graph"
	"repro/internal/knl"
)

// PlanLocal stands in for the fft plan types: the rule keys on the
// Plan*/Transform* shape, not a hard-coded list.
type PlanLocal struct {
	buf  []complex128
	pool sync.Pool
}

func (p *PlanLocal) TransformDirect(n int) {
	p.buf = make([]complex128, n) // want "make([]complex128) allocates in PlanLocal.TransformDirect"
}

// grow allocates at the bottom of a helper chain.
func grow(n int) []complex128 {
	return make([]complex128, n)
}

// scratch is the middle hop: it only forwards to grow.
func scratch(n int) []complex128 {
	return grow(n)
}

func (p *PlanLocal) TransformChained(n int) {
	p.buf = scratch(n) // want "hotalloc.scratch → hotalloc.grow → make"
}

func (p *PlanLocal) TransformFmt(n int) {
	fmt.Println(n) // want "fmt.Println (assumed to allocate) in PlanLocal.TransformFmt"
}

// TransformChecked shows the two sanctioned shapes: allocation inside a
// panic argument is the failure path, and a sync.Pool hit is the scratch
// protocol the contract asks for.
func (p *PlanLocal) TransformChecked(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hotalloc: negative size %d", n))
	}
	s := p.pool.Get()
	defer p.pool.Put(s)
	for i := range p.buf {
		p.buf[i] *= 2
	}
}

// partAlloc is wired into a stage by reference below; its body is scanned
// like an inline literal.
func partAlloc(s *graph.State, p, lo, hi int) {
	s.ZBuf = append(s.ZBuf, 0) // want "append allocates in a graph.Stage Part closure"
}

func stageClosures() graph.Stage {
	return graph.Stage{
		Name: "z-model", Step: "fft-z-fw", Class: knl.ClassStream,
		Split: graph.SplitSticks, LoopName: "cft_1z",
		Instr: func(p int) float64 {
			w := make([]float64, 4) // want "make([]float64) allocates in a graph.Stage Instr closure"
			return w[0]
		},
		Count: func(p int) int { return 4 },
		Part:  partAlloc,
		// Body builds the band's State buffers: allocation by design.
		Body: func(s *graph.State, p int) {
			s.ZBuf = make([]complex128, 64)
		},
	}
}

// notHot shows the scoping: Transform methods on non-Plan receivers and
// plain functions are not hot roots.
type worker struct{ buf []float64 }

func (w *worker) TransformScratch(n int) {
	w.buf = make([]float64, n)
}

func TransformFree(n int) []float64 {
	return make([]float64, n)
}

// VecSoA stands in for the planar layout types: the rule treats
// package-level Pack*/Unpack* functions whose signature mentions an
// SoA-named type as hot roots (the layout boundary shims of the batch
// path).
type VecSoA struct {
	Re, Im []float64
}

// PackVecSoA violates the contract: the shim must fill caller-provided
// planes, never grow them.
func PackVecSoA(v VecSoA, x []complex128) VecSoA {
	v.Re = append(v.Re, 0) // want "append allocates in PackVecSoA"
	for i, c := range x {
		v.Re[i], v.Im[i] = real(c), imag(c)
	}
	return v
}

// UnpackVecSoA is the sanctioned shape: pure loops over preallocated
// planes (a panic argument is the failure path).
func UnpackVecSoA(dst []complex128, v VecSoA) {
	if len(dst) > len(v.Re) {
		panic(fmt.Sprintf("hotalloc: short planes: %d > %d", len(dst), len(v.Re)))
	}
	for i := range dst {
		dst[i] = complex(v.Re[i], v.Im[i])
	}
}

// PackOther does not mention an SoA type, so it is not a root even though
// it allocates.
func PackOther(x []complex128) []float64 {
	return make([]float64, len(x))
}

// transformRowsLocal is an internal layout kernel: lowercase transform*
// methods on Plan* receivers are hot roots too — the batch drivers fan
// out to them.
func (p *PlanLocal) transformRowsLocal(rows int) {
	s := make([]float64, rows) // want "make([]float64) allocates in PlanLocal.transformRowsLocal"
	_ = s
}
