// Package analysis is a static analyzer for the simulated-HPC programming
// model of this repository (the fftxvet tool). It loads the module with the
// standard library's go/parser + go/types and enforces the correctness
// contracts the mpi, ompss and vtime runtimes expect from their callers:
//
//   - divergence: MPI collectives must be reached by every rank of the
//     communicator, so a collective that is only reachable under a
//     rank-dependent branch is a deadlock in waiting.
//   - tags: collective matching tags must agree across ranks (no
//     rank-dependent tags) and concurrently running collectives on one
//     communicator must use distinct tags.
//   - blockintask: an ompss task body must not issue blocking mpi/vtime
//     calls through a context or process captured from outside the task;
//     the lane-aware entry points (the worker's own context, Group.Wait)
//     are the sanctioned ways to wait inside a task.
//   - copyvalue: the runtime handle types (mpi.World, mpi.Ctx, vtime.Engine,
//     ompss.Runtime, ...) carry identity and internal state; copying them
//     by value silently forks that state.
//   - parbody: par.ParallelFor bodies run on bare host goroutines outside
//     the virtual-time engine, so they must stay pure numeric — no mpi
//     collectives, no blocking vtime waits, no task submission and no
//     simulated Compute charges.
//   - handlerbody: HTTP handler bodies (the net/http
//     (ResponseWriter, *Request) shape, as in internal/serve) run on
//     service goroutines and must not call into mpi/vtime/ompss at all;
//     handlers decode, admit and await while the worker pool does the work.
//   - stagepure: the stage-graph IR (internal/fftx/graph) describes the FFT
//     pipeline as data walked by interchangeable schedulers, so the Stage
//     closures (Instr, Bytes, Count, Body, Part) and the graph package
//     itself must never call mpi/vtime/ompss — synchronization and
//     accounting are the scheduler's job.
//   - hotalloc: the transform hot paths — fft Plan Transform*/transform*
//     methods, the planar-layout Pack*/Unpack* boundary shims and
//     the graph.Stage model closures — must not heap-allocate in steady
//     state (PR 3's zero-alloc contract), directly or through any helper.
//   - waitleak: every send on a serve.Server admission queue must be
//     dominated by a drain guard and a deadline check, so requests are
//     rejected with 503 + Retry-After instead of queueing unboundedly.
//   - spanbalance: every request-span handle minted by a SpanSet/SpanRef
//     Begin must be balanced by a deferred or all-paths End (or visibly
//     hand ownership off), so traced requests never publish span trees
//     with phases that run forever.
//
// The contract rules are interprocedural: a call graph over every loaded
// package (callgraph.go) carries per-function effect summaries computed by
// fixpoint (summary.go, taint.go), so a violation buried N helpers deep is
// reported at the offending call with its full path, e.g.
//
//	call to fftx.distribute posts an MPI collective (ParallelFor body →
//	fftx.distribute → fftx.shuffle → mpi.Alltoallv) inside a ...
//
// Findings can be suppressed with a trailing or preceding comment of the
// form:
//
//	//fftxvet:ignore rulename — reason
//
// Stale suppressions (comments that no longer match any finding) are
// reported by UnusedIgnores / fftxvet -unused-ignores.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one rule finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the usual file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries everything a rule run needs. Prog may be nil (a rule must
// degrade to its direct-call checks without it); Pkg is the package under
// analysis, always one of Prog.Pkgs when Prog is set.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Prog *Program
}

// Rule is one named check.
type Rule struct {
	Name string
	Doc  string
	Run  func(p *Pass) []Diagnostic
}

// AllRules returns every registered rule, in stable order.
func AllRules() []Rule {
	return []Rule{DivergenceRule, TagsRule, BlockInTaskRule, CopyValueRule, ParBodyRule, HandlerBodyRule, StagePureRule, HotAllocRule, WaitLeakRule, SpanBalanceRule}
}

// RuleByName resolves a rule name; ok is false for unknown names.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// RunRules executes the rules over one package of prog and returns the
// surviving (non-suppressed) findings sorted by position.
func RunRules(prog *Program, pkg *Package, rules []Rule) []Diagnostic {
	diags, _ := RunRulesWithIgnores(prog, pkg, rules)
	return diags
}

// RunRulesWithIgnores is RunRules plus the stale-suppression report: unused
// holds one "unused-ignore" pseudo-finding per //fftxvet:ignore comment that
// suppressed nothing, restricted to comments this rule set could have
// exercised (an ignore naming a rule that did not run is never reported).
func RunRulesWithIgnores(prog *Program, pkg *Package, rules []Rule) (diags, unused []Diagnostic) {
	pass := &Pass{Fset: prog.Fset, Pkg: pkg, Prog: prog}
	for _, r := range rules {
		diags = append(diags, r.Run(pass)...)
	}
	ignores := collectIgnores(prog.Fset, pkg.Files)
	diags = suppress(ignores, diags)
	sortDiags(diags)

	ran := map[string]bool{}
	for _, r := range rules {
		ran[r.Name] = true
	}
	allRan := len(ran) >= len(AllRules())
	for _, ig := range ignores {
		if ig.used {
			continue
		}
		coverable := true
		for name := range ig.rules {
			if name == "all" && !allRan {
				coverable = false
			} else if name != "all" && !ran[name] {
				coverable = false
			}
		}
		if !coverable {
			continue
		}
		unused = append(unused, Diagnostic{
			Pos:     ig.pos,
			Rule:    "unused-ignore",
			Message: "//fftxvet:ignore comment suppresses no finding on this line or the next; remove the stale suppression",
		})
	}
	sortDiags(unused)
	return diags, unused
}

// sortDiags orders findings by file, line, column, rule.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// ignoreComment is one parsed //fftxvet:ignore comment.
type ignoreComment struct {
	pos   token.Position
	rules map[string]bool // rule names, or {"all": true}
	used  bool
}

// collectIgnores parses every //fftxvet:ignore comment of the files.
func collectIgnores(fset *token.FileSet, files []*ast.File) []*ignoreComment {
	var ignores []*ignoreComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//fftxvet:ignore")
				if !ok {
					continue
				}
				// Everything up to an em-dash/double-dash separator names
				// the suppressed rules; the rest is the human reason.
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				rules := map[string]bool{}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					rules[name] = true
				}
				if len(rules) == 0 {
					rules["all"] = true
				}
				ignores = append(ignores, &ignoreComment{pos: fset.Position(c.Pos()), rules: rules})
			}
		}
	}
	return ignores
}

// suppress drops diagnostics covered by an //fftxvet:ignore comment on the
// same line or the line directly above, marking the comments that fired.
func suppress(ignores []*ignoreComment, diags []Diagnostic) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		covered := false
		for _, ig := range ignores {
			if ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line != d.Pos.Line && ig.pos.Line != d.Pos.Line-1 {
				continue
			}
			if ig.rules[d.Rule] || ig.rules["all"] {
				ig.used = true
				covered = true
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}
