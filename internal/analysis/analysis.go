// Package analysis is a static analyzer for the simulated-HPC programming
// model of this repository (the fftxvet tool). It loads the module with the
// standard library's go/parser + go/types and enforces the correctness
// contracts the mpi, ompss and vtime runtimes expect from their callers:
//
//   - divergence: MPI collectives must be reached by every rank of the
//     communicator, so a collective that is only reachable under a
//     rank-dependent branch is a deadlock in waiting.
//   - tags: collective matching tags must agree across ranks (no
//     rank-dependent tags) and concurrently running collectives on one
//     communicator must use distinct tags.
//   - blockintask: an ompss task body must not issue blocking mpi/vtime
//     calls through a context or process captured from outside the task;
//     the lane-aware entry points (the worker's own context, Group.Wait)
//     are the sanctioned ways to wait inside a task.
//   - copyvalue: the runtime handle types (mpi.World, mpi.Ctx, vtime.Engine,
//     ompss.Runtime, ...) carry identity and internal state; copying them
//     by value silently forks that state.
//   - parbody: par.ParallelFor bodies run on bare host goroutines outside
//     the virtual-time engine, so they must stay pure numeric — no mpi
//     collectives, no blocking vtime waits, no task submission and no
//     simulated Compute charges.
//   - handlerbody: HTTP handler bodies (the net/http
//     (ResponseWriter, *Request) shape, as in internal/serve) run on
//     service goroutines and must not call into mpi/vtime/ompss at all;
//     handlers decode, admit and await while the worker pool does the work.
//   - stagepure: the stage-graph IR (internal/fftx/graph) describes the FFT
//     pipeline as data walked by interchangeable schedulers, so the Stage
//     closures (Instr, Bytes, Count, Body, Part) and the graph package
//     itself must never call mpi/vtime/ompss — synchronization and
//     accounting are the scheduler's job.
//
// Findings can be suppressed with a trailing or preceding comment of the
// form:
//
//	//fftxvet:ignore rulename — reason
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one rule finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the usual file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries everything a rule run needs.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
}

// Rule is one named check.
type Rule struct {
	Name string
	Doc  string
	Run  func(p *Pass) []Diagnostic
}

// AllRules returns every registered rule, in stable order.
func AllRules() []Rule {
	return []Rule{DivergenceRule, TagsRule, BlockInTaskRule, CopyValueRule, ParBodyRule, HandlerBodyRule, StagePureRule}
}

// RuleByName resolves a rule name; ok is false for unknown names.
func RuleByName(name string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// RunRules executes the rules over the package and returns the surviving
// (non-suppressed) findings sorted by position.
func RunRules(fset *token.FileSet, pkg *Package, rules []Rule) []Diagnostic {
	pass := &Pass{Fset: fset, Pkg: pkg}
	var diags []Diagnostic
	for _, r := range rules {
		diags = append(diags, r.Run(pass)...)
	}
	diags = suppress(fset, pkg.Files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// ignoreKey locates one //fftxvet:ignore comment.
type ignoreKey struct {
	file string
	line int
}

// suppress drops diagnostics covered by an //fftxvet:ignore comment on the
// same line or the line directly above.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ignores := map[ignoreKey]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//fftxvet:ignore")
				if !ok {
					continue
				}
				// Everything up to an em-dash/double-dash separator names
				// the suppressed rules; the rest is the human reason.
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				rules := map[string]bool{}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					rules[name] = true
				}
				if len(rules) == 0 {
					rules["all"] = true
				}
				pos := fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, pos.Line}] = rules
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		covered := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if rules := ignores[ignoreKey{d.Pos.Filename, line}]; rules != nil {
				if rules[d.Rule] || rules["all"] {
					covered = true
					break
				}
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}
