package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BlockInTaskRule flags blocking mpi/vtime calls inside ompss task bodies
// that wait through a context or process captured from outside the task. A
// task body runs on an arbitrary worker thread; blocking it through an
// outer rank's process stalls someone else's execution and routinely
// deadlocks the rank. The sanctioned patterns — building an mpi.Ctx from
// the worker's own Proc/Lane inside the body, and Group.Wait (which
// executes ready group tasks while waiting) — are not flagged.
// Runtime.Taskwait inside a task body is always flagged: the waited-for set
// includes the waiting task itself. Future.Wait inside a task body is
// always flagged too: the dependency belongs in SubmitAfter, not in a
// parked worker.
//
// The rule also polices future/task continuation closures (Future.Then,
// Runtime.OnComplete): they run inline on whichever process resolves the
// event, inside the runtime's bookkeeping path, so they must never block,
// post collectives or charge compute time — regardless of where their
// captured state comes from. Releasing work (completing futures, submitting
// tasks) is their job and stays legal.
var BlockInTaskRule = Rule{
	Name: "blockintask",
	Doc:  "task bodies must not block through outer contexts; continuations must never block",
	Run:  runBlockInTask,
}

func runBlockInTask(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		bodies := taskBodies(info, f)
		for _, lit := range bodies {
			isNestedBody := func(n *ast.FuncLit) bool {
				for _, b := range bodies {
					if b == n && b != lit {
						return true
					}
				}
				return false
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && isNestedBody(fl) {
					return false // the nested task body is its own unit
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				t := targetOf(fn)
				if t.pkg == "internal/ompss" && t.recv == "Runtime" && t.name == "Taskwait" {
					diags = append(diags, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Rule:    "blockintask",
						Message: "Taskwait inside a task body waits for the waiting task itself; use a Group and Group.Wait for child tasks",
					})
					return true
				}
				if t.pkg == "internal/ompss" && t.recv == "Future" && t.name == "Wait" {
					// Always wrong, whatever process it parks: the waiting
					// task occupies a worker the release chain may need.
					diags = append(diags, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Rule:    "blockintask",
						Message: "Future.Wait inside a task body parks a worker the release chain may need; express the dependency with SubmitAfter instead",
					})
					return true
				}
				var waiterArg int
				if sig, isColl := mpiCollectives[t]; isColl {
					if isAsyncCollective(t) {
						return true // posts don't block the caller
					}
					_ = sig
					waiterArg = 0 // ctx is the first argument of every entry
				} else if bc, isBlocking := blockingCalls[t]; isBlocking {
					waiterArg = bc.waiterArg
				} else {
					// Interprocedural: a module helper that blocks somewhere
					// down its chain. It is a violation only when the task
					// hands the helper a waiter-carrying handle (mpi.Ctx,
					// vtime.Proc, ...) captured from outside the task — a
					// helper blocking on a context it builds from the
					// worker's own Proc/Lane is the sanctioned pattern.
					s := p.Prog.SummaryFor(fn)
					if s == nil || !s.Set.Has(EffBlocks) {
						return true
					}
					carriers := append([]ast.Expr{receiverExpr(call)}, call.Args...)
					for _, arg := range carriers {
						if arg == nil {
							continue
						}
						tv, ok := info.Types[arg]
						if !ok || !isWaiterCarrier(tv.Type) {
							continue
						}
						root := rootIdent(arg)
						if root == nil {
							continue
						}
						obj := info.Uses[root]
						if obj == nil {
							obj = info.Defs[root]
						}
						if obj == nil || declaredWithin(obj, lit) {
							continue
						}
						diags = append(diags, Diagnostic{
							Pos:  p.Fset.Position(call.Pos()),
							Rule: "blockintask",
							Message: fmt.Sprintf("call to %s blocks inside a task body (%s) through %q, which is captured from outside the task; build the waiting context from the worker's own Proc/Lane (or use the lane-aware Group.Wait)",
								s.Key.Display(), callPath(p.Prog, s.Key, EffBlocks), root.Name),
						})
						break
					}
					return true
				}
				var waiter ast.Expr
				if waiterArg >= 0 {
					if waiterArg >= len(call.Args) {
						return true
					}
					waiter = call.Args[waiterArg]
				} else {
					waiter = receiverExpr(call)
				}
				root := rootIdent(waiter)
				if root == nil {
					return true
				}
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if obj == nil || declaredWithin(obj, lit) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "blockintask",
					Message: fmt.Sprintf("%s blocks inside a task body through %q, which is captured from outside the task; build the waiting context from the worker's own Proc/Lane (or use the lane-aware Group.Wait)",
						t.name, root.Name),
				})
				return true
			})
		}
		diags = append(diags, checkContinuations(p, f)...)
	}
	return diags
}

// checkContinuations polices the continuation closures of one file: any
// blocking call, collective post or compute charge inside them is flagged
// unconditionally — a continuation runs inline in the runtime's completion
// path, so blocking it wedges the release chain itself.
func checkContinuations(p *Pass, f *ast.File) []Diagnostic {
	info := p.Pkg.Info
	bodies := taskBodies(info, f)
	conts := continuationClosures(info, f)
	var diags []Diagnostic
	for _, lit := range conts {
		ownUnit := func(n *ast.FuncLit) bool {
			if n == lit {
				return false
			}
			for _, b := range bodies {
				if b == n {
					return true
				}
			}
			for _, c := range conts {
				if c == n {
					return true
				}
			}
			return false
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && ownUnit(fl) {
				return false // nested task bodies/continuations are their own units
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			t := targetOf(fn)
			var what string
			if _, isColl := mpiCollectives[t]; isColl {
				what = "posts an MPI collective"
			} else if _, isBlocking := blockingCalls[t]; isBlocking {
				what = "blocks the simulated runtime"
			} else if computeCharges[t] {
				what = "charges simulated compute time"
			} else {
				// Interprocedural: a helper that blocks, posts or charges
				// anywhere down its chain. Task submission stays legal —
				// releasing work is what continuations are for.
				s := p.Prog.SummaryFor(fn)
				if s == nil {
					return true
				}
				for _, b := range [...]struct {
					eff  Effect
					verb string
				}{
					{EffCollective, "posts an MPI collective"},
					{EffBlocks, "blocks the simulated runtime"},
					{EffCharges, "charges simulated compute time"},
				} {
					if !s.Set.Has(b.eff) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "blockintask",
						Message: fmt.Sprintf("call to %s %s (%s) inside a continuation closure, which runs inline in the runtime's completion path; continuations only release work — never block, post collectives or charge compute time",
							s.Key.Display(), b.verb, callPath(p.Prog, s.Key, b.eff)),
					})
					break
				}
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "blockintask",
				Message: fmt.Sprintf("%s %s inside a continuation closure, which runs inline in the runtime's completion path; continuations only release work — never block, post collectives or charge compute time",
					t.name, what),
			})
			return true
		})
	}
	return diags
}

// declaredWithin reports whether obj's declaration lies inside the literal.
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// isWaiterCarrier reports whether t (behind pointers) is one of the handle
// types through which a helper can block the simulated runtime on behalf of
// its caller.
func isWaiterCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	return typeIs(t, "internal/mpi", "Ctx") ||
		typeIs(t, "internal/vtime", "Proc") ||
		typeIs(t, "internal/vtime", "WaitQueue") ||
		typeIs(t, "internal/vtime", "Semaphore") ||
		typeIs(t, "internal/vtime", "Queue") ||
		typeIs(t, "internal/vtime", "Barrier") ||
		typeIs(t, "internal/ompss", "Runtime")
}
