package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BlockInTaskRule flags blocking mpi/vtime calls inside ompss task bodies
// that wait through a context or process captured from outside the task. A
// task body runs on an arbitrary worker thread; blocking it through an
// outer rank's process stalls someone else's execution and routinely
// deadlocks the rank. The sanctioned patterns — building an mpi.Ctx from
// the worker's own Proc/Lane inside the body, and Group.Wait (which
// executes ready group tasks while waiting) — are not flagged.
// Runtime.Taskwait inside a task body is always flagged: the waited-for set
// includes the waiting task itself.
var BlockInTaskRule = Rule{
	Name: "blockintask",
	Doc:  "task bodies must not block through contexts captured from outside the task",
	Run:  runBlockInTask,
}

func runBlockInTask(p *Pass) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		bodies := taskBodies(info, f)
		for _, lit := range bodies {
			isNestedBody := func(n *ast.FuncLit) bool {
				for _, b := range bodies {
					if b == n && b != lit {
						return true
					}
				}
				return false
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && isNestedBody(fl) {
					return false // the nested task body is its own unit
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				t := targetOf(fn)
				if t.pkg == "internal/ompss" && t.recv == "Runtime" && t.name == "Taskwait" {
					diags = append(diags, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Rule:    "blockintask",
						Message: "Taskwait inside a task body waits for the waiting task itself; use a Group and Group.Wait for child tasks",
					})
					return true
				}
				var waiterArg int
				if sig, isColl := mpiCollectives[t]; isColl {
					if isAsyncCollective(t) {
						return true // posts don't block the caller
					}
					_ = sig
					waiterArg = 0 // ctx is the first argument of every entry
				} else if bc, isBlocking := blockingCalls[t]; isBlocking {
					waiterArg = bc.waiterArg
				} else {
					// Interprocedural: a module helper that blocks somewhere
					// down its chain. It is a violation only when the task
					// hands the helper a waiter-carrying handle (mpi.Ctx,
					// vtime.Proc, ...) captured from outside the task — a
					// helper blocking on a context it builds from the
					// worker's own Proc/Lane is the sanctioned pattern.
					s := p.Prog.SummaryFor(fn)
					if s == nil || !s.Set.Has(EffBlocks) {
						return true
					}
					carriers := append([]ast.Expr{receiverExpr(call)}, call.Args...)
					for _, arg := range carriers {
						if arg == nil {
							continue
						}
						tv, ok := info.Types[arg]
						if !ok || !isWaiterCarrier(tv.Type) {
							continue
						}
						root := rootIdent(arg)
						if root == nil {
							continue
						}
						obj := info.Uses[root]
						if obj == nil {
							obj = info.Defs[root]
						}
						if obj == nil || declaredWithin(obj, lit) {
							continue
						}
						diags = append(diags, Diagnostic{
							Pos:  p.Fset.Position(call.Pos()),
							Rule: "blockintask",
							Message: fmt.Sprintf("call to %s blocks inside a task body (%s) through %q, which is captured from outside the task; build the waiting context from the worker's own Proc/Lane (or use the lane-aware Group.Wait)",
								s.Key.Display(), callPath(p.Prog, s.Key, EffBlocks), root.Name),
						})
						break
					}
					return true
				}
				var waiter ast.Expr
				if waiterArg >= 0 {
					if waiterArg >= len(call.Args) {
						return true
					}
					waiter = call.Args[waiterArg]
				} else {
					waiter = receiverExpr(call)
				}
				root := rootIdent(waiter)
				if root == nil {
					return true
				}
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if obj == nil || declaredWithin(obj, lit) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "blockintask",
					Message: fmt.Sprintf("%s blocks inside a task body through %q, which is captured from outside the task; build the waiting context from the worker's own Proc/Lane (or use the lane-aware Group.Wait)",
						t.name, root.Name),
				})
				return true
			})
		}
	}
	return diags
}

// declaredWithin reports whether obj's declaration lies inside the literal.
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// isWaiterCarrier reports whether t (behind pointers) is one of the handle
// types through which a helper can block the simulated runtime on behalf of
// its caller.
func isWaiterCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	return typeIs(t, "internal/mpi", "Ctx") ||
		typeIs(t, "internal/vtime", "Proc") ||
		typeIs(t, "internal/vtime", "WaitQueue") ||
		typeIs(t, "internal/vtime", "Semaphore") ||
		typeIs(t, "internal/vtime", "Queue") ||
		typeIs(t, "internal/vtime", "Barrier") ||
		typeIs(t, "internal/ompss", "Runtime")
}
