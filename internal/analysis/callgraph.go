package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph that the effect summaries
// (summary.go) propagate over. The graph's nodes are the declared functions
// and methods of every loaded package; its edges are the statically
// resolvable direct calls between them. Calls through function values,
// interface methods and unresolvable selectors have no edge — the analysis
// is deliberately optimistic about indirection and exact about what it can
// see, which is the right trade for a repo-specific linter: no finding it
// reports can be argued away, and the runtime's dynamic checks backstop the
// rest.

// FuncKey names a declared function or method without relying on object
// identity. The loader type-checks a package twice — once as a plain import
// (no Info) and once as an analysis target — so *types.Func pointers for
// one function differ between the two views while the (package, receiver,
// name) triple does not. Go has no overloading, so the triple is unique.
type FuncKey struct {
	Pkg  string // full import path
	Recv string // receiver type name, "" for package-level functions
	Name string
}

// IsZero reports whether k is the zero key (no function).
func (k FuncKey) IsZero() bool { return k == FuncKey{} }

// Display renders the key the way diagnostics spell call paths:
// pkgbase.Recv.Name (e.g. "graph.Kernel.FFTZPart", "mpi.Alltoallv").
func (k FuncKey) Display() string {
	base := k.Pkg
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if k.Recv != "" {
		return base + "." + k.Recv + "." + k.Name
	}
	return base + "." + k.Name
}

// keyOf derives the FuncKey of a resolved function object. Instantiated
// generics map to their origin declaration.
func keyOf(fn *types.Func) FuncKey {
	fn = fn.Origin()
	k := FuncKey{Name: fn.Name()}
	if fn.Pkg() != nil {
		k.Pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			k.Recv = n.Obj().Name()
		}
	}
	return k
}

// display renders a callTarget like FuncKey.Display (for the intrinsic
// table's terminal path elements, e.g. "mpi.Comm.Barrier").
func (t callTarget) display() string {
	base := t.pkg
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if t.recv != "" {
		return base + "." + t.recv + "." + t.name
	}
	return base + "." + t.name
}

// funcNode is one call-graph node: a declared function with a body.
type funcNode struct {
	key  FuncKey
	pkg  *Package
	decl *ast.FuncDecl
}

// callEdge is one direct call out of a node, in source order.
type callEdge struct {
	pos token.Pos
	to  FuncKey
}

// Program is the whole-module view: every loaded package, the call graph
// over their declared functions, and the per-function effect summaries.
// Rules receive it through Pass.Prog; single-package runs (the rule unit
// tests) build a Program over just that package, which soundly degrades the
// interprocedural checks to what is visible.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	Pkgs    []*Package

	nodes map[FuncKey]*funcNode
	keys  []FuncKey // sorted, for deterministic fixpoint iteration
	edges map[FuncKey][]callEdge
	sums  map[FuncKey]*Summary
}

// NewProgram builds the call graph and effect summaries over pkgs. The
// simulated-runtime packages (internal/mpi, internal/vtime, internal/ompss)
// contribute no nodes: their entry points are modeled by the intrinsic
// effect table — the tables ARE the contract — so engine internals (mutexes,
// allocation inside the scheduler) never leak effects into callers.
func NewProgram(l *Loader, pkgs []*Package) *Program {
	p := &Program{
		Fset:    l.Fset,
		ModPath: l.modPath,
		Pkgs:    pkgs,
		nodes:   map[FuncKey]*funcNode{},
		edges:   map[FuncKey][]callEdge{},
		sums:    map[FuncKey]*Summary{},
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil || isModeledRuntimePkg(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				k := keyOf(fn)
				p.nodes[k] = &funcNode{key: k, pkg: pkg, decl: fd}
			}
		}
	}
	p.keys = make([]FuncKey, 0, len(p.nodes))
	for k := range p.nodes {
		p.keys = append(p.keys, k)
	}
	sort.Slice(p.keys, func(i, j int) bool {
		a, b := p.keys[i], p.keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Recv != b.Recv {
			return a.Recv < b.Recv
		}
		return a.Name < b.Name
	})
	p.computeSummaries()
	p.computeRankTaint()
	return p
}

// isModeledRuntimePkg reports whether path is one of the simulated-runtime
// packages whose effects come from the intrinsic table, not from analysis.
func isModeledRuntimePkg(path string) bool {
	for suffix := range simulatedRuntimePkgs {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// isModuleFunc reports whether fn is declared in the analyzed module.
func (p *Program) isModuleFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/")
}

// SummaryFor returns the effect summary of a resolved function, or nil for
// functions outside the program (stdlib, the modeled runtime packages,
// interface methods, packages not loaded in this run).
func (p *Program) SummaryFor(fn *types.Func) *Summary {
	if p == nil || fn == nil {
		return nil
	}
	return p.sums[keyOf(fn)]
}

// SummaryByKey returns the summary of a known node key, or nil.
func (p *Program) SummaryByKey(k FuncKey) *Summary {
	if p == nil {
		return nil
	}
	return p.sums[k]
}

// invokedLits collects the function literals under body that execute as
// part of the enclosing function itself: immediately invoked (func(){...}())
// and deferred-and-invoked literals. Every other literal (stored, returned,
// passed as a callback) runs in some other context and is analyzed at its
// consumption site by the body rules, not folded into this function's
// summary — folding it in would, for example, brand par.ParallelFor itself
// with every effect of every body ever passed to it.
func invokedLits(body ast.Node) map[*ast.FuncLit]bool {
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})
	return invoked
}

// posRange is a half-open source interval.
type posRange struct {
	from, to token.Pos
}

// panicRanges collects the argument ranges of panic(...) calls under body.
// Allocation inside a panic argument is the failure path — exempt from the
// zero-alloc steady-state contract.
func panicRanges(info *types.Info, body ast.Node) []posRange {
	var rs []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				rs = append(rs, posRange{call.Pos(), call.End()})
			}
		}
		return true
	})
	return rs
}

// inRanges reports whether pos falls inside any of the ranges.
func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}
