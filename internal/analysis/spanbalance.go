package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanBalanceRule enforces the request-span discipline of internal/serve:
// every span handle produced by a SpanSet/SpanRef Begin or BeginAt must be
// visibly closed — by a deferred End (directly, inside a deferred closure,
// or through a deferred helper that ends its span parameter) or by an End
// on every path: an End statement in the span's own block, with no return
// escaping between the Begin and that End. An open span corrupts the
// /debug/fftx/requests timeline (the tree renders with a running child
// forever) and skews the profile store's phase accounting, so the leak must
// be caught before it ships, not debugged out of a span dump.
//
// The check is lexical within the enclosing function, like waitleak: a span
// ended only inside a conditional, or abandoned by an early return, is
// reported at its Begin. Handles that transfer ownership are exempt —
// stored into a struct field (the handler → dispatcher → worker handoff of
// serve's task spans), returned, or passed to a callee that does not end
// them. Helpers that do end a span parameter are recognized
// interprocedurally via the call-graph summaries, so `defer finish(span)`
// counts as a deferred End.
var SpanBalanceRule = Rule{
	Name: "spanbalance",
	Doc:  "span Begins must be balanced by a deferred or all-paths End",
	Run:  runSpanBalance,
}

// spanTypeNames are the named types whose Begin/BeginAt mint span handles
// and whose End/EndAt close them (internal/trace's request-span API; the
// rule matches by name so its testdata stays dependency-free, like
// waitleak's Server).
var spanTypeNames = map[string]bool{"SpanSet": true, "SpanRef": true}

func runSpanBalance(p *Pass) []Diagnostic {
	enders := spanEnders(p.Prog)
	var diags []Diagnostic
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkSpanBalance(p, fd, enders)...)
		}
	}
	return diags
}

// spanEnders computes, over the whole program, which functions end a span
// parameter: param index i is in the set when the body calls End/EndAt on
// that parameter or passes it to another ender at the matching index. The
// closure is a fixpoint over the call-graph nodes (the PR 6 summary
// machinery's graph), so an End buried N helpers deep still credits the
// caller.
func spanEnders(prog *Program) map[FuncKey]map[int]bool {
	enders := map[FuncKey]map[int]bool{}
	if prog == nil {
		return enders
	}
	for changed := true; changed; {
		changed = false
		for _, k := range prog.keys {
			n := prog.nodes[k]
			info := n.pkg.Info
			params := spanParams(info, n.decl)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, isEnd := spanMethodRecv(info, call, "End", "EndAt"); isEnd {
					if id, ok := unparen(recv).(*ast.Ident); ok {
						if i, tracked := params[info.Uses[id]]; tracked {
							changed = markEnder(enders, k, i) || changed
						}
					}
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil {
					return true
				}
				ends := enders[keyOf(callee)]
				if len(ends) == 0 {
					return true
				}
				for ai, arg := range call.Args {
					if !ends[ai] {
						continue
					}
					if id, ok := unparen(arg).(*ast.Ident); ok {
						if i, tracked := params[info.Uses[id]]; tracked {
							changed = markEnder(enders, k, i) || changed
						}
					}
				}
				return true
			})
		}
	}
	return enders
}

func markEnder(enders map[FuncKey]map[int]bool, k FuncKey, i int) bool {
	if enders[k] == nil {
		enders[k] = map[int]bool{}
	}
	if enders[k][i] {
		return false
	}
	enders[k][i] = true
	return true
}

// spanParams maps a declaration's span-typed parameter objects to their
// positional index.
func spanParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	params := map[types.Object]int{}
	i := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			obj := info.Defs[name]
			if obj != nil && isSpanType(obj.Type()) {
				params[obj] = i
			}
			i++
		}
	}
	return params
}

// isSpanType reports whether t is (a pointer to) one of the span handle
// types.
func isSpanType(t types.Type) bool {
	if ptr, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named := namedOf(t)
	return named != nil && spanTypeNames[named.Obj().Name()]
}

// spanMethodRecv matches a call of one of the named methods on a span type
// and returns the receiver expression.
func spanMethodRecv(info *types.Info, call *ast.CallExpr, names ...string) (ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSpanType(tv.Type) {
		return nil, false
	}
	return sel.X, true
}

// beginSite is one tracked Begin: the handle variable, the position of the
// minting statement, and the statement list (block) it lives in.
type beginSite struct {
	name  string // the span name literal, for the diagnostic
	obj   types.Object
	pos   token.Pos
	block *[]ast.Stmt
}

func checkSpanBalance(p *Pass, fd *ast.FuncDecl, enders map[FuncKey]map[int]bool) []Diagnostic {
	info := p.Pkg.Info
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Rule:    "spanbalance",
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Pass 1 over the statement structure: collect tracked Begin sites
	// (handle assigned to a local), report discarded handles, and note the
	// owner-transfer exemptions (field stores, returns, call arguments).
	var sites []*beginSite
	walkStmtLists(fd.Body, func(list *[]ast.Stmt) {
		for _, st := range *list {
			switch x := st.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if _, isBegin := spanMethodRecv(info, call, "Begin", "BeginAt"); isBegin {
						report(call.Pos(), "result of %s(%s) is discarded: the span can never be ended",
							callName(call), spanNameArg(call))
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
					continue
				}
				call, ok := unparen(x.Rhs[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, isBegin := spanMethodRecv(info, call, "Begin", "BeginAt"); !isBegin {
					continue
				}
				id, ok := x.Lhs[0].(*ast.Ident)
				if !ok || id.Name == "_" {
					// A field or index store transfers ownership (serve's
					// task handoff); blank discards a handle deliberately.
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				sites = append(sites, &beginSite{
					name:  spanNameArg(call),
					obj:   obj,
					pos:   x.Pos(),
					block: list,
				})
			}
		}
	})

	// Pass 2: judge each site against the End evidence in the function.
	for _, site := range sites {
		ev := collectEndEvidence(info, fd, site.obj, enders)
		if ev.transferred {
			continue
		}
		if ev.deferredAt.IsValid() {
			continue
		}
		endPos := lastEndInBlock(site, ev)
		if !endPos.IsValid() {
			report(site.pos,
				"span %s is not ended on every path: no deferred End and no End in the span's own block",
				site.name)
			continue
		}
		for _, ret := range returnsBetween(fd.Body, site.pos, endPos) {
			if !ev.endedBefore(site.pos, ret) {
				report(site.pos,
					"span %s escapes through the return at line %d before it is ended",
					site.name, p.Fset.Position(ret).Line)
				break
			}
		}
	}
	return diags
}

// endEvidence is every way the function closes (or gives away) one handle.
type endEvidence struct {
	ends        []token.Pos // statement-level End/EndAt or ending-helper calls
	deferredAt  token.Pos   // first defer that ends the handle
	transferred bool        // returned or passed to a non-ending callee
}

// endedBefore reports an End strictly between from and to.
func (ev *endEvidence) endedBefore(from, to token.Pos) bool {
	for _, e := range ev.ends {
		if e > from && e < to {
			return true
		}
	}
	return false
}

// collectEndEvidence scans the function for everything that closes obj's
// span: direct End/EndAt statements, deferred Ends (bare, via closure, or
// via an ending helper), ending-helper calls, and ownership transfers.
func collectEndEvidence(info *types.Info, fd *ast.FuncDecl, obj types.Object, enders map[FuncKey]map[int]bool) *endEvidence {
	ev := &endEvidence{}
	isObj := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	// closesObj reports whether the call ends obj: an End/EndAt on it, or a
	// call passing it at an ending parameter index.
	closesObj := func(call *ast.CallExpr) bool {
		if recv, isEnd := spanMethodRecv(info, call, "End", "EndAt"); isEnd && isObj(recv) {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return false
		}
		ends := enders[keyOf(callee)]
		for ai, arg := range call.Args {
			if ends[ai] && isObj(arg) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.DeferStmt:
			if closesObj(x.Call) {
				ev.markDeferred(x.Pos())
				return false
			}
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if call, ok := inner.(*ast.CallExpr); ok && closesObj(call) {
						ev.markDeferred(x.Pos())
					}
					return true
				})
				return false
			}
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && closesObj(call) {
				ev.ends = append(ev.ends, x.Pos())
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if isObj(res) {
					ev.transferred = true
				}
			}
		case *ast.CallExpr:
			// obj passed to a callee that does not end it: ownership moves
			// (e.g. reqLog.start(spans, ...)); the callee is now responsible.
			if closesObj(x) {
				return true
			}
			for _, arg := range x.Args {
				if isObj(arg) {
					ev.transferred = true
				}
			}
		case *ast.AssignStmt:
			// Re-stored into a field or another variable: ownership moves.
			for i, rhs := range x.Rhs {
				if isObj(rhs) && i < len(x.Lhs) {
					ev.transferred = true
				}
			}
		}
		return true
	})
	return ev
}

func (ev *endEvidence) markDeferred(pos token.Pos) {
	if !ev.deferredAt.IsValid() || pos < ev.deferredAt {
		ev.deferredAt = pos
	}
}

// lastEndInBlock returns the position of the last End statement that lives
// in the same statement list as the Begin and after it.
func lastEndInBlock(site *beginSite, ev *endEvidence) token.Pos {
	var last token.Pos
	for _, st := range *site.block {
		if st.Pos() <= site.pos {
			continue
		}
		for _, e := range ev.ends {
			if e == st.Pos() && e > last {
				last = e
			}
		}
	}
	return last
}

// returnsBetween lists the return statements positioned strictly between
// from and to.
func returnsBetween(body *ast.BlockStmt, from, to token.Pos) []token.Pos {
	var rets []token.Pos
	ast.Inspect(body, func(nd ast.Node) bool {
		if fl, ok := nd.(*ast.FuncLit); ok {
			// Returns inside nested closures leave the closure, not the
			// function owning the span.
			_ = fl
			return false
		}
		if ret, ok := nd.(*ast.ReturnStmt); ok && ret.Pos() > from && ret.Pos() < to {
			rets = append(rets, ret.Pos())
		}
		return true
	})
	return rets
}

// walkStmtLists visits every statement list of the body: blocks, case
// clauses and comm clauses.
func walkStmtLists(body *ast.BlockStmt, visit func(*[]ast.Stmt)) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.BlockStmt:
			visit(&x.List)
		case *ast.CaseClause:
			visit(&x.Body)
		case *ast.CommClause:
			visit(&x.Body)
		}
		return true
	})
}

// callName renders the method name of a call for diagnostics.
func callName(call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Begin"
}

// spanNameArg extracts the span-name string literal of a Begin call, or a
// placeholder when it is not a literal.
func spanNameArg(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return lit.Value
		}
	}
	return "(dynamic)"
}
