package pw

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestGammaSphereIsHalf(t *testing.T) {
	full := NewSphere(6, 6)
	half := NewSphereGamma(6, 6)
	if !half.Gamma || full.Gamma {
		t.Fatal("gamma flags wrong")
	}
	// |half| = (|full| + 1) / 2 (G=0 is self-conjugate).
	if want := (full.NG() + 1) / 2; half.NG() != want {
		t.Fatalf("half sphere has %d G-vectors, want %d (full %d)", half.NG(), want, full.NG())
	}
	if half.Grid != full.Grid {
		t.Fatalf("grids differ: %v vs %v", half.Grid, full.Grid)
	}
}

func TestGammaHalfContainsExactlyOneOfEachPair(t *testing.T) {
	half := NewSphereGamma(6, 6)
	seen := map[[3]int]bool{}
	for _, g := range half.G {
		key := [3]int{g.I, g.J, g.K}
		neg := [3]int{-g.I, -g.J, -g.K}
		if seen[neg] && key != neg {
			t.Fatalf("both +G and -G present for (%d,%d,%d)", g.I, g.J, g.K)
		}
		seen[key] = true
	}
	// G = 0 must be present.
	if !seen[[3]int{0, 0, 0}] {
		t.Fatal("G=0 missing")
	}
}

func TestGammaSticksFullExceptZero(t *testing.T) {
	full := NewSphere(6, 6)
	half := NewSphereGamma(6, 6)
	fullLen := map[[2]int]int{}
	for _, st := range full.Stick {
		fullLen[[2]int{st.I, st.J}] = st.Len()
	}
	for _, st := range half.Stick {
		want := fullLen[[2]int{st.I, st.J}]
		if st.IsZeroStick() {
			// Only K >= 0 kept: (full + 1) / 2.
			if st.Len() != (want+1)/2 {
				t.Fatalf("zero stick has %d entries, want %d", st.Len(), (want+1)/2)
			}
			continue
		}
		if st.Len() != want {
			t.Fatalf("stick (%d,%d) truncated: %d of %d", st.I, st.J, st.Len(), want)
		}
	}
}

func TestExpandReduceRoundtrip(t *testing.T) {
	full := NewSphere(6, 6)
	half := NewSphereGamma(6, 6)
	bands := WavefunctionBandsGamma(half, 2)
	for _, c := range bands {
		fullC := ExpandGammaCoeffs(half, full, c)
		back := ReduceGammaCoeffs(half, full, fullC)
		for i := range c {
			if c[i] != back[i] {
				t.Fatalf("roundtrip mismatch at %d", i)
			}
		}
		// The expanded coefficients must be Hermitian.
		idx := map[[3]int]int{}
		for i, g := range full.G {
			idx[[3]int{g.I, g.J, g.K}] = i
		}
		for i, g := range full.G {
			mi := idx[[3]int{-g.I, -g.J, -g.K}]
			if d := cmplx.Abs(fullC[i] - cmplx.Conj(fullC[mi])); d > 1e-15 {
				t.Fatalf("expanded coefficients not Hermitian at (%d,%d,%d): %g", g.I, g.J, g.K, d)
			}
		}
	}
}

// The expanded gamma band must be real in real space.
func TestGammaBandRealInRealSpace(t *testing.T) {
	full := NewSphere(6, 6)
	half := NewSphereGamma(6, 6)
	c := WavefunctionBandsGamma(half, 1)[0]
	fullC := ExpandGammaCoeffs(half, full, c)
	box := make([]complex128, full.Grid.Size())
	full.FillBox(box, fullC)
	// Direct evaluation: f(r) = sum_G c(G) exp(+i G r); Hermitian c means
	// imaginary parts cancel. Spot-check via the naive sum at a few points.
	for _, r := range [][3]int{{0, 0, 0}, {1, 2, 3}, {5, 4, 2}} {
		var f complex128
		for i, g := range full.G {
			ph := 2 * math.Pi * (float64(g.I*r[0])/float64(full.Grid.Nx) +
				float64(g.J*r[1])/float64(full.Grid.Ny) +
				float64(g.K*r[2])/float64(full.Grid.Nz))
			f += fullC[i] * cmplx.Exp(complex(0, ph))
		}
		if math.Abs(imag(f)) > 1e-12 {
			t.Fatalf("wavefunction not real at %v: imag %g", r, imag(f))
		}
	}
}

func TestGammaBandsNormalized(t *testing.T) {
	half := NewSphereGamma(6, 6)
	full := NewSphere(6, 6)
	for _, c := range WavefunctionBandsGamma(half, 3) {
		fullC := ExpandGammaCoeffs(half, full, c)
		var norm float64
		for _, v := range fullC {
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(norm-1) > 1e-10 {
			t.Fatalf("implied full norm %g", norm)
		}
	}
}

func TestGammaLayoutWorks(t *testing.T) {
	half := NewSphereGamma(6, 6)
	for _, r := range []int{1, 2, 3} {
		l := NewLayout(half, r)
		coeffs := make([]complex128, half.NG())
		for i := range coeffs {
			coeffs[i] = complex(float64(i), -1)
		}
		back := l.Collect(l.Distribute(coeffs))
		for i := range back {
			if back[i] != coeffs[i] {
				t.Fatalf("r=%d roundtrip mismatch", r)
			}
		}
	}
}
