// Package pw builds the plane-wave DFT data structures the FFTXlib kernel
// operates on: the G-vector sphere implied by a kinetic-energy cutoff, the
// FFT grid that contains it, the stick (pencil) decomposition of the sphere
// and its distribution over MPI ranks, and the task-group chunking used by
// the two-layer communication scheme of Section II of the paper.
//
// Conventions follow Quantum ESPRESSO: a simple cubic cell of parameter
// alat (bohr) has reciprocal-lattice unit tpiba = 2π/alat; a wavefunction
// cutoff ecutw (Ry) keeps G-vectors with |G|² ≤ ecutw/tpiba² (in tpiba²
// units); the FFT grid must represent products of two wavefunctions, so its
// linear size satisfies nr ≥ 2·sqrt(4·ecutw)/tpiba + 1, rounded up to a
// 2^a·3^b·5^c "good size".
package pw

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fft"
)

// Cell is a simple cubic simulation cell.
type Cell struct {
	Alat float64 // lattice parameter in bohr
}

// Tpiba returns the reciprocal-space unit 2π/alat in bohr⁻¹.
func (c Cell) Tpiba() float64 { return 2 * math.Pi / c.Alat }

// Grid is the FFT mesh.
type Grid struct {
	Nx, Ny, Nz int
}

// Size returns the number of mesh points.
func (g Grid) Size() int { return g.Nx * g.Ny * g.Nz }

// GVector is one reciprocal-lattice vector of the sphere, in Miller indices
// (which may be negative) with its squared norm in tpiba² units.
type GVector struct {
	I, J, K int
	G2      float64
}

// Stick is one (I,J) column of the sphere: the set of K indices present.
// Zs lists the K Miller indices in increasing order; Off is the offset of
// the stick's coefficients in the sphere's canonical ordering.
type Stick struct {
	I, J int
	Zs   []int
	Off  int
}

// Len returns the number of G-vectors on the stick.
func (s Stick) Len() int { return len(s.Zs) }

// Sphere is the G-vector sphere of one wavefunction cutoff, with its stick
// decomposition and containing FFT grid. In gamma-point mode (Gamma true)
// only the Hermitian half of the sphere is enumerated: wavefunctions at the
// gamma point are real in real space, so c(-G) = conj(c(G)) and the -G
// coefficients are redundant.
type Sphere struct {
	Cell  Cell
	Ecut  float64 // wavefunction cutoff in Ry
	GCut  float64 // |G|² cutoff in tpiba² units
	Grid  Grid
	Gamma bool
	G     []GVector // canonical order: stick-major, K ascending within stick
	Stick []Stick
}

// gammaHalf reports whether a G-vector belongs to the canonical half of the
// sphere kept in gamma-point mode: i > 0, or i == 0 and j > 0, or
// i == j == 0 and k >= 0.
func gammaHalf(i, j, k int) bool {
	if i != 0 {
		return i > 0
	}
	if j != 0 {
		return j > 0
	}
	return k >= 0
}

// NewSphere enumerates the G-vector sphere for the given cutoff and cell and
// builds the stick decomposition and FFT grid.
func NewSphere(ecut, alat float64) *Sphere {
	return newSphere(ecut, alat, false)
}

// NewSphereGamma enumerates the Hermitian half-sphere of gamma-point mode.
// All sticks except (0,0) carry their full K extent (the half condition cuts
// whole sticks); the (0,0) stick keeps only K >= 0.
func NewSphereGamma(ecut, alat float64) *Sphere {
	return newSphere(ecut, alat, true)
}

func newSphere(ecut, alat float64, gamma bool) *Sphere {
	if ecut <= 0 || alat <= 0 {
		panic(fmt.Sprintf("pw: invalid ecut=%g alat=%g", ecut, alat))
	}
	cell := Cell{Alat: alat}
	tpiba := cell.Tpiba()
	gcut := ecut / (tpiba * tpiba) // in tpiba² units
	gmaxW := math.Sqrt(gcut)
	// Dense-grid extent: the charge density needs 2x the wavefunction
	// G range (ecutrho = 4 ecutw).
	nr := int(2*2*gmaxW) + 1
	n := fft.GoodSize(nr)
	s := &Sphere{
		Cell:  cell,
		Ecut:  ecut,
		GCut:  gcut,
		Grid:  Grid{Nx: n, Ny: n, Nz: n},
		Gamma: gamma,
	}
	lim := int(gmaxW) + 1
	type ij struct{ i, j int }
	sticks := map[ij][]int{}
	for i := -lim; i <= lim; i++ {
		for j := -lim; j <= lim; j++ {
			for k := -lim; k <= lim; k++ {
				g2 := float64(i*i + j*j + k*k)
				if g2 <= gcut && (!gamma || gammaHalf(i, j, k)) {
					sticks[ij{i, j}] = append(sticks[ij{i, j}], k)
				}
			}
		}
	}
	keys := make([]ij, 0, len(sticks))
	for k := range sticks {
		keys = append(keys, k)
	}
	// Canonical stick order: by column norm i²+j² ascending, ties by (i,j).
	sort.Slice(keys, func(a, b int) bool {
		na, nb := keys[a].i*keys[a].i+keys[a].j*keys[a].j, keys[b].i*keys[b].i+keys[b].j*keys[b].j
		if na != nb {
			return na < nb
		}
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		return keys[a].j < keys[b].j
	})
	off := 0
	for _, key := range keys {
		zs := sticks[key]
		sort.Ints(zs)
		st := Stick{I: key.i, J: key.j, Zs: zs, Off: off}
		s.Stick = append(s.Stick, st)
		for _, k := range zs {
			s.G = append(s.G, GVector{I: key.i, J: key.j, K: k,
				G2: float64(key.i*key.i + key.j*key.j + k*k)})
		}
		off += len(zs)
	}
	return s
}

// NG returns the number of G-vectors in the sphere.
func (s *Sphere) NG() int { return len(s.G) }

// NSticks returns the number of sticks.
func (s *Sphere) NSticks() int { return len(s.Stick) }

// wrap maps a Miller index to a non-negative FFT grid index.
func wrap(m, n int) int {
	m %= n
	if m < 0 {
		m += n
	}
	return m
}

// GridIndex returns the flattened z-fastest FFT grid index
// ((ix·Ny)+iy)·Nz+iz of a G-vector.
func (s *Sphere) GridIndex(g GVector) int {
	ix := wrap(g.I, s.Grid.Nx)
	iy := wrap(g.J, s.Grid.Ny)
	iz := wrap(g.K, s.Grid.Nz)
	return (ix*s.Grid.Ny+iy)*s.Grid.Nz + iz
}

// PlaneIndex returns the row-major (ix·Ny+iy) index of a stick in one XY
// plane.
func (s *Sphere) PlaneIndex(st Stick) int {
	return wrap(st.I, s.Grid.Nx)*s.Grid.Ny + wrap(st.J, s.Grid.Ny)
}

// MinusPlaneIndex returns the plane cell of the stick's Hermitian partner
// column (-I,-J), used by gamma-point mode.
func (s *Sphere) MinusPlaneIndex(st Stick) int {
	return wrap(-st.I, s.Grid.Nx)*s.Grid.Ny + wrap(-st.J, s.Grid.Ny)
}

// IsZeroStick reports whether the stick is the self-conjugate (0,0) column.
func (st Stick) IsZeroStick() bool { return st.I == 0 && st.J == 0 }

// FillBox scatters sphere coefficients into a zeroed z-fastest FFT box.
// The box must have Grid.Size() elements.
func (s *Sphere) FillBox(box, coeffs []complex128) {
	if len(coeffs) != s.NG() {
		panic(fmt.Sprintf("pw: FillBox with %d coeffs, sphere has %d", len(coeffs), s.NG()))
	}
	for i := range box {
		box[i] = 0
	}
	for i, g := range s.G {
		box[s.GridIndex(g)] = coeffs[i]
	}
}

// ExtractBox gathers the sphere coefficients back out of an FFT box.
func (s *Sphere) ExtractBox(coeffs, box []complex128) {
	if len(coeffs) != s.NG() {
		panic(fmt.Sprintf("pw: ExtractBox with %d coeffs, sphere has %d", len(coeffs), s.NG()))
	}
	for i, g := range s.G {
		coeffs[i] = box[s.GridIndex(g)]
	}
}
