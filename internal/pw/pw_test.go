package pw

import (
	"math"
	"testing"
	"testing/quick"
)

func testSphere() *Sphere { return NewSphere(6.0, 6.0) }

func TestSphereCountMatchesDirectEnumeration(t *testing.T) {
	s := testSphere()
	gcut := s.GCut
	lim := int(math.Sqrt(gcut)) + 1
	count := 0
	for i := -lim; i <= lim; i++ {
		for j := -lim; j <= lim; j++ {
			for k := -lim; k <= lim; k++ {
				if float64(i*i+j*j+k*k) <= gcut {
					count++
				}
			}
		}
	}
	if s.NG() != count {
		t.Fatalf("sphere has %d G-vectors, direct count %d", s.NG(), count)
	}
	if s.NG() == 0 {
		t.Fatal("empty sphere")
	}
}

func TestSphereSymmetric(t *testing.T) {
	// The sphere must contain -G for every G.
	s := testSphere()
	have := map[[3]int]bool{}
	for _, g := range s.G {
		have[[3]int{g.I, g.J, g.K}] = true
	}
	for _, g := range s.G {
		if !have[[3]int{-g.I, -g.J, -g.K}] {
			t.Fatalf("missing -G for (%d,%d,%d)", g.I, g.J, g.K)
		}
	}
}

func TestSphereWithinCutoff(t *testing.T) {
	s := testSphere()
	for _, g := range s.G {
		if g.G2 > s.GCut {
			t.Fatalf("G (%d,%d,%d) with G2=%g exceeds cutoff %g", g.I, g.J, g.K, g.G2, s.GCut)
		}
	}
}

func TestGridLargeEnough(t *testing.T) {
	s := testSphere()
	gmax := math.Sqrt(s.GCut)
	if float64(s.Grid.Nx) < 2*2*gmax {
		t.Fatalf("grid %d too small for 2x sphere extent %g", s.Grid.Nx, 2*2*gmax)
	}
	// Good size: only factors 2, 3, 5.
	n := s.Grid.Nx
	for _, f := range []int{2, 3, 5} {
		for n%f == 0 {
			n /= f
		}
	}
	if n != 1 {
		t.Fatalf("grid %d is not 5-smooth", s.Grid.Nx)
	}
}

func TestPaperParametersGrid(t *testing.T) {
	// Plane-wave energy cutoff 80 Ry, lattice parameter 20 bohr: the
	// resulting dense grid should be around 120³ (the realistic size the
	// paper's experiments transform).
	s := NewSphere(80, 20)
	if s.Grid.Nx < 100 || s.Grid.Nx > 144 {
		t.Fatalf("paper-parameter grid is %d, expected ~120", s.Grid.Nx)
	}
	if s.NG() < 50000 {
		t.Fatalf("paper-parameter sphere has only %d G-vectors", s.NG())
	}
}

func TestSticksPartitionSphere(t *testing.T) {
	s := testSphere()
	total := 0
	seen := make([]bool, s.NG())
	for _, st := range s.Stick {
		for z := 0; z < st.Len(); z++ {
			gi := st.Off + z
			if seen[gi] {
				t.Fatalf("G index %d in two sticks", gi)
			}
			seen[gi] = true
			g := s.G[gi]
			if g.I != st.I || g.J != st.J || g.K != st.Zs[z] {
				t.Fatalf("stick (%d,%d) entry %d maps to G (%d,%d,%d)", st.I, st.J, z, g.I, g.J, g.K)
			}
		}
		total += st.Len()
	}
	if total != s.NG() {
		t.Fatalf("sticks cover %d of %d", total, s.NG())
	}
}

func TestGridIndexBijectiveOnSphere(t *testing.T) {
	s := testSphere()
	seen := map[int]bool{}
	for _, g := range s.G {
		idx := s.GridIndex(g)
		if idx < 0 || idx >= s.Grid.Size() {
			t.Fatalf("grid index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("grid index %d hit twice", idx)
		}
		seen[idx] = true
	}
}

func TestFillExtractRoundtrip(t *testing.T) {
	s := testSphere()
	coeffs := make([]complex128, s.NG())
	for i := range coeffs {
		coeffs[i] = complex(float64(i+1), float64(-i))
	}
	box := make([]complex128, s.Grid.Size())
	s.FillBox(box, coeffs)
	got := make([]complex128, s.NG())
	s.ExtractBox(got, box)
	for i := range got {
		if got[i] != coeffs[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestLayoutSticksAndPlanesPartition(t *testing.T) {
	s := testSphere()
	for _, r := range []int{1, 2, 3, 4, 7} {
		l := NewLayout(s, r)
		// Sticks: every stick owned exactly once.
		count := 0
		for p := 0; p < r; p++ {
			count += len(l.SticksOf[p])
			for _, si := range l.SticksOf[p] {
				if l.StickOwner[si] != p {
					t.Fatalf("r=%d: stick %d owner mismatch", r, si)
				}
			}
		}
		if count != s.NSticks() {
			t.Fatalf("r=%d: %d sticks assigned of %d", r, count, s.NSticks())
		}
		// Planes: contiguous cover of [0,Nz).
		lo := 0
		for p := 0; p < r; p++ {
			if l.PlaneLo[p] != lo {
				t.Fatalf("r=%d: plane gap at position %d", r, p)
			}
			lo = l.PlaneHi[p]
		}
		if lo != s.Grid.Nz {
			t.Fatalf("r=%d: planes cover %d of %d", r, lo, s.Grid.Nz)
		}
		// NG sums to sphere size.
		ng := 0
		for _, n := range l.NGOf {
			ng += n
		}
		if ng != s.NG() {
			t.Fatalf("r=%d: NG sums to %d", r, ng)
		}
	}
}

func TestLayoutBalanced(t *testing.T) {
	s := testSphere()
	l := NewLayout(s, 4)
	min, max := s.NG(), 0
	for _, n := range l.NGOf {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	// Greedy balancing should keep the spread within one max stick length.
	maxStick := 0
	for _, st := range s.Stick {
		if st.Len() > maxStick {
			maxStick = st.Len()
		}
	}
	if max-min > maxStick {
		t.Fatalf("imbalance %d exceeds max stick %d", max-min, maxStick)
	}
}

func TestDistributeCollectRoundtrip(t *testing.T) {
	s := testSphere()
	for _, r := range []int{1, 3, 5} {
		l := NewLayout(s, r)
		coeffs := make([]complex128, s.NG())
		for i := range coeffs {
			coeffs[i] = complex(float64(i), 1)
		}
		back := l.Collect(l.Distribute(coeffs))
		for i := range back {
			if back[i] != coeffs[i] {
				t.Fatalf("r=%d: roundtrip mismatch at %d", r, i)
			}
		}
	}
}

func TestTaskChunksPartition(t *testing.T) {
	s := testSphere()
	l := NewLayout(s, 3)
	for p := 0; p < 3; p++ {
		for _, ntg := range []int{1, 2, 4, 8} {
			b := l.TaskChunks(p, ntg)
			if b[0] != 0 || b[ntg] != l.NGOf[p] {
				t.Fatalf("chunks don't span local range: %v (NG %d)", b, l.NGOf[p])
			}
			for g := 0; g < ntg; g++ {
				if b[g+1] < b[g] {
					t.Fatalf("non-monotone chunks %v", b)
				}
				if d := (b[g+1] - b[g]) - l.NGOf[p]/ntg; d < 0 || d > 1 {
					t.Fatalf("chunk %d of %v uneven", g, b)
				}
			}
		}
	}
}

func TestGroupStickOrderIsPermutation(t *testing.T) {
	s := testSphere()
	l := NewLayout(s, 3)
	order := l.GroupStickOrder()
	if len(order) != s.NSticks() {
		t.Fatalf("group order has %d sticks of %d", len(order), s.NSticks())
	}
	seen := make([]bool, s.NSticks())
	for _, si := range order {
		if seen[si] {
			t.Fatalf("stick %d repeated", si)
		}
		seen[si] = true
	}
}

func TestScatterCountsConsistent(t *testing.T) {
	s := testSphere()
	l := NewLayout(s, 4)
	for p := 0; p < 4; p++ {
		counts := l.ScatterCounts(p)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != l.NSticksOf(p)*s.Grid.Nz {
			t.Fatalf("p=%d: scatter counts %v don't sum to sticks*nz", p, counts)
		}
	}
}

func TestPotentialDeterministicAndBounded(t *testing.T) {
	g := Grid{Nx: 6, Ny: 5, Nz: 4}
	v1 := Potential(g)
	v2 := Potential(g)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("potential not deterministic")
		}
		if v1[i] < 0.4 || v1[i] > 1.6 {
			t.Fatalf("potential out of expected range: %g", v1[i])
		}
	}
}

func TestPotentialPlane(t *testing.T) {
	g := Grid{Nx: 3, Ny: 4, Nz: 5}
	v := Potential(g)
	for z := 0; z < g.Nz; z++ {
		pl := PotentialPlane(g, v, z)
		for ixy := 0; ixy < g.Nx*g.Ny; ixy++ {
			if pl[ixy] != v[ixy*g.Nz+z] {
				t.Fatalf("plane %d mismatch at %d", z, ixy)
			}
		}
	}
}

func TestWavefunctionBandsNormalized(t *testing.T) {
	s := testSphere()
	bands := WavefunctionBands(s, 3)
	if len(bands) != 3 {
		t.Fatalf("got %d bands", len(bands))
	}
	for b, c := range bands {
		var norm float64
		for _, v := range c {
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(norm-1) > 1e-10 {
			t.Fatalf("band %d norm %g", b, norm)
		}
	}
	// Distinct bands must differ.
	same := true
	for i := range bands[0] {
		if bands[0][i] != bands[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("bands 0 and 1 identical")
	}
}

// Property: for any valid nproc, Distribute/Collect is the identity.
func TestPropertyDistributeCollect(t *testing.T) {
	s := testSphere()
	f := func(rRaw uint8, seed uint8) bool {
		r := int(rRaw)%8 + 1
		l := NewLayout(s, r)
		coeffs := make([]complex128, s.NG())
		for i := range coeffs {
			coeffs[i] = complex(float64((i*int(seed+1))%101), float64(i%7))
		}
		back := l.Collect(l.Distribute(coeffs))
		for i := range back {
			if back[i] != coeffs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestShellsPartitionAndDegeneracy(t *testing.T) {
	s := testSphere()
	shells := s.Shells()
	total := 0
	prev := -1.0
	for _, sh := range shells {
		if sh.G2 <= prev {
			t.Fatalf("shells not strictly ascending: %v after %v", sh.G2, prev)
		}
		prev = sh.G2
		total += len(sh.Indices)
		for _, i := range sh.Indices {
			if s.G[i].G2 != sh.G2 {
				t.Fatalf("index %d in wrong shell", i)
			}
		}
	}
	if total != s.NG() {
		t.Fatalf("shells cover %d of %d", total, s.NG())
	}
	// Cubic-symmetry degeneracies: the first shells of a simple cubic
	// lattice are 1 (G=0), 6 (<100>), 12 (<110>), 8 (<111>), 6 (<200>), ...
	want := []int{1, 6, 12, 8, 6}
	for i, w := range want {
		if i >= len(shells) {
			break
		}
		if len(shells[i].Indices) != w {
			t.Fatalf("shell %d has %d members, want %d", i, len(shells[i].Indices), w)
		}
	}
}
