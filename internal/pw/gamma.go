package pw

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Gamma-point helpers: conversions between the Hermitian half-sphere
// representation (gamma-only mode) and the full sphere.

// WavefunctionBandsGamma builds nb deterministic normalized bands of
// half-sphere coefficients. The G=0 coefficient is forced real, as the
// Hermitian symmetry of a real wavefunction requires.
func WavefunctionBandsGamma(s *Sphere, nb int) [][]complex128 {
	if !s.Gamma {
		panic("pw: WavefunctionBandsGamma on a full sphere")
	}
	bands := make([][]complex128, nb)
	for b := range bands {
		c := make([]complex128, s.NG())
		var norm float64
		for i, g := range s.G {
			amp := 1.0 / (1.0 + g.G2)
			ph := 0.37*float64(i%97) + 1.17*float64(b+1)
			re := amp * math.Cos(ph)
			im := amp * math.Sin(ph+0.5*float64(b))
			if g.I == 0 && g.J == 0 && g.K == 0 {
				im = 0 // self-conjugate coefficient must be real
			}
			c[i] = complex(re, im)
			// The implied full wavefunction carries conj(c) at -G, so the
			// half coefficients count twice in the norm (except G=0).
			w := 2.0
			if g.I == 0 && g.J == 0 && g.K == 0 {
				w = 1.0
			}
			norm += w * (re*re + im*im)
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range c {
			c[i] *= inv
		}
		bands[b] = c
	}
	return bands
}

// ExpandGammaCoeffs maps half-sphere coefficients onto the corresponding
// full sphere: c(+G) as stored, c(-G) = conj(c(+G)). The two spheres must
// come from the same cutoff and cell.
func ExpandGammaCoeffs(half, full *Sphere, c []complex128) []complex128 {
	if !half.Gamma || full.Gamma {
		panic("pw: ExpandGammaCoeffs needs a half and a full sphere")
	}
	if len(c) != half.NG() {
		panic(fmt.Sprintf("pw: expand with %d coeffs, half sphere has %d", len(c), half.NG()))
	}
	idx := make(map[[3]int]int, full.NG())
	for i, g := range full.G {
		idx[[3]int{g.I, g.J, g.K}] = i
	}
	out := make([]complex128, full.NG())
	for i, g := range half.G {
		pi, ok := idx[[3]int{g.I, g.J, g.K}]
		if !ok {
			panic(fmt.Sprintf("pw: half G (%d,%d,%d) missing from full sphere", g.I, g.J, g.K))
		}
		out[pi] = c[i]
		mi, ok := idx[[3]int{-g.I, -g.J, -g.K}]
		if !ok {
			panic(fmt.Sprintf("pw: -G of (%d,%d,%d) missing from full sphere", g.I, g.J, g.K))
		}
		out[mi] = cmplx.Conj(c[i])
	}
	return out
}

// ReduceGammaCoeffs is the inverse of ExpandGammaCoeffs: it extracts the
// half-sphere coefficients from full-sphere ones (which must be Hermitian;
// the -G values are ignored).
func ReduceGammaCoeffs(half, full *Sphere, c []complex128) []complex128 {
	if !half.Gamma || full.Gamma {
		panic("pw: ReduceGammaCoeffs needs a half and a full sphere")
	}
	if len(c) != full.NG() {
		panic(fmt.Sprintf("pw: reduce with %d coeffs, full sphere has %d", len(c), full.NG()))
	}
	idx := make(map[[3]int]int, full.NG())
	for i, g := range full.G {
		idx[[3]int{g.I, g.J, g.K}] = i
	}
	out := make([]complex128, half.NG())
	for i, g := range half.G {
		out[i] = c[idx[[3]int{g.I, g.J, g.K}]]
	}
	return out
}

// Shell groups G-vectors of equal squared norm — the degeneracy structure
// of the free-electron spectrum.
type Shell struct {
	G2      float64
	Indices []int // sphere indices of the members
}

// Shells returns the G-shells of the sphere sorted by |G|² ascending.
func (s *Sphere) Shells() []Shell {
	byG2 := map[float64][]int{}
	for i, g := range s.G {
		byG2[g.G2] = append(byG2[g.G2], i)
	}
	out := make([]Shell, 0, len(byG2))
	for g2, idx := range byG2 {
		out = append(out, Shell{G2: g2, Indices: idx})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].G2 < out[i].G2 {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
