package pw

import (
	"fmt"
	"sort"
)

// Layout distributes a sphere over R positions (the ranks inside one FFT
// task group): sticks are assigned to positions balancing the G-vector
// count (the stick phase of the pipeline), and the Nz grid planes are
// assigned as contiguous blocks (the plane phase after the scatter).
type Layout struct {
	S *Sphere
	R int

	// StickOwner maps stick index -> position.
	StickOwner []int
	// SticksOf lists, per position, its stick indices in canonical order.
	SticksOf [][]int
	// NGOf is the local G-vector count per position.
	NGOf []int
	// OwnerOf maps sphere G index -> owning position.
	OwnerOf []int
	// LocalIdx maps sphere G index -> index within the owner's local
	// coefficient ordering (stick-major in SticksOf order, z ascending).
	LocalIdx []int
	// PlaneLo/PlaneHi give each position's contiguous z-plane range
	// [PlaneLo[p], PlaneHi[p]).
	PlaneLo, PlaneHi []int
}

// NewLayout distributes the sphere over nproc positions.
func NewLayout(s *Sphere, nproc int) *Layout {
	if nproc <= 0 {
		panic(fmt.Sprintf("pw: invalid nproc %d", nproc))
	}
	l := &Layout{
		S:          s,
		R:          nproc,
		StickOwner: make([]int, s.NSticks()),
		SticksOf:   make([][]int, nproc),
		NGOf:       make([]int, nproc),
		OwnerOf:    make([]int, s.NG()),
		LocalIdx:   make([]int, s.NG()),
		PlaneLo:    make([]int, nproc),
		PlaneHi:    make([]int, nproc),
	}
	// Greedy balanced assignment: longest sticks first to the least loaded
	// position; deterministic tie-breaks.
	order := make([]int, s.NSticks())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := s.Stick[order[a]].Len(), s.Stick[order[b]].Len()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	load := make([]int, nproc)
	for _, si := range order {
		best := 0
		for p := 1; p < nproc; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		l.StickOwner[si] = best
		load[best] += s.Stick[si].Len()
	}
	for si := range s.Stick {
		p := l.StickOwner[si]
		l.SticksOf[p] = append(l.SticksOf[p], si)
	}
	// Local coefficient ordering per position.
	for p := 0; p < nproc; p++ {
		idx := 0
		for _, si := range l.SticksOf[p] {
			st := s.Stick[si]
			for z := 0; z < st.Len(); z++ {
				gi := st.Off + z
				l.OwnerOf[gi] = p
				l.LocalIdx[gi] = idx
				idx++
			}
		}
		l.NGOf[p] = idx
	}
	// Contiguous plane blocks, remainder to the low positions.
	nz := s.Grid.Nz
	base, rem := nz/nproc, nz%nproc
	lo := 0
	for p := 0; p < nproc; p++ {
		sz := base
		if p < rem {
			sz++
		}
		l.PlaneLo[p] = lo
		l.PlaneHi[p] = lo + sz
		lo += sz
	}
	return l
}

// NPlanesOf returns the number of z planes owned by position p.
func (l *Layout) NPlanesOf(p int) int { return l.PlaneHi[p] - l.PlaneLo[p] }

// NSticksOf returns the number of sticks owned by position p.
func (l *Layout) NSticksOf(p int) int { return len(l.SticksOf[p]) }

// MaxNG returns the maximum local G count over positions (load-balance
// metric).
func (l *Layout) MaxNG() int {
	m := 0
	for _, n := range l.NGOf {
		if n > m {
			m = n
		}
	}
	return m
}

// Distribute splits a full-sphere coefficient vector into the per-position
// local vectors.
func (l *Layout) Distribute(coeffs []complex128) [][]complex128 {
	if len(coeffs) != l.S.NG() {
		panic(fmt.Sprintf("pw: Distribute with %d coeffs, sphere has %d", len(coeffs), l.S.NG()))
	}
	out := make([][]complex128, l.R)
	for p := range out {
		out[p] = make([]complex128, l.NGOf[p])
	}
	for gi, c := range coeffs {
		out[l.OwnerOf[gi]][l.LocalIdx[gi]] = c
	}
	return out
}

// Collect is the inverse of Distribute.
func (l *Layout) Collect(locals [][]complex128) []complex128 {
	out := make([]complex128, l.S.NG())
	for gi := range out {
		out[gi] = locals[l.OwnerOf[gi]][l.LocalIdx[gi]]
	}
	return out
}

// TaskChunks splits position p's local coefficients into ntg near-equal
// contiguous chunks (the unit the pack/unpack Alltoallv moves between task
// groups). It returns the ntg+1 chunk boundaries.
func (l *Layout) TaskChunks(p, ntg int) []int {
	n := l.NGOf[p]
	bounds := make([]int, ntg+1)
	base, rem := n/ntg, n%ntg
	off := 0
	for g := 0; g < ntg; g++ {
		bounds[g] = off
		off += base
		if g < rem {
			off++
		}
	}
	bounds[ntg] = off
	return bounds
}

// GroupStickOrder returns all stick indices in "group order": position 0's
// sticks first, then position 1's, etc. After the scatter, each plane holds
// one value per stick in exactly this order.
func (l *Layout) GroupStickOrder() []int {
	out := make([]int, 0, l.S.NSticks())
	for p := 0; p < l.R; p++ {
		out = append(out, l.SticksOf[p]...)
	}
	return out
}

// ScatterCounts returns the per-destination element counts of the
// sticks→planes Alltoallv from position p: count[q] = nsticks(p)·nplanes(q).
func (l *Layout) ScatterCounts(p int) []int {
	out := make([]int, l.R)
	for q := 0; q < l.R; q++ {
		out[q] = l.NSticksOf(p) * l.NPlanesOf(q)
	}
	return out
}
