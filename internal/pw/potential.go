package pw

import "math"

// Potential builds the deterministic real-space local potential V(r) the
// miniapp applies between the forward and backward transforms (the VOFR
// step). The form — a constant plus a few smooth cosine modes — is
// arbitrary but fixed, so every engine applies bit-identical physics.
func Potential(g Grid) []float64 {
	v := make([]float64, g.Size())
	for ix := 0; ix < g.Nx; ix++ {
		cx := math.Cos(2 * math.Pi * float64(ix) / float64(g.Nx))
		for iy := 0; iy < g.Ny; iy++ {
			cy := math.Cos(2 * math.Pi * float64(iy) / float64(g.Ny))
			for iz := 0; iz < g.Nz; iz++ {
				cz := math.Cos(2 * math.Pi * float64(iz) / float64(g.Nz))
				v[(ix*g.Ny+iy)*g.Nz+iz] = 1.0 + 0.25*cx*cy + 0.15*cy*cz + 0.10*cz*cx
			}
		}
	}
	return v
}

// PotentialPlane extracts the row-major (ix·Ny+iy) slice of V at plane z
// from the z-fastest volume, matching the plane layout the XY stage works
// in.
func PotentialPlane(g Grid, v []float64, z int) []float64 {
	out := make([]float64, g.Nx*g.Ny)
	for ixy := 0; ixy < g.Nx*g.Ny; ixy++ {
		out[ixy] = v[ixy*g.Nz+z]
	}
	return out
}

// WavefunctionBands builds nb deterministic pseudo-random band coefficient
// vectors on the sphere, normalized, seeded by band index. It is the test
// and example workload generator (the miniapp initializes its wavefunctions
// similarly with a fixed expression).
func WavefunctionBands(s *Sphere, nb int) [][]complex128 {
	bands := make([][]complex128, nb)
	for b := range bands {
		c := make([]complex128, s.NG())
		var norm float64
		for i, g := range s.G {
			// A smooth, decaying, band-dependent filling: deterministic
			// and cheap, with non-trivial phase structure.
			amp := 1.0 / (1.0 + g.G2)
			ph := 0.37*float64(i%97) + 1.17*float64(b+1)
			re := amp * math.Cos(ph)
			im := amp * math.Sin(ph+0.5*float64(b))
			c[i] = complex(re, im)
			norm += re*re + im*im
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range c {
			c[i] *= inv
		}
		bands[b] = c
	}
	return bands
}
