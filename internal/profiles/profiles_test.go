package profiles

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var k1 = Key{Shape: "f2d:8x8", Engine: "plan2d", Mode: "transform"}
var k2 = Key{Shape: "pipe:ecut20:nb8:r2xt2", Engine: "task-iter", Mode: "cost"}

func TestRecordAccumulates(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	s.Record(k1, 0.010, map[string]float64{"plan": 0.002, "transform": 0.008}, "aaaaaaaaaaaaaaaa")
	s.Record(k1, 0.030, map[string]float64{"transform": 0.030}, "bbbbbbbbbbbbbbbb")
	s.Record(k1, math.NaN(), nil, "")  // dropped
	s.Record(k1, math.Inf(1), nil, "") // dropped
	s.Record(k1, -1, nil, "")          // dropped

	st, ok := s.Get(k1)
	if !ok {
		t.Fatal("key not recorded")
	}
	if st.Count != 2 || st.MinSec != 0.010 || st.MaxSec != 0.030 {
		t.Errorf("stats %+v", st)
	}
	if got := st.MeanSec(); math.Abs(got-0.020) > 1e-12 {
		t.Errorf("mean %g, want 0.020", got)
	}
	if math.Abs(st.Phases["transform"]-0.038) > 1e-12 || math.Abs(st.Phases["plan"]-0.002) > 1e-12 {
		t.Errorf("phases %v", st.Phases)
	}
	if st.LastTraceID != "bbbbbbbbbbbbbbbb" {
		t.Errorf("last trace %q", st.LastTraceID)
	}
	// Get returns a copy: mutating it must not leak back.
	st.Phases["transform"] = 99
	again, _ := s.Get(k1)
	if again.Phases["transform"] != st.Phases["plan"]+0.036 && again.Phases["transform"] == 99 {
		t.Error("Get leaked internal phase map")
	}
}

func TestSnapshotSorted(t *testing.T) {
	s, _ := Open("")
	s.Record(k2, 2, nil, "")
	s.Record(k1, 1, nil, "")
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Key != k1 || snap[1].Key != k2 {
		t.Fatalf("snapshot order %v", snap)
	}
	if snap[0].MeanSecond != 1 {
		t.Errorf("entry mean %g", snap[0].MeanSecond)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Record(k1, 0.5, map[string]float64{"plan": 0.1}, "cafecafecafecafe")
	s.Record(k2, 3.0, map[string]float64{"fft-z-sync": 0.7}, "")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d keys, want 2", re.Len())
	}
	st, ok := re.Get(k1)
	if !ok || st.Count != 1 || st.TotalSec != 0.5 || st.LastTraceID != "cafecafecafecafe" {
		t.Errorf("reloaded stats %+v ok=%v", st, ok)
	}
	if st.Phases["plan"] != 0.1 {
		t.Errorf("reloaded phases %v", st.Phases)
	}
}

func TestOpenMissingAndMalformed(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("missing file: store %v err %v", s, err)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("malformed file not rejected: %v", err)
	}

	badKey := filepath.Join(t.TempDir(), "badkey.json")
	if err := os.WriteFile(badKey,
		[]byte(`{"version":1,"profiles":{"no-separators":{"count":1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badKey); err == nil || !strings.Contains(err.Error(), "malformed profile key") {
		t.Fatalf("malformed key not rejected: %v", err)
	}
}

// TestSelfFlush checks the FlushEvery self-flush: the file appears without
// an explicit Flush once enough records accumulate, and no temp files leak.
func TestSelfFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.FlushEvery = 4
	for i := 0; i < 4; i++ {
		s.Record(k1, 0.001, nil, "")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no self-flushed file after FlushEvery records: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "profiles.json" {
			t.Errorf("leftover file %q in store directory", e.Name())
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	s, _ := Open(filepath.Join(t.TempDir(), "p.json"))
	s.FlushEvery = 8
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record(k1, 0.001, map[string]float64{"transform": 0.001}, "")
				s.Record(k2, 0.002, nil, "")
			}
		}()
	}
	wg.Wait()
	st, _ := s.Get(k1)
	if st.Count != 800 {
		t.Errorf("count %d, want 800", st.Count)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	for _, k := range []Key{k1, k2, {Shape: "a", Engine: "b|c", Mode: "d"}} {
		got, err := parseKey(k.String())
		if err != nil {
			t.Fatalf("parseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %q -> %+v, want %+v", k.String(), got, k)
		}
	}
}
