// Package profiles is the persistent per-shape performance database of the
// serving layer: for every (shape, engine, mode) combination it accumulates
// measured request latency and a per-phase time breakdown, survives fftxd
// restarts via an atomically-swapped JSON file, and is exported live at
// /debug/fftx/profiles.
//
// This is the substrate ROADMAP item 3 (online autotuning) consumes: the
// cost-model selector can compare its predictions against these measured
// profiles per shape and re-probe when they drift — the measured-profile
// approach of Khokhriakov et al. (PAPERS.md). The serving layer records
// into it from two sides: transform batches contribute wall-clock span
// breakdowns (queue, coalesce, plan, transform, encode), pipeline runs
// contribute the engine's simulated per-phase seconds (pack, fft-z, A2A
// sync/transfer, …), both under the same key space.
package profiles

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key identifies one profile: the transform shape (the serve ShapeKey for
// transforms, a pipe:… descriptor for pipeline runs), the engine that
// executed (plan1d/plan2d/plan3d for kernel batches, the fftx engine name
// for pipelines) and the execution mode ("transform" or "cost").
type Key struct {
	Shape  string `json:"shape"`
	Engine string `json:"engine"`
	Mode   string `json:"mode"`
}

// String renders the key as "shape|engine|mode" (the map key of the JSON
// file).
func (k Key) String() string { return k.Shape + "|" + k.Engine + "|" + k.Mode }

// Stats is the accumulated measurement of one key.
type Stats struct {
	// Count is the number of recorded executions.
	Count int64 `json:"count"`
	// TotalSec, MinSec and MaxSec summarize the measured latency
	// (wall-clock for transforms, virtual seconds for pipeline runtimes).
	TotalSec float64 `json:"total_s"`
	MinSec   float64 `json:"min_s"`
	MaxSec   float64 `json:"max_s"`
	// Phases accumulates the per-phase breakdown in seconds.
	Phases map[string]float64 `json:"phases,omitempty"`
	// LastTraceID is the trace ID of the most recent sampled execution —
	// the join point into /debug/fftx/requests.
	LastTraceID string `json:"last_trace_id,omitempty"`
}

// MeanSec returns the mean recorded latency.
func (s *Stats) MeanSec() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalSec / float64(s.Count)
}

// Entry is one (key, stats) pair of a snapshot.
type Entry struct {
	Key
	Stats
	MeanSecond float64 `json:"mean_s"`
}

// Store is a concurrency-safe profile database. The zero value is not
// usable; create with Open. A Store with an empty path is memory-only
// (tests, loadgen self-hosting).
type Store struct {
	mu      sync.Mutex
	path    string
	m       map[Key]*Stats
	pending int // records since the last flush
	// FlushEvery is how many records may accumulate before Record flushes
	// to disk on its own (default 256; Close always flushes).
	FlushEvery int
}

// fileFormat is the on-disk shape: a version tag plus the keyed stats.
type fileFormat struct {
	Version  int               `json:"version"`
	Profiles map[string]*Stats `json:"profiles"`
}

// Open loads (or initializes) the profile store at path. A missing file is
// an empty store; a malformed file is an error (the store never silently
// discards a database). An empty path yields a memory-only store.
func Open(path string) (*Store, error) {
	s := &Store{path: path, m: map[Key]*Stats{}, FlushEvery: 256}
	if path == "" {
		return s, nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profiles: read %s: %w", path, err)
	}
	var ff fileFormat
	if err := json.Unmarshal(b, &ff); err != nil {
		return nil, fmt.Errorf("profiles: parse %s: %w", path, err)
	}
	for ks, st := range ff.Profiles {
		k, err := parseKey(ks)
		if err != nil {
			return nil, fmt.Errorf("profiles: %s: %w", path, err)
		}
		s.m[k] = st
	}
	return s, nil
}

func parseKey(ks string) (Key, error) {
	var k Key
	first := -1
	last := -1
	for i := 0; i < len(ks); i++ {
		if ks[i] == '|' {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first == last {
		return k, fmt.Errorf("malformed profile key %q", ks)
	}
	k.Shape, k.Engine, k.Mode = ks[:first], ks[first+1:last], ks[last+1:]
	return k, nil
}

// Path returns the backing file path ("" for memory-only stores).
func (s *Store) Path() string { return s.path }

// Record accumulates one measured execution. Non-finite latencies are
// dropped. Every FlushEvery records the store flushes itself; flush errors
// are deliberately swallowed here (recording must never fail a request) —
// Close surfaces them.
func (s *Store) Record(k Key, sec float64, phases map[string]float64, traceID string) {
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
		return
	}
	s.mu.Lock()
	st := s.m[k]
	if st == nil {
		st = &Stats{MinSec: sec, MaxSec: sec}
		s.m[k] = st
	}
	st.Count++
	st.TotalSec += sec
	if sec < st.MinSec {
		st.MinSec = sec
	}
	if sec > st.MaxSec {
		st.MaxSec = sec
	}
	if len(phases) > 0 {
		if st.Phases == nil {
			st.Phases = map[string]float64{}
		}
		for name, d := range phases {
			if !math.IsNaN(d) && !math.IsInf(d, 0) {
				st.Phases[name] += d
			}
		}
	}
	if traceID != "" {
		st.LastTraceID = traceID
	}
	s.pending++
	flush := s.path != "" && s.FlushEvery > 0 && s.pending >= s.FlushEvery
	if flush {
		s.pending = 0
	}
	s.mu.Unlock()
	if flush {
		_ = s.Flush()
	}
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Get returns a copy of the stats recorded under k (ok=false when absent).
func (s *Store) Get(k Key) (Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.m[k]
	if st == nil {
		return Stats{}, false
	}
	return copyStats(st), true
}

func copyStats(st *Stats) Stats {
	out := *st
	if st.Phases != nil {
		out.Phases = make(map[string]float64, len(st.Phases))
		for k, v := range st.Phases {
			out.Phases[k] = v
		}
	}
	return out
}

// Snapshot returns every entry sorted by key — the /debug/fftx/profiles
// payload and the autotuner's read surface.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.m))
	for k, st := range s.m {
		out = append(out, Entry{Key: k, Stats: copyStats(st), MeanSecond: st.MeanSec()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shape != out[j].Shape {
			return out[i].Shape < out[j].Shape
		}
		if out[i].Engine != out[j].Engine {
			return out[i].Engine < out[j].Engine
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// Flush writes the store to its path atomically: a temp file in the same
// directory, fsync'd, then renamed over the target — a crashed fftxd never
// leaves a torn database. Memory-only stores no-op.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.path == "" {
		s.mu.Unlock()
		return nil
	}
	ff := fileFormat{Version: 1, Profiles: make(map[string]*Stats, len(s.m))}
	for k, st := range s.m {
		c := copyStats(st)
		ff.Profiles[k.String()] = &c
	}
	path := s.path
	s.mu.Unlock()

	b, err := json.MarshalIndent(ff, "", " ")
	if err != nil {
		return fmt.Errorf("profiles: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profiles-*.json")
	if err != nil {
		return fmt.Errorf("profiles: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("profiles: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("profiles: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("profiles: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("profiles: swap %s: %w", path, err)
	}
	return nil
}

// Close flushes and returns the flush outcome.
func (s *Store) Close() error { return s.Flush() }
