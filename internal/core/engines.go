package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fftx"
)

// EnginesResult is the engine-selection matrix: the simulated cost-mode
// runtime of every engine across the rank sweep, plus the engine the
// EngineAuto cost-model selector picks at each point. It makes the
// selector's decision surface inspectable — and lets the benchmark verify
// that "auto" tracks the measured minimum.
type EnginesResult struct {
	NTG     int
	Engines []fftx.Engine
	Rows    []EnginesRow
}

// EnginesRow is one rank configuration of the matrix.
type EnginesRow struct {
	Ranks int
	// Runtime holds one entry per EnginesResult.Engines; NaN marks an
	// engine the configuration cannot run (lane budget, shape limits).
	Runtime []float64
	// Taskwait holds the per-engine taskwait barrier stall (summed over
	// ranks), parallel to Runtime — zero for barrier-free engines
	// (original, dataflow), NaN where Runtime is NaN.
	Taskwait []float64
	// Selected is the engine EngineAuto resolves to at this point.
	Selected fftx.Engine
}

// Fastest returns the applicable engine with the smallest measured runtime
// (ties keep declaration order, matching the selector's determinism).
func (r *EnginesRow) Fastest(engines []fftx.Engine) (fftx.Engine, float64) {
	best, bestT := engines[0], math.Inf(1)
	for i, e := range engines {
		t := r.Runtime[i]
		if !math.IsNaN(t) && t < bestT {
			best, bestT = e, t
		}
	}
	return best, bestT
}

// Engines measures the matrix over the suite's rank sweep.
func (s Suite) Engines() (*EnginesResult, error) {
	out := &EnginesResult{
		NTG: s.NTG,
		Engines: []fftx.Engine{
			fftx.EngineOriginal, fftx.EngineTaskSteps,
			fftx.EngineTaskIter, fftx.EngineTaskCombined,
			fftx.EngineDataflow,
		},
	}
	for _, r := range s.RankList {
		row := EnginesRow{
			Ranks:    r,
			Runtime:  make([]float64, len(out.Engines)),
			Taskwait: make([]float64, len(out.Engines)),
		}
		for i, e := range out.Engines {
			cfg := s.config(e, r)
			cfg.Mode = fftx.ModeCost
			res, err := fftx.Run(cfg)
			if err != nil {
				// Not every engine fits every point (task-steps doubles the
				// lane count); an inapplicable cell is part of the matrix.
				row.Runtime[i] = math.NaN()
				row.Taskwait[i] = math.NaN()
				continue
			}
			row.Runtime[i] = res.Runtime
			row.Taskwait[i] = res.TaskwaitSec
		}
		sel, err := fftx.SelectEngine(s.config(fftx.EngineAuto, r))
		if err != nil {
			return nil, fmt.Errorf("core: engines %dx%d: auto selection: %w", r, s.NTG, err)
		}
		row.Selected = sel
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the matrix with the selector's pick per configuration.
func (r *EnginesResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Engine matrix — cost-mode runtime per engine and the auto selector's pick\n")
	fmt.Fprintf(&sb, "%8s", "config")
	for _, e := range r.Engines {
		fmt.Fprintf(&sb, " %14s", e.String())
	}
	fmt.Fprintf(&sb, " %16s\n", "auto picks")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8s", fmt.Sprintf("%d x %d", row.Ranks, r.NTG))
		for i := range r.Engines {
			if math.IsNaN(row.Runtime[i]) {
				fmt.Fprintf(&sb, " %14s", "n/a")
				continue
			}
			fmt.Fprintf(&sb, " %13.4fs", row.Runtime[i])
		}
		mark := ""
		if fastest, _ := row.Fastest(r.Engines); fastest != row.Selected {
			mark = " (!)"
		}
		fmt.Fprintf(&sb, " %16s\n", row.Selected.String()+mark)
	}
	sb.WriteString("the selector probes the same cost model, so \"auto picks\" tracks each row's minimum\n")
	return sb.String()
}
