package core

import (
	"strings"
	"testing"

	"repro/internal/fftx"
)

func TestQuickSuiteFig2(t *testing.T) {
	r, err := QuickSuite().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curve.Points) != 3 {
		t.Fatalf("points: %+v", r.Curve.Points)
	}
	for _, p := range r.Curve.Points {
		if p.Runtime <= 0 {
			t.Fatalf("non-positive runtime: %+v", p)
		}
	}
	// Scaling from 1 to 2 ranks must reduce runtime (far from saturation).
	if r.Curve.Points[1].Runtime >= r.Curve.Points[0].Runtime {
		t.Fatalf("no speedup from 1 to 2 ranks: %+v", r.Curve.Points)
	}
	out := r.Format()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "#") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestQuickSuiteTables(t *testing.T) {
	for _, f := range []func(Suite) (*FactorsResult, error){Suite.Table1, Suite.Table2} {
		r, err := f(QuickSuite())
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Factors) != 2 {
			t.Fatalf("factors: %+v", r.Factors)
		}
		// Reference column must be 100 % scalability by construction.
		if r.Factors[0].CompScal != 1 || r.Factors[0].IPCScal != 1 {
			t.Fatalf("reference column not unity: %+v", r.Factors[0])
		}
		// Efficiencies are percentages in (0, 1].
		for _, fac := range r.Factors {
			if fac.ParallelEff <= 0 || fac.ParallelEff > 1.0001 {
				t.Fatalf("parallel efficiency out of range: %+v", fac)
			}
		}
		out := r.Format()
		for _, want := range []string{"measured", "paper", "Global Efficiency"} {
			if !strings.Contains(out, want) {
				t.Fatalf("format missing %q:\n%s", want, out)
			}
		}
	}
}

func TestQuickSuiteFig3(t *testing.T) {
	r, err := QuickSuite().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// The qualitative ordering of Figure 3 must hold at any scale.
	if !(r.PrepIPC < r.ZIPC && r.ZIPC < r.XYIPC) {
		t.Fatalf("phase IPC ordering: prep %.3f, z %.3f, xy %.3f", r.PrepIPC, r.ZIPC, r.XYIPC)
	}
	if !strings.Contains(r.Format(), "Figure 3") {
		t.Fatal("format missing header")
	}
}

func TestQuickSuiteFig6(t *testing.T) {
	r, err := QuickSuite().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Original.Points) != len(r.Task.Points) {
		t.Fatal("curve lengths differ")
	}
	out := r.Format()
	if !strings.Contains(out, "best-vs-best") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestQuickSuiteFig7(t *testing.T) {
	r, err := QuickSuite().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.XYOrig <= 0 || r.XYTask <= 0 {
		t.Fatalf("xy IPCs: %.3f %.3f", r.XYOrig, r.XYTask)
	}
	out := r.Format()
	if !strings.Contains(out, "IPC histogram") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestQuickSuiteSweepNTG(t *testing.T) {
	r, err := QuickSuite().SweepNTG(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NTGs) < 2 {
		t.Fatalf("sweep too small: %+v", r)
	}
	// Section II extremes: NTG=1 must have zero pack communication time and
	// NTG=total zero scatter time.
	if r.NTGs[0] != 1 || r.PackTime[0] != 0 {
		t.Fatalf("NTG=1 pack time: %+v", r)
	}
	last := len(r.NTGs) - 1
	if r.NTGs[last] != 4 || r.ScatterT[last] != 0 {
		t.Fatalf("NTG=total scatter time: %+v", r)
	}
	if !strings.Contains(r.Format(), "sweep") {
		t.Fatal("format missing header")
	}
}

func TestQuickSuiteAblation(t *testing.T) {
	r, err := QuickSuite().Ablation(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("ablation rows: %+v", r.Rows)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		if row.Runtime <= 0 {
			t.Fatalf("row %q runtime %v", row.Name, row.Runtime)
		}
		names[row.Name] = true
	}
	for _, want := range []string{"original (static task groups)", "task-iter (per-band tasks)"} {
		if !names[want] {
			t.Fatalf("missing ablation %q in %v", want, names)
		}
	}
}

// The headline result at paper scale: at the 8x8 configuration the task
// version must beat the original, and the de-synchronization must raise the
// main-phase IPC. This is the one full-scale test; it takes ~1.5 s.
func TestPaperScaleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s := PaperSuite()
	orig, err := fftx.Run(s.config(fftx.EngineOriginal, 8))
	if err != nil {
		t.Fatal(err)
	}
	task, err := fftx.Run(s.config(fftx.EngineTaskIter, 8))
	if err != nil {
		t.Fatal(err)
	}
	gain := (orig.Runtime - task.Runtime) / orig.Runtime
	if gain < 0.02 {
		t.Fatalf("task version gain %.1f%% at 8x8, expected a clear win (paper: 7-10%%)", 100*gain)
	}
	xyO := orig.Trace.PhaseAvgIPC("fft-xy", "vofr")
	xyT := task.Trace.PhaseAvgIPC("fft-xy", "vofr")
	if xyT <= xyO {
		t.Fatalf("main-phase IPC did not rise: %.3f -> %.3f (paper: 0.75 -> 0.85)", xyO, xyT)
	}
}

func TestQuickSuitePredictScaling(t *testing.T) {
	r, err := QuickSuite().PredictScaling(fftx.EngineOriginal)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Prediction.Factors
	if f.GlobalEff <= 0 || f.GlobalEff > 1 {
		t.Fatalf("predicted global efficiency %v", f.GlobalEff)
	}
	if r.Measured.GlobalEff <= 0 {
		t.Fatalf("measured global efficiency %v", r.Measured.GlobalEff)
	}
	// The extrapolation from two small points should land within a factor
	// of two of the measurement (it is a trend fit, not an oracle).
	ratio := f.GlobalEff / r.Measured.GlobalEff
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("prediction %v vs measured %v (ratio %.2f)", f.GlobalEff, r.Measured.GlobalEff, ratio)
	}
	if !strings.Contains(r.Format(), "prediction") {
		t.Fatal("format missing header")
	}
}

func TestQuickSuiteMachines(t *testing.T) {
	r, err := QuickSuite().Machines()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Runtime <= 0 {
			t.Fatalf("row %+v", row)
		}
	}
	if !strings.Contains(r.Format(), "KNL") || !strings.Contains(r.Format(), "Xeon") {
		t.Fatal("format missing machines")
	}
}

func TestQuickSuiteSensitivity(t *testing.T) {
	r, err := QuickSuite().Sensitivity(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 8 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Original <= 0 || row.Task <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	if !strings.Contains(r.Format(), "sensitivity") {
		t.Fatal("format missing header")
	}
}

// Lock the reproduction quality: at the paper's workload, every measured
// Table I factor must sit within tolerance of the published value. This is
// the regression guard for the calibration in internal/knl/params.go.
func TestTable1WithinToleranceOfPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	r, err := PaperSuite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	p := PaperTable1
	type check struct {
		name string
		get  func(i int) float64 // measured, percent
		pub  []float64
		tol  float64 // absolute percentage points
	}
	checks := []check{
		{"parallel efficiency", func(i int) float64 { return 100 * r.Factors[i].ParallelEff }, p.ParallelEff, 4},
		{"communication efficiency", func(i int) float64 { return 100 * r.Factors[i].CommEff }, p.CommEff, 6},
		{"computation scalability", func(i int) float64 { return 100 * r.Factors[i].CompScal }, p.CompScal, 4},
		{"IPC scalability", func(i int) float64 { return 100 * r.Factors[i].IPCScal }, p.IPCScal, 4},
		{"instruction scalability", func(i int) float64 { return 100 * r.Factors[i].InstrScal }, p.InstrScal, 3},
		{"global efficiency", func(i int) float64 { return 100 * r.Factors[i].GlobalEff }, p.GlobalEff, 4},
	}
	for _, c := range checks {
		for i := range r.Factors {
			got, want := c.get(i), c.pub[i]
			if got < want-c.tol || got > want+c.tol {
				t.Errorf("%s at %s: measured %.2f%%, paper %.2f%% (tolerance %.0f points)",
					c.name, r.Configs[i], got, want, c.tol)
			}
		}
	}
}

// The Section V IPC anchors at paper scale.
func TestSectionVIPCAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s := PaperSuite()
	ipcAt := func(engine fftx.Engine, ranks int) float64 {
		res, err := fftx.Run(s.config(engine, ranks))
		if err != nil {
			t.Fatal(err)
		}
		f := res.Trace.AvgIPC()
		return f
	}
	// Original: 1.1 at 1x8, 0.6 at 8x8, ~0.3 at 16x8.
	for _, c := range []struct {
		ranks int
		want  float64
		tol   float64
	}{{1, 1.1, 0.15}, {8, 0.6, 0.08}, {16, 0.3, 0.08}} {
		got := ipcAt(fftx.EngineOriginal, c.ranks)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("original avg IPC at %dx8 = %.3f, paper ~%.1f", c.ranks, got, c.want)
		}
	}
	// Task version keeps more IPC than the original at 8x8 and 16x8.
	for _, ranks := range []int{8, 16} {
		o, k := ipcAt(fftx.EngineOriginal, ranks), ipcAt(fftx.EngineTaskIter, ranks)
		if k <= o {
			t.Errorf("task IPC %.3f not above original %.3f at %dx8", k, o, ranks)
		}
	}
}

func TestQuickSuiteWriteReport(t *testing.T) {
	var sb strings.Builder
	if err := QuickSuite().WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# FFTXlib", "Table I", "Table II", "Figure 3",
		"Figure 7", "Ablation", "sensitivity", "Machine dependence", "prediction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestQuickSuiteMultiNode(t *testing.T) {
	r, err := QuickSuite().MultiNode(2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows %+v", r.Rows)
	}
	if !strings.Contains(r.Format(), "Multi-node") {
		t.Fatal("format missing header")
	}
}

func TestQuickSuiteScaling(t *testing.T) {
	s := QuickSuite()
	strong, err := s.StrongScaling(fftx.EngineOriginal, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(strong.Rows) != 2 || strong.Rows[1].Runtime >= strong.Rows[0].Runtime {
		t.Fatalf("strong scaling rows: %+v", strong.Rows)
	}
	weak, err := s.WeakScaling(fftx.EngineOriginal, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(weak.Rows) != 2 || weak.Rows[1].NB != 2*s.NB {
		t.Fatalf("weak scaling rows: %+v", weak.Rows)
	}
	// Weak scaling cannot be better than perfect.
	if weak.Rows[1].Runtime < weak.Rows[0].Runtime*0.99 {
		t.Fatalf("weak scaling better than perfect: %+v", weak.Rows)
	}
	for _, out := range []string{strong.Format(), weak.Format()} {
		if !strings.Contains(out, "scaling") {
			t.Fatal("format missing header")
		}
	}
}

func TestQuickSuiteBandSweep(t *testing.T) {
	s := QuickSuite()
	r, err := s.BandSweep(2, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %+v", r.Rows)
	}
	// Runtime must grow ~linearly with the band count.
	if r.Rows[2].Original < 3*r.Rows[0].Original {
		t.Fatalf("runtime not growing with load: %+v", r.Rows)
	}
	if !strings.Contains(r.Format(), "load") {
		t.Fatal("format missing header")
	}
}

// Lock Table II's qualitative content: at every scale the task version's
// IPC scalability and global efficiency beat the original's (the paper's
// core claim), and the global efficiencies stay within a few points of the
// published column.
func TestTable2DirectionLock(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation")
	}
	s := PaperSuite()
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := range t2.Factors {
		if i == 0 {
			continue // reference column is 100% by construction
		}
		if t2.Factors[i].IPCScal <= t1.Factors[i].IPCScal {
			t.Errorf("%s: task IPC scalability %.2f not above original %.2f",
				t2.Configs[i], 100*t2.Factors[i].IPCScal, 100*t1.Factors[i].IPCScal)
		}
		if t2.Factors[i].GlobalEff <= t1.Factors[i].GlobalEff {
			t.Errorf("%s: task global efficiency %.2f not above original %.2f",
				t2.Configs[i], 100*t2.Factors[i].GlobalEff, 100*t1.Factors[i].GlobalEff)
		}
		pub := PaperTable2.GlobalEff[i]
		got := 100 * t2.Factors[i].GlobalEff
		if got < pub-5 || got > pub+5 {
			t.Errorf("%s: task global efficiency %.2f%% vs paper %.2f%% (5-point tolerance)",
				t2.Configs[i], got, pub)
		}
	}
}
