package core

import (
	"fmt"
	"strings"

	"repro/internal/fftx"
)

// MultiNodeRow is one (node count, engine) measurement.
type MultiNodeRow struct {
	Nodes   int
	Engine  fftx.Engine
	Runtime float64
	Gain    float64 // vs the same node count's original
}

// MultiNodeResult is the beyond-the-paper outlook: the same total lane
// count spread over more nodes, so the scatters cross an interconnect.
type MultiNodeResult struct {
	Ranks int
	Rows  []MultiNodeRow
}

// MultiNode runs the engines at a fixed total configuration on 1, 2 and 4
// nodes. The paper's Section IV expectation is that the value of hiding
// communication grows as communication gets more expensive — the
// asynchronous-communication engine should hold its runtime where the
// synchronous engines degrade.
func (s Suite) MultiNode(ranks int, nodeCounts []int) (*MultiNodeResult, error) {
	out := &MultiNodeResult{Ranks: ranks}
	engines := []fftx.Engine{fftx.EngineOriginal, fftx.EngineTaskIter, fftx.EngineTaskCombined}
	for _, nodes := range nodeCounts {
		var orig float64
		for _, e := range engines {
			cfg := s.config(e, ranks)
			cfg.NodesCount = nodes
			res, err := fftx.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("core: multinode %d/%v: %w", nodes, e, err)
			}
			row := MultiNodeRow{Nodes: nodes, Engine: e, Runtime: res.Runtime}
			if e == fftx.EngineOriginal {
				orig = res.Runtime
			} else {
				row.Gain = (orig - res.Runtime) / orig
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the multi-node outlook.
func (r *MultiNodeResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Multi-node outlook at %d ranks x NTG (beyond the paper; Section IV motivation)\n", r.Ranks)
	fmt.Fprintf(&sb, "%6s %-16s %12s %8s\n", "nodes", "engine", "runtime[s]", "gain")
	for _, row := range r.Rows {
		gain := ""
		if row.Engine != fftx.EngineOriginal {
			gain = fmt.Sprintf("%+.1f%%", 100*row.Gain)
		}
		fmt.Fprintf(&sb, "%6d %-16s %12.4f %8s\n", row.Nodes, row.Engine.String(), row.Runtime, gain)
	}
	sb.WriteString("expectation: hiding communication pays more as the interconnect slows the scatters\n")
	return sb.String()
}
