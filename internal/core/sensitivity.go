package core

import (
	"fmt"
	"strings"

	"repro/internal/fftx"
	"repro/internal/knl"
)

// SensitivityRow records the headline result (the task version's gain over
// the original at one configuration) under one node-model perturbation.
type SensitivityRow struct {
	Name     string
	Original float64
	Task     float64
	Gain     float64
	XYShift  float64 // main-phase IPC, task minus original
}

// SensitivityResult is the model-robustness study: the paper's conclusion
// (the de-synchronized task version wins) should survive reasonable
// perturbations of the calibration constants.
type SensitivityResult struct {
	Ranks int
	Rows  []SensitivityRow
}

// Sensitivity re-runs the original-vs-task comparison at the given rank
// count under perturbed node models: work variance off/doubled, endpoint
// bandwidth halved/doubled, contention coefficient ±50 %, task-runtime
// overhead excluded (Overhead is an ompss property, approximated here by
// the unperturbed row).
func (s Suite) Sensitivity(ranks int) (*SensitivityResult, error) {
	base := knl.DefaultParams()
	if s.Params != nil {
		base = *s.Params
	}
	variants := []struct {
		name string
		mod  func(p *knl.Params)
	}{
		{"calibrated model", func(p *knl.Params) {}},
		{"no work variance", func(p *knl.Params) { p.Jitter = 0 }},
		{"work variance x2", func(p *knl.Params) { p.Jitter *= 2 }},
		{"endpoint bandwidth /2", func(p *knl.Params) { p.EndpointBandwidth /= 2 }},
		{"endpoint bandwidth x2", func(p *knl.Params) { p.EndpointBandwidth *= 2 }},
		{"contention -50%", func(p *knl.Params) { p.ContA *= 0.5 }},
		{"contention +50%", func(p *knl.Params) { p.ContA *= 1.5 }},
		{"node bandwidth /2", func(p *knl.Params) { p.NodeBandwidth /= 2 }},
		{"comm latency x4", func(p *knl.Params) { p.CommLatency *= 4 }},
		{"tile L2 sharing on", func(p *knl.Params) {
			p.TileDemand[knl.ClassMem] = 0.45
			p.TileDemand[knl.ClassStream] = 0.55
			p.TileDemand[knl.ClassVector] = 0.60
		}},
	}
	out := &SensitivityResult{Ranks: ranks}
	for _, v := range variants {
		params := base
		v.mod(&params)
		cfgO := s.config(fftx.EngineOriginal, ranks)
		cfgO.Params = &params
		ro, err := fftx.Run(cfgO)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %s: %w", v.name, err)
		}
		cfgT := s.config(fftx.EngineTaskIter, ranks)
		cfgT.Params = &params
		rt, err := fftx.Run(cfgT)
		if err != nil {
			return nil, fmt.Errorf("core: sensitivity %s: %w", v.name, err)
		}
		out.Rows = append(out.Rows, SensitivityRow{
			Name:     v.name,
			Original: ro.Runtime,
			Task:     rt.Runtime,
			Gain:     (ro.Runtime - rt.Runtime) / ro.Runtime,
			XYShift: rt.Trace.PhaseAvgIPC("fft-xy", "vofr") -
				ro.Trace.PhaseAvgIPC("fft-xy", "vofr"),
		})
	}
	return out, nil
}

// Format renders the sensitivity table.
func (r *SensitivityResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model sensitivity of the headline result at %d x NTG\n", r.Ranks)
	fmt.Fprintf(&sb, "%-24s %12s %12s %8s %10s\n", "model variant", "original[s]", "task[s]", "gain", "xyIPC +")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s %12.4f %12.4f %+7.1f%% %+10.3f\n",
			row.Name, row.Original, row.Task, 100*row.Gain, row.XYShift)
	}
	return sb.String()
}

// BandSweepRow is one band-count measurement.
type BandSweepRow struct {
	NB       int
	Original float64
	Task     float64
	Gain     float64
}

// BandSweepResult shows how the task version's advantage depends on the
// computational load (Section IV: "the second optimization is especially
// targeting scenarios with high computational load").
type BandSweepResult struct {
	Ranks int
	Rows  []BandSweepRow
}

// BandSweep varies the number of bands at a fixed configuration and
// measures the original-vs-task gain.
func (s Suite) BandSweep(ranks int, bandCounts []int) (*BandSweepResult, error) {
	out := &BandSweepResult{Ranks: ranks}
	for _, nb := range bandCounts {
		if nb%s.NTG != 0 {
			continue
		}
		cfgO := s.config(fftx.EngineOriginal, ranks)
		cfgO.NB = nb
		ro, err := fftx.Run(cfgO)
		if err != nil {
			return nil, fmt.Errorf("core: bandsweep nb=%d: %w", nb, err)
		}
		cfgT := s.config(fftx.EngineTaskIter, ranks)
		cfgT.NB = nb
		rt, err := fftx.Run(cfgT)
		if err != nil {
			return nil, fmt.Errorf("core: bandsweep nb=%d: %w", nb, err)
		}
		out.Rows = append(out.Rows, BandSweepRow{
			NB: nb, Original: ro.Runtime, Task: rt.Runtime,
			Gain: (ro.Runtime - rt.Runtime) / ro.Runtime,
		})
	}
	return out, nil
}

// Format renders the band sweep.
func (r *BandSweepResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Computational-load dependence at %d ranks (Section IV)\n", r.Ranks)
	fmt.Fprintf(&sb, "%8s %12s %12s %8s\n", "bands", "original[s]", "task[s]", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8d %12.4f %12.4f %+7.1f%%\n", row.NB, row.Original, row.Task, 100*row.Gain)
	}
	return sb.String()
}
