// Package core orchestrates the paper's experiments: it runs the FFTXlib
// engines over the configurations of each table and figure of
// "Performance Analysis and Optimization of the FFTXlib on the Intel
// Knights Landing Architecture" (Wagner et al., ICPP Workshops 2017) and
// formats the results next to the published values, so every experiment's
// paper-vs-measured comparison is a single call.
package core

// PaperTable1 holds the published efficiency and scalability factors of the
// original version (Table I), per configuration 1x8 .. 16x8, in percent.
var PaperTable1 = PaperFactors{
	Configs:     []string{"1 x 8", "2 x 8", "4 x 8", "8 x 8", "16 x 8"},
	ParallelEff: []float64{95.75, 91.21, 92.70, 90.97, 86.15},
	LoadBalance: []float64{97.31, 95.04, 98.31, 98.18, 96.91},
	CommEff:     []float64{98.40, 95.97, 94.29, 92.66, 88.90},
	SyncEff:     []float64{99.56, 98.88, 98.09, 97.76, 95.81},
	TransferEff: []float64{98.83, 97.06, 96.13, 94.78, 92.78},
	CompScal:    []float64{100.00, 91.87, 78.09, 54.74, 27.32},
	IPCScal:     []float64{100.00, 92.78, 78.68, 56.28, 28.26},
	InstrScal:   []float64{100.00, 99.78, 99.62, 99.42, 98.88},
	GlobalEff:   []float64{95.75, 83.80, 72.39, 49.79, 23.54},
}

// PaperTable2 holds the published factors of the OmpSs per-iteration task
// version (Table II).
var PaperTable2 = PaperFactors{
	Configs:     []string{"1 x 8", "2 x 8", "4 x 8", "8 x 8", "16 x 8"},
	ParallelEff: []float64{99.13, 95.53, 91.67, 83.33, 70.47},
	LoadBalance: []float64{99.86, 98.25, 95.52, 91.81, 90.32},
	CommEff:     []float64{99.26, 97.23, 95.97, 90.77, 78.03},
	SyncEff:     []float64{100.00, 99.84, 99.85, 97.52, 92.17},
	TransferEff: []float64{99.26, 97.39, 96.11, 93.07, 84.66},
	CompScal:    []float64{100.00, 92.56, 81.16, 61.36, 37.29},
	IPCScal:     []float64{100.00, 94.04, 84.05, 66.14, 42.57},
	InstrScal:   []float64{100.00, 99.46, 98.55, 97.19, 91.18},
	GlobalEff:   []float64{99.13, 88.42, 74.40, 51.13, 26.28},
}

// PaperFactors is a published POP-factor table.
type PaperFactors struct {
	Configs     []string
	ParallelEff []float64
	LoadBalance []float64
	CommEff     []float64
	SyncEff     []float64
	TransferEff []float64
	CompScal    []float64
	IPCScal     []float64
	InstrScal   []float64
	GlobalEff   []float64
}

// Published qualitative anchors used in the experiment notes.
const (
	// PaperPhasePrepIPC .. PaperPhaseXYIPC are the Figure 3 phase IPCs of
	// the original version at 8x8.
	PaperPhasePrepIPC = 0.06
	PaperPhaseZIPC    = 0.52
	PaperPhaseXYIPC   = 0.77
	// PaperXYIPCOriginal/Task are the Figure 7 main-phase IPCs at 8x8.
	PaperXYIPCOriginal = 0.75
	PaperXYIPCTask     = 0.85
	// PaperGainLow/High bracket the runtime reduction of the task version
	// (Section V: "about 7-10 % faster").
	PaperGainLow  = 0.07
	PaperGainHigh = 0.10
	// PaperHTGainTask is the extra gain the task version draws from 2-way
	// hyper-threading (Section V: "about 3 %").
	PaperHTGainTask = 0.03
)
