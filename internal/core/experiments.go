package core

import (
	"fmt"
	"strings"

	"repro/internal/fftx"
	"repro/internal/knl"
	"repro/internal/pop"
	"repro/internal/trace"
)

// Suite bundles the workload parameters of one reproduction campaign.
type Suite struct {
	Ecut float64 // plane-wave cutoff in Ry
	Alat float64 // lattice parameter in bohr
	NB   int     // number of bands
	NTG  int     // task groups (original) / threads per rank (task version)
	// RankList is the R sweep of Figures 2 and 6 (R x NTG lanes each).
	RankList []int
	// FactorRanks is the R sweep of Tables I and II.
	FactorRanks []int
	// Mode selects real numerics or cost-only accounting.
	Mode fftx.Mode
	// Params overrides the node model (nil = knl.DefaultParams).
	Params *knl.Params
	// Strict enables the runtime invariant checks of the mpi and ompss
	// layers on every run of the campaign.
	Strict bool
}

// PaperSuite returns the paper's experiment parameters: plane-wave energy
// cutoff 80 Ry, lattice parameter 20 bohr, 128 bands, 8 task groups,
// configurations 1x8 .. 32x8 (the last two hyper-threaded). Cost mode: the
// full problem transforms ~50 GFLOP per run, which only the examples do for
// real on small grids.
func PaperSuite() Suite {
	return Suite{
		Ecut: 80, Alat: 20, NB: 128, NTG: 8,
		RankList:    []int{1, 2, 4, 8, 16, 32},
		FactorRanks: []int{1, 2, 4, 8, 16},
		Mode:        fftx.ModeCost,
	}
}

// QuickSuite returns a scaled-down campaign for tests and smoke runs.
func QuickSuite() Suite {
	return Suite{
		Ecut: 10, Alat: 10, NB: 16, NTG: 4,
		RankList:    []int{1, 2, 4},
		FactorRanks: []int{1, 2},
		Mode:        fftx.ModeCost,
	}
}

func (s Suite) config(engine fftx.Engine, ranks int) fftx.Config {
	return fftx.Config{
		Ecut: s.Ecut, Alat: s.Alat, NB: s.NB, Ranks: ranks, NTG: s.NTG,
		Engine: engine, Mode: s.Mode, Params: s.Params, Strict: s.Strict,
	}
}

// Point is one measured configuration.
type Point struct {
	Config  string
	Ranks   int
	Runtime float64
}

// RuntimeCurve is the runtime of one engine across the rank sweep.
type RuntimeCurve struct {
	Engine fftx.Engine
	Points []Point
}

// Best returns the fastest point of the curve.
func (c RuntimeCurve) Best() Point {
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.Runtime < best.Runtime {
			best = p
		}
	}
	return best
}

func (s Suite) sweep(engine fftx.Engine) (RuntimeCurve, error) {
	curve := RuntimeCurve{Engine: engine}
	for _, r := range s.RankList {
		res, err := fftx.Run(s.config(engine, r))
		if err != nil {
			return curve, fmt.Errorf("core: %v %dx%d: %w", engine, r, s.NTG, err)
		}
		curve.Points = append(curve.Points, Point{
			Config: fmt.Sprintf("%d x %d", r, s.NTG), Ranks: r, Runtime: res.Runtime,
		})
	}
	return curve, nil
}

// Fig2Result is the runtime-vs-ranks curve of the original version
// (paper Figure 2).
type Fig2Result struct {
	Curve RuntimeCurve
}

// Fig2 reproduces Figure 2: the FFT-phase runtime of the original version
// with increasing MPI ranks; the configurations beyond one rank per core
// use hyper-threading.
func (s Suite) Fig2() (*Fig2Result, error) {
	curve, err := s.sweep(fftx.EngineOriginal)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Curve: curve}, nil
}

// Format renders the Figure 2 curve with a bar plot.
func (r *Fig2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — FFT phase runtime, original version (ranks x task groups)\n")
	formatCurve(&sb, r.Curve)
	sb.WriteString("paper: poor scaling beyond a few ranks; hyper-threaded configurations do not improve the runtime\n")
	return sb.String()
}

func formatCurve(sb *strings.Builder, c RuntimeCurve) {
	var max float64
	for _, p := range c.Points {
		if p.Runtime > max {
			max = p.Runtime
		}
	}
	for _, p := range c.Points {
		bar := int(40 * p.Runtime / max)
		fmt.Fprintf(sb, "%8s %9.4fs |%s\n", p.Config, p.Runtime, strings.Repeat("#", bar))
	}
}

// FactorsResult is a measured POP-factor table with its published
// counterpart (Tables I and II).
type FactorsResult struct {
	Title   string
	Configs []string
	Factors []pop.Factors
	Paper   PaperFactors
	// Results holds the full run results, for deeper inspection.
	Results []*fftx.Result
}

func (s Suite) factorTable(title string, engine fftx.Engine, paper PaperFactors) (*FactorsResult, error) {
	out := &FactorsResult{Title: title, Paper: paper}
	var ref pop.Factors
	for i, r := range s.FactorRanks {
		res, err := fftx.Run(s.config(engine, r))
		if err != nil {
			return nil, fmt.Errorf("core: %s %dx%d: %w", title, r, s.NTG, err)
		}
		f := pop.Analyze(res.Trace)
		if i == 0 {
			ref = f
		}
		f.AddScalability(ref)
		out.Configs = append(out.Configs, fmt.Sprintf("%d x %d", r, s.NTG))
		out.Factors = append(out.Factors, f)
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// Table1 reproduces Table I: efficiency and scalability factors of the
// original version across the rank sweep.
func (s Suite) Table1() (*FactorsResult, error) {
	return s.factorTable("Table I (original version)", fftx.EngineOriginal, PaperTable1)
}

// Table2 reproduces Table II: the factors of the OmpSs per-iteration task
// version.
func (s Suite) Table2() (*FactorsResult, error) {
	return s.factorTable("Table II (task version)", fftx.EngineTaskIter, PaperTable2)
}

// Format renders the measured factors next to the published ones.
func (r *FactorsResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — measured\n%s\n", r.Title, pop.FormatTable(r.Configs, r.Factors))
	fmt.Fprintf(&sb, "%s — paper\n", r.Title)
	fmt.Fprintf(&sb, "%-28s", "")
	n := len(r.Configs)
	for i := 0; i < n && i < len(r.Paper.Configs); i++ {
		fmt.Fprintf(&sb, "%10s", r.Paper.Configs[i])
	}
	sb.WriteString("\n")
	rows := []struct {
		label string
		vals  []float64
	}{
		{"Parallel efficiency", r.Paper.ParallelEff},
		{"-> Load Balance", r.Paper.LoadBalance},
		{"-> Communication Efficiency", r.Paper.CommEff},
		{"-> Synchronization", r.Paper.SyncEff},
		{"-> Transfer", r.Paper.TransferEff},
		{"Computation Scalability", r.Paper.CompScal},
		{"-> IPC Scalability", r.Paper.IPCScal},
		{"-> Instructions Scalability", r.Paper.InstrScal},
		{"Global Efficiency", r.Paper.GlobalEff},
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-28s", row.label)
		for i := 0; i < n && i < len(row.vals); i++ {
			fmt.Fprintf(&sb, "%9.2f%%", row.vals[i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig3Result is the phase-level view of one original-version run: the
// Paraver-style timeline and the per-phase IPC statistics of Figure 3.
type Fig3Result struct {
	Result    *fftx.Result
	PrepIPC   float64
	ZIPC      float64
	XYIPC     float64
	Timeline  string
	Phases    string
	CommStats string
}

// Fig3 reproduces Figure 3: the timeline of the original version's FFT
// phase at the largest non-hyper-threaded configuration, and the phase IPCs
// (paper: psi preparation ~0.06, Z FFT ~0.52, main XY phase ~0.77).
func (s Suite) Fig3() (*Fig3Result, error) {
	ranks := s.FactorRanks[len(s.FactorRanks)-1]
	for _, r := range s.FactorRanks {
		if r*s.NTG <= 68 && r > 0 {
			ranks = r // largest config without hyper-threading
		}
	}
	res, err := fftx.Run(s.config(fftx.EngineOriginal, ranks))
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Result:    res,
		PrepIPC:   res.Trace.PhaseAvgIPC("prep"),
		ZIPC:      res.Trace.PhaseAvgIPC("fft-z"),
		XYIPC:     res.Trace.PhaseAvgIPC("fft-xy", "vofr"),
		Timeline:  res.Trace.Timeline(100, int(knl.ClassVector)),
		Phases:    res.Trace.FormatPhaseBreakdown(),
		CommStats: res.Trace.FormatCommStats(),
	}, nil
}

// Format renders the Figure 3 reproduction.
func (r *Fig3Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — timeline and phase IPCs, original version\n")
	sb.WriteString(r.Timeline)
	sb.WriteString("\nphase statistics:\n")
	sb.WriteString(r.Phases)
	sb.WriteString("\ncommunicator usage (the two MPI layers):\n")
	sb.WriteString(r.CommStats)
	fmt.Fprintf(&sb, "\nphase IPCs measured (paper): prep %.3f (%.2f), fft-z %.3f (%.2f), xy/vofr %.3f (%.2f)\n",
		r.PrepIPC, PaperPhasePrepIPC, r.ZIPC, PaperPhaseZIPC, r.XYIPC, PaperPhaseXYIPC)
	return sb.String()
}

// Fig6Result compares the runtime curves of the original and task versions
// (paper Figure 6).
type Fig6Result struct {
	Original RuntimeCurve
	Task     RuntimeCurve
}

// Fig6 reproduces Figure 6: runtime of the original version (N x NTG MPI
// ranks) versus the task version (N ranks with NTG threads) across the rank
// sweep.
func (s Suite) Fig6() (*Fig6Result, error) {
	orig, err := s.sweep(fftx.EngineOriginal)
	if err != nil {
		return nil, err
	}
	task, err := s.sweep(fftx.EngineTaskIter)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Original: orig, Task: task}, nil
}

// BestGain returns the relative runtime reduction of the task version's
// fastest configuration over the original's fastest (the paper's ~10 %
// headline).
func (r *Fig6Result) BestGain() float64 {
	bo, bt := r.Original.Best(), r.Task.Best()
	return (bo.Runtime - bt.Runtime) / bo.Runtime
}

// Format renders the Figure 6 comparison.
func (r *Fig6Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — FFT phase runtime: original vs task version\n")
	fmt.Fprintf(&sb, "%8s %12s %12s %8s\n", "config", "original[s]", "task[s]", "gain")
	for i := range r.Original.Points {
		o, t := r.Original.Points[i], r.Task.Points[i]
		fmt.Fprintf(&sb, "%8s %12.4f %12.4f %+7.1f%%\n",
			o.Config, o.Runtime, t.Runtime, 100*(o.Runtime-t.Runtime)/o.Runtime)
	}
	bo, bt := r.Original.Best(), r.Task.Best()
	fmt.Fprintf(&sb, "best original: %s (%.4fs), best task: %s (%.4fs), best-vs-best gain %.1f%% (paper: ~10%%, per-config 7-10%%)\n",
		bo.Config, bo.Runtime, bt.Config, bt.Runtime, 100*r.BestGain())
	return sb.String()
}

// Fig7Result compares the execution behaviour of the two versions at one
// configuration: timelines, IPC histograms and the main-phase IPC shift.
type Fig7Result struct {
	Original *fftx.Result
	Task     *fftx.Result
	XYOrig   float64
	XYTask   float64
}

// Fig7 reproduces Figure 7: the de-synchronization of compute phases. It
// runs both versions at the largest non-hyper-threaded configuration.
func (s Suite) Fig7() (*Fig7Result, error) {
	ranks := s.FactorRanks[0]
	for _, r := range s.FactorRanks {
		if r*s.NTG <= 68 {
			ranks = r
		}
	}
	orig, err := fftx.Run(s.config(fftx.EngineOriginal, ranks))
	if err != nil {
		return nil, err
	}
	task, err := fftx.Run(s.config(fftx.EngineTaskIter, ranks))
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Original: orig, Task: task,
		XYOrig: orig.Trace.PhaseAvgIPC("fft-xy", "vofr"),
		XYTask: task.Trace.PhaseAvgIPC("fft-xy", "vofr"),
	}, nil
}

// Format renders the Figure 7 reproduction.
func (r *Fig7Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 7 — de-synchronization of compute phases (original top, task version bottom)\n\n")
	sb.WriteString("original timeline:\n")
	sb.WriteString(r.Original.Trace.Timeline(100, int(knl.ClassVector)))
	sb.WriteString("\ntask version timeline:\n")
	sb.WriteString(r.Task.Trace.Timeline(100, int(knl.ClassVector)))
	sb.WriteString("\noriginal IPC histogram:\n")
	sb.WriteString(r.Original.Trace.RenderIPCHistogram(40, 1.6))
	sb.WriteString("\ntask version IPC histogram:\n")
	sb.WriteString(r.Task.Trace.RenderIPCHistogram(40, 1.6))
	fmt.Fprintf(&sb, "\nmain-phase IPC: original %.3f -> task %.3f (paper: ~%.2f -> ~%.2f)\n",
		r.XYOrig, r.XYTask, PaperXYIPCOriginal, PaperXYIPCTask)
	return sb.String()
}

// SweepResult is the task-group sweep of Section II: fixed total MPI
// processes, varying the number of task groups between the two extremes.
type SweepResult struct {
	TotalRanks int
	NTGs       []int
	Runtimes   []float64
	PackTime   []float64
	ScatterT   []float64
}

// SweepNTG runs the original version with a fixed total process count,
// sweeping the number of task groups over the divisors of the total. It
// exposes the pack-vs-scatter cost trade-off the task groups exist to tune.
func (s Suite) SweepNTG(total int) (*SweepResult, error) {
	out := &SweepResult{TotalRanks: total}
	for ntg := 1; ntg <= total; ntg++ {
		if total%ntg != 0 || s.NB%ntg != 0 {
			continue
		}
		cfg := s.config(fftx.EngineOriginal, total/ntg)
		cfg.NTG = ntg
		res, err := fftx.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: sweep ntg=%d: %w", ntg, err)
		}
		var packT, scatT float64
		for _, iv := range res.Trace.Intervals {
			if iv.Kind != trace.KindMPISync && iv.Kind != trace.KindMPITransfer {
				continue
			}
			if strings.HasPrefix(iv.Comm, "pack") {
				packT += iv.Duration()
			}
			if strings.HasPrefix(iv.Comm, "grp") {
				scatT += iv.Duration()
			}
		}
		out.NTGs = append(out.NTGs, ntg)
		out.Runtimes = append(out.Runtimes, res.Runtime)
		out.PackTime = append(out.PackTime, packT)
		out.ScatterT = append(out.ScatterT, scatT)
	}
	return out, nil
}

// Format renders the task-group sweep.
func (r *SweepResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Task-group sweep at %d total MPI processes (Section II trade-off)\n", r.TotalRanks)
	fmt.Fprintf(&sb, "%6s %12s %16s %16s\n", "NTG", "runtime[s]", "pack MPI [s]", "scatter MPI [s]")
	for i, ntg := range r.NTGs {
		fmt.Fprintf(&sb, "%6d %12.4f %16.4f %16.4f\n", ntg, r.Runtimes[i], r.PackTime[i], r.ScatterT[i])
	}
	sb.WriteString("paper: NTG=1 shifts all cost to the scatter, NTG=P to the pack/unpack; the optimum lies between\n")
	return sb.String()
}

// AblationResult compares the three engines and node-model ablations at one
// configuration.
type AblationResult struct {
	Config string
	Rows   []AblationRow
}

// AblationRow is one ablation entry.
type AblationRow struct {
	Name    string
	Runtime float64
	XYIPC   float64
}

// Ablation quantifies the design choices at the given rank count: the three
// engines (static, per-step tasks, per-iteration tasks), the per-step
// engine's worker count, and the node-model ingredients (work variance,
// endpoint serialization) that the de-synchronization effect rests on.
func (s Suite) Ablation(ranks int) (*AblationResult, error) {
	out := &AblationResult{Config: fmt.Sprintf("%d x %d", ranks, s.NTG)}
	add := func(name string, cfg fftx.Config) error {
		res, err := fftx.Run(cfg)
		if err != nil {
			return fmt.Errorf("core: ablation %s: %w", name, err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Name: name, Runtime: res.Runtime,
			XYIPC: res.Trace.PhaseAvgIPC("fft-xy", "vofr"),
		})
		return nil
	}
	if err := add("original (static task groups)", s.config(fftx.EngineOriginal, ranks)); err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2} {
		cfg := s.config(fftx.EngineTaskSteps, ranks)
		cfg.StepWorkers = w
		if cfg.Lanes() > 272 {
			continue
		}
		if err := add(fmt.Sprintf("task-steps (%d workers/rank)", w), cfg); err != nil {
			return nil, err
		}
		cfg.NestedLoops = true
		if err := add(fmt.Sprintf("task-steps (%d workers/rank, nested loops)", w), cfg); err != nil {
			return nil, err
		}
	}
	if err := add("task-iter (per-band tasks)", s.config(fftx.EngineTaskIter, ranks)); err != nil {
		return nil, err
	}
	if err := add("task-combined (async comm, future work)", s.config(fftx.EngineTaskCombined, ranks)); err != nil {
		return nil, err
	}
	if err := add("dataflow (futures, bounded lookahead)", s.config(fftx.EngineDataflow, ranks)); err != nil {
		return nil, err
	}
	if s.NB%2 == 0 && (s.NB/2)%s.NTG == 0 {
		cfg := s.config(fftx.EngineTaskIter, ranks)
		cfg.Gamma = true
		if err := add("task-iter, gamma-point mode (2 bands/FFT)", cfg); err != nil {
			return nil, err
		}
	}
	// Node-model ablations on the task engine.
	pNoJit := knl.DefaultParams()
	if s.Params != nil {
		pNoJit = *s.Params
	}
	pNoJit.Jitter = 0
	cfg := s.config(fftx.EngineTaskIter, ranks)
	cfg.Params = &pNoJit
	if err := add("task-iter, no work variance", cfg); err != nil {
		return nil, err
	}
	pNoEp := knl.DefaultParams()
	if s.Params != nil {
		pNoEp = *s.Params
	}
	pNoEp.EndpointBandwidth = 0
	cfg = s.config(fftx.EngineTaskIter, ranks)
	cfg.Params = &pNoEp
	if err := add("task-iter, no endpoint serialization cap", cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictionResult is the scalability-prediction experiment: the POP
// factors measured up to 16x8 extrapolated to 32x8 and checked against the
// actual 32x8 simulation (the methodology of the paper's reference [10]).
type PredictionResult struct {
	Prediction pop.Prediction
	Measured   pop.Factors
	Table      string
}

// PredictScaling fits the Table I factor trends over FactorRanks and
// predicts the next doubling, then measures it for comparison.
func (s Suite) PredictScaling(engine fftx.Engine) (*PredictionResult, error) {
	fr, err := s.factorTable("prediction base", engine, PaperFactors{})
	if err != nil {
		return nil, err
	}
	lanes := make([]int, len(s.FactorRanks))
	for i, r := range s.FactorRanks {
		lanes[i] = r * s.NTG
	}
	target := lanes[len(lanes)-1] * 2
	pred, err := pop.Predict(lanes, fr.Factors, target)
	if err != nil {
		return nil, err
	}
	res, err := fftx.Run(s.config(engine, target/s.NTG))
	if err != nil {
		return nil, err
	}
	measured := pop.Analyze(res.Trace)
	measured.AddScalability(fr.Factors[0])
	return &PredictionResult{
		Prediction: pred,
		Measured:   measured,
		Table:      pop.FormatPrediction(pred, &measured),
	}, nil
}

// Format renders the prediction experiment.
func (r *PredictionResult) Format() string {
	return "Scalability prediction (POP methodology, ref. [10] of the paper)\n" + r.Table
}

// MachineRow is one (machine, engine) measurement of the machine
// comparison.
type MachineRow struct {
	Machine string
	Engine  fftx.Engine
	Lanes   int
	Runtime float64
	// GainVsOriginal is the runtime reduction relative to the same
	// machine's original version.
	GainVsOriginal float64
}

// MachinesResult compares the engine choice across node types.
type MachinesResult struct {
	Rows []MachineRow
}

// Machines runs the engines on two full nodes — the calibrated KNL and the
// contrasting Xeon-like preset — at one rank per hardware thread,
// quantifying the paper's Section IV argument that the best task strategy
// depends on the machine: de-synchronization pays on the contention-bound
// KNL, communication overlap pays relatively more where compute is fast.
func (s Suite) Machines() (*MachinesResult, error) {
	out := &MachinesResult{}
	machines := []struct {
		name   string
		params knl.Params
		ranks  int // ranks * s.NTG lanes fill the node
	}{
		{"KNL (68c @ 1.4GHz)", knl.DefaultParams(), 64 / s.NTG},
		{"Xeon (24c @ 2.6GHz)", knl.XeonParams(), 24 / s.NTG},
	}
	engines := []fftx.Engine{fftx.EngineOriginal, fftx.EngineTaskIter, fftx.EngineTaskCombined}
	for _, m := range machines {
		if m.ranks < 1 {
			m.ranks = 1
		}
		var orig float64
		for _, e := range engines {
			cfg := s.config(e, m.ranks)
			params := m.params
			cfg.Params = &params
			res, err := fftx.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("core: machines %s/%v: %w", m.name, e, err)
			}
			row := MachineRow{Machine: m.name, Engine: e, Lanes: cfg.Lanes(), Runtime: res.Runtime}
			if e == fftx.EngineOriginal {
				orig = res.Runtime
			} else {
				row.GainVsOriginal = (orig - res.Runtime) / orig
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the machine comparison.
func (r *MachinesResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Engine choice across machines (Section IV: the best strategy depends on the node)\n")
	fmt.Fprintf(&sb, "%-22s %-16s %6s %12s %10s\n", "machine", "engine", "lanes", "runtime[s]", "gain")
	for _, row := range r.Rows {
		gain := ""
		if row.Engine != fftx.EngineOriginal {
			gain = fmt.Sprintf("%+.1f%%", 100*row.GainVsOriginal)
		}
		fmt.Fprintf(&sb, "%-22s %-16s %6d %12.4f %10s\n",
			row.Machine, row.Engine.String(), row.Lanes, row.Runtime, gain)
	}
	return sb.String()
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation at %s\n", r.Config)
	fmt.Fprintf(&sb, "%-42s %12s %10s\n", "variant", "runtime[s]", "xy IPC")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-42s %12.4f %10.3f\n", row.Name, row.Runtime, row.XYIPC)
	}
	return sb.String()
}
