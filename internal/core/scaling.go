package core

import (
	"fmt"
	"strings"

	"repro/internal/fftx"
	"repro/internal/pop"
)

// ScalingRow is one point of a multi-node scaling study.
type ScalingRow struct {
	Nodes   int
	Ranks   int
	NB      int
	Runtime float64
	ParEff  float64
	CommEff float64
}

// ScalingResult holds a strong- or weak-scaling study over node counts.
type ScalingResult struct {
	Engine fftx.Engine
	Weak   bool
	Rows   []ScalingRow
}

// StrongScaling keeps the total work fixed and spreads baseRanks·nodes
// ranks over the node counts: the classic strong-scaling curve, with the
// POP parallel-efficiency factors alongside.
func (s Suite) StrongScaling(engine fftx.Engine, baseRanks int, nodeCounts []int) (*ScalingResult, error) {
	out := &ScalingResult{Engine: engine}
	for _, nodes := range nodeCounts {
		cfg := s.config(engine, baseRanks*nodes)
		cfg.NodesCount = nodes
		res, err := fftx.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: strong scaling %d nodes: %w", nodes, err)
		}
		f := pop.Analyze(res.Trace)
		out.Rows = append(out.Rows, ScalingRow{
			Nodes: nodes, Ranks: cfg.Ranks, NB: cfg.NB, Runtime: res.Runtime,
			ParEff: f.ParallelEff, CommEff: f.CommEff,
		})
	}
	return out, nil
}

// WeakScaling grows the work with the machine: bands scale with the node
// count at fixed ranks per node, so perfect scaling keeps the runtime flat.
func (s Suite) WeakScaling(engine fftx.Engine, baseRanks int, nodeCounts []int) (*ScalingResult, error) {
	out := &ScalingResult{Engine: engine, Weak: true}
	for _, nodes := range nodeCounts {
		cfg := s.config(engine, baseRanks*nodes)
		cfg.NodesCount = nodes
		cfg.NB = s.NB * nodes
		res, err := fftx.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: weak scaling %d nodes: %w", nodes, err)
		}
		f := pop.Analyze(res.Trace)
		out.Rows = append(out.Rows, ScalingRow{
			Nodes: nodes, Ranks: cfg.Ranks, NB: cfg.NB, Runtime: res.Runtime,
			ParEff: f.ParallelEff, CommEff: f.CommEff,
		})
	}
	return out, nil
}

// Format renders the scaling study, including the speedup or weak-scaling
// efficiency relative to the first row.
func (r *ScalingResult) Format() string {
	var sb strings.Builder
	kind := "Strong"
	if r.Weak {
		kind = "Weak"
	}
	fmt.Fprintf(&sb, "%s scaling, engine %v (beyond the paper: multi-node)\n", kind, r.Engine)
	fmt.Fprintf(&sb, "%6s %7s %7s %12s %10s %9s %9s\n", "nodes", "ranks", "bands", "runtime[s]", "scaling", "ParEff", "CommEff")
	base := r.Rows[0]
	for _, row := range r.Rows {
		var scal float64
		if r.Weak {
			scal = base.Runtime / row.Runtime // flat = 1.0
		} else {
			scal = base.Runtime / row.Runtime / (float64(row.Nodes) / float64(base.Nodes))
		}
		fmt.Fprintf(&sb, "%6d %7d %7d %12.4f %9.2fx %8.1f%% %8.1f%%\n",
			row.Nodes, row.Ranks, row.NB, row.Runtime, scal, 100*row.ParEff, 100*row.CommEff)
	}
	if r.Weak {
		sb.WriteString("scaling column: runtime(1 node)/runtime(N nodes); 1.00x = perfect weak scaling\n")
	} else {
		sb.WriteString("scaling column: parallel efficiency of the speedup; 1.00x = perfect strong scaling\n")
	}
	return sb.String()
}
