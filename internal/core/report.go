package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fftx"
	"repro/internal/pop"
)

// WriteReport runs every experiment of the suite and writes a markdown
// report with the paper-vs-measured comparison — the machine-generated
// counterpart of EXPERIMENTS.md.
func (s Suite) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "# FFTXlib-on-KNL reproduction report\n\n")
	fmt.Fprintf(w, "Workload: energy cutoff %.0f Ry, lattice parameter %.0f bohr, %d bands, %d task groups.\n",
		s.Ecut, s.Alat, s.NB, s.NTG)
	fmt.Fprintf(w, "All runtimes are simulated seconds on the calibrated KNL node model.\n\n")

	fig6, err := s.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figures 2 and 6 — runtime of the FFT phase\n\n")
	fmt.Fprintf(w, "| config | original [s] | task [s] | gain |\n|---|---|---|---|\n")
	for i := range fig6.Original.Points {
		o, t := fig6.Original.Points[i], fig6.Task.Points[i]
		fmt.Fprintf(w, "| %s | %.4f | %.4f | %+.1f%% |\n",
			o.Config, o.Runtime, t.Runtime, 100*(o.Runtime-t.Runtime)/o.Runtime)
	}
	bo, bt := fig6.Original.Best(), fig6.Task.Best()
	fmt.Fprintf(w, "\nBest original: %s (%.4f s); best task: %s (%.4f s); best-vs-best gain %.1f%% (paper: ~10%%).\n\n",
		bo.Config, bo.Runtime, bt.Config, bt.Runtime, 100*fig6.BestGain())

	writeFactors := func(title string, r *FactorsResult) {
		fmt.Fprintf(w, "## %s\n\n", title)
		fmt.Fprintf(w, "measured (paper):\n\n| factor |")
		for _, c := range r.Configs {
			fmt.Fprintf(w, " %s |", c)
		}
		fmt.Fprintf(w, "\n|---|")
		for range r.Configs {
			fmt.Fprintf(w, "---|")
		}
		fmt.Fprintln(w)
		rows := []struct {
			name string
			get  func(pop.Factors) float64
			pub  []float64
		}{
			{"Parallel efficiency", func(f pop.Factors) float64 { return f.ParallelEff }, r.Paper.ParallelEff},
			{"Load balance", func(f pop.Factors) float64 { return f.LoadBalance }, r.Paper.LoadBalance},
			{"Communication eff.", func(f pop.Factors) float64 { return f.CommEff }, r.Paper.CommEff},
			{"Computation scal.", func(f pop.Factors) float64 { return f.CompScal }, r.Paper.CompScal},
			{"IPC scal.", func(f pop.Factors) float64 { return f.IPCScal }, r.Paper.IPCScal},
			{"Instruction scal.", func(f pop.Factors) float64 { return f.InstrScal }, r.Paper.InstrScal},
			{"Global efficiency", func(f pop.Factors) float64 { return f.GlobalEff }, r.Paper.GlobalEff},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "| %s |", row.name)
			for i, f := range r.Factors {
				pub := "—"
				if i < len(row.pub) {
					pub = fmt.Sprintf("%.2f", row.pub[i])
				}
				fmt.Fprintf(w, " %.2f (%s) |", 100*row.get(f), pub)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	t1, err := s.Table1()
	if err != nil {
		return err
	}
	writeFactors("Table I — original version", t1)
	t2, err := s.Table2()
	if err != nil {
		return err
	}
	writeFactors("Table II — task version", t2)

	fig3, err := s.Fig3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figure 3 — phase IPCs\n\n")
	fmt.Fprintf(w, "| phase | measured | paper |\n|---|---|---|\n")
	fmt.Fprintf(w, "| psi preparation | %.3f | ~%.2f |\n", fig3.PrepIPC, PaperPhasePrepIPC)
	fmt.Fprintf(w, "| Z FFT | %.3f | ~%.2f |\n", fig3.ZIPC, PaperPhaseZIPC)
	fmt.Fprintf(w, "| XY FFT / VOFR | %.3f | ~%.2f |\n\n", fig3.XYIPC, PaperPhaseXYIPC)

	fig7, err := s.Fig7()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figure 7 — de-synchronization\n\n")
	fmt.Fprintf(w, "Main-phase IPC: original %.3f → task %.3f (paper: ~%.2f → ~%.2f).\n\n",
		fig7.XYOrig, fig7.XYTask, PaperXYIPCOriginal, PaperXYIPCTask)

	abl, err := s.Ablation(8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Ablation (8 × %d)\n\n| variant | runtime [s] | main-phase IPC |\n|---|---|---|\n", s.NTG)
	for _, row := range abl.Rows {
		fmt.Fprintf(w, "| %s | %.4f | %.3f |\n", row.Name, row.Runtime, row.XYIPC)
	}
	fmt.Fprintln(w)

	sens, err := s.Sensitivity(8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Model sensitivity\n\n| variant | gain |\n|---|---|\n")
	for _, row := range sens.Rows {
		fmt.Fprintf(w, "| %s | %+.1f%% |\n", row.Name, 100*row.Gain)
	}
	fmt.Fprintln(w)

	mach, err := s.Machines()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Machine dependence of the engine choice\n\n| machine | engine | gain vs original |\n|---|---|---|\n")
	for _, row := range mach.Rows {
		if row.Engine == fftx.EngineOriginal {
			continue
		}
		fmt.Fprintf(w, "| %s | %s | %+.1f%% |\n", row.Machine, row.Engine, 100*row.GainVsOriginal)
	}
	fmt.Fprintln(w)

	pr, err := s.PredictScaling(fftx.EngineOriginal)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Scalability prediction (POP methodology)\n\n```\n%s```\n",
		strings.TrimPrefix(pr.Table, "\n"))
	return nil
}
