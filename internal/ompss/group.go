package ompss

import (
	"fmt"

	"repro/internal/vtime"
)

// Group collects related tasks so a parent task can wait for exactly its
// children (the OmpSs nested-task / taskwait-on-children idiom used by the
// paper's nested taskloops in cft_2xy and cft_1z).
type Group struct {
	rt      *Runtime
	pending int
	wq      vtime.WaitQueue
}

// NewGroup returns an empty task group.
func (rt *Runtime) NewGroup() *Group {
	g := &Group{rt: rt}
	g.wq.Describe = func() string {
		return fmt.Sprintf("ompss: group wait (%d tasks of the group pending)", g.pending)
	}
	return g
}

// SubmitInGroup submits a task belonging to the group.
func (rt *Runtime) SubmitInGroup(p *vtime.Proc, g *Group, label string, deps []Dep, priority int, fn func(w *Worker)) *Task {
	if g.rt != rt {
		panic("ompss: group belongs to a different runtime")
	}
	g.pending++
	t := rt.Submit(p, label, deps, priority, func(w *Worker) {
		fn(w)
		g.pending--
		if g.pending == 0 {
			g.wq.WakeAll(w.Proc)
		}
	})
	t.group = g
	return t
}

// TaskLoopInGroup submits one group task per grain-sized chunk of [0,n).
func (rt *Runtime) TaskLoopInGroup(p *vtime.Proc, g *Group, label string, n, grain int, body func(w *Worker, lo, hi int)) {
	if grain <= 0 {
		grain = 1
	}
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		rt.SubmitInGroup(p, g, fmt.Sprintf("%s[%d:%d]", label, lo, hi), nil, 0, func(w *Worker) {
			body(w, lo, hi)
		})
	}
}

// Wait blocks the calling worker until every task of the group has
// completed. While waiting, the worker executes ready tasks belonging to
// the group (the taskwait child-scheduling of Nanos++), so nested taskloops
// make progress even when every worker thread is a waiting parent. Only
// group members are executed inline: picking up arbitrary ready tasks could
// block the waiting worker inside an unrelated MPI call and deadlock the
// rank.
func (g *Group) Wait(w *Worker) {
	rt := g.rt
	for g.pending > 0 {
		if t := rt.popReadyInGroup(g); t != nil {
			rt.runTask(w, t)
			continue
		}
		g.wq.Wait(w.Proc)
	}
}

// Promise is an externally fulfilled pseudo-task: it owns write
// dependencies on its regions from creation, so tasks submitted afterwards
// with read dependencies on those regions wait until Fulfill is called.
// It is the dependency-release half of asynchronous communication (a
// communication thread completes an MPI call and fulfills the promise,
// releasing the compute task that consumes the received data).
type Promise struct {
	rt   *Runtime
	task *Task
}

// NewPromise registers a pseudo-task writing the given regions. The regions
// must have no pending writers or readers (the promise cannot wait).
func (rt *Runtime) NewPromise(label string, regions ...any) *Promise {
	// Validate every region before touching any runtime state, so a panic
	// leaves the runtime consistent.
	for _, reg := range regions {
		if rs := rt.regions[reg]; rs != nil {
			if (rs.lastWriter != nil && !rs.lastWriter.done) || len(rs.readers) > 0 {
				panic(fmt.Sprintf("ompss: promise %q on busy region %v", label, reg))
			}
		}
	}
	t := &Task{id: rt.nextID, label: label}
	rt.nextID++
	rt.pending++
	rt.tasks = append(rt.tasks, t)
	for _, reg := range regions {
		rs := rt.regions[reg]
		if rs == nil {
			rs = &regionState{}
			rt.regions[reg] = rs
		}
		rs.lastWriter = t
		rs.readers = nil
	}
	return &Promise{rt: rt, task: t}
}

// Fulfill completes the promise, releasing every dependent task. It must be
// called from a running simulated process.
func (pr *Promise) Fulfill(p *vtime.Proc) {
	if pr.task.done {
		panic("ompss: promise fulfilled twice")
	}
	pr.rt.complete(p, pr.task)
}
