package ompss

import (
	"math/rand"
	"testing"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runTasks drives a main process that submits tasks via body, taskwaits and
// shuts down, with nWorkers workers on a small node.
func runTasks(t *testing.T, nWorkers int, body func(p *vtime.Proc, rt *Runtime)) *trace.Trace {
	t.Helper()
	params := knl.DefaultParams()
	node := knl.NewNode(params, nWorkers)
	eng := vtime.NewEngine(node)
	tr := trace.New(nWorkers, params.Freq)
	lanes := make([]int, nWorkers)
	for i := range lanes {
		lanes[i] = i
	}
	rt := New(eng, tr, lanes)
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		body(p, rt)
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	var ends []float64
	runTasks(t, 4, func(p *vtime.Proc, rt *Runtime) {
		for i := 0; i < 4; i++ {
			rt.Submit(p, "t", nil, 0, func(w *Worker) {
				w.Proc.Sleep(1)
				ends = append(ends, w.Proc.Now())
			})
		}
	})
	for _, e := range ends {
		if e != 1 {
			t.Fatalf("task ended at %v, want 1 (parallel)", e)
		}
	}
}

func TestFlowDependencySerializes(t *testing.T) {
	var order []string
	runTasks(t, 4, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "w1", []Dep{Out("x")}, 0, func(w *Worker) {
			w.Proc.Sleep(1)
			order = append(order, "w1")
		})
		rt.Submit(p, "r1", []Dep{In("x")}, 0, func(w *Worker) {
			order = append(order, "r1")
		})
		rt.Submit(p, "r2", []Dep{In("x")}, 0, func(w *Worker) {
			order = append(order, "r2")
		})
		rt.Submit(p, "w2", []Dep{Inout("x")}, 0, func(w *Worker) {
			order = append(order, "w2")
		})
	})
	if len(order) != 4 || order[0] != "w1" || order[3] != "w2" {
		t.Fatalf("order %v: writer must come first, second writer last", order)
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	readerEnd := map[string]float64{}
	runTasks(t, 4, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "w", []Dep{Out("x")}, 0, func(w *Worker) {
			w.Proc.Sleep(1)
		})
		for _, nm := range []string{"a", "b", "c"} {
			nm := nm
			rt.Submit(p, nm, []Dep{In("x")}, 0, func(w *Worker) {
				w.Proc.Sleep(1)
				readerEnd[nm] = w.Proc.Now()
			})
		}
	})
	for nm, e := range readerEnd {
		if e != 2 {
			t.Fatalf("reader %s ended at %v, want 2 (concurrent after writer)", nm, e)
		}
	}
}

func TestAntiDependencyWaitsForReaders(t *testing.T) {
	var w2Start float64
	runTasks(t, 4, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "w1", []Dep{Out("x")}, 0, func(w *Worker) {})
		rt.Submit(p, "r", []Dep{In("x")}, 0, func(w *Worker) {
			w.Proc.Sleep(2)
		})
		rt.Submit(p, "w2", []Dep{Out("x")}, 0, func(w *Worker) {
			w2Start = w.Proc.Now()
		})
	})
	if w2Start < 2 {
		t.Fatalf("second writer started at %v before reader finished at 2", w2Start)
	}
}

func TestIndependentChainsOverlap(t *testing.T) {
	// Two independent flow chains (as in per-iteration FFT tasks) must
	// overlap on two workers.
	var total float64
	runTasks(t, 2, func(p *vtime.Proc, rt *Runtime) {
		for c := 0; c < 2; c++ {
			key := c
			for s := 0; s < 3; s++ {
				rt.Submit(p, "step", []Dep{Inout(key)}, 0, func(w *Worker) {
					w.Proc.Sleep(1)
					total = w.Proc.Now()
				})
			}
		}
	})
	if total != 3 {
		t.Fatalf("two independent 3-step chains on 2 workers finished at %v, want 3", total)
	}
}

func TestPriorityOrdering(t *testing.T) {
	var order []string
	runTasks(t, 1, func(p *vtime.Proc, rt *Runtime) {
		// Block the single worker so submissions accumulate.
		rt.Submit(p, "gate", []Dep{}, 0, func(w *Worker) { w.Proc.Sleep(1) })
		rt.Submit(p, "low", nil, 0, func(w *Worker) { order = append(order, "low") })
		rt.Submit(p, "high", nil, 5, func(w *Worker) { order = append(order, "high") })
	})
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order %v, want high first", order)
	}
}

func TestTaskwaitBlocksUntilDone(t *testing.T) {
	var waitedUntil float64
	params := knl.DefaultParams()
	node := knl.NewNode(params, 2)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0, 1})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		rt.Submit(p, "slow", nil, 0, func(w *Worker) { w.Proc.Sleep(5) })
		rt.Taskwait(p)
		waitedUntil = p.Now()
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if waitedUntil != 5 {
		t.Fatalf("taskwait returned at %v, want 5", waitedUntil)
	}
}

func TestTaskLoopCoversRange(t *testing.T) {
	covered := make([]bool, 23)
	runTasks(t, 3, func(p *vtime.Proc, rt *Runtime) {
		rt.TaskLoop(p, "loop", 23, 5, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("index %d covered twice", i)
				}
				covered[i] = true
			}
		})
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestNestedSubmissionFromTask(t *testing.T) {
	var childRan bool
	runTasks(t, 2, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			rt.Submit(w.Proc, "child", nil, 0, func(w2 *Worker) {
				childRan = true
			})
		})
	})
	if !childRan {
		t.Fatal("nested task did not run")
	}
}

func TestComputeRecordsTraceAndTime(t *testing.T) {
	tr := runTasks(t, 1, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "c", nil, 0, func(w *Worker) {
			w.Compute("phase-a", knl.ClassVector, 1e6)
		})
	})
	if tr.TotalInstr() != 1e6 {
		t.Fatalf("instr %v", tr.TotalInstr())
	}
	if tr.TotalComputeTime() <= 0 {
		t.Fatal("no compute time recorded")
	}
}

func TestOverheadRecordedAsRuntime(t *testing.T) {
	params := knl.DefaultParams()
	node := knl.NewNode(params, 1)
	eng := vtime.NewEngine(node)
	tr := trace.New(1, params.Freq)
	rt := New(eng, tr, []int{0})
	rt.Overhead = 1e-3
	eng.Spawn("main", func(p *vtime.Proc) {
		for i := 0; i < 3; i++ {
			rt.Submit(p, "t", nil, 0, func(w *Worker) {})
		}
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rtTime := tr.TimeByKind(trace.KindRuntime)[0]
	if rtTime < 2.9e-3 || rtTime > 3.1e-3 {
		t.Fatalf("runtime overhead time %v, want ~3e-3", rtTime)
	}
}

func TestIdleRecordedWhileStarved(t *testing.T) {
	params := knl.DefaultParams()
	node := knl.NewNode(params, 2)
	eng := vtime.NewEngine(node)
	tr := trace.New(2, params.Freq)
	rt := New(eng, tr, []int{0, 1})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		p.Sleep(2) // workers idle for 2s
		rt.Submit(p, "t", nil, 0, func(w *Worker) {})
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	idle := tr.TimeByKind(trace.KindIdle)
	if idle[0] < 1.9 && idle[1] < 1.9 {
		t.Fatalf("no worker recorded starvation idle: %v", idle)
	}
}

func TestSchedulingDeterministic(t *testing.T) {
	run := func() []float64 {
		var ends []float64
		runTasks(t, 3, func(p *vtime.Proc, rt *Runtime) {
			for i := 0; i < 9; i++ {
				d := float64(i%3+1) * 0.25
				rt.Submit(p, "t", nil, 0, func(w *Worker) {
					w.Proc.Sleep(d)
					ends = append(ends, w.Proc.Now())
				})
			}
		})
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different task counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule at %d: %v vs %v", i, a, b)
		}
	}
}

// Property: for random dependency graphs over random regions, the runtime
// executes every task exactly once, respecting the sequential-consistency
// order implied by the in/out/inout annotations: a task must observe the
// effects of every earlier-submitted task it conflicts with (write-write,
// write-read or read-write on a shared region).
func TestPropertyRandomDAGRespectsDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nTasks := 5 + rng.Intn(30)
		nRegions := 1 + rng.Intn(5)
		nWorkers := 1 + rng.Intn(4)
		type spec struct {
			deps []Dep
		}
		specs := make([]spec, nTasks)
		for i := range specs {
			nd := 1 + rng.Intn(3)
			for d := 0; d < nd; d++ {
				reg := rng.Intn(nRegions)
				mode := []func(any) Dep{In, Out, Inout}[rng.Intn(3)]
				specs[i].deps = append(specs[i].deps, mode(reg))
			}
		}
		finished := make([]int, 0, nTasks) // completion order
		ran := make([]int, nTasks)
		runTasks(t, nWorkers, func(p *vtime.Proc, rt *Runtime) {
			for i := range specs {
				i := i
				rt.Submit(p, "t", specs[i].deps, 0, func(w *Worker) {
					w.Proc.Sleep(float64(1+rng.Intn(3)) * 0.125)
					ran[i]++
					finished = append(finished, i)
				})
			}
		})
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("trial %d: task %d ran %d times", trial, i, n)
			}
		}
		// Verify ordering: for every conflicting pair (i<j), i finishes
		// before j finishes... more precisely j must START after i
		// completes; completion order is a valid witness because j cannot
		// finish before it starts.
		pos := make([]int, nTasks)
		for idx, task := range finished {
			pos[task] = idx
		}
		conflicts := func(a, b []Dep) bool {
			for _, da := range a {
				for _, db := range b {
					if da.Region != db.Region {
						continue
					}
					if da.Mode != ModeIn || db.Mode != ModeIn {
						return true
					}
				}
			}
			return false
		}
		for i := 0; i < nTasks; i++ {
			for j := i + 1; j < nTasks; j++ {
				if conflicts(specs[i].deps, specs[j].deps) && pos[i] > pos[j] {
					t.Fatalf("trial %d: task %d (deps %v) finished after dependent task %d (deps %v)",
						trial, i, specs[i].deps, j, specs[j].deps)
				}
			}
		}
	}
}

// Property: with a single region in inout mode everywhere, execution is
// fully serial regardless of worker count — elapsed equals the sum of task
// durations.
func TestPropertyFullChainIsSerial(t *testing.T) {
	var end float64
	const n = 12
	runTasks(t, 4, func(p *vtime.Proc, rt *Runtime) {
		for i := 0; i < n; i++ {
			rt.Submit(p, "c", []Dep{Inout("x")}, 0, func(w *Worker) {
				w.Proc.Sleep(0.5)
				end = w.Proc.Now()
			})
		}
	})
	if end != n*0.5 {
		t.Fatalf("chain finished at %v, want %v", end, n*0.5)
	}
}
