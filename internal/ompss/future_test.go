package ompss

import (
	"strings"
	"testing"

	"repro/internal/knl"
	"repro/internal/vtime"
)

// runDataflow drives a main process over a future-based schedule: body
// submits work and returns the future main should park on; no Taskwait —
// the schedule must drain itself through continuations.
func runDataflow(t *testing.T, nWorkers int, body func(p *vtime.Proc, rt *Runtime) *Future) {
	t.Helper()
	node := knl.NewNode(knl.DefaultParams(), nWorkers)
	eng := vtime.NewEngine(node)
	lanes := make([]int, nWorkers)
	for i := range lanes {
		lanes[i] = i
	}
	rt := New(eng, nil, lanes)
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		f := body(p, rt)
		f.Wait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.TaskwaitSec != 0 {
		t.Errorf("dataflow schedule accumulated TaskwaitSec %v, want 0", rt.TaskwaitSec)
	}
}

func TestFutureThenAndWait(t *testing.T) {
	var order []string
	runDataflow(t, 2, func(p *vtime.Proc, rt *Runtime) *Future {
		done := rt.NewFuture("done")
		f := rt.NewFuture("f")
		f.Then(p, func(hp *vtime.Proc) { order = append(order, "then1") })
		f.Then(p, func(hp *vtime.Proc) { order = append(order, "then2") })
		rt.Submit(p, "producer", nil, 0, func(w *Worker) {
			w.Proc.Sleep(1)
			order = append(order, "produce")
			f.Complete(w.Proc)
		})
		// A Then on an already resolved future runs immediately.
		resolved := rt.NewJoin("zero", 0)
		if !resolved.Done() {
			t.Error("NewJoin(0) not resolved")
		}
		resolved.Then(p, func(hp *vtime.Proc) { order = append(order, "immediate") })
		f.Then(p, func(hp *vtime.Proc) { done.Complete(hp) })
		return done
	})
	want := []string{"immediate", "produce", "then1", "then2"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestJoinCountsCompletions(t *testing.T) {
	const n = 5
	fired := 0
	runDataflow(t, 2, func(p *vtime.Proc, rt *Runtime) *Future {
		join := rt.NewJoin("join", n)
		join.Then(p, func(hp *vtime.Proc) { fired++ })
		for i := 0; i < n; i++ {
			rt.Submit(p, "part", nil, 0, func(w *Worker) {
				w.Proc.Sleep(1)
				if join.Done() {
					t.Error("join resolved before all completions")
				}
				join.Complete(w.Proc)
			})
		}
		return join
	})
	if fired != 1 {
		t.Fatalf("join continuation fired %d times, want 1", fired)
	}
}

// SubmitAfter releases a task only once every input future resolves, and
// releases it immediately when all inputs are already resolved (or absent).
func TestSubmitAfterSuccessorCounting(t *testing.T) {
	var order []string
	runDataflow(t, 1, func(p *vtime.Proc, rt *Runtime) *Future {
		a := rt.NewFuture("a")
		b := rt.NewFuture("b")
		done := rt.NewFuture("done")
		consumer := rt.SubmitAfter(p, "consumer", []*Future{a, b}, 0, func(w *Worker) {
			if !a.Done() || !b.Done() {
				t.Error("consumer ran before its inputs resolved")
			}
			order = append(order, "consumer")
		})
		rt.OnComplete(consumer, func(hp *vtime.Proc) { done.Complete(hp) })
		rt.SubmitAfter(p, "free", nil, 10, func(w *Worker) {
			order = append(order, "free")
			a.Complete(w.Proc)
		})
		rt.SubmitAfter(p, "also-free", []*Future{rt.NewJoin("noop", 0), nil}, 5, func(w *Worker) {
			order = append(order, "also-free")
			b.Complete(w.Proc)
		})
		return done
	})
	want := []string{"free", "also-free", "consumer"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// A diamond a -> {b, c} -> d expressed purely with futures: no Taskwait, the
// last arrival at the join releases the sink.
func TestSubmitAfterDiamond(t *testing.T) {
	var order []string
	runDataflow(t, 2, func(p *vtime.Proc, rt *Runtime) *Future {
		fa := rt.NewFuture("fa")
		mid := rt.NewJoin("mid", 2)
		done := rt.NewFuture("done")
		step := func(name string, dur float64, after []*Future, out *Future) {
			t := rt.SubmitAfter(p, name, after, 0, func(w *Worker) {
				w.Proc.Sleep(dur)
				order = append(order, name)
			})
			rt.OnComplete(t, func(hp *vtime.Proc) { out.Complete(hp) })
		}
		step("a", 1, nil, fa)
		step("b", 1, []*Future{fa}, mid)
		step("c", 2, []*Future{fa}, mid)
		step("d", 1, []*Future{mid}, done)
		return done
	})
	if len(order) != 4 || order[0] != "a" || order[3] != "d" {
		t.Fatalf("order %v, want a first and d last", order)
	}
}

// OnComplete continuations observe the runtime after the task has left the
// pending count — the property that lets a continuation-resolved join lead
// straight into Shutdown without a Taskwait.
func TestOnCompleteRunsAfterPendingDecrement(t *testing.T) {
	runDataflow(t, 1, func(p *vtime.Proc, rt *Runtime) *Future {
		done := rt.NewFuture("done")
		task := rt.SubmitAfter(p, "only", nil, 0, func(w *Worker) { w.Proc.Sleep(1) })
		rt.OnComplete(task, func(hp *vtime.Proc) {
			if rt.pending != 0 {
				t.Errorf("continuation sees pending=%d, want 0", rt.pending)
			}
			done.Complete(hp)
		})
		return done
	})
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	node := knl.NewNode(knl.DefaultParams(), 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		f := rt.NewFuture("once")
		f.Complete(p)
		defer rt.Shutdown(p)
		defer func() {
			if r := recover(); r == nil {
				t.Error("second Complete did not panic")
			}
		}()
		f.Complete(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOnCompleteAfterDonePanics(t *testing.T) {
	runDataflow(t, 1, func(p *vtime.Proc, rt *Runtime) *Future {
		done := rt.NewFuture("done")
		task := rt.SubmitAfter(p, "t", nil, 0, func(w *Worker) {})
		rt.OnComplete(task, func(hp *vtime.Proc) { done.Complete(hp) })
		done.Wait(p)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("OnComplete on a completed task did not panic")
				}
			}()
			rt.OnComplete(task, func(hp *vtime.Proc) {})
		}()
		return done
	})
}

// Taskwait charges its stall to the runtime's TaskwaitSec account; the
// future path (exercised by every other test here) leaves it at zero.
func TestTaskwaitSecAccounting(t *testing.T) {
	node := knl.NewNode(knl.DefaultParams(), 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		rt.Submit(p, "slow", nil, 0, func(w *Worker) { w.Proc.Sleep(3) })
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.TaskwaitSec != 3 {
		t.Fatalf("TaskwaitSec = %v, want 3", rt.TaskwaitSec)
	}
}
