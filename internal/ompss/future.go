package ompss

import (
	"fmt"

	"repro/internal/vtime"
)

// Dataflow futures: the dependency-release primitive of the dataflow
// engine. A Future is a single-assignment completion event inside the
// simulated runtime — the channel of a channel-based future, with the
// receive side expressed as continuations instead of a blocked process.
// Tasks submitted with SubmitAfter count unresolved input futures directly
// (successor counting), so a task fires the moment its last input
// resolves; nothing ever funnels through a group-wide Taskwait barrier.
//
// Continuations registered with Then (and task continuations registered
// with OnComplete) run inline on whichever simulated process completes the
// future, inside the runtime's bookkeeping path: they must release work —
// complete other futures, count arrivals — and never block, post
// collectives or charge compute time (fftxvet's blockintask rule polices
// this surface).

// Future is an externally completed dataflow event. The zero value is not
// usable; create futures with Runtime.NewFuture or Runtime.NewJoin.
type Future struct {
	rt      *Runtime
	label   string
	pending int // completions still required; 0 = resolved
	conts   []func(p *vtime.Proc)
	wq      vtime.WaitQueue
}

// NewFuture returns a future resolved by a single Complete call.
func (rt *Runtime) NewFuture(label string) *Future {
	return rt.NewJoin(label, 1)
}

// NewJoin returns a join future: it resolves after n Complete calls (the
// all-of combinator — one future standing for n upstream events). n <= 0
// returns an already-resolved future.
func (rt *Runtime) NewJoin(label string, n int) *Future {
	if n < 0 {
		n = 0
	}
	f := &Future{rt: rt, label: label, pending: n}
	f.wq.Describe = func() string {
		return fmt.Sprintf("ompss: future %q wait (%d completions outstanding)", f.label, f.pending)
	}
	return f
}

// Done reports whether the future has resolved.
func (f *Future) Done() bool { return f.pending == 0 }

// Complete records one arrival. The call that brings the outstanding count
// to zero resolves the future: continuations run immediately on p (in
// registration order) and blocked waiters wake. Completing an already
// resolved future panics — a double completion means the dataflow graph
// was mis-built, and silently absorbing it would hide a lost-release bug.
func (f *Future) Complete(p *vtime.Proc) {
	if f.pending == 0 {
		panic(fmt.Sprintf("ompss: future %q completed more often than expected", f.label))
	}
	f.pending--
	if f.pending > 0 {
		return
	}
	conts := f.conts
	f.conts = nil
	for _, fn := range conts {
		fn(p)
	}
	f.wq.WakeAll(p)
}

// Then registers a continuation. If the future is already resolved the
// continuation runs immediately on p; otherwise it runs when the resolving
// Complete arrives, on the completing process. Continuations must not
// block (see the package comment above).
func (f *Future) Then(p *vtime.Proc, fn func(p *vtime.Proc)) {
	if f.pending == 0 {
		fn(p)
		return
	}
	f.conts = append(f.conts, fn)
}

// Wait blocks the calling process until the future resolves. It is the
// sink-side primitive — a main process parks on the final join while the
// workers run the dataflow — not a task-side one: a task body waiting on a
// future occupies a worker that the release chain may need (use SubmitAfter
// to express the dependency instead).
func (f *Future) Wait(p *vtime.Proc) {
	for f.pending > 0 {
		f.wq.Wait(p)
	}
}

// SubmitAfter submits a task released by successor counting over the given
// futures: the task's unresolved-input count is decremented as each future
// resolves and the task enqueues the moment the count reaches zero — the
// dependency-aware release of the dataflow engine, with no region keys and
// no Taskwait anywhere. Already-resolved futures (and a nil or empty list)
// contribute nothing, so the task may enqueue immediately.
func (rt *Runtime) SubmitAfter(p *vtime.Proc, label string, after []*Future, priority int, fn func(w *Worker)) *Task {
	if rt.closed {
		panic("ompss: submit after shutdown")
	}
	t := &Task{id: rt.nextID, label: label, fn: fn, priority: priority}
	rt.nextID++
	rt.pending++
	mTasksCreated.Inc()
	mTasksInFlight.Add(1)
	rt.tasks = append(rt.tasks, t)
	for _, f := range after {
		if f == nil || f.Done() {
			continue
		}
		if f.rt != rt {
			panic(fmt.Sprintf("ompss: future %q belongs to a different runtime", f.label))
		}
		t.npred++
		f.conts = append(f.conts, func(hp *vtime.Proc) {
			t.npred--
			if t.npred == 0 {
				rt.enqueue(hp, t)
			}
		})
	}
	if t.npred == 0 {
		rt.enqueue(p, t)
	}
	return t
}

// OnComplete registers a continuation on a task: it runs when the task
// completes, after its successors are released and the task has left the
// pending count. Continuations must not block. Combined with SubmitAfter
// this closes the loop between tasks and futures: a task resolves a
// future, the future releases tasks. Register before yielding to the
// runtime — once the task has completed the continuation would be lost,
// so OnComplete on a finished task panics.
func (rt *Runtime) OnComplete(t *Task, fn func(p *vtime.Proc)) {
	if t.done {
		panic(fmt.Sprintf("ompss: OnComplete on completed task %q", t.label))
	}
	t.conts = append(t.conts, fn)
}
