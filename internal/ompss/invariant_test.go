package ompss

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestModeString(t *testing.T) {
	cases := []struct {
		m    Mode
		want string
	}{
		{ModeIn, "ModeIn"},
		{ModeOut, "ModeOut"},
		{ModeInout, "ModeInout"},
		{Mode(9), "Mode(9)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(c.m), got, c.want)
		}
	}
}

// cyclicRuntime builds a runtime whose live-task graph contains a -> b -> a.
// The public Submit API cannot produce this (edges always point old -> new),
// so the tests corrupt the internal state directly.
func cyclicRuntime(rt *Runtime) {
	a := &Task{label: "a", npred: 1}
	b := &Task{label: "b", npred: 1}
	a.succs = []*Task{b}
	b.succs = []*Task{a}
	rt.tasks = append(rt.tasks, a, b)
}

func TestCheckCyclesDetectsCycle(t *testing.T) {
	rt := &Runtime{}
	cyclicRuntime(rt)
	err := rt.CheckCycles()
	if err == nil {
		t.Fatal("CheckCycles() = nil on a cyclic graph")
	}
	for _, want := range []string{"dependency cycle among 2 tasks", `"a" ->`, `"b" ->`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestCheckCyclesAcceptsChain(t *testing.T) {
	rt := &Runtime{}
	a := &Task{label: "a"}
	b := &Task{label: "b", npred: 1}
	c := &Task{label: "c", npred: 1, done: true} // completed tasks are ignored
	a.succs = []*Task{b}
	b.succs = []*Task{c}
	c.succs = []*Task{a} // only cyclic through a done task
	rt.tasks = append(rt.tasks, a, b, c)
	if err := rt.CheckCycles(); err != nil {
		t.Fatalf("CheckCycles() = %v on an acyclic live graph", err)
	}
}

// TestStrictTaskwaitPanicsOnCycle: in strict mode a Taskwait that would
// block forever on a cyclic graph becomes a structured engine error.
func TestStrictTaskwaitPanicsOnCycle(t *testing.T) {
	eng := vtime.NewEngine(nil)
	rt := New(eng, nil, []int{0})
	rt.Strict = true
	cyclicRuntime(rt)
	rt.pending = 2
	eng.Spawn("main", func(p *vtime.Proc) { rt.Taskwait(p) })
	err := eng.Run()
	if err == nil {
		t.Fatal("Run() = nil, want cycle error")
	}
	if !strings.Contains(err.Error(), "dependency cycle") {
		t.Errorf("error %q missing cycle report", err)
	}
}

// TestTaskwaitDeadlockNamesPendingTasks: a hung Taskwait names the stuck
// tasks and their unmet dependency counts in the deadlock dump.
func TestTaskwaitDeadlockNamesPendingTasks(t *testing.T) {
	eng := vtime.NewEngine(nil)
	rt := New(eng, nil, []int{0})
	stuck := &Task{label: "stuck", npred: 1}
	rt.tasks = append(rt.tasks, stuck)
	rt.pending = 1
	eng.Spawn("main", func(p *vtime.Proc) { rt.Taskwait(p) })
	err := eng.Run()
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want *vtime.DeadlockError", err)
	}
	if !strings.Contains(err.Error(), `"stuck" (1 unmet deps)`) {
		t.Errorf("dump %q does not name the stuck task", err)
	}
}

func TestPendingSummaryTruncates(t *testing.T) {
	rt := &Runtime{}
	if got := rt.pendingSummary(); got != "none" {
		t.Errorf("empty summary = %q, want none", got)
	}
	for i := 0; i < 12; i++ {
		rt.tasks = append(rt.tasks, &Task{label: "t", npred: 1})
	}
	got := rt.pendingSummary()
	if !strings.HasSuffix(got, ", ...") {
		t.Errorf("summary %q not truncated", got)
	}
	if n := strings.Count(got, `"t"`); n != 8 {
		t.Errorf("summary lists %d tasks, want 8", n)
	}
}

func TestCompactTasks(t *testing.T) {
	rt := &Runtime{}
	var live *Task
	for i := 0; i < 6; i++ {
		task := &Task{label: "t", done: i != 3}
		if i == 3 {
			live = task
		}
		rt.tasks = append(rt.tasks, task)
		if task.done {
			rt.nDone++
		}
	}
	rt.compactTasks()
	if len(rt.tasks) != 1 || rt.tasks[0] != live || rt.nDone != 0 {
		t.Errorf("compactTasks left %d tasks (nDone %d), want the 1 live task", len(rt.tasks), rt.nDone)
	}
}
