package ompss

import (
	"repro/internal/metrics"
)

// Live telemetry for the task runtime. All runtimes in the process feed the
// same families; tasks_in_flight and ready_depth are therefore aggregate
// gauges across live runtimes.
var (
	mTasksCreated   = metrics.Default().Counter("fftx_ompss_tasks_created_total", "tasks submitted")
	mTasksCompleted = metrics.Default().Counter("fftx_ompss_tasks_completed_total", "tasks completed")
	mTasksInFlight  = metrics.Default().Gauge("fftx_ompss_tasks_in_flight", "submitted but not yet completed tasks")
	mReadyDepth     = metrics.Default().Gauge("fftx_ompss_ready_depth", "tasks ready to run but not yet claimed")
	mTaskwaitStalls = metrics.Default().Counter("fftx_ompss_taskwait_stalls_total", "Taskwait calls that had to block")
	mTaskwaitSec    = metrics.Default().Counter("fftx_ompss_taskwait_stall_seconds_total", "virtual seconds blocked in Taskwait")
	mTaskDuration   = metrics.Default().Histogram("fftx_ompss_task_duration_seconds", "task body execution time", nil)

	// Shared with the mpi layer (same family names, deduplicated by the
	// registry): per-phase compute seconds and instructions for live IPC.
	mPhaseSec   = metrics.Default().CounterVec("fftx_phase_compute_seconds_total", "virtual seconds of useful compute, by phase", "phase")
	mPhaseInstr = metrics.Default().CounterVec("fftx_phase_instructions_total", "instructions executed, by phase", "phase")
)

// phaseMetrics caches the handles of one compute phase.
type phaseMetrics struct {
	seconds, instr *metrics.Counter
}

func (rt *Runtime) phaseMetricsFor(phase string) *phaseMetrics {
	if rt.phaseCache == nil {
		rt.phaseCache = map[string]*phaseMetrics{}
	}
	m := rt.phaseCache[phase]
	if m == nil {
		m = &phaseMetrics{seconds: mPhaseSec.With(phase), instr: mPhaseInstr.With(phase)}
		rt.phaseCache[phase] = m
	}
	return m
}
