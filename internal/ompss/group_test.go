package ompss

import (
	"testing"

	"repro/internal/knl"
	"repro/internal/vtime"
)

func TestGroupWaitBlocksUntilChildrenDone(t *testing.T) {
	var parentEnd float64
	runTasks(t, 3, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			g := rt.NewGroup()
			for i := 0; i < 4; i++ {
				rt.SubmitInGroup(w.Proc, g, "child", nil, 0, func(w2 *Worker) {
					w2.Proc.Sleep(1)
				})
			}
			g.Wait(w)
			parentEnd = w.Proc.Now()
		})
	})
	// 4 children of 1s on 3 workers (parent helps): 2 rounds.
	if parentEnd < 1 || parentEnd > 2.5 {
		t.Fatalf("parent resumed at %v", parentEnd)
	}
}

func TestGroupWaitExecutesTasksInline(t *testing.T) {
	// Single worker: the parent occupies the only worker, so the children
	// can only run if Wait executes them inline.
	var done int
	runTasks(t, 1, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			g := rt.NewGroup()
			for i := 0; i < 3; i++ {
				rt.SubmitInGroup(w.Proc, g, "child", nil, 0, func(w2 *Worker) {
					done++
				})
			}
			g.Wait(w)
		})
	})
	if done != 3 {
		t.Fatalf("children executed: %d", done)
	}
}

func TestTaskLoopInGroupCoversRange(t *testing.T) {
	covered := make([]bool, 17)
	runTasks(t, 2, func(p *vtime.Proc, rt *Runtime) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			g := rt.NewGroup()
			rt.TaskLoopInGroup(w.Proc, g, "loop", 17, 4, func(w2 *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i] = true
				}
			})
			g.Wait(w)
			for i, c := range covered {
				if !c {
					t.Errorf("index %d not covered before Wait returned", i)
				}
			}
		})
	})
}

func TestNestedGroupsParallelizeCompute(t *testing.T) {
	// One parent task splits compute over 4 workers via a group: elapsed
	// must approach 1/4 of serial under the unit-rate machine.
	params := knl.DefaultParams()
	node := knl.NewNode(params, 4)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0, 1, 2, 3})
	rt.Overhead = 0
	var elapsed float64
	eng.Spawn("main", func(p *vtime.Proc) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			start := w.Proc.Now()
			g := rt.NewGroup()
			rt.TaskLoopInGroup(w.Proc, g, "chunks", 8, 2, func(w2 *Worker, lo, hi int) {
				w2.Compute("c", knl.ClassVector, 1e6*float64(hi-lo))
			})
			g.Wait(w)
			elapsed = w.Proc.Now() - start
		})
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Serial would take 8e6 instructions at ~base rate; 4 workers should be
	// within ~2.2x of the perfect quarter (contention slows all four).
	serial := 8e6 / (params.Freq * params.BaseIPC[knl.ClassVector])
	if elapsed > serial/1.8 {
		t.Fatalf("group loop elapsed %v, serial %v — no parallel speedup", elapsed, serial)
	}
}

func TestPromiseGatesDependentTask(t *testing.T) {
	var taskStart float64
	runTasks(t, 2, func(p *vtime.Proc, rt *Runtime) {
		pr := rt.NewPromise("comm", "region")
		rt.Submit(p, "consumer", []Dep{In("region")}, 0, func(w *Worker) {
			taskStart = w.Proc.Now()
		})
		// An unrelated process fulfills the promise at t=3.
		p.Engine().Spawn("fulfiller", func(fp *vtime.Proc) {
			fp.Sleep(3)
			pr.Fulfill(fp)
		})
	})
	if taskStart < 3 {
		t.Fatalf("consumer started at %v before promise fulfilled at 3", taskStart)
	}
}

func TestPromiseDoubleFulfillPanics(t *testing.T) {
	params := knl.DefaultParams()
	node := knl.NewNode(params, 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	var recovered bool
	eng.Spawn("main", func(p *vtime.Proc) {
		pr := rt.NewPromise("x", "r")
		pr.Fulfill(p)
		func() {
			defer func() { recovered = recover() != nil }()
			pr.Fulfill(p)
		}()
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("double fulfill did not panic")
	}
}

func TestPromiseOnBusyRegionPanics(t *testing.T) {
	params := knl.DefaultParams()
	node := knl.NewNode(params, 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	var recovered bool
	eng.Spawn("main", func(p *vtime.Proc) {
		pr := rt.NewPromise("first", "r")
		func() {
			defer func() { recovered = recover() != nil }()
			rt.NewPromise("second", "r")
		}()
		pr.Fulfill(p)
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("promise on busy region did not panic")
	}
}

func TestTaskwaitIncludesPromises(t *testing.T) {
	var waited float64
	params := knl.DefaultParams()
	node := knl.NewNode(params, 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		pr := rt.NewPromise("comm", "r")
		p.Engine().Spawn("fulfiller", func(fp *vtime.Proc) {
			fp.Sleep(5)
			pr.Fulfill(fp)
		})
		rt.Taskwait(p)
		waited = p.Now()
		rt.Shutdown(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 5 {
		t.Fatalf("taskwait returned at %v, want 5", waited)
	}
}

// Regression: a worker waiting on a nested group must NOT pick up arbitrary
// ready tasks (it could block inside an unrelated MPI call and deadlock the
// rank); it may only execute its group's children. The scenario: the only
// other ready task blocks forever — Wait must still return once the
// children (run inline) finish.
func TestGroupWaitDoesNotStealUnrelatedTasks(t *testing.T) {
	var gate vtime.WaitQueue
	var waitReturned bool
	params := knl.DefaultParams()
	node := knl.NewNode(params, 1)
	eng := vtime.NewEngine(node)
	rt := New(eng, nil, []int{0})
	rt.Overhead = 0
	eng.Spawn("main", func(p *vtime.Proc) {
		rt.Submit(p, "parent", nil, 0, func(w *Worker) {
			g := rt.NewGroup()
			// An unrelated "poison" task that would block forever.
			rt.Submit(w.Proc, "poison", nil, 10, func(w2 *Worker) {
				gate.Wait(w2.Proc)
			})
			rt.SubmitInGroup(w.Proc, g, "child", nil, 0, func(w2 *Worker) {})
			g.Wait(w)
			waitReturned = true
			// Unblock the poison task so the run can finish.
			rt.Submit(w.Proc, "release", nil, 0, func(w2 *Worker) {})
		})
		rt.Taskwait(p)
		rt.Shutdown(p)
	})
	// The poison task still blocks at the end; release it from a second
	// process once the parent observed completion.
	eng.Spawn("releaser", func(p *vtime.Proc) {
		for !waitReturned {
			p.Sleep(0.1)
		}
		gate.WakeAll(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !waitReturned {
		t.Fatal("group wait never returned")
	}
}
