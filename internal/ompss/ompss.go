// Package ompss is a task-based parallel runtime in the spirit of
// OmpSs/Nanos++, executing inside the vtime discrete-event simulator. Tasks
// are annotated with in/out/inout dependencies over region keys; the runtime
// builds the dependency graph dynamically at submission time and schedules
// ready tasks onto worker threads (hardware lanes of the KNL node model).
//
// This is the substrate for the paper's two optimizations: the per-step
// task version (Figure 4: every FFT step is a task connected by flow
// dependencies, overlapping communication with computation) and the
// per-iteration task version (Figure 5: every FFT is one task, scheduled
// asynchronously to de-synchronize compute phases and soften resource
// contention).
package ompss

import (
	"fmt"
	"strings"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Mode is a dependency direction.
type Mode int

const (
	// ModeIn is a read dependency: the task runs after the region's last
	// writer.
	ModeIn Mode = iota
	// ModeOut is a write dependency: the task runs after the region's
	// last writer and all readers since (anti-dependency).
	ModeOut
	// ModeInout combines both.
	ModeInout
)

// String returns the enumerator name (e.g. "ModeInout"), for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "ModeIn"
	case ModeOut:
		return "ModeOut"
	case ModeInout:
		return "ModeInout"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Dep is one dependency clause: a direction over a comparable region key.
type Dep struct {
	Region any
	Mode   Mode
}

// In returns a read dependency on the region.
func In(region any) Dep { return Dep{Region: region, Mode: ModeIn} }

// Out returns a write dependency on the region.
func Out(region any) Dep { return Dep{Region: region, Mode: ModeOut} }

// Inout returns a read-write dependency on the region.
func Inout(region any) Dep { return Dep{Region: region, Mode: ModeInout} }

// Worker is the execution context handed to a task body: the simulated
// process of the worker thread and its hardware lane.
type Worker struct {
	Proc *vtime.Proc
	Lane int
	rt   *Runtime
}

// Compute runs a compute phase of the given class and instruction count on
// the worker's lane, recording a trace interval and the per-phase
// compute-time and instruction counters (the live-IPC inputs).
func (w *Worker) Compute(phase string, class knl.Class, instr float64) {
	start := w.Proc.Now()
	w.Proc.Compute(vtime.Job{Work: instr, Class: int(class), Lane: w.Lane})
	end := w.Proc.Now()
	if w.rt.sink != nil && end > start {
		w.rt.sink.Record(trace.Interval{
			Lane: w.Lane, Start: start, End: end,
			Kind: trace.KindCompute, Phase: phase, Class: int(class), Instr: instr,
		})
	}
	pm := w.rt.phaseMetricsFor(phase)
	pm.seconds.Add(end - start)
	pm.instr.Add(instr)
}

// Task is one schedulable unit of work.
type Task struct {
	id       int
	label    string
	fn       func(w *Worker)
	priority int
	npred    int
	succs    []*Task
	conts    []func(p *vtime.Proc) // run at completion, after successor release
	done     bool
	group    *Group // non-nil for group members
}

type regionState struct {
	lastWriter *Task
	readers    []*Task // readers since the last write
}

// Runtime is one task runtime instance (one per MPI rank in the kernel).
type Runtime struct {
	eng     *vtime.Engine
	sink    trace.Sink
	lanes   []int
	ready   []*Task
	readyWQ vtime.WaitQueue
	regions map[any]*regionState
	nextID  int
	pending int
	waitWQ  vtime.WaitQueue
	closed  bool
	tasks   []*Task // all live (not yet completed) tasks, for diagnostics
	nDone   int     // completed tasks still in the tasks slice

	// Overhead is the runtime cost charged per task execution (dependency
	// upkeep and scheduling in Nanos++), recorded as trace.KindRuntime.
	Overhead float64

	// TaskwaitSec accumulates the virtual time this runtime's processes
	// spent blocked in Taskwait — the per-runtime barrier-stall account
	// (the package metric mTaskwaitSec aggregates across runtimes). The
	// dataflow engine never calls Taskwait, so this stays zero there.
	TaskwaitSec float64

	// Strict enables runtime invariant checks: Taskwait verifies the
	// dependency graph is acyclic before blocking. The public Submit API
	// cannot create cycles (edges always point from older to newer tasks),
	// so a detected cycle means runtime-internal state corruption.
	Strict bool

	// phaseCache holds resolved per-phase metric handles (engine is serial,
	// no locking needed).
	phaseCache map[string]*phaseMetrics
}

// New creates a runtime whose workers run on the given hardware lanes. The
// worker processes are spawned immediately; call Shutdown (usually after a
// final Taskwait) to let them exit. sink receives trace intervals and may
// be nil.
func New(eng *vtime.Engine, sink trace.Sink, lanes []int) *Runtime {
	rt := &Runtime{
		eng:      eng,
		sink:     sink,
		lanes:    lanes,
		regions:  map[any]*regionState{},
		Overhead: 3e-6,
	}
	rt.readyWQ.Describe = func() string {
		return fmt.Sprintf("ompss: worker idle (no ready tasks; %d tasks pending)", rt.pending)
	}
	rt.waitWQ.Describe = func() string {
		return fmt.Sprintf("ompss: Taskwait (%d tasks pending: %s)", rt.pending, rt.pendingSummary())
	}
	for i, lane := range lanes {
		lane := lane
		eng.Spawn(fmt.Sprintf("worker%d.lane%d", i, lane), func(p *vtime.Proc) {
			rt.workerLoop(&Worker{Proc: p, Lane: lane, rt: rt})
		})
	}
	return rt
}

// Workers returns the number of worker threads.
func (rt *Runtime) Workers() int { return len(rt.lanes) }

// Submit creates a task with the given dependencies and priority (higher
// runs first among ready tasks) and enqueues it once its predecessors
// complete. It must be called from a simulated process.
func (rt *Runtime) Submit(p *vtime.Proc, label string, deps []Dep, priority int, fn func(w *Worker)) *Task {
	if rt.closed {
		panic("ompss: submit after shutdown")
	}
	t := &Task{id: rt.nextID, label: label, fn: fn, priority: priority}
	rt.nextID++
	rt.pending++
	mTasksCreated.Inc()
	mTasksInFlight.Add(1)
	rt.tasks = append(rt.tasks, t)
	for _, d := range deps {
		rs := rt.regions[d.Region]
		if rs == nil {
			rs = &regionState{}
			rt.regions[d.Region] = rs
		}
		switch d.Mode {
		case ModeIn:
			rt.addEdge(rs.lastWriter, t)
			rs.readers = append(rs.readers, t)
		case ModeOut, ModeInout:
			rt.addEdge(rs.lastWriter, t)
			for _, r := range rs.readers {
				rt.addEdge(r, t)
			}
			rs.lastWriter = t
			rs.readers = nil
		}
	}
	if t.npred == 0 {
		rt.enqueue(p, t)
	}
	return t
}

func (rt *Runtime) addEdge(from, to *Task) {
	if from == nil || from.done || from == to {
		return
	}
	// A task may already depend on from via another region; duplicate
	// edges are harmless but inflate npred bookkeeping, so dedupe cheaply.
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
	to.npred++
}

func (rt *Runtime) enqueue(p *vtime.Proc, t *Task) {
	rt.ready = append(rt.ready, t)
	mReadyDepth.Add(1)
	rt.readyWQ.WakeOne(p)
}

// popReadyInGroup removes the best ready task belonging to the group.
func (rt *Runtime) popReadyInGroup(g *Group) *Task {
	best := -1
	for i, t := range rt.ready {
		if t.group != g {
			continue
		}
		if best < 0 || t.priority > rt.ready[best].priority ||
			(t.priority == rt.ready[best].priority && t.id < rt.ready[best].id) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := rt.ready[best]
	rt.ready = append(rt.ready[:best], rt.ready[best+1:]...)
	mReadyDepth.Add(-1)
	return t
}

// popReady removes the best ready task: highest priority, then lowest id.
func (rt *Runtime) popReady() *Task {
	best := -1
	for i, t := range rt.ready {
		if best < 0 || t.priority > rt.ready[best].priority ||
			(t.priority == rt.ready[best].priority && t.id < rt.ready[best].id) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := rt.ready[best]
	rt.ready = append(rt.ready[:best], rt.ready[best+1:]...)
	mReadyDepth.Add(-1)
	return t
}

// runTask executes a claimed task's body, observing its virtual duration,
// and completes it. Shared by the worker loop and inline group execution.
func (rt *Runtime) runTask(w *Worker, t *Task) {
	start := w.Proc.Now()
	t.fn(w)
	mTaskDuration.Observe(w.Proc.Now() - start)
	rt.complete(w.Proc, t)
}

func (rt *Runtime) workerLoop(w *Worker) {
	for {
		idleStart := w.Proc.Now()
		for len(rt.ready) == 0 {
			if rt.closed {
				return
			}
			rt.readyWQ.Wait(w.Proc)
		}
		t := rt.popReady()
		if rt.sink != nil && w.Proc.Now() > idleStart {
			trace.Recorder{S: rt.sink, Lane: w.Lane}.Idle(idleStart, w.Proc.Now())
		}
		if rt.Overhead > 0 {
			ovStart := w.Proc.Now()
			w.Proc.Sleep(rt.Overhead)
			if rt.sink != nil {
				trace.Recorder{S: rt.sink, Lane: w.Lane}.Runtime(ovStart, w.Proc.Now())
			}
		}
		rt.runTask(w, t)
	}
}

func (rt *Runtime) complete(p *vtime.Proc, t *Task) {
	t.done = true
	mTasksCompleted.Inc()
	mTasksInFlight.Add(-1)
	for _, s := range t.succs {
		s.npred--
		if s.npred == 0 {
			rt.enqueue(p, s)
		}
	}
	rt.pending--
	rt.nDone++
	if rt.nDone > len(rt.tasks)/2 {
		rt.compactTasks()
	}
	if rt.pending == 0 {
		rt.waitWQ.WakeAll(p)
	}
	// Task continuations run last, after this task has left the pending
	// count: a continuation that resolves the schedule's final join must
	// observe pending == 0, so a waiter released by the join can proceed
	// straight to Shutdown.
	conts := t.conts
	t.conts = nil
	for _, fn := range conts {
		fn(p)
	}
}

// compactTasks drops completed tasks from the live-task list (amortized
// O(1) per completion via the half-full trigger in complete).
func (rt *Runtime) compactTasks() {
	live := rt.tasks[:0]
	for _, t := range rt.tasks {
		if !t.done {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(rt.tasks); i++ {
		rt.tasks[i] = nil
	}
	rt.tasks = live
	rt.nDone = 0
}

// pendingSummary renders the not-yet-completed tasks with their unmet
// predecessor counts, for deadlock reports. Long lists are truncated.
func (rt *Runtime) pendingSummary() string {
	var sb strings.Builder
	n := 0
	for _, t := range rt.tasks {
		if t.done {
			continue
		}
		if n == 8 {
			sb.WriteString(", ...")
			break
		}
		if n > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%q (%d unmet deps)", t.label, t.npred)
		n++
	}
	if n == 0 {
		return "none"
	}
	return sb.String()
}

// CheckCycles verifies the live dependency graph is acyclic and returns a
// descriptive error naming the tasks on a cycle otherwise. The public Submit
// API cannot create cycles (edges always point from older to newer tasks),
// so a non-nil result indicates corrupted runtime state. In strict mode
// Taskwait runs this check before blocking.
func (rt *Runtime) CheckCycles() error {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := map[*Task]int{}
	var path []*Task
	var visit func(t *Task) []*Task
	visit = func(t *Task) []*Task {
		color[t] = grey
		path = append(path, t)
		for _, s := range t.succs {
			if s.done {
				continue
			}
			switch color[s] {
			case white:
				if cyc := visit(s); cyc != nil {
					return cyc
				}
			case grey:
				for i, p := range path {
					if p == s {
						return path[i:]
					}
				}
			}
		}
		color[t] = black
		path = path[:len(path)-1]
		return nil
	}
	for _, t := range rt.tasks {
		if t.done || color[t] != white {
			continue
		}
		if cyc := visit(t); cyc != nil {
			var sb strings.Builder
			for _, c := range cyc {
				fmt.Fprintf(&sb, "%q -> ", c.label)
			}
			fmt.Fprintf(&sb, "%q", cyc[0].label)
			return fmt.Errorf("ompss: dependency cycle among %d tasks: %s", len(cyc), sb.String())
		}
	}
	return nil
}

// Taskwait blocks the calling process until every submitted task has
// completed. In strict mode it first verifies the dependency graph is
// acyclic, panicking with the cycle (which the vtime engine converts into a
// structured Run error) instead of blocking forever.
func (rt *Runtime) Taskwait(p *vtime.Proc) {
	if rt.Strict && rt.pending > 0 {
		if err := rt.CheckCycles(); err != nil {
			panic(err.Error())
		}
	}
	if rt.pending > 0 {
		mTaskwaitStalls.Inc()
		start := p.Now()
		for rt.pending > 0 {
			rt.waitWQ.Wait(p)
		}
		stall := p.Now() - start
		mTaskwaitSec.Add(stall)
		rt.TaskwaitSec += stall
	}
}

// Shutdown lets the worker processes exit once the ready queue drains. Call
// after the final Taskwait.
func (rt *Runtime) Shutdown(p *vtime.Proc) {
	if rt.pending > 0 {
		panic("ompss: shutdown with pending tasks")
	}
	rt.closed = true
	rt.readyWQ.WakeAll(p)
}

// TaskLoop submits one task per grain-sized chunk of [0,n), mirroring the
// OmpSs taskloop construct with a grain size; body receives the chunk
// bounds. The chunks share no dependencies.
func (rt *Runtime) TaskLoop(p *vtime.Proc, label string, n, grain int, body func(w *Worker, lo, hi int)) {
	if grain <= 0 {
		grain = 1
	}
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		rt.Submit(p, fmt.Sprintf("%s[%d:%d]", label, lo, hi), nil, 0, func(w *Worker) {
			body(w, lo, hi)
		})
	}
}
