package vtime_test

import (
	"fmt"

	"repro/internal/vtime"
)

func ExampleEngine() {
	// Two processes coordinate through a barrier in virtual time.
	eng := vtime.NewEngine(nil)
	b := vtime.NewBarrier(2)
	eng.Spawn("fast", func(p *vtime.Proc) {
		p.Sleep(1)
		b.Await(p)
		fmt.Printf("fast released at t=%v\n", p.Now())
	})
	eng.Spawn("slow", func(p *vtime.Proc) {
		p.Sleep(5)
		b.Await(p)
		fmt.Printf("slow released at t=%v\n", p.Now())
	})
	if err := eng.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// slow released at t=5
	// fast released at t=5
}

// halves is a processor-sharing machine with capacity 1 work-unit/second.
type halves struct{}

func (halves) Rates(jobs []*vtime.ActiveJob) {
	for _, j := range jobs {
		j.Rate = 1 / float64(len(jobs))
	}
}

func ExampleProc_Compute() {
	// Two equal jobs on a shared machine each run at half rate.
	eng := vtime.NewEngine(halves{})
	for i := 0; i < 2; i++ {
		eng.Spawn("worker", func(p *vtime.Proc) {
			p.Compute(vtime.Job{Work: 1})
			fmt.Printf("done at t=%v\n", p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// done at t=2
	// done at t=2
}
