package vtime

import (
	"strings"

	"repro/internal/metrics"
)

// Live telemetry for the engine. Families live in the process-wide default
// registry so every engine in the process feeds the same /metrics view.
// Per-proc series are labeled by role — the proc name with digits stripped
// ("rank7" -> "rank", "commthread.r3.1" -> "commthread.r.") — which keeps
// label cardinality bounded regardless of rank count.
var (
	mSteps         = metrics.Default().Counter("fftx_vtime_steps_total", "engine dispatch steps executed")
	mJobsCompleted = metrics.Default().Counter("fftx_vtime_jobs_completed_total", "compute jobs driven to completion")
	mProcsSpawned  = metrics.Default().CounterVec("fftx_vtime_procs_spawned_total", "processes created, by role", "proc")
	mBlockSeconds  = metrics.Default().CounterVec("fftx_vtime_block_seconds_total", "virtual seconds spent blocked, by role", "proc")
	mRunSeconds    = metrics.Default().CounterVec("fftx_vtime_compute_seconds_total", "virtual seconds spent in compute jobs, by role", "proc")
	mProcsBlocked  = metrics.Default().Gauge("fftx_vtime_procs_blocked", "processes currently blocked across live engines")
	mBlockedFrac   = metrics.Default().Gauge("fftx_vtime_blocked_fraction_max", "high-water blocked/alive fraction (1.0 means deadlock)")
	mDeadlocks     = metrics.Default().Counter("fftx_vtime_deadlocks_total", "deadlocks detected")
)

// procRole collapses a proc name to its role by dropping digits.
func procRole(name string) string {
	if !strings.ContainsAny(name, "0123456789") {
		return name
	}
	var b strings.Builder
	for _, r := range name {
		if r < '0' || r > '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
