package vtime

import "fmt"

// Synchronization primitives for simulated processes. Because exactly one
// process runs at a time, none of these need host-level locking; they only
// coordinate virtual-time blocking and waking. All waits are FIFO and
// therefore deterministic.

// WaitQueue is a FIFO list of blocked processes. It is the building block
// for the higher-level primitives.
type WaitQueue struct {
	waiters []*Proc
	// Describe, when set, labels what waiters of this queue are blocked on;
	// it is rendered lazily into deadlock reports.
	Describe func() string
}

// Wait blocks the calling process until another process calls WakeOne or
// WakeAll.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	if q.Describe != nil {
		p.BlockOn(q.Describe)
	} else {
		p.Block()
	}
}

// WakeOne wakes the longest-waiting process, if any. It reports whether a
// process was woken. The caller must be a running process.
func (q *WaitQueue) WakeOne(p *Proc) bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	p.Wake(w)
	return true
}

// WakeAll wakes every waiting process in FIFO order.
func (q *WaitQueue) WakeAll(p *Proc) {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		p.Wake(w)
	}
}

// Len returns the number of blocked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Semaphore is a counting semaphore for simulated processes.
type Semaphore struct {
	count int
	wq    WaitQueue
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(n int) *Semaphore { return &Semaphore{count: n} }

// SetDescribe labels what acquirers of this semaphore block on, for
// deadlock reports.
func (s *Semaphore) SetDescribe(describe func() string) { s.wq.Describe = describe }

// Acquire takes one unit, blocking while the count is zero.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.wq.Wait(p)
	}
	s.count--
}

// Release returns one unit and wakes a waiter if any.
func (s *Semaphore) Release(p *Proc) {
	s.count++
	s.wq.WakeOne(p)
}

// Queue is an unbounded FIFO channel between simulated processes.
type Queue[T any] struct {
	items  []T
	wq     WaitQueue
	closed bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Push appends an item and wakes one waiting consumer.
func (q *Queue[T]) Push(p *Proc, v T) {
	if q.closed {
		panic("vtime: push to closed queue")
	}
	q.items = append(q.items, v)
	q.wq.WakeOne(p)
}

// Pop removes the oldest item, blocking while the queue is empty. The second
// result is false if the queue was closed and drained.
func (q *Queue[T]) Pop(p *Proc) (T, bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.wq.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Close marks the queue closed and wakes all blocked consumers, which then
// observe the closed state once the queue drains.
func (q *Queue[T]) Close(p *Proc) {
	q.closed = true
	q.wq.WakeAll(p)
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Barrier blocks n processes until all have arrived, then releases them.
type Barrier struct {
	n       int
	arrived int
	wq      WaitQueue
}

// NewBarrier returns a barrier for n processes.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.wq.Describe = func() string {
		return fmt.Sprintf("vtime: barrier (%d of %d arrived)", b.arrived, b.n)
	}
	return b
}

// Await blocks until n processes have called Await, then all proceed. The
// barrier resets for reuse. It returns true for the last arriver.
func (b *Barrier) Await(p *Proc) bool {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.wq.WakeAll(p)
		return true
	}
	b.wq.Wait(p)
	return false
}
