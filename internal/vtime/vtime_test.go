package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine(nil)
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(2.5)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4.0 {
		t.Fatalf("end = %v, want 4.0", end)
	}
	if e.Now() != 4.0 {
		t.Fatalf("engine now = %v, want 4.0", e.Now())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(nil)
		var order []string
		for _, nm := range []string{"a", "b", "c"} {
			nm := nm
			e.Spawn(nm, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(1)
					order = append(order, nm)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic order on trial %d: %v vs %v", trial, got, first)
			}
		}
	}
}

func TestComputeUnitMachine(t *testing.T) {
	e := NewEngine(nil)
	var d Time
	e.Spawn("w", func(p *Proc) {
		d = p.Compute(Job{Work: 10})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("duration %v, want 10", d)
	}
}

// halfShare splits a fixed capacity of 2 work-units/sec evenly among active
// jobs, the canonical processor-sharing machine.
type halfShare struct{}

func (halfShare) Rates(jobs []*ActiveJob) {
	r := 2.0 / float64(len(jobs))
	for _, j := range jobs {
		j.Rate = r
	}
}

func TestProcessorSharingRates(t *testing.T) {
	// Two jobs of work 2 each on a capacity-2 machine: alone each takes 1s,
	// together they share and both finish at t=2.
	e := NewEngine(halfShare{})
	var endA, endB Time
	e.Spawn("a", func(p *Proc) {
		p.Compute(Job{Work: 2})
		endA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Compute(Job{Work: 2})
		endB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(endA-2) > 1e-12 || math.Abs(endB-2) > 1e-12 {
		t.Fatalf("ends %v %v, want 2 2", endA, endB)
	}
}

func TestProcessorSharingStaggered(t *testing.T) {
	// a starts work 3 at t=0 (rate 2 alone). b starts work 1 at t=1.
	// At t=1 a has 1 unit left; both share rate 1 each. Both finish at t=2.
	e := NewEngine(halfShare{})
	var endA, endB Time
	e.Spawn("a", func(p *Proc) {
		p.Compute(Job{Work: 3})
		endA = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		p.Compute(Job{Work: 1})
		endB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(endA-2) > 1e-12 {
		t.Fatalf("endA = %v, want 2", endA)
	}
	if math.Abs(endB-2) > 1e-12 {
		t.Fatalf("endB = %v, want 2", endB)
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine(nil)
	var wq WaitQueue
	var woken Time
	e.Spawn("waiter", func(p *Proc) {
		wq.Wait(p)
		woken = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		wq.WakeOne(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken at %v, want 3", woken)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(nil)
	var wq WaitQueue
	e.Spawn("stuck", func(p *Proc) {
		wq.Wait(p)
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine(nil)
	const n = 5
	b := NewBarrier(n)
	ends := make([]Time, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(float64(i)) // staggered arrivals
			b.Await(p)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range ends {
		if got != n-1 {
			t.Fatalf("proc %d released at %v, want %v", i, got, n-1)
		}
	}
}

func TestBarrierReuse(t *testing.T) {
	e := NewEngine(nil)
	const n, rounds = 3, 4
	b := NewBarrier(n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(float64(i + 1))
				b.Await(p)
				counts[i]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Fatalf("proc %d completed %d rounds, want %d", i, c, rounds)
		}
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(nil)
	s := NewSemaphore(2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("p", func(p *Proc) {
			s.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(1)
			active--
			s.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxActive)
	}
	if e.Now() != 3 {
		t.Fatalf("finished at %v, want 3", e.Now())
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(nil)
	q := NewQueue[int]()
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			q.Push(p, i)
		}
		q.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(nil)
	var childEnd Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(2)
		p.Engine().Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childEnd = c.Now()
		})
		p.Sleep(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 3 {
		t.Fatalf("child ended at %v, want 3", childEnd)
	}
}

func TestZeroWorkComputeIsFree(t *testing.T) {
	e := NewEngine(nil)
	e.Spawn("w", func(p *Proc) {
		if d := p.Compute(Job{Work: 0}); d != 0 {
			t.Errorf("zero work took %v", d)
		}
		if p.Now() != 0 {
			t.Errorf("clock moved to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for the unit machine, total elapsed time of a sequence of jobs
// equals the sum of their works, independent of how the work is split.
func TestPropertyComputeAdditive(t *testing.T) {
	f := func(parts []uint8) bool {
		if len(parts) == 0 || len(parts) > 50 {
			return true
		}
		e := NewEngine(nil)
		var total float64
		e.Spawn("w", func(p *Proc) {
			for _, w := range parts {
				p.Compute(Job{Work: float64(w)})
				total += float64(w)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return math.Abs(e.Now()-total) < 1e-9*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with processor sharing at fixed capacity, total completion time
// of simultaneously started jobs equals total work divided by capacity
// (work-conserving scheduler).
func TestPropertyWorkConserving(t *testing.T) {
	f := func(works []uint8) bool {
		var jobs []float64
		for _, w := range works {
			if w > 0 {
				jobs = append(jobs, float64(w))
			}
		}
		if len(jobs) == 0 || len(jobs) > 20 {
			return true
		}
		e := NewEngine(halfShare{})
		var total float64
		for _, w := range jobs {
			w := w
			total += w
			e.Spawn("w", func(p *Proc) {
				p.Compute(Job{Work: w})
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		// All jobs started at t=0 and the machine always delivers 2
		// units/sec while any job is active, so the last completion is at
		// total/2.
		return math.Abs(e.Now()-total/2) < 1e-9*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine(nil)
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Compute(Job{Work: 1})
			p.Sleep(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ProcsSpawned != 3 {
		t.Fatalf("spawned %d", st.ProcsSpawned)
	}
	if st.JobsCompleted != 3 {
		t.Fatalf("jobs %d", st.JobsCompleted)
	}
	if st.Steps == 0 || st.RateUpdates == 0 {
		t.Fatalf("stats %+v", st)
	}
}
