package vtime

import (
	"errors"
	"strings"
	"testing"
)

// TestProcPanicBecomesError: a panic inside a simulated process must not
// kill the test binary or hang the engine; Run converts it into an error
// naming the process.
func TestProcPanicBecomesError(t *testing.T) {
	e := NewEngine(nil)
	e.Spawn("victim", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	e.Spawn("bystander", func(p *Proc) { p.Sleep(0.5) })
	err := e.Run()
	if err == nil {
		t.Fatal("Run() = nil, want panic error")
	}
	for _, want := range []string{"victim", "panicked", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestBlockOnDescriptionInDump: the closure handed to BlockOn supplies the
// waits-on line of the structured deadlock dump, evaluated lazily at dump
// time.
func TestBlockOnDescriptionInDump(t *testing.T) {
	e := NewEngine(nil)
	e.Spawn("estragon", func(p *Proc) {
		p.Sleep(2)
		p.BlockOn(func() string { return "waiting for godot" })
	})
	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want *DeadlockError", err)
	}
	if de.At != 2 {
		t.Errorf("deadlock at t=%g, want 2", de.At)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked %d, want 1", len(de.Blocked))
	}
	b := de.Blocked[0]
	if b.Name != "estragon" || b.Since != 2 || b.WaitingOn != "waiting for godot" {
		t.Errorf("dump = %+v, want estragon since t=2 waiting for godot", b)
	}
}

// TestBareBlockStillDiagnosable: Block without a description falls back to
// a placeholder rather than an empty waits-on line.
func TestBareBlockStillDiagnosable(t *testing.T) {
	e := NewEngine(nil)
	e.Spawn("mute", func(p *Proc) { p.Block() })
	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want *DeadlockError", err)
	}
	if !strings.Contains(de.Blocked[0].WaitingOn, "unknown") {
		t.Errorf("WaitingOn = %q, want unknown placeholder", de.Blocked[0].WaitingOn)
	}
}
