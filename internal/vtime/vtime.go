// Package vtime implements a deterministic discrete-event simulation (DES)
// engine with cooperative processes and processor-sharing compute resources.
//
// Simulated processes are goroutines that run one at a time under the control
// of the engine, so shared simulation state needs no locking and every run is
// fully deterministic. A process advances virtual time by sleeping, by
// blocking on a synchronization primitive until another process wakes it, or
// by executing a compute Job on a Machine. Jobs progress at rates set by the
// Machine, and the rates are re-evaluated whenever the set of active jobs
// changes, which models processor sharing and resource contention.
//
// The engine is the substrate for the simulated MPI library
// (internal/mpi), the OmpSs-like task runtime (internal/ompss) and the KNL
// node model (internal/knl).
package vtime

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Time is virtual time in seconds.
type Time = float64

// Job describes a unit of compute work submitted to a Machine.
// Work is in abstract units (the KNL model uses instructions); Class and
// Lane let the Machine decide the execution rate.
type Job struct {
	Work  float64 // total work units, must be >= 0
	Class int     // machine-defined intensity class
	Lane  int     // hardware lane (thread slot) executing the job
}

// ActiveJob is a Job in flight. The Machine sets Rate (work units per
// second); the engine decrements Remaining as time advances.
type ActiveJob struct {
	Job
	Remaining float64
	Rate      float64
	proc      *Proc
	seq       uint64
}

// Machine decides execution rates for the set of jobs that are currently
// active. It is called whenever the set changes (a job starts or finishes).
// Implementations must set Rate > 0 for every job.
type Machine interface {
	Rates(jobs []*ActiveJob)
}

// UnitMachine is the trivial Machine: every job runs at rate 1 regardless of
// contention. It is useful for tests and for cost-model-free simulations.
type UnitMachine struct{}

// Rates implements Machine.
func (UnitMachine) Rates(jobs []*ActiveJob) {
	for _, j := range jobs {
		j.Rate = 1
	}
}

type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateComputing
	stateDone
)

// Proc is a simulated process. All methods must be called from within the
// process's own body function.
type Proc struct {
	eng       *Engine
	name      string
	id        int
	state     procState
	resume    chan struct{}
	seq       uint64 // sequence number for deterministic tie-breaking
	blockedAt Time
	waitDesc  func() string // what the process waits on, for deadlock dumps
	panicVal  any           // recovered panic of the process body, if any

	// Telemetry handles resolved once at Spawn so the hot paths below pay
	// only an atomic add, never a label lookup.
	blockCtr *metrics.Counter
	runCtr   *metrics.Counter
}

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) push(e event) { *h = append(*h, e); h.up(len(*h) - 1) }
func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}
func (h eventHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h.Swap(i, p)
		i = p
	}
}
func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.Less(l, m) {
			m = l
		}
		if r < n && h.Less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.Swap(i, m)
		i = m
	}
}

// Engine is the discrete-event simulator. Create with NewEngine, spawn
// processes with Spawn, then call Run.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	jobs     []*ActiveJob
	machine  Machine
	procs    []*Proc
	yieldCh  chan *Proc
	nAlive   int
	nBlocked int
	started  bool
	err      error
	stats    Stats
}

// Stats reports engine activity counters, for tests and diagnostics.
type Stats struct {
	// Steps is the number of dispatch steps executed.
	Steps uint64
	// JobsCompleted is the number of compute jobs driven to completion.
	JobsCompleted uint64
	// ProcsSpawned is the number of processes ever created.
	ProcsSpawned uint64
	// RateUpdates counts Machine.Rates invocations.
	RateUpdates uint64
}

// Stats returns a snapshot of the engine's activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// NewEngine returns an engine using the given Machine for compute jobs.
// A nil machine defaults to UnitMachine.
func NewEngine(m Machine) *Engine {
	if m == nil {
		m = UnitMachine{}
	}
	return &Engine{
		machine: m,
		yieldCh: make(chan *Proc),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Spawn registers a new process executing fn. Processes spawned before Run
// start at time 0; processes spawned by a running process start at the
// current virtual time, after the spawning process yields.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	role := procRole(name)
	p := &Proc{
		eng:      e,
		name:     name,
		id:       len(e.procs),
		state:    stateNew,
		resume:   make(chan struct{}),
		blockCtr: mBlockSeconds.With(role),
		runCtr:   mRunSeconds.With(role),
	}
	e.stats.ProcsSpawned++
	mProcsSpawned.With(role).Inc()
	e.procs = append(e.procs, p)
	e.nAlive++
	e.schedule(p, e.now)
	go func() {
		// A panic inside a process body would otherwise kill its goroutine
		// while the engine waits on yieldCh forever — a silent host-level
		// hang. Convert it into a structured engine error instead.
		defer func() {
			if r := recover(); r != nil {
				p.panicVal = r
				p.state = stateDone
				e.yieldCh <- p
			}
		}()
		<-p.resume // wait for first dispatch
		fn(p)
		p.state = stateDone
		e.yieldCh <- p
	}()
	if e.started {
		// fn starts when the event fires; nothing more to do here.
		_ = p
	}
	return p
}

func (e *Engine) schedule(p *Proc, at Time) {
	e.seq++
	p.state = stateRunnable
	e.events.push(event{at: at, seq: e.seq, proc: p})
}

// wake moves a blocked process to runnable at the current time. It is used
// by synchronization primitives. Waking an already-runnable or running
// process panics: that indicates a bug in the caller.
func (e *Engine) wake(p *Proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("vtime: wake of proc %q in state %d", p.name, p.state))
	}
	e.nBlocked--
	mProcsBlocked.Add(-1)
	p.blockCtr.Add(e.now - p.blockedAt)
	e.schedule(p, e.now)
}

// Run executes the simulation until every process has finished. It returns
// a *DeadlockError on deadlock (blocked processes remain but no event or
// job can make progress) and an error describing the panic if a process
// body panics.
func (e *Engine) Run() error {
	e.started = true
	for e.nAlive > 0 {
		if err := e.step(); err != nil {
			e.err = err
			return err
		}
	}
	return nil
}

// MustRun is Run for callers without an error path: a deadlock or process
// panic becomes a host panic carrying the structured report.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// step advances the simulation by one event: it finds the next wake-up or
// job completion, advances the clock, and dispatches exactly one process.
func (e *Engine) step() error {
	// Earliest job completion.
	jobAt := Time(math.Inf(1))
	var jobDone *ActiveJob
	for _, j := range e.jobs {
		t := e.now + j.Remaining/j.Rate
		if t < jobAt || (t == jobAt && jobDone != nil && j.seq < jobDone.seq) {
			jobAt = t
			jobDone = j
		}
	}
	evAt := Time(math.Inf(1))
	if len(e.events) > 0 {
		evAt = e.events[0].at
	}
	if math.IsInf(evAt, 1) && math.IsInf(jobAt, 1) {
		return e.deadlockError()
	}

	e.stats.Steps++
	mSteps.Inc()
	var next *Proc
	if jobAt < evAt {
		e.advanceJobs(jobAt - e.now)
		e.now = jobAt
		e.removeJob(jobDone)
		e.stats.JobsCompleted++
		mJobsCompleted.Inc()
		jobDone.proc.state = stateRunnable
		next = jobDone.proc
	} else {
		ev := e.events.pop()
		e.advanceJobs(ev.at - e.now)
		e.now = ev.at
		next = ev.proc
	}

	next.state = stateRunning
	next.resume <- struct{}{}
	q := <-e.yieldCh
	if q != next {
		panic("vtime: yield from unexpected process")
	}
	if q.state == stateDone {
		e.nAlive--
		if q.panicVal != nil {
			return fmt.Errorf("vtime: process %q panicked at t=%g: %v", q.name, e.now, q.panicVal)
		}
	}
	return nil
}

func (e *Engine) advanceJobs(dt Time) {
	if dt < 0 {
		panic("vtime: time went backwards")
	}
	if dt == 0 {
		return
	}
	for _, j := range e.jobs {
		j.Remaining -= j.Rate * dt
		if j.Remaining < 0 {
			// Floating-point slop only; clamp.
			j.Remaining = 0
		}
	}
}

func (e *Engine) addJob(j *ActiveJob) {
	e.jobs = append(e.jobs, j)
	e.refreshRates()
}

func (e *Engine) removeJob(j *ActiveJob) {
	for i, k := range e.jobs {
		if k == j {
			e.jobs = append(e.jobs[:i], e.jobs[i+1:]...)
			e.refreshRates()
			return
		}
	}
	panic("vtime: removeJob: job not active")
}

func (e *Engine) refreshRates() {
	if len(e.jobs) == 0 {
		return
	}
	e.stats.RateUpdates++
	e.machine.Rates(e.jobs)
	for _, j := range e.jobs {
		if !(j.Rate > 0) || math.IsInf(j.Rate, 0) || math.IsNaN(j.Rate) {
			panic(fmt.Sprintf("vtime: machine set invalid rate %v for lane %d class %d", j.Rate, j.Lane, j.Class))
		}
	}
}

// BlockedProc describes one blocked process in a deadlock report.
type BlockedProc struct {
	Name      string
	ID        int
	Since     Time   // virtual time the process blocked at
	WaitingOn string // what the process waits on, if known
}

// DeadlockError is returned by Run when the event queue drains while
// processes are still blocked. Instead of a bare process list it carries a
// structured dump of every blocked process — who it is, since when it has
// been blocked and what it is waiting on — so mismatched collectives and
// dependency stalls are diagnosable from the error alone.
type DeadlockError struct {
	At      Time
	Blocked []BlockedProc
}

// Error renders the structured per-process dump.
func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vtime: deadlock at t=%g: %d blocked processes:", e.At, len(e.Blocked))
	for _, b := range e.Blocked {
		fmt.Fprintf(&sb, "\n  %s (id %d, blocked since t=%g): %s", b.Name, b.ID, b.Since, b.WaitingOn)
	}
	return sb.String()
}

func (e *Engine) deadlockError() error {
	mDeadlocks.Inc()
	de := &DeadlockError{At: e.now}
	for _, p := range e.procs {
		if p.state != stateBlocked {
			continue
		}
		what := "unknown (Block without a wait description)"
		if p.waitDesc != nil {
			what = p.waitDesc()
		}
		de.Blocked = append(de.Blocked, BlockedProc{
			Name: p.name, ID: p.id, Since: p.blockedAt, WaitingOn: what,
		})
	}
	sort.Slice(de.Blocked, func(i, j int) bool { return de.Blocked[i].Name < de.Blocked[j].Name })
	return de
}

// ActiveJobs returns the jobs currently in flight. Intended for Machine
// implementations and tests.
func (e *Engine) ActiveJobs() []*ActiveJob { return e.jobs }

// --- Proc API (called from inside process bodies) ---

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's engine-unique id.
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// yield hands control back to the engine and waits to be resumed.
func (p *Proc) yield() {
	p.eng.yieldCh <- p
	<-p.resume
}

// Sleep advances the process's clock by d seconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("vtime: negative sleep")
	}
	p.eng.schedule(p, p.eng.now+d)
	p.yield()
	p.state = stateRunning
}

// Yield reschedules the process at the current time, after all processes
// already runnable at this time.
func (p *Proc) Yield() { p.Sleep(0) }

// Block suspends the process until another process wakes it via Wake.
func (p *Proc) Block() {
	p.state = stateBlocked
	p.blockedAt = p.eng.now
	p.eng.nBlocked++
	mProcsBlocked.Add(1)
	// Deadlock near-miss gauge: the high-water fraction of live processes
	// simultaneously blocked. 1.0 would be a full deadlock.
	if p.eng.nAlive > 0 {
		mBlockedFrac.SetMax(float64(p.eng.nBlocked) / float64(p.eng.nAlive))
	}
	p.yield()
	p.state = stateRunning
	p.waitDesc = nil
}

// BlockOn is Block with a description of what the process is waiting on.
// The closure is evaluated lazily, only if the process appears in a
// deadlock report, so it may render live state (e.g. which collective
// participants have arrived so far).
func (p *Proc) BlockOn(describe func() string) {
	p.waitDesc = describe
	p.Block()
}

// Wake makes a blocked process runnable at the current virtual time.
// It must be called from a running process (or before Run).
func (p *Proc) Wake(other *Proc) {
	p.eng.wake(other)
}

// Compute executes a compute job and blocks until it completes under the
// engine's Machine. Zero-work jobs complete immediately without consulting
// the machine. It returns the virtual-time duration the job took.
func (p *Proc) Compute(job Job) Time {
	if job.Work < 0 {
		panic("vtime: negative work")
	}
	if job.Work == 0 {
		return 0
	}
	start := p.eng.now
	p.eng.seq++
	aj := &ActiveJob{Job: job, Remaining: job.Work, proc: p, seq: p.eng.seq}
	p.eng.addJob(aj)
	p.state = stateComputing
	p.yield()
	p.state = stateRunning
	d := p.eng.now - start
	p.runCtr.Add(d)
	return d
}
