// Package mpi is an in-process message-passing library executing inside the
// vtime discrete-event simulator. It provides the MPI surface the FFTXlib
// kernel needs — communicators, sub-communicator splits, point-to-point
// messages and the collectives (Barrier, Bcast, Reduce, Allreduce,
// Gather(v), Allgather(v), Scatter(v), Alltoall(v)) — with real data
// movement between rank buffers and virtual-time costs from the KNL node
// model.
//
// Ranks (and, in MPI+tasks mode, the task-runtime worker threads that issue
// MPI calls on a rank's behalf) are simulated processes; each MPI call is
// split into a synchronization part (waiting for the other participants,
// recorded as trace.KindMPISync) and a transfer part (the data movement,
// recorded as trace.KindMPITransfer), which is exactly the decomposition the
// POP efficiency model of Tables I/II needs.
//
// Collective calls carry an explicit matching tag so that multiple
// collectives on the same communicator can be in flight concurrently from
// different task threads (the per-band Alltoalls of the task-based engines);
// calls with the same (communicator, operation, tag) match across ranks in
// call order.
package mpi

import (
	"fmt"
	"sort"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// World is one simulated MPI job: a fixed set of ranks on one node.
type World struct {
	Eng  *vtime.Engine
	Node knl.Fabric
	// Sink receives the trace intervals of MPI calls and compute phases.
	// May be nil. A *trace.Trace accumulates everything; a trace.RingSink
	// bounds memory; trace.Tee fans out to several.
	Sink           trace.Sink
	Size           int
	ThreadsPerRank int
	// Strict enables the runtime invariant checks: cross-rank shape
	// validation of collectives and detection of concurrent same-tag
	// collectives. Violations panic inside the simulated process, which the
	// vtime engine converts into a structured Run error. Set it before
	// spawning processes.
	Strict bool

	rendezvous map[rvKey]*rendezvous
	callSeq    map[seqKey]int
	p2p        map[p2pKey]*p2pQueue
	commSeq    int
	asyncSeq   int // helper-process counter for asynchronous collectives
	inComm     int // lanes currently inside an MPI call, for bandwidth sharing
	// commOpCache and phaseCache hold resolved metric handles so hot paths
	// skip the registry's label lookup (the engine is serial, no locking).
	commOpCache map[commOpKey]*commOpMetrics
	phaseCache  map[string]*phaseMetrics
	// endpoints serialize the transfer part of concurrent MPI calls issued
	// by different threads of the same rank (the MPI_THREAD_MULTIPLE
	// endpoint lock). Single-threaded ranks never contend on it; in
	// MPI+tasks mode it staggers the completion of the per-band
	// collectives, which is one of the physical sources of the phase
	// de-synchronization visible in Figure 7 of the paper.
	endpoints []*vtime.Semaphore
}

// NewWorld creates a world of size ranks with threadsPerRank hardware lanes
// each. The fabric (a knl.Node or knl.Cluster) must have been created with
// size*threadsPerRank lanes. sink receives trace intervals and may be nil.
func NewWorld(eng *vtime.Engine, node knl.Fabric, sink trace.Sink, size, threadsPerRank int) *World {
	if threadsPerRank < 1 {
		threadsPerRank = 1
	}
	if node != nil && node.TotalLanes() != size*threadsPerRank {
		panic(fmt.Sprintf("mpi: fabric has %d lanes, world needs %d", node.TotalLanes(), size*threadsPerRank))
	}
	w := &World{
		Eng:            eng,
		Node:           node,
		Sink:           sink,
		Size:           size,
		ThreadsPerRank: threadsPerRank,
		rendezvous:     map[rvKey]*rendezvous{},
		callSeq:        map[seqKey]int{},
		p2p:            map[p2pKey]*p2pQueue{},
		endpoints:      make([]*vtime.Semaphore, size),
	}
	for r := range w.endpoints {
		r := r
		w.endpoints[r] = vtime.NewSemaphore(1)
		w.endpoints[r].SetDescribe(func() string {
			return fmt.Sprintf("mpi: endpoint lock of rank %d (another thread of the rank is transferring)", r)
		})
	}
	return w
}

// Lanes returns the total hardware lane count of the world.
func (w *World) Lanes() int { return w.Size * w.ThreadsPerRank }

// Lane returns the global lane index of a (rank, thread) pair.
func (w *World) Lane(rank, thread int) int { return rank*w.ThreadsPerRank + thread }

// Ctx identifies a calling thread: the simulated process, its MPI rank and
// its hardware lane. All MPI operations take a Ctx.
type Ctx struct {
	W    *World
	Proc *vtime.Proc
	Rank int
	Lane int
	// Silent suppresses trace recording for this context's MPI calls.
	// Communication-thread contexts (the asynchronous collectives) use it:
	// their wait and transfer time is hidden behind computation and must
	// not be attributed to a compute lane.
	Silent bool
}

// Spawn creates the simulated process for one (rank, thread) slot and runs
// fn on it with a ready Ctx.
func (w *World) Spawn(rank, thread int, fn func(ctx *Ctx)) {
	lane := w.Lane(rank, thread)
	name := fmt.Sprintf("rank%d.t%d", rank, thread)
	w.Eng.Spawn(name, func(p *vtime.Proc) {
		fn(&Ctx{W: w, Proc: p, Rank: rank, Lane: lane})
	})
}

// Compute runs a compute phase of the given KNL class and instruction count
// on the caller's lane, recording a trace interval and the per-phase
// compute-time and instruction counters (the live-IPC inputs).
func (ctx *Ctx) Compute(phase string, class knl.Class, instr float64) {
	start := ctx.Proc.Now()
	ctx.Proc.Compute(vtime.Job{Work: instr, Class: int(class), Lane: ctx.Lane})
	end := ctx.Proc.Now()
	if ctx.W.Sink != nil && end > start {
		ctx.W.Sink.Record(trace.Interval{
			Lane: ctx.Lane, Start: start, End: end,
			Kind: trace.KindCompute, Phase: phase, Class: int(class), Instr: instr,
		})
	}
	pm := ctx.W.phaseMetricsFor(phase)
	pm.seconds.Add(end - start)
	pm.instr.Add(instr)
}

// Comm is a communicator: an ordered subset of world ranks.
type Comm struct {
	w     *World
	id    string
	ranks []int       // world ranks, in communicator order
	index map[int]int // world rank -> comm rank
	span  int         // cached distinct-node count, 0 = not yet computed
}

// nodesSpanned returns the number of distinct nodes the communicator's
// ranks live on (cached after the first call).
func (c *Comm) nodesSpanned() int {
	if c.span == 0 {
		nodes := map[int]bool{}
		for _, r := range c.ranks {
			nodes[c.w.Node.LaneNode(c.w.Lane(r, 0))] = true
		}
		c.span = len(nodes)
	}
	return c.span
}

// CommWorld returns the communicator containing every rank.
func (w *World) CommWorld() *Comm {
	ranks := make([]int, w.Size)
	for i := range ranks {
		ranks[i] = i
	}
	return w.newComm("world", ranks)
}

func (w *World) newComm(id string, ranks []int) *Comm {
	c := &Comm{w: w, id: id, ranks: ranks, index: make(map[int]int, len(ranks))}
	for i, r := range ranks {
		if r < 0 || r >= w.Size {
			panic(fmt.Sprintf("mpi: comm %s contains rank %d outside world of size %d", id, r, w.Size))
		}
		if prev, dup := c.index[r]; dup {
			panic(fmt.Sprintf("mpi: comm %s contains rank %d twice (positions %d and %d)", id, r, prev, i))
		}
		c.index[r] = i
	}
	return c
}

// ID returns the communicator's unique identifier.
func (c *Comm) ID() string { return c.id }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Ranks returns the world ranks of the communicator in order.
func (c *Comm) Ranks() []int { return c.ranks }

// RankIn returns the communicator rank of the calling context. It panics if
// the caller is not a member.
func (c *Comm) RankIn(ctx *Ctx) int {
	r, ok := c.index[ctx.Rank]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", ctx.Rank, c.id))
	}
	return r
}

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// NewSubComm deterministically builds a sub-communicator from explicit world
// ranks. All members must create it with identical arguments (it performs no
// communication); the id must be unique per distinct group.
func (w *World) NewSubComm(id string, ranks []int) *Comm {
	return w.newComm(id, ranks)
}

// Split is the collective MPI_Comm_split: ranks passing the same color end
// up in the same new communicator, ordered by key (ties by world rank).
// Ranks passing a negative color receive nil.
func (c *Comm) Split(ctx *Ctx, tag int, color, key int) *Comm {
	type ck struct{ color, key, rank int }
	res := c.exchange(ctx, OpSplit, tag, ck{color, key, ctx.Rank},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 { return n.BcastTime(k, 64, lanes, span) },
		func(all []any) any {
			groups := map[int][]ck{}
			for _, v := range all {
				e := v.(ck)
				if e.color >= 0 {
					groups[e.color] = append(groups[e.color], e)
				}
			}
			out := map[int]*Comm{} // world rank -> comm
			colors := make([]int, 0, len(groups))
			for col := range groups {
				colors = append(colors, col)
			}
			sort.Ints(colors)
			c.w.commSeq++
			base := c.w.commSeq
			for _, col := range colors {
				g := groups[col]
				sort.Slice(g, func(i, j int) bool {
					if g[i].key != g[j].key {
						return g[i].key < g[j].key
					}
					return g[i].rank < g[j].rank
				})
				ranks := make([]int, len(g))
				for i, e := range g {
					ranks[i] = e.rank
				}
				nc := c.w.newComm(fmt.Sprintf("%s/s%d.c%d", c.id, base, col), ranks)
				for _, r := range ranks {
					out[r] = nc
				}
			}
			return out
		})
	m := res.(map[int]*Comm)
	return m[ctx.Rank]
}
