package mpi

import (
	"reflect"
	"testing"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func TestIAlltoallvOverlapsWithCompute(t *testing.T) {
	// Each rank posts an async alltoall, computes while it is in flight,
	// and then consumes the result. The compute must not wait for the
	// exchange; the callback must see the right data.
	const n = 4
	got := make([][][]int, n)
	computeEnd := make([]float64, n)
	commEnd := make([]float64, n)
	runWorld(t, n, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		send := make([][]int, n)
		for j := 0; j < n; j++ {
			send[j] = []int{ctx.Rank*10 + j}
		}
		doneCh := false
		IAlltoallv(ctx, c, 0, send, BytesInt, func(p *vtime.Proc, recv [][]int) {
			got[ctx.Rank] = recv
			commEnd[ctx.Rank] = p.Now()
			doneCh = true
		})
		ctx.Compute("work", knl.ClassVector, 1e9) // long compute, overlaps comm
		computeEnd[ctx.Rank] = ctx.Proc.Now()
		if !doneCh {
			t.Errorf("rank %d: comm not complete after long compute", ctx.Rank)
		}
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i][j][0] != j*10+i {
				t.Fatalf("recv[%d][%d] = %v", i, j, got[i][j])
			}
		}
		// The communication completed strictly before the compute did:
		// it was hidden.
		if commEnd[i] >= computeEnd[i] {
			t.Fatalf("rank %d: comm ended at %v, compute at %v — no overlap", i, commEnd[i], computeEnd[i])
		}
	}
}

func TestIAlltoallvSilentInTrace(t *testing.T) {
	_, tr := runWorld(t, 2, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		send := [][]float64{make([]float64, 100), make([]float64, 100)}
		fulfilled := false
		IAlltoallv(ctx, c, 0, send, BytesFloat64, func(p *vtime.Proc, _ [][]float64) {
			fulfilled = true
		})
		ctx.Compute("work", knl.ClassVector, 1e8)
		if !fulfilled {
			t.Error("async comm incomplete")
		}
	})
	for _, iv := range tr.Intervals {
		if iv.Kind == trace.KindMPISync || iv.Kind == trace.KindMPITransfer {
			t.Fatalf("async collective recorded on a lane: %+v", iv)
		}
	}
}

func TestICollectiveCostCompletes(t *testing.T) {
	ends := make([]float64, 3)
	runWorld(t, 3, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		ICollectiveCost(ctx, c, OpAlltoallv, 0, 1<<20, func(p *vtime.Proc) {
			ends[ctx.Rank] = p.Now()
		})
		ctx.Compute("work", knl.ClassVector, 1e9)
	})
	for r, e := range ends {
		if e <= 0 {
			t.Fatalf("rank %d: async cost collective never completed", r)
		}
	}
}

// Concurrent collectives from threads of the same rank serialize their
// transfers on the rank's MPI endpoint: with two tagged alltoalls in flight
// per rank, one of the two transfers must end strictly after the other.
func TestEndpointSerializesConcurrentTransfers(t *testing.T) {
	p := knl.DefaultParams()
	node := knl.NewNode(p, 4)
	eng := vtime.NewEngine(node)
	tr := trace.New(4, p.Freq)
	w := NewWorld(eng, node, tr, 2, 2)
	for r := 0; r < 2; r++ {
		for th := 0; th < 2; th++ {
			r, th := r, th
			w.Spawn(r, th, func(ctx *Ctx) {
				c := ctx.W.CommWorld()
				send := [][]float64{make([]float64, 50000), make([]float64, 50000)}
				Alltoallv(ctx, c, 100+th, send, BytesFloat64)
			})
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Collect per-lane transfer intervals of rank 0 (lanes 0 and 1).
	var xfers []trace.Interval
	for _, iv := range tr.Intervals {
		if iv.Kind == trace.KindMPITransfer && iv.Lane < 2 {
			xfers = append(xfers, iv)
		}
	}
	if len(xfers) != 2 {
		t.Fatalf("expected 2 transfers on rank 0, got %d", len(xfers))
	}
	a, b := xfers[0], xfers[1]
	if a.Start > b.Start {
		a, b = b, a
	}
	if b.Start < a.End-1e-15 {
		t.Fatalf("transfers overlap on one endpoint: [%g,%g] and [%g,%g]",
			a.Start, a.End, b.Start, b.End)
	}
}

func TestAsyncAndBlockingMixMatchByTag(t *testing.T) {
	// Rank 0 posts async, rank 1 calls blocking — same tag, must match.
	var asyncGot, blockGot [][]int
	runWorld(t, 2, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		send := [][]int{{ctx.Rank}, {ctx.Rank * 100}}
		if ctx.Rank == 0 {
			done := false
			IAlltoallv(ctx, c, 5, send, BytesInt, func(p *vtime.Proc, recv [][]int) {
				asyncGot = recv
				done = true
			})
			ctx.Compute("w", knl.ClassVector, 1e8)
			if !done {
				t.Error("async incomplete")
			}
		} else {
			blockGot = Alltoallv(ctx, c, 5, send, BytesInt)
		}
	})
	if !reflect.DeepEqual(asyncGot, [][]int{{0}, {1}}) {
		t.Fatalf("async got %v", asyncGot)
	}
	if !reflect.DeepEqual(blockGot, [][]int{{0}, {100}}) {
		t.Fatalf("blocking got %v", blockGot)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	var got []int
	runWorld(t, 2, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		if ctx.Rank == 0 {
			req := Isend(ctx, c, 1, 9, []int{1, 2, 3}, BytesInt)
			ctx.Compute("work", knl.ClassVector, 1e8) // overlaps the send
			req.Wait(ctx)
			if !req.Test() {
				t.Error("request not done after Wait")
			}
		} else {
			req := Irecv[int](ctx, c, 0, 9)
			ctx.Compute("work", knl.ClassVector, 1e8)
			got = req.Wait(ctx)
		}
	})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestWaitall(t *testing.T) {
	results := make([][]int, 3)
	runWorld(t, 4, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		if ctx.Rank == 0 {
			reqs := make([]*Request[int], 3)
			for r := 1; r <= 3; r++ {
				reqs[r-1] = Irecv[int](ctx, c, r, 0)
			}
			Waitall(ctx, reqs...)
			for i, r := range reqs {
				results[i] = r.data
			}
		} else {
			ctx.Proc.Sleep(float64(ctx.Rank)) // staggered sends
			Send(ctx, c, 0, 0, []int{ctx.Rank * 11}, BytesInt)
		}
	})
	for i, r := range results {
		if len(r) != 1 || r[0] != (i+1)*11 {
			t.Fatalf("results %v", results)
		}
	}
}

func TestSendrecvExchange(t *testing.T) {
	// Ring exchange among 4 ranks: everyone sends right, receives from left.
	got := make([]int, 4)
	runWorld(t, 4, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		dst := (ctx.Rank + 1) % 4
		src := (ctx.Rank + 3) % 4
		recv := Sendrecv(ctx, c, dst, 0, []int{ctx.Rank}, src, 0, BytesInt)
		got[ctx.Rank] = recv[0]
	})
	for r := 0; r < 4; r++ {
		if got[r] != (r+3)%4 {
			t.Fatalf("rank %d got %d", r, got[r])
		}
	}
}
