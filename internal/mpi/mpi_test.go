package mpi

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runWorld spawns size single-threaded ranks running fn and drives the
// simulation to completion.
func runWorld(t *testing.T, size int, fn func(ctx *Ctx)) (*World, *trace.Trace) {
	t.Helper()
	p := knl.DefaultParams()
	node := knl.NewNode(p, size)
	eng := vtime.NewEngine(node)
	tr := trace.New(size, p.Freq)
	w := NewWorld(eng, node, tr, size, 1)
	for r := 0; r < size; r++ {
		w.Spawn(r, 0, fn)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return w, tr
}

func TestBarrierSynchronizes(t *testing.T) {
	ends := make([]float64, 8)
	runWorld(t, 8, func(ctx *Ctx) {
		ctx.Proc.Sleep(float64(ctx.Rank)) // staggered arrivals
		ctx.W.CommWorld().Barrier(ctx, 0)
		ends[ctx.Rank] = ctx.Proc.Now()
	})
	for r, e := range ends {
		if e < 7 {
			t.Fatalf("rank %d left barrier at %v before last arrival at 7", r, e)
		}
		if math.Abs(e-ends[0]) > 1e-9 {
			t.Fatalf("ranks left barrier at different times: %v", ends)
		}
	}
}

func TestBcast(t *testing.T) {
	got := make([][]float64, 4)
	runWorld(t, 4, func(ctx *Ctx) {
		var data []float64
		if ctx.Rank == 2 {
			data = []float64{1, 2, 3}
		}
		got[ctx.Rank] = Bcast(ctx, ctx.W.CommWorld(), 0, 2, data, BytesFloat64)
	})
	for r, g := range got {
		if !reflect.DeepEqual(g, []float64{1, 2, 3}) {
			t.Fatalf("rank %d got %v", r, g)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	got := make([][]float64, 4)
	runWorld(t, 4, func(ctx *Ctx) {
		data := []float64{float64(ctx.Rank), 1}
		got[ctx.Rank] = ctx.W.CommWorld().Allreduce(ctx, 0, data, Sum)
	})
	want := []float64{0 + 1 + 2 + 3, 4}
	for r, g := range got {
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("rank %d got %v, want %v", r, g, want)
		}
	}
}

func TestReduceOnlyRoot(t *testing.T) {
	got := make([][]float64, 4)
	runWorld(t, 4, func(ctx *Ctx) {
		got[ctx.Rank] = ctx.W.CommWorld().Reduce(ctx, 0, 1, []float64{2}, Max)
	})
	for r, g := range got {
		if r == 1 {
			if !reflect.DeepEqual(g, []float64{2}) {
				t.Fatalf("root got %v", g)
			}
		} else if g != nil {
			t.Fatalf("non-root %d got %v", r, g)
		}
	}
}

func TestAlltoallvDataMovement(t *testing.T) {
	const n = 5
	got := make([][][]int, n)
	runWorld(t, n, func(ctx *Ctx) {
		send := make([][]int, n)
		for j := 0; j < n; j++ {
			send[j] = []int{ctx.Rank*100 + j}
		}
		got[ctx.Rank] = Alltoallv(ctx, ctx.W.CommWorld(), 0, send, BytesInt)
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := j*100 + i // rank j sent (j*100+i) to rank i
			if got[i][j][0] != want {
				t.Fatalf("recv[%d][%d] = %v, want %d", i, j, got[i][j], want)
			}
		}
	}
}

func TestAlltoallvUnevenCounts(t *testing.T) {
	const n = 3
	got := make([][][]float64, n)
	runWorld(t, n, func(ctx *Ctx) {
		send := make([][]float64, n)
		for j := 0; j < n; j++ {
			// rank i sends i+1 copies of value i*10+j to rank j
			for k := 0; k <= ctx.Rank; k++ {
				send[j] = append(send[j], float64(ctx.Rank*10+j))
			}
		}
		got[ctx.Rank] = Alltoallv(ctx, ctx.W.CommWorld(), 0, send, BytesFloat64)
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if len(got[i][j]) != j+1 {
				t.Fatalf("recv[%d][%d] has %d elems, want %d", i, j, len(got[i][j]), j+1)
			}
			if got[i][j][0] != float64(j*10+i) {
				t.Fatalf("recv[%d][%d][0] = %v", i, j, got[i][j][0])
			}
		}
	}
}

func TestAllgatherv(t *testing.T) {
	got := make([][][]int, 3)
	runWorld(t, 3, func(ctx *Ctx) {
		got[ctx.Rank] = Allgatherv(ctx, ctx.W.CommWorld(), 0, []int{ctx.Rank, ctx.Rank}, BytesInt)
	})
	for r := 0; r < 3; r++ {
		for j := 0; j < 3; j++ {
			if !reflect.DeepEqual(got[r][j], []int{j, j}) {
				t.Fatalf("rank %d slot %d = %v", r, j, got[r][j])
			}
		}
	}
}

func TestScatterv(t *testing.T) {
	got := make([][]int, 3)
	runWorld(t, 3, func(ctx *Ctx) {
		var send [][]int
		if ctx.Rank == 0 {
			send = [][]int{{10}, {11, 11}, {12}}
		}
		got[ctx.Rank] = Scatterv(ctx, ctx.W.CommWorld(), 0, 0, send, BytesInt)
	})
	if !reflect.DeepEqual(got[0], []int{10}) || !reflect.DeepEqual(got[1], []int{11, 11}) || !reflect.DeepEqual(got[2], []int{12}) {
		t.Fatalf("scatterv got %v", got)
	}
}

func TestSplitByParity(t *testing.T) {
	sizes := make([]int, 6)
	ranksIn := make([]int, 6)
	runWorld(t, 6, func(ctx *Ctx) {
		sub := ctx.W.CommWorld().Split(ctx, 0, ctx.Rank%2, ctx.Rank)
		sizes[ctx.Rank] = sub.Size()
		ranksIn[ctx.Rank] = sub.RankIn(ctx)
		// The sub-communicator must be usable for collectives.
		res := sub.Allreduce(ctx, 1, []float64{1}, Sum)
		if res[0] != 3 {
			t.Errorf("rank %d: sub allreduce = %v", ctx.Rank, res[0])
		}
	})
	for r := 0; r < 6; r++ {
		if sizes[r] != 3 {
			t.Fatalf("rank %d sub size = %d", r, sizes[r])
		}
		if ranksIn[r] != r/2 {
			t.Fatalf("rank %d sub rank = %d, want %d", r, ranksIn[r], r/2)
		}
	}
}

func TestSplitNegativeColorExcluded(t *testing.T) {
	runWorld(t, 4, func(ctx *Ctx) {
		color := 0
		if ctx.Rank == 3 {
			color = -1
		}
		sub := ctx.W.CommWorld().Split(ctx, 0, color, ctx.Rank)
		if ctx.Rank == 3 {
			if sub != nil {
				t.Errorf("excluded rank got comm %v", sub.ID())
			}
		} else if sub.Size() != 3 {
			t.Errorf("rank %d size %d", ctx.Rank, sub.Size())
		}
	})
}

func TestSendRecv(t *testing.T) {
	var got []int
	var recvAt float64
	runWorld(t, 2, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		if ctx.Rank == 0 {
			ctx.Proc.Sleep(2)
			Send(ctx, c, 1, 42, []int{7, 8, 9}, BytesInt)
		} else {
			got = Recv[int](ctx, c, 0, 42)
			recvAt = ctx.Proc.Now()
		}
	})
	if !reflect.DeepEqual(got, []int{7, 8, 9}) {
		t.Fatalf("recv got %v", got)
	}
	if recvAt < 2 {
		t.Fatalf("receive completed at %v before send at 2", recvAt)
	}
}

func TestSendRecvOrdering(t *testing.T) {
	var got []int
	runWorld(t, 2, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		if ctx.Rank == 0 {
			Send(ctx, c, 1, 0, []int{1}, BytesInt)
			Send(ctx, c, 1, 0, []int{2}, BytesInt)
		} else {
			a := Recv[int](ctx, c, 0, 0)
			b := Recv[int](ctx, c, 0, 0)
			got = append(a, b...)
		}
	})
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("messages reordered: %v", got)
	}
}

func TestConcurrentTaggedCollectives(t *testing.T) {
	// Two threads per rank issue Alltoalls on the same communicator with
	// different tags concurrently; matching must pair them by tag.
	p := knl.DefaultParams()
	node := knl.NewNode(p, 4)
	eng := vtime.NewEngine(node)
	w := NewWorld(eng, node, nil, 2, 2)
	results := make([][][]int, 4)
	for r := 0; r < 2; r++ {
		for th := 0; th < 2; th++ {
			r, th := r, th
			w.Spawn(r, th, func(ctx *Ctx) {
				c := ctx.W.CommWorld()
				if th == 1 {
					ctx.Proc.Sleep(0.5) // desynchronize the two threads
				}
				tag := 100 + th
				send := [][]int{{ctx.Rank*10 + tag}, {ctx.Rank*10 + tag}}
				results[ctx.Lane] = Alltoallv(ctx, c, tag, send, BytesInt)
			})
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for lane, res := range results {
		th := lane % 2
		tag := 100 + th
		for j := 0; j < 2; j++ {
			if res[j][0] != j*10+tag {
				t.Fatalf("lane %d recv[%d] = %v, want %d", lane, j, res[j], j*10+tag)
			}
		}
	}
}

func TestTraceRecordsSyncAndTransfer(t *testing.T) {
	_, tr := runWorld(t, 4, func(ctx *Ctx) {
		ctx.Proc.Sleep(float64(ctx.Rank))
		Alltoallv(ctx, ctx.W.CommWorld(), 0,
			[][]float64{make([]float64, 1000), make([]float64, 1000), make([]float64, 1000), make([]float64, 1000)},
			BytesFloat64)
	})
	sync := tr.TimeByKind(trace.KindMPISync)
	xfer := tr.TimeByKind(trace.KindMPITransfer)
	// Rank 0 arrived first: it waited ~3s. Rank 3 arrived last: ~0 wait.
	if sync[0] < 2.9 || sync[3] > 0.01 {
		t.Fatalf("sync times %v", sync)
	}
	for r, x := range xfer {
		if x <= 0 {
			t.Fatalf("rank %d transfer time %v", r, x)
		}
	}
}

func TestComputeRecordsTrace(t *testing.T) {
	_, tr := runWorld(t, 2, func(ctx *Ctx) {
		ctx.Compute("fft-z", knl.ClassStream, 1e6)
	})
	if got := tr.TotalInstr(); math.Abs(got-2e6) > 1 {
		t.Fatalf("total instr %v, want 2e6", got)
	}
	for _, iv := range tr.Intervals {
		if iv.Kind == trace.KindCompute && iv.Phase != "fft-z" {
			t.Fatalf("unexpected phase %q", iv.Phase)
		}
	}
}

func TestSequentialCollectivesSameTag(t *testing.T) {
	// Repeated barriers with the same tag must match generation by
	// generation even when ranks race ahead.
	counts := make([]int, 3)
	runWorld(t, 3, func(ctx *Ctx) {
		c := ctx.W.CommWorld()
		for i := 0; i < 10; i++ {
			c.Barrier(ctx, 0)
			counts[ctx.Rank]++
		}
	})
	for r, n := range counts {
		if n != 10 {
			t.Fatalf("rank %d completed %d barriers", r, n)
		}
	}
}

func TestCollectiveCost(t *testing.T) {
	var elapsed float64
	runWorld(t, 4, func(ctx *Ctx) {
		ctx.W.CommWorld().CollectiveCost(ctx, OpAlltoallv, 0, 1<<20)
		elapsed = ctx.Proc.Now()
	})
	if elapsed <= 0 {
		t.Fatal("cost-only collective charged no time")
	}
}

func TestReduceScatter(t *testing.T) {
	got := make([][]float64, 3)
	runWorld(t, 3, func(ctx *Ctx) {
		// Each rank contributes [r, r, r, r, r]; the sum is [3,3,3,3,3]*...
		data := []float64{1, 2, 3, 4, 5}
		got[ctx.Rank] = ctx.W.CommWorld().ReduceScatter(ctx, 0, data, Sum)
	})
	// Reduced vector = [3,6,9,12,15]; shares: rank0 [3,6], rank1 [9,12], rank2 [15].
	want := [][]float64{{3, 6}, {9, 12}, {15}}
	for r := range want {
		if !reflect.DeepEqual(got[r], want[r]) {
			t.Fatalf("rank %d got %v, want %v", r, got[r], want[r])
		}
	}
}

func TestScanInclusivePrefix(t *testing.T) {
	got := make([][]float64, 4)
	runWorld(t, 4, func(ctx *Ctx) {
		data := []float64{float64(ctx.Rank + 1)}
		got[ctx.Rank] = ctx.W.CommWorld().Scan(ctx, 0, data, Sum)
	})
	want := []float64{1, 3, 6, 10}
	for r := range want {
		if got[r][0] != want[r] {
			t.Fatalf("rank %d scan = %v, want %v", r, got[r][0], want[r])
		}
	}
}

// Property: Alltoallv is its own inverse permutation — applying it twice
// with transposed payloads returns every element home, for random sizes.
func TestPropertyAlltoallvTranspose(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		payload := make([][][]int, n) // [src][dst]
		for i := 0; i < n; i++ {
			payload[i] = make([][]int, n)
			for j := 0; j < n; j++ {
				sz := rng.Intn(4)
				for k := 0; k < sz; k++ {
					payload[i][j] = append(payload[i][j], i*1000+j*10+k)
				}
			}
		}
		roundtrip := make([][][]int, n)
		p := knl.DefaultParams()
		node := knl.NewNode(p, n)
		eng := vtime.NewEngine(node)
		w := NewWorld(eng, node, nil, n, 1)
		for r := 0; r < n; r++ {
			w.Spawn(r, 0, func(ctx *Ctx) {
				c := ctx.W.CommWorld()
				recv := Alltoallv(ctx, c, 0, payload[ctx.Rank], BytesInt)
				// Send everything back where it came from.
				back := Alltoallv(ctx, c, 1, recv, BytesInt)
				roundtrip[ctx.Rank] = back
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !reflect.DeepEqual(roundtrip[i][j], payload[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(Sum) equals the sequential sum for random vectors.
func TestPropertyAllreduceMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw, lenRaw uint8) bool {
		n := int(nRaw)%7 + 1
		l := int(lenRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([][]float64, n)
		want := make([]float64, l)
		for r := 0; r < n; r++ {
			data[r] = make([]float64, l)
			for i := range data[r] {
				data[r][i] = rng.NormFloat64()
				want[i] += data[r][i]
			}
		}
		got := make([][]float64, n)
		p := knl.DefaultParams()
		node := knl.NewNode(p, n)
		eng := vtime.NewEngine(node)
		w := NewWorld(eng, node, nil, n, 1)
		for r := 0; r < n; r++ {
			w.Spawn(r, 0, func(ctx *Ctx) {
				got[ctx.Rank] = ctx.W.CommWorld().Allreduce(ctx, 0, data[ctx.Rank], Sum)
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(got[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
