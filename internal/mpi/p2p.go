package mpi

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Point-to-point messaging with synchronous (rendezvous) semantics: Send
// blocks until the matching Recv is posted, then both sides pay the
// transfer time. Messages match on (communicator, source, destination, tag)
// in posting order.

type p2pKey struct {
	comm     string
	src, dst int // communicator ranks
	tag      int
}

type p2pMsg struct {
	data       any
	bytes      float64
	sender     *vtime.Proc
	senderLane int
	sentAt     float64
	readyAt    float64 // set when the pair has met
	done       bool
}

type p2pQueue struct {
	msgs  []*p2pMsg
	recvQ vtime.WaitQueue
}

func (w *World) p2pQueueFor(k p2pKey) *p2pQueue {
	q := w.p2p[k]
	if q == nil {
		q = &p2pQueue{}
		q.recvQ.Describe = func() string {
			return fmt.Sprintf("mpi: Recv from rank %d tag %d on comm %s: no matching Send posted", k.src, k.tag, k.comm)
		}
		w.p2p[k] = q
	}
	return q
}

// Send delivers data to communicator rank dst, blocking until the receiver
// posts the matching Recv and the transfer completes.
func Send[T any](ctx *Ctx, c *Comm, dst, tag int, data []T, elemBytes int) {
	w := c.w
	me := c.RankIn(ctx)
	q := w.p2pQueueFor(p2pKey{c.id, me, dst, tag})
	msg := &p2pMsg{
		data:       data,
		bytes:      float64(len(data) * elemBytes),
		sender:     ctx.Proc,
		senderLane: ctx.Lane,
		sentAt:     ctx.Proc.Now(),
	}
	q.msgs = append(q.msgs, msg)
	w.inComm++
	start := ctx.Proc.Now()
	q.recvQ.WakeOne(ctx.Proc) // a receiver may already be waiting
	// Block until the receiver marks the message done.
	for !msg.done {
		ctx.Proc.BlockOn(func() string {
			return fmt.Sprintf("mpi: Send to rank %d tag %d on comm %s: no matching Recv posted", dst, tag, c.id)
		})
	}
	w.inComm--
	end := ctx.Proc.Now()
	if w.Sink != nil && !ctx.Silent {
		trace.Recorder{S: w.Sink, Lane: ctx.Lane}.MPI(OpSend.Name(), c.id, tag, start, msg.readyAt, end)
	}
	com := w.metricsFor(c.id, OpSend)
	com.calls.Inc()
	com.bytes.Add(msg.bytes)
	com.callBytes.Observe(msg.bytes)
	if !ctx.Silent {
		com.sync.Add(msg.readyAt - start)
		com.xfer.Add(end - msg.readyAt)
	}
}

// Recv receives a message from communicator rank src, blocking until the
// matching Send is posted and the transfer completes.
func Recv[T any](ctx *Ctx, c *Comm, src, tag int) []T {
	w := c.w
	me := c.RankIn(ctx)
	q := w.p2pQueueFor(p2pKey{c.id, src, me, tag})
	w.inComm++
	start := ctx.Proc.Now()
	for len(q.msgs) == 0 {
		q.recvQ.Wait(ctx.Proc)
	}
	msg := q.msgs[0]
	q.msgs = q.msgs[1:]
	msg.readyAt = ctx.Proc.Now()
	var transfer float64
	if w.Node != nil {
		lanes := w.inComm
		if lanes > w.Size {
			lanes = w.Size
		}
		span := 1
		if w.Node.LaneNode(msg.senderLane) != w.Node.LaneNode(ctx.Lane) {
			span = 2
		}
		transfer = w.Node.P2PTime(msg.bytes, lanes, span)
	}
	if transfer > 0 {
		ctx.Proc.Sleep(transfer)
	}
	msg.done = true
	ctx.Proc.Wake(msg.sender)
	w.inComm--
	end := ctx.Proc.Now()
	if w.Sink != nil && !ctx.Silent {
		trace.Recorder{S: w.Sink, Lane: ctx.Lane}.MPI(OpRecv.Name(), c.id, tag, start, msg.readyAt, end)
	}
	com := w.metricsFor(c.id, OpRecv)
	com.calls.Inc()
	if !ctx.Silent {
		com.sync.Add(msg.readyAt - start)
		com.xfer.Add(end - msg.readyAt)
	}
	return msg.data.([]T)
}
