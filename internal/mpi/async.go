package mpi

import (
	"fmt"

	"repro/internal/vtime"
)

// Asynchronous collectives in the communication-thread style of
// Marjanović et al. ("Overlapping Communication and Computation by Using a
// Hybrid MPI/SMPSs Approach", ICS'10), the mechanism the paper's future
// work points to: the collective is carried out by a helper process acting
// on the rank's behalf, the posting thread returns immediately, and the
// caller's completion callback runs (on the helper process) once the
// exchange finishes — typically fulfilling an ompss dependency promise that
// releases the consuming compute task.
//
// The helper participates in the rendezvous exactly like a blocking call
// (including the per-rank endpoint serialization), but its wait and
// transfer time is not attributed to any compute lane.

// helperCtx clones the posting context for the communication thread.
func helperCtx(ctx *Ctx) *Ctx {
	return &Ctx{W: ctx.W, Rank: ctx.Rank, Lane: ctx.Lane, Silent: true}
}

// IAlltoallv posts an Alltoallv without blocking the caller. When the
// exchange completes, done runs on the helper process with the received
// chunks.
func IAlltoallv[T any](ctx *Ctx, c *Comm, tag int, send [][]T, elemBytes int, done func(p *vtime.Proc, recv [][]T)) {
	hc := helperCtx(ctx)
	ctx.W.asyncSeq++
	name := fmt.Sprintf("commthread.r%d.%d", ctx.Rank, ctx.W.asyncSeq)
	ctx.Proc.Engine().Spawn(name, func(p *vtime.Proc) {
		hc.Proc = p
		recv := Alltoallv(hc, c, tag, send, elemBytes)
		done(p, recv)
	})
}

// ICollectiveCost posts a data-free collective (the cost-mode counterpart
// of IAlltoallv) and runs done on completion.
func ICollectiveCost(ctx *Ctx, c *Comm, op Op, tag int, bytesPerRank float64, done func(p *vtime.Proc)) {
	hc := helperCtx(ctx)
	ctx.W.asyncSeq++
	name := fmt.Sprintf("commthread.r%d.%d", ctx.Rank, ctx.W.asyncSeq)
	ctx.Proc.Engine().Spawn(name, func(p *vtime.Proc) {
		hc.Proc = p
		c.CollectiveCost(hc, op, tag, bytesPerRank)
		done(p)
	})
}
