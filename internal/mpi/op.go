package mpi

import "fmt"

// Op identifies a collective (or point-to-point) operation. The matching
// layer keys rendezvous on (communicator, Op, tag), and runtime diagnostics
// print the enumerator name (OpAlltoallv) rather than a bare int.
type Op int

const (
	// OpBarrier is the Barrier collective.
	OpBarrier Op = iota
	// OpBcast is the broadcast collective.
	OpBcast
	// OpReduce is the rooted reduction.
	OpReduce
	// OpAllreduce is the all-ranks reduction.
	OpAllreduce
	// OpAllgatherv is the variable-size allgather.
	OpAllgatherv
	// OpScatterv is the variable-size scatter.
	OpScatterv
	// OpAlltoall is the equal-chunk all-to-all exchange.
	OpAlltoall
	// OpAlltoallv is the variable-size all-to-all exchange.
	OpAlltoallv
	// OpReduceScatter is the reduce + scatter combination.
	OpReduceScatter
	// OpScan is the inclusive prefix reduction.
	OpScan
	// OpSplit is the communicator split collective.
	OpSplit
	// OpSend is the point-to-point send.
	OpSend
	// OpRecv is the point-to-point receive.
	OpRecv

	opCount
)

var opStrings = [opCount]string{
	OpBarrier:       "OpBarrier",
	OpBcast:         "OpBcast",
	OpReduce:        "OpReduce",
	OpAllreduce:     "OpAllreduce",
	OpAllgatherv:    "OpAllgatherv",
	OpScatterv:      "OpScatterv",
	OpAlltoall:      "OpAlltoall",
	OpAlltoallv:     "OpAlltoallv",
	OpReduceScatter: "OpReduceScatter",
	OpScan:          "OpScan",
	OpSplit:         "OpSplit",
	OpSend:          "OpSend",
	OpRecv:          "OpRecv",
}

// opNames are the human/trace names; they match the strings historically
// recorded in traces, so saved traces stay comparable across versions.
var opNames = [opCount]string{
	OpBarrier:       "Barrier",
	OpBcast:         "Bcast",
	OpReduce:        "Reduce",
	OpAllreduce:     "Allreduce",
	OpAllgatherv:    "Allgatherv",
	OpScatterv:      "Scatterv",
	OpAlltoall:      "Alltoall",
	OpAlltoallv:     "Alltoallv",
	OpReduceScatter: "ReduceScatter",
	OpScan:          "Scan",
	OpSplit:         "split",
	OpSend:          "Send",
	OpRecv:          "Recv",
}

// String returns the enumerator name (e.g. "OpAlltoallv"), for diagnostics.
func (o Op) String() string {
	if o >= 0 && o < opCount {
		return opStrings[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Name returns the operation's trace name (e.g. "Alltoallv").
func (o Op) Name() string {
	if o >= 0 && o < opCount {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}
