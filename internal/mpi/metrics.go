package mpi

import (
	"repro/internal/knl"
	"repro/internal/metrics"
)

// Live telemetry for the MPI layer, keyed by (communicator, operation).
// Calls and bytes are counted once per collective instance (by the last
// arriver); sync and transfer seconds accumulate per non-Silent participant
// — the same attribution rule the trace uses, so a communication thread's
// hidden wait time never pollutes the compute-lane totals.
var (
	mCalls     = metrics.Default().CounterVec("fftx_mpi_calls_total", "collective instances completed", "comm", "op")
	mBytes     = metrics.Default().CounterVec("fftx_mpi_bytes_total", "bytes charged to the fabric model", "comm", "op")
	mSyncSec   = metrics.Default().CounterVec("fftx_mpi_sync_seconds_total", "virtual seconds waiting for participants", "comm", "op")
	mXferSec   = metrics.Default().CounterVec("fftx_mpi_transfer_seconds_total", "virtual seconds moving data", "comm", "op")
	mCallBytes = metrics.Default().HistogramVec("fftx_mpi_call_bytes", "bytes per collective instance",
		[]float64{1 << 6, 1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26}, "op")
)

// Per-phase compute telemetry: live IPC is instructions_total /
// (compute_seconds_total * core frequency). The ompss worker path feeds the
// same families (the registry deduplicates by name).
var (
	mPhaseSec   = metrics.Default().CounterVec("fftx_phase_compute_seconds_total", "virtual seconds of useful compute, by phase", "phase")
	mPhaseInstr = metrics.Default().CounterVec("fftx_phase_instructions_total", "instructions executed, by phase", "phase")
)

// phaseMetrics caches the handles of one compute phase.
type phaseMetrics struct {
	seconds, instr *metrics.Counter
}

func (w *World) phaseMetricsFor(phase string) *phaseMetrics {
	if w.phaseCache == nil {
		w.phaseCache = map[string]*phaseMetrics{}
	}
	m := w.phaseCache[phase]
	if m == nil {
		m = &phaseMetrics{seconds: mPhaseSec.With(phase), instr: mPhaseInstr.With(phase)}
		w.phaseCache[phase] = m
	}
	return m
}

// commOpMetrics caches the resolved series handles of one (comm, op) pair
// so the per-call hot path never touches the registry's label maps.
type commOpMetrics struct {
	calls, bytes, sync, xfer *metrics.Counter
	callBytes                *metrics.Histogram
}

type commOpKey struct {
	comm string
	op   Op
}

// metricsFor returns the cached handles for a (comm, op) pair. The engine
// runs one process at a time, so the map needs no locking.
func (w *World) metricsFor(comm string, op Op) *commOpMetrics {
	if w.commOpCache == nil {
		w.commOpCache = map[commOpKey]*commOpMetrics{}
	}
	k := commOpKey{comm, op}
	m := w.commOpCache[k]
	if m == nil {
		name := op.Name()
		m = &commOpMetrics{
			calls:     mCalls.With(comm, name),
			bytes:     mBytes.With(comm, name),
			sync:      mSyncSec.With(comm, name),
			xfer:      mXferSec.With(comm, name),
			callBytes: mCallBytes.With(name),
		}
		w.commOpCache[k] = m
	}
	return m
}

// meterFabric wraps a knl.Fabric to observe the byte volume a cost
// function charges. The recorded volume is the aggregate the fabric moves:
// k*bytesPerRank for an alltoall, the payload size for bcast/reduce/p2p.
type meterFabric struct {
	knl.Fabric
	bytes float64
}

func (m *meterFabric) AlltoallTime(k int, bytesPerRank float64, commLanes, nodesSpanned int) float64 {
	m.bytes += bytesPerRank * float64(k)
	return m.Fabric.AlltoallTime(k, bytesPerRank, commLanes, nodesSpanned)
}

func (m *meterFabric) BcastTime(k int, bytes float64, commLanes, nodesSpanned int) float64 {
	m.bytes += bytes
	return m.Fabric.BcastTime(k, bytes, commLanes, nodesSpanned)
}

func (m *meterFabric) ReduceTime(k int, bytes float64, commLanes, nodesSpanned int) float64 {
	m.bytes += bytes
	return m.Fabric.ReduceTime(k, bytes, commLanes, nodesSpanned)
}

func (m *meterFabric) P2PTime(bytes float64, commLanes, nodesSpanned int) float64 {
	m.bytes += bytes
	return m.Fabric.P2PTime(bytes, commLanes, nodesSpanned)
}
