package mpi

import (
	"fmt"

	"repro/internal/vtime"
)

// Nonblocking point-to-point (Isend/Irecv/Wait): the request is serviced by
// a communication helper process, so the posting thread continues
// immediately; Wait blocks until the operation completes. Matching follows
// the same (communicator, source, destination, tag) ordering as the
// blocking calls.

// Request tracks one outstanding nonblocking operation.
type Request[T any] struct {
	done bool
	data []T
	wq   vtime.WaitQueue
}

// Test reports whether the operation has completed.
func (r *Request[T]) Test() bool { return r.done }

// Wait blocks the calling context until the operation completes and returns
// the received data (nil for sends).
func (r *Request[T]) Wait(ctx *Ctx) []T {
	for !r.done {
		r.wq.Wait(ctx.Proc)
	}
	return r.data
}

func spawnHelper(ctx *Ctx, kind string, body func(hc *Ctx)) {
	hc := helperCtx(ctx)
	ctx.W.asyncSeq++
	name := fmt.Sprintf("%s.r%d.%d", kind, ctx.Rank, ctx.W.asyncSeq)
	ctx.Proc.Engine().Spawn(name, func(p *vtime.Proc) {
		hc.Proc = p
		body(hc)
	})
}

// Isend posts a nonblocking send of data to communicator rank dst.
func Isend[T any](ctx *Ctx, c *Comm, dst, tag int, data []T, elemBytes int) *Request[T] {
	req := &Request[T]{}
	spawnHelper(ctx, "isend", func(hc *Ctx) {
		Send(hc, c, dst, tag, data, elemBytes)
		req.done = true
		req.wq.WakeAll(hc.Proc)
	})
	return req
}

// Irecv posts a nonblocking receive from communicator rank src.
func Irecv[T any](ctx *Ctx, c *Comm, src, tag int) *Request[T] {
	req := &Request[T]{}
	spawnHelper(ctx, "irecv", func(hc *Ctx) {
		req.data = Recv[T](hc, c, src, tag)
		req.done = true
		req.wq.WakeAll(hc.Proc)
	})
	return req
}

// Waitall blocks until every request completes.
func Waitall[T any](ctx *Ctx, reqs ...*Request[T]) {
	for _, r := range reqs {
		r.Wait(ctx)
	}
}

// Sendrecv performs the combined send+receive (the classic exchange used by
// halo swaps): it posts the send nonblocking, performs the receive and then
// completes the send.
func Sendrecv[T any](ctx *Ctx, c *Comm, dst, sendTag int, data []T, src, recvTag int, elemBytes int) []T {
	sreq := Isend(ctx, c, dst, sendTag, data, elemBytes)
	recv := Recv[T](ctx, c, src, recvTag)
	sreq.Wait(ctx)
	return recv
}
