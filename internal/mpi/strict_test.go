package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/knl"
	"repro/internal/vtime"
)

// strictWorld builds a strict world without running it, so tests can spawn
// deliberately broken rank programs and inspect the engine error.
func strictWorld(size, threadsPerRank int) (*vtime.Engine, *World) {
	p := knl.DefaultParams()
	node := knl.NewNode(p, size*threadsPerRank)
	eng := vtime.NewEngine(node)
	w := NewWorld(eng, node, nil, size, threadsPerRank)
	w.Strict = true
	return eng, w
}

func mustContain(t *testing.T, msg string, subs ...string) {
	t.Helper()
	for _, s := range subs {
		if !strings.Contains(msg, s) {
			t.Errorf("error %q\n  missing %q", msg, s)
		}
	}
}

// TestMismatchedTagDeadlockReport is the headline failure mode: two ranks
// call the same collective with different tags. Instead of hanging, the run
// ends with a structured per-rank dump naming each blocked rank, the tag it
// used and which ranks its rendezvous is still missing.
func TestMismatchedTagDeadlockReport(t *testing.T) {
	eng, w := strictWorld(2, 1)
	w.Spawn(0, 0, func(ctx *Ctx) { ctx.W.CommWorld().Barrier(ctx, 1) })
	w.Spawn(1, 0, func(ctx *Ctx) { ctx.W.CommWorld().Barrier(ctx, 2) })
	err := eng.Run()
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want *vtime.DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked %d processes, want 2:\n%v", len(de.Blocked), err)
	}
	for _, b := range de.Blocked {
		if !strings.Contains(b.WaitingOn, "arrived 1/2") {
			t.Errorf("rank dump %q does not report arrival count", b.WaitingOn)
		}
	}
	mustContain(t, err.Error(),
		"rank0.t0", "rank1.t0",
		"OpBarrier tag 1", "OpBarrier tag 2",
		"missing ranks")
}

// TestAlltoallvChunkCountPanic: handing Alltoallv fewer chunks than the
// communicator has ranks is a structured error naming the offender, not a
// slice-index crash or a hang.
func TestAlltoallvChunkCountPanic(t *testing.T) {
	eng, w := strictWorld(2, 1)
	for r := 0; r < 2; r++ {
		w.Spawn(r, 0, func(ctx *Ctx) {
			Alltoallv(ctx, ctx.W.CommWorld(), 3, make([][]float64, 1), 8)
		})
	}
	err := eng.Run()
	if err == nil {
		t.Fatal("Run() = nil, want chunk-count error")
	}
	mustContain(t, err.Error(), "sends 1 chunks for comm of size 2")
}

// TestStrictAlltoallChunkMismatch: Alltoall requires equal chunks on every
// rank; strict mode cross-checks the gathered payloads and reports the
// per-rank sizes.
func TestStrictAlltoallChunkMismatch(t *testing.T) {
	eng, w := strictWorld(2, 1)
	for r := 0; r < 2; r++ {
		w.Spawn(r, 0, func(ctx *Ctx) {
			chunks := make([][]float64, 2)
			for j := range chunks {
				chunks[j] = make([]float64, ctx.Rank+1) // rank 0: 1 elem, rank 1: 2
			}
			Alltoall(ctx, ctx.W.CommWorld(), 4, chunks, 8)
		})
	}
	err := eng.Run()
	if err == nil {
		t.Fatal("Run() = nil, want chunk mismatch error")
	}
	mustContain(t, err.Error(),
		"chunk size mismatch across ranks",
		"rank 0: 1", "rank 1: 2")
}

// TestStrictConcurrentTagReuse: two threads of one rank posting the same
// (op, tag) concurrently would let generations cross-match across ranks;
// strict mode turns that into an immediate diagnostic.
func TestStrictConcurrentTagReuse(t *testing.T) {
	eng, w := strictWorld(2, 2)
	w.Spawn(0, 0, func(ctx *Ctx) { ctx.W.CommWorld().Barrier(ctx, 5) })
	w.Spawn(0, 1, func(ctx *Ctx) {
		ctx.Proc.Sleep(1e-3) // let thread 0 post first
		ctx.W.CommWorld().Barrier(ctx, 5)
	})
	w.Spawn(1, 0, func(ctx *Ctx) {
		ctx.Proc.Sleep(1) // arrives after the violation is detected
		ctx.W.CommWorld().Barrier(ctx, 5)
	})
	err := eng.Run()
	if err == nil {
		t.Fatal("Run() = nil, want concurrent tag reuse error")
	}
	mustContain(t, err.Error(),
		"concurrent reuse of tag 5",
		"concurrent collectives need distinct tags")
}

// TestAllreduceLengthMismatch: ranks contributing different vector lengths
// to a reduction get a per-rank length report.
func TestAllreduceLengthMismatch(t *testing.T) {
	eng, w := strictWorld(2, 1)
	for r := 0; r < 2; r++ {
		w.Spawn(r, 0, func(ctx *Ctx) {
			ctx.W.CommWorld().Allreduce(ctx, 1, make([]float64, ctx.Rank+1), Sum)
		})
	}
	err := eng.Run()
	if err == nil {
		t.Fatal("Run() = nil, want vector length mismatch error")
	}
	mustContain(t, err.Error(),
		"vector length mismatch across ranks",
		"rank 0: 1", "rank 1: 2")
}

// TestStrictCleanRun: a correct program passes all strict checks, including
// sequential tag reuse and uneven (but well-formed) Alltoallv payloads.
func TestStrictCleanRun(t *testing.T) {
	eng, w := strictWorld(2, 1)
	for r := 0; r < 2; r++ {
		w.Spawn(r, 0, func(ctx *Ctx) {
			c := ctx.W.CommWorld()
			c.Barrier(ctx, 1)
			c.Barrier(ctx, 1) // sequential reuse is fine
			c.Allreduce(ctx, 2, []float64{float64(ctx.Rank)}, Sum)
			send := make([][]float64, 2)
			for j := range send {
				send[j] = make([]float64, ctx.Rank+j+1) // uneven is fine for the v variant
			}
			Alltoallv(ctx, c, 3, send, 8)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("strict clean run failed: %v", err)
	}
}

func TestOpStringAndName(t *testing.T) {
	cases := []struct {
		op        Op
		str, name string
	}{
		{OpBarrier, "OpBarrier", "Barrier"},
		{OpAlltoallv, "OpAlltoallv", "Alltoallv"},
		{OpSplit, "OpSplit", "split"}, // trace name kept for saved-trace compatibility
		{Op(99), "Op(99)", "op99"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.str {
			t.Errorf("(%d).String() = %q, want %q", int(c.op), got, c.str)
		}
		if got := c.op.Name(); got != c.name {
			t.Errorf("(%d).Name() = %q, want %q", int(c.op), got, c.name)
		}
	}
}
