package mpi

import (
	"fmt"
	"strings"

	"repro/internal/knl"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Element sizes for the cost model, in bytes.
const (
	BytesComplex128 = 16
	BytesFloat64    = 8
	BytesInt        = 8
)

type rvKey struct {
	comm string
	op   Op
	tag  int
	gen  int
}

type seqKey struct {
	comm string
	op   Op
	tag  int
	rank int
}

// rendezvous is the meeting point of one collective call instance.
type rendezvous struct {
	need     int
	payload  []any
	arrived  int
	lastAt   float64
	result   any
	transfer float64
	picked   int
	wq       vtime.WaitQueue
}

// describe renders the rendezvous state for deadlock reports: which world
// ranks have arrived and which are still missing.
func (rv *rendezvous) describe(c *Comm, op Op, tag, gen int) string {
	var arrived, missing []int
	for i, p := range rv.payload {
		if p != nil {
			arrived = append(arrived, c.ranks[i])
		} else {
			missing = append(missing, c.ranks[i])
		}
	}
	return fmt.Sprintf("mpi: collective %v tag %d (call #%d) on comm %s: arrived %d/%d, ranks %v; missing ranks %v",
		op, tag, gen, c.id, rv.arrived, rv.need, arrived, missing)
}

// costFn computes the transfer duration of a completed collective from the
// fabric model, the participant count k, the number of lanes currently
// inside MPI calls (for bandwidth sharing), the number of nodes the
// communicator spans and the gathered payloads (indexed by communicator
// rank).
type costFn func(fabric knl.Fabric, k, commLanes, nodesSpanned int, payloads []any) float64

// exchange is the generic collective rendezvous: every member of c
// contributes payload; the last arriver runs reduce over the payloads
// (indexed by communicator rank) and computes the transfer cost; everyone
// then pays the transfer time and returns the shared result. Calls with the
// same (comm, op, tag) match across ranks in per-rank call order, so
// concurrent collectives from different task threads are safe as long as
// they use distinct tags.
func (c *Comm) exchange(ctx *Ctx, op Op, tag int, payload any, cost costFn, reduce func([]any) any) any {
	w := c.w
	me := c.RankIn(ctx)
	sk := seqKey{c.id, op, tag, me}
	gen := w.callSeq[sk]
	w.callSeq[sk] = gen + 1
	key := rvKey{c.id, op, tag, gen}
	if w.Strict && gen > 0 {
		// A new call instance posted while the previous one has not yet
		// gathered all participants means two same-tag collectives are in
		// flight concurrently (different task threads of one rank): their
		// generations can cross-match across ranks and silently pair the
		// wrong calls. Sequential reuse of a tag is fine — a blocking call
		// cannot return before its own generation completes.
		if prev := w.rendezvous[rvKey{c.id, op, tag, gen - 1}]; prev != nil && prev.arrived < prev.need {
			panic(fmt.Sprintf(
				"mpi: concurrent reuse of tag %d for %v on comm %s by rank %d: call #%d posted while call #%d has only %d of %d participants (concurrent collectives need distinct tags)",
				tag, op, c.id, ctx.Rank, gen, gen-1, prev.arrived, prev.need))
		}
	}
	rv := w.rendezvous[key]
	if rv == nil {
		rv = &rendezvous{need: len(c.ranks), payload: make([]any, len(c.ranks))}
		rv.wq.Describe = func() string { return rv.describe(c, op, tag, gen) }
		w.rendezvous[key] = rv
	}
	if rv.payload[me] != nil {
		panic(fmt.Sprintf("mpi: duplicate arrival of rank %d in %s/%v tag %d", ctx.Rank, c.id, op, tag))
	}
	rv.payload[me] = payload
	rv.arrived++
	w.inComm++
	start := ctx.Proc.Now()

	if rv.arrived < rv.need {
		rv.wq.Wait(ctx.Proc)
	} else {
		rv.lastAt = ctx.Proc.Now()
		rv.result = reduce(rv.payload)
		var bytes float64
		if cost != nil && w.Node != nil {
			// Bandwidth is shared among concurrently communicating lanes,
			// but per-rank endpoint serialization means at most one
			// transfer per rank is in flight, so the sharing degree never
			// exceeds the rank count (threads and communication helpers
			// queued on their endpoint must not dilute the bandwidth).
			lanes := w.inComm
			if lanes > w.Size {
				lanes = w.Size
			}
			// The meter observes the byte volume the cost function charges
			// to the fabric, feeding the bytes-moved counters.
			meter := &meterFabric{Fabric: w.Node}
			rv.transfer = cost(meter, rv.need, lanes, c.nodesSpanned(), rv.payload)
			bytes = meter.bytes
		}
		// One collective instance completed: count it and its volume once.
		com := w.metricsFor(c.id, op)
		com.calls.Inc()
		if bytes > 0 {
			com.bytes.Add(bytes)
		}
		com.callBytes.Observe(bytes)
		rv.wq.WakeAll(ctx.Proc)
	}
	// Per-rank endpoint serialization: concurrent transfers issued by
	// threads of the same rank queue on the rank's MPI endpoint.
	ep := w.endpoints[ctx.Rank]
	ep.Acquire(ctx.Proc)
	syncEnd := ctx.Proc.Now()
	if rv.transfer > 0 {
		ctx.Proc.Sleep(rv.transfer)
	}
	ep.Release(ctx.Proc)
	w.inComm--
	if !ctx.Silent {
		end := ctx.Proc.Now()
		if w.Sink != nil {
			trace.Recorder{S: w.Sink, Lane: ctx.Lane}.MPI(op.Name(), c.id, tag, start, syncEnd, end)
		}
		com := w.metricsFor(c.id, op)
		com.sync.Add(syncEnd - start)
		com.xfer.Add(end - syncEnd)
	}
	res := rv.result
	rv.picked++
	if rv.picked == rv.need {
		delete(w.rendezvous, key)
	}
	return res
}

// nonNil wraps payloads so that "no payload" participants still mark arrival.
type nonNil struct{ v any }

// Barrier synchronizes all members of c.
func (c *Comm) Barrier(ctx *Ctx, tag int) {
	c.exchange(ctx, OpBarrier, tag, nonNil{},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 { return n.BcastTime(k, 0, lanes, span) },
		func([]any) any { return nil })
}

// Bcast distributes root's slice (communicator rank) to all members; only
// the root's data argument is consulted. elemBytes sizes the cost model.
func Bcast[T any](ctx *Ctx, c *Comm, tag, root int, data []T, elemBytes int) []T {
	res := c.exchange(ctx, OpBcast, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, payloads []any) float64 {
			rootData := payloads[root].(nonNil).v.([]T)
			return n.BcastTime(k, float64(len(rootData)*elemBytes), lanes, span)
		},
		func(all []any) any { return all[root].(nonNil).v })
	return res.([]T)
}

// Reduce combines the members' float64 vectors element-wise with op; only
// the root (communicator rank) receives the result, others get nil.
func (c *Comm) Reduce(ctx *Ctx, tag, root int, data []float64, op func(a, b float64) float64) []float64 {
	res := c.exchange(ctx, OpReduce, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 {
			return n.ReduceTime(k, float64(len(data))*BytesFloat64, lanes, span)
		},
		func(all []any) any { return reduceVecs(c, OpReduce, tag, all, op) })
	if c.RankIn(ctx) == root {
		return res.([]float64)
	}
	return nil
}

// Allreduce combines the members' float64 vectors element-wise with op and
// returns the result on every rank.
func (c *Comm) Allreduce(ctx *Ctx, tag int, data []float64, op func(a, b float64) float64) []float64 {
	res := c.exchange(ctx, OpAllreduce, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 {
			return n.ReduceTime(k, float64(len(data))*BytesFloat64, lanes, span)
		},
		func(all []any) any { return reduceVecs(c, OpAllreduce, tag, all, op) })
	return res.([]float64)
}

func reduceVecs(c *Comm, what Op, tag int, all []any, op func(a, b float64) float64) []float64 {
	var acc []float64
	for _, v := range all {
		vec := v.(nonNil).v.([]float64)
		if acc == nil {
			acc = append([]float64(nil), vec...)
			continue
		}
		if len(vec) != len(acc) {
			panic(fmt.Sprintf("mpi: %v tag %d on comm %s: vector length mismatch across ranks: %s",
				what, tag, c.id, perRankLens(c, all, func(p any) int { return len(p.(nonNil).v.([]float64)) })))
		}
		for j := range acc {
			acc[j] = op(acc[j], vec[j])
		}
	}
	return acc
}

// perRankLens renders a per-rank report of payload sizes, e.g.
// "rank 0: 4, rank 1: 3".
func perRankLens(c *Comm, all []any, size func(any) int) string {
	var sb strings.Builder
	for i, p := range all {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "rank %d: %d", c.ranks[i], size(p))
	}
	return sb.String()
}

// Sum is the element-wise addition reduction operator.
func Sum(a, b float64) float64 { return a + b }

// Max is the element-wise maximum reduction operator.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Allgatherv gathers every member's slice on every member, indexed by
// communicator rank.
func Allgatherv[T any](ctx *Ctx, c *Comm, tag int, data []T, elemBytes int) [][]T {
	res := c.exchange(ctx, OpAllgatherv, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, payloads []any) float64 {
			var total float64
			for _, p := range payloads {
				total += float64(len(p.(nonNil).v.([]T)) * elemBytes)
			}
			return n.AlltoallTime(k, total, lanes, span)
		},
		func(all []any) any {
			out := make([][]T, len(all))
			for i, v := range all {
				out[i] = v.(nonNil).v.([]T)
			}
			return out
		})
	return res.([][]T)
}

// Gatherv gathers every member's slice on root (communicator rank), which
// receives the slices indexed by communicator rank; other ranks receive nil.
func Gatherv[T any](ctx *Ctx, c *Comm, tag, root int, data []T, elemBytes int) [][]T {
	all := Allgatherv(ctx, c, tag, data, elemBytes)
	if c.RankIn(ctx) == root {
		return all
	}
	return nil
}

// Scatterv distributes root's per-rank slices: rank i receives send[i].
// Only the root's send argument is consulted; others may pass nil.
func Scatterv[T any](ctx *Ctx, c *Comm, tag, root int, send [][]T, elemBytes int) []T {
	res := c.exchange(ctx, OpScatterv, tag, nonNil{send},
		func(n knl.Fabric, k, lanes, span int, payloads []any) float64 {
			var total float64
			for _, s := range payloads[root].(nonNil).v.([][]T) {
				total += float64(len(s) * elemBytes)
			}
			return n.AlltoallTime(k, total, lanes, span)
		},
		func(all []any) any { return all[root].(nonNil).v })
	rootSend := res.([][]T)
	return rootSend[c.RankIn(ctx)]
}

// Alltoallv is the workhorse of the FFT kernel: every member sends send[j]
// to communicator rank j and receives recv[j] from j. The charged volume is
// the maximum per-rank send volume, matching the bulk-synchronous behaviour
// of an on-node Alltoall. The returned slices alias the senders' buffers;
// receivers must not mutate them (the kernel copies into its own layout).
func Alltoallv[T any](ctx *Ctx, c *Comm, tag int, send [][]T, elemBytes int) [][]T {
	return alltoall(ctx, c, OpAlltoallv, tag, send, elemBytes)
}

// Alltoall exchanges equal-sized chunks: send must contain Size() chunks of
// identical length. In strict mode the equal-chunk requirement is also
// validated across ranks, with a per-rank report on mismatch.
func Alltoall[T any](ctx *Ctx, c *Comm, tag int, send [][]T, elemBytes int) [][]T {
	for _, s := range send {
		if len(s) != len(send[0]) {
			panic(fmt.Sprintf("mpi: Alltoall tag %d on comm %s: rank %d sends unequal chunk sizes (%d and %d elements); use Alltoallv",
				tag, c.id, ctx.Rank, len(send[0]), len(s)))
		}
	}
	return alltoall(ctx, c, OpAlltoall, tag, send, elemBytes)
}

// alltoall is the shared rendezvous of Alltoall and Alltoallv. The two use
// distinct Ops, so — like in real MPI — an Alltoall on one rank never
// matches an Alltoallv on another.
func alltoall[T any](ctx *Ctx, c *Comm, op Op, tag int, send [][]T, elemBytes int) [][]T {
	if len(send) != c.Size() {
		panic(fmt.Sprintf("mpi: %v tag %d on comm %s: rank %d sends %d chunks for comm of size %d",
			op, tag, c.id, ctx.Rank, len(send), c.Size()))
	}
	res := c.exchange(ctx, op, tag, nonNil{send},
		func(n knl.Fabric, k, lanes, span int, payloads []any) float64 {
			var maxBytes float64
			for _, p := range payloads {
				var b float64
				for _, s := range p.(nonNil).v.([][]T) {
					b += float64(len(s) * elemBytes)
				}
				if b > maxBytes {
					maxBytes = b
				}
			}
			return n.AlltoallTime(k, maxBytes, lanes, span)
		},
		func(all []any) any {
			if op == OpAlltoall && c.w.Strict {
				// Every chunk of every rank must have the same length.
				ref := -1
				equal := true
				for _, v := range all {
					for _, s := range v.(nonNil).v.([][]T) {
						if ref < 0 {
							ref = len(s)
						} else if len(s) != ref {
							equal = false
						}
					}
				}
				if !equal {
					panic(fmt.Sprintf("mpi: %v tag %d on comm %s: chunk size mismatch across ranks (elements per chunk): %s",
						op, tag, c.id, perRankLens(c, all, func(p any) int {
							return len(p.(nonNil).v.([][]T)[0])
						})))
				}
			}
			mat := make([][][]T, len(all))
			for i, v := range all {
				mat[i] = v.(nonNil).v.([][]T)
			}
			return mat
		})
	mat := res.([][][]T)
	me := c.RankIn(ctx)
	out := make([][]T, c.Size())
	for j := range out {
		out[j] = mat[j][me]
	}
	return out
}

// CollectiveCost performs a data-free collective: it synchronizes the
// members of c like an Alltoallv carrying bytesPerRank per rank, charging
// sync and transfer time without moving payload. The cost-only execution
// mode of the FFT engines uses it so that cost-mode and real-mode runs have
// identical timing behaviour.
func (c *Comm) CollectiveCost(ctx *Ctx, op Op, tag int, bytesPerRank float64) {
	c.exchange(ctx, op, tag, nonNil{bytesPerRank},
		func(n knl.Fabric, k, lanes, span int, payloads []any) float64 {
			var maxBytes float64
			for _, p := range payloads {
				if b := p.(nonNil).v.(float64); b > maxBytes {
					maxBytes = b
				}
			}
			return n.AlltoallTime(k, maxBytes, lanes, span)
		},
		func(all []any) any { return nil })
}

// ReduceScatter combines the members' vectors element-wise and scatters the
// result: each rank receives its contiguous share of the reduced vector
// (shares are as equal as possible, remainder to the low ranks).
func (c *Comm) ReduceScatter(ctx *Ctx, tag int, data []float64, op func(a, b float64) float64) []float64 {
	res := c.exchange(ctx, OpReduceScatter, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 {
			return n.ReduceTime(k, float64(len(data))*BytesFloat64, lanes, span)
		},
		func(all []any) any { return reduceVecs(c, OpReduceScatter, tag, all, op) })
	full := res.([]float64)
	k := c.Size()
	base, rem := len(full)/k, len(full)%k
	me := c.RankIn(ctx)
	lo := me*base + min(me, rem)
	sz := base
	if me < rem {
		sz++
	}
	return full[lo : lo+sz]
}

// Scan computes the inclusive prefix reduction: rank i receives the
// element-wise combination of ranks 0..i's vectors.
func (c *Comm) Scan(ctx *Ctx, tag int, data []float64, op func(a, b float64) float64) []float64 {
	res := c.exchange(ctx, OpScan, tag, nonNil{data},
		func(n knl.Fabric, k, lanes, span int, _ []any) float64 {
			return n.ReduceTime(k, float64(len(data))*BytesFloat64, lanes, span)
		},
		func(all []any) any {
			// Prefix-reduce into a matrix indexed by comm rank.
			out := make([][]float64, len(all))
			var acc []float64
			for i, v := range all {
				vec := v.(nonNil).v.([]float64)
				if acc == nil {
					acc = append([]float64(nil), vec...)
				} else {
					for j := range acc {
						acc[j] = op(acc[j], vec[j])
					}
				}
				out[i] = append([]float64(nil), acc...)
			}
			return out
		})
	return res.([][]float64)[c.RankIn(ctx)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
