package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("test_serve_total", "a counter").Add(42)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.URL, "http://127.0.0.1:") {
		t.Fatalf("URL = %q", s.URL)
	}

	code, body := get(t, s.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "test_serve_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	// Prometheus-parseable: non-comment lines are "name-or-labels value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed /metrics line %q", line)
		}
	}

	code, body = get(t, s.URL+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars body unexpected:\n%.200s", body)
	}

	code, _ = get(t, s.URL+"/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, _ = get(t, s.URL+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	code, _ = get(t, s.URL+"/nope")
	if code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}
