// Package telemetry serves the live observability endpoints of a running
// simulation: /metrics (Prometheus text exposition of the default metrics
// registry), /debug/vars (expvar, including the registry mirrored as JSON)
// and /debug/pprof (the net/http/pprof profiling handlers). The CLIs mount
// it behind their -serve flag.
package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// Server is a running telemetry endpoint.
type Server struct {
	// URL is the server's base address, e.g. "http://127.0.0.1:8080".
	URL string
	ln  net.Listener
	srv *http.Server
}

// Mux returns a fresh ServeMux with the standard telemetry surface
// mounted: /metrics, /debug/vars, /debug/pprof/* and a plain-text index at
// /. Servers that carry their own endpoints beside the telemetry ones (the
// fftxd FFT service with /fft and its /debug/fftx/{requests,profiles}
// introspection pages) build on this mux instead of running a second
// listener; extra index lines name the additional endpoints on the front
// page.
func Mux(reg *metrics.Registry, extraIndex ...string) *http.ServeMux {
	metrics.PublishExpvar("fftx", reg)

	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "fftx telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
		for _, line := range extraIndex {
			fmt.Fprintln(w, line)
		}
	})
	return mux
}

// Serve starts the telemetry HTTP server on addr (e.g. ":8080" or
// "127.0.0.1:0" for an ephemeral port) exposing reg. It returns once the
// listener is bound; requests are served in the background until Close.
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := Mux(reg)

	s := &Server{
		URL: "http://" + ln.Addr().String(),
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
