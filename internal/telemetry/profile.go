package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. The CLIs call it for
// their -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path, running a GC first
// so the profile reflects live memory. The CLIs call it for -memprofile.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return f.Close()
}
