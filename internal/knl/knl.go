// Package knl models an Intel Knights Landing (KNL) node as a
// processor-sharing machine for the vtime discrete-event simulator, plus an
// on-node communication cost model.
//
// The model captures the two effects the paper's analysis identified:
//
//  1. Shared-resource contention: the more cores simultaneously execute
//     high-intensity phases, the lower every phase's IPC (Table I shows IPC
//     scalability collapsing from 100 % at 8 ranks to 28 % at 128 ranks).
//     Each intensity class places a bandwidth-like demand on a node-shared
//     resource; the total demand drives a saturating slowdown curve.
//
//  2. Hyper-threading: hardware threads on one core share issue slots. Two
//     compute-intensive threads each run at roughly half IPC (the paper's
//     hyper-threading observation), while a compute-intensive thread paired
//     with a memory-bound one loses much less — which is why the
//     de-synchronized OmpSs version still profits from 2x hyper-threading.
//
// Parameters are calibrated in params.go against the phase IPCs of Figure 3
// and the IPC-scalability column of Table I; see EXPERIMENTS.md for the
// resulting paper-vs-model comparison.
package knl

import (
	"fmt"
	"math"

	"repro/internal/vtime"
)

// Class is a compute-phase intensity class. It determines base IPC, issue
// slot demand, shared-resource demand and contention sensitivity.
type Class int

const (
	// ClassMem is a memory-dominated phase with very low IPC, e.g. the
	// preparation/zeroing of the psi work arrays (~0.06 IPC in Fig. 3).
	ClassMem Class = iota
	// ClassStream is a streaming compute phase of moderate IPC, e.g. the
	// batched 1-D FFTs along Z (~0.52 IPC in Fig. 3).
	ClassStream
	// ClassVector is the main high-intensity compute phase, e.g. the 2-D
	// XY FFTs and the V(r) application (~0.77 IPC in Fig. 3).
	ClassVector
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassMem:
		return "mem"
	case ClassStream:
		return "stream"
	case ClassVector:
		return "vector"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Params holds every calibration constant of the node model. DefaultParams
// returns the values fitted to the paper; tests and ablations may vary them.
type Params struct {
	Cores int     // physical cores on the node (68 on the KNL test system)
	Freq  float64 // core frequency in Hz (1.4 GHz)

	// BaseIPC is the uncontended instructions-per-cycle of each class.
	BaseIPC [numClasses]float64
	// IssueDemand is the fraction of a core's issue slots a thread of the
	// class wants. Threads on one core scale down proportionally when the
	// sum exceeds 1.
	IssueDemand [numClasses]float64
	// BWDemand is the demand a running thread of the class places on the
	// node-shared resource (mesh/MCDRAM bandwidth), in arbitrary units of
	// "fully-streaming cores".
	BWDemand [numClasses]float64
	// Sens is the sensitivity of the class to node-level contention:
	// effective IPC multiplies by slowdown^Sens.
	Sens [numClasses]float64
	// TileDemand optionally models the KNL tile structure (two cores share
	// one L2): a thread of the class demands this fraction of the tile's
	// L2 bandwidth, and threads on a tile scale down proportionally when
	// the sum exceeds 1. All zeros (the calibrated default) disables the
	// tile level; the sensitivity study enables it to show the headline
	// conclusion does not depend on it.
	TileDemand [numClasses]float64
	// ContA and ContP shape the saturating slowdown curve
	// S(load) = 1/(1+ContA*load^ContP).
	ContA float64
	ContP float64

	// CommLatency is the per-participant latency charge of a collective
	// exchange (seconds); an Alltoall among k ranks pays (k-1) of these.
	CommLatency float64
	// NodeBandwidth is the aggregate on-node copy bandwidth available to
	// intra-node MPI, in bytes/second, shared by all communicating lanes.
	NodeBandwidth float64
	// EndpointBandwidth caps the MPI bandwidth of a single rank's
	// endpoint, in bytes/second. A multi-threaded rank pushing many
	// concurrent collectives through one endpoint is limited by it (its
	// transfers additionally serialize on the endpoint), which is why the
	// task-based version's transfer efficiency falls below the original's
	// in Table II of the paper.
	EndpointBandwidth float64

	// InstrPerFlop converts floating-point operation counts of the FFT
	// kernels into retired instructions for the IPC accounting.
	InstrPerFlop float64
	// InstrPerByte converts bytes touched by memory-bound phases
	// (pack/unpack/zero-fill) into retired instructions.
	InstrPerByte float64
	// Jitter is the relative execution-time variance of a compute phase
	// (cache, TLB and page placement effects): each phase instance's work
	// varies deterministically within ±Jitter. The statically synchronized
	// original version pays the maximum over ranks at every collective
	// (the load-balance losses of Table I), while the dynamically
	// scheduled task version absorbs the variance and accumulates the
	// phase de-synchronization of Figure 7.
	Jitter float64
}

// Node is a KNL node hosting a fixed number of hardware lanes. It
// implements vtime.Machine.
type Node struct {
	P     Params
	Lanes int
	core  []int // lane -> physical core
}

// NewNode returns a node with the given parameter set and lane count. Lanes
// are assigned to cores round-robin, so hyper-threading starts only once the
// lane count exceeds the core count (matching the paper's rank placement:
// 128 ranks on 68 cores -> 2 hyper-threads on most cores).
func NewNode(p Params, lanes int) *Node {
	if lanes <= 0 {
		panic("knl: lanes must be positive")
	}
	if lanes > 4*p.Cores {
		panic(fmt.Sprintf("knl: %d lanes exceed 4-way hyper-threading on %d cores", lanes, p.Cores))
	}
	n := &Node{P: p, Lanes: lanes, core: make([]int, lanes)}
	for l := 0; l < lanes; l++ {
		n.core[l] = l % p.Cores
	}
	return n
}

// LaneCore returns the physical core hosting a lane.
func (n *Node) LaneCore(lane int) int { return n.core[lane] }

// HyperThreads returns the maximum number of lanes sharing one core.
func (n *Node) HyperThreads() int {
	return (n.Lanes + n.P.Cores - 1) / n.P.Cores
}

// Slowdown evaluates the node-contention curve S(load).
func (p Params) Slowdown(load float64) float64 {
	if load <= 0 {
		return 1
	}
	return 1 / (1 + p.ContA*math.Pow(load, p.ContP))
}

// Rates implements vtime.Machine. For every active job it computes
//
//	rate = Freq * BaseIPC(class) * issueShare(core) * S(load)^Sens(class)
//
// where issueShare divides a core's issue slots among its hyper-threads in
// proportion to their demands, and load is the sum over cores of the
// (issue-share-weighted, capped) bandwidth demands of their jobs.
func (n *Node) Rates(jobs []*vtime.ActiveJob) {
	// Per-core aggregation. Jobs are few (<= lanes), so two passes suffice.
	issueSum := make(map[int]float64)
	for _, j := range jobs {
		c := Class(j.Class)
		issueSum[n.core[j.Lane]] += n.P.IssueDemand[c]
	}
	// Proportional issue sharing: when the demands on a core exceed its
	// slots, thread i receives demand_i/total slots; its speed relative to
	// running alone is therefore 1/total, identical for all threads on the
	// core. Two compute-intensive threads (demand 1 each) halve; a
	// compute-intensive thread paired with a memory-bound one (demand 0.4)
	// only drops to 1/1.4.
	share := func(j *vtime.ActiveJob) float64 {
		tot := issueSum[n.core[j.Lane]]
		if tot <= 1 {
			return 1
		}
		return 1 / tot
	}
	// Node-shared load: per core, bandwidth demand is reduced by the issue
	// sharing (a half-speed thread generates half the traffic) and capped
	// at one fully-streaming core.
	var load float64
	coreBW := make(map[int]float64)
	for _, j := range jobs {
		c := Class(j.Class)
		coreBW[n.core[j.Lane]] += n.P.BWDemand[c] * share(j)
	}
	for _, bw := range coreBW {
		load += math.Min(bw, 1)
	}
	// Optional tile level: cores 2t and 2t+1 share an L2.
	var tileSum map[int]float64
	if n.P.TileDemand != ([numClasses]float64{}) {
		tileSum = make(map[int]float64)
		for _, j := range jobs {
			c := Class(j.Class)
			tileSum[n.core[j.Lane]/2] += n.P.TileDemand[c] * share(j)
		}
	}
	tileShare := func(j *vtime.ActiveJob) float64 {
		if tileSum == nil {
			return 1
		}
		tot := tileSum[n.core[j.Lane]/2]
		if tot <= 1 {
			return 1
		}
		return 1 / tot
	}
	s := n.P.Slowdown(load)
	for _, j := range jobs {
		c := Class(j.Class)
		ipc := n.P.BaseIPC[c] * share(j) * tileShare(j) * math.Pow(s, n.P.Sens[c])
		j.Rate = n.P.Freq * ipc
	}
}

// effBW returns the effective per-rank transfer bandwidth given commLanes
// lanes communicating concurrently.
func (n *Node) effBW(commLanes int) float64 {
	bw := n.P.NodeBandwidth / float64(commLanes)
	if n.P.EndpointBandwidth > 0 && bw > n.P.EndpointBandwidth {
		bw = n.P.EndpointBandwidth
	}
	return bw
}

// TotalLanes implements Fabric.
func (n *Node) TotalLanes() int { return n.Lanes }

// LaneNode implements Fabric: a single node hosts every lane.
func (n *Node) LaneNode(int) int { return 0 }

// AlltoallTime models the duration of an Alltoall(v) exchange among k ranks
// where each rank sends bytesPerRank in total, while commLanes lanes of the
// node are engaged in communication concurrently (they share
// NodeBandwidth, each capped by EndpointBandwidth). The nodesSpanned
// argument exists for the Fabric interface; a single node ignores it.
func (n *Node) AlltoallTime(k int, bytesPerRank float64, commLanes, _ int) float64 {
	if k <= 1 {
		return 0
	}
	if commLanes < k {
		commLanes = k
	}
	return n.P.CommLatency*float64(k-1) + bytesPerRank/n.effBW(commLanes)
}

// BcastTime models a broadcast among k ranks of the given payload.
func (n *Node) BcastTime(k int, bytes float64, commLanes, _ int) float64 {
	if k <= 1 {
		return 0
	}
	if commLanes < k {
		commLanes = k
	}
	hops := math.Ceil(math.Log2(float64(k)))
	return n.P.CommLatency*hops + bytes/n.effBW(commLanes)*hops
}

// ReduceTime models a (all)reduce among k ranks of the given payload.
func (n *Node) ReduceTime(k int, bytes float64, commLanes, _ int) float64 {
	return n.BcastTime(k, bytes, commLanes, 1)
}

// P2PTime models one point-to-point message.
func (n *Node) P2PTime(bytes float64, commLanes, _ int) float64 {
	if commLanes < 2 {
		commLanes = 2
	}
	return n.P.CommLatency + bytes/n.effBW(commLanes)
}
