package knl

// DefaultParams returns the node parameters calibrated against the paper's
// KNL test system (68 cores at 1.4 GHz, 4-way hyper-threading).
//
// Calibration anchors:
//
//   - Figure 3 phase IPCs at the 8x8 configuration (64 busy lanes, fully
//     synchronized phases): psi preparation ~0.06, Z-FFT ~0.52, main
//     XY-FFT/VOFR phase ~0.77. With 64 synchronized ClassVector lanes the
//     capped per-core load is 64, S(64) = 1/(1+0.0019*64^1.5) ~ 0.507, so
//     BaseIPC[vector] = 0.77/0.507 ~ 1.5. ClassStream and ClassMem bases
//     follow the same inversion using their demands and sensitivities.
//
//   - Table I IPC-scalability column (100 / 92.8 / 78.7 / 56.3 / 28.3 % for
//     8/16/32/64/128 synchronized lanes): the exponent ContP = 1.5 and
//     coefficient ContA = 0.0019 reproduce the curve's shape, and the
//     128-lane point follows from 2-way hyper-threading halving the issue
//     share while the capped core load stays at 64.
//
//   - Section V: average IPC 1.1 at 1x8 falling to 0.6 at 8x8 for the
//     original version, 0.8 for the task version; 0.3 vs 0.5 under 2-way
//     hyper-threading.
//
// The communication constants are generic on-node MPI values (shared-memory
// transport): they are not fitted to the paper (which reports no absolute
// communication times), only chosen so that communication costs grow with
// participant count the way Table I's communication efficiency column does.
func DefaultParams() Params {
	p := Params{
		Cores: 68,
		Freq:  1.4e9,

		ContA: 0.0019,
		ContP: 1.5,

		CommLatency:       8e-6,
		NodeBandwidth:     32e9,
		EndpointBandwidth: 1e9,

		InstrPerFlop: 0.9,
		InstrPerByte: 0.04,

		Jitter: 0.06,
	}
	// Base IPCs are inverted from the Figure 3 phase IPCs at the fully
	// synchronized 8x8 point: vector 0.77 = base * S(64); stream
	// 0.52 = base * S(48)^0.9 (64 lanes at demand 0.75); mem
	// 0.06 = base * S(32) (64 lanes at demand 0.5).
	p.BaseIPC[ClassMem] = 0.081
	p.BaseIPC[ClassStream] = 0.81
	p.BaseIPC[ClassVector] = 1.52

	// A vector thread saturates a core's issue slots, so two of them halve
	// (the original version's hyper-threading behaviour: aggregate flat,
	// per-rank IPC halved — Figure 2 / Table I). Memory-bound threads
	// leave slots idle while waiting on loads, so a de-synchronized
	// vector+mem pairing lets the vector thread keep more than half — the
	// task version's extra ~3 % gain from 2-way hyper-threading.
	p.IssueDemand[ClassMem] = 0.42
	p.IssueDemand[ClassStream] = 0.78
	p.IssueDemand[ClassVector] = 1.00

	// The node-shared (mesh/MCDRAM) demand differs per class: that is what
	// de-synchronizing phases exploits — a vector phase coinciding with
	// memory phases on other cores sees a lower total load, hence the
	// higher IPC of the task version (Figure 7, ~0.75 -> ~0.85).
	p.BWDemand[ClassMem] = 0.50
	p.BWDemand[ClassStream] = 0.75
	p.BWDemand[ClassVector] = 1.00

	p.Sens[ClassMem] = 1.00
	p.Sens[ClassStream] = 0.90
	p.Sens[ClassVector] = 1.00
	return p
}

// XeonParams returns a contrasting "standard CPU" node in the spirit of the
// paper's Section IV discussion: the step-task (communication-overlap)
// strategy targets machines where communication dominates, while the
// per-iteration (de-synchronization) strategy targets the KNL's
// contention-limited compute. A dual-socket Xeon-like node has far fewer
// but faster cores (here 24 at 2.6 GHz with roughly twice the per-core
// IPC), 2-way SMT, a gentler contention curve (large shared L3, fewer cores
// stressing the memory system) and a similar interconnect — so compute
// shrinks relative to communication and the trade-off flips. These values
// are NOT fitted to any measurement; they exist to exercise the
// machine-dependence of the engine choice.
func XeonParams() Params {
	p := DefaultParams()
	p.Cores = 24
	p.Freq = 2.6e9
	p.BaseIPC[ClassMem] = 0.15
	p.BaseIPC[ClassStream] = 1.6
	p.BaseIPC[ClassVector] = 2.6
	// Fewer cores load the shared resource less steeply.
	p.ContA = 0.0012
	p.ContP = 1.4
	return p
}
