package knl

import (
	"testing"

	"repro/internal/vtime"
)

func TestClusterLaneAssignment(t *testing.T) {
	c := NewCluster(DefaultParams(), DefaultNet(), 2, 128)
	if c.TotalLanes() != 128 {
		t.Fatalf("lanes %d", c.TotalLanes())
	}
	if c.LaneNode(0) != 0 || c.LaneNode(63) != 0 || c.LaneNode(64) != 1 || c.LaneNode(127) != 1 {
		t.Fatalf("block distribution broken: %d %d %d %d",
			c.LaneNode(0), c.LaneNode(63), c.LaneNode(64), c.LaneNode(127))
	}
}

func TestClusterContentionIsPerNode(t *testing.T) {
	p := DefaultParams()
	// 64 vector lanes on one node vs 64 spread over two nodes: the spread
	// case has half the per-node load, so each lane runs faster.
	one := NewCluster(p, DefaultNet(), 1, 64)
	two := NewCluster(p, DefaultNet(), 2, 64)
	mk := func(n int) []*vtime.ActiveJob {
		jobs := make([]*vtime.ActiveJob, n)
		for i := range jobs {
			jobs[i] = &vtime.ActiveJob{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: i}}
		}
		return jobs
	}
	j1 := mk(64)
	one.Rates(j1)
	j2 := mk(64)
	two.Rates(j2)
	if j2[0].Rate <= j1[0].Rate {
		t.Fatalf("two-node lane rate %g not above one-node %g", j2[0].Rate, j1[0].Rate)
	}
	// Single-node cluster must agree exactly with the plain node model.
	n := NewNode(p, 64)
	jn := mk(64)
	n.Rates(jn)
	if j1[0].Rate != jn[0].Rate {
		t.Fatalf("1-node cluster rate %g differs from node %g", j1[0].Rate, jn[0].Rate)
	}
}

func TestClusterCommCostsGrowAcrossNodes(t *testing.T) {
	p := DefaultParams()
	// A deliberately slow interconnect so the inter-node path dominates.
	net := NetParams{Latency: 2e-6, Bandwidth: 0.5e9}
	c := NewCluster(p, net, 4, 128)
	const bytes = 4 << 20
	intra := c.AlltoallTime(32, bytes, 32, 1)
	inter := c.AlltoallTime(32, bytes, 32, 4)
	if inter <= intra {
		t.Fatalf("spanning 4 nodes (%g) not costlier than on-node (%g)", inter, intra)
	}
	if c.P2PTime(64<<20, 2, 2) <= c.P2PTime(64<<20, 2, 1) {
		t.Fatal("cross-node p2p not costlier")
	}
	if c.BcastTime(8, 1<<20, 8, 2) <= 0 || c.ReduceTime(8, 1<<20, 8, 2) <= 0 {
		t.Fatal("cluster collective times must be positive")
	}
	// With the default (fast) fabric the on-node path may dominate: the
	// cluster must never report less than the single-node cost.
	fast := NewCluster(p, DefaultNet(), 4, 128)
	if fast.AlltoallTime(32, bytes, 32, 4) < fast.AlltoallTime(32, bytes, 32, 1) {
		t.Fatal("spanning nodes reduced the cost")
	}
}

func TestClusterRejectsOverfullNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(DefaultParams(), DefaultNet(), 1, 4*68+1)
}
