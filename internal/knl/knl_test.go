package knl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func mkJobs(n *Node, classes []Class) []*vtime.ActiveJob {
	jobs := make([]*vtime.ActiveJob, len(classes))
	for i, c := range classes {
		jobs[i] = &vtime.ActiveJob{Job: vtime.Job{Work: 1, Class: int(c), Lane: i}}
	}
	return jobs
}

func ipcOf(n *Node, j *vtime.ActiveJob) float64 { return j.Rate / n.P.Freq }

func TestSingleJobRunsAtNearBaseIPC(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 68)
	jobs := mkJobs(n, []Class{ClassVector})
	n.Rates(jobs)
	got := ipcOf(n, jobs[0])
	// One lane: load = 1, S(1) ~ 0.998.
	if got > p.BaseIPC[ClassVector] || got < 0.99*p.BaseIPC[ClassVector] {
		t.Fatalf("single-job IPC = %v, base %v", got, p.BaseIPC[ClassVector])
	}
}

func TestContentionMonotoneInActiveLanes(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 68)
	prev := math.Inf(1)
	for _, lanes := range []int{1, 8, 16, 32, 64} {
		classes := make([]Class, lanes)
		for i := range classes {
			classes[i] = ClassVector
		}
		jobs := mkJobs(n, classes)
		n.Rates(jobs)
		ipc := ipcOf(n, jobs[0])
		if ipc >= prev {
			t.Fatalf("IPC did not decrease with contention: %d lanes -> %v (prev %v)", lanes, ipc, prev)
		}
		prev = ipc
	}
}

// The calibration target: with all lanes synchronized in the main phase,
// the IPC ratio versus the 8-lane run must follow Table I's IPC scalability
// column within a few points: 16 lanes ~93 %, 32 ~79 %, 64 ~56 %,
// 128 (2x HT) ~28 %.
func TestIPCScalabilityMatchesTableI(t *testing.T) {
	p := DefaultParams()
	ipcAt := func(lanes int) float64 {
		n := NewNode(p, lanes)
		classes := make([]Class, lanes)
		for i := range classes {
			classes[i] = ClassVector
		}
		jobs := mkJobs(n, classes)
		n.Rates(jobs)
		return ipcOf(n, jobs[0])
	}
	ref := ipcAt(8)
	want := map[int]float64{16: 0.928, 32: 0.787, 64: 0.563, 128: 0.283}
	for lanes, w := range want {
		got := ipcAt(lanes) / ref
		if math.Abs(got-w) > 0.08 {
			t.Errorf("IPC scalability at %d lanes = %.3f, paper %.3f", lanes, got, w)
		}
	}
}

// Figure 3 anchor: at the synchronized 8x8 configuration (64 lanes), the
// phase IPCs should be near 0.06 / 0.52 / 0.77.
func TestPhaseIPCsMatchFigure3(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 64)
	for _, tc := range []struct {
		class Class
		want  float64
		tol   float64
	}{
		{ClassMem, 0.06, 0.02},
		{ClassStream, 0.52, 0.08},
		{ClassVector, 0.77, 0.08},
	} {
		classes := make([]Class, 64)
		for i := range classes {
			classes[i] = tc.class
		}
		jobs := mkJobs(n, classes)
		n.Rates(jobs)
		got := ipcOf(n, jobs[0])
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("class %v IPC at 64 synchronized lanes = %.3f, paper ~%.2f", tc.class, got, tc.want)
		}
	}
}

func TestHyperThreadingHalvesVectorPairs(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 136) // 2-way HT on all 68 cores
	// Two vector jobs on the same core (lanes 0 and 68).
	jobs := []*vtime.ActiveJob{
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 0}},
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 68}},
	}
	n.Rates(jobs)
	paired := ipcOf(n, jobs[0])
	solo := mkJobs(n, []Class{ClassVector})
	n.Rates(solo)
	ratio := paired / ipcOf(n, solo[0])
	if math.Abs(ratio-0.5) > 0.03 {
		t.Fatalf("HT vector pair runs at %.3f of solo, want ~0.5", ratio)
	}
}

func TestHyperThreadingMixedNodeBeatsVectorNode(t *testing.T) {
	// At full 2-way hyper-threading, a node whose cores each pair a vector
	// thread with a memory thread places less load on the shared resource
	// than a node running vector threads everywhere, so the vector threads
	// run at higher IPC — the node-level mechanism behind the task
	// version's hyper-threading gain.
	p := DefaultParams()
	n := NewNode(p, 136)
	allVec := make([]Class, 136)
	for i := range allVec {
		allVec[i] = ClassVector
	}
	jv := mkJobs(n, allVec)
	n.Rates(jv)
	vecVec := ipcOf(n, jv[0])

	mixed := make([]Class, 136)
	for i := range mixed {
		if i < 68 {
			mixed[i] = ClassVector
		} else {
			mixed[i] = ClassMem // second hyper-thread of each core
		}
	}
	jm := mkJobs(n, mixed)
	n.Rates(jm)
	vecMix := ipcOf(n, jm[0])
	if vecMix <= vecVec {
		t.Fatalf("vector+mem node (%.3f) should beat all-vector node (%.3f)", vecMix, vecVec)
	}
}

// De-synchronization effect: a lane running the vector phase achieves higher
// IPC when the other lanes run the memory phase than when all lanes run the
// vector phase — the mechanism behind the OmpSs version's gain.
func TestDesyncRaisesVectorIPC(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 64)
	allVec := make([]Class, 64)
	for i := range allVec {
		allVec[i] = ClassVector
	}
	jv := mkJobs(n, allVec)
	n.Rates(jv)
	syncIPC := ipcOf(n, jv[0])

	mixed := make([]Class, 64)
	for i := range mixed {
		if i%2 == 0 {
			mixed[i] = ClassVector
		} else {
			mixed[i] = ClassMem
		}
	}
	jm := mkJobs(n, mixed)
	n.Rates(jm)
	mixIPC := ipcOf(n, jm[0])
	if mixIPC <= syncIPC {
		t.Fatalf("de-synchronized vector IPC %.3f should exceed synchronized %.3f", mixIPC, syncIPC)
	}
	// The paper reports roughly 0.75 -> 0.85 for the main phase.
	if mixIPC/syncIPC < 1.05 {
		t.Fatalf("de-sync gain %.3f too small", mixIPC/syncIPC)
	}
}

func TestLaneCoreAssignment(t *testing.T) {
	p := DefaultParams()
	n := NewNode(p, 136)
	if n.LaneCore(0) != 0 || n.LaneCore(67) != 67 || n.LaneCore(68) != 0 {
		t.Fatalf("round-robin lane->core broken: %d %d %d",
			n.LaneCore(0), n.LaneCore(67), n.LaneCore(68))
	}
	if n.HyperThreads() != 2 {
		t.Fatalf("HyperThreads = %d, want 2", n.HyperThreads())
	}
}

func TestNewNodeRejectsTooManyLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >4-way HT")
		}
	}()
	NewNode(DefaultParams(), 68*4+1)
}

func TestAlltoallTimeGrowsWithParticipants(t *testing.T) {
	n := NewNode(DefaultParams(), 64)
	prev := 0.0
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		d := n.AlltoallTime(k, 1<<20, 64, 1)
		if d <= prev {
			t.Fatalf("Alltoall time not increasing at k=%d: %v <= %v", k, d, prev)
		}
		prev = d
	}
}

func TestAlltoallSingleRankFree(t *testing.T) {
	n := NewNode(DefaultParams(), 8)
	if d := n.AlltoallTime(1, 1<<30, 8, 1); d != 0 {
		t.Fatalf("self-alltoall should be free, got %v", d)
	}
}

func TestCommTimesPositive(t *testing.T) {
	n := NewNode(DefaultParams(), 16)
	if n.BcastTime(8, 4096, 16, 1) <= 0 || n.ReduceTime(8, 4096, 16, 1) <= 0 || n.P2PTime(4096, 16, 1) <= 0 {
		t.Fatal("collective times must be positive")
	}
}

// Property: rates are always positive and never exceed Freq*BaseIPC.
func TestPropertyRatesBounded(t *testing.T) {
	p := DefaultParams()
	f := func(classRaw []uint8) bool {
		if len(classRaw) == 0 {
			return true
		}
		if len(classRaw) > 272 {
			classRaw = classRaw[:272]
		}
		n := NewNode(p, len(classRaw))
		jobs := make([]*vtime.ActiveJob, len(classRaw))
		for i, c := range classRaw {
			jobs[i] = &vtime.ActiveJob{Job: vtime.Job{Work: 1, Class: int(c) % int(numClasses), Lane: i}}
		}
		n.Rates(jobs)
		for _, j := range jobs {
			base := p.BaseIPC[Class(j.Class)] * p.Freq
			if !(j.Rate > 0) || j.Rate > base*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the slowdown curve is monotone non-increasing in load.
func TestPropertySlowdownMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint16) bool {
		x, y := float64(a)/100, float64(b)/100
		if x > y {
			x, y = y, x
		}
		return p.Slowdown(x) >= p.Slowdown(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTileSharingSlowsSameTilePairs(t *testing.T) {
	p := DefaultParams()
	p.TileDemand[ClassVector] = 0.6
	n := NewNode(p, 68)
	// Cores 0 and 1 share tile 0; cores 0 and 2 do not share a tile.
	sameTile := []*vtime.ActiveJob{
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 0}},
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 1}},
	}
	n.Rates(sameTile)
	same := ipcOf(n, sameTile[0])
	crossTile := []*vtime.ActiveJob{
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 0}},
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 2}},
	}
	n.Rates(crossTile)
	cross := ipcOf(n, crossTile[0])
	if same >= cross {
		t.Fatalf("same-tile pair IPC %.3f not below cross-tile %.3f", same, cross)
	}
	// With the calibrated default (zero demands) the tile level is off.
	p2 := DefaultParams()
	n2 := NewNode(p2, 68)
	st := []*vtime.ActiveJob{
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 0}},
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 1}},
	}
	n2.Rates(st)
	ct := []*vtime.ActiveJob{
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 0}},
		{Job: vtime.Job{Work: 1, Class: int(ClassVector), Lane: 2}},
	}
	n2.Rates(ct)
	if ipcOf(n2, st[0]) != ipcOf(n2, ct[0]) {
		t.Fatal("tile level active despite zero demands")
	}
}

func TestXeonParamsSane(t *testing.T) {
	p := XeonParams()
	if p.Cores >= DefaultParams().Cores || p.Freq <= DefaultParams().Freq {
		t.Fatalf("Xeon preset not a fat-core node: %d cores @ %g", p.Cores, p.Freq)
	}
	for c := ClassMem; c <= ClassVector; c++ {
		if p.BaseIPC[c] <= DefaultParams().BaseIPC[c] {
			t.Fatalf("Xeon base IPC for %v not above KNL", c)
		}
	}
	n := NewNode(p, 24)
	jobs := mkJobs(n, []Class{ClassVector})
	n.Rates(jobs)
	if jobs[0].Rate <= 0 {
		t.Fatal("invalid rate")
	}
}
