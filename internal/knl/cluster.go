package knl

import (
	"fmt"

	"repro/internal/vtime"
)

// Multi-node extension: the paper evaluates a single KNL node, but its
// Section IV argues the communication-overlap strategy "is especially
// targeting large scales where the impact of the communication is very
// high" — i.e. multi-node runs, where collectives cross an interconnect
// that is an order of magnitude slower than the on-node fabric. The
// cluster model keeps the per-node contention machinery intact (each node
// has its own shared-resource pool) and adds inter-node terms to the
// communication costs.

// Fabric is the communication cost model the MPI layer consults. Node
// implements it for a single node (the nodesSpanned argument is ignored);
// Cluster adds inter-node terms when a collective spans several nodes.
type Fabric interface {
	// TotalLanes returns the hardware lane count of the machine.
	TotalLanes() int
	// LaneNode returns the node hosting a lane.
	LaneNode(lane int) int
	// AlltoallTime models an Alltoall(v) among k ranks sending
	// bytesPerRank each, with commLanes lanes communicating concurrently,
	// spanning nodesSpanned nodes.
	AlltoallTime(k int, bytesPerRank float64, commLanes, nodesSpanned int) float64
	// BcastTime models a broadcast of bytes among k ranks.
	BcastTime(k int, bytes float64, commLanes, nodesSpanned int) float64
	// ReduceTime models an (all)reduce of bytes among k ranks.
	ReduceTime(k int, bytes float64, commLanes, nodesSpanned int) float64
	// P2PTime models one point-to-point message.
	P2PTime(bytes float64, commLanes, nodesSpanned int) float64
}

// NetParams describes the inter-node interconnect.
type NetParams struct {
	// Latency is the per-participant latency of an inter-node exchange
	// hop, in seconds (an Omni-Path/IB-class fabric: ~2 µs).
	Latency float64
	// Bandwidth is one node's uplink bandwidth in bytes/second
	// (~12.5 GB/s for a 100 Gb/s link).
	Bandwidth float64
}

// DefaultNet returns an Omni-Path-class interconnect, the fabric KNL
// systems shipped with.
func DefaultNet() NetParams {
	return NetParams{Latency: 2e-6, Bandwidth: 12.5e9}
}

// Cluster is a set of identical nodes joined by an interconnect. It
// implements vtime.Machine (per-node contention) and Fabric (inter-node
// communication costs). Lanes are block-distributed: lane L lives on node
// L/lanesPerNode.
type Cluster struct {
	PerNode      Params
	Net          NetParams
	NodeCount    int
	Lanes        int
	lanesPerNode int
	nodes        []*Node
}

// NewCluster builds a cluster of nodeCount nodes hosting lanes hardware
// lanes in total.
func NewCluster(p Params, net NetParams, nodeCount, lanes int) *Cluster {
	if nodeCount <= 0 {
		panic("knl: node count must be positive")
	}
	if lanes <= 0 {
		panic("knl: lanes must be positive")
	}
	lpn := (lanes + nodeCount - 1) / nodeCount
	if lpn > 4*p.Cores {
		panic(fmt.Sprintf("knl: %d lanes per node exceed 4-way hyper-threading on %d cores", lpn, p.Cores))
	}
	c := &Cluster{
		PerNode: p, Net: net, NodeCount: nodeCount, Lanes: lanes,
		lanesPerNode: lpn,
	}
	for n := 0; n < nodeCount; n++ {
		c.nodes = append(c.nodes, NewNode(p, lpn))
	}
	return c
}

// TotalLanes implements Fabric.
func (c *Cluster) TotalLanes() int { return c.Lanes }

// LaneNode implements Fabric.
func (c *Cluster) LaneNode(lane int) int { return lane / c.lanesPerNode }

// Rates implements vtime.Machine: jobs are grouped by node and each node's
// model evaluates its own contention with node-local lane indices.
func (c *Cluster) Rates(jobs []*vtime.ActiveJob) {
	if c.NodeCount == 1 {
		c.nodes[0].Rates(jobs)
		return
	}
	byNode := make(map[int][]*vtime.ActiveJob)
	for _, j := range jobs {
		byNode[c.LaneNode(j.Lane)] = append(byNode[c.LaneNode(j.Lane)], j)
	}
	for n, group := range byNode {
		// Present node-local lane indices to the node model.
		local := make([]*vtime.ActiveJob, len(group))
		for i, j := range group {
			cp := *j
			cp.Lane = j.Lane - n*c.lanesPerNode
			local[i] = &cp
		}
		c.nodes[n].Rates(local)
		for i, j := range group {
			j.Rate = local[i].Rate
		}
	}
}

// interTime returns the inter-node component of moving bytesPerRank per
// rank across the uplinks, with the node's uplink shared by its
// communicating lanes.
func (c *Cluster) interTime(k int, bytesPerRank float64, commLanes, nodesSpanned int) float64 {
	if nodesSpanned <= 1 {
		return 0
	}
	// Fraction of each rank's traffic that leaves its node in a uniform
	// exchange over nodesSpanned nodes.
	frac := 1 - 1/float64(nodesSpanned)
	lanesPerNodeComm := commLanes / nodesSpanned
	if lanesPerNodeComm < 1 {
		lanesPerNodeComm = 1
	}
	uplinkPerRank := c.Net.Bandwidth / float64(lanesPerNodeComm)
	return c.Net.Latency*float64(k-1) + bytesPerRank*frac/uplinkPerRank
}

// AlltoallTime implements Fabric: the on-node component (evaluated by the
// per-node model) plus the inter-node component; the slower of the two
// paths dominates a pipelined exchange, so the maximum is charged.
func (c *Cluster) AlltoallTime(k int, bytesPerRank float64, commLanes, nodesSpanned int) float64 {
	intra := c.nodes[0].AlltoallTime(k, bytesPerRank, commLanes, 1)
	inter := c.interTime(k, bytesPerRank, commLanes, nodesSpanned)
	if inter > intra {
		return inter
	}
	return intra
}

// BcastTime implements Fabric.
func (c *Cluster) BcastTime(k int, bytes float64, commLanes, nodesSpanned int) float64 {
	intra := c.nodes[0].BcastTime(k, bytes, commLanes, 1)
	inter := c.interTime(k, bytes, commLanes, nodesSpanned)
	if inter > intra {
		return inter
	}
	return intra
}

// ReduceTime implements Fabric.
func (c *Cluster) ReduceTime(k int, bytes float64, commLanes, nodesSpanned int) float64 {
	return c.BcastTime(k, bytes, commLanes, nodesSpanned)
}

// P2PTime implements Fabric.
func (c *Cluster) P2PTime(bytes float64, commLanes, nodesSpanned int) float64 {
	intra := c.nodes[0].P2PTime(bytes, commLanes, 1)
	if nodesSpanned <= 1 {
		return intra
	}
	inter := c.Net.Latency + bytes/c.Net.Bandwidth
	if inter > intra {
		return inter
	}
	return intra
}
