package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

// resetState restores the package defaults after a test that toggles them.
func resetState(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetEnabled(true)
		SetWorkers(0)
	})
}

// Every index must be visited exactly once, whatever the worker count.
func TestParallelForCoversRange(t *testing.T) {
	resetState(t)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 100000} {
				visits := make([]int32, n)
				ParallelFor(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("w=%d n=%d grain=%d: bad range [%d,%d)", w, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("w=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, v)
					}
				}
			}
		}
	}
}

// Results must be bit-identical with parallelism on and off: the chunk
// layout is fixed, and bodies only write their own range.
func TestParallelForDeterministic(t *testing.T) {
	resetState(t)
	n := 513
	run := func() []float64 {
		out := make([]float64, n)
		ParallelFor(n, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		return out
	}
	SetEnabled(false)
	serial := run()
	SetEnabled(true)
	SetWorkers(4)
	parallel := run()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %v parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestParallelForDisabledRunsInline(t *testing.T) {
	resetState(t)
	SetEnabled(false)
	calls := 0
	ParallelFor(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("disabled ParallelFor split the range: [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("disabled ParallelFor ran %d chunks", calls)
	}
}

func TestParallelForGrainFloorsChunks(t *testing.T) {
	resetState(t)
	SetWorkers(8)
	ParallelFor(100, 30, func(lo, hi int) {
		if hi-lo < 30 && hi != 100 {
			t.Fatalf("chunk [%d,%d) smaller than grain", lo, hi)
		}
	})
}

func TestParallelForPanicPropagates(t *testing.T) {
	resetState(t)
	SetWorkers(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in body was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	ParallelFor(100, 1, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

func TestSetWorkersRestoresDefault(t *testing.T) {
	resetState(t)
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}
