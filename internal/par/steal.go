// Work-stealing runtime. The default ParallelFor path claims fixed chunks
// off a shared atomic counter: deterministic, but every claim contends on
// one cache line and an executor that finishes early spins on the counter
// instead of helping a loaded neighbor. Pool keeps the exact same chunk
// boundaries (they depend only on n, grain and the pool width, so the
// bit-identical contract is untouched) and changes only who runs each
// chunk: chunks are dealt round-robin onto per-worker deques, owners pop
// LIFO for cache locality, and a worker that drains its deque steals FIFO
// from random victims — the classic owner-LIFO/thief-FIFO discipline.
//
// The fixed-chunk mode stays the package default; SetStealing(true) routes
// ParallelFor through a shared Pool. Bodies obey the same contract either
// way: writes confined to [lo,hi), no mpi/vtime/ompss calls (fftxvet's
// parbody rule covers Pool.ParallelFor too).
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// stealing is the process-wide switch routing ParallelFor through the
// shared work-stealing pool.
var stealing atomic.Bool

// SetStealing selects the work-stealing executor for ParallelFor
// process-wide and (re)builds the shared pool for the configured worker
// count. Chunk boundaries — and therefore results — are identical to the
// default fixed-chunk mode; only the chunk-to-thread assignment becomes
// scheduling-dependent. Must not race in-flight ParallelFor calls.
func SetStealing(on bool) {
	stealing.Store(on)
	rebuildSharedPool()
}

// Stealing reports whether ParallelFor uses the work-stealing pool.
func Stealing() bool { return stealing.Load() }

// sharedPool is the pool behind SetStealing. It is built and rebuilt only on
// the cold configuration paths (SetStealing, SetWorkers), never from inside
// ParallelFor: the hot path just loads the pointer, keeping it free of
// allocation — and of pool construction — in steady state.
var (
	sharedMu   sync.Mutex
	sharedPool atomic.Pointer[Pool]
)

// rebuildSharedPool reconciles the shared pool with the current switches:
// built at the configured width while stealing is on, closed and dropped
// while it is off (so no worker goroutines linger).
func rebuildSharedPool() {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	old := sharedPool.Load()
	if !Stealing() {
		if old != nil {
			sharedPool.Store(nil)
			old.Close()
		}
		return
	}
	w := Workers()
	if old != nil && old.width == w {
		return
	}
	sharedPool.Store(NewPool(w))
	if old != nil {
		old.Close()
	}
}

// stealCall is the shared state of one Pool.ParallelFor invocation. The
// pool owns a single record (invocations are not concurrent) and reuses it,
// so the transform hot path through Pool.ParallelFor stays allocation-free
// in steady state — the same zero-alloc contract hotalloc enforces on the
// fixed-chunk mode. The done channel is allocated once in NewPool; the last
// finisher sends one token instead of closing it.
type stealCall struct {
	n, chunk  int
	fn        func(lo, hi int)
	remaining atomic.Int32
	done      chan struct{}
	panicked  atomic.Pointer[panicValue]
}

// stealTask is one deque entry: a chunk index bound to its call, so a
// worker draining the tail of one invocation can safely pick up entries
// the next invocation has already pushed.
type stealTask struct {
	cs *stealCall
	c  int
}

// dequeCap bounds one deque's entries within a single invocation: the chunk
// formula yields at most 4·width chunks, dealt round-robin over width
// deques, so no deque ever holds more than ceil(4·width/width) = 4 entries
// (the deques drain completely between invocations). The 2× headroom keeps
// the fixed buffer safe against small formula adjustments.
const dequeCap = 8

// deque is one worker's chunk queue over a fixed buffer preallocated in
// NewPool ([head,tail) is the live window; both reset to 0 when it drains).
// A mutex keeps it simple and race-free; chunk bodies dwarf the push/pop
// critical sections, so a lock-free Chase-Lev deque would buy nothing here.
type deque struct {
	mu         sync.Mutex
	ts         []stealTask
	head, tail int
}

func (d *deque) push(t stealTask) {
	d.mu.Lock()
	d.ts[d.tail] = t
	d.tail++
	d.mu.Unlock()
}

// popTail removes the newest entry (owner side, LIFO).
func (d *deque) popTail() (stealTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == d.tail {
		return stealTask{}, false
	}
	d.tail--
	t := d.ts[d.tail]
	if d.head == d.tail {
		d.head, d.tail = 0, 0
	}
	return t, true
}

// popHead removes the oldest entry (thief side, FIFO).
func (d *deque) popHead() (stealTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == d.tail {
		return stealTask{}, false
	}
	t := d.ts[d.head]
	d.head++
	if d.head == d.tail {
		d.head, d.tail = 0, 0
	}
	return t, true
}

// Pool is a work-stealing executor with persistent worker goroutines. One
// invocation runs at a time per pool (ParallelFor is not reentrant); Close
// joins every worker — no goroutine outlives it.
type Pool struct {
	width  int
	deques []deque
	calls  []chan *stealCall
	wg     sync.WaitGroup
	call   stealCall  // reused invocation record (one invocation at a time)
	box    panicValue // reused panic box (first panic wins the CAS)
}

// NewPool starts a pool of w workers (w < 1 means GOMAXPROCS).
func NewPool(w int) *Pool {
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		width:  w,
		deques: make([]deque, w),
		calls:  make([]chan *stealCall, w),
	}
	p.call.done = make(chan struct{}, 1)
	for i := range p.deques {
		p.deques[i].ts = make([]stealTask, dequeCap)
	}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		i := i
		p.calls[i] = make(chan *stealCall, 1)
		go func() {
			defer p.wg.Done()
			// The channel is a wake signal; deque entries carry their own
			// call state, so a worker lingering in a previous invocation's
			// claim loop can already execute entries of the next one.
			for range p.calls[i] {
				p.work(i)
			}
		}()
	}
	return p
}

// Width returns the pool's worker count.
func (p *Pool) Width() int { return p.width }

// Close shuts the workers down and blocks until every worker goroutine has
// exited. The pool must be idle; ParallelFor must not be called afterwards.
func (p *Pool) Close() {
	for i := range p.calls {
		close(p.calls[i])
	}
	p.wg.Wait()
}

// ParallelFor runs fn over [0,n) with the same chunk boundaries and body
// contract as the package-level ParallelFor, executed by the pool's workers
// under work stealing. A panic in any chunk is re-raised on the caller
// after all chunks finish. Not safe for concurrent invocations of the same
// pool.
func (p *Pool) ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.width <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunk := (n + 4*p.width - 1) / (4 * p.width)
	if chunk < grain {
		chunk = grain
	}
	nc := (n + chunk - 1) / chunk
	if nc <= 1 {
		fn(0, n)
		return
	}
	cs := &p.call
	cs.n, cs.chunk, cs.fn = n, chunk, fn
	cs.panicked.Store(nil)
	cs.remaining.Store(int32(nc))
	for c := 0; c < nc; c++ {
		p.deques[c%p.width].push(stealTask{cs: cs, c: c})
	}
	for i := range p.calls {
		p.calls[i] <- cs
	}
	<-cs.done
	cs.fn = nil // drop the body reference so the pool doesn't pin caller state
	if pv := cs.panicked.Load(); pv != nil {
		panic(fmt.Sprintf("par: panic in ParallelFor body: %v", pv.v))
	}
}

// work is one worker's claim loop for the current invocation: drain the own
// deque newest-first, then steal oldest-first from random victims, and
// return once a full sweep finds no unclaimed chunk (no chunk is added
// mid-invocation, so an empty sweep is conclusive).
func (p *Pool) work(id int) {
	seed := uint64(id)*0x9E3779B97F4A7C15 + 1
	for {
		t, ok := p.deques[id].popTail()
		if !ok {
			t, ok = p.steal(id, &seed)
		}
		if !ok {
			return
		}
		p.exec(t)
	}
}

// steal tries a bounded number of random victims (xorshift64, seeded per
// worker), then falls back to one deterministic sweep over every deque.
func (p *Pool) steal(id int, seed *uint64) (stealTask, bool) {
	for tries := 0; tries < 2*p.width; tries++ {
		*seed ^= *seed << 13
		*seed ^= *seed >> 7
		*seed ^= *seed << 17
		v := int(*seed % uint64(p.width-1))
		if v >= id {
			v++
		}
		if t, ok := p.deques[v].popHead(); ok {
			return t, true
		}
	}
	for v := 0; v < p.width; v++ {
		if t, ok := p.deques[v].popHead(); ok {
			return t, true
		}
	}
	return stealTask{}, false
}

// exec runs one claimed chunk, boxing the first panic on its call (into the
// pool's preallocated box: the CAS winner writes the value, and the write
// happens-before the caller's read via the remaining-counter chain), and
// sends the call's done token when the last chunk finishes.
func (p *Pool) exec(t stealTask) {
	cs := t.cs
	func() {
		defer func() {
			if r := recover(); r != nil {
				if cs.panicked.CompareAndSwap(nil, &p.box) {
					p.box.v = r
				}
			}
		}()
		lo := t.c * cs.chunk
		hi := lo + cs.chunk
		if hi > cs.n {
			hi = cs.n
		}
		cs.fn(lo, hi)
	}()
	if cs.remaining.Add(-1) == 0 {
		cs.done <- struct{}{}
	}
}
