// Package par is a small deterministic host-parallel loop runner for the
// real-numerics kernels of the simulator. It exists to make the repo's
// wall-clock cost scale with host cores: the virtual-time engine runs one
// simulated lane at a time, so without host parallelism a 64-lane run uses
// one core no matter how many the machine has.
//
// ParallelFor(n, grain, fn) splits [0,n) into fixed contiguous chunks and
// runs fn(lo, hi) over them on a pool of worker goroutines sized by
// GOMAXPROCS (the caller participates). The chunk boundaries depend only on
// the arguments and the configured worker count — never on scheduling — and
// the contract is that fn writes only data indexed by [lo,hi), so results
// are bit-identical to the serial loop regardless of execution order.
// Simulated virtual time is charged by the analytic cost model outside
// these loops, so enabling or disabling host parallelism changes host wall
// clock only, never simulated results.
//
// The package-wide switch mirrors metrics.SetEnabled: SetEnabled(false)
// turns every ParallelFor into the plain serial loop, which is what the
// equivalence tests and the -hostpar=false CLI flag use.
//
// Bodies passed to ParallelFor run on host threads OUTSIDE the virtual-time
// engine: they must not touch mpi.Ctx, vtime procs/waiters or the ompss
// runtime (the fftxvet parbody rule enforces this — the same deadlock class
// as blockintask, on a new surface).
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide host-parallelism switch.
var enabled atomic.Bool

// workers is the target concurrency of one ParallelFor call (chunk
// executors, including the caller).
var workers atomic.Int32

func init() {
	enabled.Store(true)
	workers.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetEnabled turns host parallelism on or off process-wide. When off,
// ParallelFor runs its body serially on the calling goroutine.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether ParallelFor fans out to the worker pool.
func Enabled() bool { return enabled.Load() }

// SetWorkers overrides the per-call concurrency (chunk executors including
// the caller). n < 1 restores the GOMAXPROCS default. Tests use it to force
// real concurrency on small hosts; results are identical either way.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workers.Store(int32(n))
	rebuildSharedPool()
}

// Workers returns the current per-call concurrency target.
func Workers() int { return int(workers.Load()) }

// pool is the lazily started persistent helper pool. Helpers beyond the
// pool size (e.g. SetWorkers above GOMAXPROCS in tests) fall back to fresh
// goroutines, so submit never blocks behind a busy pool.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func startPool() {
	size := runtime.GOMAXPROCS(0) - 1
	if size < 0 {
		size = 0
	}
	poolCh = make(chan func())
	for i := 0; i < size; i++ {
		go func() {
			for f := range poolCh {
				f()
			}
		}()
	}
}

func submit(f func()) {
	select {
	case poolCh <- f:
	default:
		go f()
	}
}

// ParallelFor runs fn over [0,n) in disjoint contiguous chunks of at least
// grain indices. fn must confine its writes to data indexed by its [lo,hi)
// range and must not touch the simulation runtimes (mpi/vtime/ompss). A
// panic in any chunk is re-raised on the caller after all chunks finish.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if !Enabled() || w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	if Stealing() {
		if sp := sharedPool.Load(); sp != nil && sp.width == w {
			sp.ParallelFor(n, grain, fn)
			return
		}
		// No pool at this width (mid-reconfiguration): the fixed-chunk
		// path below produces bit-identical results, so fall through.
	}
	// Fixed chunking: big enough to respect grain, small enough to give
	// each executor a few chunks for load balance. Boundaries depend only
	// on (n, grain, w).
	chunk := (n + 4*w - 1) / (4 * w)
	if chunk < grain {
		chunk = grain
	}
	nc := (n + chunk - 1) / chunk
	if nc <= 1 {
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)

	var next atomic.Int32
	var panicked atomic.Pointer[panicValue]
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{r})
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= nc {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	helpers := w - 1
	if nc-1 < helpers {
		helpers = nc - 1
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		submit(func() {
			defer wg.Done()
			body()
		})
	}
	body()
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(fmt.Sprintf("par: panic in ParallelFor body: %v", pv.v))
	}
}

// panicValue boxes the first recovered panic of a ParallelFor call.
type panicValue struct{ v any }
