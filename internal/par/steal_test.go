package par

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// The stealing executor must produce exactly the serial result for a
// conforming body (writes confined to [lo,hi)), across chunking shapes.
func TestPoolMatchesSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, grain int }{
		{1, 1}, {7, 1}, {64, 1}, {64, 16}, {1000, 3}, {1000, 999},
	} {
		got := make([]int, tc.n)
		p.ParallelFor(tc.n, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range got {
			if got[i] != i*i {
				t.Fatalf("n=%d grain=%d: got[%d]=%d, want %d", tc.n, tc.grain, i, got[i], i*i)
			}
		}
	}
}

// SetStealing routes the package-level ParallelFor through the shared pool
// with unchanged results.
func TestSetStealingRoutesParallelFor(t *testing.T) {
	SetStealing(true)
	defer SetStealing(false)
	if !Stealing() {
		t.Fatal("Stealing() false after SetStealing(true)")
	}
	const n = 512
	got := make([]float64, n)
	ParallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = float64(i) * 0.5
		}
	})
	for i := range got {
		if got[i] != float64(i)*0.5 {
			t.Fatalf("got[%d]=%v, want %v", i, got[i], float64(i)*0.5)
		}
	}
}

// Repeated invocations reuse the same pool; workers lingering from one
// invocation may claim the next one's chunks, which must stay correct.
func TestPoolBackToBackInvocations(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 256
	buf := make([]int, n)
	for round := 0; round < 50; round++ {
		round := round
		p.ParallelFor(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = round + i
			}
		})
		for i := range buf {
			if buf[i] != round+i {
				t.Fatalf("round %d: buf[%d]=%d, want %d", round, i, buf[i], round+i)
			}
		}
	}
}

// Close must join every worker goroutine: after Close returns, the
// goroutine count is back at its pre-NewPool baseline (no leaked workers).
func TestPoolCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(16)
	p.ParallelFor(1024, 1, func(lo, hi int) {})
	if g := runtime.NumGoroutine(); g < before+16 {
		t.Fatalf("pool running: %d goroutines, want >= %d", g, before+16)
	}
	p.Close()
	// Close waits for worker exit, but the runtime may take a moment to
	// retire the descheduled goroutines from the count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after Close: %d goroutines, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Panic propagation from a stolen chunk. The blocking structure forces the
// steal: with 2 workers and chunks {0,2} on worker 0's deque (round-robin),
// worker 0 pops chunk 2 first (LIFO) and blocks until chunk 0 runs — so
// chunk 0 can only execute as worker 1's steal (FIFO off worker 0's deque).
// Its panic must reach the caller, and the release must still happen so no
// worker deadlocks.
func TestPoolPanicFromStolenChunk(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	release := make(chan struct{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic from stolen chunk did not propagate")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "par: panic in ParallelFor body: stolen boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	// n=3, grain=1 with width 2 gives chunk size 1, so lo names the chunk.
	p.ParallelFor(3, 1, func(lo, hi int) {
		switch lo {
		case 0:
			close(release)
			panic("stolen boom")
		case 2:
			<-release
		}
	})
}

// After a panicked invocation the pool stays usable.
func TestPoolUsableAfterPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.ParallelFor(64, 1, func(lo, hi int) {
			if lo == 0 {
				panic("first")
			}
		})
	}()
	got := make([]int, 64)
	p.ParallelFor(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = i
		}
	})
	for i := range got {
		if got[i] != i {
			t.Fatalf("got[%d]=%d after panic round", i, got[i])
		}
	}
}
