package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// runDataflow schedules the stage graph as pure dataflow: the graph's
// dependency plan (graph.Plan — segment and scatter nodes with explicit
// edges) is instantiated once per band as a chain of futures, and every
// compute segment is a task released by successor counting the moment the
// future of its incoming scatter resolves. The scatters themselves are
// posted asynchronously from the completing segment's worker and complete
// their future from the communication handler — a worker never blocks in
// MPI, and unlike the combined engine there is no final taskwait barrier
// either: the last segment of each band completes one slot of a per-rank
// join future, and the rank's main process parks on that join alone. This
// is the futures-with-continuations schedule of the HPX FFT case studies
// (PAPERS.md), mapped onto the OmpSs-style runtime.
//
// Two policies distinguish the schedule from the combined engine's:
//
//   - Critical-path-first priorities. Tasks carry their plan node's depth
//     as priority, so among ready tasks the runtime always advances the
//     band furthest along its pipeline (backward-Z over XY over
//     forward-Z), draining in-flight bands before opening new ones.
//
//   - Bounded lookahead. Band b's first segment carries a dataflow edge on
//     band b-T's completion future (T = the rank's workers), capping the
//     in-flight bands per rank at the worker count. The combined engine's
//     workers greedily open a new band's forward segment whenever a
//     scatter is in flight, which keeps every lane of the node computing
//     the same phase class at once — exactly the concurrency the paper's
//     KNL contention model punishes (Figure 3's IPC collapse). The window
//     trades that contention for short idle gaps, the same exchange that
//     makes the per-iteration engine fast, but without its lanes ever
//     blocking inside MPI: on narrow-rank shapes the dataflow engine beats
//     the combined engine outright (see BENCH_engines.json).
func runDataflow(cfg Config) (*Result, error) {
	R, T := cfg.Ranks, cfg.NTG
	h := newHarness(cfg, R, T)
	k := h.k
	ft := h.newFlat()
	plan := k.pipe.Plan()
	segNodes := plan.Segments()
	jobs := h.jobs()

	worldComm := h.w.CommWorld()
	for p := 0; p < R; p++ {
		p := p
		rt := h.newRankRuntime(p*T, T)
		h.eng.Spawn(fmt.Sprintf("rank%d.main", p), func(mp *vtime.Proc) {
			// One join slot per band: completed by the final segment's task
			// continuation, after the task has left the pending count, so
			// Wait returning implies the runtime is drained and Shutdown is
			// immediately legal.
			done := rt.NewJoin("bands", jobs)
			// The lookahead window: band b starts only after band b-T has
			// fully completed, expressed as an ordinary dataflow edge.
			window := T
			bandDone := make([]*ompss.Future, jobs)
			for b := range bandDone {
				bandDone[b] = rt.NewFuture(fmt.Sprintf("band%d", b))
			}
			for b := 0; b < jobs; b++ {
				b := b
				s := &graph.State{Job: b}
				var prev *ompss.Future
				for _, sn := range segNodes {
					sn := sn
					var after []*ompss.Future
					if prev != nil {
						after = append(after, prev)
					}
					if len(sn.Preds) == 0 && b >= window {
						after = append(after, bandDone[b-window])
					}
					scat := plan.ScatterAfter(sn)
					var next *ompss.Future
					if scat != nil {
						next = rt.NewFuture(fmt.Sprintf("scat%d.b%d", scat.Index, b))
					}
					first := len(sn.Preds) == 0
					t := rt.SubmitAfter(mp, fmt.Sprintf("seg%d.b%d", sn.Depth, b), after, sn.Depth, func(wk *ompss.Worker) {
						if first {
							ft.pack(wk, p, b, s)
						}
						for _, st := range sn.Stages {
							k.runStage(wk, st, s, p)
						}
						if scat != nil {
							k.runScatterAsync(h.ctx(wk, p), worldComm, b, scat.Scatter, s, p, next.Complete)
						} else {
							ft.unpack(wk, p, b, s)
						}
					})
					if scat == nil {
						rt.OnComplete(t, func(hp *vtime.Proc) {
							bandDone[b].Complete(hp)
							done.Complete(hp)
						})
					}
					prev = next
				}
			}
			done.Wait(mp)
			rt.Shutdown(mp)
		})
	}
	return h.finish(ft.collect)
}
