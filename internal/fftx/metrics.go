package fftx

import (
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Run-level telemetry. The per-phase compute counters live in the mpi and
// ompss layers (fftx_phase_*); together with fftx_core_frequency_hz they
// give live IPC: instructions / (compute seconds * frequency).
var (
	mRuns         = metrics.Default().CounterVec("fftx_runs_total", "kernel runs started, by engine", "engine")
	mFreq         = metrics.Default().Gauge("fftx_core_frequency_hz", "core frequency of the simulated node model")
	mAutoSelected = metrics.Default().CounterVec("fftx_auto_selected_total", "engines chosen by EngineAuto cost-model selection", "engine")
)

// traceSink builds the sink the engines record into: the run's own Trace,
// teed with the config's streaming Sink when one is set.
func (c Config) traceSink(tr *trace.Trace) trace.Sink {
	if c.Sink != nil {
		return trace.Tee(tr, c.Sink)
	}
	return tr
}
