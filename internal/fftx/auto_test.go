package fftx

import (
	"math"
	"testing"
)

// sweepPoints are the (ranks, ntg) workload shapes the selector is held
// against — a spread of group counts and widths around the test grid.
func autoSweepPoints(t *testing.T) []Config {
	t.Helper()
	shapes := []struct{ ranks, ntg int }{
		{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {3, 2}, {4, 1}, {4, 2},
	}
	if testing.Short() {
		shapes = shapes[:4]
	}
	cfgs := make([]Config, 0, len(shapes))
	for _, s := range shapes {
		cfgs = append(cfgs, Config{
			Ecut: testEcut, Alat: testAlat, NB: 8,
			Ranks: s.ranks, NTG: s.ntg, Mode: ModeCost,
		})
	}
	return cfgs
}

// The selector's contract: on (nearly) every sweep point, SelectEngine
// returns the argmin of the per-engine ModeCost runtimes, with deterministic
// declaration-order ties. The ≥90% floor leaves room for measurement-model
// degeneracy without letting the selector drift from the cost model.
func TestAutoSelectsFastestEngine(t *testing.T) {
	points := autoSweepPoints(t)
	agree := 0
	for _, cfg := range points {
		// Independent ground truth: run every applicable engine the way the
		// selector's probes do and take the argmin in declaration order.
		best, bestT := EngineOriginal, math.Inf(1)
		found := false
		for _, e := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined, EngineDataflow} {
			pc := cfg.withDefaults()
			pc.Engine = e
			if err := pc.validate(); err != nil {
				continue
			}
			res, err := Run(pc)
			if err != nil {
				t.Fatalf("%v %dx%d: %v", e, cfg.Ranks, cfg.NTG, err)
			}
			if res.Runtime < bestT {
				best, bestT, found = e, res.Runtime, true
			}
		}
		if !found {
			t.Fatalf("no engine applicable at %dx%d", cfg.Ranks, cfg.NTG)
		}

		sel, err := SelectEngine(cfg)
		if err != nil {
			t.Fatalf("SelectEngine %dx%d: %v", cfg.Ranks, cfg.NTG, err)
		}
		if sel == best {
			agree++
		} else {
			t.Logf("%dx%d: selector picked %v, argmin is %v (%.6fs)", cfg.Ranks, cfg.NTG, sel, best, bestT)
		}

		// Determinism: asking again (cached or not) returns the same engine.
		again, err := SelectEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != sel {
			t.Errorf("%dx%d: selection not deterministic: %v then %v", cfg.Ranks, cfg.NTG, sel, again)
		}
	}
	if frac := float64(agree) / float64(len(points)); frac < 0.9 {
		t.Errorf("selector matched the argmin on %d/%d points (%.0f%%), want >= 90%%", agree, len(points), 100*frac)
	}
}

// Running with EngineAuto end-to-end resolves to a concrete engine, records
// both the executed and the requested engine in the trace metadata, and
// matches a direct run of the selected engine bit-for-bit.
func TestAutoRunResolvesAndMatches(t *testing.T) {
	cfg := Config{
		Ecut: testEcut, Alat: testAlat, NB: 8, Ranks: 2, NTG: 2,
		Engine: EngineAuto, Mode: ModeCost,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine == EngineAuto {
		t.Fatal("auto run did not resolve to a concrete engine")
	}
	if got := res.Trace.Meta["engine"]; got != res.Engine.String() {
		t.Errorf("trace engine label %q, want %q", got, res.Engine)
	}
	if got := res.Trace.Meta["engine-requested"]; got != "auto" {
		t.Errorf("trace engine-requested label %q, want auto", got)
	}

	direct := cfg
	direct.Engine = res.Engine
	want, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != want.Runtime {
		t.Errorf("auto runtime %v differs from direct %v run %v", res.Runtime, res.Engine, want.Runtime)
	}
}

// Gamma mode restricts the candidate set; the selector must never hand back
// an engine the configuration cannot run.
func TestAutoRespectsGammaRestriction(t *testing.T) {
	cfg := Config{
		Ecut: testEcut, Alat: testAlat, NB: 8, Ranks: 2, NTG: 2,
		Engine: EngineAuto, Mode: ModeCost, Gamma: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != EngineOriginal && res.Engine != EngineTaskIter && res.Engine != EngineDataflow {
		t.Errorf("gamma auto run resolved to unsupported engine %v", res.Engine)
	}
	// The selection must also execute: a direct run of the resolved engine
	// under gamma validates and completes.
	direct := cfg
	direct.Engine = res.Engine
	if _, err := Run(direct); err != nil {
		t.Errorf("gamma run of selected engine %v: %v", res.Engine, err)
	}
}

func TestParseEngine(t *testing.T) {
	for e := EngineOriginal; e <= EngineAuto; e++ {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("warp-drive"); err == nil {
		t.Error("ParseEngine accepted an unknown name")
	}
}
