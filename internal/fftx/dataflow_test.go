package fftx

import (
	"testing"

	"repro/internal/trace"
)

// The dataflow engine's defining property: no process ever blocks at a
// taskwait barrier. The combined engine at the same shape must show the
// stall the dataflow engine eliminated.
func TestDataflowHasNoTaskwaitStall(t *testing.T) {
	mk := func(e Engine) *Result {
		cfg := Config{Ecut: 20, Alat: 12, NB: 32, Ranks: 4, NTG: 4,
			Engine: e, Mode: ModeCost}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		return res
	}
	df := mk(EngineDataflow)
	if df.TaskwaitSec != 0 {
		t.Errorf("dataflow run reports TaskwaitSec %v, want 0", df.TaskwaitSec)
	}
	comb := mk(EngineTaskCombined)
	if comb.TaskwaitSec <= 0 {
		t.Errorf("task-combined run reports TaskwaitSec %v, want > 0", comb.TaskwaitSec)
	}
}

// Like the combined engine, dataflow workers never block in MPI: every
// scatter is posted asynchronously, so no MPI sync or transfer time may
// appear on any compute lane.
func TestDataflowHidesCommFromLanes(t *testing.T) {
	res, err := Run(testConfig(EngineDataflow, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Trace.Intervals {
		if iv.Kind == trace.KindMPISync || iv.Kind == trace.KindMPITransfer {
			t.Fatalf("dataflow engine recorded lane MPI time: %+v", iv)
		}
	}
}

// On narrow-rank shapes (the committed quick-bench points 1x4 and 2x4) the
// bounded-lookahead dataflow schedule must beat the combined engine's
// greedy one — the BENCH_engines.json claim, held in-tree.
func TestDataflowFasterThanCombinedWhenContended(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		mk := func(e Engine) float64 {
			cfg := Config{Ecut: 10, Alat: 10, NB: 16, Ranks: ranks, NTG: 4,
				Engine: e, Mode: ModeCost}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v: %v", e, err)
			}
			return res.Runtime
		}
		df := mk(EngineDataflow)
		comb := mk(EngineTaskCombined)
		if df >= comb {
			t.Fatalf("%dx4: dataflow (%.6f) not faster than task-combined (%.6f)", ranks, df, comb)
		}
	}
}

// Instruction totals are engine-invariant (the jitter draws key on the
// band/position/phase, never the schedule), so the dataflow schedule may
// only move work, not change it.
func TestDataflowInstructionTotalsMatchTaskIter(t *testing.T) {
	mk := func(e Engine) float64 {
		cfg := testConfig(e, 2, 2, 8)
		cfg.Mode = ModeCost
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		return res.Trace.TotalInstr()
	}
	if df, it := mk(EngineDataflow), mk(EngineTaskIter); df != it {
		t.Fatalf("instruction totals differ: dataflow %g vs task-iter %g", df, it)
	}
}
