package graph

import (
	"repro/internal/fft"
	"repro/internal/knl"
)

// Pipeline builds the per-band stage graph of the FFT phase. The miniapp's
// "forward" direction (reciprocal → real space) is the exp(+iGr) kernel,
// i.e. fft.Backward in this library's convention; the return leg applies
// fft.Forward with the 1/N scaling in g-extract.
//
// Stage names, classes and instruction models are part of the behavioural
// contract: the names key the deterministic work-variance draws and the
// trace phases every engine must reproduce identically.
func (k *Kernel) Pipeline(gamma bool) *Graph {
	if gamma {
		return k.gammaPipeline()
	}
	return &Graph{Stages: []Stage{
		{
			Name: "prep", Step: "fft-z-fw", Class: knl.ClassMem, Instr: k.InstrPrep,
			Body: func(s *State, p int) { s.ZBuf = k.PrepSticks(p, s.Coeffs) },
		},
		{
			Name: "fft-z", Step: "fft-z-fw", Class: knl.ClassStream, Instr: k.InstrFFTZ,
			Body:  func(s *State, p int) { k.FFTZ(p, s.ZBuf, fft.Backward) },
			Split: SplitSticks, LoopName: "cft_1z", Count: k.Layout.NSticksOf,
			Part: func(s *State, p, lo, hi int) { k.FFTZPart(s.ZBuf, fft.Backward, lo, hi) },
		},
		{
			Name: "z-split", Step: "fft-z-fw", Class: knl.ClassMem, Instr: k.InstrZSplit,
			Body: func(s *State, p int) { s.Chunks = k.ScatterSplit(p, s.ZBuf) },
		},
		{Name: "scatter", Step: "scatter-fw", Kind: Scatter, Bytes: k.BytesScatter, TagOff: 0},
		{
			Name: "xy-fill", Step: "fft-xy-fw", Class: knl.ClassMem, Instr: k.InstrXYFill,
			Body: func(s *State, p int) { s.Planes = k.PlanesFromScatter(p, s.Chunks) },
		},
		{
			Name: "fft-xy", Step: "fft-xy-fw", Class: knl.ClassVector, Instr: k.InstrFFTXY,
			Body:  func(s *State, p int) { k.FFTXY(p, s.Planes, fft.Backward) },
			Split: SplitPlanes, LoopName: "cft_2xy", Count: k.Layout.NPlanesOf,
			Part: func(s *State, p, lo, hi int) { k.FFTXYPart(s.Planes, fft.Backward, lo, hi) },
		},
		{
			Name: "vofr", Step: "vofr", Class: knl.ClassVector, Instr: k.InstrVOfR,
			Body: func(s *State, p int) { k.VOfR(p, s.Planes) },
		},
		{
			Name: "fft-xy", Step: "fft-xy-bw", Class: knl.ClassVector, Instr: k.InstrFFTXY,
			Body:  func(s *State, p int) { k.FFTXY(p, s.Planes, fft.Forward) },
			Split: SplitPlanes, LoopName: "cft_2xy", Count: k.Layout.NPlanesOf,
			Part: func(s *State, p, lo, hi int) { k.FFTXYPart(s.Planes, fft.Forward, lo, hi) },
		},
		{
			Name: "xy-extract", Step: "fft-xy-bw", Class: knl.ClassMem, Instr: k.InstrXYExtract,
			Body: func(s *State, p int) { s.Chunks = k.PlanesToScatter(p, s.Planes) },
		},
		{Name: "scatter", Step: "scatter-bw", Kind: Scatter, Bytes: k.BytesScatter, TagOff: 1},
		{
			Name: "z-fill", Step: "fft-z-bw", Class: knl.ClassMem, Instr: k.InstrZFill,
			Body: func(s *State, p int) { s.ZBuf = k.SticksFromScatter(p, s.Chunks) },
		},
		{
			Name: "fft-z", Step: "fft-z-bw", Class: knl.ClassStream, Instr: k.InstrFFTZ,
			Body:  func(s *State, p int) { k.FFTZ(p, s.ZBuf, fft.Forward) },
			Split: SplitSticks, LoopName: "cft_1z", Count: k.Layout.NSticksOf,
			Part: func(s *State, p, lo, hi int) { k.FFTZPart(s.ZBuf, fft.Forward, lo, hi) },
		},
		{
			Name: "g-extract", Step: "fft-z-bw", Class: knl.ClassMem, Instr: k.InstrUnpack,
			Body: func(s *State, p int) { s.Res = k.ExtractCoeffs(p, s.ZBuf) },
		},
	}}
}

// gammaScaled multiplies an instruction model by GammaFactor (two bands
// per FFT double the column-proportional costs; the plane-proportional
// fft-xy and vofr stages stay unscaled).
func gammaScaled(instr func(p int) float64) func(p int) float64 {
	return func(p int) float64 { return GammaFactor * instr(p) }
}

// gammaPipeline is the band-pair variant: the same stage names, steps and
// classes, with the doubled-column bodies and GammaFactor-scaled costs.
func (k *Kernel) gammaPipeline() *Graph {
	return &Graph{Gamma: true, Stages: []Stage{
		{
			Name: "prep", Step: "fft-z-fw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrPrep),
			Body: func(s *State, p int) { s.ZBuf = k.PrepSticksGamma(p, s.Coeffs, s.Coeffs2) },
		},
		{
			Name: "fft-z", Step: "fft-z-fw", Class: knl.ClassStream, Instr: gammaScaled(k.InstrFFTZ),
			Body: func(s *State, p int) { k.FFTZGamma(p, s.ZBuf, fft.Backward) },
		},
		{
			Name: "z-split", Step: "fft-z-fw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrZSplit),
			Body: func(s *State, p int) { s.Chunks = k.ScatterSplitGamma(p, s.ZBuf) },
		},
		{Name: "scatter", Step: "scatter-fw", Kind: Scatter, Bytes: k.BytesScatterGamma, TagOff: 0},
		{
			Name: "xy-fill", Step: "fft-xy-fw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrXYFill),
			Body: func(s *State, p int) { s.Planes = k.PlanesFromScatterGamma(p, s.Chunks) },
		},
		{
			Name: "fft-xy", Step: "fft-xy-fw", Class: knl.ClassVector, Instr: k.InstrFFTXY,
			Body: func(s *State, p int) { k.FFTXY(p, s.Planes, fft.Backward) },
		},
		{
			Name: "vofr", Step: "vofr", Class: knl.ClassVector, Instr: k.InstrVOfR,
			Body: func(s *State, p int) { k.VOfR(p, s.Planes) },
		},
		{
			Name: "fft-xy", Step: "fft-xy-bw", Class: knl.ClassVector, Instr: k.InstrFFTXY,
			Body: func(s *State, p int) { k.FFTXY(p, s.Planes, fft.Forward) },
		},
		{
			Name: "xy-extract", Step: "fft-xy-bw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrXYExtract),
			Body: func(s *State, p int) { s.Chunks = k.PlanesToScatterGamma(p, s.Planes) },
		},
		{Name: "scatter", Step: "scatter-bw", Kind: Scatter, Bytes: k.BytesScatterGamma, TagOff: 1},
		{
			Name: "z-fill", Step: "fft-z-bw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrZFill),
			Body: func(s *State, p int) { s.ZBuf = k.SticksFromScatterGamma(p, s.Chunks) },
		},
		{
			Name: "fft-z", Step: "fft-z-bw", Class: knl.ClassStream, Instr: gammaScaled(k.InstrFFTZ),
			Body: func(s *State, p int) { k.FFTZGamma(p, s.ZBuf, fft.Forward) },
		},
		{
			Name: "g-extract", Step: "fft-z-bw", Class: knl.ClassMem, Instr: gammaScaled(k.InstrUnpack),
			Body: func(s *State, p int) { s.Res, s.Res2 = k.ExtractCoeffsGamma(p, s.ZBuf) },
		},
	}}
}
