package graph

import (
	"repro/internal/fft"
	"repro/internal/pw"
)

// Spec describes the problem geometry and cost coefficients a Kernel is
// built from — the engine- and runtime-free subset of the fftx Config.
type Spec struct {
	// Ecut is the plane-wave energy cutoff in Ry; Alat the lattice
	// parameter in bohr.
	Ecut, Alat float64
	// Ranks is R: the positions a band's FFT is distributed over.
	Ranks int
	// Gamma selects the gamma-point half-sphere geometry.
	Gamma bool
	// RealData builds the V(r) tables for real-numerics runs.
	RealData bool
	// UnitPotential replaces V(r) by 1 (identity-operator testing).
	UnitPotential bool
	// InstrPerFlop and InstrPerByte are the KNL cost-model coefficients
	// of the instruction models.
	InstrPerFlop, InstrPerByte float64
}

// Kernel bundles the problem geometry, FFT plans and precomputed index
// maps the stage bodies and instruction models operate on. All exported
// fields are read-only after NewKernel.
type Kernel struct {
	Spec   Spec
	Sphere *pw.Sphere
	Layout *pw.Layout
	PlanZ  *fft.Plan
	Plan2D *fft.Plan2D
	Pot    []float64   // V(r), z-fastest volume (RealData)
	PotPl  [][]float64 // V per z-plane, row-major (RealData)

	// StickFill[p][i] is the target index in position p's stick buffer
	// (stick-major, full Nz per stick) of local coefficient i.
	StickFill [][]int
	// GroupSticks is the stick order after the scatter (position-major).
	GroupSticks []int
	// StickPlaneIdx[gs] is the row-major (ix·Ny+iy) cell of group stick gs.
	StickPlaneIdx []int
	// GroupStickOffset[q] is the first group-stick index of position q.
	GroupStickOffset []int
	// gammaMinus caches the -column plane cells (gamma mode), built lazily.
	gammaMinus []int
}

// NewKernel builds the geometry, plans and index maps of one problem.
func NewKernel(sp Spec) *Kernel {
	var s *pw.Sphere
	if sp.Gamma {
		s = pw.NewSphereGamma(sp.Ecut, sp.Alat)
	} else {
		s = pw.NewSphere(sp.Ecut, sp.Alat)
	}
	l := pw.NewLayout(s, sp.Ranks)
	k := &Kernel{
		Spec:   sp,
		Sphere: s,
		Layout: l,
		PlanZ:  fft.DefaultCache.Get(s.Grid.Nz),
		Plan2D: fft.DefaultCache.Get2D(s.Grid.Nx, s.Grid.Ny),
	}
	if sp.RealData {
		if sp.UnitPotential {
			k.Pot = make([]float64, s.Grid.Size())
			for i := range k.Pot {
				k.Pot[i] = 1
			}
		} else {
			k.Pot = pw.Potential(s.Grid)
		}
		k.PotPl = make([][]float64, s.Grid.Nz)
		for z := 0; z < s.Grid.Nz; z++ {
			k.PotPl[z] = pw.PotentialPlane(s.Grid, k.Pot, z)
		}
	}
	nz := s.Grid.Nz
	k.StickFill = make([][]int, sp.Ranks)
	for p := 0; p < sp.Ranks; p++ {
		fill := make([]int, 0, l.NGOf[p])
		for sl, si := range l.SticksOf[p] {
			st := s.Stick[si]
			for _, kz := range st.Zs {
				iz := kz % nz
				if iz < 0 {
					iz += nz
				}
				fill = append(fill, sl*nz+iz)
			}
		}
		k.StickFill[p] = fill
	}
	k.GroupSticks = l.GroupStickOrder()
	k.StickPlaneIdx = make([]int, len(k.GroupSticks))
	for gs, si := range k.GroupSticks {
		k.StickPlaneIdx[gs] = s.PlaneIndex(s.Stick[si])
	}
	k.GroupStickOffset = make([]int, sp.Ranks+1)
	off := 0
	for q := 0; q < sp.Ranks; q++ {
		k.GroupStickOffset[q] = off
		off += l.NSticksOf(q)
	}
	k.GroupStickOffset[sp.Ranks] = off
	return k
}

// --- instruction counts (position p, one band) ---

// InstrPack is the chunk reassembly cost of the task-group pack: read +
// write of the local coefficients.
func (k *Kernel) InstrPack(p int) float64 {
	return float64(k.Layout.NGOf[p]) * 2 * 16 * k.Spec.InstrPerByte
}

// InstrPrep is the zero-fill of the stick buffer plus the scatter of the
// coefficients.
func (k *Kernel) InstrPrep(p int) float64 {
	bytes := float64(k.Layout.NSticksOf(p)*k.Sphere.Grid.Nz)*16 + float64(k.Layout.NGOf[p])*2*16
	return bytes * k.Spec.InstrPerByte
}

// InstrFFTZ is the cost of the 1-D z transforms over the local sticks.
func (k *Kernel) InstrFFTZ(p int) float64 {
	return float64(k.Layout.NSticksOf(p)) * k.PlanZ.Flops() * k.Spec.InstrPerFlop
}

// InstrXYFill is the plane-assembly cost of the forward scatter receive.
func (k *Kernel) InstrXYFill(p int) float64 {
	g := k.Sphere.Grid
	bytes := float64(k.Layout.NPlanesOf(p)) * (float64(g.Nx*g.Ny)*16 + float64(len(k.GroupSticks))*2*16)
	return bytes * k.Spec.InstrPerByte
}

// InstrFFTXY is the cost of the 2-D transforms over the owned planes.
func (k *Kernel) InstrFFTXY(p int) float64 {
	return float64(k.Layout.NPlanesOf(p)) * k.Plan2D.Flops() * k.Spec.InstrPerFlop
}

// InstrVOfR is the complex × real multiply over the owned planes: 2 flops
// per point.
func (k *Kernel) InstrVOfR(p int) float64 {
	g := k.Sphere.Grid
	return float64(k.Layout.NPlanesOf(p)) * float64(g.Nx*g.Ny) * 2 * k.Spec.InstrPerFlop
}

// InstrXYExtract is the plane-disassembly cost of the backward scatter
// send.
func (k *Kernel) InstrXYExtract(p int) float64 {
	bytes := float64(k.Layout.NPlanesOf(p)) * float64(len(k.GroupSticks)) * 2 * 16
	return bytes * k.Spec.InstrPerByte
}

// InstrUnpack is the sphere extraction with backward scaling plus the
// chunk split.
func (k *Kernel) InstrUnpack(p int) float64 {
	return float64(k.Layout.NGOf[p])*2*k.Spec.InstrPerFlop +
		float64(k.Layout.NGOf[p])*2*16*k.Spec.InstrPerByte
}

// InstrZSplit is the stick-buffer split into scatter send chunks.
func (k *Kernel) InstrZSplit(p int) float64 {
	return float64(k.Layout.NSticksOf(p)*k.Sphere.Grid.Nz) * 2 * 16 * k.Spec.InstrPerByte
}

// InstrZFill is the stick-buffer reassembly from the backward scatter.
func (k *Kernel) InstrZFill(p int) float64 {
	return k.InstrZSplit(p)
}

// --- communication volumes (bytes per rank, one band) ---

// BytesPack is the task-group pack volume per rank per band.
func (k *Kernel) BytesPack(p int) float64 {
	return float64(k.Layout.NGOf[p]) * 16
}

// BytesScatter is the sticks↔planes scatter volume per rank per band.
func (k *Kernel) BytesScatter(p int) float64 {
	return float64(k.Layout.NSticksOf(p)*k.Sphere.Grid.Nz) * 16
}
