package graph

import "testing"

func testPipeline(t *testing.T, gamma bool) *Graph {
	t.Helper()
	k := NewKernel(Spec{Ecut: 6, Alat: 6, Ranks: 2, Gamma: gamma, InstrPerFlop: 1, InstrPerByte: 1})
	return k.Pipeline(gamma)
}

// StageDeps is the stage-granular edge list: a linear chain matching the
// execution order, with the entry stage unconstrained.
func TestStageDepsLinearChain(t *testing.T) {
	g := testPipeline(t, false)
	deps := g.StageDeps()
	if len(deps) != len(g.Stages) {
		t.Fatalf("deps for %d stages, want %d", len(deps), len(g.Stages))
	}
	if len(deps[0]) != 0 {
		t.Errorf("entry stage has predecessors %v", deps[0])
	}
	for i := 1; i < len(deps); i++ {
		if len(deps[i]) != 1 || deps[i][0] != i-1 {
			t.Errorf("stage %d deps %v, want [%d]", i, deps[i], i-1)
		}
	}
}

// Plan materializes the Segments() decomposition as an explicit DAG: the
// node chain alternates segments and scatters, edges are consistent in both
// directions, depths count segment steps, and the stage partition matches
// Segments() exactly.
func TestPlanMatchesSegments(t *testing.T) {
	for _, gamma := range []bool{false, true} {
		g := testPipeline(t, gamma)
		segs, scatters := g.Segments()
		p := g.Plan()

		if want := len(segs) + len(scatters); len(p.Nodes) != want {
			t.Fatalf("gamma=%v: %d nodes, want %d", gamma, len(p.Nodes), want)
		}
		if p.MaxDepth != len(segs)-1 {
			t.Errorf("gamma=%v: MaxDepth %d, want %d", gamma, p.MaxDepth, len(segs)-1)
		}

		nseg, nscat := 0, 0
		for i := range p.Nodes {
			n := &p.Nodes[i]
			if n.Index != i {
				t.Errorf("node %d records Index %d", i, n.Index)
			}
			// Chain edges: node i depends on node i-1, consistent both ways.
			if i == 0 {
				if len(n.Preds) != 0 {
					t.Errorf("entry node has preds %v", n.Preds)
				}
			} else if len(n.Preds) != 1 || n.Preds[0] != i-1 {
				t.Errorf("node %d preds %v, want [%d]", i, n.Preds, i-1)
			}
			if i == len(p.Nodes)-1 {
				if len(n.Succs) != 0 {
					t.Errorf("sink node has succs %v", n.Succs)
				}
			} else if len(n.Succs) != 1 || n.Succs[0] != i+1 {
				t.Errorf("node %d succs %v, want [%d]", i, n.Succs, i+1)
			}
			switch n.Kind {
			case NodeSegment:
				if n.Scatter != nil {
					t.Errorf("segment node %d carries a scatter stage", i)
				}
				if n.Depth != nseg {
					t.Errorf("segment node %d depth %d, want %d", i, n.Depth, nseg)
				}
				if len(n.Stages) != len(segs[nseg]) {
					t.Errorf("segment node %d has %d stages, want %d", i, len(n.Stages), len(segs[nseg]))
				} else {
					for j, st := range n.Stages {
						if st != segs[nseg][j] {
							t.Errorf("segment node %d stage %d differs from Segments()", i, j)
						}
					}
				}
				nseg++
			case NodeScatter:
				if n.Stages != nil {
					t.Errorf("scatter node %d carries compute stages", i)
				}
				if n.Scatter != scatters[nscat] {
					t.Errorf("scatter node %d stage differs from Segments()", i)
				}
				if n.Scatter.Kind != Scatter {
					t.Errorf("scatter node %d wraps a %v stage", i, n.Scatter.Kind)
				}
				nscat++
			}
		}
		if nseg != len(segs) || nscat != len(scatters) {
			t.Errorf("gamma=%v: plan has %d segments/%d scatters, want %d/%d",
				gamma, nseg, nscat, len(segs), len(scatters))
		}
	}
}

// The navigation helpers used by the dataflow scheduler: Segments() in node
// form and the scatter fired by each segment.
func TestPlanNavigation(t *testing.T) {
	g := testPipeline(t, false)
	p := g.Plan()
	segs := p.Segments()
	gsegs, scatters := g.Segments()
	if len(segs) != len(gsegs) {
		t.Fatalf("%d plan segments, want %d", len(segs), len(gsegs))
	}
	for i, sn := range segs {
		sc := p.ScatterAfter(sn)
		if i < len(scatters) {
			if sc == nil || sc.Scatter != scatters[i] {
				t.Errorf("segment %d: ScatterAfter wrong", i)
			}
		} else if sc != nil {
			t.Errorf("final segment reports a following scatter")
		}
	}
}
