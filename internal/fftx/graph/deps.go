package graph

// Explicit dependency edges over the pipeline. The stage list is stored in
// execution order, which is enough for schedulers that walk it sequentially
// (original, task-iter) or that rediscover structure through Steps() and
// Segments(). The dataflow engine needs more: it fires a node the moment
// its inputs resolve, so the edges implicit in the ordering are derived
// here once and handed to the scheduler as data — per stage (StageDeps) and
// per scatter-free segment (Plan), both band-granular: every job owns a
// private copy of the chain, and jobs share no edges, so the whole
// NB-job schedule is a forest of independent chains the runtime can
// interleave freely.

// StageDeps returns, for every stage index, the indices of the stages it
// depends on. The per-band pipeline is a linear data chain (each stage
// reads the State buffers its predecessor wrote), so stage i depends on
// stage i-1 and nothing else; returning the edges explicitly — rather than
// leaving them implicit in slice order — is what lets a scheduler count
// unresolved inputs per node instead of walking in order.
func (g *Graph) StageDeps() [][]int {
	deps := make([][]int, len(g.Stages))
	for i := range g.Stages {
		if i > 0 {
			deps[i] = []int{i - 1}
		}
	}
	return deps
}

// NodeKind separates the two node flavors of a dataflow plan.
type NodeKind int

const (
	// NodeSegment is a run of compute stages between scatter edges; it
	// executes as one task.
	NodeSegment NodeKind = iota
	// NodeScatter is a communication edge. Dataflow schedulers post it
	// asynchronously from the completing segment's task and treat its
	// completion as the firing condition of the next segment.
	NodeScatter
)

// Node is one schedulable unit of a job's dataflow plan.
type Node struct {
	// Index is the node's position in Plan.Nodes.
	Index int
	// Kind separates compute segments from scatter edges.
	Kind NodeKind
	// Stages are the compute stages of a segment node (nil for scatters).
	Stages []*Stage
	// Scatter is the collective stage of a scatter node (nil for segments).
	Scatter *Stage
	// Preds and Succs are the node's dependency edges, as Plan.Nodes
	// indices. The pipeline is a chain, so each holds at most one entry —
	// kept as slices so schedulers are written against the general DAG
	// shape and a future multi-input pipeline needs no scheduler change.
	Preds, Succs []int
	// Depth is the node's distance from the plan's entry in segment steps:
	// segment k has depth k, the scatter after it depth k as well. Priority
	// schedulers use it to run the deepest ready node first, finishing
	// in-flight jobs before opening new ones (critical-path-first).
	Depth int
}

// Plan is the dependency-explicit form of one job's pipeline walk: the
// Segments() decomposition with its edges and depths materialized.
type Plan struct {
	// Nodes alternates segments and scatters in chain order:
	// seg0 → scat0 → seg1 → scat1 → ... → segN.
	Nodes []Node
	// MaxDepth is the largest Depth over the nodes (the last segment's).
	MaxDepth int
}

// Plan derives the dataflow plan from the graph: the compute segments and
// scatter edges of Segments(), chained by explicit Preds/Succs edges with
// per-node depths. Every job runs a private instance of this plan; the
// scheduler instantiates one firing state (future/counter) per (job, node).
func (g *Graph) Plan() *Plan {
	segs, scatters := g.Segments()
	p := &Plan{}
	add := func(n Node) int {
		n.Index = len(p.Nodes)
		if n.Index > 0 {
			n.Preds = []int{n.Index - 1}
			p.Nodes[n.Index-1].Succs = []int{n.Index}
		}
		p.Nodes = append(p.Nodes, n)
		return n.Index
	}
	for i, seg := range segs {
		add(Node{Kind: NodeSegment, Stages: seg, Depth: i})
		if i < len(scatters) {
			add(Node{Kind: NodeScatter, Scatter: scatters[i], Depth: i})
		}
		if i > p.MaxDepth {
			p.MaxDepth = i
		}
	}
	return p
}

// Segments returns the plan's segment nodes in chain order.
func (p *Plan) Segments() []*Node {
	var out []*Node
	for i := range p.Nodes {
		if p.Nodes[i].Kind == NodeSegment {
			out = append(out, &p.Nodes[i])
		}
	}
	return out
}

// ScatterAfter returns the scatter node fired by segment node n (its sole
// successor), or nil when n is the final segment.
func (p *Plan) ScatterAfter(n *Node) *Node {
	for _, s := range n.Succs {
		if p.Nodes[s].Kind == NodeScatter {
			return &p.Nodes[s]
		}
	}
	return nil
}
