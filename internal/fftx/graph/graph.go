// Package graph is the stage-graph IR of the fftx pipeline: the per-band
// transform (prep → fft-z → z-split → scatter → xy-fill → fft-xy → vofr →
// the mirror legs) expressed once as a declarative list of stages, built
// from the problem geometry by Kernel.Pipeline. Each stage carries its KNL
// intensity class, its analytic instruction model, its communication
// volume (scatter stages) and its pure-numeric data transform; the four
// execution engines of package fftx are schedulers that walk this one
// graph under different policies (static collectives, per-step tasks,
// per-band tasks, combined async scatters).
//
// The package is deliberately runtime-free: it imports only the numeric
// and model layers (fft, knl, pw, par). Stage bodies must never call into
// mpi, vtime or ompss — synchronization, communication and compute-time
// accounting are the scheduler's job, enforced statically by fftxvet's
// stagepure rule.
package graph

import "repro/internal/knl"

// Kind separates pure-compute stages from the scatter collectives between
// them.
type Kind int

const (
	// Compute is a pure numeric stage charged as one compute phase.
	Compute Kind = iota
	// Scatter is a sticks↔planes Alltoallv edge; the scheduler owns the
	// communicator, the tag sequence and the synchronous/async policy.
	Scatter
)

// Split classifies how a compute stage can be partitioned into a nested
// task loop (the paper's Figure 4 cft_1z / cft_2xy task loops).
type Split int

const (
	// SplitNone marks an indivisible stage.
	SplitNone Split = iota
	// SplitSticks partitions over the position's stick set (cft_1z).
	SplitSticks
	// SplitPlanes partitions over the position's plane block (cft_2xy).
	SplitPlanes
)

// State carries one in-flight band (or band pair in gamma mode) between
// stages: the psis/aux buffers of the paper's Figure 4.
type State struct {
	// Job is the FFT job index: the band, or the band-pair index in gamma
	// mode. It keys the deterministic work-variance draws.
	Job int
	// Coeffs holds the position's local sphere coefficients; Coeffs2 is
	// the pair partner in gamma mode.
	Coeffs, Coeffs2 []complex128
	// ZBuf is the stick buffer (stick-major, full Nz per stick).
	ZBuf []complex128
	// Chunks are the scatter send/receive chunks currently in flight.
	Chunks [][]complex128
	// Planes is the position's XY-plane block in real space.
	Planes []complex128
	// Res holds the transformed local coefficients; Res2 the gamma pair
	// partner.
	Res, Res2 []complex128
}

// Stage is one node of the pipeline graph. All closures are built once by
// Kernel.Pipeline and are safe for concurrent position-disjoint use.
type Stage struct {
	// Name is the trace phase name of a compute stage ("prep", "fft-z",
	// ...) or "scatter" for collective edges. Phase names key the
	// deterministic jitter draws, so they are part of the contract.
	Name string
	// Step is the Figure-4 step this stage belongs to ("fft-z-fw",
	// "scatter-fw", ...); the per-step scheduler groups by it.
	Step string
	// Kind separates compute stages from scatter edges.
	Kind Kind
	// Class is the stage's KNL intensity class (compute stages).
	Class knl.Class
	// Instr models the stage's instruction count at position p (compute
	// stages; gamma scaling is already applied by the builder).
	Instr func(p int) float64
	// Bytes models the per-rank communication volume of a scatter edge.
	Bytes func(p int) float64
	// TagOff distinguishes the forward (0) and backward (1) scatter of
	// one job; the scheduler adds it to its tag base.
	TagOff int
	// Body is the stage's data transform on the state (ModeReal); nil for
	// scatter edges. Bodies are pure numeric — no mpi/vtime/ompss.
	Body func(s *State, p int)

	// Nested task-loop support (Split != SplitNone): LoopName is the task
	// label prefix ("cft_1z"/"cft_2xy"), Count the partition domain size
	// at position p, and Part the body for the sub-range [lo,hi); the
	// scheduler charges Instr scaled by the range fraction.
	Split    Split
	LoopName string
	Count    func(p int) int
	Part     func(s *State, p, lo, hi int)
}

// Step is one consecutive run of stages sharing a Step label — the task
// granularity of the per-step scheduler.
type Step struct {
	Label  string
	Stages []*Stage
}

// Graph is the built pipeline: the stage list in execution order.
type Graph struct {
	// Gamma records whether this is the gamma-point (band pair) variant.
	Gamma bool
	// Stages is the pipeline in execution order.
	Stages []Stage
}

// Steps groups the stages into consecutive same-label steps, preserving
// order.
func (g *Graph) Steps() []Step {
	var steps []Step
	for i := range g.Stages {
		st := &g.Stages[i]
		if n := len(steps); n > 0 && steps[n-1].Label == st.Step {
			steps[n-1].Stages = append(steps[n-1].Stages, st)
			continue
		}
		steps = append(steps, Step{Label: st.Step, Stages: []*Stage{st}})
	}
	return steps
}

// Segments splits the pipeline at its scatter edges: segs[i] is the
// compute run before scatters[i] (and segs[len(scatters)] the final run),
// which is exactly the task decomposition of the combined engine.
func (g *Graph) Segments() (segs [][]*Stage, scatters []*Stage) {
	segs = [][]*Stage{nil}
	for i := range g.Stages {
		st := &g.Stages[i]
		if st.Kind == Scatter {
			scatters = append(scatters, st)
			segs = append(segs, nil)
			continue
		}
		segs[len(segs)-1] = append(segs[len(segs)-1], st)
	}
	return segs, scatters
}
