package graph

import (
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/par"
)

// Gamma-point mode (Quantum ESPRESSO's gamma_only): wavefunctions are real
// in real space, so only the Hermitian half of the G-sphere is stored and
// TWO bands are transformed per FFT by packing them as psi = c1 + i·c2.
// The real-space field then carries band 1 in its real part and band 2 in
// its imaginary part; after applying the (real) potential, the two bands
// separate again through the Hermitian split
//
//	c1'(G) = (F(+G) + conj(F(-G))) / 2
//	c2'(G) = (F(+G) - conj(F(-G))) / (2i).
//
// In stick space every half-stick (i,j) expands to two columns: the +column
// holds c1+i·c2 and the -column (at grid cell (-i,-j)) holds
// conj(c1 - i·c2), which is the packed field's value at -G. The (0,0)
// stick is self-conjugate: its negative-K half lands in the same column.
// All pipeline stages below mirror the standard ones with two columns per
// stick; the FFT count per pair of bands equals the standard count for one
// band — the factor-two saving gamma_only exists for.

// GammaFactor scales the column-proportional instruction counts and
// communication volumes of gamma-mode stages.
const GammaFactor = 2

// gammaCols returns the stick-buffer column count of position p.
func (k *Kernel) gammaCols(p int) int { return 2 * k.Layout.NSticksOf(p) }

// gammaMinusCellTable lazily builds the plane cell of each group stick's
// -column (-1 for the self-conjugate zero stick).
func (k *Kernel) gammaMinusCellTable() []int {
	if k.gammaMinus != nil {
		return k.gammaMinus
	}
	k.gammaMinus = make([]int, len(k.GroupSticks))
	for gs, si := range k.GroupSticks {
		st := k.Sphere.Stick[si]
		if st.IsZeroStick() {
			k.gammaMinus[gs] = -1
			continue
		}
		k.gammaMinus[gs] = k.Sphere.MinusPlaneIndex(st)
	}
	return k.gammaMinus
}

// PrepSticksGamma packs a band pair into the two-columns-per-stick buffer.
func (k *Kernel) PrepSticksGamma(p int, c1, c2 []complex128) []complex128 {
	nz := k.Sphere.Grid.Nz
	buf := make([]complex128, k.gammaCols(p)*nz)
	fill := k.StickFill[p]
	sticksOf := k.Layout.SticksOf[p]
	// Distinct coefficients write distinct cells: the stored half-sphere
	// keeps one of each ±kz pair, so the +cell set and the mirrored -cell
	// set never overlap (the self-conjugate kz=0 case is guarded below).
	par.ParallelFor(len(fill), grainIndex, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			tgt := fill[i]
			s, iz := tgt/nz, tgt%nz
			mz := (nz - iz) % nz
			vp := c1[i] + complex(0, 1)*c2[i]
			vm := cmplx.Conj(c1[i] - complex(0, 1)*c2[i])
			if k.Sphere.Stick[sticksOf[s]].IsZeroStick() {
				buf[2*s*nz+iz] = vp
				if iz != 0 {
					buf[2*s*nz+mz] = vm
				}
				continue
			}
			buf[2*s*nz+iz] = vp
			buf[(2*s+1)*nz+mz] = vm
		}
	})
	return buf
}

// ExtractCoeffsGamma separates the band pair back out of the stick buffer,
// applying the backward 1/N normalization.
func (k *Kernel) ExtractCoeffsGamma(p int, buf []complex128) (c1, c2 []complex128) {
	nz := k.Sphere.Grid.Nz
	fill := k.StickFill[p]
	sticksOf := k.Layout.SticksOf[p]
	c1 = make([]complex128, len(fill))
	c2 = make([]complex128, len(fill))
	scale := complex(1/float64(k.Sphere.Grid.Size()), 0)
	par.ParallelFor(len(fill), grainIndex, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			tgt := fill[i]
			s, iz := tgt/nz, tgt%nz
			mz := (nz - iz) % nz
			vP := buf[2*s*nz+iz]
			var vM complex128
			if k.Sphere.Stick[sticksOf[s]].IsZeroStick() {
				vM = buf[2*s*nz+mz]
			} else {
				vM = buf[(2*s+1)*nz+mz]
			}
			c1[i] = (vP + cmplx.Conj(vM)) * 0.5 * scale
			c2[i] = (vP - cmplx.Conj(vM)) * complex(0, -0.5) * scale
		}
	})
	return c1, c2
}

// FFTZGamma transforms all columns (two per stick) along z.
func (k *Kernel) FFTZGamma(p int, buf []complex128, sign fft.Sign) {
	k.PlanZ.TransformBatch(buf, k.gammaCols(p), sign)
}

// ScatterSplitGamma builds the forward-scatter send chunks over the doubled
// column set.
func (k *Kernel) ScatterSplitGamma(p int, buf []complex128) [][]complex128 {
	return k.splitCols(p, buf, k.gammaCols(p))
}

// SticksFromScatterGamma reassembles the doubled column set.
func (k *Kernel) SticksFromScatterGamma(p int, recv [][]complex128) []complex128 {
	return k.joinCols(p, recv, k.gammaCols(p))
}

// PlanesFromScatterGamma assembles the planes, placing each stick's +column
// at its cell and its -column at the Hermitian partner cell.
func (k *Kernel) PlanesFromScatterGamma(p int, recv [][]complex128) []complex128 {
	l := k.Layout
	g := k.Sphere.Grid
	minus := k.gammaMinusCellTable()
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	planes := make([]complex128, npl*nxy)
	// Each (q,t) writes its own +cell and -cell: the -cells are the cells
	// of the unstored Hermitian partner sticks, so the write sets of
	// distinct source positions stay disjoint and q can fan out.
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			for t := 0; t < nsq; t++ {
				gs := k.GroupStickOffset[q] + t
				cellP := k.StickPlaneIdx[gs]
				cellM := minus[gs]
				for z := 0; z < npl; z++ {
					planes[z*nxy+cellP] = recv[q][(2*t)*npl+z]
					if cellM >= 0 {
						planes[z*nxy+cellM] = recv[q][(2*t+1)*npl+z]
					}
				}
			}
		}
	})
	return planes
}

// PlanesToScatterGamma is the inverse of PlanesFromScatterGamma.
func (k *Kernel) PlanesToScatterGamma(p int, planes []complex128) [][]complex128 {
	l := k.Layout
	g := k.Sphere.Grid
	minus := k.gammaMinusCellTable()
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			chunk := make([]complex128, 2*nsq*npl)
			for t := 0; t < nsq; t++ {
				gs := k.GroupStickOffset[q] + t
				cellP := k.StickPlaneIdx[gs]
				cellM := minus[gs]
				for z := 0; z < npl; z++ {
					chunk[(2*t)*npl+z] = planes[z*nxy+cellP]
					if cellM >= 0 {
						chunk[(2*t+1)*npl+z] = planes[z*nxy+cellM]
					}
				}
			}
			out[q] = chunk
		}
	})
	return out
}

// BytesScatterGamma is the gamma scatter volume per rank per band pair.
func (k *Kernel) BytesScatterGamma(p int) float64 {
	return GammaFactor * k.BytesScatter(p)
}
