package graph

import (
	"repro/internal/fft"
	"repro/internal/par"
)

// The data transforms of the pipeline — the stage bodies in ModeReal.
// Each operates on one position p of the layout (the rank inside a task
// group that owns a subset of sticks and a contiguous block of planes).
//
// The hot loops fan out over host cores with par.ParallelFor: every body
// writes only data indexed by its own [lo,hi) range, and the simulated cost
// of each phase comes from the analytic instruction model (Stage.Instr),
// so host parallelism changes wall clock only — simulated results are
// bit-identical with par enabled or disabled (see TestHostParEquivalence).
// Bodies must not touch mpi/vtime/ompss state (fftxvet's parbody and
// stagepure rules).

// Host-parallel grain sizes: planes are expensive (a full 2-D FFT), so
// they split singly; flat index loops batch by the thousand to amortize
// dispatch. Sticks fan out inside the fft batch drivers (one planar chunk
// per worker batch — see fft.TransformBatch).
const (
	grainPlanes = 1
	grainIndex  = 4096
)

// PrepSticks builds the zero-padded stick buffer (stick-major, full Nz per
// stick) from position p's local sphere coefficients — the "preparation of
// the Psis" phase with very low IPC in Figure 3.
func (k *Kernel) PrepSticks(p int, coeffs []complex128) []complex128 {
	buf := make([]complex128, k.Layout.NSticksOf(p)*k.Sphere.Grid.Nz)
	fill := k.StickFill[p]
	par.ParallelFor(len(coeffs), grainIndex, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[fill[i]] = coeffs[i]
		}
	})
	return buf
}

// FFTZ transforms every local stick along z in place through the plan's
// batch driver, which fans the sticks out over host cores and runs each
// worker's rows through the layout the policy picked for Nz (the planar
// chunk kernel on SoA shapes) — bit-identical to TransformMany.
func (k *Kernel) FFTZ(p int, buf []complex128, sign fft.Sign) {
	k.PlanZ.TransformBatch(buf, k.Layout.NSticksOf(p), sign)
}

// FFTZPart transforms the stick range [lo,hi) of position p's stick
// buffer — the body of the nested task loop over cft_1z calls.
func (k *Kernel) FFTZPart(buf []complex128, sign fft.Sign, lo, hi int) {
	nz := k.Sphere.Grid.Nz
	k.PlanZ.TransformBatch(buf[lo*nz:hi*nz], hi-lo, sign)
}

// splitCols builds the sticks→planes Alltoallv send chunks over nCols
// columns of the stick buffer: send[q] holds, column-major, the values at
// q's plane range.
func (k *Kernel) splitCols(p int, buf []complex128, nCols int) [][]complex128 {
	l := k.Layout
	nz := k.Sphere.Grid.Nz
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			lo, hi := l.PlaneLo[q], l.PlaneHi[q]
			chunk := make([]complex128, 0, nCols*(hi-lo))
			for s := 0; s < nCols; s++ {
				chunk = append(chunk, buf[s*nz+lo:s*nz+hi]...)
			}
			out[q] = chunk
		}
	})
	return out
}

// joinCols is the inverse of splitCols.
func (k *Kernel) joinCols(p int, recv [][]complex128, nCols int) []complex128 {
	l := k.Layout
	nz := k.Sphere.Grid.Nz
	buf := make([]complex128, nCols*nz)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			lo, hi := l.PlaneLo[q], l.PlaneHi[q]
			w := hi - lo
			for s := 0; s < nCols; s++ {
				copy(buf[s*nz+lo:s*nz+hi], recv[q][s*w:(s+1)*w])
			}
		}
	})
	return buf
}

// ScatterSplit builds the sticks→planes Alltoallv send chunks: send[q]
// holds, stick-major, the values of my sticks at q's plane range.
func (k *Kernel) ScatterSplit(p int, buf []complex128) [][]complex128 {
	return k.splitCols(p, buf, k.Layout.NSticksOf(p))
}

// PlanesFromScatter assembles position p's full XY planes (plane-major,
// row-major within a plane) from the forward-scatter receive chunks: the
// "xy-fill" memory phase. Each source position q owns a disjoint set of
// plane cells, so the fan-out is over q.
func (k *Kernel) PlanesFromScatter(p int, recv [][]complex128) []complex128 {
	l := k.Layout
	g := k.Sphere.Grid
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	planes := make([]complex128, npl*nxy)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			for t := 0; t < nsq; t++ {
				cell := k.StickPlaneIdx[k.GroupStickOffset[q]+t]
				base := t * npl
				for z := 0; z < npl; z++ {
					planes[z*nxy+cell] = recv[q][base+z]
				}
			}
		}
	})
	return planes
}

// FFTXY transforms every owned plane in place, one host task per plane.
func (k *Kernel) FFTXY(p int, planes []complex128, sign fft.Sign) {
	g := k.Sphere.Grid
	nxy := g.Nx * g.Ny
	par.ParallelFor(k.Layout.NPlanesOf(p), grainPlanes, func(lo, hi int) {
		for z := lo; z < hi; z++ {
			k.Plan2D.Transform(planes[z*nxy:(z+1)*nxy], sign)
		}
	})
}

// FFTXYPart transforms the plane range [lo,hi) of position p — the body
// of the nested task loop over cft_2xy calls.
func (k *Kernel) FFTXYPart(planes []complex128, sign fft.Sign, lo, hi int) {
	g := k.Sphere.Grid
	nxy := g.Nx * g.Ny
	par.ParallelFor(hi-lo, grainPlanes, func(zlo, zhi int) {
		for z := lo + zlo; z < lo+zhi; z++ {
			k.Plan2D.Transform(planes[z*nxy:(z+1)*nxy], sign)
		}
	})
}

// VOfR multiplies the owned real-space planes by the local potential — the
// operator the miniapp exists to apply.
func (k *Kernel) VOfR(p int, planes []complex128) {
	g := k.Sphere.Grid
	nxy := g.Nx * g.Ny
	par.ParallelFor(k.Layout.NPlanesOf(p), grainPlanes, func(zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			vp := k.PotPl[k.Layout.PlaneLo[p]+z]
			pl := planes[z*nxy : (z+1)*nxy]
			for i := range pl {
				pl[i] *= complex(vp[i], 0)
			}
		}
	})
}

// PlanesToScatter is the inverse of PlanesFromScatter: it builds the
// backward-scatter send chunks (send[q] = q's sticks' values at my planes).
func (k *Kernel) PlanesToScatter(p int, planes []complex128) [][]complex128 {
	l := k.Layout
	g := k.Sphere.Grid
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			chunk := make([]complex128, nsq*npl)
			for t := 0; t < nsq; t++ {
				cell := k.StickPlaneIdx[k.GroupStickOffset[q]+t]
				for z := 0; z < npl; z++ {
					chunk[t*npl+z] = planes[z*nxy+cell]
				}
			}
			out[q] = chunk
		}
	})
	return out
}

// SticksFromScatter is the inverse of ScatterSplit: it reassembles the full
// stick buffer from the backward-scatter receive chunks.
func (k *Kernel) SticksFromScatter(p int, recv [][]complex128) []complex128 {
	return k.joinCols(p, recv, k.Layout.NSticksOf(p))
}

// ExtractCoeffs gathers the sphere coefficients back out of the stick
// buffer, applying the backward 1/N normalization of the full 3-D
// transform.
func (k *Kernel) ExtractCoeffs(p int, buf []complex128) []complex128 {
	fill := k.StickFill[p]
	out := make([]complex128, k.Layout.NGOf[p])
	scale := complex(1/float64(k.Sphere.Grid.Size()), 0)
	par.ParallelFor(len(out), grainIndex, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = buf[fill[i]] * scale
		}
	})
	return out
}
