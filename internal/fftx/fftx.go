// Package fftx reproduces the FFTXlib miniapp: the FFT kernel of Quantum
// ESPRESSO that applies a real-space local potential to a set of bands
// (forward FFT of each wavefunction from reciprocal to real space, multiply
// by V(r), backward FFT), distributed with the two-layer MPI scheme of the
// paper's Figure 1 (task-group pack/unpack + sticks→planes scatter).
//
// The per-band pipeline is a declarative stage graph (package
// fftx/graph) built once from the problem geometry; the execution engines
// are schedulers that walk that one graph under different policies:
//
//   - EngineOriginal — the baseline: R·T single-threaded MPI ranks arranged
//     as T FFT task groups of R positions each, statically synchronized by
//     the collectives (paper Figure 1).
//   - EngineTaskSteps — optimization 1 (paper Figure 4): the same MPI
//     layout, but every step of the pipeline is an OmpSs task with flow
//     dependencies; several loop iterations are in flight per rank, so
//     communication overlaps computation.
//   - EngineTaskIter — optimization 2 (paper Figure 5): the task-group MPI
//     layer is replaced by threads (R ranks × T workers, NTG = 1); every
//     band's whole pipeline is one task, scheduled asynchronously, which
//     de-synchronizes the compute phases and softens resource contention.
//   - EngineTaskCombined — the future-work combination: per-band tasks
//     with asynchronous, communication-thread-driven scatters.
//   - EngineAuto — a cost-model-driven selector: it probes the applicable
//     engines in ModeCost against the calibrated knl model and runs the
//     fastest for the given (grid, ranks, NTG, threads) point.
//
// In ModeReal the engines move and transform actual wavefunction data and
// all produce identical results (verified against a serial reference); in
// ModeCost they charge identical instruction counts and communication
// volumes without touching data, which is what the paper reproduction
// benchmarks use at full problem size.
package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/knl"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Engine selects the execution strategy.
type Engine int

const (
	// EngineOriginal is the static task-group baseline (Figure 1).
	EngineOriginal Engine = iota
	// EngineTaskSteps is the per-step task version (Figure 4).
	EngineTaskSteps
	// EngineTaskIter is the per-iteration task version (Figure 5).
	EngineTaskIter
	// EngineTaskCombined is the paper's future-work combination: per-band
	// tasks with asynchronous, communication-thread-driven scatters, so
	// communication overlaps computation AND phases de-synchronize.
	EngineTaskCombined
	// EngineDataflow walks the stage graph as dataflow futures with
	// continuations (see dataflow.go): per-band segment tasks released by
	// successor counting the moment their scatter future resolves,
	// critical-path-first priorities, and no taskwait barrier anywhere —
	// the rank's main process parks on a single join future.
	EngineDataflow
	// EngineAuto probes the applicable engines in ModeCost and runs the
	// fastest for the configured workload shape (see auto.go).
	EngineAuto
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineOriginal:
		return "original"
	case EngineTaskSteps:
		return "task-steps"
	case EngineTaskIter:
		return "task-iter"
	case EngineTaskCombined:
		return "task-combined"
	case EngineDataflow:
		return "dataflow"
	case EngineAuto:
		return "auto"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Mode selects real numerics or cost-only simulation.
type Mode int

const (
	// ModeReal transforms actual wavefunction data (used by the
	// correctness tests and the examples; keep the grid small).
	ModeReal Mode = iota
	// ModeCost charges instruction counts and communication volumes
	// without allocating band data (used at the paper's problem size).
	ModeCost
)

// Config describes one FFT-phase run.
type Config struct {
	// Ecut is the plane-wave energy cutoff in Ry (paper: 80).
	Ecut float64
	// Alat is the lattice parameter in bohr (paper: 20).
	Alat float64
	// NB is the number of bands (paper: 128).
	NB int
	// Ranks is R: the ranks inside one task group (the positions a band's
	// FFT is distributed over). For EngineTaskIter it is the number of MPI
	// ranks.
	Ranks int
	// NTG is T: the number of FFT task groups (paper: 8). EngineOriginal
	// and EngineTaskSteps spawn Ranks·NTG MPI processes; EngineTaskIter
	// replaces the groups with NTG worker threads per rank.
	NTG int
	// StepWorkers is the per-rank worker-thread count of EngineTaskSteps
	// (0 means 2). The other engines ignore it.
	StepWorkers int
	// NestedLoops makes EngineTaskSteps split the XY-FFT and Z-FFT compute
	// steps into nested task loops executed by all of the rank's workers,
	// as the paper's Figure 4 version does for cft_2xy and cft_1z.
	NestedLoops bool
	// NestedGrainXY and NestedGrainZ are the nested task-loop grain sizes
	// (planes per task, sticks per task). Zero means the paper's values,
	// 10 and 200.
	NestedGrainXY int
	NestedGrainZ  int
	// Gamma enables gamma-point mode: only the Hermitian half of the
	// G-sphere is stored and two bands are transformed per FFT (Quantum
	// ESPRESSO's gamma_only). NB must be even. Supported by EngineOriginal
	// and EngineTaskIter.
	Gamma bool
	// UnitPotential replaces V(r) by 1, making the whole kernel the
	// identity operator — the strongest end-to-end invariant the tests
	// exercise (ModeReal only).
	UnitPotential bool
	// Engine selects the execution strategy.
	Engine Engine
	// Mode selects real numerics or cost-only accounting.
	Mode Mode
	// Params is the KNL node model; zero value means knl.DefaultParams.
	Params *knl.Params
	// NodesCount spreads the lanes over several nodes joined by the Net
	// interconnect (0 or 1 = the paper's single-node setting). Lanes are
	// block-distributed: consecutive ranks share a node.
	NodesCount int
	// Net is the inter-node interconnect; the zero value means
	// knl.DefaultNet when NodesCount > 1.
	Net knl.NetParams
	// Seed offsets the deterministic per-phase work-variance draws, so
	// repeated runs of one configuration (the miniapp's iterations) see
	// different execution noise while staying fully reproducible.
	Seed int
	// Strict enables the runtime invariant checks of the mpi and ompss
	// layers (cross-rank collective shape validation, concurrent same-tag
	// detection, dependency-cycle checks). Violations surface as structured
	// errors from the run instead of silent mismatches or hangs.
	Strict bool
	// Sink, when non-nil, additionally receives every trace interval as it
	// is recorded — a streaming tap beside the in-memory Result.Trace (e.g.
	// a trace.RingSink to bound memory, or a trace.SampleSink to decimate).
	Sink trace.Sink
}

func (c Config) withDefaults() Config {
	if c.Params == nil {
		p := knl.DefaultParams()
		c.Params = &p
	}
	if c.StepWorkers <= 0 {
		c.StepWorkers = 2
	}
	if c.NestedGrainXY <= 0 {
		c.NestedGrainXY = 10
	}
	if c.NestedGrainZ <= 0 {
		c.NestedGrainZ = 200
	}
	if c.NodesCount < 1 {
		c.NodesCount = 1
	}
	if c.NodesCount > 1 && c.Net == (knl.NetParams{}) {
		c.Net = knl.DefaultNet()
	}
	return c
}

// buildMachine returns the compute machine and communication fabric of the
// configuration: a single node, or a cluster when NodesCount > 1.
func (c Config) buildMachine(lanes int) (vtime.Machine, knl.Fabric) {
	if c.NodesCount > 1 {
		cl := knl.NewCluster(*c.Params, c.Net, c.NodesCount, lanes)
		return cl, cl
	}
	n := knl.NewNode(*c.Params, lanes)
	return n, n
}

// Lanes returns the hardware-lane count the configuration occupies.
func (c Config) Lanes() int {
	switch c.Engine {
	case EngineTaskSteps:
		sw := c.StepWorkers
		if sw <= 0 {
			sw = 2
		}
		return c.Ranks * c.NTG * sw
	default:
		return c.Ranks * c.NTG
	}
}

func (c Config) validate() error {
	if c.Ecut <= 0 || c.Alat <= 0 {
		return fmt.Errorf("fftx: invalid ecut=%g alat=%g", c.Ecut, c.Alat)
	}
	if c.NB <= 0 || c.Ranks <= 0 || c.NTG <= 0 {
		return fmt.Errorf("fftx: invalid NB=%d Ranks=%d NTG=%d", c.NB, c.Ranks, c.NTG)
	}
	if c.NB%c.NTG != 0 {
		return fmt.Errorf("fftx: NB=%d not divisible by NTG=%d", c.NB, c.NTG)
	}
	if c.Gamma {
		if c.NB%2 != 0 || (c.NB/2)%c.NTG != 0 {
			return fmt.Errorf("fftx: gamma mode needs NB even and NB/2 divisible by NTG (NB=%d NTG=%d)", c.NB, c.NTG)
		}
		if c.Engine != EngineOriginal && c.Engine != EngineTaskIter && c.Engine != EngineDataflow {
			return fmt.Errorf("fftx: gamma mode not supported by engine %v", c.Engine)
		}
	}
	nodes := c.NodesCount
	if nodes < 1 {
		nodes = 1
	}
	perNode := (c.Lanes() + nodes - 1) / nodes
	if perNode > 4*c.Params.Cores {
		return fmt.Errorf("fftx: %d lanes per node exceed 4-way hyper-threading on %d cores", perNode, c.Params.Cores)
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	Config  Config
	Runtime float64      // virtual seconds of the FFT phase
	Trace   *trace.Trace // full state trace of the run
	// Engine is the engine that actually executed the run — the selected
	// one when Config asked for EngineAuto.
	Engine Engine
	// TaskwaitSec is the virtual time the run's task runtimes spent blocked
	// at Taskwait barriers, summed over ranks — the barrier-stall account
	// the dataflow engine exists to eliminate (it is 0 there by
	// construction; engines without a task runtime also report 0).
	TaskwaitSec float64
	// Bands holds the transformed band coefficients (full sphere ordering)
	// in ModeReal; nil in ModeCost.
	Bands [][]complex128
	// Sphere and Layout expose the problem geometry of the run.
	Sphere *pw.Sphere
	Layout *pw.Layout
}

// StageSeconds is the engine stage-timing hook for observability layers:
// the run's virtual seconds broken down by pipeline stage and state
// (runtime, idle, per-phase -sync/-transfer), derived from the recorded
// trace. fftxd's per-shape profile store persists exactly this map for
// cost-mode runs; returns nil when the run recorded no trace.
func (r *Result) StageSeconds() map[string]float64 {
	if r == nil || r.Trace == nil {
		return nil
	}
	return r.Trace.PhaseSeconds()
}

// kernel couples the runtime-free stage graph (problem geometry, numeric
// bodies, instruction models — package fftx/graph) with this run's
// configuration: the mode, the deterministic work-variance draws and the
// per-phase compute accounting the schedulers charge.
type kernel struct {
	cfg Config
	*graph.Kernel
	// pipe is the stage graph every engine of this run walks.
	pipe *graph.Graph
}

func newKernel(cfg Config) *kernel {
	gk := graph.NewKernel(graph.Spec{
		Ecut:          cfg.Ecut,
		Alat:          cfg.Alat,
		Ranks:         cfg.Ranks,
		Gamma:         cfg.Gamma,
		RealData:      cfg.Mode == ModeReal,
		UnitPotential: cfg.UnitPotential,
		InstrPerFlop:  cfg.Params.InstrPerFlop,
		InstrPerByte:  cfg.Params.InstrPerByte,
	})
	return &kernel{cfg: cfg, Kernel: gk, pipe: gk.Pipeline(cfg.Gamma)}
}

// computer abstracts the two compute contexts (mpi.Ctx and ompss.Worker).
type computer interface {
	Compute(phase string, class knl.Class, instr float64)
}

// fixedPhaseInstr is the fixed per-phase bookkeeping cost (loop and call
// overhead, descriptor upkeep). It replicates with the process count, which
// is what keeps the paper's instruction scalability slightly below 100 %.
const fixedPhaseInstr = 4e4

// jitter returns the deterministic work-variance factor of one phase
// instance, in [1-Jitter, 1+Jitter], keyed by (band, position, phase name).
// It models the run-to-run execution-time variance of real compute phases;
// the same (band, position, phase) triple gets the same factor in every
// engine, so instruction totals stay engine-invariant.
func (k *kernel) jitter(band, p int, name string) float64 {
	j := k.cfg.Params.Jitter
	if j == 0 {
		return 1
	}
	// FNV-1a over the identifying triple (plus the run seed, so repeated
	// miniapp iterations see different variance draws).
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(k.cfg.Seed) + 1)
	mix(uint64(band) + 1)
	mix(uint64(p) + 1)
	for i := 0; i < len(name); i++ {
		mix(uint64(name[i]))
	}
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + j*(2*u-1)
}

// phase charges one compute phase of one band: the real data transform
// (ModeReal) plus the modeled, jittered instruction count on the calling
// lane.
func (k *kernel) phase(c computer, band, p int, name string, class knl.Class, instr float64, work func()) {
	if work != nil && k.cfg.Mode == ModeReal {
		work()
	}
	c.Compute(name, class, instr*k.jitter(band, p, name)+fixedPhaseInstr)
}
