package fftx

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runTaskSteps executes optimization 1 of the paper (Figure 4): the MPI
// layout of the original version (Ranks·NTG processes, two communicator
// layers) is kept, but every step of the FFT pipeline becomes an OmpSs task
// with flow dependencies on the iteration's psi/aux buffers, and the outer
// band loop is a taskloop, so several iterations are in flight per rank.
// While one iteration's step task is blocked inside a collective, the
// rank's other worker threads execute compute steps of neighboring
// iterations — communication overlaps computation.
func runTaskSteps(cfg Config) (*Result, error) {
	k := newKernel(cfg)
	R, T, W := cfg.Ranks, cfg.NTG, cfg.StepWorkers
	P := R * T
	lanes := P * W
	machine, fabric := cfg.buildMachine(lanes)
	eng := vtime.NewEngine(machine)
	tr := trace.New(lanes, cfg.Params.Freq)
	sink := cfg.traceSink(tr)
	w := mpi.NewWorld(eng, fabric, sink, P, W)
	w.Strict = cfg.Strict

	chunkBounds := make([][]int, R)
	for p := range chunkBounds {
		chunkBounds[p] = k.layout.TaskChunks(p, T)
	}

	var in, out [][][]complex128
	if cfg.Mode == ModeReal {
		in = make([][][]complex128, P)
		out = make([][][]complex128, P)
		for r := 0; r < P; r++ {
			in[r] = make([][]complex128, cfg.NB)
			out[r] = make([][]complex128, cfg.NB)
		}
		bands := pw.WavefunctionBands(k.sphere, cfg.NB)
		for b, coeffs := range bands {
			locals := k.layout.Distribute(coeffs)
			for p := 0; p < R; p++ {
				bd := chunkBounds[p]
				for g := 0; g < T; g++ {
					in[p*T+g][b] = locals[p][bd[g]:bd[g+1]]
				}
			}
		}
	}

	// iterState carries one in-flight iteration's buffers between its step
	// tasks (the psis/aux arrays of Figure 4).
	type iterState struct {
		coeffs []complex128
		zbuf   []complex128   // stick buffer (nested-loop mode)
		sticks [][]complex128 // scatter chunks in flight
		planes []complex128
		res    []complex128
	}
	// region keys for the dependency clauses
	type psisKey struct{ it int }

	nIter := cfg.NB / T
	for rank := 0; rank < P; rank++ {
		rank := rank
		p, g := rank/T, rank%T
		packRanks := make([]int, T)
		for gg := 0; gg < T; gg++ {
			packRanks[gg] = p*T + gg
		}
		grpRanks := make([]int, R)
		for q := 0; q < R; q++ {
			grpRanks[q] = q*T + g
		}
		workerLanes := make([]int, W)
		for t := 0; t < W; t++ {
			workerLanes[t] = rank*W + t
		}
		rt := ompss.New(eng, sink, workerLanes)
		rt.Strict = cfg.Strict
		eng.Spawn(fmt.Sprintf("rank%d.main", rank), func(mp *vtime.Proc) {
			packComm := w.NewSubComm(fmt.Sprintf("pack%d", p), packRanks)
			grpComm := w.NewSubComm(fmt.Sprintf("grp%d", g), grpRanks)
			bd := chunkBounds[p]

			for it := 0; it < nIter; it++ {
				it := it
				st := &iterState{}
				dep := []ompss.Dep{ompss.Inout(psisKey{it})}
				submit := func(label string, fn func(wk *ompss.Worker, ctx *mpi.Ctx)) {
					rt.Submit(mp, fmt.Sprintf("%s.it%d", label, it), dep, -it, func(wk *ompss.Worker) {
						ctx := &mpi.Ctx{W: w, Proc: wk.Proc, Rank: rank, Lane: wk.Lane}
						fn(wk, ctx)
					})
				}
				i := it * T
				submit("pack", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					if cfg.Mode == ModeReal {
						send := make([][]complex128, T)
						for gg := 0; gg < T; gg++ {
							send[gg] = in[rank][i+gg]
						}
						recv := mpi.Alltoallv(ctx, packComm, 2*it, send, mpi.BytesComplex128)
						k.phase(wk, i+g, p, "pack", knl.ClassMem, k.instrPack(p), func() {
							st.coeffs = make([]complex128, 0, k.layout.NGOf[p])
							for gg := 0; gg < T; gg++ {
								st.coeffs = append(st.coeffs, recv[gg]...)
							}
						})
					} else {
						packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it, k.bytesPack(p))
						k.phase(wk, i+g, p, "pack", knl.ClassMem, k.instrPack(p), nil)
					}
				})
				// Nested task loops (Figure 4: cft_2xy and cft_1z converted
				// to task loops, grain sizes 10 and 200) let every worker
				// of the rank participate in a step's FFT compute.
				zLoop := func(wk *ompss.Worker, sign fft.Sign) {
					grp := rt.NewGroup()
					rt.TaskLoopInGroup(wk.Proc, grp, fmt.Sprintf("cft_1z.it%d", it),
						k.layout.NSticksOf(p), cfg.NestedGrainZ,
						func(w2 *ompss.Worker, lo, hi int) {
							k.zFFTPart(w2, i+g, p, st.zbuf, sign, lo, hi)
						})
					grp.Wait(wk)
				}
				xyLoop := func(wk *ompss.Worker, sign fft.Sign) {
					grp := rt.NewGroup()
					rt.TaskLoopInGroup(wk.Proc, grp, fmt.Sprintf("cft_2xy.it%d", it),
						k.layout.NPlanesOf(p), cfg.NestedGrainXY,
						func(w2 *ompss.Worker, lo, hi int) {
							k.xyFFTPart(w2, i+g, p, st.planes, sign, lo, hi)
						})
					grp.Wait(wk)
				}
				submit("fft-z-fw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					if !cfg.NestedLoops {
						st.sticks = k.zForward(wk, i+g, p, st.coeffs)
						return
					}
					k.phase(wk, i+g, p, "prep", knl.ClassMem, k.instrPrep(p), func() {
						st.zbuf = k.prepSticks(p, st.coeffs)
					})
					zLoop(wk, fft.Backward)
					k.phase(wk, i+g, p, "z-split", knl.ClassMem, k.instrZSplit(p), func() {
						st.sticks = k.scatterSplit(p, st.zbuf)
					})
				})
				submit("scatter-fw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					st.sticks = k.alltoall(ctx, grpComm, 2*it, st.sticks, k.bytesScatter(p))
				})
				submit("fft-xy-fw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					st.planes = k.xyFill(wk, i+g, p, st.sticks)
					if cfg.NestedLoops {
						xyLoop(wk, fft.Backward)
					} else {
						k.xyFFT(wk, i+g, p, st.planes, fft.Backward)
					}
				})
				submit("vofr", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					k.vofr(wk, i+g, p, st.planes)
				})
				submit("fft-xy-bw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					if cfg.NestedLoops {
						xyLoop(wk, fft.Forward)
					} else {
						k.xyFFT(wk, i+g, p, st.planes, fft.Forward)
					}
					st.sticks = k.xyExtract(wk, i+g, p, st.planes)
				})
				submit("scatter-bw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					st.sticks = k.alltoall(ctx, grpComm, 2*it+1, st.sticks, k.bytesScatter(p))
				})
				submit("fft-z-bw", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					if !cfg.NestedLoops {
						st.res = k.zBackward(wk, i+g, p, st.sticks)
						return
					}
					k.phase(wk, i+g, p, "z-fill", knl.ClassMem, k.instrZFill(p), func() {
						st.zbuf = k.sticksFromScatter(p, st.sticks)
					})
					zLoop(wk, fft.Forward)
					k.phase(wk, i+g, p, "g-extract", knl.ClassMem, k.instrUnpack(p), func() {
						st.res = k.extractCoeffs(p, st.zbuf)
					})
				})
				submit("unpack", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					if cfg.Mode == ModeReal {
						send := make([][]complex128, T)
						k.phase(wk, i+g, p, "unpack", knl.ClassMem, k.instrPack(p), func() {
							for gg := 0; gg < T; gg++ {
								send[gg] = st.res[bd[gg]:bd[gg+1]]
							}
						})
						recv := mpi.Alltoallv(ctx, packComm, 2*it+1, send, mpi.BytesComplex128)
						for gg := 0; gg < T; gg++ {
							out[rank][i+gg] = recv[gg]
						}
					} else {
						k.phase(wk, i+g, p, "unpack", knl.ClassMem, k.instrPack(p), nil)
						packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it+1, k.bytesPack(p))
					}
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("fftx: task-steps engine: %w", err)
	}

	res := &Result{Config: cfg, Runtime: tr.Runtime(), Trace: tr, Sphere: k.sphere, Layout: k.layout}
	if cfg.Mode == ModeReal {
		res.Bands = make([][]complex128, cfg.NB)
		for b := 0; b < cfg.NB; b++ {
			locals := make([][]complex128, R)
			for p := 0; p < R; p++ {
				loc := make([]complex128, 0, k.layout.NGOf[p])
				for g := 0; g < T; g++ {
					loc = append(loc, out[p*T+g][b]...)
				}
				locals[p] = loc
			}
			res.Bands[b] = k.layout.Collect(locals)
		}
	}
	return res, nil
}
