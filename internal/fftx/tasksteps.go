package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// runTaskSteps schedules the stage graph as optimization 1 of the paper
// (Figure 4): the MPI layout of the original version (Ranks·NTG processes,
// two communicator layers) is kept, but every step of the pipeline — a
// same-label run of graph stages — becomes an OmpSs task with flow
// dependencies on the iteration's psi/aux buffers, and the outer band loop
// is a taskloop, so several iterations are in flight per rank. While one
// iteration's step task is blocked inside a collective, the rank's other
// worker threads execute compute steps of neighboring iterations —
// communication overlaps computation. With NestedLoops the splittable FFT
// stages additionally fan out as nested task loops (cft_1z/cft_2xy) over
// all of the rank's workers.
func runTaskSteps(cfg Config) (*Result, error) {
	R, T, W := cfg.Ranks, cfg.NTG, cfg.StepWorkers
	P := R * T
	h := newHarness(cfg, P, W)
	k := h.k
	gt := h.newGrouped()
	steps := k.pipe.Steps()

	// region key for the iteration's dependency clause
	type psisKey struct{ it int }

	nIter := cfg.NB / T
	for rank := 0; rank < P; rank++ {
		rank := rank
		p, g := rank/T, rank%T
		rt := h.newRankRuntime(rank*W, W)
		h.eng.Spawn(fmt.Sprintf("rank%d.main", rank), func(mp *vtime.Proc) {
			packComm, grpComm := h.groupComms(p, g)
			for it := 0; it < nIter; it++ {
				it := it
				s := &graph.State{Job: it*T + g}
				dep := []ompss.Dep{ompss.Inout(psisKey{it})}
				submit := func(label string, fn func(wk *ompss.Worker, ctx *mpi.Ctx)) {
					rt.Submit(mp, fmt.Sprintf("%s.it%d", label, it), dep, -it, func(wk *ompss.Worker) {
						fn(wk, h.ctx(wk, rank))
					})
				}
				submit("pack", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					gt.pack(wk, ctx, packComm, rank, p, g, it, s)
				})
				for _, step := range steps {
					step := step
					submit(step.Label, func(wk *ompss.Worker, ctx *mpi.Ctx) {
						for _, st := range step.Stages {
							switch {
							case st.Kind == graph.Scatter:
								k.runScatter(ctx, grpComm, it, st, s, p)
							case cfg.NestedLoops && st.Split != graph.SplitNone:
								k.nestedLoop(rt, wk, it, st, s, p)
							default:
								k.runStage(wk, st, s, p)
							}
						}
					})
				}
				submit("unpack", func(wk *ompss.Worker, ctx *mpi.Ctx) {
					gt.unpack(wk, ctx, packComm, rank, p, g, it, s)
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	return h.finish(gt.collect)
}
