package fftx_test

import (
	"fmt"

	"repro/internal/fftx"
)

func ExampleRun() {
	// Apply V(r) to 4 bands with 2 task groups of 2 ranks each, with real
	// numerics, and report the problem geometry.
	res, err := fftx.Run(fftx.Config{
		Ecut: 6, Alat: 6, NB: 4, Ranks: 2, NTG: 2,
		Engine: fftx.EngineOriginal, Mode: fftx.ModeReal,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("grid %d³, %d bands transformed on %d lanes\n",
		res.Sphere.Grid.Nx, len(res.Bands), res.Config.Lanes())
	// Output:
	// grid 10³, 4 bands transformed on 4 lanes
}

func ExampleRun_costMode() {
	// Cost mode runs the paper-scale workload without touching band data;
	// the simulated runtime and full trace are still produced.
	res, err := fftx.Run(fftx.Config{
		Ecut: 80, Alat: 20, NB: 16, Ranks: 2, NTG: 2,
		Engine: fftx.EngineTaskIter, Mode: fftx.ModeCost,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bands returned: %v, runtime positive: %v, phases traced: %d\n",
		res.Bands != nil, res.Runtime > 0, len(res.Trace.Phases()))
	// Output:
	// bands returned: false, runtime positive: true, phases traced: 11
}
