package fftx

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The stage-graph refactor contract: scheduling policy moved out of the
// engines, behaviour did not. These digests were captured from the
// pre-refactor hand-rolled engines (original.go/tasksteps.go/taskiter.go/
// taskcombined.go before the graph package existed) and every run must
// still reproduce them bit-for-bit: same simulated runtime, same trace
// interval stream, same transformed bands.
//
// Regenerate (only when a behaviour change is intended and understood):
//
//	go test ./internal/fftx -run TestGoldenEngineDigests -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_engines.json from the current engines")

const goldenPath = "testdata/golden_engines.json"

type goldenDigest struct {
	Name      string `json:"name"`
	Runtime   string `json:"runtime"` // float64 bits, hex
	Intervals int    `json:"intervals"`
	TraceHash string `json:"trace_hash"`
	BandsHash string `json:"bands_hash,omitempty"` // ModeReal only
}

// goldenConfigs is the engine × mode × gamma × shape matrix the digests
// cover. Every entry must stay runnable forever; names key the golden file.
func goldenConfigs() []struct {
	name string
	cfg  Config
} {
	mk := func(e Engine, ranks, ntg, nb int, m Mode) Config {
		return Config{Ecut: testEcut, Alat: testAlat, NB: nb, Ranks: ranks, NTG: ntg, Engine: e, Mode: m}
	}
	var out []struct {
		name string
		cfg  Config
	}
	add := func(name string, cfg Config) {
		out = append(out, struct {
			name string
			cfg  Config
		}{name, cfg})
	}
	for _, e := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined, EngineDataflow} {
		for _, m := range []Mode{ModeReal, ModeCost} {
			for _, rt := range [][2]int{{2, 2}, {3, 2}} {
				add(fmt.Sprintf("%v-%dx%d-%v", e, rt[0], rt[1], modeName(m)), mk(e, rt[0], rt[1], 8, m))
			}
		}
	}
	for _, e := range []Engine{EngineOriginal, EngineTaskIter, EngineDataflow} {
		for _, m := range []Mode{ModeReal, ModeCost} {
			cfg := mk(e, 2, 2, 8, m)
			cfg.Gamma = true
			add(fmt.Sprintf("%v-2x2-%v-gamma", e, modeName(m)), cfg)
		}
	}
	for _, m := range []Mode{ModeReal, ModeCost} {
		cfg := mk(EngineTaskSteps, 2, 2, 8, m)
		cfg.NestedLoops = true
		cfg.NestedGrainXY = 3
		cfg.NestedGrainZ = 4
		add(fmt.Sprintf("task-steps-2x2-%v-nested", modeName(m)), cfg)
	}
	// Uneven pack/scatter extremes and a multi-node case.
	add("original-4x1-real", mk(EngineOriginal, 4, 1, 4, ModeReal))
	add("original-1x4-real", mk(EngineOriginal, 1, 4, 8, ModeReal))
	multi := mk(EngineTaskCombined, 2, 2, 8, ModeCost)
	multi.NodesCount = 2
	add("task-combined-2x2-cost-2nodes", multi)
	dfMulti := mk(EngineDataflow, 2, 2, 8, ModeCost)
	dfMulti.NodesCount = 2
	add("dataflow-2x2-cost-2nodes", dfMulti)
	seeded := mk(EngineTaskIter, 2, 2, 8, ModeCost)
	seeded.Seed = 3
	add("task-iter-2x2-cost-seed3", seeded)
	return out
}

func modeName(m Mode) string {
	if m == ModeCost {
		return "cost"
	}
	return "real"
}

func digestOf(name string, res *Result) goldenDigest {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	ws := func(s string) { w64(uint64(len(s))); h.Write([]byte(s)) }
	for _, iv := range res.Trace.Intervals {
		w64(uint64(iv.Lane))
		w64(uint64(iv.Kind))
		wf(iv.Start)
		wf(iv.End)
		ws(iv.Phase)
		w64(uint64(iv.Class))
		wf(iv.Instr)
		ws(iv.Comm)
		w64(uint64(int64(iv.Tag)))
	}
	d := goldenDigest{
		Name:      name,
		Runtime:   fmt.Sprintf("%016x", math.Float64bits(res.Runtime)),
		Intervals: len(res.Trace.Intervals),
		TraceHash: fmt.Sprintf("%016x", h.Sum64()),
	}
	if res.Bands != nil {
		hb := fnv.New64a()
		wb := func(v uint64) {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			hb.Write(buf[:])
		}
		for _, band := range res.Bands {
			wb(uint64(len(band)))
			for _, c := range band {
				wb(math.Float64bits(real(c)))
				wb(math.Float64bits(imag(c)))
			}
		}
		d.BandsHash = fmt.Sprintf("%016x", hb.Sum64())
	}
	return d
}

// TestGoldenEngineDigests holds every engine to the pre-refactor goldens:
// simulated runtime, full trace interval stream and transformed bands are
// bit-identical in both modes.
func TestGoldenEngineDigests(t *testing.T) {
	var got []goldenDigest
	for _, c := range goldenConfigs() {
		res, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got = append(got, digestOf(c.name, res))
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}

	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update): %v", err)
	}
	var want []goldenDigest
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	wantBy := map[string]goldenDigest{}
	for _, d := range want {
		wantBy[d.Name] = d
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, matrix has %d (regenerate with -update after an intended change)", len(want), len(got))
	}
	for _, g := range got {
		w, ok := wantBy[g.Name]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with -update after an intended change)", g.Name)
			continue
		}
		if g != w {
			t.Errorf("%s: behaviour diverged from pre-refactor golden:\n got  %+v\n want %+v", g.Name, g, w)
		}
	}
}
