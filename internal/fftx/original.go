package fftx

import (
	"fmt"

	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runOriginal executes the static task-group baseline of Figure 1:
// P = Ranks·NTG single-threaded MPI processes, rank = p·NTG + g for
// position p and task group g. Each outer iteration processes NTG bands
// (one per group): the pack Alltoallv inside the R "neighboring" pack
// communicators redistributes the G-chunks so group g assembles band i+g,
// the scatter Alltoall inside the T "alternating" group communicators moves
// sticks to planes, and everything mirrors back after VOFR.
func runOriginal(cfg Config) (*Result, error) {
	k := newKernel(cfg)
	R, T := cfg.Ranks, cfg.NTG
	P := R * T
	machine, fabric := cfg.buildMachine(P)
	eng := vtime.NewEngine(machine)
	tr := trace.New(P, cfg.Params.Freq)
	sink := cfg.traceSink(tr)
	w := mpi.NewWorld(eng, fabric, sink, P, 1)
	w.Strict = cfg.Strict

	chunkBounds := make([][]int, R)
	for p := range chunkBounds {
		chunkBounds[p] = k.layout.TaskChunks(p, T)
	}

	// Initial distribution: rank (g,p) holds chunk g of position p's local
	// coefficients for every band.
	var in, out [][][]complex128
	if cfg.Mode == ModeReal {
		in = make([][][]complex128, P)
		out = make([][][]complex128, P)
		for r := 0; r < P; r++ {
			in[r] = make([][]complex128, cfg.NB)
			out[r] = make([][]complex128, cfg.NB)
		}
		var bands [][]complex128
		if cfg.Gamma {
			bands = pw.WavefunctionBandsGamma(k.sphere, cfg.NB)
		} else {
			bands = pw.WavefunctionBands(k.sphere, cfg.NB)
		}
		for b, coeffs := range bands {
			locals := k.layout.Distribute(coeffs)
			for p := 0; p < R; p++ {
				bd := chunkBounds[p]
				for g := 0; g < T; g++ {
					in[p*T+g][b] = locals[p][bd[g]:bd[g+1]]
				}
			}
		}
	}

	// An outer-loop iteration processes NTG jobs: one band per task group,
	// or one band pair in gamma mode.
	jobs := cfg.NB
	if cfg.Gamma {
		jobs = cfg.NB / 2
	}
	for rank := 0; rank < P; rank++ {
		rank := rank
		w.Spawn(rank, 0, func(ctx *mpi.Ctx) {
			p, g := rank/T, rank%T
			packRanks := make([]int, T)
			for gg := 0; gg < T; gg++ {
				packRanks[gg] = p*T + gg
			}
			packComm := w.NewSubComm(fmt.Sprintf("pack%d", p), packRanks)
			grpRanks := make([]int, R)
			for q := 0; q < R; q++ {
				grpRanks[q] = q*T + g
			}
			grpComm := w.NewSubComm(fmt.Sprintf("grp%d", g), grpRanks)
			bd := chunkBounds[p]

			for it := 0; it*T < jobs; it++ {
				i := it * T // this iteration's rank processes job i+g
				if cfg.Gamma {
					k.gammaIteration(ctx, packComm, grpComm, rank, p, g, it, i, bd, in, out)
					continue
				}

				// Pack: redistribute the NTG bands' chunks among the
				// groups; group g assembles band i+g.
				var coeffs []complex128
				if cfg.Mode == ModeReal {
					send := make([][]complex128, T)
					for gg := 0; gg < T; gg++ {
						send[gg] = in[rank][i+gg]
					}
					recv := mpi.Alltoallv(ctx, packComm, 2*it, send, mpi.BytesComplex128)
					k.phase(ctx, i+g, p, "pack", knl.ClassMem, k.instrPack(p), func() {
						coeffs = make([]complex128, 0, k.layout.NGOf[p])
						for gg := 0; gg < T; gg++ {
							coeffs = append(coeffs, recv[gg]...)
						}
					})
				} else {
					packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it, k.bytesPack(p))
					k.phase(ctx, i+g, p, "pack", knl.ClassMem, k.instrPack(p), nil)
				}

				sendZ := k.zForward(ctx, i+g, p, coeffs)
				recvZ := k.alltoall(ctx, grpComm, 2*it, sendZ, k.bytesScatter(p))
				sendXY := k.xyPart(ctx, i+g, p, recvZ)
				recvXY := k.alltoall(ctx, grpComm, 2*it+1, sendXY, k.bytesScatter(p))
				res := k.zBackward(ctx, i+g, p, recvXY)

				// Unpack: return each group's chunk of the transformed
				// band to its home rank.
				if cfg.Mode == ModeReal {
					send := make([][]complex128, T)
					k.phase(ctx, i+g, p, "unpack", knl.ClassMem, k.instrPack(p), func() {
						for gg := 0; gg < T; gg++ {
							send[gg] = res[bd[gg]:bd[gg+1]]
						}
					})
					recv := mpi.Alltoallv(ctx, packComm, 2*it+1, send, mpi.BytesComplex128)
					for gg := 0; gg < T; gg++ {
						out[rank][i+gg] = recv[gg]
					}
				} else {
					k.phase(ctx, i+g, p, "unpack", knl.ClassMem, k.instrPack(p), nil)
					packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it+1, k.bytesPack(p))
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("fftx: original engine: %w", err)
	}

	res := &Result{Config: cfg, Runtime: tr.Runtime(), Trace: tr, Sphere: k.sphere, Layout: k.layout}
	if cfg.Mode == ModeReal {
		res.Bands = make([][]complex128, cfg.NB)
		for b := 0; b < cfg.NB; b++ {
			locals := make([][]complex128, R)
			for p := 0; p < R; p++ {
				loc := make([]complex128, 0, k.layout.NGOf[p])
				for g := 0; g < T; g++ {
					loc = append(loc, out[p*T+g][b]...)
				}
				locals[p] = loc
			}
			res.Bands[b] = k.layout.Collect(locals)
		}
	}
	return res, nil
}

// gammaIteration runs one outer-loop iteration of the original engine in
// gamma mode: the pack moves band PAIRS between the groups (each chunk is
// the concatenation of the pair's two sub-chunks), the pipeline transforms
// two bands per FFT, and the unpack splits the pair again.
func (k *kernel) gammaIteration(ctx *mpi.Ctx, packComm, grpComm *mpi.Comm,
	rank, p, g, it, i int, bd []int, in, out [][][]complex128) {
	cfg := k.cfg
	T := cfg.NTG
	job := i + g
	var c1, c2 []complex128
	if cfg.Mode == ModeReal {
		send := make([][]complex128, T)
		for gg := 0; gg < T; gg++ {
			pair := make([]complex128, 0, 2*len(in[rank][2*(i+gg)]))
			pair = append(pair, in[rank][2*(i+gg)]...)
			pair = append(pair, in[rank][2*(i+gg)+1]...)
			send[gg] = pair
		}
		recv := mpi.Alltoallv(ctx, packComm, 2*it, send, mpi.BytesComplex128)
		k.phase(ctx, job, p, "pack", knl.ClassMem, gammaFactor*k.instrPack(p), func() {
			c1 = make([]complex128, 0, k.layout.NGOf[p])
			c2 = make([]complex128, 0, k.layout.NGOf[p])
			for gg := 0; gg < T; gg++ {
				csz := bd[gg+1] - bd[gg]
				c1 = append(c1, recv[gg][:csz]...)
				c2 = append(c2, recv[gg][csz:]...)
			}
		})
	} else {
		packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it, gammaFactor*k.bytesPack(p))
		k.phase(ctx, job, p, "pack", knl.ClassMem, gammaFactor*k.instrPack(p), nil)
	}

	sendZ := k.zForwardGamma(ctx, job, p, c1, c2)
	recvZ := k.alltoall(ctx, grpComm, 2*it, sendZ, k.bytesScatterGamma(p))
	sendXY := k.xyPartGamma(ctx, job, p, recvZ)
	recvXY := k.alltoall(ctx, grpComm, 2*it+1, sendXY, k.bytesScatterGamma(p))
	r1, r2 := k.zBackwardGamma(ctx, job, p, recvXY)

	if cfg.Mode == ModeReal {
		send := make([][]complex128, T)
		k.phase(ctx, job, p, "unpack", knl.ClassMem, gammaFactor*k.instrPack(p), func() {
			for gg := 0; gg < T; gg++ {
				pair := make([]complex128, 0, 2*(bd[gg+1]-bd[gg]))
				pair = append(pair, r1[bd[gg]:bd[gg+1]]...)
				pair = append(pair, r2[bd[gg]:bd[gg+1]]...)
				send[gg] = pair
			}
		})
		recv := mpi.Alltoallv(ctx, packComm, 2*it+1, send, mpi.BytesComplex128)
		csz := bd[g+1] - bd[g]
		for gg := 0; gg < T; gg++ {
			out[rank][2*(i+gg)] = recv[gg][:csz]
			out[rank][2*(i+gg)+1] = recv[gg][csz:]
		}
	} else {
		k.phase(ctx, job, p, "unpack", knl.ClassMem, gammaFactor*k.instrPack(p), nil)
		packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it+1, gammaFactor*k.bytesPack(p))
	}
}
