package fftx

import (
	"repro/internal/fftx/graph"
	"repro/internal/mpi"
)

// runOriginal schedules the stage graph as the static task-group baseline
// of Figure 1: P = Ranks·NTG single-threaded MPI processes, rank = p·NTG+g
// for position p and task group g, every job walked fully synchronously.
// Each outer iteration processes NTG bands (one per group): the pack
// Alltoallv inside the R "neighboring" pack communicators redistributes
// the G-chunks so group g assembles band i+g, the scatter Alltoall inside
// the T "alternating" group communicators moves sticks to planes, and
// everything mirrors back after VOFR.
func runOriginal(cfg Config) (*Result, error) {
	R, T := cfg.Ranks, cfg.NTG
	P := R * T
	h := newHarness(cfg, P, 1)
	k := h.k
	gt := h.newGrouped()
	jobs := h.jobs()

	for rank := 0; rank < P; rank++ {
		rank := rank
		h.w.Spawn(rank, 0, func(ctx *mpi.Ctx) {
			p, g := rank/T, rank%T
			packComm, grpComm := h.groupComms(p, g)
			for it := 0; it*T < jobs; it++ {
				s := &graph.State{Job: it*T + g}
				gt.pack(ctx, ctx, packComm, rank, p, g, it, s)
				k.walk(ctx, ctx, grpComm, it, s, p)
				gt.unpack(ctx, ctx, packComm, rank, p, g, it, s)
			}
		})
	}
	return h.finish(gt.collect)
}
