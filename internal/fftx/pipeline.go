package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// The stage walkers: how a scheduler executes the nodes of the stage
// graph. Compute stages become jittered compute phases on the calling
// lane (with the real data transform in ModeReal); scatter stages become
// Alltoallv collectives — synchronous, cost-only or asynchronous,
// whichever policy the engine implements.

// runStage executes one compute stage of the graph on computer c.
func (k *kernel) runStage(c computer, st *graph.Stage, s *graph.State, p int) {
	var work func()
	if st.Body != nil {
		work = func() { st.Body(s, p) }
	}
	k.phase(c, s.Job, p, st.Name, st.Class, st.Instr(p), work)
}

// partStage executes the [lo,hi) sub-range of a splittable compute stage,
// charging the proportional share of the stage's instructions — the body
// of the nested task loops (paper Figure 4, cft_1z/cft_2xy).
func (k *kernel) partStage(c computer, st *graph.Stage, s *graph.State, p, lo, hi int) {
	frac := float64(hi-lo) / float64(st.Count(p))
	var work func()
	if st.Part != nil {
		work = func() { st.Part(s, p, lo, hi) }
	}
	k.phase(c, s.Job, p, st.Name, st.Class, st.Instr(p)*frac, work)
}

// nestedLoop runs a splittable stage as a nested task loop executed by all
// of the rank's workers, waiting for the group before continuing the step.
func (k *kernel) nestedLoop(rt *ompss.Runtime, wk *ompss.Worker, it int, st *graph.Stage, s *graph.State, p int) {
	grain := k.cfg.NestedGrainZ
	if st.Split == graph.SplitPlanes {
		grain = k.cfg.NestedGrainXY
	}
	grp := rt.NewGroup()
	rt.TaskLoopInGroup(wk.Proc, grp, fmt.Sprintf("%s.it%d", st.LoopName, it),
		st.Count(p), grain,
		func(w2 *ompss.Worker, lo, hi int) {
			k.partStage(w2, st, s, p, lo, hi)
		})
	grp.Wait(wk)
}

// runScatter executes a scatter stage synchronously on comm: real data in
// ModeReal, the equivalent synchronization and transfer cost without
// payload in ModeCost. seq is the scheduler's tag base (the iteration for
// the grouped engines, the job for the flat ones).
func (k *kernel) runScatter(ctx *mpi.Ctx, comm *mpi.Comm, seq int, st *graph.Stage, s *graph.State, p int) {
	tag := 2*seq + st.TagOff
	if k.cfg.Mode == ModeReal {
		s.Chunks = mpi.Alltoallv(ctx, comm, tag, s.Chunks, mpi.BytesComplex128)
		return
	}
	comm.CollectiveCost(ctx, mpi.OpAlltoallv, tag, st.Bytes(p))
	s.Chunks = nil
}

// runScatterAsync posts a scatter stage asynchronously (the combined
// engine's communication-thread scatters) and calls done from the
// handling process once the exchange completes.
func (k *kernel) runScatterAsync(ctx *mpi.Ctx, comm *mpi.Comm, seq int, st *graph.Stage, s *graph.State, p int, done func(hp *vtime.Proc)) {
	tag := 2*seq + st.TagOff
	if k.cfg.Mode == ModeReal {
		mpi.IAlltoallv(ctx, comm, tag, s.Chunks, mpi.BytesComplex128,
			func(hp *vtime.Proc, recv [][]complex128) {
				s.Chunks = recv
				done(hp)
			})
		return
	}
	mpi.ICollectiveCost(ctx, comm, mpi.OpAlltoallv, tag, st.Bytes(p), done)
}

// walk executes the whole pipeline in stage order on one computer, with
// synchronous scatters on comm — the fully sequential per-job schedule of
// the original and per-iteration engines.
func (k *kernel) walk(c computer, ctx *mpi.Ctx, comm *mpi.Comm, seq int, s *graph.State, p int) {
	for i := range k.pipe.Stages {
		st := &k.pipe.Stages[i]
		if st.Kind == graph.Scatter {
			k.runScatter(ctx, comm, seq, st, s, p)
			continue
		}
		k.runStage(c, st, s, p)
	}
}

// Run executes the configured engine and returns its result. EngineAuto
// resolves to the cost-model-fastest applicable engine first (see
// SelectEngine).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	requestedAuto := cfg.Engine == EngineAuto
	if requestedAuto {
		e, err := selectEngine(cfg)
		if err != nil {
			return nil, err
		}
		mAutoSelected.With(e.String()).Inc()
		cfg.Engine = e
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mRuns.With(cfg.Engine.String()).Inc()
	mFreq.Set(cfg.Params.Freq)
	res, err := runEngine(cfg)
	if err == nil && requestedAuto {
		res.Trace.Meta["engine-requested"] = EngineAuto.String()
	}
	return res, err
}

// runEngine dispatches an already-validated, concrete-engine config.
func runEngine(cfg Config) (*Result, error) {
	switch cfg.Engine {
	case EngineOriginal:
		return runOriginal(cfg)
	case EngineTaskSteps:
		return runTaskSteps(cfg)
	case EngineTaskIter:
		return runTaskIter(cfg)
	case EngineTaskCombined:
		return runTaskCombined(cfg)
	case EngineDataflow:
		return runDataflow(cfg)
	}
	return nil, errUnknownEngine(cfg.Engine)
}

type errUnknownEngine Engine

func (e errUnknownEngine) Error() string {
	return "fftx: unknown engine " + Engine(e).String()
}
