package fftx

import (
	"repro/internal/fft"
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Pipeline fragments shared by the engines. Each fragment bundles the real
// data transform (skipped in ModeCost) with its compute-phase accounting.
// The miniapp's "forward" direction (reciprocal → real space) is the
// exp(+iGr) kernel, i.e. fft.Backward in this library's convention; the
// return leg applies fft.Forward with the 1/N scaling in gExtract.

func (k *kernel) instrZSplit(p int) float64 {
	return float64(k.layout.NSticksOf(p)*k.sphere.Grid.Nz) * 2 * 16 * k.cfg.Params.InstrPerByte
}

func (k *kernel) instrZFill(p int) float64 {
	return k.instrZSplit(p)
}

// zForward runs psi preparation, the forward Z FFTs and the scatter-send
// split for position p, returning the scatter send chunks (nil in
// ModeCost).
func (k *kernel) zForward(c computer, band, p int, coeffs []complex128) [][]complex128 {
	var buf []complex128
	k.phase(c, band, p, "prep", knl.ClassMem, k.instrPrep(p), func() {
		buf = k.prepSticks(p, coeffs)
	})
	k.phase(c, band, p, "fft-z", knl.ClassStream, k.instrFFTZ(p), func() {
		k.fftZ(p, buf, fft.Backward)
	})
	var send [][]complex128
	k.phase(c, band, p, "z-split", knl.ClassMem, k.instrZSplit(p), func() {
		send = k.scatterSplit(p, buf)
	})
	return send
}

// xyFill assembles the received stick fragments into full planes.
func (k *kernel) xyFill(c computer, band, p int, recv [][]complex128) []complex128 {
	var planes []complex128
	k.phase(c, band, p, "xy-fill", knl.ClassMem, k.instrXYFill(p), func() {
		planes = k.planesFromScatter(p, recv)
	})
	return planes
}

// xyFFT transforms the owned planes in the given direction.
func (k *kernel) xyFFT(c computer, band, p int, planes []complex128, sign fft.Sign) {
	k.phase(c, band, p, "fft-xy", knl.ClassVector, k.instrFFTXY(p), func() {
		k.fftXY(p, planes, sign)
	})
}

// vofr applies the real-space potential to the owned planes.
func (k *kernel) vofr(c computer, band, p int, planes []complex128) {
	k.phase(c, band, p, "vofr", knl.ClassVector, k.instrVOfR(p), func() {
		k.vOfR(p, planes)
	})
}

// xyExtract disassembles the planes into backward-scatter send chunks.
func (k *kernel) xyExtract(c computer, band, p int, planes []complex128) [][]complex128 {
	var send [][]complex128
	k.phase(c, band, p, "xy-extract", knl.ClassMem, k.instrXYExtract(p), func() {
		send = k.planesToScatter(p, planes)
	})
	return send
}

// xyFFTPart transforms the plane range [lo,hi) of position p, charging the
// proportional share of the phase's instructions. It is the body of the
// nested task loop over cft_2xy calls (paper Figure 4, grain 10).
func (k *kernel) xyFFTPart(c computer, band, p int, planes []complex128, sign fft.Sign, lo, hi int) {
	n := k.layout.NPlanesOf(p)
	frac := float64(hi-lo) / float64(n)
	k.phase(c, band, p, "fft-xy", knl.ClassVector, k.instrFFTXY(p)*frac, func() {
		g := k.sphere.Grid
		nxy := g.Nx * g.Ny
		par.ParallelFor(hi-lo, grainPlanes, func(zlo, zhi int) {
			for z := lo + zlo; z < lo+zhi; z++ {
				k.plan2D.Transform(planes[z*nxy:(z+1)*nxy], sign)
			}
		})
	})
}

// zFFTPart transforms the stick range [lo,hi) of position p's stick buffer,
// the body of the nested task loop over cft_1z calls (grain 200).
func (k *kernel) zFFTPart(c computer, band, p int, buf []complex128, sign fft.Sign, lo, hi int) {
	n := k.layout.NSticksOf(p)
	frac := float64(hi-lo) / float64(n)
	nz := k.sphere.Grid.Nz
	k.phase(c, band, p, "fft-z", knl.ClassStream, k.instrFFTZ(p)*frac, func() {
		transformManyPar(k.planZ, buf[lo*nz:hi*nz], hi-lo, sign)
	})
}

// xyPart runs the central high-intensity block of Figure 3 — plane
// assembly, forward XY FFTs, the V(r) application, backward XY FFTs and
// plane disassembly — returning the backward-scatter send chunks.
func (k *kernel) xyPart(c computer, band, p int, recv [][]complex128) [][]complex128 {
	planes := k.xyFill(c, band, p, recv)
	k.xyFFT(c, band, p, planes, fft.Backward)
	k.vofr(c, band, p, planes)
	k.xyFFT(c, band, p, planes, fft.Forward)
	return k.xyExtract(c, band, p, planes)
}

// zBackward reassembles the sticks from the backward scatter, runs the
// backward Z FFTs and extracts the normalized sphere coefficients.
func (k *kernel) zBackward(c computer, band, p int, recv [][]complex128) []complex128 {
	var buf []complex128
	k.phase(c, band, p, "z-fill", knl.ClassMem, k.instrZFill(p), func() {
		buf = k.sticksFromScatter(p, recv)
	})
	k.phase(c, band, p, "fft-z", knl.ClassStream, k.instrFFTZ(p), func() {
		k.fftZ(p, buf, fft.Forward)
	})
	var out []complex128
	k.phase(c, band, p, "g-extract", knl.ClassMem, k.instrUnpack(p), func() {
		out = k.extractCoeffs(p, buf)
	})
	return out
}

// alltoall performs the engines' Alltoallv: real data in ModeReal, the
// equivalent synchronization and transfer cost without payload in ModeCost.
// bytesPerRank is the cost-model volume (ignored in ModeReal, where the
// actual payload sizes drive the cost).
func (k *kernel) alltoall(ctx *mpi.Ctx, comm *mpi.Comm, tag int, send [][]complex128, bytesPerRank float64) [][]complex128 {
	if k.cfg.Mode == ModeReal {
		return mpi.Alltoallv(ctx, comm, tag, send, mpi.BytesComplex128)
	}
	comm.CollectiveCost(ctx, mpi.OpAlltoallv, tag, bytesPerRank)
	return nil
}

// Run executes the configured engine and returns its result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mRuns.With(cfg.Engine.String()).Inc()
	mFreq.Set(cfg.Params.Freq)
	switch cfg.Engine {
	case EngineOriginal:
		return runOriginal(cfg)
	case EngineTaskSteps:
		return runTaskSteps(cfg)
	case EngineTaskIter:
		return runTaskIter(cfg)
	case EngineTaskCombined:
		return runTaskCombined(cfg)
	}
	return nil, errUnknownEngine(cfg.Engine)
}

type errUnknownEngine Engine

func (e errUnknownEngine) Error() string {
	return "fftx: unknown engine " + Engine(e).String()
}
