package fftx

import (
	"testing"

	"repro/internal/metrics"
)

// overheadConfig is the quick-suite-sized workload used to measure the cost
// of the always-on telemetry: small enough for CI, large enough that a run
// passes through every instrumented layer (vtime, mpi, ompss, fftx).
func overheadConfig() Config {
	return Config{
		Ecut: 20, Alat: 12, NB: 16, Ranks: 4, NTG: 2,
		Engine: EngineTaskIter, Mode: ModeCost,
	}
}

// minRunSeconds runs the workload n times and returns the fastest host-side
// wall time. Minimum-of-N discards scheduler noise and GC pauses, which dwarf
// the per-event cost being measured.
func minRunSeconds(b *testing.B, cfg Config, n int) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		timer := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		sec := timer.T.Seconds() / float64(timer.N)
		if i == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// BenchmarkRunTelemetryOn and BenchmarkRunTelemetryOff are the benchmark
// pair behind `make overhead-smoke`:
//
//	go test ./internal/fftx -run xx -bench 'RunTelemetry' -benchtime 5x
//
// Compare ns/op; the On/Off ratio is the instrumentation overhead.
func BenchmarkRunTelemetryOn(b *testing.B) {
	cfg := overheadConfig()
	metrics.SetEnabled(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTelemetryOff(b *testing.B) {
	cfg := overheadConfig()
	metrics.SetEnabled(false)
	defer metrics.SetEnabled(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTelemetryOverheadSmoke compares min-of-N wall time with metrics
// enabled against disabled. The design target is <5%; the assertion uses a
// deadman threshold of 50% so a loaded CI machine does not flake, while a
// pathological regression (locking on the hot path, per-event allocation)
// still fails. The measured ratio is logged for the CI job to surface.
func TestTelemetryOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	cfg := overheadConfig()
	const rounds = 3
	run := func(enabled bool) float64 {
		metrics.SetEnabled(enabled)
		best := 0.0
		for i := 0; i < rounds; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			sec := r.T.Seconds() / float64(r.N)
			if i == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	// Interleave a warm-up of each mode first so neither side pays the
	// one-time costs (page faults, lazy family registration).
	metrics.SetEnabled(false)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	metrics.SetEnabled(true)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	off := run(false)
	on := run(true)
	metrics.SetEnabled(true)
	ratio := on / off
	t.Logf("telemetry overhead: on %.4fms, off %.4fms, ratio %.3f (target <1.05, deadman <1.50)",
		on*1e3, off*1e3, ratio)
	if ratio > 1.5 {
		t.Fatalf("telemetry overhead ratio %.3f exceeds deadman threshold 1.5", ratio)
	}
}
