package fftx

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestTelemetryPopulated runs a small task-engine config and checks that
// every instrumented layer fed the default registry: run counts, per-phase
// compute (live IPC inputs), MPI collectives with bytes, and task-runtime
// activity. Deltas are used because the registry is process-wide.
func TestTelemetryPopulated(t *testing.T) {
	before := metrics.Default().Gather()
	cfg := Config{Ecut: 10, Alat: 10, NB: 8, Ranks: 4, NTG: 2,
		Engine: EngineTaskIter, Mode: ModeCost}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	after := metrics.Default().Gather()
	delta := func(name string) float64 { return after.Sum(name) - before.Sum(name) }

	if d, _ := after.Get("fftx_runs_total", "task-iter"); d < 1 {
		t.Fatalf("fftx_runs_total{engine=task-iter} = %g, want >= 1", d)
	}
	for _, name := range []string{
		"fftx_phase_compute_seconds_total",
		"fftx_phase_instructions_total",
		"fftx_mpi_calls_total",
		"fftx_mpi_bytes_total",
		"fftx_ompss_tasks_created_total",
		"fftx_ompss_tasks_completed_total",
		"fftx_vtime_steps_total",
		"fftx_vtime_block_seconds_total",
	} {
		if delta(name) <= 0 {
			t.Errorf("%s did not advance during the run", name)
		}
	}
	if d := delta("fftx_ompss_tasks_created_total") - delta("fftx_ompss_tasks_completed_total"); d != 0 {
		t.Errorf("tasks created-completed delta = %g, want 0 after a finished run", d)
	}
	if f, ok := after.Get("fftx_core_frequency_hz"); !ok || f <= 0 {
		t.Errorf("fftx_core_frequency_hz = %g,%v", f, ok)
	}
	// Live IPC is computable from the exposed families.
	ipc := delta("fftx_phase_instructions_total") /
		(delta("fftx_phase_compute_seconds_total") * after.Sum("fftx_core_frequency_hz"))
	if ipc <= 0 || ipc > 16 {
		t.Errorf("live IPC = %g, want a sane positive value", ipc)
	}
}

// TestConfigSinkTee checks that a streaming Sink on the Config receives the
// same intervals the in-memory trace accumulates.
func TestConfigSinkTee(t *testing.T) {
	ring := trace.NewRingSink(1 << 16)
	cfg := Config{Ecut: 10, Alat: 10, NB: 8, Ranks: 2, NTG: 1,
		Engine: EngineOriginal, Mode: ModeCost, Sink: ring}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Intervals) == 0 {
		t.Fatal("run recorded no intervals")
	}
	if ring.Len() != len(res.Trace.Intervals) {
		t.Fatalf("ring saw %d intervals, trace has %d", ring.Len(), len(res.Trace.Intervals))
	}
	if ring.Snapshot()[0] != res.Trace.Intervals[0] {
		t.Fatal("ring and trace disagree on the first interval")
	}
}
