package fftx

import (
	"testing"

	"repro/internal/par"
)

// hostparConfigs are small ModeReal runs covering every engine plus gamma
// mode — the surfaces the par.ParallelFor fan-out touches.
func hostparConfigs() []Config {
	return []Config{
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineOriginal, Mode: ModeReal},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineTaskSteps, Mode: ModeReal},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineTaskSteps, Mode: ModeReal, NestedLoops: true, NestedGrainXY: 2, NestedGrainZ: 8},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineTaskIter, Mode: ModeReal},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineTaskCombined, Mode: ModeReal},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineOriginal, Mode: ModeReal, Gamma: true},
		{Ecut: 8, Alat: 8, NB: 4, Ranks: 2, NTG: 2, Engine: EngineTaskIter, Mode: ModeReal, Gamma: true},
	}
}

// TestHostParEquivalence proves the determinism contract of internal/par:
// with host parallelism off and on (forced to 4 workers so even a 1-core
// host really fans out — under -race this also exercises the memory
// accesses concurrently), every engine must produce bit-identical
// wavefunctions, the identical simulated runtime and an identical
// virtual-time trace.
func TestHostParEquivalence(t *testing.T) {
	t.Cleanup(func() {
		par.SetEnabled(true)
		par.SetWorkers(0)
	})
	for _, cfg := range hostparConfigs() {
		name := cfg.Engine.String()
		if cfg.Gamma {
			name += "-gamma"
		}
		if cfg.NestedLoops {
			name += "-nested"
		}
		t.Run(name, func(t *testing.T) {
			par.SetEnabled(false)
			serial, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			par.SetEnabled(true)
			par.SetWorkers(4)
			parallel, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if serial.Runtime != parallel.Runtime {
				t.Errorf("simulated runtime differs: serial %v parallel %v", serial.Runtime, parallel.Runtime)
			}
			if len(serial.Bands) != len(parallel.Bands) {
				t.Fatalf("band count differs: %d vs %d", len(serial.Bands), len(parallel.Bands))
			}
			for b := range serial.Bands {
				sb, pb := serial.Bands[b], parallel.Bands[b]
				if len(sb) != len(pb) {
					t.Fatalf("band %d length differs", b)
				}
				for i := range sb {
					if sb[i] != pb[i] {
						t.Fatalf("band %d coefficient %d not bit-identical: %v vs %v", b, i, sb[i], pb[i])
					}
				}
			}
			si, pi := serial.Trace.Intervals, parallel.Trace.Intervals
			if len(si) != len(pi) {
				t.Fatalf("trace length differs: %d vs %d intervals", len(si), len(pi))
			}
			for i := range si {
				if si[i] != pi[i] {
					t.Fatalf("trace interval %d differs:\nserial   %+v\nparallel %+v", i, si[i], pi[i])
				}
			}
		})
	}
}

// TestHostParCostMode checks the switch is inert where there is no real
// data: ModeCost runs charge identical virtual time either way.
func TestHostParCostMode(t *testing.T) {
	t.Cleanup(func() {
		par.SetEnabled(true)
		par.SetWorkers(0)
	})
	cfg := Config{Ecut: 20, Alat: 10, NB: 8, Ranks: 2, NTG: 2, Engine: EngineOriginal, Mode: ModeCost}
	par.SetEnabled(false)
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par.SetEnabled(true)
	par.SetWorkers(4)
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Runtime != parallel.Runtime {
		t.Errorf("ModeCost runtime differs: %v vs %v", serial.Runtime, parallel.Runtime)
	}
}
