package fftx

import (
	"repro/internal/fft"
	"repro/internal/pw"
)

// Reference computes the result of the miniapp serially: for every band,
// fill the full 3-D box, backward-transform to real space, multiply by
// V(r), forward-transform back and extract the sphere with 1/N scaling.
// Every engine's ModeReal output must match it to rounding error.
func Reference(cfg Config) [][]complex128 {
	s := pw.NewSphere(cfg.Ecut, cfg.Alat)
	bands := pw.WavefunctionBands(s, cfg.NB)
	pot := pw.Potential(s.Grid)
	plan := fft.NewPlan3D(s.Grid.Nx, s.Grid.Ny, s.Grid.Nz)
	box := make([]complex128, s.Grid.Size())
	out := make([][]complex128, cfg.NB)
	for b, coeffs := range bands {
		s.FillBox(box, coeffs)
		plan.Transform(box, fft.Backward) // G -> r, unscaled
		for i := range box {
			box[i] *= complex(pot[i], 0)
		}
		plan.Transform(box, fft.Forward) // r -> G
		res := make([]complex128, s.NG())
		s.ExtractBox(res, box)
		for i := range res {
			res[i] *= complex(1/float64(s.Grid.Size()), 0)
		}
		out[b] = res
	}
	return out
}
