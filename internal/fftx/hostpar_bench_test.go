package fftx

import (
	"testing"

	"repro/internal/par"
)

// The multi-lane wall-clock pair behind BENCH_fft.json's hostpar speedup:
// the same ModeReal run with the host-parallel fan-out off and on. The
// simulated results are bit-identical (TestHostParEquivalence); only host
// wall clock moves, by roughly the core count on a multi-core machine.

func benchHostParConfig() Config {
	return Config{
		Ecut: 12, Alat: 10, NB: 8, Ranks: 2, NTG: 2,
		Engine: EngineTaskIter, Mode: ModeReal,
	}
}

func runHostParBench(b *testing.B, enabled bool) {
	b.Cleanup(func() {
		par.SetEnabled(true)
		par.SetWorkers(0)
	})
	par.SetEnabled(enabled)
	cfg := benchHostParConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunReal_HostParOff(b *testing.B) { runHostParBench(b, false) }
func BenchmarkRunReal_HostParOn(b *testing.B)  { runHostParBench(b, true) }
