package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// harness is the shared scaffolding of every engine: the kernel, the
// simulated machine and fabric, the virtual-time engine, the trace and the
// MPI world. The schedulers only add their spawn/task structure on top.
type harness struct {
	cfg  Config
	k    *kernel
	eng  *vtime.Engine
	tr   *trace.Trace
	sink trace.Sink
	w    *mpi.World
	// rts are the task runtimes built through newRankRuntime, tracked so
	// finish can sum their barrier-stall accounts into Result.TaskwaitSec.
	rts []*ompss.Runtime
}

// newHarness builds the run scaffolding for ranks MPI ranks of
// lanesPerRank hardware lanes each (grouped engines: R·T ranks × 1 or
// StepWorkers lanes; flat engines: R ranks × NTG lanes).
func newHarness(cfg Config, ranks, lanesPerRank int) *harness {
	k := newKernel(cfg)
	lanes := ranks * lanesPerRank
	machine, fabric := cfg.buildMachine(lanes)
	eng := vtime.NewEngine(machine)
	tr := trace.New(lanes, cfg.Params.Freq)
	tr.Meta["engine"] = cfg.Engine.String()
	sink := cfg.traceSink(tr)
	w := mpi.NewWorld(eng, fabric, sink, ranks, lanesPerRank)
	w.Strict = cfg.Strict
	return &harness{cfg: cfg, k: k, eng: eng, tr: tr, sink: sink, w: w}
}

// jobs is the FFT job count: one band per job, or one band pair in gamma
// mode.
func (h *harness) jobs() int {
	if h.cfg.Gamma {
		return h.cfg.NB / 2
	}
	return h.cfg.NB
}

// inputBands returns the initial band coefficients (gamma-aware).
func (h *harness) inputBands() [][]complex128 {
	if h.cfg.Gamma {
		return pw.WavefunctionBandsGamma(h.k.Sphere, h.cfg.NB)
	}
	return pw.WavefunctionBands(h.k.Sphere, h.cfg.NB)
}

// newRankRuntime builds the OmpSs runtime of one rank over workers lanes
// starting at rank·workers (the flat engines) — callers spawn the rank's
// main process right after, preserving the engine's lane ordering.
func (h *harness) newRankRuntime(firstLane, workers int) *ompss.Runtime {
	workerLanes := make([]int, workers)
	for t := 0; t < workers; t++ {
		workerLanes[t] = firstLane + t
	}
	rt := ompss.New(h.eng, h.sink, workerLanes)
	rt.Strict = h.cfg.Strict
	h.rts = append(h.rts, rt)
	return rt
}

// ctx builds a worker's MPI context for the given rank.
func (h *harness) ctx(wk *ompss.Worker, rank int) *mpi.Ctx {
	return &mpi.Ctx{W: h.w, Proc: wk.Proc, Rank: rank, Lane: wk.Lane}
}

// groupComms registers the two communicator layers of the grouped
// topology for rank (p,g): the "neighboring" pack communicator over the
// T groups of position p and the "alternating" group communicator over
// the R positions of group g. Must be called from the rank's process.
func (h *harness) groupComms(p, g int) (packComm, grpComm *mpi.Comm) {
	T := h.cfg.NTG
	packRanks := make([]int, T)
	for gg := 0; gg < T; gg++ {
		packRanks[gg] = p*T + gg
	}
	packComm = h.w.NewSubComm(fmt.Sprintf("pack%d", p), packRanks)
	grpRanks := make([]int, h.cfg.Ranks)
	for q := 0; q < h.cfg.Ranks; q++ {
		grpRanks[q] = q*T + g
	}
	grpComm = h.w.NewSubComm(fmt.Sprintf("grp%d", g), grpRanks)
	return packComm, grpComm
}

// finish runs the virtual-time engine and assembles the Result, gathering
// the transformed bands in ModeReal via collect.
func (h *harness) finish(collect func() [][]complex128) (*Result, error) {
	if err := h.eng.Run(); err != nil {
		return nil, fmt.Errorf("fftx: %s engine: %w", h.cfg.Engine, err)
	}
	res := &Result{
		Config:  h.cfg,
		Runtime: h.tr.Runtime(),
		Trace:   h.tr,
		Engine:  h.cfg.Engine,
		Sphere:  h.k.Sphere,
		Layout:  h.k.Layout,
	}
	for _, rt := range h.rts {
		res.TaskwaitSec += rt.TaskwaitSec
	}
	if h.cfg.Mode == ModeReal {
		res.Bands = collect()
	}
	return res, nil
}

// --- grouped topology (original, task-steps): P = R·T ranks, rank
// (p,g) = p·T+g holds chunk g of position p's local coefficients ---

type grouped struct {
	h *harness
	// chunkBounds[p] are the T+1 chunk boundaries of position p's locals.
	chunkBounds [][]int
	// in[rank][b] / out[rank][b] hold chunk g of band b's position-p
	// locals (ModeReal; nil in ModeCost).
	in, out [][][]complex128
}

// newGrouped computes the task-group chunking and, in ModeReal,
// distributes the input bands over the P ranks.
func (h *harness) newGrouped() *grouped {
	cfg := h.cfg
	R, T := cfg.Ranks, cfg.NTG
	gt := &grouped{h: h, chunkBounds: make([][]int, R)}
	for p := range gt.chunkBounds {
		gt.chunkBounds[p] = h.k.Layout.TaskChunks(p, T)
	}
	if cfg.Mode != ModeReal {
		return gt
	}
	P := R * T
	gt.in = make([][][]complex128, P)
	gt.out = make([][][]complex128, P)
	for r := 0; r < P; r++ {
		gt.in[r] = make([][]complex128, cfg.NB)
		gt.out[r] = make([][]complex128, cfg.NB)
	}
	for b, coeffs := range h.inputBands() {
		locals := h.k.Layout.Distribute(coeffs)
		for p := 0; p < R; p++ {
			bd := gt.chunkBounds[p]
			for g := 0; g < T; g++ {
				gt.in[p*T+g][b] = locals[p][bd[g]:bd[g+1]]
			}
		}
	}
	return gt
}

// pack redistributes iteration it's NTG bands' chunks among the groups
// over packComm, so group g assembles job it·T+g into the state: the
// task-group pack Alltoallv plus the "pack" reassembly phase. In gamma
// mode each chunk is the concatenation of the band pair's sub-chunks.
func (gt *grouped) pack(c computer, ctx *mpi.Ctx, packComm *mpi.Comm, rank, p, g, it int, s *graph.State) {
	k, cfg := gt.h.k, gt.h.cfg
	T := cfg.NTG
	i := it * T
	bd := gt.chunkBounds[p]
	if cfg.Gamma {
		if cfg.Mode == ModeReal {
			send := make([][]complex128, T)
			for gg := 0; gg < T; gg++ {
				pair := make([]complex128, 0, 2*len(gt.in[rank][2*(i+gg)]))
				pair = append(pair, gt.in[rank][2*(i+gg)]...)
				pair = append(pair, gt.in[rank][2*(i+gg)+1]...)
				send[gg] = pair
			}
			recv := mpi.Alltoallv(ctx, packComm, 2*it, send, mpi.BytesComplex128)
			k.phase(c, s.Job, p, "pack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), func() {
				s.Coeffs = make([]complex128, 0, k.Layout.NGOf[p])
				s.Coeffs2 = make([]complex128, 0, k.Layout.NGOf[p])
				for gg := 0; gg < T; gg++ {
					csz := bd[gg+1] - bd[gg]
					s.Coeffs = append(s.Coeffs, recv[gg][:csz]...)
					s.Coeffs2 = append(s.Coeffs2, recv[gg][csz:]...)
				}
			})
		} else {
			packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it, graph.GammaFactor*k.BytesPack(p))
			k.phase(c, s.Job, p, "pack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), nil)
		}
		return
	}
	if cfg.Mode == ModeReal {
		send := make([][]complex128, T)
		for gg := 0; gg < T; gg++ {
			send[gg] = gt.in[rank][i+gg]
		}
		recv := mpi.Alltoallv(ctx, packComm, 2*it, send, mpi.BytesComplex128)
		k.phase(c, s.Job, p, "pack", knl.ClassMem, k.InstrPack(p), func() {
			s.Coeffs = make([]complex128, 0, k.Layout.NGOf[p])
			for gg := 0; gg < T; gg++ {
				s.Coeffs = append(s.Coeffs, recv[gg]...)
			}
		})
	} else {
		packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it, k.BytesPack(p))
		k.phase(c, s.Job, p, "pack", knl.ClassMem, k.InstrPack(p), nil)
	}
}

// unpack returns each group's chunk of the transformed job to its home
// rank: the "unpack" split phase plus the mirrored pack Alltoallv.
func (gt *grouped) unpack(c computer, ctx *mpi.Ctx, packComm *mpi.Comm, rank, p, g, it int, s *graph.State) {
	k, cfg := gt.h.k, gt.h.cfg
	T := cfg.NTG
	i := it * T
	bd := gt.chunkBounds[p]
	if cfg.Gamma {
		if cfg.Mode == ModeReal {
			send := make([][]complex128, T)
			k.phase(c, s.Job, p, "unpack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), func() {
				for gg := 0; gg < T; gg++ {
					pair := make([]complex128, 0, 2*(bd[gg+1]-bd[gg]))
					pair = append(pair, s.Res[bd[gg]:bd[gg+1]]...)
					pair = append(pair, s.Res2[bd[gg]:bd[gg+1]]...)
					send[gg] = pair
				}
			})
			recv := mpi.Alltoallv(ctx, packComm, 2*it+1, send, mpi.BytesComplex128)
			csz := bd[g+1] - bd[g]
			for gg := 0; gg < T; gg++ {
				gt.out[rank][2*(i+gg)] = recv[gg][:csz]
				gt.out[rank][2*(i+gg)+1] = recv[gg][csz:]
			}
		} else {
			k.phase(c, s.Job, p, "unpack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), nil)
			packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it+1, graph.GammaFactor*k.BytesPack(p))
		}
		return
	}
	if cfg.Mode == ModeReal {
		send := make([][]complex128, T)
		k.phase(c, s.Job, p, "unpack", knl.ClassMem, k.InstrPack(p), func() {
			for gg := 0; gg < T; gg++ {
				send[gg] = s.Res[bd[gg]:bd[gg+1]]
			}
		})
		recv := mpi.Alltoallv(ctx, packComm, 2*it+1, send, mpi.BytesComplex128)
		for gg := 0; gg < T; gg++ {
			gt.out[rank][i+gg] = recv[gg]
		}
	} else {
		k.phase(c, s.Job, p, "unpack", knl.ClassMem, k.InstrPack(p), nil)
		packComm.CollectiveCost(ctx, mpi.OpAlltoallv, 2*it+1, k.BytesPack(p))
	}
}

// collect concatenates each position's group chunks and gathers the full
// bands.
func (gt *grouped) collect() [][]complex128 {
	cfg, k := gt.h.cfg, gt.h.k
	R, T := cfg.Ranks, cfg.NTG
	bands := make([][]complex128, cfg.NB)
	for b := 0; b < cfg.NB; b++ {
		locals := make([][]complex128, R)
		for p := 0; p < R; p++ {
			loc := make([]complex128, 0, k.Layout.NGOf[p])
			for g := 0; g < T; g++ {
				loc = append(loc, gt.out[p*T+g][b]...)
			}
			locals[p] = loc
		}
		bands[b] = k.Layout.Collect(locals)
	}
	return bands
}

// --- flat topology (task-iter, task-combined): R ranks, rank p holds
// every band's full position-p local coefficients ---

type flat struct {
	h *harness
	// in[p][b] / out[p][b] hold band b's full position-p locals
	// (ModeReal; nil in ModeCost).
	in, out [][][]complex128
}

// newFlat distributes the input bands over the R ranks in ModeReal.
func (h *harness) newFlat() *flat {
	cfg := h.cfg
	ft := &flat{h: h}
	if cfg.Mode != ModeReal {
		return ft
	}
	R := cfg.Ranks
	ft.in = make([][][]complex128, R)
	ft.out = make([][][]complex128, R)
	for p := 0; p < R; p++ {
		ft.in[p] = make([][]complex128, cfg.NB)
		ft.out[p] = make([][]complex128, cfg.NB)
	}
	for b, coeffs := range h.inputBands() {
		locals := h.k.Layout.Distribute(coeffs)
		for p := 0; p < R; p++ {
			ft.in[p][b] = locals[p]
		}
	}
	return ft
}

// pack copies job b's local coefficients into the state — the flat
// topology's task-group pack degenerates to a local copy.
func (ft *flat) pack(c computer, p, b int, s *graph.State) {
	k, cfg := ft.h.k, ft.h.cfg
	if cfg.Gamma {
		k.phase(c, b, p, "pack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), func() {
			s.Coeffs = append([]complex128(nil), ft.in[p][2*b]...)
			s.Coeffs2 = append([]complex128(nil), ft.in[p][2*b+1]...)
		})
		return
	}
	k.phase(c, b, p, "pack", knl.ClassMem, k.InstrPack(p), func() {
		s.Coeffs = append([]complex128(nil), ft.in[p][b]...)
	})
}

// unpack stores job b's transformed coefficients.
func (ft *flat) unpack(c computer, p, b int, s *graph.State) {
	k, cfg := ft.h.k, ft.h.cfg
	if cfg.Gamma {
		k.phase(c, b, p, "unpack", knl.ClassMem, graph.GammaFactor*k.InstrPack(p), func() {
			ft.out[p][2*b] = s.Res
			ft.out[p][2*b+1] = s.Res2
		})
		return
	}
	k.phase(c, b, p, "unpack", knl.ClassMem, k.InstrPack(p), func() {
		ft.out[p][b] = s.Res
	})
}

// collect gathers the full bands from the per-rank locals.
func (ft *flat) collect() [][]complex128 {
	cfg, k := ft.h.cfg, ft.h.k
	bands := make([][]complex128, cfg.NB)
	for b := 0; b < cfg.NB; b++ {
		locals := make([][]complex128, cfg.Ranks)
		for p := 0; p < cfg.Ranks; p++ {
			locals[p] = ft.out[p][b]
		}
		bands[b] = k.Layout.Collect(locals)
	}
	return bands
}
