package fftx

import (
	"fmt"
	"testing"
)

// The cross-engine equivalence matrix: one table spanning engines × modes ×
// {complex, gamma} numerics, every cell run through the shared harness and
// held to the full contract — ModeReal bands reproduce the serial reference,
// repeated runs are bit-identical (runtime and trace interval stream), the
// trace validates, and the trace metadata names the engine. The satellite
// point of the stage-graph refactor: all engines walk ONE pipeline
// definition, so equivalence is now a property of the schedulers alone.
func TestEngineMatrix(t *testing.T) {
	type cell struct {
		engine Engine
		mode   Mode
		gamma  bool
		ranks  int
		ntg    int
	}
	var cells []cell
	for _, engine := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined, EngineDataflow} {
		for _, mode := range []Mode{ModeReal, ModeCost} {
			for _, gamma := range []bool{false, true} {
				if gamma && engine != EngineOriginal && engine != EngineTaskIter && engine != EngineDataflow {
					continue // validate() rejects gamma on the other engines
				}
				cells = append(cells, cell{engine, mode, gamma, 2, 2})
				if !testing.Short() {
					cells = append(cells, cell{engine, mode, gamma, 3, 2})
				}
			}
		}
	}

	const nb = 8
	refComplex := Reference(Config{Ecut: testEcut, Alat: testAlat, NB: nb})
	refGamma := gammaReference(t, Config{Ecut: testEcut, Alat: testAlat, NB: nb})

	for _, tc := range cells {
		tc := tc
		name := fmt.Sprintf("%v/%dx%d", tc.engine, tc.ranks, tc.ntg)
		if tc.mode == ModeCost {
			name += "/cost"
		} else {
			name += "/real"
		}
		if tc.gamma {
			name += "/gamma"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Ecut: testEcut, Alat: testAlat, NB: nb,
				Ranks: tc.ranks, NTG: tc.ntg,
				Engine: tc.engine, Mode: tc.mode, Gamma: tc.gamma,
				Strict: true,
			}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Determinism: bit-identical runtime and interval stream.
			if a.Runtime != b.Runtime {
				t.Errorf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
			}
			if len(a.Trace.Intervals) != len(b.Trace.Intervals) {
				t.Fatalf("interval counts differ: %d vs %d", len(a.Trace.Intervals), len(b.Trace.Intervals))
			}
			for i := range a.Trace.Intervals {
				if a.Trace.Intervals[i] != b.Trace.Intervals[i] {
					t.Fatalf("trace diverges at interval %d", i)
				}
			}

			// The trace is well-formed and labeled with the engine.
			if errs := a.Trace.Validate(); len(errs) != 0 {
				t.Fatalf("trace validation: %v", errs)
			}
			if got := a.Trace.Meta["engine"]; got != tc.engine.String() {
				t.Errorf("trace engine label %q, want %q", got, tc.engine)
			}
			if a.Engine != tc.engine {
				t.Errorf("result engine %v, want %v", a.Engine, tc.engine)
			}

			// ModeReal cells reproduce the serial reference; ModeCost cells
			// carry no band data.
			if tc.mode == ModeReal {
				ref := refComplex
				if tc.gamma {
					ref = refGamma
				}
				if d := maxBandDiff(t, a.Bands, ref); d > 1e-10 {
					t.Errorf("max deviation from reference %g", d)
				}
			} else if a.Bands != nil {
				t.Error("cost mode produced band data")
			}
		})
	}
}
