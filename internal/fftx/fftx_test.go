package fftx

import (
	"math/cmplx"
	"testing"

	"repro/internal/trace"
)

const (
	testEcut = 6.0
	testAlat = 6.0
)

func testConfig(engine Engine, ranks, ntg, nb int) Config {
	return Config{
		Ecut: testEcut, Alat: testAlat,
		NB: nb, Ranks: ranks, NTG: ntg,
		Engine: engine, Mode: ModeReal,
	}
}

func maxBandDiff(t *testing.T, got, want [][]complex128) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("band count %d vs %d", len(got), len(want))
	}
	var m float64
	for b := range got {
		if len(got[b]) != len(want[b]) {
			t.Fatalf("band %d length %d vs %d", b, len(got[b]), len(want[b]))
		}
		for i := range got[b] {
			if d := cmplx.Abs(got[b][i] - want[b][i]); d > m {
				m = d
			}
		}
	}
	return m
}

// Every engine, across a matrix of rank/task-group configurations, must
// reproduce the serial reference exactly (to rounding error).
func TestEnginesMatchSerialReference(t *testing.T) {
	ref := Reference(Config{Ecut: testEcut, Alat: testAlat, NB: 8})
	cases := []struct {
		engine Engine
		ranks  int
		ntg    int
	}{
		{EngineOriginal, 1, 1},
		{EngineOriginal, 1, 4},
		{EngineOriginal, 2, 2},
		{EngineOriginal, 3, 2},
		{EngineOriginal, 2, 4},
		{EngineTaskIter, 1, 1},
		{EngineTaskIter, 1, 4},
		{EngineTaskIter, 2, 2},
		{EngineTaskIter, 3, 2},
		{EngineTaskIter, 2, 4},
		{EngineTaskSteps, 1, 2},
		{EngineTaskSteps, 2, 2},
		{EngineTaskSteps, 2, 4},
		{EngineTaskSteps, 3, 2},
	}
	for _, tc := range cases {
		cfg := testConfig(tc.engine, tc.ranks, tc.ntg, 8)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v %dx%d: %v", tc.engine, tc.ranks, tc.ntg, err)
		}
		if d := maxBandDiff(t, res.Bands, ref); d > 1e-10 {
			t.Errorf("%v %dx%d: max deviation from reference %g", tc.engine, tc.ranks, tc.ntg, d)
		}
	}
}

// All three engines must agree bit-for-bit on phases being deterministic:
// running twice gives identical traces and runtimes.
func TestRunDeterministic(t *testing.T) {
	for _, engine := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter} {
		cfg := testConfig(engine, 2, 2, 4)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Runtime != b.Runtime {
			t.Errorf("%v: runtimes differ: %v vs %v", engine, a.Runtime, b.Runtime)
		}
		if len(a.Trace.Intervals) != len(b.Trace.Intervals) {
			t.Errorf("%v: interval counts differ", engine)
			continue
		}
		for i := range a.Trace.Intervals {
			if a.Trace.Intervals[i] != b.Trace.Intervals[i] {
				t.Errorf("%v: trace diverges at interval %d", engine, i)
				break
			}
		}
	}
}

// Cost mode must run without any band data and produce a non-trivial trace
// with the same phase structure as real mode.
func TestCostModeMatchesRealModePhases(t *testing.T) {
	for _, engine := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter} {
		cfgReal := testConfig(engine, 2, 2, 4)
		cfgCost := cfgReal
		cfgCost.Mode = ModeCost
		real, err := Run(cfgReal)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Run(cfgCost)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Bands != nil {
			t.Errorf("%v: cost mode returned band data", engine)
		}
		if cost.Runtime <= 0 {
			t.Errorf("%v: cost mode runtime %v", engine, cost.Runtime)
		}
		// Identical modeled time: cost mode charges the same instruction
		// counts and communication volumes.
		rel := (cost.Runtime - real.Runtime) / real.Runtime
		if rel > 0.02 || rel < -0.02 {
			t.Errorf("%v: cost runtime %v deviates %.1f%% from real %v",
				engine, cost.Runtime, 100*rel, real.Runtime)
		}
		rp := real.Trace.Phases()
		cp := cost.Trace.Phases()
		if len(rp) != len(cp) {
			t.Errorf("%v: phases differ: %v vs %v", engine, rp, cp)
		}
	}
}

func TestInstructionCountsEngineInvariant(t *testing.T) {
	// The same physical work is done regardless of engine; total modeled
	// instructions must agree within the fixed-overhead term.
	base := testConfig(EngineOriginal, 2, 2, 4)
	orig, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := Run(testConfig(EngineTaskIter, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	oi, ii := orig.Trace.TotalInstr(), iter.Trace.TotalInstr()
	rel := (oi - ii) / oi
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.10 {
		t.Fatalf("instruction totals differ %.1f%%: original %g, task-iter %g", 100*rel, oi, ii)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Config{
		{Ecut: 0, Alat: 6, NB: 4, Ranks: 1, NTG: 1},
		{Ecut: 6, Alat: 6, NB: 5, Ranks: 1, NTG: 2},   // NB not divisible
		{Ecut: 6, Alat: 6, NB: 4, Ranks: 200, NTG: 4}, // too many lanes
		{Ecut: 6, Alat: 6, NB: 4, Ranks: 0, NTG: 1},   // no ranks
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestTraceHasAllKinds(t *testing.T) {
	res, err := Run(testConfig(EngineOriginal, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.TotalComputeTime() <= 0 {
		t.Fatal("no compute recorded")
	}
	var sync, xfer float64
	for _, v := range tr.TimeByKind(trace.KindMPISync) {
		sync += v
	}
	for _, v := range tr.TimeByKind(trace.KindMPITransfer) {
		xfer += v
	}
	if xfer <= 0 {
		t.Fatal("no MPI transfer recorded")
	}
	_ = sync // sync may be ~0 on perfectly balanced tiny runs
}

// The Figure 3 structure: the trace of the original engine must contain the
// pipeline phases, and the main XY phase must have the highest IPC among
// compute phases while prep has the lowest.
func TestPhaseIPCOrdering(t *testing.T) {
	res, err := Run(testConfig(EngineOriginal, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	prep := tr.PhaseAvgIPC("prep")
	fftz := tr.PhaseAvgIPC("fft-z")
	fftxy := tr.PhaseAvgIPC("fft-xy")
	if !(prep < fftz && fftz < fftxy) {
		t.Fatalf("phase IPC ordering violated: prep %.3f, fft-z %.3f, fft-xy %.3f", prep, fftz, fftxy)
	}
}

// NTG extremes (Section II): with NTG=1 all communication cost sits in the
// scatter; with NTG=ranks the scatter is free and the pack dominates.
func TestTaskGroupExtremes(t *testing.T) {
	// NTG = 1: pack communicators have a single member, so the pack
	// Alltoallv must charge no transfer on the pack comm.
	res1, err := Run(Config{Ecut: testEcut, Alat: testAlat, NB: 4, Ranks: 4, NTG: 1,
		Engine: EngineOriginal, Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	var packXfer, grpXfer float64
	for _, iv := range res1.Trace.Intervals {
		if iv.Kind == trace.KindMPITransfer {
			if len(iv.Comm) >= 4 && iv.Comm[:4] == "pack" {
				packXfer += iv.Duration()
			}
			if len(iv.Comm) >= 3 && iv.Comm[:3] == "grp" {
				grpXfer += iv.Duration()
			}
		}
	}
	if packXfer > 0 {
		t.Fatalf("NTG=1: pack transfer should be zero, got %v", packXfer)
	}
	if grpXfer <= 0 {
		t.Fatal("NTG=1: expected scatter transfer")
	}

	// NTG = total: groups of one rank, scatter free, pack carries it all.
	res2, err := Run(Config{Ecut: testEcut, Alat: testAlat, NB: 4, Ranks: 1, NTG: 4,
		Engine: EngineOriginal, Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	packXfer, grpXfer = 0, 0
	for _, iv := range res2.Trace.Intervals {
		if iv.Kind == trace.KindMPITransfer {
			if len(iv.Comm) >= 4 && iv.Comm[:4] == "pack" {
				packXfer += iv.Duration()
			}
			if len(iv.Comm) >= 3 && iv.Comm[:3] == "grp" {
				grpXfer += iv.Duration()
			}
		}
	}
	if grpXfer > 0 {
		t.Fatalf("NTG=ranks: scatter transfer should be zero, got %v", grpXfer)
	}
	if packXfer <= 0 {
		t.Fatal("NTG=ranks: expected pack transfer")
	}
}

func TestLanesAccounting(t *testing.T) {
	cfg := testConfig(EngineOriginal, 2, 4, 8)
	if cfg.Lanes() != 8 {
		t.Fatalf("original lanes = %d, want 8", cfg.Lanes())
	}
	cfg.Engine = EngineTaskIter
	if cfg.Lanes() != 8 {
		t.Fatalf("task-iter lanes = %d, want 8", cfg.Lanes())
	}
	cfg.Engine = EngineTaskSteps
	cfg.StepWorkers = 2
	if cfg.Lanes() != 16 {
		t.Fatalf("task-steps lanes = %d, want 16", cfg.Lanes())
	}
}
