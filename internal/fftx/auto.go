package fftx

import (
	"fmt"
	"sync"

	"repro/internal/knl"
)

// EngineAuto: the cost-model-driven engine selector. The paper's central
// observation is that no single scheduling wins everywhere — the static
// task-group baseline, the per-step tasks and the per-iteration tasks trade
// communication overlap against phase de-synchronization differently as the
// (grid, ranks, NTG, threads) point moves. The selector makes that trade
// explicit: it replays the configured workload shape through every
// applicable engine in ModeCost (no band data, just the calibrated knl
// instruction and communication model) and picks the one with the smallest
// simulated runtime.

// autoKey identifies one workload shape for the selection cache. It covers
// exactly the inputs the ModeCost probes depend on: the problem geometry,
// the process/thread layout, the scheduling knobs and the machine model
// (by value — knl.Params and knl.NetParams are plain scalar structs).
type autoKey struct {
	ecut, alat    float64
	nb            int
	ranks, ntg    int
	stepWorkers   int
	nestedLoops   bool
	nestedGrainXY int
	nestedGrainZ  int
	gamma         bool
	nodes         int
	params        knl.Params
	net           knl.NetParams
}

var autoCache = struct {
	sync.Mutex
	m map[autoKey]Engine
}{m: map[autoKey]Engine{}}

// autoCandidates are probed in this order; ties in simulated runtime keep
// the earliest candidate, so selection is deterministic.
var autoCandidates = []Engine{
	EngineOriginal,
	EngineTaskSteps,
	EngineTaskIter,
	EngineTaskCombined,
	EngineDataflow,
}

// SelectEngine resolves EngineAuto for the given configuration: it runs
// every applicable concrete engine in ModeCost on the same workload shape
// and returns the one with the smallest simulated runtime. Candidates the
// configuration cannot run (gamma mode restrictions, lane budgets) are
// skipped; ties pick the earliest engine in declaration order. Results are
// cached per workload shape, so repeated runs (the miniapp's iterations, a
// server's request stream) pay for the probes once.
func SelectEngine(cfg Config) (Engine, error) {
	return selectEngine(cfg.withDefaults())
}

// selectEngine is SelectEngine for a config that already has its defaults
// applied (the form Run holds when it resolves EngineAuto).
func selectEngine(cfg Config) (Engine, error) {
	key := autoKey{
		ecut: cfg.Ecut, alat: cfg.Alat,
		nb:    cfg.NB,
		ranks: cfg.Ranks, ntg: cfg.NTG,
		stepWorkers:   cfg.StepWorkers,
		nestedLoops:   cfg.NestedLoops,
		nestedGrainXY: cfg.NestedGrainXY,
		nestedGrainZ:  cfg.NestedGrainZ,
		gamma:         cfg.Gamma,
		nodes:         cfg.NodesCount,
		params:        *cfg.Params,
		net:           cfg.Net,
	}
	autoCache.Lock()
	cached, ok := autoCache.m[key]
	autoCache.Unlock()
	if ok {
		return cached, nil
	}

	best, err := probeEngines(cfg)
	if err != nil {
		return 0, err
	}
	autoCache.Lock()
	autoCache.m[key] = best
	autoCache.Unlock()
	return best, nil
}

// probeEngines runs the ModeCost probes and returns the fastest applicable
// engine. The probes use a fixed seed and no streaming sink, so the choice
// depends only on the workload shape, never on the caller's run noise.
func probeEngines(cfg Config) (Engine, error) {
	probe := cfg
	probe.Mode = ModeCost
	probe.Seed = 0
	probe.Sink = nil
	probe.Strict = false
	probe.UnitPotential = false

	var (
		best     Engine
		bestTime float64
		found    bool
		firstErr error
	)
	for _, e := range autoCandidates {
		pc := probe
		pc.Engine = e
		if err := pc.validate(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		res, err := runEngine(pc)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !found || res.Runtime < bestTime {
			best, bestTime, found = e, res.Runtime, true
		}
	}
	if !found {
		if firstErr == nil {
			firstErr = fmt.Errorf("fftx: auto selection found no applicable engine")
		}
		return 0, fmt.Errorf("fftx: auto engine selection: %w", firstErr)
	}
	return best, nil
}

// ParseEngine maps an engine name (the String form: "original",
// "task-steps", "task-iter", "task-combined", "dataflow", "auto") to the
// Engine value.
func ParseEngine(name string) (Engine, error) {
	for e := EngineOriginal; e <= EngineAuto; e++ {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("fftx: unknown engine %q", name)
}
