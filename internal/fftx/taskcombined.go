package fftx

import (
	"fmt"

	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runTaskCombined executes the paper's future-work direction (Section VI:
// "combine the approaches to overlap communication and computation with
// asynchronously scheduled tasks", referencing the hybrid MPI/SMPSs
// communication-thread technique): the per-band task structure of the
// per-iteration version, but with the two scatter collectives posted
// asynchronously from communication threads. A band's pipeline becomes
// three compute tasks (forward Z part, XY part, backward Z part) chained
// through dependency promises that the communication threads fulfill, so a
// worker thread never blocks inside MPI — while band b's scatter is in
// flight, the worker immediately picks up another band's compute task.
func runTaskCombined(cfg Config) (*Result, error) {
	k := newKernel(cfg)
	R, T := cfg.Ranks, cfg.NTG
	lanes := R * T
	machine, fabric := cfg.buildMachine(lanes)
	eng := vtime.NewEngine(machine)
	tr := trace.New(lanes, cfg.Params.Freq)
	sink := cfg.traceSink(tr)
	w := mpi.NewWorld(eng, fabric, sink, R, T)
	w.Strict = cfg.Strict

	var in, out [][][]complex128
	if cfg.Mode == ModeReal {
		in = make([][][]complex128, R)
		out = make([][][]complex128, R)
		for p := 0; p < R; p++ {
			in[p] = make([][]complex128, cfg.NB)
			out[p] = make([][]complex128, cfg.NB)
		}
		bands := pw.WavefunctionBands(k.sphere, cfg.NB)
		for b, coeffs := range bands {
			locals := k.layout.Distribute(coeffs)
			for p := 0; p < R; p++ {
				in[p][b] = locals[p]
			}
		}
	}

	type fwdKey struct{ b int }
	type bwdKey struct{ b int }
	type bandState struct {
		recvZ  [][]complex128
		recvXY [][]complex128
	}

	worldComm := w.CommWorld()
	for p := 0; p < R; p++ {
		p := p
		workerLanes := make([]int, T)
		for t := 0; t < T; t++ {
			workerLanes[t] = p*T + t
		}
		rt := ompss.New(eng, sink, workerLanes)
		rt.Strict = cfg.Strict
		eng.Spawn(fmt.Sprintf("rank%d.main", p), func(mp *vtime.Proc) {
			for b := 0; b < cfg.NB; b++ {
				b := b
				st := &bandState{}
				prFwd := rt.NewPromise(fmt.Sprintf("scat-fwd%d", b), fwdKey{b})
				prBwd := rt.NewPromise(fmt.Sprintf("scat-bwd%d", b), bwdKey{b})

				rt.Submit(mp, fmt.Sprintf("fwd%d", b), nil, 0, func(wk *ompss.Worker) {
					ctx := &mpi.Ctx{W: w, Proc: wk.Proc, Rank: p, Lane: wk.Lane}
					var coeffs []complex128
					k.phase(wk, b, p, "pack", knl.ClassMem, k.instrPack(p), func() {
						coeffs = append([]complex128(nil), in[p][b]...)
					})
					sendZ := k.zForward(wk, b, p, coeffs)
					if cfg.Mode == ModeReal {
						mpi.IAlltoallv(ctx, worldComm, 2*b, sendZ, mpi.BytesComplex128,
							func(hp *vtime.Proc, recv [][]complex128) {
								st.recvZ = recv
								prFwd.Fulfill(hp)
							})
					} else {
						mpi.ICollectiveCost(ctx, worldComm, mpi.OpAlltoallv, 2*b, k.bytesScatter(p),
							func(hp *vtime.Proc) { prFwd.Fulfill(hp) })
					}
				})
				rt.Submit(mp, fmt.Sprintf("xy%d", b), []ompss.Dep{ompss.In(fwdKey{b})}, 0, func(wk *ompss.Worker) {
					ctx := &mpi.Ctx{W: w, Proc: wk.Proc, Rank: p, Lane: wk.Lane}
					sendXY := k.xyPart(wk, b, p, st.recvZ)
					if cfg.Mode == ModeReal {
						mpi.IAlltoallv(ctx, worldComm, 2*b+1, sendXY, mpi.BytesComplex128,
							func(hp *vtime.Proc, recv [][]complex128) {
								st.recvXY = recv
								prBwd.Fulfill(hp)
							})
					} else {
						mpi.ICollectiveCost(ctx, worldComm, mpi.OpAlltoallv, 2*b+1, k.bytesScatter(p),
							func(hp *vtime.Proc) { prBwd.Fulfill(hp) })
					}
				})
				rt.Submit(mp, fmt.Sprintf("bwd%d", b), []ompss.Dep{ompss.In(bwdKey{b})}, 0, func(wk *ompss.Worker) {
					res := k.zBackward(wk, b, p, st.recvXY)
					k.phase(wk, b, p, "unpack", knl.ClassMem, k.instrPack(p), func() {
						out[p][b] = res
					})
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("fftx: task-combined engine: %w", err)
	}

	res := &Result{Config: cfg, Runtime: tr.Runtime(), Trace: tr, Sphere: k.sphere, Layout: k.layout}
	if cfg.Mode == ModeReal {
		res.Bands = make([][]complex128, cfg.NB)
		for b := 0; b < cfg.NB; b++ {
			locals := make([][]complex128, R)
			for p := 0; p < R; p++ {
				locals[p] = out[p][b]
			}
			res.Bands[b] = k.layout.Collect(locals)
		}
	}
	return res, nil
}
