package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// runTaskCombined schedules the stage graph as the paper's future-work
// direction (Section VI: "combine the approaches to overlap communication
// and computation with asynchronously scheduled tasks", referencing the
// hybrid MPI/SMPSs communication-thread technique): the per-band task
// structure of the per-iteration version, but with the two scatter edges
// posted asynchronously from communication threads. The graph's scatter
// stages split the pipeline into three compute segments (forward Z part,
// XY part, backward Z part) chained through dependency promises that the
// communication threads fulfill, so a worker thread never blocks inside
// MPI — while band b's scatter is in flight, the worker immediately picks
// up another band's compute task.
func runTaskCombined(cfg Config) (*Result, error) {
	R, T := cfg.Ranks, cfg.NTG
	h := newHarness(cfg, R, T)
	k := h.k
	ft := h.newFlat()
	segs, scatters := k.pipe.Segments()

	type fwdKey struct{ b int }
	type bwdKey struct{ b int }

	worldComm := h.w.CommWorld()
	for p := 0; p < R; p++ {
		p := p
		rt := h.newRankRuntime(p*T, T)
		h.eng.Spawn(fmt.Sprintf("rank%d.main", p), func(mp *vtime.Proc) {
			for b := 0; b < cfg.NB; b++ {
				b := b
				s := &graph.State{Job: b}
				prFwd := rt.NewPromise(fmt.Sprintf("scat-fwd%d", b), fwdKey{b})
				prBwd := rt.NewPromise(fmt.Sprintf("scat-bwd%d", b), bwdKey{b})

				rt.Submit(mp, fmt.Sprintf("fwd%d", b), nil, 0, func(wk *ompss.Worker) {
					ctx := h.ctx(wk, p)
					ft.pack(wk, p, b, s)
					for _, st := range segs[0] {
						k.runStage(wk, st, s, p)
					}
					k.runScatterAsync(ctx, worldComm, b, scatters[0], s, p, prFwd.Fulfill)
				})
				rt.Submit(mp, fmt.Sprintf("xy%d", b), []ompss.Dep{ompss.In(fwdKey{b})}, 0, func(wk *ompss.Worker) {
					ctx := h.ctx(wk, p)
					for _, st := range segs[1] {
						k.runStage(wk, st, s, p)
					}
					k.runScatterAsync(ctx, worldComm, b, scatters[1], s, p, prBwd.Fulfill)
				})
				rt.Submit(mp, fmt.Sprintf("bwd%d", b), []ompss.Dep{ompss.In(bwdKey{b})}, 0, func(wk *ompss.Worker) {
					for _, st := range segs[2] {
						k.runStage(wk, st, s, p)
					}
					ft.unpack(wk, p, b, s)
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	return h.finish(ft.collect)
}
