package fftx

import (
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/knl"
	"repro/internal/par"
)

// Gamma-point mode (Quantum ESPRESSO's gamma_only): wavefunctions are real
// in real space, so only the Hermitian half of the G-sphere is stored and
// TWO bands are transformed per FFT by packing them as psi = c1 + i·c2.
// The real-space field then carries band 1 in its real part and band 2 in
// its imaginary part; after applying the (real) potential, the two bands
// separate again through the Hermitian split
//
//	c1'(G) = (F(+G) + conj(F(-G))) / 2
//	c2'(G) = (F(+G) - conj(F(-G))) / (2i).
//
// In stick space every half-stick (i,j) expands to two columns: the +column
// holds c1+i·c2 and the -column (at grid cell (-i,-j)) holds
// conj(c1 - i·c2), which is the packed field's value at -G. The (0,0)
// stick is self-conjugate: its negative-K half lands in the same column.
// All pipeline stages below mirror the standard ones with two columns per
// stick; the FFT count per pair of bands equals the standard count for one
// band — the factor-two saving gamma_only exists for.

// gammaCols returns the stick-buffer column count of position p.
func (k *kernel) gammaCols(p int) int { return 2 * k.layout.NSticksOf(p) }

// gammaMinusCell lazily builds the plane cell of each group stick's
// -column (-1 for the self-conjugate zero stick).
func (k *kernel) gammaMinusCellTable() []int {
	if k.gammaMinus != nil {
		return k.gammaMinus
	}
	k.gammaMinus = make([]int, len(k.groupSticks))
	for gs, si := range k.groupSticks {
		st := k.sphere.Stick[si]
		if st.IsZeroStick() {
			k.gammaMinus[gs] = -1
			continue
		}
		k.gammaMinus[gs] = k.sphere.MinusPlaneIndex(st)
	}
	return k.gammaMinus
}

// prepSticksGamma packs a band pair into the two-columns-per-stick buffer.
func (k *kernel) prepSticksGamma(p int, c1, c2 []complex128) []complex128 {
	nz := k.sphere.Grid.Nz
	buf := make([]complex128, k.gammaCols(p)*nz)
	fill := k.stickFill[p]
	sticksOf := k.layout.SticksOf[p]
	// Distinct coefficients write distinct cells: the stored half-sphere
	// keeps one of each ±kz pair, so the +cell set and the mirrored -cell
	// set never overlap (the self-conjugate kz=0 case is guarded below).
	par.ParallelFor(len(fill), grainIndex, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			tgt := fill[i]
			s, iz := tgt/nz, tgt%nz
			mz := (nz - iz) % nz
			vp := c1[i] + complex(0, 1)*c2[i]
			vm := cmplx.Conj(c1[i] - complex(0, 1)*c2[i])
			if k.sphere.Stick[sticksOf[s]].IsZeroStick() {
				buf[2*s*nz+iz] = vp
				if iz != 0 {
					buf[2*s*nz+mz] = vm
				}
				continue
			}
			buf[2*s*nz+iz] = vp
			buf[(2*s+1)*nz+mz] = vm
		}
	})
	return buf
}

// extractCoeffsGamma separates the band pair back out of the stick buffer,
// applying the backward 1/N normalization.
func (k *kernel) extractCoeffsGamma(p int, buf []complex128) (c1, c2 []complex128) {
	nz := k.sphere.Grid.Nz
	fill := k.stickFill[p]
	sticksOf := k.layout.SticksOf[p]
	c1 = make([]complex128, len(fill))
	c2 = make([]complex128, len(fill))
	scale := complex(1/float64(k.sphere.Grid.Size()), 0)
	par.ParallelFor(len(fill), grainIndex, func(ilo, ihi int) {
		for i := ilo; i < ihi; i++ {
			tgt := fill[i]
			s, iz := tgt/nz, tgt%nz
			mz := (nz - iz) % nz
			vP := buf[2*s*nz+iz]
			var vM complex128
			if k.sphere.Stick[sticksOf[s]].IsZeroStick() {
				vM = buf[2*s*nz+mz]
			} else {
				vM = buf[(2*s+1)*nz+mz]
			}
			c1[i] = (vP + cmplx.Conj(vM)) * 0.5 * scale
			c2[i] = (vP - cmplx.Conj(vM)) * complex(0, -0.5) * scale
		}
	})
	return c1, c2
}

// fftZGamma transforms all columns (two per stick) along z.
func (k *kernel) fftZGamma(p int, buf []complex128, sign fft.Sign) {
	transformManyPar(k.planZ, buf, k.gammaCols(p), sign)
}

// scatterSplitGamma builds the forward-scatter send chunks over the doubled
// column set.
func (k *kernel) scatterSplitGamma(p int, buf []complex128) [][]complex128 {
	return k.splitCols(p, buf, k.gammaCols(p))
}

// sticksFromScatterGamma reassembles the doubled column set.
func (k *kernel) sticksFromScatterGamma(p int, recv [][]complex128) []complex128 {
	return k.joinCols(p, recv, k.gammaCols(p))
}

// planesFromScatterGamma assembles the planes, placing each stick's +column
// at its cell and its -column at the Hermitian partner cell.
func (k *kernel) planesFromScatterGamma(p int, recv [][]complex128) []complex128 {
	l := k.layout
	g := k.sphere.Grid
	minus := k.gammaMinusCellTable()
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	planes := make([]complex128, npl*nxy)
	// Each (q,t) writes its own +cell and -cell: the -cells are the cells
	// of the unstored Hermitian partner sticks, so the write sets of
	// distinct source positions stay disjoint and q can fan out.
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			for t := 0; t < nsq; t++ {
				gs := k.groupStickOffset[q] + t
				cellP := k.stickPlaneIdx[gs]
				cellM := minus[gs]
				for z := 0; z < npl; z++ {
					planes[z*nxy+cellP] = recv[q][(2*t)*npl+z]
					if cellM >= 0 {
						planes[z*nxy+cellM] = recv[q][(2*t+1)*npl+z]
					}
				}
			}
		}
	})
	return planes
}

// planesToScatterGamma is the inverse of planesFromScatterGamma.
func (k *kernel) planesToScatterGamma(p int, planes []complex128) [][]complex128 {
	l := k.layout
	g := k.sphere.Grid
	minus := k.gammaMinusCellTable()
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			chunk := make([]complex128, 2*nsq*npl)
			for t := 0; t < nsq; t++ {
				gs := k.groupStickOffset[q] + t
				cellP := k.stickPlaneIdx[gs]
				cellM := minus[gs]
				for z := 0; z < npl; z++ {
					chunk[(2*t)*npl+z] = planes[z*nxy+cellP]
					if cellM >= 0 {
						chunk[(2*t+1)*npl+z] = planes[z*nxy+cellM]
					}
				}
			}
			out[q] = chunk
		}
	})
	return out
}

// --- pipeline fragments (gamma) ---

// gammaFactor scales the column-proportional instruction counts.
const gammaFactor = 2

func (k *kernel) zForwardGamma(c computer, job, p int, c1, c2 []complex128) [][]complex128 {
	var buf []complex128
	k.phase(c, job, p, "prep", knl.ClassMem, gammaFactor*k.instrPrep(p), func() {
		buf = k.prepSticksGamma(p, c1, c2)
	})
	k.phase(c, job, p, "fft-z", knl.ClassStream, gammaFactor*k.instrFFTZ(p), func() {
		k.fftZGamma(p, buf, fft.Backward)
	})
	var send [][]complex128
	k.phase(c, job, p, "z-split", knl.ClassMem, gammaFactor*k.instrZSplit(p), func() {
		send = k.scatterSplitGamma(p, buf)
	})
	return send
}

func (k *kernel) xyPartGamma(c computer, job, p int, recv [][]complex128) [][]complex128 {
	var planes []complex128
	k.phase(c, job, p, "xy-fill", knl.ClassMem, gammaFactor*k.instrXYFill(p), func() {
		planes = k.planesFromScatterGamma(p, recv)
	})
	k.xyFFT(c, job, p, planes, fft.Backward)
	k.vofr(c, job, p, planes)
	k.xyFFT(c, job, p, planes, fft.Forward)
	var send [][]complex128
	k.phase(c, job, p, "xy-extract", knl.ClassMem, gammaFactor*k.instrXYExtract(p), func() {
		send = k.planesToScatterGamma(p, planes)
	})
	return send
}

func (k *kernel) zBackwardGamma(c computer, job, p int, recv [][]complex128) (c1, c2 []complex128) {
	var buf []complex128
	k.phase(c, job, p, "z-fill", knl.ClassMem, gammaFactor*k.instrZFill(p), func() {
		buf = k.sticksFromScatterGamma(p, recv)
	})
	k.phase(c, job, p, "fft-z", knl.ClassStream, gammaFactor*k.instrFFTZ(p), func() {
		k.fftZGamma(p, buf, fft.Forward)
	})
	k.phase(c, job, p, "g-extract", knl.ClassMem, gammaFactor*k.instrUnpack(p), func() {
		c1, c2 = k.extractCoeffsGamma(p, buf)
	})
	return c1, c2
}

// bytesScatterGamma is the gamma scatter volume per rank per band pair.
func (k *kernel) bytesScatterGamma(p int) float64 {
	return gammaFactor * k.bytesScatter(p)
}
