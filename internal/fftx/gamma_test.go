package fftx

import (
	"math/cmplx"
	"testing"

	"repro/internal/fft"
	"repro/internal/pw"
)

// gammaReference applies the operator serially to the gamma-mode bands:
// expand each half-sphere band pair to the full sphere, run the full 3-D
// transform pipeline, reduce back.
func gammaReference(t *testing.T, cfg Config) [][]complex128 {
	t.Helper()
	half := pw.NewSphereGamma(cfg.Ecut, cfg.Alat)
	full := pw.NewSphere(cfg.Ecut, cfg.Alat)
	bands := pw.WavefunctionBandsGamma(half, cfg.NB)
	pot := pw.Potential(full.Grid)
	plan := fft.NewPlan3D(full.Grid.Nx, full.Grid.Ny, full.Grid.Nz)
	box := make([]complex128, full.Grid.Size())
	out := make([][]complex128, cfg.NB)
	for b, c := range bands {
		fullC := pw.ExpandGammaCoeffs(half, full, c)
		full.FillBox(box, fullC)
		plan.Transform(box, fft.Backward)
		for i := range box {
			box[i] *= complex(pot[i], 0)
		}
		plan.Transform(box, fft.Forward)
		res := make([]complex128, full.NG())
		full.ExtractBox(res, box)
		for i := range res {
			res[i] *= complex(1/float64(full.Grid.Size()), 0)
		}
		out[b] = pw.ReduceGammaCoeffs(half, full, res)
	}
	return out
}

func gammaConfig(engine Engine, ranks, ntg, nb int) Config {
	cfg := testConfig(engine, ranks, ntg, nb)
	cfg.Gamma = true
	return cfg
}

// Gamma-mode engines must reproduce the full-sphere serial reference: the
// half-sphere representation with band pairing is mathematically identical.
func TestGammaEnginesMatchReference(t *testing.T) {
	ref := gammaReference(t, Config{Ecut: testEcut, Alat: testAlat, NB: 8})
	cases := []Config{
		gammaConfig(EngineOriginal, 1, 1, 8),
		gammaConfig(EngineOriginal, 1, 4, 8),
		gammaConfig(EngineOriginal, 2, 2, 8),
		gammaConfig(EngineOriginal, 3, 2, 8),
		gammaConfig(EngineOriginal, 2, 4, 8),
		gammaConfig(EngineTaskIter, 1, 1, 8),
		gammaConfig(EngineTaskIter, 1, 4, 8),
		gammaConfig(EngineTaskIter, 2, 2, 8),
		gammaConfig(EngineTaskIter, 3, 2, 8),
		gammaConfig(EngineTaskIter, 2, 4, 8),
	}
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v %dx%d gamma: %v", cfg.Engine, cfg.Ranks, cfg.NTG, err)
		}
		if d := maxBandDiff(t, res.Bands, ref); d > 1e-10 {
			t.Errorf("%v %dx%d gamma: max deviation %g", cfg.Engine, cfg.Ranks, cfg.NTG, d)
		}
	}
}

// Gamma mode halves the FFT count, so the simulated runtime must drop
// substantially versus the standard mode at the same configuration (the
// sphere is half, so per-job compute matches a standard single band's).
func TestGammaHalvesRuntime(t *testing.T) {
	std := Config{Ecut: 20, Alat: 12, NB: 32, Ranks: 4, NTG: 4,
		Engine: EngineTaskIter, Mode: ModeCost}
	gam := std
	gam.Gamma = true
	rs, err := Run(std)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Run(gam)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rg.Runtime / rs.Runtime
	if ratio > 0.75 || ratio < 0.35 {
		t.Fatalf("gamma/standard runtime ratio %.3f, expected ~0.5", ratio)
	}
}

func TestGammaValidation(t *testing.T) {
	bad := []Config{
		// odd band count
		{Ecut: testEcut, Alat: testAlat, NB: 7, Ranks: 1, NTG: 1, Gamma: true, Engine: EngineOriginal},
		// unsupported engine
		{Ecut: testEcut, Alat: testAlat, NB: 8, Ranks: 1, NTG: 2, Gamma: true, Engine: EngineTaskCombined},
		// NB/2 not divisible by NTG
		{Ecut: testEcut, Alat: testAlat, NB: 8, Ranks: 1, NTG: 8, Gamma: true, Engine: EngineOriginal},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGammaDeterministic(t *testing.T) {
	cfg := gammaConfig(EngineTaskIter, 2, 2, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Fatalf("nondeterministic: %v vs %v", a.Runtime, b.Runtime)
	}
	for bd := range a.Bands {
		for i := range a.Bands[bd] {
			if a.Bands[bd][i] != b.Bands[bd][i] {
				t.Fatalf("band data differs at %d/%d", bd, i)
			}
		}
	}
}

// The gamma engines must agree with each other bit for bit.
func TestGammaEnginesAgree(t *testing.T) {
	a, err := Run(gammaConfig(EngineOriginal, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(gammaConfig(EngineTaskIter, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBandDiff(t, a.Bands, b.Bands); d > 1e-12 {
		t.Fatalf("engines disagree by %g", d)
	}
}

// Hermiticity invariant on the output: <psi_i|V|psi_j> must be Hermitian in
// the half-sphere inner product (2·Re(sum) - G=0 term).
func TestGammaOutputHermitian(t *testing.T) {
	cfg := gammaConfig(EngineTaskIter, 2, 2, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := pw.WavefunctionBandsGamma(res.Sphere, cfg.NB)
	dot := func(a, b []complex128) float64 {
		// gamma inner product: sum over half sphere of 2*Re(conj(a)*b),
		// minus the double-counted G=0 term.
		var s float64
		for i := range a {
			s += 2 * real(cmplx.Conj(a[i])*b[i])
		}
		// subtract the G=0 overcount (it is the first coefficient of the
		// (0,0) stick at K=0; find it)
		for i, g := range res.Sphere.G {
			if g.I == 0 && g.J == 0 && g.K == 0 {
				s -= real(cmplx.Conj(a[i]) * b[i])
				break
			}
		}
		return s
	}
	for i := 0; i < cfg.NB; i++ {
		for j := i; j < cfg.NB; j++ {
			mij := dot(in[i], res.Bands[j])
			mji := dot(in[j], res.Bands[i])
			if d := mij - mji; d > 1e-10 || d < -1e-10 {
				t.Fatalf("<%d|V|%d> asymmetry %g", i, j, d)
			}
		}
	}
}
