package fftx

import (
	"math/cmplx"
	"testing"

	"repro/internal/fft"
	"repro/internal/knl"
	"repro/internal/pw"
	"repro/internal/trace"
)

// The combined (async-communication) engine and the nested-taskloop step
// engine must also match the serial reference exactly.
func TestExtendedEnginesMatchReference(t *testing.T) {
	ref := Reference(Config{Ecut: testEcut, Alat: testAlat, NB: 8})
	cases := []Config{
		testConfig(EngineTaskCombined, 1, 1, 8),
		testConfig(EngineTaskCombined, 1, 4, 8),
		testConfig(EngineTaskCombined, 2, 2, 8),
		testConfig(EngineTaskCombined, 3, 2, 8),
		testConfig(EngineTaskCombined, 2, 4, 8),
		testConfig(EngineDataflow, 1, 1, 8),
		testConfig(EngineDataflow, 1, 4, 8),
		testConfig(EngineDataflow, 2, 2, 8),
		testConfig(EngineDataflow, 3, 2, 8),
		testConfig(EngineDataflow, 2, 4, 8),
	}
	for _, ranks := range []int{1, 2, 3} {
		cfg := testConfig(EngineTaskSteps, ranks, 2, 8)
		cfg.NestedLoops = true
		cfg.NestedGrainXY = 3 // force several nested tasks on the tiny grid
		cfg.NestedGrainZ = 4
		cases = append(cases, cfg)
	}
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v %dx%d: %v", cfg.Engine, cfg.Ranks, cfg.NTG, err)
		}
		if d := maxBandDiff(t, res.Bands, ref); d > 1e-10 {
			t.Errorf("%v %dx%d nested=%v: max deviation %g", cfg.Engine, cfg.Ranks, cfg.NTG, cfg.NestedLoops, d)
		}
	}
}

func TestCombinedEngineDeterministic(t *testing.T) {
	cfg := testConfig(EngineTaskCombined, 2, 2, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || len(a.Trace.Intervals) != len(b.Trace.Intervals) {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			a.Runtime, len(a.Trace.Intervals), b.Runtime, len(b.Trace.Intervals))
	}
}

// The combined engine hides communication behind computation: no MPI sync
// or transfer time may appear on any compute lane.
func TestCombinedEngineHidesCommFromLanes(t *testing.T) {
	res, err := Run(testConfig(EngineTaskCombined, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Trace.Intervals {
		if iv.Kind == trace.KindMPISync || iv.Kind == trace.KindMPITransfer {
			t.Fatalf("combined engine recorded lane MPI time: %+v", iv)
		}
	}
}

// Nested task loops split one step's FFT across the rank's workers: with
// several workers the elapsed time of the step must shrink versus one
// worker, at equal total instructions.
func TestNestedLoopsUseAllWorkers(t *testing.T) {
	base := Config{Ecut: testEcut, Alat: testAlat, NB: 4, Ranks: 1, NTG: 1,
		Engine: EngineTaskSteps, Mode: ModeCost, NestedLoops: true,
		NestedGrainXY: 1, NestedGrainZ: 4}
	one := base
	one.StepWorkers = 1
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	four := base
	four.StepWorkers = 4
	r4, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Runtime >= r1.Runtime {
		t.Fatalf("4 workers (%.6f) not faster than 1 (%.6f)", r4.Runtime, r1.Runtime)
	}
	// Instructions identical up to the per-chunk fixed overhead (more
	// chunks are recorded, each with the fixed bookkeeping term).
	i1, i4 := r1.Trace.TotalInstr(), r4.Trace.TotalInstr()
	if rel := (i4 - i1) / i1; rel < -0.01 || rel > 0.05 {
		t.Fatalf("instruction totals diverged: %g vs %g", i1, i4)
	}
}

// Cost-mode combined runs must also finish and produce sane runtimes.
func TestCombinedEngineCostMode(t *testing.T) {
	cfg := testConfig(EngineTaskCombined, 2, 4, 8)
	cfg.Mode = ModeCost
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 || res.Bands != nil {
		t.Fatalf("cost run: runtime %v, bands %v", res.Runtime, res.Bands != nil)
	}
}

// At a contended configuration the combined engine must not be slower than
// the plain per-iteration task engine: hiding the scatters can only help.
func TestCombinedNotSlowerThanTaskIter(t *testing.T) {
	mk := func(e Engine) float64 {
		cfg := Config{Ecut: 20, Alat: 12, NB: 32, Ranks: 4, NTG: 4,
			Engine: e, Mode: ModeCost}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	iter := mk(EngineTaskIter)
	comb := mk(EngineTaskCombined)
	if comb > iter*1.02 {
		t.Fatalf("combined (%.6f) slower than task-iter (%.6f)", comb, iter)
	}
}

// With V(r) = 1 the whole pipeline is the identity operator: forward 3-D
// FFT, multiply by one, backward FFT with 1/N. Every engine must return the
// input bands to rounding error — the strongest end-to-end invariant.
func TestUnitPotentialIsIdentity(t *testing.T) {
	for _, engine := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined, EngineDataflow} {
		cfg := testConfig(engine, 2, 2, 4)
		cfg.UnitPotential = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		in := pw.WavefunctionBands(res.Sphere, cfg.NB)
		if d := maxBandDiff(t, res.Bands, in); d > 1e-12 {
			t.Errorf("%v: identity violated by %g", engine, d)
		}
	}
}

// The identity invariant in gamma mode.
func TestUnitPotentialIsIdentityGamma(t *testing.T) {
	for _, engine := range []Engine{EngineOriginal, EngineTaskIter, EngineDataflow} {
		cfg := testConfig(engine, 2, 2, 4)
		cfg.Gamma = true
		cfg.UnitPotential = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		in := pw.WavefunctionBandsGamma(res.Sphere, cfg.NB)
		if d := maxBandDiff(t, res.Bands, in); d > 1e-12 {
			t.Errorf("%v gamma: identity violated by %g", engine, d)
		}
	}
}

// The operator is linear: applying it to a scaled sum of two bands must
// equal the scaled sum of the individually transformed bands. The engines
// transform a fixed generated band set, so linearity is checked across
// bands of one run using the serial reference as the linear map.
func TestOperatorLinearityViaReference(t *testing.T) {
	cfg := testConfig(EngineTaskIter, 2, 2, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := pw.WavefunctionBands(res.Sphere, cfg.NB)
	// Build w = 2*in[0] - 3*in[1]; the operator image of w must equal
	// 2*out[0] - 3*out[1]. Verify with the serial machinery.
	s := res.Sphere
	w := make([]complex128, s.NG())
	want := make([]complex128, s.NG())
	for i := range w {
		w[i] = 2*in[0][i] - 3*in[1][i]
		want[i] = 2*res.Bands[0][i] - 3*res.Bands[1][i]
	}
	pot := pw.Potential(s.Grid)
	plan := fft.NewPlan3D(s.Grid.Nx, s.Grid.Ny, s.Grid.Nz)
	box := make([]complex128, s.Grid.Size())
	s.FillBox(box, w)
	plan.Transform(box, fft.Backward)
	for i := range box {
		box[i] *= complex(pot[i], 0)
	}
	plan.Transform(box, fft.Forward)
	got := make([]complex128, s.NG())
	s.ExtractBox(got, box)
	for i := range got {
		got[i] *= complex(1/float64(s.Grid.Size()), 0)
		if d := cmplx.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Multi-node configurations must still match the serial reference exactly
// (the cluster changes timing only) and be deterministic.
func TestMultiNodeMatchesReference(t *testing.T) {
	ref := Reference(Config{Ecut: testEcut, Alat: testAlat, NB: 8})
	for _, engine := range []Engine{EngineOriginal, EngineTaskIter, EngineTaskCombined, EngineDataflow} {
		cfg := testConfig(engine, 2, 2, 8)
		cfg.NodesCount = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if d := maxBandDiff(t, res.Bands, ref); d > 1e-10 {
			t.Errorf("%v on 2 nodes: deviation %g", engine, d)
		}
	}
}

// Spreading a fixed workload over more nodes must not slow the original
// engine down dramatically, and the cross-node scatters must be visible as
// increased transfer time relative to a hypothetical free interconnect.
func TestMultiNodeTimingSane(t *testing.T) {
	base := Config{Ecut: 20, Alat: 12, NB: 32, Ranks: 4, NTG: 4,
		Engine: EngineOriginal, Mode: ModeCost}
	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.NodesCount = 4
	four, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	if four.Runtime <= 0 {
		t.Fatal("non-positive multi-node runtime")
	}
	// A slow interconnect must hurt: same split with a crippled network.
	slow := multi
	slow.Net = knl.NetParams{Latency: 1e-3, Bandwidth: 1e7}
	crippled, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if crippled.Runtime <= four.Runtime {
		t.Fatalf("crippled interconnect (%g) not slower than default (%g)", crippled.Runtime, four.Runtime)
	}
	_ = one
}
