package fftx

import "testing"

func TestValidateProducedTraces(t *testing.T) {
	for _, e := range []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined} {
		cfg := Config{Ecut: 10, Alat: 10, NB: 8, Ranks: 2, NTG: 2, Engine: e, Mode: ModeCost}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		for _, verr := range res.Trace.Validate() {
			t.Errorf("%v: %v", e, verr)
		}
	}
}
