package fftx

import (
	"fmt"

	"repro/internal/fftx/graph"
	"repro/internal/ompss"
	"repro/internal/vtime"
)

// runTaskIter schedules the stage graph as optimization 2 of the paper
// (Figure 5): the FFT task-group MPI layer is replaced by NTG worker
// threads per rank, and every job's whole pipeline walk — pack, forward Z
// FFT, scatter, forward XY FFT, VOFR, backward XY FFT, scatter, backward
// Z FFT, unpack — is one OmpSs task. Bands are independent, so the runtime
// schedules them asynchronously: at any instant a rank's workers are in
// different phases, which de-synchronizes the high- and low-intensity
// compute phases across the node and softens the resource contention that
// caps the original version's IPC.
//
// The per-band scatter collectives span all ranks (the task groups are
// gone, the Section II "extreme case" NTG=1) and match across ranks by the
// band tag.
func runTaskIter(cfg Config) (*Result, error) {
	R, T := cfg.Ranks, cfg.NTG
	h := newHarness(cfg, R, T)
	k := h.k
	ft := h.newFlat()
	jobs := h.jobs()

	worldComm := h.w.CommWorld()
	for p := 0; p < R; p++ {
		p := p
		rt := h.newRankRuntime(p*T, T)
		h.eng.Spawn(fmt.Sprintf("rank%d.main", p), func(mp *vtime.Proc) {
			for b := 0; b < jobs; b++ {
				b := b
				rt.Submit(mp, fmt.Sprintf("band%d", b), nil, 0, func(wk *ompss.Worker) {
					ctx := h.ctx(wk, p)
					s := &graph.State{Job: b}
					ft.pack(wk, p, b, s)
					k.walk(wk, ctx, worldComm, b, s, p)
					ft.unpack(wk, p, b, s)
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	return h.finish(ft.collect)
}
