package fftx

import (
	"fmt"

	"repro/internal/knl"
	"repro/internal/mpi"
	"repro/internal/ompss"
	"repro/internal/pw"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// runTaskIter executes optimization 2 of the paper (Figure 5): the FFT
// task-group MPI layer is replaced by NTG worker threads per rank, and
// every band's whole pipeline — pack, forward Z FFT, scatter, forward XY
// FFT, VOFR, backward XY FFT, scatter, backward Z FFT, unpack — is one
// OmpSs task. Bands are independent, so the runtime schedules them
// asynchronously: at any instant a rank's workers are in different phases,
// which de-synchronizes the high- and low-intensity compute phases across
// the node and softens the resource contention that caps the original
// version's IPC.
//
// The per-band scatter collectives span all ranks (the task groups are
// gone, the Section II "extreme case" NTG=1) and match across ranks by the
// band tag.
func runTaskIter(cfg Config) (*Result, error) {
	k := newKernel(cfg)
	R, T := cfg.Ranks, cfg.NTG
	lanes := R * T
	machine, fabric := cfg.buildMachine(lanes)
	eng := vtime.NewEngine(machine)
	tr := trace.New(lanes, cfg.Params.Freq)
	sink := cfg.traceSink(tr)
	w := mpi.NewWorld(eng, fabric, sink, R, T)
	w.Strict = cfg.Strict

	// Rank p holds every band's position-p local coefficients.
	var in, out [][][]complex128
	if cfg.Mode == ModeReal {
		in = make([][][]complex128, R)
		out = make([][][]complex128, R)
		for p := 0; p < R; p++ {
			in[p] = make([][]complex128, cfg.NB)
			out[p] = make([][]complex128, cfg.NB)
		}
		var bands [][]complex128
		if cfg.Gamma {
			bands = pw.WavefunctionBandsGamma(k.sphere, cfg.NB)
		} else {
			bands = pw.WavefunctionBands(k.sphere, cfg.NB)
		}
		for b, coeffs := range bands {
			locals := k.layout.Distribute(coeffs)
			for p := 0; p < R; p++ {
				in[p][b] = locals[p]
			}
		}
	}

	// One task per FFT job: a single band, or a band pair in gamma mode.
	jobs := cfg.NB
	if cfg.Gamma {
		jobs = cfg.NB / 2
	}
	worldComm := w.CommWorld()
	for p := 0; p < R; p++ {
		p := p
		workerLanes := make([]int, T)
		for t := 0; t < T; t++ {
			workerLanes[t] = p*T + t
		}
		rt := ompss.New(eng, sink, workerLanes)
		rt.Strict = cfg.Strict
		eng.Spawn(fmt.Sprintf("rank%d.main", p), func(mp *vtime.Proc) {
			for b := 0; b < jobs; b++ {
				b := b
				rt.Submit(mp, fmt.Sprintf("band%d", b), nil, 0, func(wk *ompss.Worker) {
					ctx := &mpi.Ctx{W: w, Proc: wk.Proc, Rank: p, Lane: wk.Lane}
					if cfg.Gamma {
						var c1, c2 []complex128
						k.phase(wk, b, p, "pack", knl.ClassMem, gammaFactor*k.instrPack(p), func() {
							c1 = append([]complex128(nil), in[p][2*b]...)
							c2 = append([]complex128(nil), in[p][2*b+1]...)
						})
						sendZ := k.zForwardGamma(wk, b, p, c1, c2)
						recvZ := k.alltoall(ctx, worldComm, 2*b, sendZ, k.bytesScatterGamma(p))
						sendXY := k.xyPartGamma(wk, b, p, recvZ)
						recvXY := k.alltoall(ctx, worldComm, 2*b+1, sendXY, k.bytesScatterGamma(p))
						r1, r2 := k.zBackwardGamma(wk, b, p, recvXY)
						k.phase(wk, b, p, "unpack", knl.ClassMem, gammaFactor*k.instrPack(p), func() {
							out[p][2*b] = r1
							out[p][2*b+1] = r2
						})
						return
					}
					var coeffs []complex128
					k.phase(wk, b, p, "pack", knl.ClassMem, k.instrPack(p), func() {
						coeffs = append([]complex128(nil), in[p][b]...)
					})
					sendZ := k.zForward(wk, b, p, coeffs)
					recvZ := k.alltoall(ctx, worldComm, 2*b, sendZ, k.bytesScatter(p))
					sendXY := k.xyPart(wk, b, p, recvZ)
					recvXY := k.alltoall(ctx, worldComm, 2*b+1, sendXY, k.bytesScatter(p))
					res := k.zBackward(wk, b, p, recvXY)
					k.phase(wk, b, p, "unpack", knl.ClassMem, k.instrPack(p), func() {
						out[p][b] = res
					})
				})
			}
			rt.Taskwait(mp)
			rt.Shutdown(mp)
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("fftx: task-iter engine: %w", err)
	}

	res := &Result{Config: cfg, Runtime: tr.Runtime(), Trace: tr, Sphere: k.sphere, Layout: k.layout}
	if cfg.Mode == ModeReal {
		res.Bands = make([][]complex128, cfg.NB)
		for b := 0; b < cfg.NB; b++ {
			locals := make([][]complex128, R)
			for p := 0; p < R; p++ {
				locals[p] = out[p][b]
			}
			res.Bands[b] = k.layout.Collect(locals)
		}
	}
	return res, nil
}
