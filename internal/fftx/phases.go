package fftx

import (
	"repro/internal/fft"
	"repro/internal/par"
	"repro/internal/pw"
)

// The data transforms of the pipeline, shared by every engine in ModeReal.
// Each operates on one position p of the layout (the rank inside a task
// group that owns a subset of sticks and a contiguous block of planes).
//
// The hot loops fan out over host cores with par.ParallelFor: every body
// writes only data indexed by its own [lo,hi) range, and the simulated cost
// of each phase comes from the analytic instruction model (kernel.phase),
// so host parallelism changes wall clock only — simulated results are
// bit-identical with par enabled or disabled (see TestHostParEquivalence).
// Bodies must not touch mpi/vtime/ompss state (fftxvet's parbody rule).

// Host-parallel grain sizes: sticks are cheap (one length-Nz FFT each), so
// they batch; planes are expensive (a full 2-D FFT), so they split singly;
// flat index loops batch by the thousand to amortize dispatch.
const (
	grainSticks = 32
	grainPlanes = 1
	grainIndex  = 4096
)

// prepSticks builds the zero-padded stick buffer (stick-major, full Nz per
// stick) from position p's local sphere coefficients — the "preparation of
// the Psis" phase with very low IPC in Figure 3.
func (k *kernel) prepSticks(p int, coeffs []complex128) []complex128 {
	buf := make([]complex128, k.layout.NSticksOf(p)*k.sphere.Grid.Nz)
	fill := k.stickFill[p]
	par.ParallelFor(len(coeffs), grainIndex, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[fill[i]] = coeffs[i]
		}
	})
	return buf
}

// transformManyPar runs a batched 1-D transform over count contiguous rows,
// split over host cores in grainSticks batches.
func transformManyPar(plan *fft.Plan, buf []complex128, count int, sign fft.Sign) {
	n := plan.N()
	par.ParallelFor(count, grainSticks, func(lo, hi int) {
		plan.TransformMany(buf[lo*n:hi*n], hi-lo, sign)
	})
}

// fftZ transforms every local stick along z in place.
func (k *kernel) fftZ(p int, buf []complex128, sign fft.Sign) {
	transformManyPar(k.planZ, buf, k.layout.NSticksOf(p), sign)
}

// splitCols builds the sticks→planes Alltoallv send chunks over nCols
// columns of the stick buffer: send[q] holds, column-major, the values at
// q's plane range.
func (k *kernel) splitCols(p int, buf []complex128, nCols int) [][]complex128 {
	l := k.layout
	nz := k.sphere.Grid.Nz
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			lo, hi := l.PlaneLo[q], l.PlaneHi[q]
			chunk := make([]complex128, 0, nCols*(hi-lo))
			for s := 0; s < nCols; s++ {
				chunk = append(chunk, buf[s*nz+lo:s*nz+hi]...)
			}
			out[q] = chunk
		}
	})
	return out
}

// joinCols is the inverse of splitCols.
func (k *kernel) joinCols(p int, recv [][]complex128, nCols int) []complex128 {
	l := k.layout
	nz := k.sphere.Grid.Nz
	buf := make([]complex128, nCols*nz)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			lo, hi := l.PlaneLo[q], l.PlaneHi[q]
			w := hi - lo
			for s := 0; s < nCols; s++ {
				copy(buf[s*nz+lo:s*nz+hi], recv[q][s*w:(s+1)*w])
			}
		}
	})
	return buf
}

// scatterSplit builds the sticks→planes Alltoallv send chunks: send[q]
// holds, stick-major, the values of my sticks at q's plane range.
func (k *kernel) scatterSplit(p int, buf []complex128) [][]complex128 {
	return k.splitCols(p, buf, k.layout.NSticksOf(p))
}

// planesFromScatter assembles position p's full XY planes (plane-major,
// row-major within a plane) from the forward-scatter receive chunks: the
// "xy-fill" memory phase. Each source position q owns a disjoint set of
// plane cells, so the fan-out is over q.
func (k *kernel) planesFromScatter(p int, recv [][]complex128) []complex128 {
	l := k.layout
	g := k.sphere.Grid
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	planes := make([]complex128, npl*nxy)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			for t := 0; t < nsq; t++ {
				cell := k.stickPlaneIdx[k.groupStickOffset[q]+t]
				base := t * npl
				for z := 0; z < npl; z++ {
					planes[z*nxy+cell] = recv[q][base+z]
				}
			}
		}
	})
	return planes
}

// fftXY transforms every owned plane in place, one host task per plane.
func (k *kernel) fftXY(p int, planes []complex128, sign fft.Sign) {
	g := k.sphere.Grid
	nxy := g.Nx * g.Ny
	par.ParallelFor(k.layout.NPlanesOf(p), grainPlanes, func(lo, hi int) {
		for z := lo; z < hi; z++ {
			k.plan2D.Transform(planes[z*nxy:(z+1)*nxy], sign)
		}
	})
}

// vOfR multiplies the owned real-space planes by the local potential — the
// operator the miniapp exists to apply.
func (k *kernel) vOfR(p int, planes []complex128) {
	g := k.sphere.Grid
	nxy := g.Nx * g.Ny
	par.ParallelFor(k.layout.NPlanesOf(p), grainPlanes, func(zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			vp := k.potPl[k.layout.PlaneLo[p]+z]
			pl := planes[z*nxy : (z+1)*nxy]
			for i := range pl {
				pl[i] *= complex(vp[i], 0)
			}
		}
	})
}

// planesToScatter is the inverse of planesFromScatter: it builds the
// backward-scatter send chunks (send[q] = q's sticks' values at my planes).
func (k *kernel) planesToScatter(p int, planes []complex128) [][]complex128 {
	l := k.layout
	g := k.sphere.Grid
	npl := l.NPlanesOf(p)
	nxy := g.Nx * g.Ny
	out := make([][]complex128, l.R)
	par.ParallelFor(l.R, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			nsq := l.NSticksOf(q)
			chunk := make([]complex128, nsq*npl)
			for t := 0; t < nsq; t++ {
				cell := k.stickPlaneIdx[k.groupStickOffset[q]+t]
				for z := 0; z < npl; z++ {
					chunk[t*npl+z] = planes[z*nxy+cell]
				}
			}
			out[q] = chunk
		}
	})
	return out
}

// sticksFromScatter is the inverse of scatterSplit: it reassembles the full
// stick buffer from the backward-scatter receive chunks.
func (k *kernel) sticksFromScatter(p int, recv [][]complex128) []complex128 {
	return k.joinCols(p, recv, k.layout.NSticksOf(p))
}

// extractCoeffs gathers the sphere coefficients back out of the stick
// buffer, applying the backward 1/N normalization of the full 3-D
// transform.
func (k *kernel) extractCoeffs(p int, buf []complex128) []complex128 {
	fill := k.stickFill[p]
	out := make([]complex128, k.layout.NGOf[p])
	scale := complex(1/float64(k.sphere.Grid.Size()), 0)
	par.ParallelFor(len(out), grainIndex, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = buf[fill[i]] * scale
		}
	})
	return out
}

// Reference computes the result of the miniapp serially: for every band,
// fill the full 3-D box, backward-transform to real space, multiply by
// V(r), forward-transform back and extract the sphere with 1/N scaling.
// Every engine's ModeReal output must match it to rounding error.
func Reference(cfg Config) [][]complex128 {
	s := pw.NewSphere(cfg.Ecut, cfg.Alat)
	bands := pw.WavefunctionBands(s, cfg.NB)
	pot := pw.Potential(s.Grid)
	plan := fft.NewPlan3D(s.Grid.Nx, s.Grid.Ny, s.Grid.Nz)
	box := make([]complex128, s.Grid.Size())
	out := make([][]complex128, cfg.NB)
	for b, coeffs := range bands {
		s.FillBox(box, coeffs)
		plan.Transform(box, fft.Backward) // G -> r, unscaled
		for i := range box {
			box[i] *= complex(pot[i], 0)
		}
		plan.Transform(box, fft.Forward) // r -> G
		res := make([]complex128, s.NG())
		s.ExtractBox(res, box)
		for i := range res {
			res[i] *= complex(1/float64(s.Grid.Size()), 0)
		}
		out[b] = res
	}
	return out
}
