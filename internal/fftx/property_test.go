package fftx

import (
	"math/rand"
	"testing"

	"repro/internal/knl"
	"repro/internal/trace"
)

// Property: ANY valid (engine, ranks, ntg, nb, gamma) combination matches
// the serial reference. Randomized over the full configuration space with a
// fixed seed for reproducibility.
func TestPropertyRandomConfigsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	refCache := map[int][][]complex128{}
	gammaRefCache := map[int][][]complex128{}
	for trial := 0; trial < 25; trial++ {
		engine := []Engine{EngineOriginal, EngineTaskSteps, EngineTaskIter, EngineTaskCombined}[rng.Intn(4)]
		ranks := 1 + rng.Intn(4)
		ntg := []int{1, 2, 4}[rng.Intn(3)]
		nb := ntg * (1 + rng.Intn(3)) * 2 // even and divisible by ntg
		gamma := rng.Intn(3) == 0 &&
			(engine == EngineOriginal || engine == EngineTaskIter) &&
			(nb/2)%ntg == 0
		cfg := Config{
			Ecut: testEcut, Alat: testAlat, NB: nb, Ranks: ranks, NTG: ntg,
			Engine: engine, Mode: ModeReal, Gamma: gamma,
		}
		if engine == EngineTaskSteps {
			cfg.StepWorkers = 1 + rng.Intn(3)
			cfg.NestedLoops = rng.Intn(2) == 0
			cfg.NestedGrainXY = 1 + rng.Intn(5)
			cfg.NestedGrainZ = 1 + rng.Intn(8)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d %+v: %v", trial, cfg, err)
		}
		var ref [][]complex128
		if gamma {
			if gammaRefCache[nb] == nil {
				gammaRefCache[nb] = gammaReference(t, Config{Ecut: testEcut, Alat: testAlat, NB: nb})
			}
			ref = gammaRefCache[nb]
		} else {
			if refCache[nb] == nil {
				refCache[nb] = Reference(Config{Ecut: testEcut, Alat: testAlat, NB: nb})
			}
			ref = refCache[nb]
		}
		if d := maxBandDiff(t, res.Bands, ref); d > 1e-10 {
			t.Errorf("trial %d: engine=%v ranks=%d ntg=%d nb=%d gamma=%v workers=%d nested=%v: deviation %g",
				trial, engine, ranks, ntg, nb, gamma, cfg.StepWorkers, cfg.NestedLoops, d)
		}
	}
}

// Property: the simulated runtime is positive and decreases (or at least
// does not explode) when lanes are added at fixed work, across engines.
func TestPropertyRuntimeSaneAcrossScales(t *testing.T) {
	for _, engine := range []Engine{EngineOriginal, EngineTaskIter, EngineTaskCombined} {
		prev := 0.0
		for i, ranks := range []int{1, 2, 4} {
			cfg := Config{Ecut: 20, Alat: 12, NB: 16, Ranks: ranks, NTG: 4,
				Engine: engine, Mode: ModeCost}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime <= 0 {
				t.Fatalf("%v ranks=%d: runtime %v", engine, ranks, res.Runtime)
			}
			if i > 0 && res.Runtime > prev*1.1 {
				t.Fatalf("%v: runtime grew from %v to %v when doubling ranks", engine, prev, res.Runtime)
			}
			prev = res.Runtime
		}
	}
}

// Property: the useful modeled instructions (net of the per-phase fixed
// bookkeeping term, which intentionally replicates with the process count)
// are independent of the rank/NTG decomposition — distribution neither
// loses nor duplicates work.
func TestPropertyInstructionsDecompositionInvariant(t *testing.T) {
	useful := func(res *Result) float64 {
		var instr float64
		var phases int
		for _, iv := range res.Trace.Intervals {
			if iv.Kind == trace.KindCompute {
				instr += iv.Instr
				phases++
			}
		}
		return instr - float64(phases)*fixedPhaseInstr
	}
	var base float64
	for i, tc := range []struct{ ranks, ntg int }{{1, 1}, {2, 2}, {4, 1}, {1, 4}, {2, 4}} {
		cfg := Config{Ecut: testEcut, Alat: testAlat, NB: 8, Ranks: tc.ranks, NTG: tc.ntg,
			Engine: EngineOriginal, Mode: ModeCost}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		instr := useful(res)
		if i == 0 {
			base = instr
			continue
		}
		rel := (instr - base) / base
		// Jitter draws differ per (band, position, phase), so allow its
		// ±6 % plus stick-imbalance slack.
		if rel < -0.08 || rel > 0.08 {
			t.Fatalf("ranks=%d ntg=%d: useful instructions %g deviate %.1f%% from %g",
				tc.ranks, tc.ntg, instr, 100*rel, base)
		}
	}
}

// Property: the node model influences ONLY timing, never numerics — band
// results are bit-identical under wildly different machine parameters.
func TestPropertyNumericsIndependentOfNodeModel(t *testing.T) {
	base := testConfig(EngineTaskIter, 2, 2, 4)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []func(*knl.Params){
		func(p *knl.Params) { p.Jitter = 0.3 },
		func(p *knl.Params) { p.Freq = 3e9; p.NodeBandwidth = 1e9 },
		func(p *knl.Params) { p.ContA = 0.02; p.EndpointBandwidth = 1e8 },
		func(p *knl.Params) { p.CommLatency = 1e-3 },
	}
	for i, mod := range variants {
		params := knl.DefaultParams()
		mod(&params)
		cfg := base
		cfg.Params = &params
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxBandDiff(t, res.Bands, ref.Bands); d != 0 {
			t.Errorf("variant %d: numerics changed by %g under a timing-only perturbation", i, d)
		}
		if res.Runtime == ref.Runtime {
			t.Errorf("variant %d: runtime unchanged — the perturbation did nothing", i)
		}
	}
}

// Property: the Seed affects timing draws only, never numerics.
func TestPropertySeedTimingOnly(t *testing.T) {
	base := testConfig(EngineOriginal, 2, 2, 4)
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Seed = 42
	b, err := Run(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBandDiff(t, a.Bands, b.Bands); d != 0 {
		t.Fatalf("seed changed numerics by %g", d)
	}
	if a.Runtime == b.Runtime {
		t.Fatal("seed did not change the timing draws")
	}
}
