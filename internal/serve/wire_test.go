package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// validWireRequest renders a well-formed binary request for tests to mutate.
func validWireRequest(t *testing.T) []byte {
	t.Helper()
	req := &Request{
		Dims:  []int{4, 3, 2},
		Batch: 2,
		Scale: true,
		Data:  make([]float64, 2*2*24),
	}
	for i := range req.Data {
		req.Data[i] = float64(i%7) - 3
	}
	b, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWireRoundTrip(t *testing.T) {
	orig := &Request{
		Dims:           []int{5, 4},
		Sign:           1,
		Batch:          3,
		DeadlineMillis: 250,
		Data:           make([]float64, 2*3*20),
	}
	for i := range orig.Data {
		orig.Data[i] = 0.25 * float64(i)
	}
	b, err := EncodeRequest(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign != 1 || got.Batch != 3 || got.DeadlineMillis != 250 || got.Scale {
		t.Errorf("header fields lost: %+v", got)
	}
	if len(got.Dims) != 2 || got.Dims[0] != 5 || got.Dims[1] != 4 {
		t.Errorf("dims lost: %v", got.Dims)
	}
	for i := range orig.Data {
		if got.Data[i] != orig.Data[i] {
			t.Fatalf("data[%d] = %g, want %g", i, got.Data[i], orig.Data[i])
		}
	}

	resp := &Response{Data: orig.Data, BatchSize: 7}
	rt, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if rt.BatchSize != 7 || len(rt.Data) != len(resp.Data) {
		t.Errorf("response round trip lost fields: batch %d len %d", rt.BatchSize, len(rt.Data))
	}
}

func TestWirePipelineRoundTrip(t *testing.T) {
	orig := &Request{
		Op: OpPipeline,
		Pipeline: &PipelineRequest{
			Ecut: 20, Alat: 10, NB: 8, Ranks: 2, NTG: 2,
			Engine: "auto", Seed: 3,
		},
		DeadlineMillis: 125,
	}
	b, err := EncodeRequest(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpPipeline || got.DeadlineMillis != 125 {
		t.Errorf("header fields lost: %+v", got)
	}
	if *got.Pipeline != *orig.Pipeline {
		t.Errorf("pipeline fields lost: %+v, want %+v", got.Pipeline, orig.Pipeline)
	}

	// Empty engine name (server default) survives too.
	orig.Pipeline.Engine = ""
	b, err = EncodeRequest(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRequest(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pipeline.Engine != "" {
		t.Errorf("empty engine became %q", got.Pipeline.Engine)
	}

	resp := &Response{Runtime: 0.125, Engine: "task-iter", BatchSize: 1}
	rt, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Runtime != 0.125 || rt.Engine != "task-iter" || rt.BatchSize != 1 {
		t.Errorf("pipeline response round trip lost fields: %+v", rt)
	}
}

// TestWireTraceIDRoundTrip drives the trace-ID extension through all four
// frame types: FXD1 (flags bit1 + ID between dims and payload), FXR1 (bit31
// of the batch field + trailing ID), FXP1 (flags byte bit0 + ID after the
// engine name) and FXQ1 (length-discriminated trailing ID).
func TestWireTraceIDRoundTrip(t *testing.T) {
	const id = "00deadbeef15dead"

	req := &Request{Dims: []int{4, 2}, Batch: 1, TraceID: id, Data: make([]float64, 2*8)}
	b, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != id {
		t.Errorf("FXD1 trace ID %q, want %q", got.TraceID, id)
	}
	if len(got.Data) != len(req.Data) {
		t.Errorf("FXD1 payload lost %d floats around the trace ID", len(req.Data)-len(got.Data))
	}

	pipe := &Request{
		Op:       OpPipeline,
		TraceID:  id,
		Pipeline: &PipelineRequest{Ecut: 20, Alat: 10, NB: 4, Ranks: 2, NTG: 2, Engine: "auto"},
	}
	b, err = EncodeRequest(pipe)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRequest(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != id || got.Pipeline.Engine != "auto" {
		t.Errorf("FXP1 round trip lost fields: trace %q engine %q", got.TraceID, got.Pipeline.Engine)
	}

	resp := &Response{Data: []float64{1, 2}, BatchSize: 5, TraceID: id}
	rt, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if rt.TraceID != id || rt.BatchSize != 5 || len(rt.Data) != 2 {
		t.Errorf("FXR1 round trip lost fields: %+v", rt)
	}

	presp := &Response{Runtime: 0.5, Engine: "task-iter", BatchSize: 1, TraceID: id}
	rt, err = DecodeResponse(EncodeResponse(presp))
	if err != nil {
		t.Fatal(err)
	}
	if rt.TraceID != id || rt.Engine != "task-iter" {
		t.Errorf("FXQ1 round trip lost fields: %+v", rt)
	}

	// Malformed IDs are rejected at encode time, not silently truncated.
	if _, err := EncodeRequest(&Request{Dims: []int{2}, Batch: 1, TraceID: "nope", Data: make([]float64, 4)}); err == nil {
		t.Error("EncodeRequest accepted a malformed trace ID")
	}
	// A malformed trailing ID in a response frame is an error, not data.
	bad := EncodeResponse(resp)
	copy(bad[len(bad)-16:], "ZZZZZZZZZZZZZZZZ")
	if _, err := DecodeResponse(bad); err == nil {
		t.Error("DecodeResponse accepted a malformed trace ID")
	}
}

func TestDecodePipelineRequestErrors(t *testing.T) {
	valid := &Request{
		Op:       OpPipeline,
		Pipeline: &PipelineRequest{Ecut: 20, Alat: 10, NB: 8, Ranks: 2, NTG: 2, Engine: "task-steps"},
	}
	base, err := EncodeRequest(valid)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), base...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"short header", base[:wirePipeReqHeader-1], "truncated"},
		{"unknown flags", mutate(func(b []byte) []byte { b[5] = 0x80; return b }), "unknown pipeline flags"},
		{"reserved set", mutate(func(b []byte) []byte { b[6] = 1; return b }), "reserved"},
		{"name length mismatch", mutate(func(b []byte) []byte { b[4] = 3; return b }), "carries"},
		{"trace flag without trace", mutate(func(b []byte) []byte { b[5] |= pipeFlagTraceID; return b }), "carries"},
		{"trace flag bad trace", mutate(func(b []byte) []byte {
			b[5] |= pipeFlagTraceID
			return append(b, "XYZ-not-hex-----"...)
		}), "malformed trace ID"},
		{"NaN ecut", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(math.NaN()))
			return b
		}), "not finite"},
		{"unknown engine", mutate(func(b []byte) []byte { b[wirePipeReqHeader] = 'x'; return b }), "unknown engine"},
		{"huge ranks", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[28:], math.MaxUint32)
			return b
		}), "lanes"},
		{"huge nb", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], math.MaxUint32)
			return b
		}), "band limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest(tc.data, 0)
			if err == nil {
				t.Fatalf("accepted malformed input: %+v", req)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := DecodeRequest(base, 0); err != nil {
		t.Fatalf("valid pipeline request rejected: %v", err)
	}
}

// TestDecodeRequestErrors pins the deterministic rejection cases the fuzzer
// explores at random: every mutation must produce an error, never a panic
// and never a silently-accepted request.
func TestDecodeRequestErrors(t *testing.T) {
	base := validWireRequest(t)
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), base...)
		return f(b)
	}
	nan := math.Float64bits(math.NaN())
	inf := math.Float64bits(math.Inf(1))
	cases := []struct {
		name string
		data []byte
		want string // error substring
	}{
		{"empty", nil, "truncated"},
		{"short header", base[:wireReqHeader-1], "truncated"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"response magic", mutate(func(b []byte) []byte { copy(b, magicResponse[:]); return b }), "bad magic"},
		{"bad sign", mutate(func(b []byte) []byte { b[4] = 2; return b }), "bad sign"},
		{"rank 0", mutate(func(b []byte) []byte { b[5] = 0; return b }), "bad rank"},
		{"rank 4", mutate(func(b []byte) []byte { b[5] = 4; return b }), "bad rank"},
		{"unknown flags", mutate(func(b []byte) []byte { b[6] = 0x80; return b }), "unknown flags"},
		{"reserved set", mutate(func(b []byte) []byte { b[7] = 1; return b }), "reserved"},
		{"trace flag without trace", mutate(func(b []byte) []byte { b[6] |= flagTraceID; return b }), "trace ID"},
		{"trace flag truncated trace", mutate(func(b []byte) []byte {
			b[6] |= flagTraceID
			return b[:wireReqHeader+4*3+8] // flag set, only half a trace ID present
		}), "truncated inside trace ID"},
		{"zero batch", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}), "zero batch"},
		{"huge batch", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], math.MaxUint32)
			return b
		}), "exceeds"},
		{"zero dim", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[wireReqHeader:], 0)
			return b
		}), "out of range"},
		{"huge dims", mutate(func(b []byte) []byte {
			for i := 0; i < 3; i++ {
				binary.LittleEndian.PutUint32(b[wireReqHeader+4*i:], 1<<20)
			}
			return b
		}), "exceed"},
		{"truncated dims", base[:wireReqHeader+4], "truncated inside dims"},
		{"truncated payload", base[:len(base)-8], "payload carries"},
		{"oversized payload", append(append([]byte(nil), base...), 0, 0, 0, 0, 0, 0, 0, 0), "payload carries"},
		{"NaN component", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[wireReqHeader+12:], nan)
			return b
		}), "not finite"},
		{"Inf component", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(b)-8:], inf)
			return b
		}), "not finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest(tc.data, 0)
			if err == nil {
				t.Fatalf("accepted malformed input: %+v", req)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The happy path must survive unmutated.
	if _, err := DecodeRequest(base, 0); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

// FuzzRequestDecode holds the binary decoder to its contract: arbitrary
// input either decodes into a request that re-validates cleanly or returns
// an error — it never panics and never over-allocates past the element
// budget.
func FuzzRequestDecode(f *testing.F) {
	valid := &Request{Dims: []int{4, 3, 2}, Batch: 2, Scale: true, Data: make([]float64, 2*2*24)}
	if seed, err := EncodeRequest(valid); err == nil {
		f.Add(seed)
		f.Add(seed[:wireReqHeader+4])
		f.Add(append(append([]byte(nil), seed...), 1, 2, 3))
	}
	pipe := &Request{Op: OpPipeline, Pipeline: &PipelineRequest{Ecut: 20, Alat: 10, NB: 4, Ranks: 2, NTG: 2, Engine: "auto"}}
	if seed, err := EncodeRequest(pipe); err == nil {
		f.Add(seed)
		f.Add(seed[:wirePipeReqHeader])
	}
	// Traced frames: whole, truncated mid-trace-ID, and with a duplicated
	// trace-ID field appended (the decoder must reject the length surplus).
	valid.TraceID = "0123456789abcdef"
	pipe.TraceID = "fedcba9876543210"
	if seed, err := EncodeRequest(valid); err == nil {
		f.Add(seed)
		f.Add(seed[:wireReqHeader+4*3+8])
		f.Add(append(append([]byte(nil), seed...), "0123456789abcdef"...))
	}
	if seed, err := EncodeRequest(pipe); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-8])
		f.Add(append(append([]byte(nil), seed...), "fedcba9876543210"...))
	}
	f.Add([]byte{})
	f.Add([]byte("FXD1"))
	f.Add([]byte("FXP1"))
	f.Add([]byte("FXR1aaaaaaaaaaaaaaaa"))
	short := []byte{'F', 'X', 'D', '1', 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0}
	f.Add(append(append([]byte(nil), short...), make([]byte, 32)...))

	const fuzzMaxElements = 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data, fuzzMaxElements)
		if err != nil {
			if req != nil {
				t.Fatalf("non-nil request alongside error %v", err)
			}
			return
		}
		// Whatever decoded must satisfy the same contract Validate enforces.
		if err := req.Validate(fuzzMaxElements); err != nil {
			t.Fatalf("decoded request fails validation: %v", err)
		}
		if req.Op == OpPipeline {
			// Pipeline frames carry no payload; the contract is the
			// encode/decode fixed point.
			b, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if !bytes.Equal(b, mustEncode(t, mustDecode(t, b))) {
				t.Fatal("pipeline encode/decode is not a fixed point")
			}
			return
		}
		n := req.NumElements()
		if n == 0 || req.Batch*n > fuzzMaxElements {
			t.Fatalf("decoded request exceeds budget: batch %d × %d elements", req.Batch, n)
		}
		if len(req.Data) != 2*req.Batch*n {
			t.Fatalf("decoded data length %d, want %d", len(req.Data), 2*req.Batch*n)
		}
		for i, v := range req.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite component %d survived decoding", i)
			}
		}
		// Decoded requests re-encode to a decodable equivalent.
		b, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeRequest(b, fuzzMaxElements)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(b, mustEncode(t, again)) {
			t.Fatal("encode/decode is not a fixed point")
		}
	})
}

func mustEncode(t *testing.T, r *Request) []byte {
	t.Helper()
	b, err := EncodeRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustDecode(t *testing.T, b []byte) *Request {
	t.Helper()
	r, err := DecodeRequest(b, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
