package serve

import (
	"runtime"
	"testing"
)

// execBenchmark measures the exec layer the way the dispatcher drives it:
// "batched" hands the worker one group of rows same-shape tasks (one plan
// lookup, one host-parallel fan-out), "unbatched" hands it rows singleton
// groups — what the same offered load costs with coalescing disabled.
func execBenchmark(s *Server, dims []int, rows int, batched bool) func(b *testing.B) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := randomData(1, n)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tasks := make([]*task, rows)
			for j := range tasks {
				req := &Request{Op: OpTransform, Dims: dims, Sign: -1, Batch: 1,
					Data: append([]float64(nil), data...)}
				tasks[j] = newTask(req)
				mQueueDepth.Add(1) // runBatch decrements per task
			}
			if batched {
				s.runBatch(&group{key: tasks[0].key, tasks: tasks})
			} else {
				for _, t := range tasks {
					s.runBatch(&group{key: t.key, tasks: []*task{t}})
				}
			}
			for _, t := range tasks {
				<-t.done
			}
		}
	}
}

// TestBatchedThroughputGain is the benchmark-backed acceptance check: a
// coalesced same-shape batch must deliver at least 1.3× the throughput of
// the same requests dispatched one by one. On multi-core hosts the win is
// the shared host-parallel fan-out; the single-core floor is the amortized
// per-batch dispatch overhead, measured on a small shape where it shows.
func TestBatchedThroughputGain(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison skipped in -short mode")
	}
	s := New(Config{Workers: 1})
	dims := []int{16, 16, 16}
	rows := 16
	if runtime.GOMAXPROCS(0) < 2 {
		// One core: no parallel speedup exists, so measure the dispatch
		// amortization where kernel time does not drown it.
		dims = []int{16}
		rows = 128
	}

	un := testing.Benchmark(execBenchmark(s, dims, rows, false))
	ba := testing.Benchmark(execBenchmark(s, dims, rows, true))
	if un.N == 0 || ba.N == 0 {
		t.Fatal("benchmarks did not run")
	}
	ratio := float64(un.NsPerOp()) / float64(ba.NsPerOp())
	t.Logf("dims %v rows %d: unbatched %v/op, batched %v/op, gain %.2fx",
		dims, rows, un.NsPerOp(), ba.NsPerOp(), ratio)
	if ratio < 1.3 {
		t.Errorf("batched throughput gain %.2fx, want >= 1.3x", ratio)
	}
}
