package serve

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/fft"
	"repro/internal/fftx"
	"repro/internal/par"
	"repro/internal/profiles"
)

// Batch execution on the worker pool. A transform batch performs one plan
// lookup on the shared fft.Cache and fans its rows out over host cores via
// par.ParallelFor, so N coalesced single-transform requests cost one
// lookup plus one fan-out instead of N of each — the amortization the
// batching layer exists to buy. Pipeline tasks run one cost-mode fftx.Run
// per task.

// rowPlan is the shape-generic transform interface all three plan kinds
// satisfy.
type rowPlan interface {
	Transform(x []complex128, sign fft.Sign)
}

// planFor resolves the cached plan of a transform shape.
func (s *Server) planFor(dims []int) rowPlan {
	switch len(dims) {
	case 1:
		return s.cache.Get(dims[0])
	case 2:
		return s.cache.Get2D(dims[0], dims[1])
	case 3:
		return s.cache.Get3D(dims[0], dims[1], dims[2])
	}
	return nil
}

// worker drains the batch channel until the dispatcher closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for g := range s.batches {
		s.runBatch(g)
	}
}

// runBatch executes one group: deadline-filters its tasks, runs the shared
// kernel and resolves every survivor.
func (s *Server) runBatch(g *group) {
	now := time.Now()
	live := g.tasks[:0]
	for _, t := range g.tasks {
		mQueueDepth.Add(-1)
		t.coalesceSpan.EndAt(now)
		if t.expired(now) {
			mRejects.With("deadline").Inc()
			t.fail(503, s.retryAfter(), "deadline expired while batched")
			continue
		}
		live = append(live, t)
	}
	if len(live) == 0 {
		return
	}
	mInflight.Add(float64(len(live)))
	defer mInflight.Add(-float64(len(live)))
	if s.cfg.ExecDelay > 0 {
		// Injected service time: shutdown/overload tests use it to observe
		// in-flight vs queued states deterministically, cluster-bench to
		// model a fixed per-node batch cost (see Config.ExecDelay).
		time.Sleep(s.cfg.ExecDelay)
	}
	if live[0].req.Op == OpPipeline {
		for _, t := range live {
			s.runPipeline(t)
		}
		return
	}
	s.runTransforms(g.key, live)
}

// runTransforms executes a same-shape transform batch in place and answers
// each task with its own slice of the results. Traced tasks get an exec span
// with plan/transform/scale children (shared batch timings: each request's
// wall time in those phases is the batch's), and every batch records its
// breakdown into the per-shape profile store.
func (s *Server) runTransforms(key string, live []*task) {
	req := live[0].req
	sign := signOf(req.Sign)
	n := req.NumElements()
	start := time.Now()

	plan := s.planFor(req.Dims)
	planDone := time.Now()
	rows := 0
	if len(live) == 1 {
		// Single-task fast path: the payload is already contiguous, so the
		// fft batch driver fans it out without building row views.
		rows = live[0].rows
		transformContiguous(plan, live[0].data, rows, sign)
	} else {
		views := make([][]complex128, 0, len(live))
		for _, t := range live {
			for b := 0; b < t.rows; b++ {
				views = append(views, t.data[b*n:(b+1)*n])
			}
		}
		rows = len(views)
		par.ParallelFor(rows, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				plan.Transform(views[i], sign)
			}
		})
	}
	transformDone := time.Now()
	if req.Scale {
		inv := 1 / float64(n)
		par.ParallelFor(len(live), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fft.Scale(live[i].data, inv)
			}
		})
	}
	end := time.Now()

	mBatches.With(key).Inc()
	mBatchRows.With(key).Observe(float64(rows))
	mExecSeconds.With(key).Observe(end.Sub(start).Seconds())
	mPlanBuilds.Set(float64(s.cache.Builds()))

	engine := fmt.Sprintf("plan%dd", len(req.Dims))
	phases := map[string]float64{
		"plan":      planDone.Sub(start).Seconds(),
		"transform": transformDone.Sub(planDone).Seconds(),
	}
	if req.Scale {
		phases["scale"] = end.Sub(transformDone).Seconds()
	}
	batchTraceID := ""
	for _, t := range live {
		if id := t.spans.TraceID(); id != "" && batchTraceID == "" {
			batchTraceID = id
		}
		exec := t.root.BeginAt("exec", start)
		exec.SetAttr("rows", strconv.Itoa(rows))
		exec.SetAttr("engine", engine)
		planSpan := exec.BeginAt("plan", start)
		planSpan.EndAt(planDone)
		transformSpan := exec.BeginAt("transform", planDone)
		transformSpan.EndAt(transformDone)
		if req.Scale {
			scaleSpan := exec.BeginAt("scale", transformDone)
			scaleSpan.EndAt(end)
		}
		exec.EndAt(end)
	}
	s.profiles.Record(
		profiles.Key{Shape: key, Engine: engine, Mode: "transform"},
		end.Sub(start).Seconds(), phases, batchTraceID)
	mProfileKeys.Set(float64(s.profiles.Len()))

	for _, t := range live {
		t.resolve(taskOutcome{resp: &Response{
			Data:      floatData(t.data),
			BatchSize: rows,
			TraceID:   t.spans.TraceID(),
		}})
	}
}

// transformContiguous dispatches a contiguous multi-row payload to the
// shape-specific host-parallel batch driver.
func transformContiguous(plan rowPlan, data []complex128, count int, sign fft.Sign) {
	switch p := plan.(type) {
	case *fft.Plan:
		p.TransformBatch(data, count, sign)
	case *fft.Plan2D:
		p.TransformBatch(data, count, sign)
	case *fft.Plan3D:
		p.TransformBatch(data, count, sign)
	}
}

// runPipeline executes one cost-mode pipeline simulation. The request's
// engine name wins; a request without one runs on the server's configured
// default. The response and the fftxd_pipeline_runs_total metric report the
// engine that actually executed — the resolved one when "auto" was asked.
func (s *Server) runPipeline(t *task) {
	p := t.req.Pipeline
	name := p.Engine
	if name == "" {
		name = s.cfg.DefaultEngine
	}
	eng, err := engineByName(name)
	if err != nil {
		t.fail(400, 0, "%v", err)
		return
	}
	start := time.Now()
	execSpan := t.root.BeginAt("exec", start)
	defer execSpan.End()
	res, err := fftx.Run(fftx.Config{
		Ecut:   p.Ecut,
		Alat:   p.Alat,
		NB:     p.NB,
		Ranks:  p.Ranks,
		NTG:    p.NTG,
		Engine: eng,
		Mode:   fftx.ModeCost,
		Seed:   p.Seed,
	})
	if err != nil {
		t.fail(400, 0, "pipeline run rejected: %v", err)
		return
	}
	mBatches.With("pipeline").Inc()
	mExecSeconds.With("pipeline").Observe(time.Since(start).Seconds())
	mPipelineRuns.With(res.Engine.String()).Inc()
	execSpan.SetAttr("engine", res.Engine.String())

	// Pipeline profiles record the simulated runtime and the engine's
	// per-stage virtual-second breakdown — the measured side the cost-model
	// selector (ROADMAP item 3) compares its predictions against.
	phases := res.StageSeconds()
	s.profiles.Record(
		profiles.Key{Shape: pipelineShape(p), Engine: res.Engine.String(), Mode: "cost"},
		res.Runtime, phases, t.spans.TraceID())
	mProfileKeys.Set(float64(s.profiles.Len()))

	t.resolve(taskOutcome{resp: &Response{
		Runtime:   res.Runtime,
		Engine:    res.Engine.String(),
		BatchSize: 1,
		TraceID:   t.spans.TraceID(),
	}})
}

// pipelineShape is the profile-store shape descriptor of a pipeline request:
// the workload parameters that determine its cost.
func pipelineShape(p *PipelineRequest) string {
	return pipeRouteKey(p.Ecut, p.NB, p.Ranks, p.NTG)
}
