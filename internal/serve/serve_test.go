package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/fft"
	"repro/internal/metrics"
)

// startServer boots a server on an ephemeral port and tears it down with the
// test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// postJSON posts a request and returns status, parsed body and headers.
func postJSON(t *testing.T, url string, req *Request) (int, *Response, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, resp.Header
	}
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("status %d, unparseable body %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, &out, resp.Header
}

// randomData fills an interleaved re,im payload deterministically per seed.
func randomData(seed int64, elements int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, 2*elements)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return data
}

// referenceTransform applies the plan directly to a copy of the payload.
func referenceTransform(dims []int, data []float64, sign fft.Sign, scale bool) []float64 {
	x := make([]complex128, len(data)/2)
	for i := range x {
		x[i] = complex(data[2*i], data[2*i+1])
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	var plan rowPlan
	switch len(dims) {
	case 1:
		plan = fft.NewPlan(dims[0])
	case 2:
		plan = fft.NewPlan2D(dims[0], dims[1])
	case 3:
		plan = fft.NewPlan3D(dims[0], dims[1], dims[2])
	}
	for r := 0; r < len(x)/n; r++ {
		plan.Transform(x[r*n:(r+1)*n], sign)
	}
	if scale {
		fft.Scale(x, 1/float64(n))
	}
	out := make([]float64, len(data))
	for i, v := range x {
		out[2*i] = real(v)
		out[2*i+1] = imag(v)
	}
	return out
}

func assertClose(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("component %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

func TestServeTransformJSON(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	for _, dims := range [][]int{{64}, {12, 10}, {8, 6, 4}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		req := &Request{Dims: dims, Batch: 2, Data: randomData(int64(n), 2*n)}
		code, resp, _ := postJSON(t, s.URL(), req)
		if code != http.StatusOK {
			t.Fatalf("dims %v: status %d", dims, code)
		}
		if resp.BatchSize < 2 {
			t.Errorf("dims %v: batch size %d < request batch 2", dims, resp.BatchSize)
		}
		assertClose(t, resp.Data, referenceTransform(dims, req.Data, fft.Forward, false))
	}
}

func TestServeScaledBackwardInverts(t *testing.T) {
	s := startServer(t, Config{})
	dims := []int{6, 5, 4}
	orig := randomData(7, 120)
	code, fwd, _ := postJSON(t, s.URL(), &Request{Dims: dims, Data: append([]float64(nil), orig...)})
	if code != http.StatusOK {
		t.Fatalf("forward: status %d", code)
	}
	code, back, _ := postJSON(t, s.URL(), &Request{Dims: dims, Sign: 1, Scale: true, Data: fwd.Data})
	if code != http.StatusOK {
		t.Fatalf("backward: status %d", code)
	}
	assertClose(t, back.Data, orig)
}

func TestServeTransformBinary(t *testing.T) {
	s := startServer(t, Config{})
	dims := []int{5, 4, 3}
	req := &Request{Dims: dims, Batch: 2, Data: randomData(3, 2*60)}
	wire, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.URL()+"/fft", "application/octet-stream", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("binary request answered with Content-Type %q", ct)
	}
	dec, err := DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.BatchSize < 2 {
		t.Errorf("batch size %d < request batch 2", dec.BatchSize)
	}
	assertClose(t, dec.Data, referenceTransform(dims, req.Data, fft.Forward, false))
}

func TestServePipeline(t *testing.T) {
	s := startServer(t, Config{})
	code, resp, _ := postJSON(t, s.URL(), &Request{
		Op:       OpPipeline,
		Pipeline: &PipelineRequest{Ecut: 30, Alat: 10, NB: 8, Ranks: 2, NTG: 2},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Runtime <= 0 {
		t.Errorf("simulated runtime %g, want > 0", resp.Runtime)
	}
	if resp.Engine != "task-iter" {
		t.Errorf("engine %q, want default task-iter", resp.Engine)
	}
}

// TestServePipelineEngineSelection drives engine choice end to end: an
// explicit per-request engine, the auto selector resolving to a concrete
// engine, a server-level default, and the binary FXP1/FXQ1 frames.
func TestServePipelineEngineSelection(t *testing.T) {
	concrete := map[string]bool{
		"original": true, "task-steps": true, "task-iter": true, "task-combined": true,
		"dataflow": true,
	}
	pipe := func(engine string) *Request {
		return &Request{
			Op:       OpPipeline,
			Pipeline: &PipelineRequest{Ecut: 30, Alat: 10, NB: 8, Ranks: 2, NTG: 2, Engine: engine},
		}
	}

	s := startServer(t, Config{})
	code, resp, _ := postJSON(t, s.URL(), pipe("original"))
	if code != http.StatusOK || resp.Engine != "original" {
		t.Errorf("explicit engine: status %d engine %q, want 200 original", code, resp.Engine)
	}
	code, resp, _ = postJSON(t, s.URL(), pipe("auto"))
	if code != http.StatusOK || !concrete[resp.Engine] {
		t.Errorf("auto: status %d engine %q, want 200 and a concrete engine", code, resp.Engine)
	}

	// The same request over the binary wire format: the FXQ1 response frame
	// carries the resolved engine too.
	wire, err := EncodeRequest(pipe("auto"))
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(s.URL()+"/fft", "application/octet-stream", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary auto: status %d: %s", httpResp.StatusCode, raw)
	}
	dec, err := DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !concrete[dec.Engine] || dec.Runtime <= 0 {
		t.Errorf("binary auto: engine %q runtime %g, want a concrete engine and runtime > 0", dec.Engine, dec.Runtime)
	}

	// A server-level default applies when the request names no engine.
	sd := startServer(t, Config{DefaultEngine: "original"})
	code, resp, _ = postJSON(t, sd.URL(), pipe(""))
	if code != http.StatusOK || resp.Engine != "original" {
		t.Errorf("server default: status %d engine %q, want 200 original", code, resp.Engine)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := startServer(t, Config{MaxElements: 256})
	url := s.URL() + "/fft"

	if resp, err := http.Get(url); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET: status %d, want 405", resp.StatusCode)
		}
	}

	post := func(body string) int {
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Errorf("error reply without JSON error body (%v)", err)
		}
		return resp.StatusCode
	}
	cases := []string{
		`{`,
		`{"op":"transmogrify"}`,
		`{"dims":[4],"data":[1]}`,
		`{"dims":[4,4,4,4],"data":[]}`,
		`{"dims":[1024],"batch":2,"data":[]}`,
		`{"unknown_field":1}`,
		`{"op":"pipeline","pipeline":{"ecut":30,"alat":10,"nb":7,"ranks":2,"ntg":2}}`,
		`{"op":"pipeline","pipeline":{"ecut":30,"alat":10,"nb":8,"ranks":2,"ntg":2,"engine":"warp"}}`,
	}
	for _, body := range cases {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, code)
		}
	}
}

func TestServeHealthz(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("status %v, want ok", body["status"])
	}
}

// TestServeOverloadBackpressure saturates a 1-worker, 1-slot queue and
// checks the overflow is rejected with 503 + Retry-After while the admitted
// requests still succeed.
func TestServeOverloadBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, MaxBatch: 1})
	s.cfg.ExecDelay = 100 * time.Millisecond
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	const clients = 8
	dims := []int{16}
	var wg sync.WaitGroup
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, hdr := postJSON(t, s.URL(), &Request{Dims: dims, Data: randomData(int64(i), 16)})
			codes[i] = code
			retryAfter[i] = hdr.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if retryAfter[i] == "" {
				t.Errorf("503 reply %d without Retry-After", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, code)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if rejected == 0 {
		t.Error("no request was shed under overload")
	}
}

// TestServeDeadlineExpiry checks a request whose queueing deadline cannot be
// met is rejected with 503 rather than served late.
func TestServeDeadlineExpiry(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	s.cfg.ExecDelay = 150 * time.Millisecond
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, s.URL(), &Request{Dims: []int{16}, Data: randomData(1, 16)})
	}()
	time.Sleep(30 * time.Millisecond) // first request is in flight on the only worker

	code, _, hdr := postJSON(t, s.URL(), &Request{
		Dims: []int{16}, Data: randomData(2, 16), DeadlineMillis: 10,
	})
	if code != http.StatusServiceUnavailable {
		t.Errorf("deadline-doomed request: status %d, want 503", code)
	} else if hdr.Get("Retry-After") == "" {
		t.Error("503 reply without Retry-After")
	}
	wg.Wait()
}

// TestServeBatchingCoalesces fires same-shape requests into one batch window
// and checks (a) at least some were coalesced and (b) every client still
// got the transform of its own payload — no cross-request aliasing.
func TestServeBatchingCoalesces(t *testing.T) {
	s := startServer(t, Config{Workers: 1, MaxBatch: 16, BatchWindow: 50 * time.Millisecond})
	const clients = 8
	dims := []int{4, 4, 4}
	var wg sync.WaitGroup
	batchSizes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := randomData(int64(100+i), 64)
			code, resp, _ := postJSON(t, s.URL(), &Request{Dims: dims, Data: data})
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			batchSizes[i] = resp.BatchSize
			assertClose(t, resp.Data, referenceTransform(dims, data, fft.Forward, false))
		}(i)
	}
	wg.Wait()

	max := 0
	for _, b := range batchSizes {
		if b > max {
			max = b
		}
	}
	if max < 2 {
		t.Errorf("no coalescing observed: batch sizes %v", batchSizes)
	}
}

// TestServeMetricsExposed checks the per-endpoint and per-shape fftxd_*
// families appear on a telemetry mux wired into the server.
func TestServeMetricsExposed(t *testing.T) {
	s := startServer(t, Config{})
	if code, _, _ := postJSON(t, s.URL(), &Request{Dims: []int{8, 8}, Data: randomData(1, 64)}); code != http.StatusOK {
		t.Fatalf("priming request: status %d", code)
	}
	snap := metrics.Default().Gather()
	for _, name := range []string{
		"fftxd_requests_total", "fftxd_request_seconds", "fftxd_shape_requests_total",
		"fftxd_batches_total", "fftxd_batch_rows", "fftxd_batch_exec_seconds",
		"fftxd_queue_depth", "fftxd_plan_builds", "fftxd_draining",
	} {
		if snap.Find(name) == nil {
			t.Errorf("metric family %s not registered", name)
		}
	}
	fam := snap.Find("fftxd_shape_requests_total")
	found := false
	for _, series := range fam.Series {
		for _, l := range series.Labels {
			if l.Value == "f2d:8x8" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no f2d:8x8 shape series after a 2-D request")
	}
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
