package serve

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Admission control and the batching dispatcher.
//
// Every admitted request becomes a task on the bounded queue. A dispatcher
// goroutine pulls tasks and coalesces same-shape transforms into groups: a
// group flushes to the worker pool when it reaches MaxBatch rows or when
// its BatchWindow expires, whichever comes first — the serving-side
// analogue of the paper's per-iteration task grouping (many independent
// same-shape kernels become one scheduled unit). Pipeline tasks and
// servers with batching disabled dispatch immediately as singleton groups.
//
// Admission rejects with 503 + Retry-After instead of queueing unboundedly:
// when the queue is full, when the request's deadline cannot be met, and
// while the server drains. On drain, tasks already handed to the worker
// pool complete; everything still queued or pending in a batch window is
// rejected.

// task is one admitted request travelling through the queue.
type task struct {
	req  *Request
	key  string       // batching key (transforms); "" dispatches immediately
	data []complex128 // decoded transform payload
	rows int          // transforms carried (req.Batch for transforms, 1 otherwise)

	enq      time.Time
	deadline time.Time // zero = none

	// Tracing handles of a sampled request (all no-ops when untraced). The
	// HTTP handler owns the root span; queueSpan is handed off to the
	// dispatcher and coalesceSpan from the dispatcher to the worker as the
	// task crosses goroutines — each stage Ends the span of the wait it
	// terminates.
	spans        *trace.SpanSet
	root         trace.SpanRef
	queueSpan    trace.SpanRef
	coalesceSpan trace.SpanRef

	// done receives exactly one outcome; it is buffered so resolution
	// never blocks on a departed client.
	done chan taskOutcome
}

// taskOutcome resolves one task: a response or a status error.
type taskOutcome struct {
	resp *Response
	err  *statusError
}

// statusError is an error with an HTTP status; RetryAfter > 0 adds a
// Retry-After header (the backpressure signal).
type statusError struct {
	code       int
	retryAfter int // seconds
	msg        string
}

func (e *statusError) Error() string { return e.msg }

// group is a batch of same-key tasks executed as one unit.
type group struct {
	key   string
	tasks []*task
}

// rows counts the transforms of the whole group.
func (g *group) rows() int {
	n := 0
	for _, t := range g.tasks {
		n += t.rows
	}
	return n
}

// newTask builds the task of a validated request.
func newTask(req *Request) *task {
	t := &task{
		req:  req,
		enq:  time.Now(),
		rows: 1,
		done: make(chan taskOutcome, 1),
	}
	if req.Op == OpTransform {
		t.key = req.ShapeKey()
		t.data = req.complexData()
		t.rows = req.Batch
		mShapeReqs.With(t.key).Inc()
	}
	if req.DeadlineMillis > 0 {
		t.deadline = t.enq.Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	return t
}

// expired reports whether the task's deadline has passed at now.
func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// resolve delivers the outcome (exactly once per task).
func (t *task) resolve(out taskOutcome) { t.done <- out }

func (t *task) fail(code int, retryAfter int, format string, args ...any) {
	t.resolve(taskOutcome{err: &statusError{code: code, retryAfter: retryAfter, msg: fmt.Sprintf(format, args...)}})
}

// admit places a task on the bounded queue, or explains the rejection.
func (s *Server) admit(t *task) *statusError {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		mRejects.With("draining").Inc()
		return &statusError{code: 503, retryAfter: s.retryAfter(), msg: "server is draining"}
	}
	if t.expired(time.Now()) {
		mRejects.With("deadline").Inc()
		return &statusError{code: 503, retryAfter: s.retryAfter(), msg: "deadline expired before admission"}
	}
	select {
	case s.queue <- t:
		mQueueDepth.Add(1)
		return nil
	default:
		mRejects.With("full").Inc()
		return &statusError{code: 503, retryAfter: s.retryAfter(),
			msg: fmt.Sprintf("queue full (%d requests waiting)", s.cfg.QueueDepth)}
	}
}

// retryAfter estimates how long a rejected client should back off, in whole
// seconds: one batch window per queued request spread over the workers,
// floored at 1 s — deliberately coarse, it is a hint, not a promise.
func (s *Server) retryAfter() int {
	est := time.Duration(s.cfg.QueueDepth/s.cfg.Workers+1) * s.cfg.BatchWindow
	if sec := int(est / time.Second); sec > 1 {
		return sec
	}
	return 1
}

// batching reports whether the server coalesces transform requests at all.
func (s *Server) batching() bool {
	return s.cfg.MaxBatch > 1 && s.cfg.BatchWindow > 0
}

// dispatch is the dispatcher goroutine: it owns the pending-group map and
// is the only sender on s.batches.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	pending := map[string]*group{}

	flush := func(key string) {
		g := pending[key]
		if g == nil {
			return
		}
		delete(pending, key)
		s.batches <- g
	}

	for {
		select {
		case t, ok := <-s.queue:
			if !ok {
				// Drain: everything not yet handed to the workers is
				// rejected; batches already queued for execution complete.
				for key, g := range pending {
					delete(pending, key)
					for _, t := range g.tasks {
						mQueueDepth.Add(-1)
						mRejects.With("draining").Inc()
						t.coalesceSpan.End()
						t.fail(503, s.retryAfter(), "server is draining")
					}
				}
				close(s.batches)
				return
			}
			t.queueSpan.End()
			if s.Draining() {
				// Admitted before the drain began but not yet handed to the
				// worker pool: rejected, like everything still queued.
				mQueueDepth.Add(-1)
				mRejects.With("draining").Inc()
				t.fail(503, s.retryAfter(), "server is draining")
				continue
			}
			if t.expired(time.Now()) {
				mQueueDepth.Add(-1)
				mRejects.With("deadline").Inc()
				t.fail(503, s.retryAfter(), "deadline expired while queued")
				continue
			}
			// The coalesce span covers batch-window residency plus the wait
			// for a free worker; runBatch ends it.
			t.coalesceSpan = t.root.Begin("coalesce")
			if t.key == "" || !s.batching() {
				s.batches <- &group{key: t.key, tasks: []*task{t}}
				continue
			}
			g := pending[t.key]
			if g == nil {
				g = &group{key: t.key}
				pending[t.key] = g
				// Arm the window timer for this group. The timer goroutine
				// abandons the send once the dispatcher has exited.
				key := t.key
				time.AfterFunc(s.cfg.BatchWindow, func() {
					select {
					case s.flushCh <- key:
					case <-s.dispatcherDone:
					}
				})
			}
			g.tasks = append(g.tasks, t)
			if g.rows() >= s.cfg.MaxBatch {
				flush(t.key)
			}
		case key := <-s.flushCh:
			flush(key)
		}
	}
}
