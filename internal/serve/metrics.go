package serve

import (
	"repro/internal/metrics"
)

// fftxd_* metric families, registered on the default registry so the
// standard telemetry mux (/metrics) exposes them beside the simulator's
// fftx_* families. Wall-clock latencies use buckets from 10 µs to 10 s.
var (
	serveBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

	mReqTotal = metrics.Default().CounterVec("fftxd_requests_total",
		"requests finished, by endpoint and HTTP status code", "endpoint", "code")
	mReqSeconds = metrics.Default().HistogramVec("fftxd_request_seconds",
		"wall-clock request latency (admission to reply), by endpoint", serveBuckets, "endpoint")
	mRejects = metrics.Default().CounterVec("fftxd_rejects_total",
		"admission rejections, by reason (full|deadline|draining)", "reason")
	mQueueDepth = metrics.Default().Gauge("fftxd_queue_depth",
		"requests admitted but not yet executing")
	mInflight = metrics.Default().Gauge("fftxd_inflight_requests",
		"requests currently executing on the worker pool")
	mShapeReqs = metrics.Default().CounterVec("fftxd_shape_requests_total",
		"transform requests, by shape key", "shape")
	mBatches = metrics.Default().CounterVec("fftxd_batches_total",
		"executed batches, by shape key", "shape")
	mBatchRows = metrics.Default().HistogramVec("fftxd_batch_rows",
		"transforms coalesced per executed batch, by shape key",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}, "shape")
	mExecSeconds = metrics.Default().HistogramVec("fftxd_batch_exec_seconds",
		"wall-clock batch execution time, by shape key", serveBuckets, "shape")
	mPipelineRuns = metrics.Default().CounterVec("fftxd_pipeline_runs_total",
		"pipeline simulations executed, by the engine that actually ran (auto resolved)", "engine")
	mPlanBuilds = metrics.Default().Gauge("fftxd_plan_builds",
		"cumulative plan constructions of the server's shared plan cache")
	mDrainState = metrics.Default().Gauge("fftxd_draining",
		"1 while the server is draining, else 0")
	mTraced = metrics.Default().CounterVec("fftxd_traced_requests_total",
		"requests that recorded a span tree, by trace-ID source (client|sampled)", "source")
	mProfileKeys = metrics.Default().Gauge("fftxd_profile_keys",
		"distinct shape x engine x mode keys in the performance profile store")
)
