package serve

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// Live serving introspection: the in-flight/recent request log behind
// /debug/fftx/requests and the profile-store view behind
// /debug/fftx/profiles. Both are JSON snapshots cheap enough to curl against
// a loaded server; fftxtrace -requests renders the former as span-tree
// timelines.

// reqRecord tracks one traced request from admission to response. Fields
// past `start` are written once by requestLog.finish under the log's mutex.
type reqRecord struct {
	seq      uint64
	spans    *trace.SpanSet
	op       string
	shape    string
	start    time.Time
	status   int
	latency  float64
	inflight bool
}

// requestLog holds the traced requests currently in flight plus a bounded
// ring of recently finished ones. A nil log (and nil records, which is what
// untraced requests carry) is a no-op.
type requestLog struct {
	mu       sync.Mutex
	capacity int
	seq      uint64
	inflight map[uint64]*reqRecord
	recent   []*reqRecord // oldest first, bounded by capacity
}

func newRequestLog(capacity int) *requestLog {
	return &requestLog{capacity: capacity, inflight: map[uint64]*reqRecord{}}
}

// start registers a traced request and returns its record (nil for untraced
// requests, which makes every later call on it a no-op).
func (l *requestLog) start(spans *trace.SpanSet, op, shape string, at time.Time) *reqRecord {
	if l == nil || spans == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	rec := &reqRecord{seq: l.seq, spans: spans, op: op, shape: shape, start: at, inflight: true}
	l.inflight[rec.seq] = rec
	return rec
}

// finish moves a record from the in-flight set to the recent ring.
func (l *requestLog) finish(rec *reqRecord, status int, latency time.Duration) {
	if l == nil || rec == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.inflight, rec.seq)
	rec.inflight = false
	rec.status = status
	rec.latency = latency.Seconds()
	l.recent = append(l.recent, rec)
	if len(l.recent) > l.capacity {
		l.recent = l.recent[len(l.recent)-l.capacity:]
	}
}

// RequestView is one entry of the /debug/fftx/requests payload.
type RequestView struct {
	Seq        uint64          `json:"seq"`
	TraceID    string          `json:"trace_id"`
	Op         string          `json:"op"`
	Shape      string          `json:"shape,omitempty"`
	StartNS    int64           `json:"start_ns"`
	Status     int             `json:"status,omitempty"`
	LatencySec float64         `json:"latency_s,omitempty"`
	InFlight   bool            `json:"in_flight"`
	Spans      *trace.SpanTree `json:"spans"`
}

// RequestDump is the /debug/fftx/requests payload: traced requests currently
// executing plus the most recent finished ones, newest first.
type RequestDump struct {
	Inflight []RequestView `json:"inflight"`
	Recent   []RequestView `json:"recent"`
}

func (l *requestLog) dump() RequestDump {
	l.mu.Lock()
	inflight := make([]*reqRecord, 0, len(l.inflight))
	for _, rec := range l.inflight {
		inflight = append(inflight, rec)
	}
	recent := append([]*reqRecord(nil), l.recent...)
	l.mu.Unlock()

	sort.Slice(inflight, func(i, j int) bool { return inflight[i].seq < inflight[j].seq })
	out := RequestDump{Inflight: []RequestView{}, Recent: []RequestView{}}
	for _, rec := range inflight {
		out.Inflight = append(out.Inflight, rec.view())
	}
	for i := len(recent) - 1; i >= 0; i-- { // newest first
		out.Recent = append(out.Recent, recent[i].view())
	}
	return out
}

func (rec *reqRecord) view() RequestView {
	return RequestView{
		Seq:        rec.seq,
		TraceID:    rec.spans.TraceID(),
		Op:         rec.op,
		Shape:      rec.shape,
		StartNS:    rec.start.UnixNano(),
		Status:     rec.status,
		LatencySec: rec.latency,
		InFlight:   rec.inflight,
		Spans:      rec.spans.Tree(),
	}
}

// handleDebugRequests serves the span timelines of in-flight and recent
// traced requests.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reqLog.dump())
}

// ProfileDump is the /debug/fftx/profiles payload.
type ProfileDump struct {
	// Path is the backing file ("" for memory-only stores).
	Path string `json:"path,omitempty"`
	// Count is the number of distinct (shape, engine, mode) keys.
	Count int `json:"count"`
	// Profiles is the sorted per-shape measurement table.
	Profiles any `json:"profiles"`
}

// handleDebugProfiles serves the per-shape performance profile store.
func (s *Server) handleDebugProfiles(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ProfileDump{
		Path:     s.profiles.Path(),
		Count:    s.profiles.Len(),
		Profiles: s.profiles.Snapshot(),
	})
}

// logRequest emits the structured completion line of a traced request: Debug
// for successes, Warn for error statuses, always keyed by trace ID so log
// lines join to /debug/fftx/requests and to histogram exemplars.
func (s *Server) logRequest(spans *trace.SpanSet, op, shape string, code int, latency time.Duration) {
	if spans == nil {
		return
	}
	level := slog.LevelDebug
	if code >= 400 {
		level = slog.LevelWarn
	}
	ctx := context.Background()
	if !s.logger.Enabled(ctx, level) {
		return
	}
	attrs := []any{
		"trace_id", spans.TraceID(),
		"op", op,
		"status", code,
		"latency_ms", float64(latency.Microseconds()) / 1e3,
	}
	if shape != "" {
		attrs = append(attrs, "shape", shape)
	}
	s.logger.Log(ctx, level, "fft request", attrs...)
}
