package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPeekRouteJSON: the route peek must agree with the full decoder's
// ShapeKey on every request class without validating the payload.
func TestPeekRouteJSON(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		key     string
		traceID string
	}{
		{"3d forward", `{"op":"transform","dims":[16,16,16],"data":[1,2]}`, "f3d:16x16x16", ""},
		{"1d default op", `{"dims":[256],"data":[1,2]}`, "f1d:256", ""},
		{"backward scaled", `{"dims":[8,8],"sign":1,"scale":true,"data":[1,2]}`, "b2d:8x8:s", ""},
		{"traced", `{"dims":[32],"trace_id":"0123456789abcdef","data":[1,2]}`, "f1d:32", "0123456789abcdef"},
		{"pipeline", `{"op":"pipeline","pipeline":{"ecut":25,"alat":10.26,"nb":128,"ranks":4,"ntg":2}}`,
			"pipe:ecut25:nb128:r4xt2", ""},
		{"pipeline implicit op", `{"pipeline":{"ecut":12.5,"nb":64,"ranks":2,"ntg":1}}`,
			"pipe:ecut12.5:nb64:r2xt1", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key, traceID, err := PeekRoute([]byte(tc.body), false)
			if err != nil {
				t.Fatalf("PeekRoute: %v", err)
			}
			if key != tc.key || traceID != tc.traceID {
				t.Errorf("PeekRoute = (%q, %q), want (%q, %q)", key, traceID, tc.key, tc.traceID)
			}
		})
	}

	for _, bad := range []string{`{`, `{"op":"transform"}`, `{"dims":[1,2,3,4],"data":[1,2]}`} {
		if key, _, err := PeekRoute([]byte(bad), false); err == nil {
			t.Errorf("PeekRoute(%q) = %q, want error", bad, key)
		}
	}
}

// TestPeekRouteBinaryMatchesJSON: both wire formats of the same request
// must produce the same route key, or a cluster would shard a client's
// JSON and binary traffic differently.
func TestPeekRouteBinaryMatchesJSON(t *testing.T) {
	reqs := []*Request{
		{Op: OpTransform, Dims: []int{16, 16, 16}, Batch: 2, Data: make([]float64, 2*2*4096)},
		{Op: OpTransform, Dims: []int{64}, Sign: 1, Scale: true, Data: make([]float64, 128)},
		{Op: OpTransform, Dims: []int{8, 8}, TraceID: "00112233445566aa", Data: make([]float64, 128)},
		{Op: OpPipeline, Pipeline: &PipelineRequest{Ecut: 25, Alat: 10.26, NB: 128, Ranks: 4, NTG: 2}},
		{Op: OpPipeline, Pipeline: &PipelineRequest{Ecut: 12.5, Alat: 10.26, NB: 64, Ranks: 2, NTG: 1},
			TraceID: "ffeeddccbbaa0099"},
	}
	for _, r := range reqs {
		jsonBody, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		binBody, err := EncodeRequest(r)
		if err != nil {
			t.Fatal(err)
		}
		jKey, jTrace, err := PeekRoute(jsonBody, false)
		if err != nil {
			t.Fatalf("JSON peek: %v", err)
		}
		bKey, bTrace, err := PeekRoute(binBody, true)
		if err != nil {
			t.Fatalf("binary peek: %v", err)
		}
		if jKey != bKey || jTrace != bTrace {
			t.Errorf("formats disagree: JSON (%q, %q) vs binary (%q, %q)", jKey, jTrace, bKey, bTrace)
		}
	}

	if _, _, err := PeekRoute([]byte("FXD?this is not a frame"), true); err == nil {
		t.Error("malformed binary frame peeked without error")
	}
}

// TestHealthzBody: /healthz carries the machine-readable worker state the
// cluster prober consumes — and keeps the 200/503 status contract.
func TestHealthzBody(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", Workers: 2, TraceSample: 0})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	get := func() (int, Health) {
		resp, err := http.Get(s.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var h Health
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatalf("healthz body %q: %v", raw, err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("fresh server healthz = %d %q, want 200 ok", code, h.Status)
	}
	if h.Workers != 2 || h.QueueCap == 0 {
		t.Errorf("healthz = %+v, want workers and queue capacity reported", h)
	}
	if len(h.Shapes) != 0 {
		t.Errorf("fresh server already claims shapes %v", h.Shapes)
	}

	// Serving a transform records its shape.
	body, _ := json.Marshal(&Request{Dims: []int{8, 8}, Data: make([]float64, 128)})
	resp, err := http.Post(s.URL()+"/fft", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, h = get(); len(h.Shapes) != 1 || h.Shapes[0] != "f2d:8x8" {
		t.Errorf("shapes = %v after serving f2d:8x8", h.Shapes)
	}

	// Draining flips the body and the status code together.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is closed after drain; exercise the handler directly.
	hh, hcode := s.health()
	if hcode != http.StatusServiceUnavailable || hh.Status != "draining" {
		t.Errorf("drained health = %d %q, want 503 draining", hcode, hh.Status)
	}
}
