package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestServeGracefulShutdown exercises the drain contract end to end:
//
//   - requests already executing (or handed to the worker pool) complete
//     with 200,
//   - requests still queued behind them are rejected with 503 + Retry-After,
//   - the listener closes once the in-flight exchanges finish,
//   - and no server goroutines outlive the drain.
func TestServeGracefulShutdown(t *testing.T) {
	// Warm everything that legitimately persists beyond one server: the
	// par worker pool (its goroutines never exit by design) and the HTTP
	// client transport. Only then is the goroutine count a usable baseline.
	warm := startServer(t, Config{Workers: 1})
	if code, _, _ := postJSON(t, warm.URL(), &Request{Dims: []int{8, 8}, Data: randomData(1, 64)}); code != http.StatusOK {
		t.Fatalf("warmup request: status %d", code)
	}
	ctx, cancel := contextWithTimeout(5 * time.Second)
	if err := warm.Shutdown(ctx); err != nil {
		t.Fatalf("warmup shutdown: %v", err)
	}
	cancel()
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// One slow worker, batching off: the first requests occupy the worker
	// and the batch buffer, the rest stay queued when the drain begins.
	s := New(Config{Workers: 1, QueueDepth: 8, MaxBatch: 1})
	s.cfg.ExecDelay = 250 * time.Millisecond
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	const clients = 5
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, hdr := postJSON(t, s.URL(), &Request{Dims: []int{16}, Data: randomData(int64(i), 16)})
			codes[i] = code
			retryAfter[i] = hdr.Get("Retry-After")
		}(i)
		time.Sleep(20 * time.Millisecond) // stagger so admission order is stable
	}
	time.Sleep(30 * time.Millisecond) // all five admitted, first one executing

	addr := s.Addr()
	ctx, cancel = contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if retryAfter[i] == "" {
				t.Errorf("drain 503 reply %d without Retry-After", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d during drain", i, code)
		}
	}
	if ok == 0 {
		t.Error("no in-flight request completed across the drain")
	}
	if rejected == 0 {
		t.Error("no queued request was rejected by the drain")
	}
	if ok+rejected != clients {
		t.Errorf("%d replies accounted for, want %d", ok+rejected, clients)
	}

	// The listener is gone.
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting connections after shutdown")
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}

	// No server goroutines survive (the par pool was warmed into the
	// baseline; allow scheduler slack for runtime bookkeeping goroutines).
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainingRejectsNewRequests checks admission refuses fresh work the
// moment the drain begins, and /healthz flips to 503 so load balancers stop
// routing.
func TestDrainingRejectsNewRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is closed after a drain, so exercise admission directly.
	if serr := s.admit(newTask(&Request{Op: OpTransform, Dims: []int{4}, Batch: 1, Sign: -1, Data: make([]float64, 8)})); serr == nil {
		t.Fatal("admission accepted a task after drain")
	} else if serr.code != http.StatusServiceUnavailable || serr.retryAfter <= 0 {
		t.Errorf("post-drain rejection = %d retry %d, want 503 with Retry-After", serr.code, serr.retryAfter)
	}
	if !s.Draining() {
		t.Error("Draining() false after shutdown")
	}
}

// TestHealthzDraining drives the healthz flip through a server whose drain
// is held open by a slow in-flight batch.
func TestHealthzDraining(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1})
	s.cfg.ExecDelay = 300 * time.Millisecond
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	url := s.URL()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(&Request{Dims: []int{16}, Data: randomData(1, 16)})
		resp, err := http.Post(url+"/fft", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // request in flight on the worker

	done := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // drain begun, worker still busy

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", resp.StatusCode)
	}

	if err := <-done; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	wg.Wait()
}
