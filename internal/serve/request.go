// Package serve is the network-facing FFT serving subsystem (the fftxd
// daemon): an HTTP service that accepts 1-D/2-D/3-D transform requests and
// full-pipeline (fftx.Run-shaped) simulation requests, executes them on a
// bounded worker pool, shares one fft.Cache of plans across all requests
// and coalesces same-shape requests into batches — the paper's
// per-iteration task grouping applied to serving: grouping transforms of
// one shape amortizes plan lookup and twiddle-table reuse and turns many
// small independent kernels into one host-parallel fan-out.
//
// The subsystem has four layers:
//
//   - request.go / wire.go — the JSON and length-prefixed binary codecs and
//     request validation (shape limits, finiteness; decoders never panic).
//   - batch.go — admission control (bounded queue, deadline- and
//     drain-aware rejection with Retry-After) and the batching dispatcher
//     that groups same-shape requests inside a short window.
//   - exec.go — batch execution on the plan cache via the host-parallel
//     fft batch drivers, and cost-mode fftx.Run for pipeline requests.
//   - serve.go — the HTTP server: /fft, /healthz, plus the standard
//     telemetry mux (/metrics, /debug/vars, /debug/pprof) and graceful
//     drain on shutdown.
//
// Handlers here run on wall-clock host time and must never touch the
// simulator's virtual-time runtimes directly; the fftxvet handlerbody rule
// enforces that (pipeline requests reach vtime only through fftx.Run, which
// owns a complete simulation per call).
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/fft"
	"repro/internal/fftx"
	"repro/internal/trace"
)

// Op selects what a request asks the server to do.
const (
	// OpTransform is an in-place complex FFT of one or more equally-shaped
	// arrays.
	OpTransform = "transform"
	// OpPipeline is a full FFTXlib pipeline simulation (fftx.Run in cost
	// mode): the request carries the workload parameters, the response the
	// simulated runtime.
	OpPipeline = "pipeline"
)

// DefaultMaxElements bounds the total complex elements of one transform
// request (dims product × batch): 2^22 elements = 64 MiB of complex128.
const DefaultMaxElements = 1 << 22

// maxPipelineLanes bounds the simulated hardware occupancy one pipeline
// request may ask for, so a single request cannot allocate an arbitrarily
// large simulation. maxPipelineBands bounds the band count the same way.
const (
	maxPipelineLanes = 1024
	maxPipelineBands = 1 << 16
)

// Request is one FFT service request. The JSON form posts to /fft with
// Content-Type application/json; the equivalent binary form (transforms
// only) uses the length-prefixed wire format of wire.go with Content-Type
// application/octet-stream.
type Request struct {
	// Op is OpTransform (default when Data is present) or OpPipeline.
	Op string `json:"op,omitempty"`

	// Dims are the transform dimensions, outermost first: [n] for 1-D,
	// [nx, ny] for row-major planes, [nx, ny, nz] for z-fastest boxes
	// (OpTransform).
	Dims []int `json:"dims,omitempty"`
	// Sign is the transform direction: -1 forward, +1 backward (default
	// forward).
	Sign int `json:"sign,omitempty"`
	// Scale applies the 1/N normalization after the transform.
	Scale bool `json:"scale,omitempty"`
	// Batch is the number of equally-shaped transforms carried in Data
	// (default 1). All of them share one plan and one host-parallel
	// fan-out.
	Batch int `json:"batch,omitempty"`
	// Data holds batch × product(Dims) complex values as interleaved
	// re,im float64 pairs.
	Data []float64 `json:"data,omitempty"`

	// Pipeline carries the workload of an OpPipeline request.
	Pipeline *PipelineRequest `json:"pipeline,omitempty"`

	// DeadlineMillis is the client's tolerance for queueing: if the request
	// cannot start executing within this many milliseconds of arrival, the
	// server rejects it with 503 + Retry-After instead of holding it (0 =
	// no deadline).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`

	// TraceID, when set, must be a 16-hex-character request trace ID. A
	// request carrying one is always traced (client-requested tracing); the
	// server echoes it in the response and keys the span tree under it at
	// /debug/fftx/requests. Requests without one may still be sampled, in
	// which case the response reports the server-assigned ID.
	TraceID string `json:"trace_id,omitempty"`
}

// PipelineRequest mirrors the fftx.Config surface exposed to the network.
// Runs are always cost-mode: the full problem sizes of the paper simulate
// in milliseconds without allocating band data.
type PipelineRequest struct {
	Ecut  float64 `json:"ecut"`
	Alat  float64 `json:"alat"`
	NB    int     `json:"nb"`
	Ranks int     `json:"ranks"`
	NTG   int     `json:"ntg"`
	// Engine selects the scheduling per request:
	// original|task-steps|task-iter|task-combined|dataflow|auto. Empty means the
	// server's configured default (task-iter out of the box); "auto" asks
	// the cost-model selector to pick, and the response's Engine field
	// reports what actually ran.
	Engine string `json:"engine,omitempty"`
	Seed   int    `json:"seed,omitempty"`
}

// Response is the JSON reply of /fft.
type Response struct {
	// Data echoes the transformed payload of an OpTransform request
	// (interleaved re,im).
	Data []float64 `json:"data,omitempty"`
	// BatchSize is the number of transforms the server coalesced into the
	// batch this request rode in (≥ its own Batch; the batching tests and
	// loadgen read it).
	BatchSize int `json:"batch_size,omitempty"`
	// Runtime is the simulated runtime in virtual seconds (OpPipeline).
	Runtime float64 `json:"runtime,omitempty"`
	// Engine echoes the engine that ran (OpPipeline).
	Engine string `json:"engine,omitempty"`
	// TraceID echoes the request's trace ID when the request was traced
	// (client-supplied or server-sampled); loadgen joins client-observed
	// latency to the server-side span tree through it. Traced replies also
	// carry it in the Fftx-Trace-Id response header, which is how
	// binary-transform clients read it.
	TraceID string `json:"trace_id,omitempty"`
}

// errorBody is the JSON error payload of non-2xx replies.
type errorBody struct {
	Error string `json:"error"`
}

// NumElements returns product(Dims), or 0 for invalid dims.
func (r *Request) NumElements() int {
	if len(r.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range r.Dims {
		if d <= 0 || n > DefaultMaxElements/d {
			return 0
		}
		n *= d
	}
	return n
}

// ShapeKey is the batching key: requests with equal keys can execute as one
// batch (same dims, direction and scaling). The key doubles as the "shape"
// metric label, e.g. "f3d:20x20x20" for a forward 3-D transform.
func (r *Request) ShapeKey() string {
	var b strings.Builder
	// Sign is normalized to ±1 by Validate; backward is +1.
	if r.Sign > 0 {
		b.WriteByte('b')
	} else {
		b.WriteByte('f')
	}
	fmt.Fprintf(&b, "%dd:", len(r.Dims))
	for i, d := range r.Dims {
		if i > 0 {
			b.WriteByte('x')
		}
		b.WriteString(strconv.Itoa(d))
	}
	if r.Scale {
		b.WriteString(":s")
	}
	return b.String()
}

// Validate normalizes and checks a decoded request against the server's
// element budget. It returns a client-error description (HTTP 400) on
// violation.
func (r *Request) Validate(maxElements int) error {
	if maxElements <= 0 {
		maxElements = DefaultMaxElements
	}
	if r.TraceID != "" && !trace.ValidTraceID(r.TraceID) {
		return fmt.Errorf("malformed trace_id %q (want %d lowercase hex characters)", r.TraceID, trace.TraceIDLen)
	}
	switch r.Op {
	case "":
		if r.Pipeline != nil {
			r.Op = OpPipeline
		} else {
			r.Op = OpTransform
		}
	case OpTransform, OpPipeline:
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	if r.Op == OpPipeline {
		p := r.Pipeline
		if p == nil {
			return fmt.Errorf("pipeline request without pipeline parameters")
		}
		if _, err := engineByName(p.Engine); err != nil {
			return err
		}
		if p.Ecut <= 0 || p.Alat <= 0 || p.NB <= 0 || p.Ranks <= 0 || p.NTG <= 0 {
			return fmt.Errorf("pipeline parameters must be positive (ecut=%g alat=%g nb=%d ranks=%d ntg=%d)",
				p.Ecut, p.Alat, p.NB, p.Ranks, p.NTG)
		}
		// Per-factor bounds first, so the product cannot overflow.
		if p.Ranks > maxPipelineLanes || p.NTG > maxPipelineLanes || p.Ranks*p.NTG > maxPipelineLanes {
			return fmt.Errorf("pipeline occupies %d×%d lanes, limit %d", p.Ranks, p.NTG, maxPipelineLanes)
		}
		if p.NB > maxPipelineBands {
			return fmt.Errorf("pipeline nb=%d exceeds the %d-band limit", p.NB, maxPipelineBands)
		}
		if p.NB%p.NTG != 0 {
			return fmt.Errorf("nb=%d not divisible by ntg=%d", p.NB, p.NTG)
		}
		return nil
	}
	if len(r.Dims) < 1 || len(r.Dims) > 3 {
		return fmt.Errorf("dims must have 1 to 3 entries, got %d", len(r.Dims))
	}
	n := r.NumElements()
	if n == 0 {
		return fmt.Errorf("invalid dims %v", r.Dims)
	}
	if r.Batch == 0 {
		r.Batch = 1
	}
	if r.Batch < 0 {
		return fmt.Errorf("invalid batch %d", r.Batch)
	}
	if r.Batch > maxElements/n {
		return fmt.Errorf("request of %d×%d elements exceeds the %d-element limit", r.Batch, n, maxElements)
	}
	switch r.Sign {
	case 0, -1:
		r.Sign = -1
	case 1:
	default:
		return fmt.Errorf("sign must be -1 (forward) or +1 (backward), got %d", r.Sign)
	}
	if len(r.Data) != 2*r.Batch*n {
		return fmt.Errorf("data carries %d floats, want %d (batch %d × %d elements × re,im)",
			len(r.Data), 2*r.Batch*n, r.Batch, n)
	}
	for i, v := range r.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("data[%d] is not finite", i)
		}
	}
	return nil
}

// engineByName maps the wire engine name — including "auto" — to the fftx
// engine ("" means task-iter, the paper's best-performing version; servers
// override that via Config.DefaultEngine).
func engineByName(name string) (fftx.Engine, error) {
	if name == "" {
		return fftx.EngineTaskIter, nil
	}
	e, err := fftx.ParseEngine(name)
	if err != nil {
		return 0, fmt.Errorf("unknown engine %q", name)
	}
	return e, nil
}

// complexData reinterprets the request payload as complex values.
func (r *Request) complexData() []complex128 {
	out := make([]complex128, len(r.Data)/2)
	for i := range out {
		out[i] = complex(r.Data[2*i], r.Data[2*i+1])
	}
	return out
}

// floatData flattens complex values into interleaved re,im pairs.
func floatData(x []complex128) []float64 {
	out := make([]float64, 2*len(x))
	for i, v := range x {
		out[2*i] = real(v)
		out[2*i+1] = imag(v)
	}
	return out
}

// signOf converts the wire sign to the fft package direction.
func signOf(sign int) fft.Sign {
	if sign > 0 {
		return fft.Backward
	}
	return fft.Forward
}

// DecodeJSONRequest parses and validates a JSON request body.
func DecodeJSONRequest(body []byte, maxElements int) (*Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("malformed JSON request: %w", err)
	}
	if err := req.Validate(maxElements); err != nil {
		return nil, err
	}
	return &req, nil
}
