package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fft"
	"repro/internal/profiles"
	"repro/internal/trace"
)

// Config tunes one Server. The zero value serves on an ephemeral localhost
// port with GOMAXPROCS workers and batching enabled.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Workers is the number of batch-executing goroutines (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects with 503
	// + Retry-After (default 256).
	QueueDepth int
	// MaxBatch is the most transform rows coalesced into one batch; 1
	// disables batching (default 32).
	MaxBatch int
	// BatchWindow is how long a partial batch waits for same-shape company
	// before flushing; 0 disables batching (default 500 µs).
	BatchWindow time.Duration
	// MaxElements bounds one request's total complex elements (default
	// DefaultMaxElements).
	MaxElements int
	// Cache is the shared plan cache (default: a private cache).
	Cache *fft.Cache
	// Mux, when non-nil, is the base mux the /fft and /healthz endpoints
	// mount onto — fftxd passes telemetry.Mux so one listener serves both
	// the FFT API and /metrics + /debug/pprof.
	Mux *http.ServeMux
	// DefaultEngine is the fftx engine pipeline requests run on when they
	// do not name one: original, task-steps, task-iter, task-combined, dataflow or
	// auto (the cost-model selector). Empty means task-iter, the paper's
	// best-performing version.
	DefaultEngine string
	// TraceSample is the fraction of requests the server traces on its own
	// initiative (0 = none, 1 = all; sampling is a deterministic 1-in-N
	// stride, not a coin flip). Requests that arrive carrying a trace_id are
	// always traced regardless of the rate. Traced requests build a span
	// tree visible at /debug/fftx/requests, feed the per-shape profile
	// store, link histogram exemplars and emit a structured log line.
	TraceSample float64
	// Profiles is the per-shape performance profile store requests record
	// into (default: a fresh memory-only store). fftxd passes a disk-backed
	// store so measured profiles survive restarts.
	Profiles *profiles.Store
	// Logger receives structured request logs keyed by trace ID (default:
	// discard). Traced requests log one line at Debug (Warn on errors);
	// server lifecycle logs at Info.
	Logger *slog.Logger
	// RequestLogSize bounds the recent-request ring of /debug/fftx/requests
	// (default 64).
	RequestLogSize int
	// ExecDelay stretches every batch execution by this duration (default
	// 0). Shutdown and overload tests use it to observe in-flight vs queued
	// states deterministically, and scripts/cluster-bench.sh uses it to
	// inject a calibrated per-node service time so router/worker scaling is
	// measured against a fixed per-worker capacity instead of against
	// however many host cores the bench machine happens to have.
	ExecDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.MaxElements <= 0 {
		c.MaxElements = DefaultMaxElements
	}
	if c.Cache == nil {
		c.Cache = &fft.Cache{}
	}
	if c.Mux == nil {
		c.Mux = http.NewServeMux()
	}
	if c.Profiles == nil {
		// Open with an empty path never fails: memory-only store.
		c.Profiles, _ = profiles.Open("")
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.RequestLogSize <= 0 {
		c.RequestLogSize = 64
	}
	return c
}

// Server is a running FFT service.
type Server struct {
	cfg   Config
	cache *fft.Cache

	queue   chan *task
	batches chan *group
	flushCh chan string

	admitMu  sync.RWMutex
	draining bool

	dispatcherDone chan struct{}
	workerWG       sync.WaitGroup

	ln    net.Listener
	httpS *http.Server
	start time.Time

	shutdownOnce sync.Once
	shutdownErr  error

	// Observability: the in-flight/recent request log behind
	// /debug/fftx/requests, the per-shape profile store behind
	// /debug/fftx/profiles, the structured logger and the deterministic
	// sampling counter.
	reqLog   *requestLog
	profiles *profiles.Store
	logger   *slog.Logger
	traceSeq atomic.Uint64

	// shapeMu guards shapesServed, the bounded set of distinct transform
	// shape keys this server has seen — the "shapes" field of the /healthz
	// body, which tells the cluster router (and humans) what this worker's
	// plan cache is warm for.
	shapeMu      sync.Mutex
	shapesServed map[string]struct{}
}

// New builds a Server from cfg. Call Start to bind and serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:            cfg,
		cache:          cfg.Cache,
		queue:          make(chan *task, cfg.QueueDepth),
		batches:        make(chan *group, cfg.Workers),
		flushCh:        make(chan string, 1),
		dispatcherDone: make(chan struct{}),
		reqLog:         newRequestLog(cfg.RequestLogSize),
		profiles:       cfg.Profiles,
		logger:         cfg.Logger,
		shapesServed:   map[string]struct{}{},
	}
	cfg.Mux.HandleFunc("/fft", s.handleFFT)
	cfg.Mux.HandleFunc("/healthz", s.handleHealthz)
	cfg.Mux.HandleFunc("/debug/fftx/requests", s.handleDebugRequests)
	cfg.Mux.HandleFunc("/debug/fftx/profiles", s.handleDebugProfiles)
	return s
}

// Start binds the listener and serves in the background until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.start = time.Now()
	s.httpS = &http.Server{Handler: s.cfg.Mux, ReadHeaderTimeout: 5 * time.Second}
	mDrainState.Set(0)
	go s.dispatch()
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	go func() { _ = s.httpS.Serve(ln) }()
	s.logger.Info("fftxd serving",
		"addr", s.Addr(), "workers", s.cfg.Workers, "queue_depth", s.cfg.QueueDepth,
		"trace_sample", s.cfg.TraceSample, "profiles", s.profiles.Path())
	return nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Workers returns the effective worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Shutdown drains gracefully: admission closes immediately (new requests
// get 503 + Retry-After), batches already handed to the worker pool
// complete, everything still queued is rejected with 503, then the
// listener closes once the in-flight HTTP exchanges finish. It is
// idempotent and bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.admitMu.Lock()
		s.draining = true
		mDrainState.Set(1)
		close(s.queue)
		s.admitMu.Unlock()

		workDone := make(chan struct{})
		go func() {
			<-s.dispatcherDone
			s.workerWG.Wait()
			close(workDone)
		}()
		select {
		case <-workDone:
		case <-ctx.Done():
			s.shutdownErr = ctx.Err()
			_ = s.httpS.Close()
			return
		}
		s.shutdownErr = s.httpS.Shutdown(ctx)
		if err := s.profiles.Flush(); err != nil {
			s.logger.Warn("profile flush failed on shutdown", "err", err)
			if s.shutdownErr == nil {
				s.shutdownErr = err
			}
		}
		s.logger.Info("drain complete", "uptime_s", time.Since(s.start).Seconds())
	})
	return s.shutdownErr
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// maxBody bounds an /fft request body: the element budget in complex128
// bytes plus codec overhead.
func (s *Server) maxBody() int64 {
	return int64(s.cfg.MaxElements)*16 + 1<<16
}

// shouldTrace decides whether this request records a span tree: always when
// the client sent a trace ID, otherwise a deterministic 1-in-N stride of
// Config.TraceSample.
func (s *Server) shouldTrace(clientID string) bool {
	if clientID != "" {
		return true
	}
	rate := s.cfg.TraceSample
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	stride := uint64(1/rate + 0.5)
	if stride < 1 {
		stride = 1
	}
	return (s.traceSeq.Add(1)-1)%stride == 0
}

// handleFFT is the transform/pipeline endpoint. The response format follows
// the request format: application/octet-stream for the binary wire format,
// JSON otherwise. Traced requests (client trace ID or server sampling) record
// a span tree covering decode → admit → queue → coalesce → exec → encode;
// the root span brackets the same work the fftxd_request_seconds observation
// measures, and its trace ID becomes that observation's exemplar.
func (s *Server) handleFFT(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	code := 0
	var spans *trace.SpanSet
	defer func() {
		mReqTotal.With("fft", fmt.Sprint(code)).Inc()
		mReqSeconds.With("fft").ObserveExemplar(
			time.Since(startAt).Seconds(), spans.TraceID(), time.Now().UnixNano())
	}()
	if r.Method != http.MethodPost {
		code = http.StatusMethodNotAllowed
		writeError(w, false, code, 0, "POST only")
		return
	}
	binary := r.Header.Get("Content-Type") == "application/octet-stream"
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		code = http.StatusRequestEntityTooLarge
		writeError(w, binary, code, 0, "request body rejected: %v", err)
		return
	}
	var req *Request
	if binary {
		req, err = DecodeRequest(body, s.cfg.MaxElements)
	} else {
		req, err = DecodeJSONRequest(body, s.cfg.MaxElements)
	}
	if err != nil {
		code = http.StatusBadRequest
		writeError(w, binary, code, 0, "%v", err)
		return
	}

	if s.shouldTrace(req.TraceID) {
		spans = trace.NewSpanSet(req.TraceID)
		// Every traced reply — success or error, JSON or binary — carries
		// the ID in this header; the JSON body and binary frames echo it
		// too on success.
		w.Header().Set("Fftx-Trace-Id", spans.TraceID())
		source := "sampled"
		if req.TraceID != "" {
			source = "client"
		}
		mTraced.With(source).Inc()
	}
	root := spans.BeginAt("request", startAt)
	root.SetAttr("op", req.Op)
	shape := ""
	if req.Op == OpTransform {
		shape = req.ShapeKey()
		root.SetAttr("shape", shape)
		s.recordShape(shape)
	}
	decodeSpan := root.BeginAt("decode", startAt)
	decodeSpan.End()
	rec := s.reqLog.start(spans, req.Op, shape, startAt)
	defer func() {
		root.SetAttr("status", fmt.Sprint(code))
		root.End()
		lat := time.Since(startAt)
		s.reqLog.finish(rec, code, lat)
		s.logRequest(spans, req.Op, shape, code, lat)
	}()

	t := newTask(req)
	t.spans = spans
	t.root = root
	// The queue span opens before admit so the dispatcher can never pull the
	// task ahead of the handle existing; on rejection it closes here.
	admitSpan := root.Begin("admit")
	t.queueSpan = root.Begin("queue")
	serr := s.admit(t)
	admitSpan.End()
	if serr != nil {
		t.queueSpan.End()
		code = serr.code
		writeError(w, binary, serr.code, serr.retryAfter, "%s", serr.msg)
		return
	}
	select {
	case out := <-t.done:
		if out.err != nil {
			code = out.err.code
			writeError(w, binary, out.err.code, out.err.retryAfter, "%s", out.err.msg)
			return
		}
		code = http.StatusOK
		encodeSpan := root.Begin("encode")
		if binary {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(EncodeResponse(out.resp))
			encodeSpan.End()
			return
		}
		writeJSON(w, http.StatusOK, out.resp)
		encodeSpan.End()
	case <-r.Context().Done():
		// The client went away; the batch still executes, the outcome
		// lands in the buffered channel and is garbage collected.
		code = 499 // nginx's "client closed request", for the metrics only
	}
}

// maxHealthShapes bounds the shapes-served set so a shape-scanning client
// cannot grow the /healthz body (or the server's memory) without bound.
const maxHealthShapes = 256

// recordShape adds a transform shape key to the bounded shapes-served set.
func (s *Server) recordShape(shape string) {
	s.shapeMu.Lock()
	if len(s.shapesServed) < maxHealthShapes {
		s.shapesServed[shape] = struct{}{}
	}
	s.shapeMu.Unlock()
}

// Health is the /healthz JSON body: one self-describing signal for load
// balancers, the cluster health prober and humans alike. The status-code
// contract predates the body and still holds — 200 while serving, 503 while
// draining — so clients that only look at the status line keep working.
type Health struct {
	// Status is "ok" or "draining" (matching the HTTP status code).
	Status string `json:"status"`
	// Workers is the batch-executing goroutine count.
	Workers int `json:"workers"`
	// Queue and QueueCap are the admission queue's current depth and bound.
	Queue    int `json:"queue"`
	QueueCap int `json:"queue_cap"`
	// Shapes lists the distinct transform shape keys this server has seen
	// (sorted, bounded) — what its plan cache is warm for.
	Shapes  []string `json:"shapes,omitempty"`
	UptimeS float64  `json:"uptime_s"`
}

// health snapshots the server's live state.
func (s *Server) health() (Health, int) {
	code := http.StatusOK
	h := Health{
		Status:   "ok",
		Workers:  s.cfg.Workers,
		Queue:    len(s.queue),
		QueueCap: s.cfg.QueueDepth,
		UptimeS:  time.Since(s.start).Seconds(),
	}
	if s.Draining() {
		code = http.StatusServiceUnavailable
		h.Status = "draining"
	}
	s.shapeMu.Lock()
	for shape := range s.shapesServed {
		h.Shapes = append(h.Shapes, shape)
	}
	s.shapeMu.Unlock()
	sort.Strings(h.Shapes)
	return h, code
}

// handleHealthz reports liveness: 200 while serving, 503 while draining —
// the signal load balancers and the cluster prober use to stop routing
// before the listener goes away — with a JSON body describing the state
// (queue depth, workers, shapes served) so machines and humans read the
// same signal.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h, code := s.health()
	writeJSON(w, code, h)
	mReqTotal.With("healthz", fmt.Sprint(code)).Inc()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError replies with a problem description; retryAfter > 0 sets the
// Retry-After backpressure header. Binary-format clients get plain text
// (they only read the status line and headers on errors).
func writeError(w http.ResponseWriter, binary bool, code, retryAfter int, format string, args ...any) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
	}
	msg := fmt.Sprintf(format, args...)
	if binary {
		http.Error(w, msg, code)
		return
	}
	writeJSON(w, code, errorBody{Error: msg})
}
