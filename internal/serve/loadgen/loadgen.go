// Package loadgen drives synthetic load against an fftxd server and
// reports throughput and latency quantiles. Two disciplines are supported:
//
//   - closed loop (Rate == 0): Concurrency clients each keep exactly one
//     request in flight — offered load adapts to the server, which is how
//     capacity (max sustainable req/s) is measured.
//   - open loop (Rate > 0): requests start on a fixed schedule regardless
//     of completions — offered load is constant, which is how latency
//     under a target arrival rate (and overload behavior) is measured.
//
// Latencies are recorded exactly (one sample per request) and quantiles
// computed from the sorted samples, so small runs are not distorted by
// histogram bucketing.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// Shape is one transform payload class of a load mix.
type Shape struct {
	Dims     []int
	Batch    int
	Backward bool
}

// Options configures one load run.
type Options struct {
	// Target is the server's base URL, e.g. "http://127.0.0.1:8472".
	Target string
	// Concurrency is the number of client goroutines (default 8). In open
	// loop it bounds the in-flight requests; arrivals beyond it count as
	// errors (the client side of backpressure).
	Concurrency int
	// Requests stops the run after this many requests (0 = run for
	// Duration).
	Requests int
	// Duration stops the run after this wall-clock time (default 2 s when
	// Requests is 0).
	Duration time.Duration
	// Rate > 0 switches to open loop at that many requests per second.
	Rate float64
	// Shapes is the payload mix; requests cycle through it round-robin so
	// every class receives an equal share and the report can break latency
	// quantiles down per shape. Empty falls back to the single shape of
	// Dims/Batch/Backward.
	Shapes []Shape
	// Dims, Batch and Backward shape the transform request payload when
	// Shapes is empty (defaults: 16×16×16, batch 1, forward).
	Dims     []int
	Batch    int
	Backward bool
	// Binary uses the length-prefixed wire format instead of JSON.
	Binary bool
	// Deadline, when > 0, stamps every request with a queueing deadline.
	Deadline time.Duration
	// TraceSample stamps this fraction of requests with a client trace ID
	// (deterministic 1-in-N stride). The report counts how many IDs the
	// server echoed back and records the slowest traced request's ID — the
	// handle to look its span tree up at /debug/fftx/requests.
	TraceSample float64
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests == 0 && o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if len(o.Dims) == 0 {
		o.Dims = []int{16, 16, 16}
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if len(o.Shapes) == 0 {
		o.Shapes = []Shape{{Dims: o.Dims, Batch: o.Batch, Backward: o.Backward}}
	}
	for i := range o.Shapes {
		if o.Shapes[i].Batch <= 0 {
			o.Shapes[i].Batch = 1
		}
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Report is the outcome of one load run.
type Report struct {
	Mode        string         `json:"mode"` // "closed" or "open"
	Target      string         `json:"target"`
	Concurrency int            `json:"concurrency"`
	Shape       string         `json:"shape"`
	Sent        int            `json:"sent"`
	OK          int            `json:"ok"`
	Errors      int            `json:"errors"`
	StatusCount map[string]int `json:"status_counts"`
	ElapsedSec  float64        `json:"elapsed_s"`
	Throughput  float64        `json:"req_per_s"` // successful replies per second
	MeanSec     float64        `json:"mean_s"`
	P50Sec      float64        `json:"p50_s"`
	P90Sec      float64        `json:"p90_s"`
	P99Sec      float64        `json:"p99_s"`
	MaxSec      float64        `json:"max_s"`
	// MeanBatchRows is the average batch size the server reports having
	// coalesced successful requests into (1 = no batching happened).
	MeanBatchRows float64 `json:"mean_batch_rows"`
	// PerShape breaks the quantiles down by payload class — mixed-shape
	// runs otherwise hide slow shapes inside aggregate tails.
	PerShape map[string]*ShapeReport `json:"per_shape,omitempty"`
	// PerWorker breaks the quantiles down by the worker that served each
	// reply (the router's Fftx-Worker header), so a cluster run shows how
	// the ring spread the shapes and whether one worker is the slow tail.
	// Absent against a single fftxd, which does not stamp the header.
	PerWorker map[string]*ShapeReport `json:"per_worker,omitempty"`
	// Trace correlation: IDs sent, IDs the server echoed back, and
	// mismatches (an echo differing from what was sent on a 200).
	TraceSent     int `json:"trace_sent,omitempty"`
	TraceEchoed   int `json:"trace_echoed,omitempty"`
	TraceMismatch int `json:"trace_mismatch,omitempty"`
	// SlowestTraceID identifies the slowest successful traced request —
	// feed it to /debug/fftx/requests (or fftxtrace -requests) to see
	// where that tail latency went.
	SlowestTraceID string  `json:"slowest_trace_id,omitempty"`
	SlowestSec     float64 `json:"slowest_s,omitempty"`
}

// ShapeReport is the per-payload-class slice of a report.
type ShapeReport struct {
	Sent          int     `json:"sent"`
	OK            int     `json:"ok"`
	Errors        int     `json:"errors"`
	MeanSec       float64 `json:"mean_s"`
	P50Sec        float64 `json:"p50_s"`
	P90Sec        float64 `json:"p90_s"`
	P99Sec        float64 `json:"p99_s"`
	MaxSec        float64 `json:"max_s"`
	MeanBatchRows float64 `json:"mean_batch_rows"`
}

// sample is one request's result.
type sample struct {
	latency   time.Duration
	status    int
	batchRows int
	shape     string
	worker    string
	sentTrace string
	gotTrace  string
	err       error
}

// Run executes the configured load and aggregates the report. The context
// cancels the run early.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	rq, err := newRequester(opts)
	if err != nil {
		return nil, err
	}

	// The duration bounds scheduling only: at the deadline clients stop
	// issuing, but requests already in flight run to completion on the
	// parent context so the tail is measured rather than aborted.
	schedCtx := ctx
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		schedCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	samples := make(chan sample, 4*opts.Concurrency)
	var collected []sample
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for sm := range samples {
			collected = append(collected, sm)
		}
	}()

	begin := time.Now()
	if opts.Rate > 0 {
		runOpen(ctx, schedCtx, opts, rq, samples)
	} else {
		runClosed(ctx, schedCtx, opts, rq, samples)
	}
	close(samples)
	<-collectDone
	elapsed := time.Since(begin)

	return aggregate(opts, collected, elapsed), nil
}

// runClosed keeps Concurrency requests in flight until the budget runs out.
func runClosed(ctx, schedCtx context.Context, opts Options, rq *requester, out chan<- sample) {
	var issued int
	var mu sync.Mutex
	takeTicket := func() bool {
		if opts.Requests == 0 {
			return schedCtx.Err() == nil
		}
		mu.Lock()
		defer mu.Unlock()
		if issued >= opts.Requests || schedCtx.Err() != nil {
			return false
		}
		issued++
		return true
	}
	var wg sync.WaitGroup
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for takeTicket() {
				out <- rq.do(ctx)
			}
		}()
	}
	wg.Wait()
}

// runOpen fires requests on a fixed schedule; arrivals finding every client
// slot busy are recorded as local drops.
func runOpen(ctx, schedCtx context.Context, opts Options, rq *requester, out chan<- sample) {
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	slots := make(chan struct{}, opts.Concurrency)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	issued := 0
	for {
		if opts.Requests > 0 && issued >= opts.Requests {
			break
		}
		select {
		case <-schedCtx.Done():
		case <-ticker.C:
		}
		if schedCtx.Err() != nil {
			break
		}
		issued++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				out <- rq.do(ctx)
				<-slots
			}()
		default:
			out <- sample{err: fmt.Errorf("all %d client slots busy", opts.Concurrency), status: 0}
		}
	}
	wg.Wait()
}

// tracePlaceholder is the trace ID every pre-rendered traced payload
// carries; per-request IDs are patched over it in a copy. All-'a' is a valid
// wire ID that cannot occur inside JSON number text, so its first occurrence
// in the rendered body is always the trace field.
const tracePlaceholder = "aaaaaaaaaaaaaaaa"

// payload is one pre-rendered request body of the load mix.
type payload struct {
	key      string // shape label of the per-shape report
	body     []byte // untraced form
	traced   []byte // form with tracePlaceholder at traceOff
	traceOff int
}

// requester cycles requests round-robin through the payload mix and stamps
// a deterministic 1-in-N stride of them with fresh trace IDs.
type requester struct {
	opts        Options
	payloads    []payload
	seq         atomic.Uint64
	traceStride uint64 // 0 = no client tracing
}

func newRequester(opts Options) (*requester, error) {
	rq := &requester{opts: opts}
	for _, sh := range opts.Shapes {
		p, err := buildPayload(opts, sh)
		if err != nil {
			return nil, err
		}
		rq.payloads = append(rq.payloads, p)
	}
	if opts.TraceSample > 0 {
		rq.traceStride = 1
		if opts.TraceSample < 1 {
			rq.traceStride = uint64(1/opts.TraceSample + 0.5)
		}
	}
	return rq, nil
}

// do issues the next request of the schedule.
func (rq *requester) do(ctx context.Context) sample {
	n := rq.seq.Add(1) - 1
	p := rq.payloads[int(n%uint64(len(rq.payloads)))]
	traceID := ""
	if rq.traceStride > 0 && n%rq.traceStride == 0 {
		traceID = trace.NewTraceID()
	}
	return doRequest(ctx, rq.opts, p, traceID)
}

// doRequest posts one payload and classifies the reply.
func doRequest(ctx context.Context, opts Options, p payload, traceID string) sample {
	body := p.body
	if traceID != "" {
		b := append([]byte(nil), p.traced...)
		copy(b[p.traceOff:], traceID)
		body = b
	}
	ct := "application/json"
	if opts.Binary {
		ct = "application/octet-stream"
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.Target+"/fft", bytes.NewReader(body))
	if err != nil {
		return sample{err: err, shape: p.key}
	}
	req.Header.Set("Content-Type", ct)
	resp, err := opts.Client.Do(req)
	if err != nil {
		return sample{err: err, latency: time.Since(start), shape: p.key, sentTrace: traceID}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	sm := sample{
		latency:   time.Since(start),
		status:    resp.StatusCode,
		shape:     p.key,
		worker:    resp.Header.Get("Fftx-Worker"),
		sentTrace: traceID,
		gotTrace:  resp.Header.Get("Fftx-Trace-Id"),
		err:       err,
	}
	if err == nil && resp.StatusCode == http.StatusOK {
		sm.batchRows, sm.err = batchRowsOf(opts, respBody)
	}
	return sm
}

// batchRowsOf extracts the server-reported batch size from a success body.
func batchRowsOf(opts Options, body []byte) (int, error) {
	if opts.Binary {
		r, err := serve.DecodeResponse(body)
		if err != nil {
			return 0, err
		}
		return r.BatchSize, nil
	}
	var r serve.Response
	if err := json.Unmarshal(body, &r); err != nil {
		return 0, err
	}
	return r.BatchSize, nil
}

// buildPayload renders one shape's request body once — untraced and with the
// trace placeholder — so the request loop never marshals.
func buildPayload(opts Options, sh Shape) (payload, error) {
	n := 1
	for _, d := range sh.Dims {
		if d <= 0 {
			return payload{}, fmt.Errorf("loadgen: invalid dim %d", d)
		}
		n *= d
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 2*sh.Batch*n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	req := &serve.Request{
		Op:    serve.OpTransform,
		Dims:  sh.Dims,
		Batch: sh.Batch,
		Data:  data,
	}
	if sh.Backward {
		req.Sign = 1
	}
	if opts.Deadline > 0 {
		req.DeadlineMillis = int64(opts.Deadline / time.Millisecond)
	}
	render := func() ([]byte, error) {
		if opts.Binary {
			return serve.EncodeRequest(req)
		}
		return json.Marshal(req)
	}
	p := payload{key: shapeKey(sh)}
	var err error
	if p.body, err = render(); err != nil {
		return payload{}, err
	}
	req.TraceID = tracePlaceholder
	if p.traced, err = render(); err != nil {
		return payload{}, err
	}
	p.traceOff = bytes.Index(p.traced, []byte(tracePlaceholder))
	if p.traceOff < 0 {
		return payload{}, fmt.Errorf("loadgen: trace placeholder missing from rendered payload")
	}
	return p, nil
}

// shapeAcc accumulates one payload class.
type shapeAcc struct {
	sent, ok, errors int
	lat              []time.Duration
	sumLat           time.Duration
	sumRows          int
}

func (a *shapeAcc) report() *ShapeReport {
	sr := &ShapeReport{Sent: a.sent, OK: a.ok, Errors: a.errors}
	if len(a.lat) == 0 {
		return sr
	}
	sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
	sr.MeanSec = (a.sumLat / time.Duration(len(a.lat))).Seconds()
	sr.P50Sec = quantile(a.lat, 0.50).Seconds()
	sr.P90Sec = quantile(a.lat, 0.90).Seconds()
	sr.P99Sec = quantile(a.lat, 0.99).Seconds()
	sr.MaxSec = a.lat[len(a.lat)-1].Seconds()
	sr.MeanBatchRows = float64(a.sumRows) / float64(a.ok)
	return sr
}

// aggregate folds the samples into a report: aggregate quantiles across the
// whole run plus a per-shape breakdown, and the trace-correlation counters.
func aggregate(opts Options, samples []sample, elapsed time.Duration) *Report {
	rep := &Report{
		Mode:        "closed",
		Target:      opts.Target,
		Concurrency: opts.Concurrency,
		Shape:       shapeMixString(opts),
		StatusCount: map[string]int{},
		ElapsedSec:  elapsed.Seconds(),
	}
	if opts.Rate > 0 {
		rep.Mode = "open"
	}
	var lat []time.Duration
	var sumLat time.Duration
	var sumRows int
	perShape := map[string]*shapeAcc{}
	perWorker := map[string]*shapeAcc{}
	var slowest time.Duration
	for _, sm := range samples {
		rep.Sent++
		acc := perShape[sm.shape]
		if acc == nil {
			acc = &shapeAcc{}
			perShape[sm.shape] = acc
		}
		acc.sent++
		var wacc *shapeAcc
		if sm.worker != "" {
			wacc = perWorker[sm.worker]
			if wacc == nil {
				wacc = &shapeAcc{}
				perWorker[sm.worker] = wacc
			}
			wacc.sent++
		}
		if sm.sentTrace != "" {
			rep.TraceSent++
			if sm.gotTrace != "" && sm.gotTrace != sm.sentTrace && sm.status == http.StatusOK {
				rep.TraceMismatch++
			}
		}
		if sm.gotTrace != "" {
			rep.TraceEchoed++
		}
		switch {
		case sm.err == nil && sm.status == http.StatusOK:
			rep.OK++
			lat = append(lat, sm.latency)
			sumLat += sm.latency
			sumRows += sm.batchRows
			acc.ok++
			acc.lat = append(acc.lat, sm.latency)
			acc.sumLat += sm.latency
			acc.sumRows += sm.batchRows
			if wacc != nil {
				wacc.ok++
				wacc.lat = append(wacc.lat, sm.latency)
				wacc.sumLat += sm.latency
				wacc.sumRows += sm.batchRows
			}
			if sm.sentTrace != "" && sm.latency > slowest {
				slowest = sm.latency
				rep.SlowestTraceID = sm.sentTrace
				rep.SlowestSec = sm.latency.Seconds()
			}
		default:
			rep.Errors++
			acc.errors++
			if wacc != nil {
				wacc.errors++
			}
		}
		if sm.status != 0 {
			rep.StatusCount[fmt.Sprint(sm.status)]++
		} else {
			rep.StatusCount["transport"]++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if len(perShape) > 1 || opts.TraceSample > 0 {
		rep.PerShape = map[string]*ShapeReport{}
		for key, acc := range perShape {
			if key == "" {
				continue
			}
			rep.PerShape[key] = acc.report()
		}
	}
	if len(perWorker) > 0 {
		rep.PerWorker = map[string]*ShapeReport{}
		for addr, acc := range perWorker {
			rep.PerWorker[addr] = acc.report()
		}
	}
	if len(lat) == 0 {
		return rep
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.MeanSec = (sumLat / time.Duration(len(lat))).Seconds()
	rep.P50Sec = quantile(lat, 0.50).Seconds()
	rep.P90Sec = quantile(lat, 0.90).Seconds()
	rep.P99Sec = quantile(lat, 0.99).Seconds()
	rep.MaxSec = lat[len(lat)-1].Seconds()
	rep.MeanBatchRows = float64(sumRows) / float64(rep.OK)
	return rep
}

// quantile reads the q-quantile of sorted latencies by nearest rank.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// shapeKey labels one payload class, e.g. "16x16x16" or "8x8(batch 4)b".
func shapeKey(sh Shape) string {
	s := ""
	for i, d := range sh.Dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	if sh.Batch > 1 {
		s += fmt.Sprintf("(batch %d)", sh.Batch)
	}
	if sh.Backward {
		s += "b"
	}
	return s
}

// shapeMixString labels the whole mix (comma-joined shape keys).
func shapeMixString(opts Options) string {
	s := ""
	for i, sh := range opts.Shapes {
		if i > 0 {
			s += ","
		}
		s += shapeKey(sh)
	}
	return s
}
