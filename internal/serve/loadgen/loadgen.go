// Package loadgen drives synthetic load against an fftxd server and
// reports throughput and latency quantiles. Two disciplines are supported:
//
//   - closed loop (Rate == 0): Concurrency clients each keep exactly one
//     request in flight — offered load adapts to the server, which is how
//     capacity (max sustainable req/s) is measured.
//   - open loop (Rate > 0): requests start on a fixed schedule regardless
//     of completions — offered load is constant, which is how latency
//     under a target arrival rate (and overload behavior) is measured.
//
// Latencies are recorded exactly (one sample per request) and quantiles
// computed from the sorted samples, so small runs are not distorted by
// histogram bucketing.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// Options configures one load run.
type Options struct {
	// Target is the server's base URL, e.g. "http://127.0.0.1:8472".
	Target string
	// Concurrency is the number of client goroutines (default 8). In open
	// loop it bounds the in-flight requests; arrivals beyond it count as
	// errors (the client side of backpressure).
	Concurrency int
	// Requests stops the run after this many requests (0 = run for
	// Duration).
	Requests int
	// Duration stops the run after this wall-clock time (default 2 s when
	// Requests is 0).
	Duration time.Duration
	// Rate > 0 switches to open loop at that many requests per second.
	Rate float64
	// Dims, Batch and Backward shape the transform request payload
	// (defaults: 16×16×16, batch 1, forward).
	Dims     []int
	Batch    int
	Backward bool
	// Binary uses the length-prefixed wire format instead of JSON.
	Binary bool
	// Deadline, when > 0, stamps every request with a queueing deadline.
	Deadline time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests == 0 && o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if len(o.Dims) == 0 {
		o.Dims = []int{16, 16, 16}
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Report is the outcome of one load run.
type Report struct {
	Mode        string         `json:"mode"` // "closed" or "open"
	Target      string         `json:"target"`
	Concurrency int            `json:"concurrency"`
	Shape       string         `json:"shape"`
	Sent        int            `json:"sent"`
	OK          int            `json:"ok"`
	Errors      int            `json:"errors"`
	StatusCount map[string]int `json:"status_counts"`
	ElapsedSec  float64        `json:"elapsed_s"`
	Throughput  float64        `json:"req_per_s"` // successful replies per second
	MeanSec     float64        `json:"mean_s"`
	P50Sec      float64        `json:"p50_s"`
	P90Sec      float64        `json:"p90_s"`
	P99Sec      float64        `json:"p99_s"`
	MaxSec      float64        `json:"max_s"`
	// MeanBatchRows is the average batch size the server reports having
	// coalesced successful requests into (1 = no batching happened).
	MeanBatchRows float64 `json:"mean_batch_rows"`
}

// sample is one request's result.
type sample struct {
	latency   time.Duration
	status    int
	batchRows int
	err       error
}

// Run executes the configured load and aggregates the report. The context
// cancels the run early.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	payload, contentType, err := buildPayload(opts)
	if err != nil {
		return nil, err
	}

	// The duration bounds scheduling only: at the deadline clients stop
	// issuing, but requests already in flight run to completion on the
	// parent context so the tail is measured rather than aborted.
	schedCtx := ctx
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		schedCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	samples := make(chan sample, 4*opts.Concurrency)
	var collected []sample
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for sm := range samples {
			collected = append(collected, sm)
		}
	}()

	begin := time.Now()
	if opts.Rate > 0 {
		runOpen(ctx, schedCtx, opts, payload, contentType, samples)
	} else {
		runClosed(ctx, schedCtx, opts, payload, contentType, samples)
	}
	close(samples)
	<-collectDone
	elapsed := time.Since(begin)

	return aggregate(opts, collected, elapsed), nil
}

// runClosed keeps Concurrency requests in flight until the budget runs out.
func runClosed(ctx, schedCtx context.Context, opts Options, payload []byte, ct string, out chan<- sample) {
	var issued int
	var mu sync.Mutex
	takeTicket := func() bool {
		if opts.Requests == 0 {
			return schedCtx.Err() == nil
		}
		mu.Lock()
		defer mu.Unlock()
		if issued >= opts.Requests || schedCtx.Err() != nil {
			return false
		}
		issued++
		return true
	}
	var wg sync.WaitGroup
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for takeTicket() {
				out <- doRequest(ctx, opts, payload, ct)
			}
		}()
	}
	wg.Wait()
}

// runOpen fires requests on a fixed schedule; arrivals finding every client
// slot busy are recorded as local drops.
func runOpen(ctx, schedCtx context.Context, opts Options, payload []byte, ct string, out chan<- sample) {
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	slots := make(chan struct{}, opts.Concurrency)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	issued := 0
	for {
		if opts.Requests > 0 && issued >= opts.Requests {
			break
		}
		select {
		case <-schedCtx.Done():
		case <-ticker.C:
		}
		if schedCtx.Err() != nil {
			break
		}
		issued++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				out <- doRequest(ctx, opts, payload, ct)
				<-slots
			}()
		default:
			out <- sample{err: fmt.Errorf("all %d client slots busy", opts.Concurrency), status: 0}
		}
	}
	wg.Wait()
}

// doRequest posts one payload and classifies the reply.
func doRequest(ctx context.Context, opts Options, payload []byte, ct string) sample {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.Target+"/fft", bytes.NewReader(payload))
	if err != nil {
		return sample{err: err}
	}
	req.Header.Set("Content-Type", ct)
	resp, err := opts.Client.Do(req)
	if err != nil {
		return sample{err: err, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	sm := sample{latency: time.Since(start), status: resp.StatusCode, err: err}
	if err == nil && resp.StatusCode == http.StatusOK {
		sm.batchRows, sm.err = batchRowsOf(opts, body)
	}
	return sm
}

// batchRowsOf extracts the server-reported batch size from a success body.
func batchRowsOf(opts Options, body []byte) (int, error) {
	if opts.Binary {
		r, err := serve.DecodeResponse(body)
		if err != nil {
			return 0, err
		}
		return r.BatchSize, nil
	}
	var r serve.Response
	if err := json.Unmarshal(body, &r); err != nil {
		return 0, err
	}
	return r.BatchSize, nil
}

// buildPayload renders the request body once; every request reuses it.
func buildPayload(opts Options) ([]byte, string, error) {
	n := 1
	for _, d := range opts.Dims {
		if d <= 0 {
			return nil, "", fmt.Errorf("loadgen: invalid dim %d", d)
		}
		n *= d
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 2*opts.Batch*n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	req := &serve.Request{
		Op:    serve.OpTransform,
		Dims:  opts.Dims,
		Batch: opts.Batch,
		Data:  data,
	}
	if opts.Backward {
		req.Sign = 1
	}
	if opts.Deadline > 0 {
		req.DeadlineMillis = int64(opts.Deadline / time.Millisecond)
	}
	if opts.Binary {
		b, err := serve.EncodeRequest(req)
		return b, "application/octet-stream", err
	}
	b, err := json.Marshal(req)
	return b, "application/json", err
}

// aggregate folds the samples into a report.
func aggregate(opts Options, samples []sample, elapsed time.Duration) *Report {
	rep := &Report{
		Mode:        "closed",
		Target:      opts.Target,
		Concurrency: opts.Concurrency,
		Shape:       shapeString(opts),
		StatusCount: map[string]int{},
		ElapsedSec:  elapsed.Seconds(),
	}
	if opts.Rate > 0 {
		rep.Mode = "open"
	}
	var lat []time.Duration
	var sumLat time.Duration
	var sumRows int
	for _, sm := range samples {
		rep.Sent++
		switch {
		case sm.err == nil && sm.status == http.StatusOK:
			rep.OK++
			lat = append(lat, sm.latency)
			sumLat += sm.latency
			sumRows += sm.batchRows
		default:
			rep.Errors++
		}
		if sm.status != 0 {
			rep.StatusCount[fmt.Sprint(sm.status)]++
		} else {
			rep.StatusCount["transport"]++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lat) == 0 {
		return rep
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.MeanSec = (sumLat / time.Duration(len(lat))).Seconds()
	rep.P50Sec = quantile(lat, 0.50).Seconds()
	rep.P90Sec = quantile(lat, 0.90).Seconds()
	rep.P99Sec = quantile(lat, 0.99).Seconds()
	rep.MaxSec = lat[len(lat)-1].Seconds()
	rep.MeanBatchRows = float64(sumRows) / float64(rep.OK)
	return rep
}

// quantile reads the q-quantile of sorted latencies by nearest rank.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func shapeString(opts Options) string {
	s := ""
	for i, d := range opts.Dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	if opts.Batch > 1 {
		s += fmt.Sprintf("(batch %d)", opts.Batch)
	}
	return s
}
