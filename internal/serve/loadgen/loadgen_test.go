package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/serve"
)

func startServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	s := serve.New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestClosedLoopZeroErrors is the acceptance check: a closed-loop run at
// twice the server's worker count completes without a single error — the
// closed loop never offers more than Concurrency requests at once, so a
// sanely-sized queue must absorb all of it.
func TestClosedLoopZeroErrors(t *testing.T) {
	s := startServer(t, serve.Config{Workers: 2})
	rep, err := Run(context.Background(), Options{
		Target:      s.URL(),
		Concurrency: 2 * s.Workers(),
		Duration:    time.Second,
		Dims:        []int{8, 8, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode %q, want closed", rep.Mode)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests errored: %v", rep.Errors, rep.Sent, rep.StatusCount)
	}
	if rep.OK != rep.Sent {
		t.Errorf("%d ok of %d sent", rep.OK, rep.Sent)
	}
	if rep.Throughput <= 0 || rep.P99Sec < rep.P50Sec || rep.MaxSec < rep.P99Sec {
		t.Errorf("implausible latency aggregates: %+v", rep)
	}
	if rep.MeanBatchRows < 1 {
		t.Errorf("mean batch rows %.2f < 1", rep.MeanBatchRows)
	}
}

// TestShapeMixPerShapeReport drives a two-shape mix with client tracing and
// checks the per-shape quantile breakdown and trace correlation: both shape
// classes get an equal share and their own quantiles, and every trace ID the
// client stamps comes back from the server.
func TestShapeMixPerShapeReport(t *testing.T) {
	s := startServer(t, serve.Config{Workers: 2})
	rep, err := Run(context.Background(), Options{
		Target:      s.URL(),
		Concurrency: 4,
		Requests:    40,
		Shapes: []Shape{
			{Dims: []int{8, 8}},
			{Dims: []int{4, 4, 4}, Batch: 2},
		},
		TraceSample: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests errored: %v", rep.Errors, rep.Sent, rep.StatusCount)
	}
	if rep.Shape != "8x8,4x4x4(batch 2)" {
		t.Errorf("shape mix label %q", rep.Shape)
	}
	if len(rep.PerShape) != 2 {
		t.Fatalf("per-shape report has %d classes: %v", len(rep.PerShape), rep.PerShape)
	}
	for _, key := range []string{"8x8", "4x4x4(batch 2)"} {
		sr := rep.PerShape[key]
		if sr == nil {
			t.Fatalf("no per-shape report for %q", key)
		}
		if sr.Sent != rep.Sent/2 {
			t.Errorf("shape %q got %d of %d requests, want an equal share", key, sr.Sent, rep.Sent)
		}
		if sr.OK != sr.Sent || sr.P99Sec < sr.P50Sec || sr.MaxSec < sr.P99Sec {
			t.Errorf("implausible per-shape stats for %q: %+v", key, sr)
		}
	}
	wantTraced := rep.Sent / 2 // stride 2 over an even request count
	if rep.TraceSent != wantTraced {
		t.Errorf("traced %d of %d requests, want %d", rep.TraceSent, rep.Sent, wantTraced)
	}
	// Client-stamped IDs force server-side tracing, so every one echoes.
	if rep.TraceEchoed < rep.TraceSent || rep.TraceMismatch != 0 {
		t.Errorf("trace correlation lost IDs: sent %d echoed %d mismatch %d",
			rep.TraceSent, rep.TraceEchoed, rep.TraceMismatch)
	}
	if rep.SlowestTraceID == "" || rep.SlowestSec <= 0 {
		t.Errorf("no slowest traced request recorded: %+v", rep)
	}
}

// TestClosedLoopRequestCount pins the fixed-request mode and the binary
// wire path.
func TestClosedLoopRequestCount(t *testing.T) {
	s := startServer(t, serve.Config{Workers: 1})
	rep, err := Run(context.Background(), Options{
		Target:      s.URL(),
		Concurrency: 3,
		Requests:    25,
		Dims:        []int{64},
		Batch:       2,
		Binary:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 25 {
		t.Errorf("sent %d, want exactly 25", rep.Sent)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors: %v", rep.Errors, rep.StatusCount)
	}
	if rep.MeanBatchRows < 2 {
		t.Errorf("mean batch rows %.2f < request batch 2", rep.MeanBatchRows)
	}
}

// TestOpenLoopOverload drives an open loop well past a tiny server's
// capacity and checks the report separates successes from shed load
// instead of erroring out.
func TestOpenLoopOverload(t *testing.T) {
	s := startServer(t, serve.Config{Workers: 1, QueueDepth: 1, MaxBatch: 1})
	rep, err := Run(context.Background(), Options{
		Target:      s.URL(),
		Concurrency: 4,
		Rate:        300,
		Duration:    500 * time.Millisecond,
		Dims:        []int{16, 16, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode %q, want open", rep.Mode)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no traffic flowed: %+v", rep)
	}
	if rep.OK+rep.Errors != rep.Sent {
		t.Errorf("sent %d != ok %d + errors %d", rep.Sent, rep.OK, rep.Errors)
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("no error for missing target")
	}
}
