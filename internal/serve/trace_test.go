package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/profiles"
	"repro/internal/trace"
)

// getJSON fetches a debug endpoint into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("GET %s: unparseable body %q: %v", url, raw, err)
	}
}

// TestServeTracingEndToEnd drives a traced server through both codecs and
// checks the acceptance contract: every sampled request yields a structurally
// valid span tree whose root duration agrees with the reported request
// latency, trace IDs round-trip through the JSON and binary wire formats,
// the profile store fills and survives a server restart, and the request
// histogram carries trace-linked exemplars.
func TestServeTracingEndToEnd(t *testing.T) {
	profPath := filepath.Join(t.TempDir(), "profiles.json")
	store, err := profiles.Open(profPath)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{TraceSample: 1, Profiles: store})

	// JSON transforms with client-supplied trace IDs.
	clientIDs := map[string]bool{}
	for i := 0; i < 8; i++ {
		req := &Request{
			Dims:    []int{8, 8},
			Batch:   1,
			Data:    randomData(int64(i), 64),
			TraceID: trace.NewTraceID(),
		}
		code, resp, hdr := postJSON(t, s.URL(), req)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if resp.TraceID != req.TraceID {
			t.Fatalf("JSON trace ID not echoed: sent %q, got %q", req.TraceID, resp.TraceID)
		}
		if hdr.Get("Fftx-Trace-Id") != req.TraceID {
			t.Fatalf("Fftx-Trace-Id header %q, want %q", hdr.Get("Fftx-Trace-Id"), req.TraceID)
		}
		clientIDs[req.TraceID] = true
	}

	// A server-sampled JSON request (no client ID; TraceSample=1 traces it).
	code, resp, hdr := postJSON(t, s.URL(), &Request{Dims: []int{16}, Batch: 1, Data: randomData(99, 16)})
	if code != http.StatusOK {
		t.Fatalf("sampled request: status %d", code)
	}
	if !trace.ValidTraceID(resp.TraceID) || hdr.Get("Fftx-Trace-Id") != resp.TraceID {
		t.Fatalf("sampled request got no server-assigned trace ID: body %q header %q",
			resp.TraceID, hdr.Get("Fftx-Trace-Id"))
	}

	// Binary transform: the ID travels inside the FXD1/FXR1 frames.
	binReq := &Request{Dims: []int{4, 4}, Batch: 2, TraceID: trace.NewTraceID(), Data: randomData(7, 32)}
	frame, err := EncodeRequest(binReq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(s.URL()+"/fft", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil || httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary request: status %d err %v", httpResp.StatusCode, err)
	}
	binResp, err := DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if binResp.TraceID != binReq.TraceID {
		t.Fatalf("FXR1 trace ID %q, want %q", binResp.TraceID, binReq.TraceID)
	}
	if httpResp.Header.Get("Fftx-Trace-Id") != binReq.TraceID {
		t.Fatalf("binary response header trace ID %q", httpResp.Header.Get("Fftx-Trace-Id"))
	}
	clientIDs[binReq.TraceID] = true

	// Binary pipeline: FXP1 in, FXQ1 out.
	pipeReq := &Request{
		Op:       OpPipeline,
		TraceID:  trace.NewTraceID(),
		Pipeline: &PipelineRequest{Ecut: 20, Alat: 10, NB: 8, Ranks: 2, NTG: 2},
	}
	frame, err = EncodeRequest(pipeReq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err = http.Post(s.URL()+"/fft", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil || httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary pipeline request: status %d err %v", httpResp.StatusCode, err)
	}
	pipeResp, err := DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pipeResp.TraceID != pipeReq.TraceID {
		t.Fatalf("FXQ1 trace ID %q, want %q", pipeResp.TraceID, pipeReq.TraceID)
	}
	clientIDs[pipeReq.TraceID] = true

	// Every traced request must appear at /debug/fftx/requests with a
	// structurally valid span tree whose root duration matches the reported
	// latency within tolerance.
	var dump RequestDump
	getJSON(t, s.URL()+"/debug/fftx/requests", &dump)
	if len(dump.Recent) == 0 {
		t.Fatal("no recent traced requests")
	}
	seen := map[string]bool{}
	for _, rv := range dump.Recent {
		seen[rv.TraceID] = true
		if rv.Spans == nil {
			t.Fatalf("request %d has no span tree", rv.Seq)
		}
		for _, err := range rv.Spans.ValidateSpans() {
			t.Errorf("trace %s: %v", rv.TraceID, err)
		}
		root := rv.Spans.Root()
		if root.Name != "request" {
			t.Errorf("trace %s: root span %q, want \"request\"", rv.TraceID, root.Name)
		}
		diff := rv.LatencySec - root.DurationSec()
		if diff < -1e-3 || diff > 0.1 {
			t.Errorf("trace %s: root span %.6fs vs reported latency %.6fs",
				rv.TraceID, root.DurationSec(), rv.LatencySec)
		}
		if rv.Status == http.StatusOK {
			for _, name := range []string{"decode", "queue", "coalesce", "exec", "encode"} {
				if _, ok := rv.Spans.Find(name); !ok {
					t.Errorf("trace %s: no %q span", rv.TraceID, name)
				}
			}
		}
	}
	for id := range clientIDs {
		if !seen[id] {
			t.Errorf("client trace %s missing from /debug/fftx/requests", id)
		}
	}

	// The profile store accumulated both transform and pipeline profiles.
	var pd struct {
		Path     string           `json:"path"`
		Count    int              `json:"count"`
		Profiles []profiles.Entry `json:"profiles"`
	}
	getJSON(t, s.URL()+"/debug/fftx/profiles", &pd)
	if pd.Path != profPath || pd.Count == 0 {
		t.Fatalf("profile dump: path %q count %d", pd.Path, pd.Count)
	}
	modes := map[string]bool{}
	for _, e := range pd.Profiles {
		modes[e.Mode] = true
		if e.Count <= 0 || e.MeanSecond < 0 {
			t.Errorf("profile %s: count %d mean %g", e.Key, e.Count, e.MeanSecond)
		}
	}
	if !modes["transform"] || !modes["cost"] {
		t.Errorf("profile modes %v, want both transform and cost", modes)
	}

	// The request histogram carries a trace-linked exemplar.
	var buf bytes.Buffer
	if err := metrics.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# {trace_id="`) {
		t.Error("no exemplar on fftxd_request_seconds buckets")
	}

	// Restart survival: shut down (flushes), reopen the same path.
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	store2, err := profiles.Open(profPath)
	if err != nil {
		t.Fatalf("profile store did not survive restart: %v", err)
	}
	if store2.Len() != store.Len() {
		t.Fatalf("reloaded store has %d keys, want %d", store2.Len(), store.Len())
	}
	s2 := startServer(t, Config{TraceSample: 1, Profiles: store2})
	var pd2 struct {
		Count int `json:"count"`
	}
	getJSON(t, s2.URL()+"/debug/fftx/profiles", &pd2)
	if pd2.Count != store.Len() {
		t.Fatalf("restarted server serves %d profile keys, want %d", pd2.Count, store.Len())
	}
}

// TestServeTraceValidation pins the JSON-side trace_id contract: malformed
// IDs are rejected with 400, and a duplicated trace_id field follows
// encoding/json semantics (last value wins) rather than erroring.
func TestServeTraceValidation(t *testing.T) {
	s := startServer(t, Config{})

	code, _, _ := postJSON(t, s.URL(), &Request{
		Dims: []int{4}, Batch: 1, Data: randomData(1, 4), TraceID: "not-a-trace-id!!",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed trace_id: status %d, want 400", code)
	}

	last := trace.NewTraceID()
	body := []byte(`{"dims":[4],"batch":1,"trace_id":"aaaaaaaaaaaaaaaa",` +
		`"data":[1,0,2,0,3,0,4,0],"trace_id":"` + last + `"}`)
	resp, err := http.Post(s.URL()+"/fft", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate trace_id fields: status %d, body %q", resp.StatusCode, raw)
	}
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != last {
		t.Fatalf("duplicate trace_id echoed %q, want the last value %q", out.TraceID, last)
	}
}

// TestTracingOverheadSmoke is the deadman bound behind `make overhead-smoke`:
// full tracing must not grossly slow the serving path. The precise <5%
// budget is measured by scripts/serve-bench.sh into BENCH_serve.json; here
// the bound is generous (2× + scheduling slack) so CI machines under load
// do not flake.
func TestTracingOverheadSmoke(t *testing.T) {
	req := &Request{Dims: []int{16, 16}, Batch: 1, Data: randomData(5, 256)}
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	measure := func(sample float64) time.Duration {
		s := startServer(t, Config{TraceSample: sample})
		// Warm the plan cache out of the measurement.
		for i := 0; i < 5; i++ {
			doPost(t, s.URL(), frame)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			doPost(t, s.URL(), frame)
		}
		return time.Since(start)
	}
	off := measure(0)
	on := measure(1)
	t.Logf("tracing off %v, on %v (%.1f%%)", off, on, 100*float64(on-off)/float64(off))
	if on > 2*off+100*time.Millisecond {
		t.Fatalf("tracing overhead out of bounds: off %v, on %v", off, on)
	}
}

func doPost(t *testing.T, url string, frame []byte) {
	t.Helper()
	resp, err := http.Post(url+"/fft", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
