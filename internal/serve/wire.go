package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/trace"
)

// Length-prefixed binary wire format — the low-overhead alternative to
// JSON for bulk payloads and tight request loops. All integers are
// little-endian; complex values are float64 re,im pairs.
//
// Transform request layout:
//
//	offset  size  field
//	0       4     magic "FXD1"
//	4       1     sign: 0 forward, 1 backward
//	5       1     rank: 1, 2 or 3
//	6       1     flags: bit0 = scale by 1/N, bit1 = trace ID present
//	7       1     reserved, must be 0
//	8       4     u32 batch count (≥ 1)
//	12      4     u32 deadline in milliseconds (0 = none)
//	16      4·r   u32 dims, outermost first
//	…       16    ASCII trace ID (lowercase hex), only when flags bit1 set
//	…             batch × product(dims) × 16 bytes payload
//
// Transform response layout:
//
//	0       4     magic "FXR1"
//	4       4     u32 batch size the request was coalesced into; bit31 is
//	              the trace-echo flag (masked off the size)
//	8       …     payload, same shape as the request
//	…       16    ASCII trace ID, only when bit31 of the size field is set
//
// Pipeline request layout (the binary form of OpPipeline):
//
//	0       4     magic "FXP1"
//	4       1     engine name length L (0 = the server's default engine)
//	5       1     flags: bit0 = trace ID present
//	6       2     reserved, must be 0
//	8       8     f64 ecut
//	16      8     f64 alat
//	24      4     u32 nb
//	28      4     u32 ranks
//	32      4     u32 ntg
//	36      4     u32 seed
//	40      4     u32 deadline in milliseconds (0 = none)
//	44      L     engine name (original|task-steps|task-iter|task-combined|dataflow|auto)
//	44+L    16    ASCII trace ID, only when flags bit0 set
//
// Pipeline response layout:
//
//	0       4     magic "FXQ1"
//	4       8     f64 simulated runtime in virtual seconds
//	12      1     engine name length L
//	13      L     the engine that actually ran (auto resolved)
//	13+L    16    ASCII trace ID, only when the frame is exactly 16 bytes
//	              longer than the name requires (length-discriminated)
//
// Decoders validate every length before allocating and return errors —
// never panic — on malformed input (FuzzRequestDecode holds them to that).

// Wire format constants.
var (
	magicRequest      = [4]byte{'F', 'X', 'D', '1'}
	magicResponse     = [4]byte{'F', 'X', 'R', '1'}
	magicPipeRequest  = [4]byte{'F', 'X', 'P', '1'}
	magicPipeResponse = [4]byte{'F', 'X', 'Q', '1'}
)

const (
	wireReqHeader      = 16 // fixed transform request header bytes before dims
	wireRespHeader     = 8
	wirePipeReqHeader  = 44 // fixed pipeline request bytes before the engine name
	wirePipeRespHeader = 13
	maxEngineNameLen   = 32
	flagScale          = 1 << 0
	flagTraceID        = 1 << 1 // FXD1: a 16-byte trace ID follows the dims
	pipeFlagTraceID    = 1 << 0 // FXP1 byte 5: a trace ID follows the engine name
	// flagRespTrace marks bit31 of the FXR1 batch-size field: a 16-byte
	// trace ID trails the payload. Batch sizes are bounded far below 2^31
	// (DefaultMaxElements), so the bit is never a real size.
	flagRespTrace = uint32(1) << 31
)

// PeekRoute extracts the routing key and trace ID of an encoded request
// without decoding (or validating) its payload — the router's half of the
// codec. Transforms peek as their batching ShapeKey ("f3d:16x16x16"), so a
// shape lands on the worker whose plan cache and per-shape profiles are
// already hot for it; pipeline simulations peek as their workload descriptor
// (pipelineShape), so identical cost-model probes share a worker the same
// way. Malformed bodies return an error: the router forwards those to an
// arbitrary worker, whose full decoder owns the canonical rejection.
func PeekRoute(body []byte, binary bool) (key, traceID string, err error) {
	if binary {
		return peekBinaryRoute(body)
	}
	var peek struct {
		Op       string `json:"op"`
		Dims     []int  `json:"dims"`
		Sign     int    `json:"sign"`
		Scale    bool   `json:"scale"`
		TraceID  string `json:"trace_id"`
		Pipeline *struct {
			Ecut  float64 `json:"ecut"`
			NB    int     `json:"nb"`
			Ranks int     `json:"ranks"`
			NTG   int     `json:"ntg"`
		} `json:"pipeline"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		return "", "", fmt.Errorf("unroutable JSON request: %w", err)
	}
	if peek.Pipeline != nil && (peek.Op == "" || peek.Op == OpPipeline) {
		p := peek.Pipeline
		return pipeRouteKey(p.Ecut, p.NB, p.Ranks, p.NTG), peek.TraceID, nil
	}
	if len(peek.Dims) < 1 || len(peek.Dims) > 3 {
		return "", "", fmt.Errorf("unroutable request: dims %v", peek.Dims)
	}
	r := Request{Sign: peek.Sign, Scale: peek.Scale, Dims: peek.Dims}
	if r.Sign <= 0 {
		r.Sign = -1
	}
	return r.ShapeKey(), peek.TraceID, nil
}

// pipeRouteKey is the routing/profile descriptor of a pipeline workload —
// the parameters that determine its cost, and therefore which worker's
// cost-model cache and profile store should own it.
func pipeRouteKey(ecut float64, nb, ranks, ntg int) string {
	return fmt.Sprintf("pipe:ecut%g:nb%d:r%dxt%d", ecut, nb, ranks, ntg)
}

// peekBinaryRoute reads just the FXD1/FXP1 header fields that determine
// routing, leaving the payload untouched and unvalidated.
func peekBinaryRoute(body []byte) (key, traceID string, err error) {
	if len(body) >= wirePipeReqHeader && [4]byte(body[:4]) == magicPipeRequest {
		nameLen := int(body[4])
		if nameLen > maxEngineNameLen || len(body) < wirePipeReqHeader+nameLen {
			return "", "", fmt.Errorf("unroutable pipeline request")
		}
		ecut := math.Float64frombits(binary.LittleEndian.Uint64(body[8:16]))
		nb := binary.LittleEndian.Uint32(body[24:28])
		ranks := binary.LittleEndian.Uint32(body[28:32])
		ntg := binary.LittleEndian.Uint32(body[32:36])
		if body[5]&pipeFlagTraceID != 0 {
			rest := body[wirePipeReqHeader+nameLen:]
			if len(rest) < trace.TraceIDLen {
				return "", "", fmt.Errorf("unroutable pipeline request: truncated trace ID")
			}
			traceID = string(rest[:trace.TraceIDLen])
		}
		return pipeRouteKey(ecut, int(nb), int(ranks), int(ntg)), traceID, nil
	}
	if len(body) < wireReqHeader || [4]byte(body[:4]) != magicRequest {
		return "", "", fmt.Errorf("unroutable binary request")
	}
	sign, rank, flags := body[4], body[5], body[6]
	if rank < 1 || rank > 3 || len(body) < wireReqHeader+4*int(rank) {
		return "", "", fmt.Errorf("unroutable binary request: bad rank %d", rank)
	}
	r := Request{Sign: -1, Scale: flags&flagScale != 0, Dims: make([]int, rank)}
	if sign == 1 {
		r.Sign = 1
	}
	for i := range r.Dims {
		d := binary.LittleEndian.Uint32(body[wireReqHeader+4*i:])
		if d == 0 {
			return "", "", fmt.Errorf("unroutable binary request: zero dim")
		}
		r.Dims[i] = int(d)
	}
	if flags&flagTraceID != 0 {
		rest := body[wireReqHeader+4*int(rank):]
		if len(rest) < trace.TraceIDLen {
			return "", "", fmt.Errorf("unroutable binary request: truncated trace ID")
		}
		traceID = string(rest[:trace.TraceIDLen])
	}
	return r.ShapeKey(), traceID, nil
}

// EncodeRequest renders a validated request in the binary wire format:
// transforms as an "FXD1" frame, pipeline simulations as an "FXP1" frame.
func EncodeRequest(r *Request) ([]byte, error) {
	if r.Op == OpPipeline || (r.Op == "" && r.Pipeline != nil) {
		return encodePipelineRequest(r)
	}
	if r.Op != "" && r.Op != OpTransform {
		return nil, fmt.Errorf("binary wire format carries transform and pipeline requests only, not %q", r.Op)
	}
	if len(r.Dims) < 1 || len(r.Dims) > 3 {
		return nil, fmt.Errorf("invalid rank %d", len(r.Dims))
	}
	batch := r.Batch
	if batch == 0 {
		batch = 1
	}
	out := make([]byte, 0, wireReqHeader+4*len(r.Dims)+8*len(r.Data))
	out = append(out, magicRequest[:]...)
	sign := byte(0)
	if r.Sign > 0 {
		sign = 1
	}
	flags := byte(0)
	if r.Scale {
		flags |= flagScale
	}
	if r.TraceID != "" {
		if !trace.ValidTraceID(r.TraceID) {
			return nil, fmt.Errorf("malformed trace_id %q", r.TraceID)
		}
		flags |= flagTraceID
	}
	out = append(out, sign, byte(len(r.Dims)), flags, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(batch))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.DeadlineMillis))
	for _, d := range r.Dims {
		if d <= 0 || d > math.MaxUint32 {
			return nil, fmt.Errorf("invalid dim %d", d)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(d))
	}
	if flags&flagTraceID != 0 {
		out = append(out, r.TraceID...)
	}
	for _, v := range r.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// encodePipelineRequest renders an OpPipeline request as an "FXP1" frame.
func encodePipelineRequest(r *Request) ([]byte, error) {
	p := r.Pipeline
	if p == nil {
		return nil, fmt.Errorf("pipeline request without pipeline parameters")
	}
	if len(p.Engine) > maxEngineNameLen {
		return nil, fmt.Errorf("engine name %q too long", p.Engine)
	}
	pipeFlags := byte(0)
	if r.TraceID != "" {
		if !trace.ValidTraceID(r.TraceID) {
			return nil, fmt.Errorf("malformed trace_id %q", r.TraceID)
		}
		pipeFlags |= pipeFlagTraceID
	}
	out := make([]byte, 0, wirePipeReqHeader+len(p.Engine)+trace.TraceIDLen)
	out = append(out, magicPipeRequest[:]...)
	out = append(out, byte(len(p.Engine)), pipeFlags, 0, 0)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Ecut))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Alat))
	for _, v := range []int{p.NB, p.Ranks, p.NTG, p.Seed} {
		if v < 0 || v > math.MaxUint32 {
			return nil, fmt.Errorf("pipeline field %d out of wire range", v)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(r.DeadlineMillis))
	out = append(out, p.Engine...)
	if pipeFlags&pipeFlagTraceID != 0 {
		out = append(out, r.TraceID...)
	}
	return out, nil
}

// decodePipelineRequest parses and validates an "FXP1" frame.
func decodePipelineRequest(data []byte, maxElements int) (*Request, error) {
	if len(data) < wirePipeReqHeader {
		return nil, fmt.Errorf("pipeline request truncated: %d bytes, header is %d", len(data), wirePipeReqHeader)
	}
	nameLen := int(data[4])
	pipeFlags := data[5]
	if pipeFlags&^byte(pipeFlagTraceID) != 0 {
		return nil, fmt.Errorf("unknown pipeline flags %#x", pipeFlags)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("reserved pipeline header bytes set")
	}
	want := wirePipeReqHeader + nameLen
	if pipeFlags&pipeFlagTraceID != 0 {
		want += trace.TraceIDLen
	}
	if len(data) != want {
		return nil, fmt.Errorf("pipeline request carries %d bytes, want %d", len(data), want)
	}
	ecut := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	alat := math.Float64frombits(binary.LittleEndian.Uint64(data[16:24]))
	if math.IsNaN(ecut) || math.IsInf(ecut, 0) || math.IsNaN(alat) || math.IsInf(alat, 0) {
		return nil, fmt.Errorf("pipeline ecut/alat not finite")
	}
	req := &Request{
		Op: OpPipeline,
		Pipeline: &PipelineRequest{
			Ecut:   ecut,
			Alat:   alat,
			NB:     int(binary.LittleEndian.Uint32(data[24:28])),
			Ranks:  int(binary.LittleEndian.Uint32(data[28:32])),
			NTG:    int(binary.LittleEndian.Uint32(data[32:36])),
			Seed:   int(binary.LittleEndian.Uint32(data[36:40])),
			Engine: string(data[wirePipeReqHeader : wirePipeReqHeader+nameLen]),
		},
		DeadlineMillis: int64(binary.LittleEndian.Uint32(data[40:44])),
	}
	if pipeFlags&pipeFlagTraceID != 0 {
		id := string(data[wirePipeReqHeader+nameLen:])
		if !trace.ValidTraceID(id) {
			return nil, fmt.Errorf("malformed trace ID %q", id)
		}
		req.TraceID = id
	}
	if err := req.Validate(maxElements); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeRequest parses and validates a binary request, dispatching on the
// frame magic: "FXD1" transforms, "FXP1" pipeline simulations. It never
// panics: malformed lengths, truncated payloads and non-finite components
// all return errors.
func DecodeRequest(data []byte, maxElements int) (*Request, error) {
	if maxElements <= 0 {
		maxElements = DefaultMaxElements
	}
	if len(data) >= 4 && [4]byte(data[:4]) == magicPipeRequest {
		return decodePipelineRequest(data, maxElements)
	}
	if len(data) < wireReqHeader {
		return nil, fmt.Errorf("request truncated: %d bytes, header is %d", len(data), wireReqHeader)
	}
	if [4]byte(data[:4]) != magicRequest {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	sign, rank, flags, reserved := data[4], data[5], data[6], data[7]
	if sign > 1 {
		return nil, fmt.Errorf("bad sign byte %d", sign)
	}
	if rank < 1 || rank > 3 {
		return nil, fmt.Errorf("bad rank %d", rank)
	}
	if flags&^byte(flagScale|flagTraceID) != 0 || reserved != 0 {
		return nil, fmt.Errorf("unknown flags %#x / reserved %#x", flags, reserved)
	}
	batch := binary.LittleEndian.Uint32(data[8:12])
	deadline := binary.LittleEndian.Uint32(data[12:16])
	if batch == 0 {
		return nil, fmt.Errorf("zero batch count")
	}
	if len(data) < wireReqHeader+4*int(rank) {
		return nil, fmt.Errorf("request truncated inside dims")
	}
	req := &Request{
		Op:             OpTransform,
		Sign:           -1,
		Scale:          flags&flagScale != 0,
		Batch:          int(batch),
		DeadlineMillis: int64(deadline),
		Dims:           make([]int, rank),
	}
	if sign == 1 {
		req.Sign = 1
	}
	n := 1
	for i := 0; i < int(rank); i++ {
		d := binary.LittleEndian.Uint32(data[wireReqHeader+4*i:])
		if d == 0 || int(d) > maxElements {
			return nil, fmt.Errorf("dim %d out of range", d)
		}
		if n > maxElements/int(d) {
			return nil, fmt.Errorf("dims %v exceed the %d-element limit", data[wireReqHeader:wireReqHeader+4*int(rank)], maxElements)
		}
		n *= int(d)
		req.Dims[i] = int(d)
	}
	if int(batch) > maxElements/n {
		return nil, fmt.Errorf("batch of %d×%d elements exceeds the %d-element limit", batch, n, maxElements)
	}
	rest := data[wireReqHeader+4*int(rank):]
	if flags&flagTraceID != 0 {
		if len(rest) < trace.TraceIDLen {
			return nil, fmt.Errorf("request truncated inside trace ID")
		}
		id := string(rest[:trace.TraceIDLen])
		if !trace.ValidTraceID(id) {
			return nil, fmt.Errorf("malformed trace ID %q", id)
		}
		req.TraceID = id
		rest = rest[trace.TraceIDLen:]
	}
	payload := rest
	want := int(batch) * n * 16
	if len(payload) != want {
		return nil, fmt.Errorf("payload carries %d bytes, want %d", len(payload), want)
	}
	req.Data = make([]float64, 2*int(batch)*n)
	for i := range req.Data {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("payload component %d is not finite", i)
		}
		req.Data[i] = v
	}
	if err := req.Validate(maxElements); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeResponse renders a response in the binary wire format: pipeline
// replies (recognizable by their engine label) as an "FXQ1" frame,
// transforms as "FXR1".
func EncodeResponse(resp *Response) []byte {
	echo := resp.TraceID != "" && trace.ValidTraceID(resp.TraceID)
	if resp.Engine != "" {
		out := make([]byte, 0, wirePipeRespHeader+len(resp.Engine)+trace.TraceIDLen)
		out = append(out, magicPipeResponse[:]...)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(resp.Runtime))
		out = append(out, byte(len(resp.Engine)))
		out = append(out, resp.Engine...)
		if echo {
			out = append(out, resp.TraceID...)
		}
		return out
	}
	out := make([]byte, 0, wireRespHeader+8*len(resp.Data)+trace.TraceIDLen)
	out = append(out, magicResponse[:]...)
	size := uint32(resp.BatchSize)
	if echo {
		size |= flagRespTrace
	}
	out = binary.LittleEndian.AppendUint32(out, size)
	for _, v := range resp.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	if echo {
		out = append(out, resp.TraceID...)
	}
	return out
}

// DecodeResponse parses a binary response (the loadgen's read path),
// dispatching on the frame magic.
func DecodeResponse(data []byte) (*Response, error) {
	if len(data) >= 4 && [4]byte(data[:4]) == magicPipeResponse {
		if len(data) < wirePipeRespHeader {
			return nil, fmt.Errorf("pipeline response truncated: %d bytes", len(data))
		}
		nameLen := int(data[12])
		traceID := ""
		switch len(data) {
		case wirePipeRespHeader + nameLen:
		case wirePipeRespHeader + nameLen + trace.TraceIDLen:
			traceID = string(data[wirePipeRespHeader+nameLen:])
			if !trace.ValidTraceID(traceID) {
				return nil, fmt.Errorf("malformed trace ID %q", traceID)
			}
		default:
			return nil, fmt.Errorf("pipeline response carries %d bytes, want %d", len(data), wirePipeRespHeader+nameLen)
		}
		return &Response{
			Runtime:   math.Float64frombits(binary.LittleEndian.Uint64(data[4:12])),
			Engine:    string(data[wirePipeRespHeader : wirePipeRespHeader+nameLen]),
			BatchSize: 1,
			TraceID:   traceID,
		}, nil
	}
	if len(data) < wireRespHeader {
		return nil, fmt.Errorf("response truncated: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != magicResponse {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	size := binary.LittleEndian.Uint32(data[4:8])
	body := data[wireRespHeader:]
	traceID := ""
	if size&flagRespTrace != 0 {
		if len(body) < trace.TraceIDLen {
			return nil, fmt.Errorf("response truncated inside trace ID")
		}
		traceID = string(body[len(body)-trace.TraceIDLen:])
		if !trace.ValidTraceID(traceID) {
			return nil, fmt.Errorf("malformed trace ID %q", traceID)
		}
		body = body[:len(body)-trace.TraceIDLen]
	}
	if len(body)%16 != 0 {
		return nil, fmt.Errorf("payload of %d bytes is not whole complex values", len(body))
	}
	resp := &Response{
		BatchSize: int(size &^ flagRespTrace),
		TraceID:   traceID,
		Data:      make([]float64, len(body)/8),
	}
	for i := range resp.Data {
		resp.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return resp, nil
}
