package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per series,
// histograms expanded into cumulative _bucket{le=...} lines plus _sum and
// _count. Output order is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Gather()
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if f.Kind == KindHistogram {
				if err := writeHistogram(w, f.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s Series) error {
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		// Buckets that captured a trace-linked observation carry it in the
		// OpenMetrics exemplar syntax: `... # {trace_id="…"} value ts`.
		// Plain Prometheus scrapers ignore everything after the bucket
		// value's trailing space-hash; OpenMetrics-aware ones join the
		// bucket to the sampled request's span tree.
		ex := ""
		if b.Exemplar != nil {
			ex = fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
				escapeLabel(b.Exemplar.TraceID), formatValue(b.Exemplar.Value),
				float64(b.Exemplar.UnixNano)/1e9)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, labelString(s.Labels, "le", le), b.Count, ex); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.Labels, "", ""), formatValue(s.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels, "", ""), s.Count)
	return err
}

// labelString renders {k1="v1",k2="v2"} with an optional extra pair (used
// for histogram le labels); empty label sets render as "".
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as Prometheus text.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// expvar.Publish panics on duplicate names, so remember what we published.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name (shown at
// /debug/vars) as a JSON object {family: {"label1=a,label2=b": value}},
// histograms as {"...": {"sum": s, "count": n}}. Publishing the same name
// twice is a no-op.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.expvarValue() }))
}

func (r *Registry) expvarValue() any {
	snap := r.Gather()
	out := map[string]map[string]json.RawMessage{}
	for _, f := range snap.Families {
		m := map[string]json.RawMessage{}
		for _, s := range f.Series {
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = l.Key + "=" + l.Value
			}
			key := strings.Join(parts, ",")
			var v any = s.Value
			if f.Kind == KindHistogram {
				v = map[string]any{"sum": s.Value, "count": s.Count}
			}
			raw, err := json.Marshal(v)
			if err != nil {
				continue
			}
			m[key] = raw
		}
		out[f.Name] = m
	}
	return out
}
