// Package metrics is a dependency-free, always-on telemetry registry in the
// Prometheus data model: counters, gauges and fixed-bucket histograms,
// organized into labeled families. All mutation paths are lock-free atomic
// operations on pre-resolved series handles, so the simulator's hot layers
// (the vtime engine, the MPI library, the task runtime) can instrument
// every event at negligible cost.
//
// A family is one named metric with a fixed label-key set; a series is one
// (family, label-values) combination. Families are created idempotently:
// two packages asking for the same family name (with matching kind and
// keys) share it, which is how the mpi and ompss layers both feed the
// per-phase compute counters.
//
// The registry can be rendered as Prometheus text exposition
// (WritePrometheus / Handler) and published as an expvar variable
// (PublishExpvar), both reading a consistent Snapshot.
//
// SetEnabled(false) turns every mutation into a no-op, which is what the
// instrumentation-overhead benchmark compares against.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide telemetry switch. Mutators check it; readers
// (Gather, WritePrometheus) ignore it.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the telemetry layer on or off process-wide. When off,
// every counter/gauge/histogram mutation returns immediately.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the telemetry layer is recording.
func Enabled() bool { return enabled.Load() }

// Kind classifies a metric family.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Counter is a monotonically increasing float64. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear in
// the exposition.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter. Negative increments panic.
func (c *Counter) Add(v float64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		panic(fmt.Sprintf("metrics: counter decremented by %g", v))
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (negative to decrement).
func (g *Gauge) Add(v float64) {
	if !enabled.Load() {
		return
	}
	addFloat(&g.bits, v)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution: cumulative bucket counts in the
// Prometheus style (each bucket counts observations <= its upper bound,
// with an implicit +Inf bucket), plus sum and count. Each bucket can carry
// one exemplar — the most recent (value, trace ID) observation that landed
// in it — linking tail-latency buckets to sampled request traces.
type Histogram struct {
	bounds    []float64 // ascending upper bounds, excluding +Inf
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
	sum       atomic.Uint64 // float64 bits
	count     atomic.Uint64
}

// Exemplar links one observation to the trace that produced it.
type Exemplar struct {
	// Value is the observed value (e.g. the request latency in seconds).
	Value float64 `json:"value"`
	// TraceID identifies the sampled request span tree.
	TraceID string `json:"trace_id"`
	// UnixNano is when the observation happened.
	UnixNano int64 `json:"ts_ns"`
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveExemplar records one value and attaches (value, traceID, now) as
// the exemplar of the bucket the value lands in — last write wins, which
// for a tail bucket means "the most recent slow request". An empty traceID
// degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string, unixNano int64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNano: unixNano})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default histogram bucket layout: exponential from 1 µs
// to 10 s, suited to the simulator's virtual-time durations.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// series is one (family, label-values) combination.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with a fixed label-key set.
type family struct {
	name    string
	help    string
	kind    Kind
	keys    []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("metrics: family %s has %d label keys, got %d values", f.name, len(f.keys), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{
			bounds:    f.buckets,
			counts:    make([]atomic.Uint64, len(f.buckets)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.buckets)+1),
		}
	}
	f.series[key] = s
	return s
}

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry or use Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented layer
// records into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help string, kind Kind, buckets []float64, keys []string) *family {
	if name == "" {
		panic("metrics: empty family name")
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, kind: kind,
				keys:    append([]string(nil), keys...),
				buckets: buckets,
				series:  map[string]*series{},
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.keys) != len(keys) {
		panic(fmt.Sprintf("metrics: family %s re-registered with different kind or label keys", name))
	}
	for i := range keys {
		if f.keys[i] != keys[i] {
			panic(fmt.Sprintf("metrics: family %s re-registered with label key %q (was %q)", name, keys[i], f.keys[i]))
		}
	}
	return f
}

// CounterVec declares (or retrieves) a counter family with the given label
// keys. Declaring the same name twice returns the same family; mismatched
// kind or keys panic.
type CounterVec struct{ f *family }

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, nil, keys)}
}

// With returns the counter for the given label values (created on first
// use). The handle is stable: cache it on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// Counter declares an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, nil, keys)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// Gauge declares an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec is a labeled histogram family with fixed buckets.
type HistogramVec struct{ f *family }

// HistogramVec declares a labeled histogram family. buckets must be sorted
// ascending; nil means DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: histogram %s buckets not sorted", name))
	}
	return &HistogramVec{r.family(name, help, KindHistogram, buckets, keys)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Histogram declares an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// Reset zeroes every series in the registry (handles held by instrumented
// code stay valid). Intended for tests and per-run baselines.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		f.mu.RLock()
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				s.counter.bits.Store(0)
			case s.gauge != nil:
				s.gauge.bits.Store(0)
			case s.hist != nil:
				for i := range s.hist.counts {
					s.hist.counts[i].Store(0)
					s.hist.exemplars[i].Store(nil)
				}
				s.hist.sum.Store(0)
				s.hist.count.Store(0)
			}
		}
		f.mu.RUnlock()
	}
}

// --- snapshot iteration ---

// Label is one label key/value pair.
type Label struct {
	Key   string
	Value string
}

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	UpperBound float64 // +Inf for the last bucket
	Count      uint64  // observations <= UpperBound
	// Exemplar is the most recent trace-linked observation that landed in
	// this bucket (nil when none was recorded).
	Exemplar *Exemplar
}

// Series is one series of a snapshot.
type Series struct {
	Labels []Label
	// Value is the counter or gauge value (histograms: the sum).
	Value float64
	// Count and Buckets are set for histograms only.
	Count   uint64
	Buckets []Bucket
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram series by
// linear interpolation inside the bucket that crosses the target rank — the
// Prometheus histogram_quantile estimator. The lowest bucket interpolates
// from zero; ranks landing in the +Inf bucket return the highest finite
// bound. It returns NaN for non-histogram series or empty histograms.
func (s Series) Quantile(q float64) float64 {
	if len(s.Buckets) == 0 || s.Count == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = s.Buckets[i-1].UpperBound, s.Buckets[i-1].Count
		}
		hi := b.UpperBound
		if math.IsInf(hi, 1) {
			// Rank lands past every finite bound: the best available
			// estimate is the highest finite bound.
			return lo
		}
		inBucket := float64(b.Count - loCount)
		if inBucket <= 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(loCount))/inBucket
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Family is one family of a snapshot.
type Family struct {
	Name   string
	Help   string
	Kind   Kind
	Series []Series
}

// Snapshot is a point-in-time copy of a registry, sorted by family name and
// label values for deterministic iteration.
type Snapshot struct {
	Families []Family
}

// Gather snapshots the registry.
func (r *Registry) Gather() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := Family{Name: f.name, Help: f.help, Kind: f.kind}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := Series{}
			for i, key := range f.keys {
				ss.Labels = append(ss.Labels, Label{Key: key, Value: s.labelValues[i]})
			}
			switch {
			case s.counter != nil:
				ss.Value = s.counter.Value()
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			case s.hist != nil:
				ss.Value = s.hist.Sum()
				ss.Count = s.hist.Count()
				var cum uint64
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					ub := math.Inf(1)
					if i < len(s.hist.bounds) {
						ub = s.hist.bounds[i]
					}
					ss.Buckets = append(ss.Buckets, Bucket{UpperBound: ub, Count: cum,
						Exemplar: s.hist.exemplars[i].Load()})
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Find returns the family with the given name, or nil.
func (s Snapshot) Find(name string) *Family {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Sum returns the sum of all series values of the named family (0 if the
// family is absent).
func (s Snapshot) Sum(name string) float64 {
	f := s.Find(name)
	if f == nil {
		return 0
	}
	var total float64
	for _, ss := range f.Series {
		total += ss.Value
	}
	return total
}

// Get returns the value of the series with exactly the given label values
// (in family key order). The second result is false if absent.
func (s Snapshot) Get(name string, labelValues ...string) (float64, bool) {
	f := s.Find(name)
	if f == nil {
		return 0, false
	}
outer:
	for _, ss := range f.Series {
		if len(ss.Labels) != len(labelValues) {
			continue
		}
		for i, l := range ss.Labels {
			if l.Value != labelValues[i] {
				continue outer
			}
		}
		return ss.Value, true
	}
	return 0, false
}
