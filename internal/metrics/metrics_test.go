package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	g.SetMax(10)
	g.SetMax(3) // below current, ignored
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after SetMax = %g, want 10", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_neg_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_calls_total", "calls", "comm", "op")
	v.With("world", "Alltoall").Add(3)
	v.With("world", "Bcast").Inc()
	v.With("pool", "Alltoall").Inc()

	// Idempotent re-registration returns the same family.
	v2 := r.CounterVec("test_calls_total", "calls", "comm", "op")
	if v2.With("world", "Alltoall") != v.With("world", "Alltoall") {
		t.Fatal("re-registered family returned a different series")
	}

	snap := r.Gather()
	if got := snap.Sum("test_calls_total"); got != 5 {
		t.Fatalf("Sum = %g, want 5", got)
	}
	if got, ok := snap.Get("test_calls_total", "world", "Alltoall"); !ok || got != 3 {
		t.Fatalf("Get(world,Alltoall) = %g,%v want 3,true", got, ok)
	}
	if _, ok := snap.Get("test_calls_total", "nope", "Alltoall"); ok {
		t.Fatal("Get on absent series reported ok")
	}
}

func TestFamilyMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_kind_total", "", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.GaugeVec("test_kind_total", "", "a")
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_dur_seconds", "durations", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	snap := r.Gather()
	f := snap.Find("test_dur_seconds")
	if f == nil || len(f.Series) != 1 {
		t.Fatal("histogram family missing from snapshot")
	}
	b := f.Series[0].Buckets
	wantCum := []uint64{1, 3, 4, 5} // <=0.1, <=1, <=10, +Inf
	if len(b) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(b), len(wantCum))
	}
	for i, want := range wantCum {
		if b[i].Count != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, b[i].Count, want)
		}
	}
	if !math.IsInf(b[3].UpperBound, 1) {
		t.Fatal("last bucket upper bound is not +Inf")
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_gate_total", "")
	SetEnabled(false)
	c.Inc()
	SetEnabled(true)
	if c.Value() != 0 {
		t.Fatalf("counter advanced while disabled: %g", c.Value())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter = %g after re-enable, want 1", c.Value())
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_reset_total", "")
	h := r.Histogram("test_reset_seconds", "", nil)
	c.Add(7)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left state: c=%g count=%d sum=%g", c.Value(), h.Count(), h.Sum())
	}
	// Handles stay live after Reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter handle dead after Reset: %g", c.Value())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_bytes_total", "bytes moved", "op").With("Alltoall").Add(4096)
	r.Gauge("test_in_flight", "tasks in flight").Set(3)
	r.Histogram("test_lat_seconds", "latency", []float64{0.5, 1}).Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_bytes_total bytes moved",
		"# TYPE test_bytes_total counter",
		`test_bytes_total{op="Alltoall"} 4096`,
		"# TYPE test_in_flight gauge",
		"test_in_flight 3",
		"# TYPE test_lat_seconds histogram",
		`test_lat_seconds_bucket{le="0.5"} 1`,
		`test_lat_seconds_bucket{le="1"} 1`,
		`test_lat_seconds_bucket{le="+Inf"} 1`,
		"test_lat_seconds_sum 0.25",
		"test_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must parse as: name_or_name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "", "k").With(`a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_esc_total{k="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_http_total", "").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "test_http_total 1") {
		t.Fatalf("handler body missing metric:\n%s", body)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_conc_total", "", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With(string(rune('a' + w%2)))
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Gather().Sum("test_conc_total"); got != 8000 {
		t.Fatalf("concurrent sum = %g, want 8000", got)
	}
}

func TestSeriesQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("quantile_test_seconds", "quantile estimator input", []float64{0.1, 0.2, 0.4, 0.8})
	// 10 observations spread over the first three buckets:
	// 4 in (0, 0.1], 4 in (0.1, 0.2], 2 in (0.2, 0.4].
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.15)
	}
	h.Observe(0.3)
	h.Observe(0.35)

	f := r.Gather().Find("quantile_test_seconds")
	if f == nil || len(f.Series) != 1 {
		t.Fatal("missing quantile_test_seconds family")
	}
	s := f.Series[0]

	cases := []struct{ q, want float64 }{
		{0.2, 0.05}, // rank 2 of 4 inside (0,0.1] -> 0.05
		{0.4, 0.1},  // rank 4 = bucket boundary
		{0.8, 0.2},  // rank 8 = boundary of second bucket
		{0.9, 0.3},  // rank 9: halfway into (0.2,0.4]
		{1.0, 0.4},  // rank 10 = top of the last occupied bucket
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(s.Quantile(0)) || !math.IsNaN(s.Quantile(1.5)) {
		t.Error("out-of-range quantiles must be NaN")
	}

	// Observations beyond every finite bound: the estimate clamps to the
	// highest finite bound.
	h.Observe(5)
	s = r.Gather().Find("quantile_test_seconds").Series[0]
	if got := s.Quantile(1.0); got != 0.8 {
		t.Errorf("Quantile(1.0) with +Inf rank = %g, want clamp to 0.8", got)
	}

	// Counter series have no buckets.
	r.Counter("quantile_test_total", "not a histogram").Inc()
	cs := r.Gather().Find("quantile_test_total").Series[0]
	if !math.IsNaN(cs.Quantile(0.5)) {
		t.Error("Quantile on a counter series must be NaN")
	}
}
