package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Timeline renders a Paraver-style state timeline as ASCII art: one row per
// lane, time on the horizontal axis, one character per time bucket. The
// character shows the dominant state of the bucket:
//
//	'#' compute, high intensity class (>= classSplit)
//	'+' compute, lower intensity class
//	's' MPI sync wait, 't' MPI transfer, 'r' runtime overhead,
//	'.' idle, ' ' nothing recorded
//
// classSplit separates "high" from "low" compute classes for display; pass 0
// to mark all compute as '#'.
func (t *Trace) Timeline(width int, classSplit int) string {
	if width <= 0 {
		width = 80
	}
	start, end := t.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	dt := (end - start) / float64(width)
	// weight[lane][bucket][stateCode] accumulated duration
	const nCodes = 6
	weights := make([][][nCodes]float64, t.Lanes)
	for i := range weights {
		weights[i] = make([][nCodes]float64, width)
	}
	code := func(iv Interval) int {
		switch iv.Kind {
		case KindCompute:
			if iv.Class >= classSplit {
				return 0
			}
			return 1
		case KindMPISync:
			return 2
		case KindMPITransfer:
			return 3
		case KindRuntime:
			return 4
		default:
			return 5
		}
	}
	for _, iv := range t.Intervals {
		c := code(iv)
		b0 := int((iv.Start - start) / dt)
		b1 := int((iv.End - start) / dt)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := start + float64(b)*dt
			hi := lo + dt
			ov := math.Min(hi, iv.End) - math.Max(lo, iv.Start)
			if ov > 0 {
				weights[iv.Lane][b][c] += ov
			}
		}
	}
	glyphs := []byte{'#', '+', 's', 't', 'r', '.'}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time: %.4gs .. %.4gs  (%d lanes, '#'=compute hi, '+'=compute lo, 's'=sync, 't'=transfer, 'r'=runtime, '.'=idle)\n",
		start, end, t.Lanes)
	for lane := 0; lane < t.Lanes; lane++ {
		fmt.Fprintf(&sb, "%4d |", lane)
		for b := 0; b < width; b++ {
			best, bestW := -1, 0.0
			for c := 0; c < nCodes; c++ {
				if w := weights[lane][b][c]; w > bestW {
					best, bestW = c, w
				}
			}
			if best < 0 {
				sb.WriteByte(' ')
			} else {
				sb.WriteByte(glyphs[best])
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// HistogramBin is one cell of the IPC histogram: accumulated compute
// duration of intervals on one lane whose IPC falls in one bin.
type HistogramBin struct {
	Lane     int
	Bin      int
	Duration float64
}

// IPCHistogram builds the Paraver-style 2-D histogram of Figure 7: for each
// lane, compute intervals are grouped by IPC into nBins bins spanning
// [0, maxIPC); the accumulated duration lands in the cell. Intervals with
// IPC >= maxIPC go to the last bin.
func (t *Trace) IPCHistogram(nBins int, maxIPC float64) [][]float64 {
	h := make([][]float64, t.Lanes)
	for i := range h {
		h[i] = make([]float64, nBins)
	}
	for _, iv := range t.Intervals {
		if iv.Kind != KindCompute {
			continue
		}
		ipc := t.IPC(iv)
		b := int(ipc / maxIPC * float64(nBins))
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		h[iv.Lane][b] += iv.Duration()
	}
	return h
}

// RenderIPCHistogram renders the 2-D IPC histogram as ASCII: rows are lanes,
// columns are IPC bins, cell darkness encodes accumulated duration relative
// to the densest cell (' ' none, '.' light, ':', '+', '#' heavy).
func (t *Trace) RenderIPCHistogram(nBins int, maxIPC float64) string {
	h := t.IPCHistogram(nBins, maxIPC)
	var peak float64
	for _, row := range h {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "IPC histogram: %d lanes x %d bins over IPC [0,%.2f), cell = accumulated time\n",
		t.Lanes, nBins, maxIPC)
	sb.WriteString("      ")
	for b := 0; b < nBins; b++ {
		if b%10 == 0 {
			fmt.Fprintf(&sb, "%-10s", fmt.Sprintf("%.2f", maxIPC*float64(b)/float64(nBins)))
		}
	}
	sb.WriteString("\n")
	shades := []byte{' ', '.', ':', '+', '#'}
	for lane, row := range h {
		fmt.Fprintf(&sb, "%4d |", lane)
		for _, v := range row {
			s := 0
			if peak > 0 && v > 0 {
				s = 1 + int(v/peak*3.999)
				if s > 4 {
					s = 4
				}
			}
			sb.WriteByte(shades[s])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// PhaseStats summarizes one compute phase across the trace.
type PhaseStats struct {
	Phase    string
	Count    int
	Time     float64 // accumulated duration
	Instr    float64
	AvgIPC   float64
	MeanTime float64
}

// PhaseBreakdown aggregates compute intervals by phase name, sorted by
// accumulated time, descending.
func (t *Trace) PhaseBreakdown() []PhaseStats {
	byPhase := map[string]*PhaseStats{}
	for _, iv := range t.Intervals {
		if iv.Kind != KindCompute {
			continue
		}
		ps := byPhase[iv.Phase]
		if ps == nil {
			ps = &PhaseStats{Phase: iv.Phase}
			byPhase[iv.Phase] = ps
		}
		ps.Count++
		ps.Time += iv.Duration()
		ps.Instr += iv.Instr
	}
	out := make([]PhaseStats, 0, len(byPhase))
	for _, ps := range byPhase {
		if ps.Time > 0 {
			ps.AvgIPC = ps.Instr / (ps.Time * t.Freq)
			ps.MeanTime = ps.Time / float64(ps.Count)
		}
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// FormatPhaseBreakdown renders PhaseBreakdown as an aligned text table.
func (t *Trace) FormatPhaseBreakdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %12s %10s %8s\n", "phase", "count", "time[s]", "mean[ms]", "IPC")
	for _, ps := range t.PhaseBreakdown() {
		fmt.Fprintf(&sb, "%-16s %8d %12.6f %10.4f %8.3f\n",
			ps.Phase, ps.Count, ps.Time, ps.MeanTime*1e3, ps.AvgIPC)
	}
	return sb.String()
}

// DurationTimeline renders the Figure 3 top view: lanes over time, shaded
// by the length of the compute burst covering each bucket (short bursts
// light, long bursts dark: ' ', '.', ':', '+', '#'). MPI and idle time
// render as '-' and ' '. The repeating band-iteration structure of the FFT
// phase shows up as alternating long (XY block) and short (prep/pack)
// stripes.
func (t *Trace) DurationTimeline(width int) string {
	if width <= 0 {
		width = 80
	}
	start, end := t.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	dt := (end - start) / float64(width)
	// Longest compute interval sets the shade scale.
	var longest float64
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute && iv.Duration() > longest {
			longest = iv.Duration()
		}
	}
	type cell struct {
		dur   float64 // duration of the dominant compute burst
		w     float64 // its overlap weight
		other float64 // non-compute weight
	}
	cells := make([][]cell, t.Lanes)
	for i := range cells {
		cells[i] = make([]cell, width)
	}
	for _, iv := range t.Intervals {
		b0 := int((iv.Start - start) / dt)
		b1 := int((iv.End - start) / dt)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := start + float64(b)*dt
			hi := lo + dt
			ov := math.Min(hi, iv.End) - math.Max(lo, iv.Start)
			if ov <= 0 {
				continue
			}
			c := &cells[iv.Lane][b]
			if iv.Kind == KindCompute {
				if ov > c.w {
					c.w = ov
					c.dur = iv.Duration()
				}
			} else {
				c.other += ov
			}
		}
	}
	shades := []byte{'.', ':', '+', '#'}
	var sb strings.Builder
	fmt.Fprintf(&sb, "compute-burst length timeline: %.4gs .. %.4gs ('.'=short burst, '#'=long burst, '-'=MPI/runtime)\n",
		start, end)
	for lane := 0; lane < t.Lanes; lane++ {
		fmt.Fprintf(&sb, "%4d |", lane)
		for b := 0; b < width; b++ {
			c := cells[lane][b]
			switch {
			case c.w == 0 && c.other == 0:
				sb.WriteByte(' ')
			case c.w < c.other:
				sb.WriteByte('-')
			default:
				s := int(c.dur / longest * 3.999)
				if s > 3 {
					s = 3
				}
				sb.WriteByte(shades[s])
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// PhaseTimeline renders lanes over time with one letter per compute phase
// (assigned alphabetically: the legend line maps letters to phase names) —
// the "MPI calls / phases" view of the paper's Figure 3 zoom. Non-compute
// states render as '-' (MPI) and ' '.
func (t *Trace) PhaseTimeline(width int) string {
	if width <= 0 {
		width = 80
	}
	start, end := t.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	phases := t.Phases()
	letter := map[string]byte{}
	for i, ph := range phases {
		letter[ph] = byte('a' + i%26)
	}
	dt := (end - start) / float64(width)
	type cell struct {
		phase string
		w     float64
		mpi   float64
	}
	cells := make([][]cell, t.Lanes)
	for i := range cells {
		cells[i] = make([]cell, width)
	}
	for _, iv := range t.Intervals {
		b0 := int((iv.Start - start) / dt)
		b1 := int((iv.End - start) / dt)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := start + float64(b)*dt
			hi := lo + dt
			ov := math.Min(hi, iv.End) - math.Max(lo, iv.Start)
			if ov <= 0 {
				continue
			}
			c := &cells[iv.Lane][b]
			switch iv.Kind {
			case KindCompute:
				if ov > c.w {
					c.w = ov
					c.phase = iv.Phase
				}
			case KindMPISync, KindMPITransfer:
				c.mpi += ov
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("phase timeline legend:")
	for _, ph := range phases {
		fmt.Fprintf(&sb, " %c=%s", letter[ph], ph)
	}
	sb.WriteString("  '-'=MPI\n")
	for lane := 0; lane < t.Lanes; lane++ {
		fmt.Fprintf(&sb, "%4d |", lane)
		for b := 0; b < width; b++ {
			c := cells[lane][b]
			switch {
			case c.w == 0 && c.mpi == 0:
				sb.WriteByte(' ')
			case c.mpi > c.w:
				sb.WriteByte('-')
			default:
				sb.WriteByte(letter[c.phase])
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
