package trace

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	t := New(2, 1e9)
	r0 := Recorder{S: t, Lane: 0}
	r1 := Recorder{S: t, Lane: 1}
	r0.Compute(0, 1, "fft-z", 1, 0.5e9) // IPC 0.5
	r0.MPI("Alltoall", "world", 7, 1, 1.25, 1.5)
	r0.Compute(1.5, 2.5, "vofr", 2, 0.8e9) // IPC 0.8
	r1.Compute(0, 2, "fft-z", 1, 1.0e9)    // IPC 0.5
	r1.MPI("Alltoall", "world", 7, 2, 2.0, 2.5)
	r1.Idle(2.5, 3.0)
	return t
}

func TestSpanAndRuntime(t *testing.T) {
	tr := sample()
	s, e := tr.Span()
	if s != 0 || e != 3.0 {
		t.Fatalf("span = [%v,%v], want [0,3]", s, e)
	}
	if tr.Runtime() != 3.0 {
		t.Fatalf("runtime = %v", tr.Runtime())
	}
}

func TestIPC(t *testing.T) {
	tr := sample()
	iv := tr.Intervals[0]
	if got := tr.IPC(iv); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("IPC = %v, want 0.5", got)
	}
	// Non-compute interval has IPC 0.
	for _, iv := range tr.Intervals {
		if iv.Kind != KindCompute && tr.IPC(iv) != 0 {
			t.Fatalf("non-compute IPC = %v", tr.IPC(iv))
		}
	}
}

func TestTimeByKind(t *testing.T) {
	tr := sample()
	comp := tr.TimeByKind(KindCompute)
	if math.Abs(comp[0]-2.0) > 1e-12 || math.Abs(comp[1]-2.0) > 1e-12 {
		t.Fatalf("compute per lane = %v", comp)
	}
	sync := tr.TimeByKind(KindMPISync)
	if math.Abs(sync[0]-0.25) > 1e-12 {
		t.Fatalf("sync lane0 = %v", sync[0])
	}
	idle := tr.TimeByKind(KindIdle)
	if math.Abs(idle[1]-0.5) > 1e-12 {
		t.Fatalf("idle lane1 = %v", idle[1])
	}
}

func TestAvgIPCWeighted(t *testing.T) {
	tr := sample()
	// total instr = (0.5+0.8+1.0)e9 = 2.3e9; total compute time = 4 s at 1 GHz.
	want := 2.3e9 / (4 * 1e9)
	if got := tr.AvgIPC(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgIPC = %v, want %v", got, want)
	}
}

func TestPhaseAvgIPC(t *testing.T) {
	tr := sample()
	// fft-z: 1.5e9 instr over 3 s.
	if got := tr.PhaseAvgIPC("fft-z"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fft-z IPC = %v, want 0.5", got)
	}
	if got := tr.PhaseAvgIPC("vofr"); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("vofr IPC = %v, want 0.8", got)
	}
}

func TestPhases(t *testing.T) {
	tr := sample()
	got := tr.Phases()
	if len(got) != 2 || got[0] != "fft-z" || got[1] != "vofr" {
		t.Fatalf("phases = %v", got)
	}
}

func TestPhaseBreakdownSorted(t *testing.T) {
	tr := sample()
	pb := tr.PhaseBreakdown()
	if len(pb) != 2 {
		t.Fatalf("breakdown = %+v", pb)
	}
	if pb[0].Phase != "fft-z" || pb[0].Count != 2 {
		t.Fatalf("first = %+v, want fft-z with count 2", pb[0])
	}
	if pb[0].Time < pb[1].Time {
		t.Fatal("breakdown not sorted by time desc")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	tr := sample()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lanes != tr.Lanes || got.Freq != tr.Freq || len(got.Intervals) != len(tr.Intervals) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range got.Intervals {
		if got.Intervals[i] != tr.Intervals[i] {
			t.Fatalf("interval %d mismatch: %+v vs %+v", i, got.Intervals[i], tr.Intervals[i])
		}
	}
}

func TestTimelineRenders(t *testing.T) {
	tr := sample()
	out := tr.Timeline(40, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 lanes
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "+") {
		t.Fatalf("expected both compute glyphs:\n%s", out)
	}
	if !strings.Contains(out, "t") {
		t.Fatalf("expected transfer glyph:\n%s", out)
	}
}

func TestIPCHistogramPlacement(t *testing.T) {
	tr := sample()
	h := tr.IPCHistogram(10, 1.0)
	// Lane 0: 1s at IPC 0.5 (bin 5), 1s at IPC 0.8 (bin 8).
	if math.Abs(h[0][5]-1.0) > 1e-12 {
		t.Fatalf("h[0][5] = %v", h[0][5])
	}
	if math.Abs(h[0][8]-1.0) > 1e-12 {
		t.Fatalf("h[0][8] = %v", h[0][8])
	}
	// Lane 1: 2s at IPC 0.5.
	if math.Abs(h[1][5]-2.0) > 1e-12 {
		t.Fatalf("h[1][5] = %v", h[1][5])
	}
}

func TestIPCHistogramClampsHighIPC(t *testing.T) {
	tr := New(1, 1e9)
	Recorder{S: tr, Lane: 0}.Compute(0, 1, "x", 0, 5e9) // IPC 5 > max 1
	h := tr.IPCHistogram(4, 1.0)
	if h[0][3] != 1.0 {
		t.Fatalf("high-IPC interval not clamped to last bin: %v", h[0])
	}
}

func TestRenderIPCHistogram(t *testing.T) {
	out := sample().RenderIPCHistogram(20, 1.0)
	if !strings.Contains(out, "lanes") || !strings.Contains(out, "#") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}

func TestZeroDurationDropped(t *testing.T) {
	tr := New(1, 1e9)
	tr.Record(Interval{Lane: 0, Start: 1, End: 1, Kind: KindCompute})
	if len(tr.Intervals) != 0 {
		t.Fatal("zero-duration interval kept")
	}
}

func TestRecordPanicsOnBadLane(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1e9).Record(Interval{Lane: 3, Start: 0, End: 1})
}

// Property: total time accounted by TimeByKind over all kinds equals the sum
// of all interval durations.
func TestPropertyKindPartition(t *testing.T) {
	f := func(spans []struct {
		Lane  uint8
		Dur   uint16
		KindN uint8
	}) bool {
		tr := New(8, 1e9)
		var want float64
		var cursor float64
		for _, s := range spans {
			d := float64(s.Dur) / 100
			iv := Interval{
				Lane:  int(s.Lane) % 8,
				Start: cursor,
				End:   cursor + d,
				Kind:  Kind(int(s.KindN) % 5),
				Instr: 1,
			}
			cursor += d
			tr.Record(iv)
			want += iv.Duration()
		}
		var got float64
		for k := KindCompute; k <= KindIdle; k++ {
			for _, v := range tr.TimeByKind(k) {
				got += v
			}
		}
		return math.Abs(got-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCommStatsAggregation(t *testing.T) {
	tr := New(3, 1e9)
	r0 := Recorder{S: tr, Lane: 0}
	r1 := Recorder{S: tr, Lane: 1}
	r2 := Recorder{S: tr, Lane: 2}
	r0.MPI("Alltoallv", "pack0", 0, 0, 0.5, 1.0)
	r1.MPI("Alltoallv", "pack0", 0, 0, 0.25, 1.0)
	r2.MPI("Alltoallv", "grp0", 0, 0, 0.1, 0.2)
	stats := tr.CommStats()
	if len(stats) != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats[0].Comm != "pack0" || stats[0].Calls != 2 || stats[0].Lanes != 2 {
		t.Fatalf("pack0 first with 2 calls/2 lanes, got %+v", stats[0])
	}
	if d := stats[0].SyncTime - 0.75; d > 1e-12 || d < -1e-12 {
		t.Fatalf("pack0 sync %v", stats[0].SyncTime)
	}
	if d := stats[0].XferTime - 1.25; d > 1e-12 || d < -1e-12 {
		t.Fatalf("pack0 xfer %v", stats[0].XferTime)
	}
	out := tr.FormatCommStats()
	if !strings.Contains(out, "pack0") || !strings.Contains(out, "grp0") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestDurationTimeline(t *testing.T) {
	tr := New(2, 1e9)
	r0 := Recorder{S: tr, Lane: 0}
	r0.Compute(0, 0.1, "short", 0, 1e7) // short burst
	r0.MPI("A", "c", 0, 0.1, 0.15, 0.2)
	r0.Compute(0.2, 2.0, "long", 2, 1e9) // long burst
	r1 := Recorder{S: tr, Lane: 1}
	r1.Compute(0, 2.0, "long", 2, 1e9)
	out := tr.DurationTimeline(40)
	if !strings.Contains(out, "#") {
		t.Fatalf("no long-burst shading:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Fatalf("no short-burst shading:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 lanes:\n%s", out)
	}
}

func TestDurationTimelineEmpty(t *testing.T) {
	if out := New(1, 1e9).DurationTimeline(10); !strings.Contains(out, "empty") {
		t.Fatalf("got %q", out)
	}
}

func TestPhaseTimeline(t *testing.T) {
	tr := sample()
	out := tr.PhaseTimeline(40)
	if !strings.Contains(out, "a=fft-z") || !strings.Contains(out, "b=vofr") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "-") {
		t.Fatalf("timeline content missing:\n%s", out)
	}
}
