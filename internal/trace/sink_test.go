package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func iv(lane int, start, end float64) Interval {
	return Interval{Lane: lane, Start: start, End: end, Kind: KindCompute, Phase: "p", Instr: 1e9}
}

func TestTraceIsASink(t *testing.T) {
	var _ Sink = New(1, 1e9)
}

func TestRingSinkBasics(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 3; i++ {
		r.Record(iv(0, float64(i), float64(i)+0.5))
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3,0", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	for i, x := range snap {
		if x.Start != float64(i) {
			t.Fatalf("snapshot[%d].Start = %g, want %d", i, x.Start, i)
		}
	}
}

func TestRingSinkEviction(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Record(iv(0, float64(i), float64(i)+0.5))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	// Oldest-first: the last 4 recorded, 6..9.
	for i, x := range snap {
		if want := float64(6 + i); x.Start != want {
			t.Fatalf("snapshot[%d].Start = %g, want %g", i, x.Start, want)
		}
	}
}

// TestRingSinkConstantMemory drives the ring with 10x more intervals than
// its capacity and checks storage stays capped — the acceptance property
// that long runs no longer grow memory without limit.
func TestRingSinkConstantMemory(t *testing.T) {
	const capacity = 1000
	r := NewRingSink(capacity)
	short, long := 10*capacity, 100*capacity // long run is 10x the short one
	for i := 0; i < short; i++ {
		r.Record(iv(0, float64(i), float64(i)+0.5))
	}
	lenShort, capShort := r.Len(), cap(r.buf)
	for i := short; i < long; i++ {
		r.Record(iv(0, float64(i), float64(i)+0.5))
	}
	if r.Len() != lenShort || cap(r.buf) != capShort {
		t.Fatalf("ring grew: len %d->%d cap %d->%d", lenShort, r.Len(), capShort, cap(r.buf))
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != long-capacity {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), long-capacity)
	}
}

func TestRingSinkTrace(t *testing.T) {
	r := NewRingSink(8)
	r.Record(iv(0, 0, 1))
	r.Record(iv(1, 1, 2))
	tr := r.Trace(2, 1e9)
	if tr.Lanes != 2 || tr.Freq != 1e9 || len(tr.Intervals) != 2 {
		t.Fatalf("materialized trace wrong: %+v", tr)
	}
}

func TestSampleSink(t *testing.T) {
	dst := New(1, 1e9)
	s := &SampleSink{Every: 3, Dst: dst}
	for i := 0; i < 9; i++ {
		s.Record(iv(0, float64(i), float64(i)+0.5))
	}
	if s.Seen() != 9 {
		t.Fatalf("seen = %d, want 9", s.Seen())
	}
	if len(dst.Intervals) != 3 {
		t.Fatalf("forwarded %d intervals, want 3", len(dst.Intervals))
	}
	// Keeps the 1st, 4th, 7th.
	for i, want := range []float64{0, 3, 6} {
		if dst.Intervals[i].Start != want {
			t.Fatalf("sample[%d].Start = %g, want %g", i, dst.Intervals[i].Start, want)
		}
	}
}

func TestSampleSinkPassthrough(t *testing.T) {
	dst := New(1, 1e9)
	s := &SampleSink{Every: 1, Dst: dst}
	for i := 0; i < 5; i++ {
		s.Record(iv(0, float64(i), float64(i)+0.5))
	}
	if len(dst.Intervals) != 5 {
		t.Fatalf("Every=1 forwarded %d, want 5", len(dst.Intervals))
	}
}

func TestTee(t *testing.T) {
	a, b := New(1, 1e9), NewRingSink(2)
	tee := Tee(a, nil, b)
	tee.Record(iv(0, 0, 1))
	if len(a.Intervals) != 1 || b.Len() != 1 {
		t.Fatalf("tee did not fan out: %d, %d", len(a.Intervals), b.Len())
	}
	// Single survivor is returned unwrapped.
	if Tee(nil, a) != Sink(a) {
		t.Fatal("Tee of one sink should return it directly")
	}
}

func TestExportTraceEvent(t *testing.T) {
	tr := New(2, 1e9)
	r0 := Recorder{S: tr, Lane: 0}
	r1 := Recorder{S: tr, Lane: 1}
	r0.Compute(0, 1, "fft-z", 1, 0.5e9)
	r0.MPI("Alltoall", "world", 7, 1, 1.25, 1.5)
	r1.Compute(0, 2, "fft-z", 1, 1.0e9)
	r1.Idle(2, 2.5)

	var buf bytes.Buffer
	if err := ExportTraceEvent(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Must be valid Chrome trace-event JSON.
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event name = %q", ev.Name)
			}
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %g", ev.Name, ev.Dur)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name events = %d, want 2 (one per lane)", meta)
	}
	// 2 computes + sync + transfer + idle.
	if complete != 5 {
		t.Fatalf("complete events = %d, want 5", complete)
	}
	// Spot-check: the fft-z compute on lane 0 maps to ts 0, dur 1e6 µs,
	// carries ipc in args.
	found := false
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "fft-z" && ev.Tid == 0 {
			found = true
			if ev.Ts != 0 || ev.Dur != 1e6 {
				t.Fatalf("fft-z ts/dur = %g/%g, want 0/1e6", ev.Ts, ev.Dur)
			}
			if ipc, ok := ev.Args["ipc"].(float64); !ok || ipc != 0.5 {
				t.Fatalf("fft-z args ipc = %v, want 0.5", ev.Args["ipc"])
			}
		}
		if ev.Ph == "X" && ev.Cat == "mpi-sync" {
			if ev.Args["comm"] != "world" {
				t.Fatalf("mpi sync args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("lane-0 fft-z event missing")
	}
}
