package trace

import (
	"fmt"
	"sort"
	"strings"
)

// CommStat summarizes the MPI activity on one communicator — the
// communicator view of the paper's Figure 3, which makes the two-layer
// structure visible: R "pack" communicators of T neighboring ranks and T
// "group" communicators of R alternating ranks.
type CommStat struct {
	Comm     string
	Calls    int // MPI call intervals (sync+transfer pairs count once)
	Lanes    int // distinct lanes that used the communicator
	SyncTime float64
	XferTime float64
}

// CommStats aggregates the MPI intervals by communicator, sorted by total
// time descending.
func (t *Trace) CommStats() []CommStat {
	type acc struct {
		calls int
		lanes map[int]bool
		sync  float64
		xfer  float64
	}
	byComm := map[string]*acc{}
	for _, iv := range t.Intervals {
		if iv.Kind != KindMPISync && iv.Kind != KindMPITransfer {
			continue
		}
		a := byComm[iv.Comm]
		if a == nil {
			a = &acc{lanes: map[int]bool{}}
			byComm[iv.Comm] = a
		}
		a.lanes[iv.Lane] = true
		if iv.Kind == KindMPISync {
			a.calls++ // each call records exactly one sync interval
			a.sync += iv.Duration()
		} else {
			a.xfer += iv.Duration()
		}
	}
	out := make([]CommStat, 0, len(byComm))
	for c, a := range byComm {
		out = append(out, CommStat{
			Comm: c, Calls: a.calls, Lanes: len(a.lanes),
			SyncTime: a.sync, XferTime: a.xfer,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].SyncTime+out[i].XferTime, out[j].SyncTime+out[j].XferTime
		if ti != tj {
			return ti > tj
		}
		return out[i].Comm < out[j].Comm
	})
	return out
}

// FormatCommStats renders the communicator summary as a text table.
func (t *Trace) FormatCommStats() string {
	stats := t.CommStats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %7s %12s %12s\n", "comm", "calls", "lanes", "sync[s]", "transfer[s]")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%-12s %8d %7d %12.6f %12.6f\n", s.Comm, s.Calls, s.Lanes, s.SyncTime, s.XferTime)
	}
	return sb.String()
}
