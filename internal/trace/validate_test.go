package trace

import (
	"strings"
	"testing"
)

// validSample builds a well-formed two-lane trace.
func validSample() *Trace {
	t := New(2, 1.4e9)
	r0 := Recorder{S: t, Lane: 0}
	r1 := Recorder{S: t, Lane: 1}
	r0.Compute(0, 1, "fft-z", 1, 0.5e9)
	r0.MPI("Alltoall", "world", 7, 1, 1.25, 1.5)
	r1.Compute(0, 2, "fft-z", 1, 1.0e9)
	r1.Idle(2, 2.5)
	return t
}

func errsContaining(errs []error, substr string) int {
	n := 0
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			n++
		}
	}
	return n
}

func TestValidateCleanTrace(t *testing.T) {
	if errs := validSample().Validate(); len(errs) != 0 {
		t.Fatalf("clean trace reported %d errors: %v", len(errs), errs)
	}
}

func TestValidateOverlap(t *testing.T) {
	tr := validSample()
	// Overlaps the lane-0 compute interval [0,1].
	tr.Intervals = append(tr.Intervals, Interval{
		Lane: 0, Start: 0.5, End: 0.8, Kind: KindIdle,
	})
	errs := tr.Validate()
	if errsContaining(errs, "intervals overlap") == 0 {
		t.Fatalf("overlap not detected; errors: %v", errs)
	}
}

func TestValidateNonMonotone(t *testing.T) {
	tr := validSample()
	// In-order by value but appended out of recorded order on lane 1: an
	// interval starting before the previously recorded one.
	tr.Intervals = append(tr.Intervals, Interval{
		Lane: 1, Start: 2.5, End: 3.0, Kind: KindIdle,
	}, Interval{
		Lane: 1, Start: 2.2, End: 2.4, Kind: KindRuntime,
	})
	// Remove the lane-1 idle [2,2.5] so the injected pair overlaps nothing:
	// the non-monotone check must fire on its own.
	kept := tr.Intervals[:0]
	for _, iv := range tr.Intervals {
		if iv.Lane == 1 && iv.Kind == KindIdle && iv.Start == 2 {
			continue
		}
		kept = append(kept, iv)
	}
	tr.Intervals = kept
	errs := tr.Validate()
	if errsContaining(errs, "non-monotone interval order") == 0 {
		t.Fatalf("non-monotone order not detected; errors: %v", errs)
	}
	if errsContaining(errs, "intervals overlap") != 0 {
		t.Fatalf("unexpected overlap errors (test setup wrong): %v", errs)
	}
}

func TestValidateSimulatorTracesPass(t *testing.T) {
	// Traces produced through Recorder in time order must stay clean under
	// the extended checks.
	tr := New(3, 1e9)
	for lane := 0; lane < 3; lane++ {
		r := Recorder{S: tr, Lane: lane}
		r.Compute(0, 1, "a", 1, 1e9)
		r.MPI("Bcast", "world", 1, 1, 1.5, 2)
		r.Runtime(2, 2.1)
		r.Idle(2.1, 3)
	}
	if errs := tr.Validate(); len(errs) != 0 {
		t.Fatalf("recorder-produced trace reported errors: %v", errs)
	}
}
