package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one event in the Chrome trace-event JSON format understood
// by Perfetto and chrome://tracing. Complete events (ph "X") carry a start
// timestamp and duration in microseconds; metadata events (ph "M") name
// processes and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ExportTraceEvent writes the trace in the Chrome trace-event JSON format,
// so it opens in Perfetto (ui.perfetto.dev) or chrome://tracing. Each lane
// becomes a thread of process 0; each interval becomes a complete event
// whose category is the interval kind. Compute events carry instruction
// count and IPC in args; MPI events carry communicator and tag. Trace
// metadata (the engine that produced the run, notably) becomes the process
// name, so the label shows in the Perfetto track header.
func ExportTraceEvent(w io.Writer, t *Trace) error {
	f := traceEventFile{
		TraceEvents:     make([]traceEvent, 0, t.Lanes+len(t.Intervals)),
		DisplayTimeUnit: "ms",
	}
	if eng := t.Meta["engine"]; eng != "" {
		name := "fftx " + eng
		if req := t.Meta["engine-requested"]; req != "" && req != eng {
			name = fmt.Sprintf("fftx %s (requested %s)", eng, req)
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	for lane := 0; lane < t.Lanes; lane++ {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
		})
	}
	ivs := append([]Interval(nil), t.Intervals...)
	sort.SliceStable(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for _, iv := range ivs {
		name := iv.Phase
		if name == "" {
			name = iv.Kind.String()
		}
		ev := traceEvent{
			Name: name,
			Cat:  iv.Kind.String(),
			Ph:   "X",
			Ts:   iv.Start * 1e6, // seconds -> microseconds
			Dur:  iv.Duration() * 1e6,
			Pid:  0,
			Tid:  iv.Lane,
		}
		switch iv.Kind {
		case KindCompute:
			ev.Args = map[string]any{"instr": iv.Instr, "class": iv.Class}
			if ipc := t.IPC(iv); ipc > 0 {
				ev.Args["ipc"] = ipc
			}
		case KindMPISync, KindMPITransfer:
			ev.Args = map[string]any{"comm": iv.Comm, "tag": iv.Tag}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("trace: export trace-event: %w", err)
	}
	return nil
}
