package trace

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestExportParaverFiles(t *testing.T) {
	tr := sample()
	base := filepath.Join(t.TempDir(), "run")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".prv", ".pcf", ".row"} {
		if _, err := os.Stat(base + ext); err != nil {
			t.Fatalf("missing %s: %v", ext, err)
		}
	}
}

func TestParaverPrvStructure(t *testing.T) {
	tr := sample()
	base := filepath.Join(t.TempDir(), "run")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(base + ".prv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "#Paraver") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[0], "1(2)") { // one node, two cpus
		t.Fatalf("header lacks cpu count: %s", lines[0])
	}
	nState, nEvent := 0, 0
	var prevTime int64 = -1
	for _, ln := range lines[1:] {
		f := strings.Split(ln, ":")
		switch f[0] {
		case "1":
			if len(f) != 8 {
				t.Fatalf("state record has %d fields: %s", len(f), ln)
			}
			b, _ := strconv.ParseInt(f[5], 10, 64)
			e, _ := strconv.ParseInt(f[6], 10, 64)
			if e < b {
				t.Fatalf("state ends before it starts: %s", ln)
			}
			if b < prevTime {
				t.Fatalf("records not time-sorted at %s", ln)
			}
			prevTime = b
			nState++
		case "2":
			if len(f) != 8 {
				t.Fatalf("event record has %d fields: %s", len(f), ln)
			}
			nEvent++
		default:
			t.Fatalf("unknown record type: %s", ln)
		}
	}
	// sample() has 8 intervals (6 explicit + MPI splits) and per compute
	// interval two phase events.
	if nState == 0 || nEvent == 0 {
		t.Fatalf("states %d events %d", nState, nEvent)
	}
	comp := 0
	for _, iv := range tr.Intervals {
		if iv.Kind == KindCompute {
			comp++
		}
	}
	if nState != len(tr.Intervals) {
		t.Fatalf("state records %d, intervals %d", nState, len(tr.Intervals))
	}
	if nEvent != 2*comp {
		t.Fatalf("event records %d, want %d", nEvent, 2*comp)
	}
}

func TestParaverPcfLabelsPhases(t *testing.T) {
	tr := sample()
	base := filepath.Join(t.TempDir(), "run")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(base + ".pcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"STATES", "Running", "Group communication", "FFT pipeline phase", "fft-z", "vofr"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("pcf missing %q", want)
		}
	}
}

func TestParaverRowListsLanes(t *testing.T) {
	tr := sample()
	base := filepath.Join(t.TempDir(), "run")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(base + ".row")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "LEVEL CPU SIZE 2") || !strings.Contains(string(data), "lane.1") {
		t.Fatalf("row file wrong:\n%s", data)
	}
}
