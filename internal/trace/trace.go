// Package trace records the execution behaviour of simulated runs as state
// intervals per hardware lane, in the spirit of BSC's Extrae tracing
// package. A lane is one hardware thread slot: for pure-MPI runs lane ==
// rank, for MPI+tasks runs lane == rank*threads + thread.
//
// The companion renderers produce Paraver-style views: an ASCII timeline
// (state per lane over time) and a two-dimensional IPC histogram
// (lane x IPC-bin, weighted by accumulated duration), the two views used in
// Figures 3 and 7 of the paper. Package internal/pop computes the POP
// efficiency model from a Trace.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Kind classifies what a lane was doing during an interval.
type Kind int

const (
	// KindCompute is useful computation (a phase of the FFT pipeline).
	KindCompute Kind = iota
	// KindMPISync is time spent waiting inside an MPI call for the other
	// participants to arrive (load-imbalance-induced wait).
	KindMPISync
	// KindMPITransfer is time spent moving data inside an MPI call.
	KindMPITransfer
	// KindRuntime is task-runtime overhead (scheduling, dependency upkeep).
	KindRuntime
	// KindIdle is a worker thread with no ready task.
	KindIdle
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindMPISync:
		return "mpi-sync"
	case KindMPITransfer:
		return "mpi-transfer"
	case KindRuntime:
		return "runtime"
	case KindIdle:
		return "idle"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Interval is one recorded state on one lane.
type Interval struct {
	Lane  int     `json:"lane"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Kind  Kind    `json:"kind"`
	// Phase names the compute phase (e.g. "fft-z", "vofr") or MPI call
	// (e.g. "Alltoallv").
	Phase string `json:"phase,omitempty"`
	// Class is the machine intensity class for compute intervals.
	Class int `json:"class,omitempty"`
	// Instr is the number of instructions executed (compute intervals).
	Instr float64 `json:"instr,omitempty"`
	// Comm identifies the communicator of an MPI interval.
	Comm string `json:"comm,omitempty"`
	// Tag is the collective matching tag of an MPI interval.
	Tag int `json:"tag,omitempty"`
}

// Duration returns End-Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Trace holds all intervals of one run.
type Trace struct {
	Lanes     int               `json:"lanes"`
	Freq      float64           `json:"freq"` // core frequency in Hz, for IPC
	Meta      map[string]string `json:"meta,omitempty"`
	Intervals []Interval        `json:"intervals"`
}

// New returns an empty trace for the given number of lanes and core
// frequency in Hz.
func New(lanes int, freq float64) *Trace {
	return &Trace{Lanes: lanes, Freq: freq, Meta: map[string]string{}}
}

// Record appends an interval. Zero-duration intervals are dropped.
func (t *Trace) Record(iv Interval) {
	if iv.End < iv.Start {
		panic(fmt.Sprintf("trace: interval ends before it starts: %+v", iv))
	}
	if iv.Lane < 0 || iv.Lane >= t.Lanes {
		panic(fmt.Sprintf("trace: lane %d out of range [0,%d)", iv.Lane, t.Lanes))
	}
	if iv.End == iv.Start {
		return
	}
	t.Intervals = append(t.Intervals, iv)
}

// IPC returns the instructions-per-cycle of a compute interval, or 0 for
// non-compute intervals.
func (t *Trace) IPC(iv Interval) float64 {
	if iv.Kind != KindCompute || iv.Duration() == 0 {
		return 0
	}
	return iv.Instr / (iv.Duration() * t.Freq)
}

// Span returns the earliest start and the latest end over all intervals.
func (t *Trace) Span() (start, end float64) {
	if len(t.Intervals) == 0 {
		return 0, 0
	}
	start, end = t.Intervals[0].Start, t.Intervals[0].End
	for _, iv := range t.Intervals {
		if iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	return start, end
}

// Runtime returns the total span duration of the trace.
func (t *Trace) Runtime() float64 {
	s, e := t.Span()
	return e - s
}

// TimeByKind accumulates, per lane, the time spent in the given kind.
func (t *Trace) TimeByKind(k Kind) []float64 {
	out := make([]float64, t.Lanes)
	for _, iv := range t.Intervals {
		if iv.Kind == k {
			out[iv.Lane] += iv.Duration()
		}
	}
	return out
}

// InstrByLane accumulates executed instructions per lane over compute
// intervals.
func (t *Trace) InstrByLane() []float64 {
	out := make([]float64, t.Lanes)
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute {
			out[iv.Lane] += iv.Instr
		}
	}
	return out
}

// TotalInstr returns the total instructions over all compute intervals.
func (t *Trace) TotalInstr() float64 {
	var s float64
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute {
			s += iv.Instr
		}
	}
	return s
}

// TotalComputeTime returns the accumulated compute time over all lanes.
func (t *Trace) TotalComputeTime() float64 {
	var s float64
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute {
			s += iv.Duration()
		}
	}
	return s
}

// AvgIPC returns the instruction-weighted average IPC over compute
// intervals: total instructions / total compute cycles.
func (t *Trace) AvgIPC() float64 {
	ct := t.TotalComputeTime()
	if ct == 0 {
		return 0
	}
	return t.TotalInstr() / (ct * t.Freq)
}

// PhaseAvgIPC returns the average IPC of compute intervals whose Phase
// matches one of the given names (duration-weighted via instructions).
func (t *Trace) PhaseAvgIPC(phases ...string) float64 {
	want := map[string]bool{}
	for _, p := range phases {
		want[p] = true
	}
	var instr, cycles float64
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute && want[iv.Phase] {
			instr += iv.Instr
			cycles += iv.Duration() * t.Freq
		}
	}
	if cycles == 0 {
		return 0
	}
	return instr / cycles
}

// Phases returns the distinct compute phase names, sorted.
func (t *Trace) Phases() []string {
	set := map[string]bool{}
	for _, iv := range t.Intervals {
		if iv.Kind == KindCompute {
			set[iv.Phase] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Save writes the trace as JSON to path.
func (t *Trace) Save(path string) error {
	b, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// Load reads a JSON trace from path.
func Load(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read %s: %w", path, err)
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("trace: parse %s: %w", path, err)
	}
	return &t, nil
}

// Recorder is a convenience for emitting intervals from one lane with
// begin/end bracketing against a virtual clock. It writes to any Sink —
// a *Trace, a ring buffer, or a Tee of several. Zero-duration intervals
// are dropped before reaching the sink, so every sink behind a Tee sees
// the identical stream.
type Recorder struct {
	S    Sink
	Lane int
}

// Compute records a compute interval.
func (r Recorder) Compute(start, end float64, phase string, class int, instr float64) {
	if end == start {
		return
	}
	r.S.Record(Interval{Lane: r.Lane, Start: start, End: end, Kind: KindCompute,
		Phase: phase, Class: class, Instr: instr})
}

// MPI records the two components of an MPI call: the wait for other
// participants (sync) and the data movement (transfer).
func (r Recorder) MPI(call, comm string, tag int, start, syncEnd, end float64) {
	if syncEnd > start {
		r.S.Record(Interval{Lane: r.Lane, Start: start, End: syncEnd, Kind: KindMPISync,
			Phase: call, Comm: comm, Tag: tag})
	}
	if end > syncEnd {
		r.S.Record(Interval{Lane: r.Lane, Start: syncEnd, End: end, Kind: KindMPITransfer,
			Phase: call, Comm: comm, Tag: tag})
	}
}

// Runtime records task-runtime overhead.
func (r Recorder) Runtime(start, end float64) {
	if end == start {
		return
	}
	r.S.Record(Interval{Lane: r.Lane, Start: start, End: end, Kind: KindRuntime})
}

// Idle records worker idle time.
func (r Recorder) Idle(start, end float64) {
	if end == start {
		return
	}
	r.S.Record(Interval{Lane: r.Lane, Start: start, End: end, Kind: KindIdle})
}
