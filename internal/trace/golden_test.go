package trace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenTrace builds a deterministic three-lane trace exercising every
// interval kind, several phases and two communicators, so the golden files
// cover the full Paraver mapping and a multi-row commstats table.
func goldenTrace() *Trace {
	t := New(3, 1.4e9)
	r0 := Recorder{S: t, Lane: 0}
	r1 := Recorder{S: t, Lane: 1}
	r2 := Recorder{S: t, Lane: 2}

	r0.Compute(0, 1, "fft-z", 1, 0.7e9)
	r0.MPI("Alltoallv", "grp0", 11, 1, 1.3, 1.6)
	r0.Compute(1.6, 2.4, "fft-xy", 1, 0.9e9)
	r0.MPI("Send", "pack0", 21, 2.4, 2.4, 2.5) // pure transfer: no sync part
	r0.Idle(2.5, 3)

	r1.Compute(0, 1.2, "fft-z", 1, 0.8e9)
	r1.MPI("Alltoallv", "grp0", 11, 1.2, 1.3, 1.6)
	r1.Runtime(1.6, 1.7)
	r1.Compute(1.7, 2.6, "vofr", 2, 1.1e9)
	r1.Idle(2.6, 3)

	r2.Compute(0, 0.9, "scatter", 1, 0.4e9)
	r2.MPI("Recv", "pack0", 21, 0.9, 2.5, 2.5) // pure sync wait: no transfer part
	r2.Compute(2.5, 3, "gamma-pack", 1, 0.6e9)
	return t
}

// checkGolden compares got against testdata/<name>, rewriting the file when
// the -update flag is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s differs from golden file\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenParaverExport(t *testing.T) {
	tr := goldenTrace()
	base := filepath.Join(t.TempDir(), "golden")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".prv", ".pcf", ".row"} {
		data, err := os.ReadFile(base + ext)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "golden"+ext, data)
	}
}

// TestGoldenParaverRoundTrip re-parses the .prv golden file and checks the
// record stream against the source trace: every interval maps to one state
// record, every compute interval to an enter/leave phase-event pair, and the
// header carries the span and lane count.
func TestGoldenParaverRoundTrip(t *testing.T) {
	tr := goldenTrace()
	data, err := os.ReadFile(filepath.Join("testdata", "golden.prv"))
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	_, end := tr.Span()
	wantHeader := fmt.Sprintf("#Paraver (01/01/17 at 00:00):%d_ns:1(%d):1:1(%d:1)",
		int64(end*1e9), tr.Lanes, tr.Lanes)
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	nState, nEnter, nLeave := 0, 0, 0
	for _, ln := range lines[1:] {
		f := strings.Split(ln, ":")
		switch f[0] {
		case "1":
			nState++
		case "2":
			if f[len(f)-1] == "0" {
				nLeave++
			} else {
				nEnter++
			}
		default:
			t.Fatalf("unknown record type in golden .prv: %s", ln)
		}
	}
	comp := 0
	for _, iv := range tr.Intervals {
		if iv.Kind == KindCompute {
			comp++
		}
	}
	if nState != len(tr.Intervals) {
		t.Fatalf("state records %d, intervals %d", nState, len(tr.Intervals))
	}
	if nEnter != comp || nLeave != comp {
		t.Fatalf("phase events enter %d leave %d, want %d each", nEnter, nLeave, comp)
	}
}

func TestGoldenCommStats(t *testing.T) {
	checkGolden(t, "commstats.golden", []byte(goldenTrace().FormatCommStats()))
}

// TestGoldenCommStatsValues pins the aggregation itself, independent of the
// table formatting: per-communicator call counts, lane counts and times.
func TestGoldenCommStatsValues(t *testing.T) {
	stats := goldenTrace().CommStats()
	if len(stats) != 2 {
		t.Fatalf("got %d communicators, want 2: %+v", len(stats), stats)
	}
	byComm := map[string]CommStat{}
	for _, s := range stats {
		byComm[s.Comm] = s
	}
	grp := byComm["grp0"]
	if grp.Calls != 2 || grp.Lanes != 2 {
		t.Fatalf("grp0 = %+v, want 2 calls on 2 lanes", grp)
	}
	if diff := grp.SyncTime - 0.4; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("grp0 sync = %g, want 0.4", grp.SyncTime)
	}
	if diff := grp.XferTime - 0.6; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("grp0 xfer = %g, want 0.6", grp.XferTime)
	}
	pack := byComm["pack0"]
	// The Send is pure transfer (sync interval dropped), the Recv pure sync:
	// only the Recv contributes a call under the one-sync-per-call rule.
	if pack.Lanes != 2 {
		t.Fatalf("pack0 = %+v, want 2 lanes", pack)
	}
	if diff := pack.SyncTime - 1.6; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("pack0 sync = %g, want 1.6", pack.SyncTime)
	}
	if diff := pack.XferTime - 0.1; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("pack0 xfer = %g, want 0.1", pack.XferTime)
	}
}
