package trace

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Paraver export: writes the trace in the BSC Paraver text format — the
// .prv record file, the .pcf configuration (state and event value labels)
// and the .row names file — so traces produced by the simulator can be
// loaded into the actual analysis tool the paper used.
//
// Mapping:
//
//	state records (type 1): compute -> 1 (Running), MPI sync wait -> 3
//	  (Waiting), MPI transfer -> 6 (Group communication), runtime
//	  overhead -> 7 (Scheduling), idle -> 0 (Idle)
//	event records (type 2): phase identifiers are emitted as user events of
//	  type 90000001 at each compute interval start (value = phase id, 0 at
//	  interval end), matching how Extrae encodes user functions. When the
//	  trace metadata names the engine that produced the run, it is emitted
//	  once at t=0 as user event 90000002, labeled in the .pcf.

const (
	paraverPhaseEvent  = 90000001
	paraverEngineEvent = 90000002
)

func paraverState(k Kind) int {
	switch k {
	case KindCompute:
		return 1
	case KindMPISync:
		return 3
	case KindMPITransfer:
		return 6
	case KindRuntime:
		return 7
	default:
		return 0
	}
}

// paraverStateNames labels the states used above, for the .pcf.
var paraverStateNames = map[int]string{
	0: "Idle",
	1: "Running",
	3: "Waiting",
	6: "Group communication",
	7: "Scheduling and Fork/Join",
}

// ExportParaver writes base.prv, base.pcf and base.row.
func (t *Trace) ExportParaver(base string) error {
	ns := func(sec float64) int64 { return int64(sec * 1e9) }
	_, end := t.Span()
	total := ns(end)

	// Stable phase-id assignment.
	phases := t.Phases()
	phaseID := make(map[string]int, len(phases))
	for i, ph := range phases {
		phaseID[ph] = i + 1
	}

	var sb strings.Builder
	// Header: one node with Lanes cpus, one application with one task of
	// Lanes threads (the layout Paraver expects for a threaded process).
	fmt.Fprintf(&sb, "#Paraver (01/01/17 at 00:00):%d_ns:1(%d):1:1(%d:1)\n",
		total, t.Lanes, t.Lanes)

	type rec struct {
		at   int64
		line string
	}
	recs := make([]rec, 0, 2*len(t.Intervals))
	engine := t.Meta["engine"]
	if engine != "" {
		recs = append(recs, rec{0, fmt.Sprintf("2:1:1:1:1:0:%d:%d", paraverEngineEvent, 1)})
	}
	for _, iv := range t.Intervals {
		cpu := iv.Lane + 1
		b, e := ns(iv.Start), ns(iv.End)
		recs = append(recs, rec{b, fmt.Sprintf("1:%d:1:1:%d:%d:%d:%d",
			cpu, cpu, b, e, paraverState(iv.Kind))})
		if iv.Kind == KindCompute {
			recs = append(recs,
				rec{b, fmt.Sprintf("2:%d:1:1:%d:%d:%d:%d", cpu, cpu, b, paraverPhaseEvent, phaseID[iv.Phase])},
				rec{e, fmt.Sprintf("2:%d:1:1:%d:%d:%d:%d", cpu, cpu, e, paraverPhaseEvent, 0)})
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].at < recs[j].at })
	for _, r := range recs {
		sb.WriteString(r.line)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(base+".prv", []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("trace: write prv: %w", err)
	}

	// .pcf: state and event labels.
	var pcf strings.Builder
	pcf.WriteString("DEFAULT_OPTIONS\n\nLEVEL\tTHREAD\nUNITS\tNANOSEC\n\nSTATES\n")
	states := make([]int, 0, len(paraverStateNames))
	for s := range paraverStateNames {
		states = append(states, s)
	}
	sort.Ints(states)
	for _, s := range states {
		fmt.Fprintf(&pcf, "%d\t%s\n", s, paraverStateNames[s])
	}
	fmt.Fprintf(&pcf, "\nEVENT_TYPE\n0\t%d\tFFT pipeline phase\nVALUES\n0\tEnd\n", paraverPhaseEvent)
	for _, ph := range phases {
		fmt.Fprintf(&pcf, "%d\t%s\n", phaseID[ph], ph)
	}
	if engine != "" {
		fmt.Fprintf(&pcf, "\nEVENT_TYPE\n0\t%d\tFFT engine\nVALUES\n1\t%s\n", paraverEngineEvent, engine)
	}
	if err := os.WriteFile(base+".pcf", []byte(pcf.String()), 0o644); err != nil {
		return fmt.Errorf("trace: write pcf: %w", err)
	}

	// .row: object names per level.
	var row strings.Builder
	fmt.Fprintf(&row, "LEVEL CPU SIZE %d\n", t.Lanes)
	for l := 0; l < t.Lanes; l++ {
		fmt.Fprintf(&row, "lane.%d\n", l)
	}
	fmt.Fprintf(&row, "\nLEVEL THREAD SIZE %d\n", t.Lanes)
	for l := 0; l < t.Lanes; l++ {
		fmt.Fprintf(&row, "THREAD 1.1.%d\n", l+1)
	}
	if err := os.WriteFile(base+".row", []byte(row.String()), 0o644); err != nil {
		return fmt.Errorf("trace: write row: %w", err)
	}
	return nil
}
