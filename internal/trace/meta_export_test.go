package trace

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The exporters surface the trace metadata — which engine produced the run —
// so the label is visible inside Perfetto and Paraver, not just in the Go
// API. Traces without metadata must export exactly as before (the golden
// files pin that).

func TestTraceEventExportsEngineMeta(t *testing.T) {
	tr := goldenTrace()
	tr.Meta["engine"] = "task-iter"
	tr.Meta["engine-requested"] = "auto"
	var buf bytes.Buffer
	if err := ExportTraceEvent(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"process_name"`) {
		t.Fatalf("export has no process_name metadata event:\n%s", out)
	}
	if !strings.Contains(out, "fftx task-iter (requested auto)") {
		t.Fatalf("export does not label the engine:\n%s", out)
	}

	var plain bytes.Buffer
	if err := ExportTraceEvent(&plain, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "process_name") {
		t.Fatal("metadata-free trace grew a process_name event")
	}
}

func TestParaverExportsEngineMeta(t *testing.T) {
	tr := goldenTrace()
	tr.Meta["engine"] = "task-combined"
	base := filepath.Join(t.TempDir(), "meta")
	if err := tr.ExportParaver(base); err != nil {
		t.Fatal(err)
	}
	prv, err := os.ReadFile(base + ".prv")
	if err != nil {
		t.Fatal(err)
	}
	wantRec := fmt.Sprintf("2:1:1:1:1:0:%d:1", paraverEngineEvent)
	if !strings.Contains(string(prv), wantRec) {
		t.Fatalf(".prv has no engine event record %q", wantRec)
	}
	pcf, err := os.ReadFile(base + ".pcf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pcf), "FFT engine") || !strings.Contains(string(pcf), "task-combined") {
		t.Fatalf(".pcf does not label the engine:\n%s", pcf)
	}
}
