package trace

import (
	"fmt"
	"sort"
)

// Validate checks the structural invariants of a loaded trace and returns
// one error per violation (nil when the trace is well-formed). It is the
// strict-mode entry point of the fftxtrace tool: traces written by the
// simulator always pass, so findings indicate hand-edited or truncated
// files.
//
// Checked invariants:
//   - lane indices are within [0, Lanes)
//   - intervals have positive duration and a known Kind
//   - compute intervals carry a non-negative instruction count
//   - MPI intervals name their communicator
//   - intervals on one lane do not overlap
//   - intervals on one lane appear in monotone (non-decreasing Start)
//     recorded order, as every simulator recorder emits them
func (t *Trace) Validate() []error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if t.Lanes <= 0 {
		add("trace: lane count %d is not positive", t.Lanes)
	}
	if t.Freq <= 0 {
		add("trace: core frequency %g is not positive", t.Freq)
	}
	perLane := map[int][]Interval{}
	for i, iv := range t.Intervals {
		if iv.Lane < 0 || iv.Lane >= t.Lanes {
			add("trace: interval %d: lane %d out of range [0,%d)", i, iv.Lane, t.Lanes)
			continue
		}
		if iv.End <= iv.Start {
			add("trace: interval %d on lane %d: non-positive duration [%g,%g]", i, iv.Lane, iv.Start, iv.End)
		}
		if iv.Kind < KindCompute || iv.Kind > KindIdle {
			add("trace: interval %d on lane %d: unknown kind %d", i, iv.Lane, int(iv.Kind))
		}
		if iv.Kind == KindCompute && iv.Instr < 0 {
			add("trace: interval %d on lane %d: negative instruction count %g", i, iv.Lane, iv.Instr)
		}
		if (iv.Kind == KindMPISync || iv.Kind == KindMPITransfer) && iv.Comm == "" {
			add("trace: interval %d on lane %d: MPI interval without communicator", i, iv.Lane)
		}
		perLane[iv.Lane] = append(perLane[iv.Lane], iv)
	}
	lanes := make([]int, 0, len(perLane))
	for l := range perLane {
		lanes = append(lanes, l)
	}
	sort.Ints(lanes)
	const eps = 1e-12 // tolerate float rounding at interval joints
	for _, l := range lanes {
		ivs := perLane[l]
		// Monotone recorded order: a lane's intervals are emitted as its
		// process advances through virtual time, so Start must never
		// decrease in file order. Out-of-order intervals mean the file was
		// reassembled or hand-edited.
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].Start-eps {
				add("trace: lane %d: non-monotone interval order: [%g,%g] %s recorded after [%g,%g] %s",
					l, ivs[i].Start, ivs[i].End, ivs[i].Kind,
					ivs[i-1].Start, ivs[i-1].End, ivs[i-1].Kind)
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].End-eps {
				add("trace: lane %d: intervals overlap: [%g,%g] %s and [%g,%g] %s",
					l, ivs[i-1].Start, ivs[i-1].End, ivs[i-1].Kind,
					ivs[i].Start, ivs[i].End, ivs[i].Kind)
			}
		}
	}
	return errs
}
