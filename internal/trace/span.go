package trace

// Request-scoped wall-clock spans — the serving-side counterpart of the
// simulator's virtual-time intervals. Where a Trace attributes simulated
// lane time to pipeline phases, a SpanSet attributes real time inside one
// fftxd request to serving phases: admission wait, queue, batch coalescing,
// plan lookup, engine execution, response encoding. The two meet in the
// per-shape profile store (internal/profiles), which records both kinds of
// breakdown under one shape × engine × mode key.
//
// A SpanSet is identified by a 16-hex-character trace ID that propagates
// through the wire codecs (the JSON trace_id field and the binary frame
// extensions of internal/serve) and is echoed in responses, so a client's
// observed latency can be joined with the server-side span tree at
// /debug/fftx/requests.
//
// The Begin/End discipline is enforced statically: the fftxvet spanbalance
// rule requires every Begin in internal/serve to be balanced by a deferred
// or all-paths End.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// NewTraceID returns a fresh 16-character lowercase-hex trace ID (64 random
// bits). It never fails: if the system randomness source is unavailable it
// falls back to math/rand.
func NewTraceID() string {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], mrand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// TraceIDLen is the exact length of a wire trace ID.
const TraceIDLen = 16

// ValidTraceID reports whether s is a well-formed wire trace ID: exactly 16
// lowercase hexadecimal characters.
func ValidTraceID(s string) bool {
	if len(s) != TraceIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Span is one timed phase of a request. IDs are per-SpanSet (1, 2, 3, …);
// Parent 0 marks the root.
type Span struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS and EndNS are Unix nanoseconds; EndNS is 0 while the span is
	// open.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns,omitempty"`
	// Attrs carries free-form key=value annotations (shape, engine, batch
	// rows, status).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DurationSec returns the span length in seconds (0 for open spans).
func (s Span) DurationSec() float64 {
	if s.EndNS == 0 {
		return 0
	}
	return float64(s.EndNS-s.StartNS) / 1e9
}

// SpanSet collects the spans of one request under one trace ID. It is safe
// for concurrent use: the HTTP handler, the dispatcher and a worker all
// record into the same set as the request moves between them. A nil
// *SpanSet is a valid no-op recorder, which is how unsampled requests skip
// all tracing work.
type SpanSet struct {
	mu      sync.Mutex
	traceID string
	spans   []Span
}

// NewSpanSet returns an empty span set under the given trace ID (a fresh
// one when empty).
func NewSpanSet(traceID string) *SpanSet {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &SpanSet{traceID: traceID}
}

// TraceID returns the set's trace ID ("" on a nil set).
func (ss *SpanSet) TraceID() string {
	if ss == nil {
		return ""
	}
	return ss.traceID
}

// SpanRef is a handle to one span of a SpanSet. The zero value (and any ref
// obtained from a nil set) is a no-op: End and SetAttr do nothing, Begin
// returns another no-op ref.
type SpanRef struct {
	set *SpanSet
	id  int
}

// Begin opens a root-level span (parent 0). On a nil set it returns a
// no-op ref.
func (ss *SpanSet) Begin(name string) SpanRef {
	return ss.beginAt(name, 0, time.Now())
}

// BeginAt opens a root-level span with an explicit start time — used when
// the phase started before the recorder existed (admission wait starts at
// request arrival, sampling is decided after decode).
func (ss *SpanSet) BeginAt(name string, start time.Time) SpanRef {
	return ss.beginAt(name, 0, start)
}

func (ss *SpanSet) beginAt(name string, parent int, start time.Time) SpanRef {
	if ss == nil {
		return SpanRef{}
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	id := len(ss.spans) + 1
	ss.spans = append(ss.spans, Span{ID: id, Parent: parent, Name: name, StartNS: start.UnixNano()})
	return SpanRef{set: ss, id: id}
}

// Begin opens a child span of r.
func (r SpanRef) Begin(name string) SpanRef {
	if r.set == nil {
		return SpanRef{}
	}
	return r.set.beginAt(name, r.id, time.Now())
}

// BeginAt opens a child span with an explicit start time.
func (r SpanRef) BeginAt(name string, start time.Time) SpanRef {
	if r.set == nil {
		return SpanRef{}
	}
	return r.set.beginAt(name, r.id, start)
}

// End closes the span at now. Ending a no-op or already-ended span does
// nothing.
func (r SpanRef) End() { r.EndAt(time.Now()) }

// EndAt closes the span at the given time.
func (r SpanRef) EndAt(end time.Time) {
	if r.set == nil {
		return
	}
	r.set.mu.Lock()
	defer r.set.mu.Unlock()
	sp := &r.set.spans[r.id-1]
	if sp.EndNS == 0 {
		sp.EndNS = end.UnixNano()
	}
}

// SetAttr annotates the span with one key=value pair.
func (r SpanRef) SetAttr(key, value string) {
	if r.set == nil {
		return
	}
	r.set.mu.Lock()
	defer r.set.mu.Unlock()
	sp := &r.set.spans[r.id-1]
	if sp.Attrs == nil {
		sp.Attrs = map[string]string{}
	}
	sp.Attrs[key] = value
}

// Tree snapshots the set as a serializable span tree.
func (ss *SpanSet) Tree() *SpanTree {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return &SpanTree{
		TraceID: ss.traceID,
		Spans:   append([]Span(nil), ss.spans...),
	}
}

// SpanTree is the serialized form of one request's spans — the payload of
// /debug/fftx/requests entries and the input of fftxtrace -requests.
type SpanTree struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Root returns the first root-level span (the request span), or a zero Span
// when the tree is empty.
func (t *SpanTree) Root() Span {
	for _, s := range t.Spans {
		if s.Parent == 0 {
			return s
		}
	}
	return Span{}
}

// RootDurationSec returns the duration of the root span in seconds.
func (t *SpanTree) RootDurationSec() float64 { return t.Root().DurationSec() }

// Find returns the first span with the given name and true, or false.
func (t *SpanTree) Find(name string) (Span, bool) {
	for _, s := range t.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

// PhaseSecondsByName sums closed-span durations by span name, skipping root
// spans (so the root "request" envelope does not double-count its phases).
// This is the serving-side phase breakdown the profile store records.
func (t *SpanTree) PhaseSecondsByName() map[string]float64 {
	out := map[string]float64{}
	for _, s := range t.Spans {
		if s.Parent == 0 || s.EndNS == 0 {
			continue
		}
		out[s.Name] += s.DurationSec()
	}
	return out
}

// ValidateSpans checks the structural invariants of the tree: a valid trace
// ID, exactly one root, parent links resolving to earlier spans, children
// contained in their parents (closed spans only, with tolerance for clock
// granularity), and End ≥ Start everywhere.
func (t *SpanTree) ValidateSpans() []error {
	var errs []error
	if !ValidTraceID(t.TraceID) {
		errs = append(errs, fmt.Errorf("span tree: malformed trace ID %q", t.TraceID))
	}
	roots := 0
	byID := map[int]Span{}
	for _, s := range t.Spans {
		byID[s.ID] = s
	}
	for _, s := range t.Spans {
		if s.Parent == 0 {
			roots++
		} else if _, ok := byID[s.Parent]; !ok {
			errs = append(errs, fmt.Errorf("span %d (%s): parent %d does not exist", s.ID, s.Name, s.Parent))
		} else if s.Parent >= s.ID {
			errs = append(errs, fmt.Errorf("span %d (%s): parent %d is not an earlier span", s.ID, s.Name, s.Parent))
		}
		if s.EndNS != 0 && s.EndNS < s.StartNS {
			errs = append(errs, fmt.Errorf("span %d (%s): ends %d ns before it starts", s.ID, s.Name, s.StartNS-s.EndNS))
		}
		if p, ok := byID[s.Parent]; ok && s.EndNS != 0 && p.EndNS != 0 {
			const slackNS = int64(time.Millisecond)
			if s.StartNS < p.StartNS-slackNS || s.EndNS > p.EndNS+slackNS {
				errs = append(errs, fmt.Errorf("span %d (%s): [%d,%d] escapes parent %d [%d,%d]",
					s.ID, s.Name, s.StartNS, s.EndNS, p.ID, p.StartNS, p.EndNS))
			}
		}
	}
	if roots != 1 && len(t.Spans) > 0 {
		errs = append(errs, fmt.Errorf("span tree: %d root spans, want 1", roots))
	}
	return errs
}

// RenderSpanTree writes an indented ASCII timeline of the tree: one line
// per span with its offset from the root start, duration and attributes —
// the fftxtrace -requests view.
func (t *SpanTree) RenderSpanTree(w io.Writer) {
	root := t.Root()
	fmt.Fprintf(w, "trace %s  root %s  %.3fms\n", t.TraceID, root.Name, root.DurationSec()*1e3)
	children := map[int][]Span{}
	for _, s := range t.Spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].StartNS != kids[j].StartNS {
				return kids[i].StartNS < kids[j].StartNS
			}
			return kids[i].ID < kids[j].ID
		})
	}
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, s := range children[parent] {
			offMS := float64(s.StartNS-root.StartNS) / 1e6
			durMS := s.DurationSec() * 1e3
			state := ""
			if s.EndNS == 0 {
				state = " (open)"
			}
			fmt.Fprintf(w, "%s%-*s +%8.3fms %9.3fms%s%s\n",
				strings.Repeat("  ", depth), 24-2*depth, s.Name, offMS, durMS, state, attrString(s.Attrs))
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
}

func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%s", k, attrs[k])
	}
	return b.String()
}

// PhaseSeconds aggregates a simulated Trace's lane time by phase name —
// compute phases under their own names, MPI intervals under their call
// names, runtime overhead and idle under "runtime" and "idle". It is the
// engine-side stage-timing hook the per-shape profile store records for
// pipeline requests, complementing the wall-clock span breakdown of
// transform requests.
func (t *Trace) PhaseSeconds() map[string]float64 {
	out := map[string]float64{}
	for _, iv := range t.Intervals {
		name := iv.Phase
		switch iv.Kind {
		case KindRuntime:
			name = "runtime"
		case KindIdle:
			name = "idle"
		case KindMPISync:
			name = iv.Phase + "-sync"
		case KindMPITransfer:
			name = iv.Phase + "-transfer"
		}
		if name == "" {
			name = "unnamed"
		}
		out[name] += iv.Duration()
	}
	// Guard against NaN leaking into persisted profiles.
	for k, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			delete(out, k)
		}
	}
	return out
}
