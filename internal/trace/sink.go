package trace

// Sink is a streaming consumer of trace intervals. *Trace itself is a sink
// (it accumulates everything in memory); RingSink bounds memory on long
// runs, SampleSink decimates, and Tee fans out to several sinks at once.
// The runtime layers (mpi, ompss, fftx) record through this interface so a
// live run can stream intervals without committing to unbounded storage.
type Sink interface {
	Record(iv Interval)
}

// RingSink keeps the most recent intervals in a fixed-capacity ring buffer.
// Once full, each new interval overwrites the oldest; Dropped counts the
// overwritten ones. Memory use is constant regardless of run length.
type RingSink struct {
	buf     []Interval
	next    int // position of the next write
	full    bool
	dropped int
}

// NewRingSink returns a ring sink holding at most capacity intervals.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		panic("trace: ring sink capacity must be positive")
	}
	return &RingSink{buf: make([]Interval, 0, capacity)}
}

// Record stores the interval, evicting the oldest one if full.
func (r *RingSink) Record(iv Interval) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, iv)
		return
	}
	r.buf[r.next] = iv
	r.next = (r.next + 1) % cap(r.buf)
	r.full = true
	r.dropped++
}

// Len returns the number of intervals currently held.
func (r *RingSink) Len() int { return len(r.buf) }

// Dropped returns how many intervals have been evicted.
func (r *RingSink) Dropped() int { return r.dropped }

// Snapshot returns the held intervals oldest-first.
func (r *RingSink) Snapshot() []Interval {
	out := make([]Interval, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Trace materializes the held intervals as a *Trace for the offline
// analyses (POP, timelines, exporters). Lanes and freq describe the run
// that produced the intervals.
func (r *RingSink) Trace(lanes int, freq float64) *Trace {
	t := New(lanes, freq)
	t.Intervals = r.Snapshot()
	return t
}

// SampleSink forwards every Every-th interval to Dst, decimating the
// stream. Every <= 1 forwards everything.
type SampleSink struct {
	Every int
	Dst   Sink
	n     int
}

// Record forwards the interval if it is the next sample.
func (s *SampleSink) Record(iv Interval) {
	s.n++
	if s.Every <= 1 || s.n%s.Every == 1 {
		s.Dst.Record(iv)
	}
}

// Seen returns how many intervals have been offered (sampled or not).
func (s *SampleSink) Seen() int { return s.n }

// multiSink fans out to several sinks.
type multiSink []Sink

func (m multiSink) Record(iv Interval) {
	for _, s := range m {
		s.Record(iv)
	}
}

// Tee returns a sink that forwards each interval to all given sinks. Nil
// sinks are skipped; a single survivor is returned unwrapped.
func Tee(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
