package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// All lengths 1..64 plus selected mixed-radix, prime and Bluestein sizes
// must match the naive DFT in both directions.
func TestTransformMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{}
	for n := 1; n <= 64; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 90, 96, 100, 120, 125, 128, 135, 144, 150,
		97, 101, 127, // large primes -> Bluestein
		77, 91, 121, 169, // products of 7/11/13 -> direct odd radices
		486, 500, 512)
	for _, n := range sizes {
		p := NewPlan(n)
		for _, sign := range []Sign{Forward, Backward} {
			x := randVec(rng, n)
			want := DFT(x, sign)
			got := append([]complex128(nil), x...)
			p.Transform(got, sign)
			if d := maxDiff(got, want); d > 1e-8*float64(n) {
				t.Fatalf("n=%d sign=%d: max diff %g", n, sign, d)
			}
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 12, 60, 120, 101, 240} {
		p := NewPlan(n)
		x := randVec(rng, n)
		y := append([]complex128(nil), x...)
		p.Transform(y, Forward)
		p.Transform(y, Backward)
		Scale(y, 1/float64(n))
		if d := maxDiff(x, y); d > 1e-10*float64(n) {
			t.Fatalf("n=%d: roundtrip diff %g", n, d)
		}
	}
}

// Property: linearity. FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
func TestPropertyLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPlan(48)
	f := func(ar, ai, br, bi int8) bool {
		a := complex(float64(ar)/16, float64(ai)/16)
		b := complex(float64(br)/16, float64(bi)/16)
		x := randVec(rng, 48)
		y := randVec(rng, 48)
		lhs := make([]complex128, 48)
		for i := range lhs {
			lhs[i] = a*x[i] + b*y[i]
		}
		p.Transform(lhs, Forward)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		p.Transform(fx, Forward)
		p.Transform(fy, Forward)
		for i := range fx {
			if cmplx.Abs(lhs[i]-(a*fx[i]+b*fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval. sum |x|² = (1/n) sum |X|².
func TestPropertyParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 45, 101, 120} {
		p := NewPlan(n)
		for trial := 0; trial < 5; trial++ {
			x := randVec(rng, n)
			var sx float64
			for _, v := range x {
				sx += real(v)*real(v) + imag(v)*imag(v)
			}
			p.Transform(x, Forward)
			var sX float64
			for _, v := range x {
				sX += real(v)*real(v) + imag(v)*imag(v)
			}
			if math.Abs(sx-sX/float64(n)) > 1e-8*sx {
				t.Fatalf("n=%d: Parseval violated: %g vs %g", n, sx, sX/float64(n))
			}
		}
	}
}

// A unit impulse transforms to the all-ones vector.
func TestImpulse(t *testing.T) {
	for _, n := range []int{8, 30, 97} {
		p := NewPlan(n)
		x := make([]complex128, n)
		x[0] = 1
		p.Transform(x, Forward)
		for k, v := range x {
			if cmplx.Abs(v-1) > 1e-10 {
				t.Fatalf("n=%d: impulse FFT[%d] = %v", n, k, v)
			}
		}
	}
}

// A pure exponential exp(+2πi·f·j/n) forward-transforms to n·δ[f].
func TestPureTone(t *testing.T) {
	n, f := 40, 7
	x := make([]complex128, n)
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(f*j)/float64(n)))
	}
	NewPlan(n).Transform(x, Forward)
	for k, v := range x {
		want := complex128(0)
		if k == f {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-8 {
			t.Fatalf("tone bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestTransformMany(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPlan(12)
	const count = 7
	data := randVec(rng, 12*count)
	want := make([]complex128, 0, len(data))
	for b := 0; b < count; b++ {
		want = append(want, DFT(data[b*12:(b+1)*12], Forward)...)
	}
	p.TransformMany(data, count, Forward)
	if d := maxDiff(data, want); d > 1e-9 {
		t.Fatalf("batched diff %g", d)
	}
}

func TestPlan2DMatchesRowColumnDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nx, ny := 6, 10
	plane := randVec(rng, nx*ny)
	want := append([]complex128(nil), plane...)
	// Reference: DFT rows then columns.
	for ix := 0; ix < nx; ix++ {
		copy(want[ix*ny:(ix+1)*ny], DFT(want[ix*ny:(ix+1)*ny], Forward))
	}
	for iy := 0; iy < ny; iy++ {
		col := make([]complex128, nx)
		for ix := range col {
			col[ix] = want[ix*ny+iy]
		}
		col = DFT(col, Forward)
		for ix := range col {
			want[ix*ny+iy] = col[ix]
		}
	}
	NewPlan2D(nx, ny).Transform(plane, Forward)
	if d := maxDiff(plane, want); d > 1e-9 {
		t.Fatalf("2D diff %g", d)
	}
}

func TestPlan3DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nx, ny, nz := 4, 5, 6
	p := NewPlan3D(nx, ny, nz)
	x := randVec(rng, nx*ny*nz)
	y := append([]complex128(nil), x...)
	p.Transform(y, Forward)
	p.Transform(y, Backward)
	Scale(y, 1/float64(nx*ny*nz))
	if d := maxDiff(x, y); d > 1e-9 {
		t.Fatalf("3D roundtrip diff %g", d)
	}
}

// The 3-D transform of a separable product equals the product of 1-D
// transforms.
func TestPlan3DSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nx, ny, nz := 3, 4, 5
	ax, ay, az := randVec(rng, nx), randVec(rng, ny), randVec(rng, nz)
	box := make([]complex128, nx*ny*nz)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				box[(ix*ny+iy)*nz+iz] = ax[ix] * ay[iy] * az[iz]
			}
		}
	}
	NewPlan3D(nx, ny, nz).Transform(box, Forward)
	fx, fy, fz := DFT(ax, Forward), DFT(ay, Forward), DFT(az, Forward)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				want := fx[ix] * fy[iy] * fz[iz]
				got := box[(ix*ny+iy)*nz+iz]
				if cmplx.Abs(got-want) > 1e-8 {
					t.Fatalf("separable mismatch at (%d,%d,%d): %v vs %v", ix, iy, iz, got, want)
				}
			}
		}
	}
}

func TestGoodSize(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 7: 8, 11: 12, 13: 15, 17: 18, 31: 32,
		97: 100, 113: 120, 121: 125, 241: 243}
	for n, want := range cases {
		if got := GoodSize(n); got != want {
			t.Fatalf("GoodSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFlopsPositiveAndGrowing(t *testing.T) {
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64, 128, 120, 97} {
		f := NewPlan(n).Flops()
		if f <= 0 {
			t.Fatalf("flops(%d) = %v", n, f)
		}
		_ = prev
	}
	// Power-of-two plans should be within 2x of the 5 n log2 n rule.
	for _, n := range []int{64, 256, 1024} {
		f := NewPlan(n).Flops()
		ref := 5 * float64(n) * math.Log2(float64(n))
		if f < ref/2 || f > ref*2 {
			t.Fatalf("flops(%d) = %v, reference %v", n, f, ref)
		}
	}
}

func TestPlanPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlan(0)
}

func TestTransformPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlan(8).Transform(make([]complex128, 7), Forward)
}
