package fft

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

func allocVec(n int) []complex128 {
	return randVec(rand.New(rand.NewSource(7)), n)
}

// The transform entry points must be allocation-free in steady state: the
// hot loops of the simulated pipeline call them millions of times, and any
// per-call garbage would dominate the host-side profile. Scratch comes from
// per-plan sync.Pools, so after a warm-up call every path runs on recycled
// buffers.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the pins only hold in normal builds")
	}
	fn() // warm the scratch pools
	if avg := testing.AllocsPerRun(20, fn); avg != 0 {
		t.Errorf("%s: %v allocs per run, want 0", name, avg)
	}
}

func TestTransformZeroAllocs(t *testing.T) {
	for _, n := range []int{120, 128, 486} { // mixed radix, pure 4/2, with radix 3
		p := NewPlan(n)
		x := allocVec(n)
		assertZeroAllocs(t, "Transform", func() {
			p.Transform(x, Forward)
			p.Transform(x, Backward)
		})
	}
}

func TestTransformBluesteinZeroAllocs(t *testing.T) {
	p := NewPlan(97) // prime > maxDirectRadix: Bluestein path
	x := allocVec(97)
	assertZeroAllocs(t, "Transform(bluestein)", func() {
		p.Transform(x, Forward)
		p.Transform(x, Backward)
	})
}

func TestTransformStridedZeroAllocs(t *testing.T) {
	n, stride := 60, 7
	p := NewPlan(n)
	data := allocVec(n * stride)
	assertZeroAllocs(t, "TransformStrided", func() {
		p.TransformStrided(data, 3, stride, Forward)
	})
}

func TestTransformManyZeroAllocs(t *testing.T) {
	n, count := 90, 16
	p := NewPlan(n)
	data := allocVec(n * count)
	assertZeroAllocs(t, "TransformMany", func() {
		p.TransformMany(data, count, Forward)
	})
}

func TestPlan2DZeroAllocs(t *testing.T) {
	p := NewPlan2D(48, 45)
	plane := allocVec(48 * 45)
	assertZeroAllocs(t, "Plan2D.Transform", func() {
		p.Transform(plane, Forward)
	})
}

func TestPlan3DZeroAllocs(t *testing.T) {
	p := NewPlan3D(20, 18, 24)
	box := allocVec(20 * 18 * 24)
	assertZeroAllocs(t, "Plan3D.Transform", func() {
		p.Transform(box, Backward)
	})
}

func TestTransformSoAZeroAllocs(t *testing.T) {
	for _, n := range []int{97, 120, 128, 486} { // Bluestein, radix-8, planar mixed, generic
		p := NewPlanRadix(n, RadixAuto)
		v := NewSoA(n)
		PackSoA(v, allocVec(n))
		assertZeroAllocs(t, "TransformSoA", func() {
			p.TransformSoA(v, Forward)
			p.TransformSoA(v, Backward)
		})
	}
}

func TestTransformRowsSoAZeroAllocs(t *testing.T) {
	for _, n := range []int{60, 120, 128, 486} {
		p := NewPlanRadix(n, RadixAuto)
		rows := soaChunkRows + 5 // full chunk plus a partial tail
		data := allocVec(n * rows)
		assertZeroAllocs(t, "transformRowsSoA", func() {
			p.transformRowsSoA(data, rows, Forward)
		})
	}
}

func TestTransformBatchSoAZeroAllocs(t *testing.T) {
	defer par.SetEnabled(true)
	par.SetEnabled(false) // pin the chunk kernel; the fan-out closure of
	// par.ParallelFor allocates once per call by design
	n, rows := 120, soaChunkRows+5
	p := NewPlanRadix(n, RadixAuto)
	v := NewSoA(n * rows)
	PackSoA(v, allocVec(n*rows))
	assertZeroAllocs(t, "TransformBatchSoA", func() {
		p.TransformBatchSoA(v, rows, Forward)
	})
}

func TestTransformColsSoAZeroAllocs(t *testing.T) {
	nx, ny := 60, 45
	p := NewPlanRadix(nx, RadixAuto)
	plane := allocVec(nx * ny)
	assertZeroAllocs(t, "transformColsSoA", func() {
		for iy0 := 0; iy0 < ny; iy0 += soaChunkRows {
			nb := ny - iy0
			if nb > soaChunkRows {
				nb = soaChunkRows
			}
			p.transformColsSoA(plane, ny, iy0, nb, Forward)
		}
	})
}

func TestVariantPlansZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		n int
		r Radix
	}{{128, Radix8}, {128, RadixSplit}, {120, Radix8}} {
		p := NewPlanRadix(tc.n, tc.r)
		x := allocVec(tc.n)
		assertZeroAllocs(t, "Transform("+tc.r.String()+")", func() {
			p.Transform(x, Forward)
			p.Transform(x, Backward)
		})
	}
}
