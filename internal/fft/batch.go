package fft

import (
	"fmt"

	"repro/internal/par"
)

// Host-parallel batch drivers. These are the serving-path counterparts of
// TransformMany: the rows of a batch are independent transforms, so they fan
// out over host cores via par.ParallelFor. Plans are safe for concurrent
// use (per-call scratch comes from a pool), which makes these the
// thread-safe batch execution path the fftxd server leans on: one plan
// lookup and one fan-out amortized over the whole batch.
//
// grainBatchRows is 1 because every row is a full transform — already far
// more work than the fan-out overhead.
const grainBatchRows = 1

// TransformBatch applies the plan in place to count contiguous rows of
// length N starting at data[0], fanning the rows out over host cores.
// Results are bit-identical to TransformMany.
func (p *Plan) TransformBatch(data []complex128, count int, sign Sign) {
	if len(data) < count*p.n {
		panic("fft: TransformBatch: slice too short")
	}
	par.ParallelFor(count, grainBatchRows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			p.Transform(data[b*p.n:(b+1)*p.n], sign)
		}
	})
}

// TransformBatch applies the plane transform in place to count contiguous
// row-major planes, one host-parallel row per plane.
func (p *Plan2D) TransformBatch(data []complex128, count int, sign Sign) {
	sz := p.nx * p.ny
	if len(data) < count*sz {
		panic("fft: Plan2D.TransformBatch: slice too short")
	}
	par.ParallelFor(count, grainBatchRows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
	})
}

// TransformBatch applies the 3-D transform in place to count contiguous
// z-fastest boxes, one host-parallel row per box.
func (p *Plan3D) TransformBatch(data []complex128, count int, sign Sign) {
	sz := p.nx * p.ny * p.nz
	if len(data) < count*sz {
		panic("fft: Plan3D.TransformBatch: slice too short")
	}
	par.ParallelFor(count, grainBatchRows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
	})
}

// Size returns the number of elements of one transform (nx·ny).
func (p *Plan2D) Size() int { return p.nx * p.ny }

// Size returns the number of elements of one transform (nx·ny·nz).
func (p *Plan3D) Size() int { return p.nx * p.ny * p.nz }

// Dims returns the transform dimensions (nx, ny, nz).
func (p *Plan3D) Dims() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// checkDim panics on non-positive transform dimensions; the cached
// constructors call it before keying their maps so every caller gets the
// same error text.
func checkDim(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
}
