package fft

import (
	"fmt"

	"repro/internal/par"
)

// Host-parallel batch drivers. These are the serving-path counterparts of
// TransformMany: the rows of a batch are independent transforms, so they
// fan out over host cores via par.ParallelFor. Plans are safe for
// concurrent use (per-call scratch comes from a pool), which makes these
// the thread-safe batch execution path the fftxd server leans on: one plan
// lookup and one fan-out amortized over the whole batch.
//
// The batch path is also where the data-layout optimization lives: when
// host parallelism is enabled, plans whose layout policy picked LayoutSoA
// run each worker's rows through the stage-batched planar chunk kernel
// (transformRowsSoA) — pack once per chunk, every combine stage across the
// whole chunk, pooled per-worker scratch — instead of per-row Transform
// calls. With par.SetEnabled(false) every driver reduces to the plain
// serial reference loop (TransformMany / per-item Transform), mirroring
// par.ParallelFor's own contract: the disabled path is the reference
// implementation. The two paths are bit-identical — the SoA butterflies
// mirror the AoS arithmetic exactly — so flipping -hostpar changes wall
// clock only, never results.

// grainBatchSticks is the fan-out grain of 1-D row batches: one chunk of
// the planar kernel per worker chunk, so stage batching amortizes over a
// full soaChunkRows pack.
const grainBatchSticks = soaChunkRows

// grainBatchBoxes is the fan-out grain of 2-D/3-D batches: every item is
// a full plane or box transform — already far more work than the fan-out
// overhead.
const grainBatchBoxes = 1

// TransformBatch applies the plan in place to count contiguous rows of
// length N starting at data[0], fanning the rows out over host cores.
// Results are bit-identical to TransformMany.
func (p *Plan) TransformBatch(data []complex128, count int, sign Sign) {
	if len(data) < count*p.n {
		panic("fft: TransformBatch: slice too short")
	}
	if !par.Enabled() {
		p.TransformMany(data, count, sign)
		return
	}
	if p.layout == LayoutSoA {
		par.ParallelFor(count, grainBatchSticks, func(lo, hi int) {
			p.transformRowsSoA(data[lo*p.n:hi*p.n], hi-lo, sign)
		})
		return
	}
	par.ParallelFor(count, grainBatchSticks, func(lo, hi int) {
		p.TransformMany(data[lo*p.n:hi*p.n], hi-lo, sign)
	})
}

// TransformBatchSoA applies the plan in place to count contiguous planar
// rows of length N inside v, fanning the rows out over host cores through
// the stage-batched planar chunk kernel. Results are bit-identical to
// packing each row and calling Transform (Bluestein and split-radix plans
// do exactly that internally).
func (p *Plan) TransformBatchSoA(v SoA, count int, sign Sign) {
	if len(v.Re) < count*p.n || len(v.Im) < count*p.n {
		panic("fft: TransformBatchSoA: planar slices too short")
	}
	if !par.Enabled() {
		p.transformRowsPlanar(v, count, sign)
		return
	}
	par.ParallelFor(count, grainBatchSticks, func(lo, hi int) {
		p.transformRowsPlanar(v.Slice(lo*p.n, hi*p.n), hi-lo, sign)
	})
}

// TransformBatch applies the plane transform in place to count contiguous
// row-major planes. With host parallelism enabled the planes fan out over
// cores and each worker runs the layout-optimized plane kernel (batched
// planar row pass, blocked planar column pass); disabled, it is the plain
// per-plane reference loop.
func (p *Plan2D) TransformBatch(data []complex128, count int, sign Sign) {
	sz := p.nx * p.ny
	if len(data) < count*sz {
		panic("fft: Plan2D.TransformBatch: slice too short")
	}
	if !par.Enabled() {
		for b := 0; b < count; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
		return
	}
	par.ParallelFor(count, grainBatchBoxes, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
	})
}

// TransformBatch applies the 3-D transform in place to count contiguous
// z-fastest boxes, one host-parallel item per box.
func (p *Plan3D) TransformBatch(data []complex128, count int, sign Sign) {
	sz := p.nx * p.ny * p.nz
	if len(data) < count*sz {
		panic("fft: Plan3D.TransformBatch: slice too short")
	}
	if !par.Enabled() {
		for b := 0; b < count; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
		return
	}
	par.ParallelFor(count, grainBatchBoxes, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			p.Transform(data[b*sz:(b+1)*sz], sign)
		}
	})
}

// Size returns the number of elements of one transform (nx·ny).
func (p *Plan2D) Size() int { return p.nx * p.ny }

// Size returns the number of elements of one transform (nx·ny·nz).
func (p *Plan3D) Size() int { return p.nx * p.ny * p.nz }

// Dims returns the transform dimensions (nx, ny, nz).
func (p *Plan3D) Dims() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// checkDim panics on non-positive transform dimensions; the cached
// constructors call it before keying their maps so every caller gets the
// same error text.
func checkDim(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
}
