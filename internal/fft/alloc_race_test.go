//go:build race

package fft

// The race detector makes sync.Pool drop items at random to surface reuse
// races, so the zero-allocation pins cannot hold under -race.
const raceEnabled = true
