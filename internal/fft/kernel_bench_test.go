package fft

import (
	"math/rand"
	"testing"
)

// Benchmark pairs comparing the iterative table-driven kernel against the
// recursive baseline it replaced (kept in recursive_test.go), and the
// blocked 2-D column pass against the per-column strided form. The
// Iterative/Recursive and Blocked/PerColumn name pairs are what
// scripts/bench-json.sh turns into the kernel_speedups section of
// BENCH_fft.json.

func benchVec(n int) []complex128 {
	return randVec(rand.New(rand.NewSource(11)), n)
}

func benchmarkKernelIterative(b *testing.B, n int) {
	p := NewPlan(n)
	x := benchVec(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(x, Forward)
	}
}

func benchmarkKernelRecursive(b *testing.B, n int) {
	p := newRecursivePlan(n)
	x := benchVec(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.transform(x, Forward)
	}
}

// 120 = 4·2·3·5 is the QE-style mixed-radix length; 128 is the pure
// radix-4/2 fast path; 486 = 2·3^5 stresses the generic odd-radix stage.
func BenchmarkKernel_Iterative_120(b *testing.B) { benchmarkKernelIterative(b, 120) }
func BenchmarkKernel_Recursive_120(b *testing.B) { benchmarkKernelRecursive(b, 120) }
func BenchmarkKernel_Iterative_128(b *testing.B) { benchmarkKernelIterative(b, 128) }
func BenchmarkKernel_Recursive_128(b *testing.B) { benchmarkKernelRecursive(b, 128) }
func BenchmarkKernel_Iterative_486(b *testing.B) { benchmarkKernelIterative(b, 486) }
func BenchmarkKernel_Recursive_486(b *testing.B) { benchmarkKernelRecursive(b, 486) }

func BenchmarkPlan2D_Blocked_60x60(b *testing.B) {
	p := NewPlan2D(60, 60)
	plane := benchVec(60 * 60)
	b.SetBytes(int64(16 * len(plane)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(plane, Forward)
	}
}

// BenchmarkPlan2D_PerColumn_60x60 is the pre-blocking column pass: rows via
// TransformMany, then one strided gather/transform/scatter per column.
func BenchmarkPlan2D_PerColumn_60x60(b *testing.B) {
	nx, ny := 60, 60
	px, py := NewPlan(nx), NewPlan(ny)
	plane := benchVec(nx * ny)
	b.SetBytes(int64(16 * len(plane)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		py.TransformMany(plane, nx, Forward)
		for iy := 0; iy < ny; iy++ {
			px.TransformStrided(plane, iy, ny, Forward)
		}
	}
}

func BenchmarkPlan3D_20x18x24(b *testing.B) {
	p := NewPlan3D(20, 18, 24)
	box := benchVec(20 * 18 * 24)
	b.SetBytes(int64(16 * len(box)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(box, Backward)
	}
}
