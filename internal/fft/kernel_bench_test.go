package fft

import (
	"math/rand"
	"testing"
)

// Benchmark pairs comparing the iterative table-driven kernel against the
// recursive baseline it replaced (kept in recursive_test.go), and the
// blocked 2-D column pass against the per-column strided form. The
// Iterative/Recursive and Blocked/PerColumn name pairs are what
// scripts/bench-json.sh turns into the kernel_speedups section of
// BENCH_fft.json.

func benchVec(n int) []complex128 {
	return randVec(rand.New(rand.NewSource(11)), n)
}

func benchmarkKernelIterative(b *testing.B, n int) {
	p := NewPlan(n)
	x := benchVec(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(x, Forward)
	}
}

func benchmarkKernelRecursive(b *testing.B, n int) {
	p := newRecursivePlan(n)
	x := benchVec(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.transform(x, Forward)
	}
}

// 120 = 4·2·3·5 is the QE-style mixed-radix length; 128 is the pure
// radix-4/2 fast path; 486 = 2·3^5 stresses the generic odd-radix stage.
func BenchmarkKernel_Iterative_120(b *testing.B) { benchmarkKernelIterative(b, 120) }
func BenchmarkKernel_Recursive_120(b *testing.B) { benchmarkKernelRecursive(b, 120) }
func BenchmarkKernel_Iterative_128(b *testing.B) { benchmarkKernelIterative(b, 128) }
func BenchmarkKernel_Recursive_128(b *testing.B) { benchmarkKernelRecursive(b, 128) }
func BenchmarkKernel_Iterative_486(b *testing.B) { benchmarkKernelIterative(b, 486) }
func BenchmarkKernel_Recursive_486(b *testing.B) { benchmarkKernelRecursive(b, 486) }

func BenchmarkPlan2D_Blocked_60x60(b *testing.B) {
	p := NewPlan2D(60, 60)
	plane := benchVec(60 * 60)
	b.SetBytes(int64(16 * len(plane)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(plane, Forward)
	}
}

// BenchmarkPlan2D_PerColumn_60x60 is the pre-blocking column pass: rows via
// TransformMany, then one strided gather/transform/scatter per column.
func BenchmarkPlan2D_PerColumn_60x60(b *testing.B) {
	nx, ny := 60, 60
	px, py := NewPlan(nx), NewPlan(ny)
	plane := benchVec(nx * ny)
	b.SetBytes(int64(16 * len(plane)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		py.TransformMany(plane, nx, Forward)
		for iy := 0; iy < ny; iy++ {
			px.TransformStrided(plane, iy, ny, Forward)
		}
	}
}

func BenchmarkPlan3D_20x18x24(b *testing.B) {
	p := NewPlan3D(20, 18, 24)
	box := benchVec(20 * 18 * 24)
	b.SetBytes(int64(16 * len(box)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(box, Backward)
	}
}

// Layout matrix: the batched stick transform (32 rows, one planar chunk)
// with the AoS reference loop vs the planar (SoA) chunk kernel, per radix
// family. The Batch_AoS_*/Batch_SoA_* name pairs become the layouts
// section of BENCH_fft.json; the PickLayout/PickRadix policy constants
// were measured off this matrix (64 is the pure-pow2 shape AoS keeps, 128
// the pow2 shape the planar mixed path wins, 120 the 8·odd shape radix-8
// wins, 486 the generic-stage shape with the largest planar gain).
func benchmarkBatchLayout(b *testing.B, n int, r Radix, soa bool) {
	p := NewPlanRadix(n, r)
	rows := soaChunkRows
	data := randVec(rand.New(rand.NewSource(11)), n*rows)
	b.SetBytes(int64(16 * n * rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if soa {
			p.transformRowsSoA(data, rows, Forward)
		} else {
			p.TransformMany(data, rows, Forward)
		}
	}
}

func BenchmarkBatch_AoS_Mixed_60(b *testing.B)   { benchmarkBatchLayout(b, 60, RadixMixed, false) }
func BenchmarkBatch_SoA_Mixed_60(b *testing.B)   { benchmarkBatchLayout(b, 60, RadixMixed, true) }
func BenchmarkBatch_AoS_Mixed_128(b *testing.B)  { benchmarkBatchLayout(b, 128, RadixMixed, false) }
func BenchmarkBatch_SoA_Mixed_128(b *testing.B)  { benchmarkBatchLayout(b, 128, RadixMixed, true) }
func BenchmarkBatch_AoS_Mixed_486(b *testing.B)  { benchmarkBatchLayout(b, 486, RadixMixed, false) }
func BenchmarkBatch_SoA_Mixed_486(b *testing.B)  { benchmarkBatchLayout(b, 486, RadixMixed, true) }
func BenchmarkBatch_AoS_Radix8_64(b *testing.B)  { benchmarkBatchLayout(b, 64, Radix8, false) }
func BenchmarkBatch_SoA_Radix8_64(b *testing.B)  { benchmarkBatchLayout(b, 64, Radix8, true) }
func BenchmarkBatch_AoS_Radix8_120(b *testing.B) { benchmarkBatchLayout(b, 120, Radix8, false) }
func BenchmarkBatch_SoA_Radix8_120(b *testing.B) { benchmarkBatchLayout(b, 120, Radix8, true) }

// BenchmarkBatch_AoS_Split_128 records the split-radix variant next to
// the families above — the flop-count argument for split radix does not
// survive contact with the batched iterative kernels, which is why
// RadixSplit is never auto-picked.
func BenchmarkBatch_AoS_Split_128(b *testing.B) { benchmarkBatchLayout(b, 128, RadixSplit, false) }
