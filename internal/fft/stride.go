package fft

import (
	"fmt"
	"sync"
)

// Strided and cached-plan utilities.

// TransformStrided computes the in-place transform of the N elements
// data[offset], data[offset+stride], ..., gathering into a contiguous
// scratch buffer, transforming and scattering back. It lets callers
// transform columns of row-major planes without managing scratch
// themselves.
func (p *Plan) TransformStrided(data []complex128, offset, stride int, sign Sign) {
	if stride <= 0 {
		panic(fmt.Sprintf("fft: invalid stride %d", stride))
	}
	if stride == 1 {
		p.Transform(data[offset:offset+p.n], sign)
		return
	}
	need := offset + (p.n-1)*stride
	if need >= len(data) {
		panic(fmt.Sprintf("fft: strided transform reads index %d of %d", need, len(data)))
	}
	sp := p.scratch.Get().(*[]complex128)
	buf := *sp
	for i := 0; i < p.n; i++ {
		buf[i] = data[offset+i*stride]
	}
	p.Transform(buf, sign)
	for i := 0; i < p.n; i++ {
		data[offset+i*stride] = buf[i]
	}
	p.scratch.Put(sp)
}

// Cache is a concurrency-safe plan cache keyed by length — the "wisdom"
// reuse pattern of FFTW. The zero value is ready to use.
type Cache struct {
	mu    sync.Mutex
	plans map[int]*Plan
	real  map[int]*RealPlan
}

// Get returns the cached plan for length n, creating it on first use.
func (c *Cache) Get(n int) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plans == nil {
		c.plans = map[int]*Plan{}
	}
	p := c.plans[n]
	if p == nil {
		p = NewPlan(n)
		c.plans[n] = p
	}
	return p
}

// GetReal returns the cached real plan for length n, creating it on first
// use.
func (c *Cache) GetReal(n int) *RealPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.real == nil {
		c.real = map[int]*RealPlan{}
	}
	p := c.real[n]
	if p == nil {
		p = NewRealPlan(n)
		c.real[n] = p
	}
	return p
}

// DefaultCache is the package-level plan cache.
var DefaultCache Cache
