package fft

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Strided and cached-plan utilities.

// TransformStrided computes the in-place transform of the N elements
// data[offset], data[offset+stride], ..., gathering into a contiguous
// scratch buffer, transforming and scattering back. It lets callers
// transform columns of row-major planes without managing scratch
// themselves.
func (p *Plan) TransformStrided(data []complex128, offset, stride int, sign Sign) {
	if stride <= 0 {
		panic(fmt.Sprintf("fft: invalid stride %d", stride))
	}
	if stride == 1 {
		p.Transform(data[offset:offset+p.n], sign)
		return
	}
	need := offset + (p.n-1)*stride
	if need >= len(data) {
		panic(fmt.Sprintf("fft: strided transform reads index %d of %d", need, len(data)))
	}
	sp := p.scratch.Get().(*[]complex128)
	buf := *sp
	for i := 0; i < p.n; i++ {
		buf[i] = data[offset+i*stride]
	}
	p.Transform(buf, sign)
	for i := 0; i < p.n; i++ {
		data[offset+i*stride] = buf[i]
	}
	p.scratch.Put(sp)
}

// snapGet is the lock-free read of an atomic-snapshot map: it loads the
// current immutable snapshot and looks the key up.
func snapGet[K comparable, V any](p *atomic.Pointer[map[K]V], k K) (V, bool) {
	if m := p.Load(); m != nil {
		v, ok := (*m)[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// snapPut publishes key k with value v copy-on-write. The caller must hold
// the cache mutex, so concurrent misses build at most one value per key.
func snapPut[K comparable, V any](p *atomic.Pointer[map[K]V], k K, v V) {
	var cur map[K]V
	if m := p.Load(); m != nil {
		cur = *m
	}
	next := make(map[K]V, len(cur)+1)
	for kk, vv := range cur {
		next[kk] = vv
	}
	next[k] = v
	p.Store(&next)
}

// key2 and key3 key the 2-D and 3-D plan maps.
type key2 struct{ nx, ny int }
type key3 struct{ nx, ny, nz int }

// Cache is a concurrency-safe plan cache keyed by transform shape — the
// "wisdom" reuse pattern of FFTW, covering 1-D, real, 2-D plane and 3-D box
// plans. The zero value is ready to use.
//
// Reads are lock-free: lookups load an immutable map snapshot through an
// atomic pointer, so host-parallel workers hitting DefaultCache never
// serialize on a mutex. Only a miss takes the mutex, re-checks under the
// lock, rebuilds the snapshot copy-on-write and publishes it — N goroutines
// missing the same shape simultaneously still construct exactly one plan
// (the concurrent-serving path of fftxd depends on this; see
// TestCacheConcurrentMiss).
type Cache struct {
	mu      sync.Mutex
	builds  atomic.Int64
	plans   atomic.Pointer[map[int]*Plan]
	real    atomic.Pointer[map[int]*RealPlan]
	plans2d atomic.Pointer[map[key2]*Plan2D]
	plans3d atomic.Pointer[map[key3]*Plan3D]
}

// Builds returns the cumulative number of plan constructions the cache has
// performed (misses that built). Each Get2D/Get3D counts as one build even
// though it composes several 1-D plans internally. The serving layer
// exports it as a gauge; the race tests assert single construction per
// shape with it.
func (c *Cache) Builds() int64 { return c.builds.Load() }

// Get returns the cached plan for length n, creating it on first use.
// Cached plans are built with RadixAuto, so a lookup resolves the
// per-shape layout+radix policy (PickRadix, PickLayout) exactly once —
// the serving path never re-derives variants per request.
func (c *Cache) Get(n int) *Plan {
	if p, ok := snapGet(&c.plans, n); ok {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := snapGet(&c.plans, n); ok {
		return p
	}
	p := NewPlanRadix(n, RadixAuto)
	c.builds.Add(1)
	snapPut(&c.plans, n, p)
	return p
}

// GetReal returns the cached real plan for length n, creating it on first
// use.
func (c *Cache) GetReal(n int) *RealPlan {
	if p, ok := snapGet(&c.real, n); ok {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := snapGet(&c.real, n); ok {
		return p
	}
	p := NewRealPlan(n)
	c.builds.Add(1)
	snapPut(&c.real, n, p)
	return p
}

// Get2D returns the cached plane plan for nx × ny grids, creating it on
// first use.
func (c *Cache) Get2D(nx, ny int) *Plan2D {
	checkDim(nx)
	checkDim(ny)
	k := key2{nx, ny}
	if p, ok := snapGet(&c.plans2d, k); ok {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := snapGet(&c.plans2d, k); ok {
		return p
	}
	p := NewPlan2D(nx, ny)
	c.builds.Add(1)
	snapPut(&c.plans2d, k, p)
	return p
}

// Get3D returns the cached box plan for nx × ny × nz grids, creating it on
// first use.
func (c *Cache) Get3D(nx, ny, nz int) *Plan3D {
	checkDim(nx)
	checkDim(ny)
	checkDim(nz)
	k := key3{nx, ny, nz}
	if p, ok := snapGet(&c.plans3d, k); ok {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := snapGet(&c.plans3d, k); ok {
		return p
	}
	p := NewPlan3D(nx, ny, nz)
	c.builds.Add(1)
	snapPut(&c.plans3d, k, p)
	return p
}

// DefaultCache is the package-level plan cache.
var DefaultCache Cache
