package fft

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Strided and cached-plan utilities.

// TransformStrided computes the in-place transform of the N elements
// data[offset], data[offset+stride], ..., gathering into a contiguous
// scratch buffer, transforming and scattering back. It lets callers
// transform columns of row-major planes without managing scratch
// themselves.
func (p *Plan) TransformStrided(data []complex128, offset, stride int, sign Sign) {
	if stride <= 0 {
		panic(fmt.Sprintf("fft: invalid stride %d", stride))
	}
	if stride == 1 {
		p.Transform(data[offset:offset+p.n], sign)
		return
	}
	need := offset + (p.n-1)*stride
	if need >= len(data) {
		panic(fmt.Sprintf("fft: strided transform reads index %d of %d", need, len(data)))
	}
	sp := p.scratch.Get().(*[]complex128)
	buf := *sp
	for i := 0; i < p.n; i++ {
		buf[i] = data[offset+i*stride]
	}
	p.Transform(buf, sign)
	for i := 0; i < p.n; i++ {
		data[offset+i*stride] = buf[i]
	}
	p.scratch.Put(sp)
}

// Cache is a concurrency-safe plan cache keyed by length — the "wisdom"
// reuse pattern of FFTW. The zero value is ready to use.
//
// Reads are lock-free: lookups load an immutable map snapshot through an
// atomic pointer, so host-parallel workers hitting DefaultCache never
// serialize on a mutex. Only a miss takes the mutex, rebuilds the snapshot
// copy-on-write and publishes it.
type Cache struct {
	mu    sync.Mutex
	plans atomic.Pointer[map[int]*Plan]
	real  atomic.Pointer[map[int]*RealPlan]
}

// Get returns the cached plan for length n, creating it on first use.
func (c *Cache) Get(n int) *Plan {
	if m := c.plans.Load(); m != nil {
		if p := (*m)[n]; p != nil {
			return p
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur map[int]*Plan
	if m := c.plans.Load(); m != nil {
		cur = *m
		if p := cur[n]; p != nil {
			return p
		}
	}
	p := NewPlan(n)
	next := make(map[int]*Plan, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[n] = p
	c.plans.Store(&next)
	return p
}

// GetReal returns the cached real plan for length n, creating it on first
// use.
func (c *Cache) GetReal(n int) *RealPlan {
	if m := c.real.Load(); m != nil {
		if p := (*m)[n]; p != nil {
			return p
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur map[int]*RealPlan
	if m := c.real.Load(); m != nil {
		cur = *m
		if p := cur[n]; p != nil {
			return p
		}
	}
	p := NewRealPlan(n)
	next := make(map[int]*RealPlan, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[n] = p
	c.real.Store(&next)
	return p
}

// DefaultCache is the package-level plan cache.
var DefaultCache Cache
