package fft

import (
	"math/rand"
	"sync"
	"testing"
)

// TestCacheConcurrentMiss hammers a fresh Cache from many goroutines that
// all miss simultaneously, on the same and on different shapes — the
// server's concurrent-miss path. It asserts that every shape is constructed
// exactly once (no duplicate-build waste) and that all goroutines observe
// the same plan pointer per shape. Run under -race this also exercises the
// atomic-snapshot publication protocol.
func TestCacheConcurrentMiss(t *testing.T) {
	const goroutines = 32
	lengths := []int{8, 12, 60, 97, 120, 243}
	realLens := []int{8, 12, 60, 120} // RealPlan requires even lengths
	shapes2d := [][2]int{{8, 12}, {16, 16}, {20, 12}}
	shapes3d := [][3]int{{8, 8, 8}, {12, 8, 4}}

	var c Cache
	var start, done sync.WaitGroup
	start.Add(1)

	got1d := make([][]*Plan, goroutines)
	got2d := make([][]*Plan2D, goroutines)
	got3d := make([][]*Plan3D, goroutines)
	gotReal := make([][]*RealPlan, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		done.Add(1)
		go func() {
			defer done.Done()
			// Per-goroutine shuffled visit order, so the "same shape from
			// everyone at once" and "different shapes racing the same
			// mutex" interleavings both occur.
			rng := rand.New(rand.NewSource(int64(g)))
			order := rng.Perm(len(lengths))
			start.Wait()
			got1d[g] = make([]*Plan, len(lengths))
			for _, i := range order {
				got1d[g][i] = c.Get(lengths[i])
			}
			gotReal[g] = make([]*RealPlan, len(realLens))
			for i, n := range realLens {
				gotReal[g][i] = c.GetReal(n)
			}
			got2d[g] = make([]*Plan2D, len(shapes2d))
			for i, s := range shapes2d {
				got2d[g][i] = c.Get2D(s[0], s[1])
			}
			got3d[g] = make([]*Plan3D, len(shapes3d))
			for i, s := range shapes3d {
				got3d[g][i] = c.Get3D(s[0], s[1], s[2])
			}
		}()
	}
	start.Done()
	done.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range lengths {
			if got1d[g][i] != got1d[0][i] {
				t.Errorf("goroutine %d got a different plan for n=%d", g, lengths[i])
			}
		}
		for i := range realLens {
			if gotReal[g][i] != gotReal[0][i] {
				t.Errorf("goroutine %d got a different real plan for n=%d", g, realLens[i])
			}
		}
		for i := range shapes2d {
			if got2d[g][i] != got2d[0][i] {
				t.Errorf("goroutine %d got a different 2-D plan for %v", g, shapes2d[i])
			}
		}
		for i := range shapes3d {
			if got3d[g][i] != got3d[0][i] {
				t.Errorf("goroutine %d got a different 3-D plan for %v", g, shapes3d[i])
			}
		}
	}

	want := int64(len(lengths) + len(realLens) + len(shapes2d) + len(shapes3d))
	if got := c.Builds(); got != want {
		t.Errorf("cache performed %d plan builds, want exactly %d (one per shape)", got, want)
	}

	// The cached plans must be the ones subsequent lookups see.
	for i, n := range lengths {
		if c.Get(n) != got1d[0][i] {
			t.Errorf("post-race lookup for n=%d returned a different plan", n)
		}
	}
}

// TestCacheBatchTransformConcurrent drives the batch execution path from
// several goroutines sharing one cached plan, checking results against the
// serial TransformMany — the exact sharing pattern of fftxd workers.
func TestCacheBatchTransformConcurrent(t *testing.T) {
	const n, rows, goroutines = 24, 16, 8
	var c Cache
	plan := c.Get(n)

	ref := make([]complex128, rows*n)
	rng := rand.New(rand.NewSource(7))
	for i := range ref {
		ref[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := append([]complex128(nil), ref...)
	plan.TransformMany(want, rows, Forward)

	var wg sync.WaitGroup
	outs := make([][]complex128, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := append([]complex128(nil), ref...)
			c.Get(n).TransformBatch(buf, rows, Forward)
			outs[g] = buf
		}()
	}
	wg.Wait()
	for g, out := range outs {
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("goroutine %d row result diverges at %d: %v vs %v", g, i, out[i], want[i])
			}
		}
	}
}
