package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Real-input transforms (the r2c/c2r half of the FFTW API): a length-n real
// sequence has a Hermitian spectrum, so only n/2+1 complex coefficients are
// stored. The implementation uses the classic half-length complex trick:
// the even/odd interleaving of the real input is transformed as one
// length-n/2 complex sequence and untangled with twiddle factors, so an r2c
// transform costs roughly half a c2c transform of the same length — the
// same economy the gamma-point mode exploits at the 3-D level.
type RealPlan struct {
	n    int
	half *Plan
	// tw[k] = exp(-2πi k/n) for the untangling stage.
	tw []complex128
}

// NewRealPlan creates a real-input plan for even lengths n >= 2.
func NewRealPlan(n int) *RealPlan {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("fft: real plan needs even n >= 2, got %d", n))
	}
	p := &RealPlan{n: n, half: NewPlan(n / 2)}
	p.tw = make([]complex128, n/2+1)
	for k := range p.tw {
		p.tw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	return p
}

// N returns the real sequence length.
func (p *RealPlan) N() int { return p.n }

// SpectrumLen returns the stored spectrum length, n/2+1.
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// Flops returns the analytic flop count of one transform.
func (p *RealPlan) Flops() float64 { return p.half.Flops() + 10*float64(p.n/2) }

// Forward computes the half spectrum X[0..n/2] of the real input x:
// X[k] = sum_j x[j]·exp(-2πi jk/n). X[0] and X[n/2] are real.
func (p *RealPlan) Forward(x []float64) []complex128 {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: real Forward on %d samples, plan is %d", len(x), p.n))
	}
	m := p.n / 2
	z := make([]complex128, m)
	for j := 0; j < m; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.Transform(z, Forward)
	out := make([]complex128, m+1)
	// Untangle: with E[k] the even-sample spectrum and O[k] the odd-sample
	// spectrum, X[k] = E[k] + w^k O[k]; E and O follow from Z = FFT(e+io)
	// via Hermitian splitting.
	for k := 0; k <= m; k++ {
		zk := z[k%m]
		zmk := cmplx.Conj(z[(m-k)%m])
		e := (zk + zmk) * 0.5
		o := (zk - zmk) * complex(0, -0.5)
		out[k] = e + p.tw[k]*o
	}
	return out
}

// Backward reconstructs the real sequence from its half spectrum
// (unscaled: Backward(Forward(x)) = n·x, matching the complex plans).
func (p *RealPlan) Backward(spec []complex128) []float64 {
	if len(spec) != p.n/2+1 {
		panic(fmt.Sprintf("fft: real Backward on %d coefficients, want %d", len(spec), p.n/2+1))
	}
	m := p.n / 2
	// Retangle into the half-length complex sequence.
	z := make([]complex128, m)
	for k := 0; k < m; k++ {
		xk := spec[k]
		var xmk complex128
		if k == 0 {
			xmk = cmplx.Conj(spec[m])
		} else {
			xmk = cmplx.Conj(spec[m-k])
		}
		e := (xk + xmk) * 0.5
		o := (xk - xmk) * 0.5 * cmplx.Conj(p.tw[k])
		z[k] = e + complex(0, 1)*o
	}
	p.half.Transform(z, Backward)
	out := make([]float64, p.n)
	// The unscaled half-length inverse yields m·(even,odd) pairs; the
	// factor 2 restores the n·x convention of the complex plans.
	for j := 0; j < m; j++ {
		out[2*j] = 2 * real(z[j])
		out[2*j+1] = 2 * imag(z[j])
	}
	return out
}
