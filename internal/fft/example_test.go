package fft_test

import (
	"fmt"
	"math"

	"repro/internal/fft"
)

func ExamplePlan_Transform() {
	// Transform a pure tone: a length-8 exponential at frequency 2 lands
	// entirely in bin 2.
	x := make([]complex128, 8)
	for j := range x {
		ang := 2 * math.Pi * 2 * float64(j) / 8
		x[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	fft.NewPlan(8).Transform(x, fft.Forward)
	for k, v := range x {
		if math.Hypot(real(v), imag(v)) > 1e-9 {
			fmt.Printf("bin %d: %.0f\n", k, real(v))
		}
	}
	// Output:
	// bin 2: 8
}

func ExampleGoodSize() {
	// Quantum ESPRESSO grids use 5-smooth sizes.
	fmt.Println(fft.GoodSize(97), fft.GoodSize(113), fft.GoodSize(121))
	// Output:
	// 100 120 125
}

func ExampleRealPlan_Forward() {
	// A real cosine at frequency 3 produces conjugate peaks, of which the
	// half spectrum stores one.
	x := make([]float64, 16)
	for j := range x {
		x[j] = math.Cos(2 * math.Pi * 3 * float64(j) / 16)
	}
	spec := fft.NewRealPlan(16).Forward(x)
	for k, v := range spec {
		if math.Hypot(real(v), imag(v)) > 1e-9 {
			fmt.Printf("bin %d: %.0f\n", k, real(v))
		}
	}
	// Output:
	// bin 3: 8
}

func ExamplePlan3D_Transform() {
	// Round trip: Backward(Forward(x)) = N·x.
	p := fft.NewPlan3D(4, 4, 4)
	x := make([]complex128, 64)
	x[13] = 1
	p.Transform(x, fft.Forward)
	p.Transform(x, fft.Backward)
	fmt.Printf("%.0f\n", real(x[13]))
	// Output:
	// 64
}
