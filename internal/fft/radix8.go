package fft

import "math"

// invSqrt2 is √2/2, the magnitude of the odd eighth roots of unity. The
// radix-8 butterfly multiplies by (±√2/2)(1∓i) with two real
// multiplications and two additions instead of a full complex multiply;
// the SoA butterfly (stageRadix8SoA) mirrors the same formula so both
// layouts stay bit-identical.
const invSqrt2 = math.Sqrt2 / 2

// stageRadix8 merges groups of 8 length-m sub-transforms: two 4-point
// DFTs (even and odd inputs) joined by a final twiddled radix-2 layer.
// Only the ±i and ±(√2/2)(1∓i) rotations depend on the direction, so the
// body branches once per block, not per butterfly.
func stageRadix8(w []complex128, m int, tw []complex128, sign Sign) {
	n := len(w)
	for o := 0; o < n; o += 8 * m {
		b0 := w[o : o+m : o+m]
		b1 := w[o+m : o+2*m : o+2*m]
		b2 := w[o+2*m : o+3*m : o+3*m]
		b3 := w[o+3*m : o+4*m : o+4*m]
		b4 := w[o+4*m : o+5*m : o+5*m]
		b5 := w[o+5*m : o+6*m : o+6*m]
		b6 := w[o+6*m : o+7*m : o+7*m]
		b7 := w[o+7*m : o+8*m : o+8*m]
		if sign == Forward {
			for k := 0; k < m; k++ {
				t := tw[7*k : 7*k+7 : 7*k+7]
				a0 := b0[k]
				a1 := b1[k] * t[0]
				a2 := b2[k] * t[1]
				a3 := b3[k] * t[2]
				a4 := b4[k] * t[3]
				a5 := b5[k] * t[4]
				a6 := b6[k] * t[5]
				a7 := b7[k] * t[6]
				t0, t1 := a0+a4, a0-a4
				t2, t3 := a2+a6, a2-a6
				u0, u1 := a1+a5, a1-a5
				u2, u3 := a3+a7, a3-a7
				jt3 := complex(imag(t3), -real(t3)) // -i·t3
				ju3 := complex(imag(u3), -real(u3)) // -i·u3
				e0, e2 := t0+t2, t0-t2
				e1, e3 := t1+jt3, t1-jt3
				o0, o2 := u0+u2, u0-u2
				o1, o3 := u1+ju3, u1-ju3
				// (√2/2)(1-i)·o1, -i·o2 and -(√2/2)(1+i)·o3.
				co1 := complex(invSqrt2*(real(o1)+imag(o1)), invSqrt2*(imag(o1)-real(o1)))
				jo2 := complex(imag(o2), -real(o2))
				do3 := complex(invSqrt2*(imag(o3)-real(o3)), -invSqrt2*(real(o3)+imag(o3)))
				b0[k], b4[k] = e0+o0, e0-o0
				b1[k], b5[k] = e1+co1, e1-co1
				b2[k], b6[k] = e2+jo2, e2-jo2
				b3[k], b7[k] = e3+do3, e3-do3
			}
		} else {
			for k := 0; k < m; k++ {
				t := tw[7*k : 7*k+7 : 7*k+7]
				a0 := b0[k]
				a1 := b1[k] * t[0]
				a2 := b2[k] * t[1]
				a3 := b3[k] * t[2]
				a4 := b4[k] * t[3]
				a5 := b5[k] * t[4]
				a6 := b6[k] * t[5]
				a7 := b7[k] * t[6]
				t0, t1 := a0+a4, a0-a4
				t2, t3 := a2+a6, a2-a6
				u0, u1 := a1+a5, a1-a5
				u2, u3 := a3+a7, a3-a7
				jt3 := complex(-imag(t3), real(t3)) // +i·t3
				ju3 := complex(-imag(u3), real(u3)) // +i·u3
				e0, e2 := t0+t2, t0-t2
				e1, e3 := t1+jt3, t1-jt3
				o0, o2 := u0+u2, u0-u2
				o1, o3 := u1+ju3, u1-ju3
				// (√2/2)(1+i)·o1, +i·o2 and -(√2/2)(1-i)·o3.
				co1 := complex(invSqrt2*(real(o1)-imag(o1)), invSqrt2*(real(o1)+imag(o1)))
				jo2 := complex(-imag(o2), real(o2))
				do3 := complex(-invSqrt2*(real(o3)+imag(o3)), invSqrt2*(real(o3)-imag(o3)))
				b0[k], b4[k] = e0+o0, e0-o0
				b1[k], b5[k] = e1+co1, e1-co1
				b2[k], b6[k] = e2+jo2, e2-jo2
				b3[k], b7[k] = e3+do3, e3-do3
			}
		}
	}
}
