package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// splitRadix is the split-radix kernel for power-of-two lengths: the DFT
// of length L splits into one L/2 transform over the even samples and two
// L/4 transforms over the 4j+1 and 4j+3 samples, recombined with one
// twiddled L-shaped butterfly per output quartet. That reuses the w^k and
// w^{3k} twiddles across both odd branches, giving the lowest known
// flop count of the classic power-of-two algorithms (~4·n·log2 n real
// operations vs ~5·n·log2 n for radix-2).
//
// The recombination reassociates the butterfly arithmetic relative to the
// iterative mixed-radix stages, so split-radix spectra match the
// mixed-radix plan only to rounding tolerance — which is why RadixSplit is
// never auto-picked where bit-identical cross-variant results are assumed
// (see Radix).
type splitRadix struct {
	n int
	// w1[l][s][k] = w^k and w3[l][s][k] = w^{3k} for the level of length
	// 1<<l, w = exp(∓2πi/2^l), s selecting the direction; k < 2^l/4.
	w1, w3 [][2][]complex128
	// scratch pools the out-of-place recursion target.
	scratch sync.Pool
}

func newSplitRadix(n int) *splitRadix {
	s := &splitRadix{n: n}
	s.scratch.New = func() any {
		b := make([]complex128, n)
		return &b
	}
	lg := bits.Len(uint(n)) - 1
	s.w1 = make([][2][]complex128, lg+1)
	s.w3 = make([][2][]complex128, lg+1)
	for l := 2; l <= lg; l++ {
		L := 1 << l
		q := L / 4
		for si := 0; si < 2; si++ {
			sgn := float64(Forward)
			if si == 1 {
				sgn = float64(Backward)
			}
			w1 := make([]complex128, q)
			w3 := make([]complex128, q)
			for k := 0; k < q; k++ {
				w1[k] = cmplx.Exp(complex(0, sgn*2*math.Pi*float64(k)/float64(L)))
				w3[k] = cmplx.Exp(complex(0, sgn*2*math.Pi*float64(3*k%L)/float64(L)))
			}
			s.w1[l][si] = w1
			s.w3[l][si] = w3
		}
	}
	return s
}

func (s *splitRadix) transform(x []complex128, sign Sign) {
	si := 0
	if sign == Backward {
		si = 1
	}
	sp := s.scratch.Get().(*[]complex128)
	dst := *sp
	s.rec(dst[:s.n], x, s.n, 1, si)
	copy(x, dst)
	s.scratch.Put(sp)
}

// rec computes the length-n DFT of src[0], src[stride], src[2·stride], ...
// into dst[0:n]. The three recursive sub-transforms land in disjoint
// thirds of dst (E in [0,n/2), U in [n/2,3n/4), Z in [3n/4,n)) and the
// L-shaped combine is in place: every iteration k reads its four inputs
// before overwriting exactly those four cells.
func (s *splitRadix) rec(dst, src []complex128, n, stride, si int) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	if n == 2 {
		a, b := src[0], src[stride]
		dst[0], dst[1] = a+b, a-b
		return
	}
	h, q := n/2, n/4
	s.rec(dst[:h], src, h, 2*stride, si)
	s.rec(dst[h:h+q], src[stride:], q, 4*stride, si)
	s.rec(dst[h+q:n], src[3*stride:], q, 4*stride, si)
	l := bits.Len(uint(n)) - 1
	w1 := s.w1[l][si]
	w3 := s.w3[l][si]
	if si == 0 {
		for k := 0; k < q; k++ {
			e1, e2 := dst[k], dst[k+q]
			u := dst[h+k] * w1[k]
			z := dst[h+q+k] * w3[k]
			t1 := u + z
			t2 := u - z
			jt := complex(imag(t2), -real(t2)) // -i·(u-z)
			dst[k], dst[k+h] = e1+t1, e1-t1
			dst[k+q], dst[k+3*q] = e2+jt, e2-jt
		}
	} else {
		for k := 0; k < q; k++ {
			e1, e2 := dst[k], dst[k+q]
			u := dst[h+k] * w1[k]
			z := dst[h+q+k] * w3[k]
			t1 := u + z
			t2 := u - z
			jt := complex(-imag(t2), real(t2)) // +i·(u-z)
			dst[k], dst[k+h] = e1+t1, e1-t1
			dst[k+q], dst[k+3*q] = e2+jt, e2-jt
		}
	}
}

// flops is the classic split-radix real-operation count 4·n·log2 n − 6n + 8.
func (s *splitRadix) flops() float64 {
	n := float64(s.n)
	return 4*n*math.Log2(n) - 6*n + 8
}
